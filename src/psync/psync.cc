#include "src/psync/psync.h"

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr size_t kFixedHeader = 13;  // conv_id + msg_id + sender + num_deps
}  // namespace

// ---------------------------------------------------------------------------
// PsyncProtocol
// ---------------------------------------------------------------------------

PsyncProtocol::PsyncProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}) {
  ParticipantSet enable;
  enable.local.rel_proto = kRelProtoPsync;
  enable.local.ip_proto = kIpProtoPsync;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SessionRef> PsyncProtocol::SessionTo(IpAddr host) {
  auto it = peers_.find(host);
  if (it != peers_.end()) {
    return it->second;
  }
  ParticipantSet parts;
  parts.peer.host = host;
  parts.local.rel_proto = kRelProtoPsync;
  parts.local.ip_proto = kIpProtoPsync;
  Result<SessionRef> sess = lower(0)->Open(*this, parts);
  if (sess.ok()) {
    peers_[host] = *sess;
  }
  return sess;
}

Result<PsyncConversation*> PsyncProtocol::Join(uint32_t conv_id, std::vector<IpAddr> others) {
  auto it = conversations_.find(conv_id);
  if (it != conversations_.end()) {
    return it->second.get();
  }
  // Open sessions to every other participant now (sessions are cached).
  for (IpAddr host : others) {
    Result<SessionRef> sess = SessionTo(host);
    if (!sess.ok()) {
      return sess.status();
    }
  }
  auto conv = std::unique_ptr<PsyncConversation>(
      new PsyncConversation(*this, conv_id, std::move(others)));
  PsyncConversation* ptr = conv.get();
  conversations_[conv_id] = std::move(conv);
  return ptr;
}

Status PsyncProtocol::DoDemux(Session* lls, Message& msg) {
  (void)lls;
  uint8_t fixed[kFixedHeader];
  if (!msg.PopHeader(fixed)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  WireReader r(fixed);
  const uint32_t conv_id = r.GetU32();
  const PsyncMsgId id = r.GetU32();
  const IpAddr sender = r.GetIpAddr();
  const uint8_t num_deps = r.GetU8();
  kernel().ChargeHdrLoad(kFixedHeader + num_deps * 4u);
  if (num_deps > kMaxDeps) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  std::vector<PsyncMsgId> deps(num_deps);
  for (uint8_t i = 0; i < num_deps; ++i) {
    uint8_t dep_raw[4];
    if (!msg.PopHeader(dep_raw)) {
      return ErrStatus(StatusCode::kInvalidArgument);
    }
    WireReader dr(dep_raw);
    deps[i] = dr.GetU32();
  }
  auto it = conversations_.find(conv_id);
  if (it == conversations_.end()) {
    kernel().Tracef(2, "psync: unknown conversation %u", conv_id);
    return ErrStatus(StatusCode::kNotFound);
  }
  it->second->HandleIncoming(id, sender, std::move(deps), msg);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// PsyncConversation
// ---------------------------------------------------------------------------

PsyncConversation::PsyncConversation(PsyncProtocol& proto, uint32_t conv_id,
                                     std::vector<IpAddr> others)
    : proto_(proto), conv_id_(conv_id), others_(std::move(others)) {}

void PsyncConversation::Insert(PsyncMsgId id, IpAddr sender,
                               const std::vector<PsyncMsgId>& deps) {
  nodes_[id] = Node{sender, deps};
  for (PsyncMsgId dep : deps) {
    leaves_.erase(dep);
  }
  leaves_.insert(id);
}

Result<PsyncMsgId> PsyncConversation::Send(const Message& payload) {
  Kernel& kernel = proto_.kernel();
  // Host-unique id: high bits from the host address, low bits a counter.
  const PsyncMsgId id =
      (kernel.ip_addr().value() << 16) ^ (kernel.ip_addr().value() >> 16) ^ next_local_++;
  std::vector<PsyncMsgId> deps(leaves_.begin(), leaves_.end());
  if (deps.size() > PsyncProtocol::kMaxDeps) {
    deps.resize(PsyncProtocol::kMaxDeps);
  }

  // Build the header once; the payload chunks are shared between all copies.
  std::vector<uint8_t> hdr(kFixedHeader + 4 * deps.size());
  WireWriter w(hdr);
  w.PutU32(conv_id_);
  w.PutU32(id);
  w.PutIpAddr(kernel.ip_addr());
  w.PutU8(static_cast<uint8_t>(deps.size()));
  for (PsyncMsgId dep : deps) {
    w.PutU32(dep);
  }
  kernel.ChargeHdrStore(hdr.size());

  Status last = OkStatus();
  for (IpAddr host : others_) {
    Result<SessionRef> sess = proto_.SessionTo(host);
    if (!sess.ok()) {
      return sess.status();
    }
    Message copy = payload;
    copy.PushHeader(hdr);
    ++proto_.stats_.copies_sent;
    last = (*sess)->Push(copy);
    if (!last.ok()) {
      return last;
    }
  }
  ++proto_.stats_.sent;
  Insert(id, kernel.ip_addr(), deps);
  return id;
}

void PsyncConversation::HandleIncoming(PsyncMsgId id, IpAddr sender,
                                       std::vector<PsyncMsgId> deps, Message& payload) {
  if (nodes_.count(id) != 0) {
    ++proto_.stats_.duplicates_dropped;  // FRAGMENT may duplicate
    return;
  }
  proto_.kernel().ChargeMapBind();
  Insert(id, sender, deps);
  ++proto_.stats_.delivered;
  if (on_receive_) {
    PsyncDelivery d;
    d.sender = sender;
    d.id = id;
    d.context = std::move(deps);
    d.payload = payload;
    on_receive_(d);
  }
}

bool PsyncConversation::Precedes(PsyncMsgId a, PsyncMsgId b) const {
  if (a == b || nodes_.count(b) == 0) {
    return false;
  }
  // Reverse reachability from b through context edges.
  std::vector<PsyncMsgId> stack = {b};
  std::set<PsyncMsgId> seen;
  while (!stack.empty()) {
    const PsyncMsgId cur = stack.back();
    stack.pop_back();
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) {
      continue;
    }
    for (PsyncMsgId dep : it->second.deps) {
      if (dep == a) {
        return true;
      }
      if (seen.insert(dep).second) {
        stack.push_back(dep);
      }
    }
  }
  return false;
}

}  // namespace xk
