// Optional authentication layers for decomposed Sun RPC (paper, Section 5).
//
// "Layering provides a natural methodology for inserting or removing optional
// sub-pieces such as authentication. Much of the complexity in the Sun RPC
// code concerns the optional authentication component." Here each mechanism
// is its own pass-through protocol that can be composed between SUN_SELECT
// and REQUEST_REPLY (or left out entirely):
//
//   SUN_SELECT - REQUEST_REPLY - ...               (no auth)
//   SUN_SELECT - AUTH_NONE - REQUEST_REPLY - ...   (null flavor on the wire)
//   SUN_SELECT - AUTH_CRED - REQUEST_REPLY - ...   (uid/gid credentials)
//
// Direction rule: sessions created actively are client-side and attach this
// host's credentials to what they push; sessions created passively (at the
// server) verify the credentials of everything arriving and strip them. A
// rejected call is answered with a reject marker, which the client side
// surfaces as a kRejected SessionError.

#ifndef XK_SRC_RPC_SUN_AUTH_H_
#define XK_SRC_RPC_SUN_AUTH_H_

#include <set>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"

namespace xk {

// Common machinery: a header-bearing pass-through layer with per-peer
// sessions. Subclasses define the credential block and its verification.
class AuthProtocolBase : public Protocol {
 public:
  static constexpr uint8_t kFlavorNone = 0;
  static constexpr uint8_t kFlavorCred = 1;
  static constexpr uint8_t kFlavorReject = 0xFF;

  AuthProtocolBase(Kernel& kernel, Protocol* lower, std::string name, RelProtoNum rel_proto);

  struct Stats {
    uint64_t attached = 0;
    uint64_t verified = 0;
    uint64_t rejected = 0;
    uint64_t reject_notices = 0;  // client-side: peer refused our credentials
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("attached", stats_.attached);
    emit("verified", stats_.verified);
    emit("rejected", stats_.rejected);
    emit("reject_notices", stats_.reject_notices);
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;

  // Serialized credential block this host attaches (flavor + body).
  virtual std::vector<uint8_t> MakeCredentials() const = 0;
  // Verifies an arriving credential block at the server side.
  virtual bool Verify(uint8_t flavor, std::span<const uint8_t> body) const = 0;

 private:
  friend class AuthSession;
  RelProtoNum rel_proto_;
  DemuxMap<IpAddr> active_;  // per peer host
  Protocol* enabled_hlp_ = nullptr;
  Stats stats_;
};

class AuthSession : public Session {
 public:
  AuthSession(AuthProtocolBase& owner, Protocol* hlp, IpAddr peer, SessionRef lower,
              bool server_side);

  bool server_side() const { return server_side_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  friend class AuthProtocolBase;
  AuthProtocolBase& auth_;
  IpAddr peer_;
  SessionRef lower_;
  bool server_side_;
};

// AUTH_NONE: the null flavor -- a two-byte header, no verification beyond the
// flavor byte. Exists so the wire format matches "authentication present".
class AuthNoneProtocol : public AuthProtocolBase {
 public:
  AuthNoneProtocol(Kernel& kernel, Protocol* lower, std::string name = "authnone");

 protected:
  std::vector<uint8_t> MakeCredentials() const override;
  bool Verify(uint8_t flavor, std::span<const uint8_t> body) const override;
};

// AUTH_CRED: uid/gid credentials checked against a server-side allow list
// (a simplified AUTH_UNIX).
class AuthCredProtocol : public AuthProtocolBase {
 public:
  AuthCredProtocol(Kernel& kernel, Protocol* lower, std::string name = "authcred");

  void SetCredentials(uint32_t uid, uint32_t gid) {
    uid_ = uid;
    gid_ = gid;
  }
  void AllowUid(uint32_t uid) { allowed_uids_.insert(uid); }

 protected:
  std::vector<uint8_t> MakeCredentials() const override;
  bool Verify(uint8_t flavor, std::span<const uint8_t> body) const override;

 private:
  uint32_t uid_ = 0;
  uint32_t gid_ = 0;
  std::set<uint32_t> allowed_uids_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SUN_AUTH_H_
