// Unit and property tests for the x-kernel message tool.

#include "src/core/message.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/sim/rng.h"

namespace xk {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 37 + (i >> 5));
  }
  return v;
}

class PolicyGuard {
 public:
  explicit PolicyGuard(HeaderAllocPolicy p) : saved_(Message::default_alloc_policy()) {
    Message::set_default_alloc_policy(p);
  }
  ~PolicyGuard() { Message::set_default_alloc_policy(saved_); }

 private:
  HeaderAllocPolicy saved_;
};

TEST(MessageTest, EmptyMessage) {
  Message m;
  EXPECT_EQ(m.length(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.Flatten().empty());
}

TEST(MessageTest, PayloadConstructorZeroFills) {
  Message m(16);
  EXPECT_EQ(m.length(), 16u);
  std::vector<uint8_t> out = m.Flatten();
  EXPECT_EQ(out, std::vector<uint8_t>(16, 0));
}

TEST(MessageTest, FromBytesRoundTrips) {
  auto data = Pattern(100);
  Message m = Message::FromBytes(data);
  EXPECT_EQ(m.length(), 100u);
  EXPECT_EQ(m.Flatten(), data);
}

TEST(MessageTest, PushHeaderPrepends) {
  Message m = Message::FromBytes(Pattern(10, 50));
  auto hdr = Pattern(4, 200);
  m.PushHeader(hdr);
  EXPECT_EQ(m.length(), 14u);
  auto flat = m.Flatten();
  EXPECT_TRUE(std::equal(hdr.begin(), hdr.end(), flat.begin()));
  EXPECT_TRUE(std::equal(flat.begin() + 4, flat.end(), Pattern(10, 50).begin()));
}

TEST(MessageTest, PopHeaderReturnsPushedBytes) {
  Message m = Message::FromBytes(Pattern(10));
  auto hdr = Pattern(8, 99);
  m.PushHeader(hdr);
  std::vector<uint8_t> out(8);
  ASSERT_TRUE(m.PopHeader(out));
  EXPECT_EQ(out, hdr);
  EXPECT_EQ(m.length(), 10u);
  EXPECT_EQ(m.Flatten(), Pattern(10));
}

TEST(MessageTest, PopHeaderFailsWhenTooShort) {
  Message m = Message::FromBytes(Pattern(3));
  std::vector<uint8_t> out(4);
  EXPECT_FALSE(m.PopHeader(out));
  EXPECT_EQ(m.length(), 3u);  // unchanged
}

TEST(MessageTest, PopHeaderCrossesHeaderPayloadBoundary) {
  // Pop more bytes than the header region holds: spills into payload, the way
  // a receiver pops a large header off a flat received frame.
  Message m = Message::FromBytes(Pattern(10, 1));
  m.PushHeader(Pattern(4, 100));
  std::vector<uint8_t> out(8);
  ASSERT_TRUE(m.PopHeader(out));
  auto expect_hdr = Pattern(4, 100);
  auto expect_pay = Pattern(10, 1);
  EXPECT_TRUE(std::equal(expect_hdr.begin(), expect_hdr.end(), out.begin()));
  EXPECT_TRUE(std::equal(out.begin() + 4, out.end(), expect_pay.begin()));
  EXPECT_EQ(m.length(), 6u);
}

TEST(MessageTest, NestedPushPopIsLifo) {
  Message m = Message::FromBytes(Pattern(5));
  auto h1 = Pattern(6, 10);
  auto h2 = Pattern(3, 20);
  auto h3 = Pattern(9, 30);
  m.PushHeader(h1);
  m.PushHeader(h2);
  m.PushHeader(h3);
  EXPECT_EQ(m.length(), 5u + 6 + 3 + 9);
  std::vector<uint8_t> o3(9), o2(3), o1(6);
  ASSERT_TRUE(m.PopHeader(o3));
  ASSERT_TRUE(m.PopHeader(o2));
  ASSERT_TRUE(m.PopHeader(o1));
  EXPECT_EQ(o3, h3);
  EXPECT_EQ(o2, h2);
  EXPECT_EQ(o1, h1);
  EXPECT_EQ(m.Flatten(), Pattern(5));
}

TEST(MessageTest, PeekDoesNotConsume) {
  Message m = Message::FromBytes(Pattern(20));
  std::vector<uint8_t> a(8), b(8);
  ASSERT_TRUE(m.PeekHeader(a));
  ASSERT_TRUE(m.PeekHeader(b));
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.length(), 20u);
}

TEST(MessageTest, DiscardDropsFront) {
  Message m = Message::FromBytes(Pattern(20));
  ASSERT_TRUE(m.Discard(5));
  EXPECT_EQ(m.length(), 15u);
  auto expect = Pattern(20);
  expect.erase(expect.begin(), expect.begin() + 5);
  EXPECT_EQ(m.Flatten(), expect);
  EXPECT_FALSE(m.Discard(16));
}

TEST(MessageTest, TruncateKeepsPrefix) {
  Message m = Message::FromBytes(Pattern(20));
  m.PushHeader(Pattern(4, 77));
  m.Truncate(10);
  EXPECT_EQ(m.length(), 10u);
  auto flat = m.Flatten();
  auto hdr = Pattern(4, 77);
  EXPECT_TRUE(std::equal(hdr.begin(), hdr.end(), flat.begin()));
  // Truncate to something longer is a no-op.
  m.Truncate(100);
  EXPECT_EQ(m.length(), 10u);
  // Truncate within the header arena region.
  m.Truncate(2);
  EXPECT_EQ(m.length(), 2u);
  EXPECT_EQ(m.Flatten(), std::vector<uint8_t>(hdr.begin(), hdr.begin() + 2));
}

TEST(MessageTest, CopySharesPayloadButHeadersDiverge) {
  // The critical copy-on-write case: FRAGMENT saves a copy of a message, then
  // both the copy and the original push different headers.
  Message a = Message::FromBytes(Pattern(50));
  a.PushHeader(Pattern(4, 1));
  Message b = a;  // shares arena + payload
  a.PushHeader(Pattern(4, 2));
  b.PushHeader(Pattern(4, 3));
  std::vector<uint8_t> ha(4), hb(4);
  ASSERT_TRUE(a.PeekHeader(ha));
  ASSERT_TRUE(b.PeekHeader(hb));
  EXPECT_EQ(ha, Pattern(4, 2));
  EXPECT_EQ(hb, Pattern(4, 3));
  EXPECT_EQ(a.length(), 58u);
  EXPECT_EQ(b.length(), 58u);
}

TEST(MessageTest, CopyThenPopLeavesOriginalIntact) {
  Message a = Message::FromBytes(Pattern(10));
  a.PushHeader(Pattern(6, 9));
  Message b = a;
  std::vector<uint8_t> out(6);
  ASSERT_TRUE(b.PopHeader(out));
  EXPECT_EQ(b.length(), 10u);
  EXPECT_EQ(a.length(), 16u);  // untouched
}

TEST(MessageTest, SliceMiddle) {
  Message m = Message::FromBytes(Pattern(100));
  Message s = m.Slice(10, 20);
  EXPECT_EQ(s.length(), 20u);
  auto expect = Pattern(100);
  EXPECT_EQ(s.Flatten(), std::vector<uint8_t>(expect.begin() + 10, expect.begin() + 30));
}

TEST(MessageTest, SliceClampsOutOfRange) {
  Message m = Message::FromBytes(Pattern(10));
  EXPECT_EQ(m.Slice(5, 100).length(), 5u);
  EXPECT_EQ(m.Slice(20, 5).length(), 0u);
  EXPECT_EQ(m.Slice(0, 0).length(), 0u);
}

TEST(MessageTest, SliceSpansArenaAndChunks) {
  Message m = Message::FromBytes(Pattern(10, 5));
  m.PushHeader(Pattern(8, 60));
  Message s = m.Slice(4, 10);  // last 4 header bytes + first 6 payload bytes
  auto flat = m.Flatten();
  EXPECT_EQ(s.Flatten(), std::vector<uint8_t>(flat.begin() + 4, flat.begin() + 14));
}

TEST(MessageTest, SliceDoesNotCopyPayload) {
  // Slicing a large message should share the underlying block; we verify via
  // content equality after the original is modified non-destructively.
  Message m = Message::FromBytes(Pattern(4096));
  Message s1 = m.Slice(0, 2048);
  Message s2 = m.Slice(2048, 2048);
  Message joined;
  joined.Append(s1);
  joined.Append(s2);
  EXPECT_TRUE(joined.ContentEquals(m));
}

TEST(MessageTest, AppendJoinsSequences) {
  Message a = Message::FromBytes(Pattern(10, 1));
  Message b = Message::FromBytes(Pattern(10, 2));
  b.PushHeader(Pattern(3, 3));
  a.Append(b);
  EXPECT_EQ(a.length(), 23u);
  auto flat = a.Flatten();
  auto pb = Pattern(3, 3);
  EXPECT_TRUE(std::equal(pb.begin(), pb.end(), flat.begin() + 10));
}

TEST(MessageTest, AppendEmptyIsNoop) {
  Message a = Message::FromBytes(Pattern(5));
  Message e;
  a.Append(e);
  EXPECT_EQ(a.length(), 5u);
}

TEST(MessageTest, CopyOutPartial) {
  Message m = Message::FromBytes(Pattern(10));
  std::vector<uint8_t> out(4);
  EXPECT_EQ(m.CopyOut(out), 4u);
  auto expect = Pattern(10);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), expect.begin()));
  std::vector<uint8_t> big(20);
  EXPECT_EQ(m.CopyOut(big), 10u);
}

TEST(MessageTest, ArenaOverflowSpillsGracefully) {
  // Push more header bytes than the arena holds; message must stay correct.
  Message m = Message::FromBytes(Pattern(8));
  std::vector<std::vector<uint8_t>> hdrs;
  for (int i = 0; i < 10; ++i) {
    hdrs.push_back(Pattern(40, static_cast<uint8_t>(i)));
    m.PushHeader(hdrs.back());
  }
  EXPECT_EQ(m.length(), 8u + 400);
  for (int i = 9; i >= 0; --i) {
    std::vector<uint8_t> out(40);
    ASSERT_TRUE(m.PopHeader(out));
    EXPECT_EQ(out, hdrs[i]) << "header " << i;
  }
  EXPECT_EQ(m.Flatten(), Pattern(8));
}

TEST(MessageTest, PerLayerAllocPolicyFunctionallyIdentical) {
  PolicyGuard guard(HeaderAllocPolicy::kPerLayerAlloc);
  Message m = Message::FromBytes(Pattern(10));
  auto h1 = Pattern(6, 1);
  auto h2 = Pattern(7, 2);
  m.PushHeader(h1);
  m.PushHeader(h2);
  EXPECT_EQ(m.length(), 23u);
  std::vector<uint8_t> o2(7), o1(6);
  ASSERT_TRUE(m.PopHeader(o2));
  ASSERT_TRUE(m.PopHeader(o1));
  EXPECT_EQ(o2, h2);
  EXPECT_EQ(o1, h1);
}

TEST(MessageTest, MixedPolicySwitchMidMessage) {
  Message m = Message::FromBytes(Pattern(5));
  m.PushHeader(Pattern(4, 1));
  {
    PolicyGuard guard(HeaderAllocPolicy::kPerLayerAlloc);
    m.PushHeader(Pattern(4, 2));
  }
  m.PushHeader(Pattern(4, 3));
  std::vector<uint8_t> o(4);
  ASSERT_TRUE(m.PopHeader(o));
  EXPECT_EQ(o, Pattern(4, 3));
  ASSERT_TRUE(m.PopHeader(o));
  EXPECT_EQ(o, Pattern(4, 2));
  ASSERT_TRUE(m.PopHeader(o));
  EXPECT_EQ(o, Pattern(4, 1));
  EXPECT_EQ(m.Flatten(), Pattern(5));
}

TEST(MessageTest, ContentEquals) {
  Message a = Message::FromBytes(Pattern(10));
  Message b = Message::FromBytes(Pattern(10));
  Message c = Message::FromBytes(Pattern(11));
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_FALSE(a.ContentEquals(c));
  b.PushHeader(Pattern(1));
  EXPECT_FALSE(a.ContentEquals(b));
}

// --- property tests ---------------------------------------------------------

// Random push/pop/slice sequences must always preserve the byte sequence a
// reference model (a plain std::vector) predicts.
class MessagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MessagePropertyTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  const bool per_layer = rng.Chance(0.3);
  PolicyGuard guard(per_layer ? HeaderAllocPolicy::kPerLayerAlloc
                              : HeaderAllocPolicy::kPointerAdjust);

  auto initial = Pattern(rng.NextBelow(200), static_cast<uint8_t>(rng.NextU64()));
  Message m = Message::FromBytes(initial);
  std::vector<uint8_t> model = initial;

  for (int step = 0; step < 200; ++step) {
    switch (rng.NextBelow(7)) {
      case 0: {  // push
        auto hdr = Pattern(rng.NextInRange(1, 48), static_cast<uint8_t>(rng.NextU64()));
        m.PushHeader(hdr);
        model.insert(model.begin(), hdr.begin(), hdr.end());
        break;
      }
      case 1: {  // pop
        const size_t n = rng.NextInRange(1, 64);
        std::vector<uint8_t> out(n);
        const bool ok = m.PopHeader(out);
        if (n <= model.size()) {
          ASSERT_TRUE(ok);
          EXPECT_TRUE(std::equal(out.begin(), out.end(), model.begin()));
          model.erase(model.begin(), model.begin() + static_cast<ptrdiff_t>(n));
        } else {
          ASSERT_FALSE(ok);
        }
        break;
      }
      case 2: {  // slice (replaces the message with a sub-range)
        if (model.empty()) {
          break;
        }
        const size_t off = rng.NextBelow(model.size());
        const size_t len = rng.NextInRange(0, model.size() - off);
        m = m.Slice(off, len);
        model = std::vector<uint8_t>(model.begin() + static_cast<ptrdiff_t>(off),
                                     model.begin() + static_cast<ptrdiff_t>(off + len));
        break;
      }
      case 3: {  // append a fresh message
        auto extra = Pattern(rng.NextBelow(60), static_cast<uint8_t>(rng.NextU64()));
        Message other = Message::FromBytes(extra);
        if (rng.Chance(0.5) && !extra.empty()) {
          auto hdr = Pattern(4, 7);
          other.PushHeader(hdr);
          extra.insert(extra.begin(), hdr.begin(), hdr.end());
        }
        m.Append(other);
        model.insert(model.end(), extra.begin(), extra.end());
        break;
      }
      case 4: {  // copy fork: mutate the copy, original must be unaffected
        Message copy = m;
        const auto hdr = Pattern(8, 42);
        copy.PushHeader(hdr);  // shared arena: must clone, not scribble
        std::vector<uint8_t> expect_copy = model;
        expect_copy.insert(expect_copy.begin(), hdr.begin(), hdr.end());
        EXPECT_EQ(copy.Flatten(), expect_copy) << "step " << step;
        ASSERT_EQ(m.Flatten(), model)
            << "copy's push leaked into the original at step " << step;
        std::vector<uint8_t> sink(std::min<size_t>(model.size(), 8));
        copy.PopHeader(sink);
        break;
      }
      case 5: {  // discard from the front
        const size_t n = rng.NextInRange(0, 64);
        const bool ok = m.Discard(n);
        if (n <= model.size()) {
          ASSERT_TRUE(ok);
          model.erase(model.begin(), model.begin() + static_cast<ptrdiff_t>(n));
        } else {
          ASSERT_FALSE(ok);
        }
        break;
      }
      case 6: {  // truncate (strip trailing padding)
        const size_t n = rng.NextBelow(static_cast<size_t>(model.size()) + 32);
        m.Truncate(n);
        if (n < model.size()) {
          model.resize(n);
        }
        break;
      }
    }
    ASSERT_EQ(m.length(), model.size()) << "step " << step;
  }
  EXPECT_EQ(m.Flatten(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessagePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

}  // namespace
}  // namespace xk
