// Shared-bus 10 Mbps Ethernet segment.
//
// The link carries flat byte frames between attached stations. Transmissions
// serialize on the bus (a frame ready while the bus is busy queues behind it,
// which is what lets back-to-back fragments of a 16 KB message saturate the
// wire). Delivery filters on the destination address in the frame's first six
// bytes; broadcast frames go to every station except the sender.
//
// Fault injection: tests install a hook that can drop, duplicate, or corrupt
// individual deliveries, and/or set a uniform drop rate, to drive every
// retransmission path in the protocols above.

#ifndef XK_SRC_SIM_LINK_H_
#define XK_SRC_SIM_LINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/stat/histogram.h"

namespace xk {

class EthernetSegment;
class Kernel;
class PacketCapture;
class SegmentSeries;
class TraceSink;

// A raw Ethernet frame on the wire: header (dst, src, type) + payload, as one
// flat byte vector. Only the Ethernet protocol interprets the full framing;
// the link peeks at the destination address for delivery filtering.
struct EthFrame {
  std::vector<uint8_t> bytes;

  // Host-side observability bookkeeping, never serialized: the trace id of
  // the Message this frame carries, stamped by the transmitting driver so
  // wire records and the receive path can be tied back to the sender's
  // spans. Not wire bytes -- packet formats and timing are unchanged.
  uint64_t trace_msg_id = 0;

  EthAddr Dst() const;
  EthAddr Src() const;
};

// Implemented by network interfaces (device drivers) attached to a segment.
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  // Called at frame arrival time. The sink is responsible for charging
  // interrupt and copy costs to its host CPU. The frame is only borrowed for
  // the duration of the call.
  virtual void FrameArrived(const EthFrame& frame) = 0;

  // The kernel whose host this sink belongs to, if any. The parallel engine
  // uses it to route deliveries to the receiver's logical process; plain
  // test sinks may leave it null (they only run under the serial engine).
  virtual Kernel* sink_kernel() { return nullptr; }
};

// Intercepts EthernetSegment::Transmit before any segment state is touched.
// The parallel engine installs one so that transmits issued by concurrently
// running hosts are buffered and applied serially, in canonical order, at the
// next epoch barrier.
class TransmitSink {
 public:
  virtual ~TransmitSink() = default;
  virtual void OnTransmit(EthernetSegment& segment, int sender_id,
                          std::shared_ptr<EthFrame> frame, SimTime ready_at) = 0;
};

// How ProcessTransmit hands a (frame, receiver) delivery to the simulator:
// the serial path schedules it on the segment's own event queue; the parallel
// engine inserts it into the receiving host's queue instead. The frame buffer
// is shared across all receivers of one transmission.
class FrameDeliverer {
 public:
  virtual ~FrameDeliverer() = default;
  virtual void Deliver(EthernetSegment& segment, SimTime at, FrameSink* sink, int receiver_id,
                       std::shared_ptr<const EthFrame> frame) = 0;
};

// Per-delivery fault decision.
enum class LinkFault : uint8_t {
  kDeliver,
  kDrop,
  kDuplicate,  // deliver twice (second copy one transmit-time later)
  kCorrupt,    // deliver with the last byte's bits flipped
};

// Extended per-delivery fault decision (FaultEngine): the verdict plus an
// extra in-flight delay and, for kCorrupt, which byte to flip (SIZE_MAX =
// the last byte, matching the legacy hook).
struct DeliveryFault {
  LinkFault verdict = LinkFault::kDeliver;
  SimTime extra_delay = 0;
  size_t corrupt_offset = SIZE_MAX;
};

class EthernetSegment {
 public:
  EthernetSegment(EventQueue& events, WireModel wire, uint64_t fault_seed = 1);

  // Attaches a station; returns its attachment id. `kernel` names the host
  // the sink belongs to (null for bare test sinks); the parallel engine
  // routes deliveries by it. Re-attaching the address of a detached station
  // reuses its id, so a host that crashes and restarts keeps its slot.
  int Attach(EthAddr addr, FrameSink* sink, Kernel* kernel = nullptr);

  // Detaches station `id` (its NIC went down). In-flight frames addressed to
  // it are dropped at arrival time and counted in down_drops().
  void Detach(int id);

  // Queues `frame` for transmission; the frame was handed to the controller
  // at `ready_at` (the sending CPU's task clock). Transmission starts when
  // the bus frees up. The frame buffer travels by shared_ptr the whole way
  // (driver -> segment -> receivers), so a pooled frame is reused intact;
  // the by-value overload wraps for callers that build frames ad hoc.
  void Transmit(int sender_id, std::shared_ptr<EthFrame> frame, SimTime ready_at);
  void Transmit(int sender_id, EthFrame frame, SimTime ready_at);

  // The body of Transmit: bus arbitration, fault injection, statistics, and
  // observer records, handing each delivery to `deliverer` (null = schedule
  // on the segment's own event queue). The parallel engine calls this at
  // epoch barriers, in canonical transmit order.
  void ProcessTransmit(int sender_id, std::shared_ptr<EthFrame> frame, SimTime ready_at,
                       FrameDeliverer* deliverer);

  // Diverts Transmit() to `sink` before any segment state is touched (null
  // restores direct processing). Installed by the parallel engine.
  void set_transmit_sink(TransmitSink* sink) { transmit_sink_ = sink; }

  // Station `id`'s attached sink (parallel-engine delivery routing). Null
  // while the station is detached (host down).
  FrameSink* station_sink(int id) const { return stations_[id].sink; }

  // The kernel station `id` was attached with (null for bare test sinks).
  // Stays valid across Detach/Attach so deliveries scheduled while the host
  // is down still route to the right logical process.
  Kernel* station_kernel(int id) const { return stations_[id].kernel; }

  // Stations ever attached (detached slots included; engine adjacency walks).
  size_t num_stations() const { return stations_.size(); }

  // Fires one delivery: looks the sink up NOW (not at schedule time), so a
  // frame in flight toward a host that crashed meanwhile is dropped here
  // rather than delivered through a dangling pointer.
  void FireDelivery(int receiver_id, const EthFrame& frame);

  // Batches the deliveries one transmission creates for the same arrival
  // timestamp (a broadcast burst) into a single heap event that fires them
  // in creation order. Provably invisible to the simulation: members occupy
  // adjacent sequence numbers in the unbatched schedule (ProcessTransmit
  // schedules them back-to-back with nothing in between), so no other
  // same-time event can interleave, and fired-event counts are preserved via
  // EventQueue::AddExtraFired. Serial path only; the parallel engine routes
  // per-receiver to different host queues and stays unbatched. Default on.
  void set_batched_delivery(bool on) { batched_delivery_ = on; }
  bool batched_delivery() const { return batched_delivery_; }

  // Uniform random drop probability applied to every delivery.
  void set_drop_rate(double p) { drop_rate_ = p; }

  // Test hook consulted per (frame, receiver) delivery; applied after the
  // uniform drop rate. `delivery_index` counts deliveries since construction
  // so tests can target "the 3rd frame".
  using FaultHook = std::function<LinkFault(const EthFrame& frame, int receiver_id,
                                            uint64_t delivery_index)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Extended hook (FaultEngine): takes precedence over the legacy hook when
  // set, sees the scheduled arrival time, and can additionally delay the
  // delivery or pick the corrupted byte. Consulted at the same point in
  // ProcessTransmit, which the parallel engine runs serially at epoch
  // barriers, so any plan evaluated here is engine-invariant.
  using FaultHookEx = std::function<DeliveryFault(const EthFrame& frame, int receiver_id,
                                                  uint64_t delivery_index, SimTime arrival)>;
  void set_fault_hook_ex(FaultHookEx hook) { fault_hook_ex_ = std::move(hook); }

  const WireModel& wire() const { return wire_; }

  // --- observability ----------------------------------------------------------
  // Optional observers (owned by the caller; null detaches). Recording never
  // charges simulated cost or advances the simulated clock.
  void set_trace(TraceSink* trace) { trace_ = trace; }
  void set_capture(PacketCapture* capture) { capture_ = capture; }
  // Time-series hook fed one record per bus acquisition (src/stat).
  void set_stats(SegmentSeries* stats) { stats_ = stats; }
  // Segment id stamped into wire/capture records (set by the topology).
  void set_observer_id(int id) { observer_id_ = id; }

  // --- statistics ------------------------------------------------------------
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  // Fault-injection outcomes, by cause. frames_dropped() counts both drop
  // kinds; duplicates/corruptions count deliveries that were altered.
  uint64_t random_drops() const { return random_drops_; }
  uint64_t fault_drops() const { return fault_drops_; }
  uint64_t fault_duplicates() const { return fault_duplicates_; }
  uint64_t fault_corruptions() const { return fault_corruptions_; }
  // Deliveries the extended hook delayed (counted once per delayed copy).
  uint64_t fault_delays() const { return fault_delays_; }
  // Frames that arrived at a detached station (receiver host was down).
  // Not part of frames_dropped(): the wire delivered them; the NIC was gone.
  uint64_t down_drops() const;
  // Total time the bus spent transmitting (utilization = busy/elapsed).
  SimTime bus_busy_time() const { return bus_busy_time_; }

  // --- queueing statistics ----------------------------------------------------
  // A frame "queued" if the bus was busy when its sender handed it over
  // (start > ready). Depth is measured at each bus acquisition: frames still
  // waiting behind the acquiring one, including it if it had to wait.
  uint64_t queued_frames() const { return queued_frames_; }
  uint64_t peak_queue_depth() const { return peak_queue_depth_; }
  // Mean depth over all sent frames, scaled by 1000 (integer, for
  // deterministic JSON).
  uint64_t mean_queue_depth_x1000() const {
    return frames_sent_ == 0 ? 0 : queue_depth_sum_ * 1000 / frames_sent_;
  }
  // Per-frame queueing delay (start - ready), as a histogram.
  const Histogram& queue_wait() const { return queue_wait_; }
  void ResetStats();

 private:
  struct Station {
    EthAddr addr;
    FrameSink* sink;
    Kernel* kernel = nullptr;
    // Written and read only on this station's host (its logical process
    // under the parallel engine), summed after the run.
    uint64_t down_drops = 0;
  };

  void DeliverAt(SimTime at, std::shared_ptr<const EthFrame> frame, int receiver_id,
                 FrameDeliverer* deliverer);

  // One delivery pending inside the current ProcessTransmit call (batched
  // serial path). rid < 0 marks a member already folded into a batch.
  struct BatchMember {
    SimTime at;
    int rid;
    std::shared_ptr<const EthFrame> frame;
  };
  void FlushBatchedDeliveries();

  EventQueue& events_;
  WireModel wire_;
  Rng rng_;
  std::vector<Station> stations_;
  SimTime bus_free_at_ = 0;
  double drop_rate_ = 0.0;
  FaultHook fault_hook_;
  FaultHookEx fault_hook_ex_;
  uint64_t delivery_index_ = 0;
  TransmitSink* transmit_sink_ = nullptr;
  bool batched_delivery_ = true;
  // Scratch for the batched path; reused across transmissions. Safe against
  // reentrancy: it is drained before ProcessTransmit returns, and firing a
  // batch iterates a captured copy, not this vector.
  std::vector<BatchMember> batch_scratch_;

  TraceSink* trace_ = nullptr;
  PacketCapture* capture_ = nullptr;
  SegmentSeries* stats_ = nullptr;
  int observer_id_ = 0;

  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t random_drops_ = 0;
  uint64_t fault_drops_ = 0;
  uint64_t fault_duplicates_ = 0;
  uint64_t fault_corruptions_ = 0;
  uint64_t fault_delays_ = 0;
  SimTime bus_busy_time_ = 0;

  // Start times of frames that have not begun transmitting as of the last
  // arrival (bus state, like bus_free_at_; not cleared by ResetStats).
  std::deque<SimTime> pending_starts_;
  uint64_t queued_frames_ = 0;
  uint64_t peak_queue_depth_ = 0;
  uint64_t queue_depth_sum_ = 0;
  Histogram queue_wait_;
};

}  // namespace xk

#endif  // XK_SRC_SIM_LINK_H_
