#include "src/rpc/channel.h"

#include "src/core/wire.h"
#include "src/trace/trace.h"

namespace xk {

namespace {
constexpr uint16_t kFlagRequest = 0x1;
constexpr uint16_t kFlagReply = 0x2;
constexpr uint16_t kFlagAck = 0x4;        // explicit "still working on it"
constexpr uint16_t kFlagPleaseAck = 0x8;  // retransmitted request asks for one

// Adaptive-RTO bounds (consulted only with kSetAdaptiveTimeout on).
constexpr SimTime kRtoFloor = Msec(10);
constexpr SimTime kRtoCap = Msec(2000);
}  // namespace

// ---------------------------------------------------------------------------
// ChannelProtocol
// ---------------------------------------------------------------------------

ChannelProtocol::ChannelProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), passive_(*this) {
  MarkIdleCapable();
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoChannel;
  enable.local.rel_proto = kRelProtoChannel;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

bool ChannelProtocol::EvictSession(Session& s) {
  auto& cs = static_cast<ChannelSession&>(s);
  // SELECT's pre-opened channel pools (and any other upper layer caching the
  // channel) hold their own refs; such channels stay until their owner lets
  // go. CanEvict already vetoed in-flight calls and quarantined saved
  // replies.
  if (cs.weak_from_this().use_count() > 1) {
    return false;
  }
  active_.Unbind(Key{cs.peer_, cs.channel_, cs.proto_});
  return true;
}

SimTime ChannelProtocol::EvictQuarantine() const {
  // Worst-case wait before one retransmission: the step-function timeout
  // grows with the request's fragment count (covered up to 8 fragments here,
  // beyond every workload in the repo) and quadruples once the server has
  // explicitly acked; the adaptive path is bounded by the backoff cap plus
  // its 1/8 jitter. The peer gives up after retry_limit_ retries, so after
  // (retry_limit_ + 1) such waits of silence no duplicate can still arrive.
  SimTime per_try = base_timeout_ * 8 * 4;
  if (adaptive_timeout_) {
    const SimTime capped = kRtoCap + kRtoCap / 8;
    if (capped * 4 > per_try) {
      per_try = capped * 4;
    }
  }
  return static_cast<SimTime>(retry_limit_ + 1) * per_try;
}

bool ChannelSession::CanEvict() const {
  if (pending_.has_value() || in_progress_) {
    return false;
  }
  if (!saved_reply_.has_value()) {
    return true;  // fully acknowledged: a late duplicate cannot exist
  }
  return kernel().now() - last_active() >= chan_.EvictQuarantine();
}

Result<SessionRef> ChannelProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  // Protocols that do not manage channel ids themselves (e.g. SUN_SELECT when
  // CHANNEL replaces REQUEST_REPLY) get channel 0.
  const uint16_t channel_id = parts.local.channel.value_or(0);
  const Key key{*parts.peer.host, channel_id, *parts.local.rel_proto};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.peer.host = *parts.peer.host;
  lparts.local.ip_proto = kIpProtoChannel;       // read by VIP/IP lowers
  lparts.local.rel_proto = kRelProtoChannel;     // read by FRAGMENT/VIP_SIZE lowers
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = pool_.Create(*this, &hlp, *parts.peer.host, channel_id, *parts.local.rel_proto,
                           *lower_sess);
  active_.Bind(key, sess);
  TrackIdle(*sess);
  return SessionRef(sess);
}

Status ChannelProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  Protocol* existing = nullptr;
  if (!passive_.TryBind(*parts.local.rel_proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(*parts.local.rel_proto, &hlp);  // re-enable recharges
  }
  return OkStatus();
}

Status ChannelProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint16_t flags = r.GetU16();
  const uint16_t channel = r.GetU16();
  const RelProtoNum proto = r.GetU32();
  const uint32_t seq = r.GetU32();
  const uint16_t error = r.GetU16();
  const uint32_t boot_id = r.GetU32();

  // The peer's address comes from the delivering session, not the header
  // (CHANNEL deliberately carries no host addresses -- FRAGMENT or IP below
  // know them).
  IpAddr peer;
  if (lls != nullptr) {
    ControlArgs args;
    if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
      peer = args.ip;
    }
  }
  const Key key{peer, channel, proto};
  SessionRef sess = active_.Resolve(key);
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(proto);
    if (hlp == nullptr || lls == nullptr) {
      kernel().Tracef(2, "channel: no binding for proto %u", proto);
      return ErrStatus(StatusCode::kNotFound);
    }
    kernel().ChargeSessionCreate();
    auto created = pool_.Create(*this, hlp, peer, channel, proto, lls->Ref());
    active_.Bind(key, created);
    TrackIdle(*created);
    ParticipantSet up;
    up.local.rel_proto = proto;
    up.local.channel = channel;
    up.peer.host = peer;
    Status s = hlp->OpenDoneUp(*this, created, up);
    if (!s.ok()) {
      active_.Unbind(key);
      return s;
    }
    sess = created;
  }
  return static_cast<ChannelSession*>(sess.get())
      ->HandlePacket(flags, seq, error, boot_id, msg, lls);
}

Status ChannelProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetRetransmits:
      args.u64 = stats_.retransmissions;
      return OkStatus();
    case ControlOp::kGetDuplicatesDropped:
      args.u64 = stats_.duplicates_suppressed;
      return OkStatus();
    case ControlOp::kSetTimeoutBase:
      base_timeout_ = static_cast<SimTime>(args.u64);
      return OkStatus();
    case ControlOp::kSetRetransmitLimit:
      retry_limit_ = static_cast<int>(args.u64);
      return OkStatus();
    case ControlOp::kGetTimeouts:
      args.u64 = stats_.timeouts;
      return OkStatus();
    case ControlOp::kSetAdaptiveTimeout:
      adaptive_timeout_ = args.u64 != 0;
      return OkStatus();
    case ControlOp::kGetMaxSendSize:
      // CHANNEL adds a header but does not fragment; it depends on the layer
      // below to carry (or split) what its own clients push.
      return lower(0)->Control(ControlOp::kGetMaxPacket, args);
    default:
      return Protocol::DoControl(op, args);
  }
}

// ---------------------------------------------------------------------------
// ChannelSession
// ---------------------------------------------------------------------------

ChannelSession::ChannelSession(ChannelProtocol& owner, Protocol* hlp, IpAddr peer,
                               uint16_t channel, RelProtoNum proto, SessionRef lower)
    : Session(owner, hlp),
      chan_(owner),
      peer_(peer),
      channel_(channel),
      proto_(proto),
      lower_(std::move(lower)),
      jitter_(0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(channel) << 32) ^ proto) {}

void ChannelSession::Send(uint16_t flags, uint32_t seq, uint16_t error,
                          const Message& payload) {
  uint8_t raw[ChannelProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU16(flags);
  w.PutU16(channel_);
  w.PutU32(proto_);
  w.PutU32(seq);
  w.PutU16(error);
  w.PutU32(kernel().boot_id());
  Message pkt = payload;
  kernel().ChargeHdrStore(ChannelProtocol::kHeaderSize);
  pkt.PushHeader(raw);
  (void)lower_->Push(pkt);
}

SimTime ChannelSession::TimeoutFor(const Message& msg) const {
  // Step function: single-fragment messages use the base timeout;
  // multi-fragment messages wait long enough that FRAGMENT cannot still be
  // mid-transfer (paper, Section 3.2).
  ControlArgs args;
  size_t opt = 1024;
  if (lower_->Control(ControlOp::kGetOptPacket, args).ok()) {
    opt = args.u64;
  }
  const size_t frags = msg.length() / (opt + 1) + 1;
  return chan_.base_timeout_ * static_cast<SimTime>(frags);
}

SimTime ChannelSession::AdaptiveRto() const {
  // Jacobson RTO with capped exponential backoff per retry.
  SimTime rto = srtt_ + 4 * rttvar_;
  if (rto < kRtoFloor) {
    rto = kRtoFloor;
  }
  const int shift = pending_->retries < 6 ? pending_->retries : 6;
  rto <<= shift;
  if (rto > kRtoCap) {
    rto = kRtoCap;
  }
  return rto;
}

void ChannelSession::ArmTimer() {
  SimTime rto;
  if (chan_.adaptive_timeout_ && have_rtt_) {
    rto = AdaptiveRto();
    // Deterministic per-channel jitter desynchronizes retry storms across
    // channels without perturbing runs (seeded from the channel identity).
    rto += static_cast<SimTime>(
        jitter_.NextBelow(static_cast<uint64_t>(rto / 8) + 1));
  } else {
    rto = TimeoutFor(pending_->request);
  }
  pending_->timer =
      kernel().SetTimer(rto * (pending_->acked ? 4 : 1), [this]() { OnTimeout(); });
}

void ChannelSession::OnTimeout() {
  if (!pending_.has_value()) {
    return;
  }
  ++chan_.stats_.timeouts;
  if (pending_->retries >= chan_.retry_limit_) {
    ++chan_.stats_.call_failures;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kGiveUp, chan_.name(), kernel().now(), 0,
                      &pending_->request, this,
                      static_cast<uint64_t>(pending_->retries), StatusCode::kTimeout);
    }
    pending_.reset();
    // A sweep may have parked this session while the call pinned it; relink
    // so the now-idle channel ages out normally.
    NoteActivity();
    if (hlp() != nullptr) {
      hlp()->SessionError(*this, ErrStatus(StatusCode::kTimeout));
    }
    return;
  }
  ++pending_->retries;
  pending_->retransmitted = true;
  ++chan_.stats_.retransmissions;
  if (TraceSink* ts = kernel().trace_sink()) {
    // Each attempt boundary is a point event on the saved request message, so
    // a causal stitcher can tie every wire transmission of the same id to an
    // attempt and classify what the retry was recovering from.
    ts->RecordEvent(kernel(), TraceOp::kRetransmit, chan_.name(), kernel().now(), 0,
                    &pending_->request, this,
                    static_cast<uint64_t>(pending_->retries + 1));
  }
  // Retransmissions ask the server to confirm liveness explicitly.
  Send(kFlagRequest | kFlagPleaseAck, pending_->seq, 0, pending_->request);
  ArmTimer();
}

Status ChannelSession::DoPush(Message& msg) {
  if (in_progress_) {
    // A request from the peer is executing here: this push is its reply.
    in_progress_ = false;
    saved_reply_ = msg;  // kept until implicitly acked by the next request
    Send(kFlagReply, recv_seq_, 0, msg);
    return OkStatus();
  }
  // Client call.
  if (pending_.has_value()) {
    return ErrStatus(StatusCode::kError);  // one outstanding call per channel
  }
  const uint32_t seq = ++send_seq_;
  ++chan_.stats_.calls_sent;
  pending_.emplace();
  pending_->request = msg;
  pending_->seq = seq;
  pending_->sent_at = kernel().now();
  Send(kFlagRequest, seq, 0, msg);
  ArmTimer();
  kernel().ChargeSemOp();  // the calling shepherd blocks awaiting the reply
  return OkStatus();
}

Status ChannelSession::HandleRequest(uint32_t seq, uint32_t boot_id, Message& payload,
                                     Session* lls) {
  if (lls != nullptr) {
    lower_ = lls->Ref();  // replies return the way the request came
  }
  if (client_boot_id_ != 0 && boot_id != client_boot_id_) {
    // The client rebooted: its sequence space restarted.
    ++chan_.stats_.boot_resets;
    recv_seq_ = 0;
    in_progress_ = false;
    saved_reply_.reset();
  }
  client_boot_id_ = boot_id;

  if (seq == recv_seq_) {
    // Duplicate of the current request: at-most-once -- never re-execute.
    ++chan_.stats_.duplicates_suppressed;
    if (saved_reply_.has_value()) {
      ++chan_.stats_.replies_resent;
      Send(kFlagReply, recv_seq_, 0, *saved_reply_);
    } else if (in_progress_) {
      ++chan_.stats_.explicit_acks_sent;
      Send(kFlagAck, recv_seq_, 0, Message());
    }
    return OkStatus();
  }
  if (seq < recv_seq_) {
    ++chan_.stats_.stale_drops;
    return OkStatus();
  }
  // New request: implicitly acknowledges the previous reply.
  saved_reply_.reset();
  recv_seq_ = seq;
  in_progress_ = true;
  ++chan_.stats_.requests_executed;
  // Dispatch to the server process.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  return DeliverUp(payload);
}

Status ChannelSession::HandleReply(uint16_t flags, uint32_t seq, uint16_t error,
                                   Message& payload) {
  if (!pending_.has_value() || seq != pending_->seq) {
    ++chan_.stats_.stale_drops;
    return OkStatus();  // late reply to an abandoned/completed call
  }
  if (flags & kFlagAck) {
    // Explicit ack: the server is alive and still working; wait longer.
    ++chan_.stats_.explicit_acks_received;
    pending_->acked = true;
    kernel().CancelTimer(pending_->timer);
    ArmTimer();
    return OkStatus();
  }
  (void)error;
  // RTT estimation, Karn's rule: retransmitted calls are ambiguous (the reply
  // may answer either copy), so only clean exchanges update the estimator.
  if (!pending_->retransmitted) {
    const SimTime sample = kernel().now() - pending_->sent_at;
    if (!have_rtt_) {
      srtt_ = sample;
      rttvar_ = sample / 2;
      have_rtt_ = true;
    } else {
      const SimTime err = sample - srtt_;
      srtt_ += err / 8;
      const SimTime abs_err = err < 0 ? -err : err;
      rttvar_ += (abs_err - rttvar_) / 4;
    }
  }
  kernel().CancelTimer(pending_->timer);
  pending_.reset();
  ++chan_.stats_.replies_received;
  // Wake the blocked calling shepherd.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  return DeliverUp(payload);
}

Status ChannelSession::HandlePacket(uint16_t flags, uint32_t seq, uint16_t error,
                                    uint32_t boot_id, Message& payload, Session* lls) {
  NoteActivity();  // packet arrival bypasses Session::Pop
  if (flags & kFlagRequest) {
    return HandleRequest(seq, boot_id, payload, lls);
  }
  if (flags & (kFlagReply | kFlagAck)) {
    if (peer_boot_id_ != 0 && boot_id != peer_boot_id_ && pending_.has_value()) {
      // The server rebooted while we were waiting: the call's fate is
      // unknown. Surface the failure (Sprite's crash detection would).
      ++chan_.stats_.boot_resets;
    }
    peer_boot_id_ = boot_id;
    return HandleReply(flags, seq, error, payload);
  }
  return ErrStatus(StatusCode::kInvalidArgument);
}

Status ChannelSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status ChannelSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    case ControlOp::kGetBootId:
      args.u64 = peer_boot_id_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
