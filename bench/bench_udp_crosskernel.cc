// Section 1 cross-kernel comparison: "the user-to-user round trip delay using
// the UDP/IP protocol suite is 2.00 msec in the x-kernel and 5.36 msec in
// SunOS Release 4.0 (4.3BSD Unix)".
//
// Both runs use the same UDP/IP/ETH protocol code over the same simulated
// wire; only the host environment differs (see CostModel::SunOs in DESIGN.md
// for the substitution). Unlike the Section 4 experiments this one is
// user-to-user, so each send and each receive pays a user/kernel boundary
// crossing.

#include "bench/bench_util.h"
#include "src/proto/udp.h"

namespace xk {
namespace {

double MeasureUdpEchoMs(HostEnv env) {
  auto net = Internet::TwoHosts(env);
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  UdpProtocol* cudp = BuildUdp(ch);
  UdpProtocol* sudp = BuildUdp(sh);

  EchoAnchor* client = nullptr;
  ch.kernel->RunTask(net->events().now(), [&] {
    client = &ch.kernel->Emplace<EchoAnchor>(*ch.kernel, /*server_role=*/false);
    // User process: each send/receive crosses the user/kernel boundary.
    client->set_app_cost(ch.kernel->costs().user_kernel_cross);
  });
  sh.kernel->RunTask(net->events().now(), [&] {
    auto& server = sh.kernel->Emplace<EchoAnchor>(*sh.kernel, /*server_role=*/true);
    server.set_app_cost(2 * sh.kernel->costs().user_kernel_cross);  // in + out
    ParticipantSet enable;
    enable.local.port = 7;
    (void)sudp->OpenEnable(server, enable);
  });
  SessionRef sess;
  ch.kernel->RunTask(net->events().now(), [&] {
    ParticipantSet parts;
    parts.local.port = 1234;
    parts.peer.host = sh.kernel->ip_addr();
    parts.peer.port = 7;
    Result<SessionRef> r = cudp->Open(*client, parts);
    if (r.ok()) {
      sess = *r;
    }
  });
  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    client->Send(sess, std::move(args), std::move(done));
  };
  LatencyResult lat = RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 64);
  return ToMsec(lat.per_call);
}

int Run() {
  std::printf("\nSection 1: UDP/IP user-to-user round trip, x-kernel vs SunOS 4.0\n");
  std::printf("%-24s %10s\n", "Environment", "Latency");
  std::printf("%s\n", std::string(40, '-').c_str());
  const double xk = MeasureUdpEchoMs(HostEnv::kXKernel);
  const double sunos = MeasureUdpEchoMs(HostEnv::kSunOs);
  std::printf("%-24s %7.2f ms   [paper: 2.00]\n", "x-kernel", xk);
  std::printf("%-24s %7.2f ms   [paper: 5.36]\n", "SunOS 4.0 (4.3BSD)", sunos);
  std::printf("\nRatio: %.2fx   [paper: 2.68x]\n", sunos / xk);
  return 0;
}

}  // namespace
}  // namespace xk

int main() { return xk::Run(); }
