// Sampled time series: sim-clock-driven metric snapshots at zero simulated
// cost, alongside src/trace.
//
// A StatSampler emits one sample per host and per segment at every multiple
// of its period. It never schedules events, charges cost, or touches an Rng:
// host samples are taken by a read-only probe the EventQueue consults before
// firing each event (EventQueue::StatProbe), and segment samples are driven
// by the bus-acquisition stream EthernetSegment::ProcessTransmit already
// produces. That makes a sampled run bit-identical (in every simulated
// metric, trace, and capture) to an unsampled one.
//
// Determinism across engine widths: a sample at boundary S reflects, for each
// entity, exactly the state produced by that entity's events with firing time
// < S. Host state (CPU clocks, pending tasks, protocol gauges) is only
// mutated by the host's own events, and ProcessTransmit runs in canonical
// serial order under both engines, so the sample values -- and the
// canonically sorted JSONL this class writes -- are byte-identical at any
// --engine-threads width.
//
// Lifetime: like TraceSink, the sampler is owned by the caller and must
// outlive every Internet attached to it (Internet detaches itself on
// destruction, but kernels and segments hold raw pointers while alive).

#ifndef XK_SRC_STAT_TIMESERIES_H_
#define XK_SRC_STAT_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/sim/event_queue.h"

namespace xk {

class Kernel;
class StatSampler;

// One emitted sample line, timestamped for the canonical merge.
struct StatLine {
  SimTime t = 0;
  std::string text;
};

// Per-host series: ready-task count, CPU backlog and cumulative busy time,
// and every protocol gauge (ExportGauges), sampled at period boundaries.
class HostSeries {
 private:
  friend class StatSampler;

  void FlushTo(SimTime t);
  void EmitSample(SimTime at);

  Kernel* kernel_ = nullptr;  // nulled when the owning Internet is destroyed
  int net_ = 0;
  int idx_ = 0;  // registration order within the net (sort key)
  SimTime period_ = 0;
  SimTime next_ = 0;  // next un-emitted boundary
  std::vector<StatLine> lines_;
};

// Per-segment series fed by EthernetSegment::ProcessTransmit: cumulative
// frames/bytes/busy time, windowed bus utilization, and the queue depth
// observed at the last bus acquisition.
class SegmentSeries {
 public:
  // One bus acquisition: the transmission started at `start` (strictly
  // monotone across calls), held the bus for `tx_time`, carried `bytes`, and
  // found `queue_depth` frames still waiting behind it.
  void OnTransmit(SimTime start, SimTime tx_time, uint64_t bytes, uint64_t queue_depth);

 private:
  friend class StatSampler;

  void FlushTo(SimTime t);
  void EmitSample(SimTime at);

  int net_ = 0;
  int segment_ = 0;
  SimTime period_ = 0;
  SimTime next_ = 0;
  uint64_t frames_ = 0;
  uint64_t bytes_ = 0;
  SimTime busy_ = 0;
  SimTime busy_at_boundary_ = 0;  // busy_ when the previous sample was cut
  uint64_t last_depth_ = 0;
  std::vector<StatLine> lines_;
};

class StatSampler {
 public:
  explicit StatSampler(SimTime period = Msec(1));
  ~StatSampler();

  StatSampler(const StatSampler&) = delete;
  StatSampler& operator=(const StatSampler&) = delete;

  SimTime period() const { return period_; }

  // --- registration (called by Internet) --------------------------------------
  // Allocates an id for one attached Internet; samples carry it so several
  // sequentially-built topologies can share a sampler.
  int AttachNet();
  void RegisterKernel(int net, Kernel& kernel);
  // Creates the series; the caller wires it into the segment
  // (EthernetSegment::set_stats).
  SegmentSeries* RegisterSegment(int net, int segment_id);
  // Emits every boundary <= t for `net` (end-of-run tail; idempotent).
  void FlushNet(int net, SimTime t);
  // Removes probes and kernel pointers for `net`; recorded samples stay.
  void DetachNet(int net);

  // --- output -----------------------------------------------------------------
  // JSON-lines: one meta line, then samples sorted by (net, t, kind, index)
  // -- a canonical order independent of emission interleaving, so output is
  // byte-identical at any engine width.
  std::string ToJsonl() const;
  bool WriteFile(const std::string& path) const;
  size_t num_samples() const;

  // --- thread default ---------------------------------------------------------
  // An Internet constructed on this thread attaches the thread-default
  // sampler, mirroring TraceSink::thread_default().
  static StatSampler* thread_default();
  static void set_thread_default(StatSampler* sampler);

 private:
  // One probe per event queue: the shared queue in serial mode, each logical
  // process's queue in parallel mode. Flushes its hosts' boundaries <= the
  // firing time, before the event runs.
  struct QueueProbe : EventQueue::StatProbe {
    EventQueue* queue = nullptr;  // nulled by DetachNet
    int net = 0;
    SimTime min_next = kSimTimeNever;
    std::vector<HostSeries*> hosts;
    void BeforeFire(SimTime at) override;
  };

  SimTime period_;
  int next_net_ = 0;
  // deques: registration returns stable pointers into these.
  std::deque<HostSeries> hosts_;
  std::deque<SegmentSeries> segments_;
  std::vector<std::unique_ptr<QueueProbe>> probes_;
};

}  // namespace xk

#endif  // XK_SRC_STAT_TIMESERIES_H_
