#include "src/sim/parallel.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/kernel.h"
#include "src/core/message.h"

namespace xk {

namespace {
thread_local int g_default_engine_threads = 1;
}  // namespace

int default_engine_threads() { return g_default_engine_threads; }

void set_default_engine_threads(int threads) {
  g_default_engine_threads = threads > 1 ? threads : 1;
}

// ---------------------------------------------------------------------------
// EpochPool: a fork/join pool tuned for many short epochs. The caller
// participates in each job; idle workers spin briefly on the job generation
// before falling back to a condition variable, so back-to-back epochs don't
// pay a futex round trip. All cross-thread handoff goes through acquire/
// release atomics (publish body/args, then bump the generation).
// ---------------------------------------------------------------------------
class EpochPool {
 public:
  explicit EpochPool(int participants) {
    const int workers = participants > 1 ? participants - 1 : 0;
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  ~EpochPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  // Runs body(0..n-1) across the workers and the calling thread; returns when
  // every item has finished. Jobs are fully joined: every worker passes
  // through every job generation and reports back, so a straggler can never
  // touch the next job's work counter.
  void Run(const std::function<void(size_t)>& body, size_t n) {
    if (n == 0) {
      return;
    }
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) {
        body(i);
      }
      return;
    }
    body_ = &body;
    n_ = n;
    policy_ = Message::default_alloc_policy();
    next_.store(0, std::memory_order_relaxed);
    finished_.store(0, std::memory_order_relaxed);
    job_gen_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    Drain(body, n);
    size_t spins = 0;
    while (finished_.load(std::memory_order_acquire) < workers_.size()) {
      if (++spins % 256 == 0) {
        std::this_thread::yield();
      }
    }
  }

 private:
  void Drain(const std::function<void(size_t)>& body, size_t n) {
    for (;;) {
      const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      body(i);
    }
  }

  void WorkerMain() {
    uint64_t seen = 0;
    for (;;) {
      uint64_t gen;
      size_t spins = 0;
      for (;;) {
        gen = job_gen_.load(std::memory_order_acquire);
        if (gen != seen || stop_.load(std::memory_order_acquire)) {
          break;
        }
        if (++spins < 4096) {
          continue;
        }
        sleepers_.fetch_add(1, std::memory_order_release);
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [&] {
            return job_gen_.load(std::memory_order_acquire) != seen ||
                   stop_.load(std::memory_order_acquire);
          });
        }
        sleepers_.fetch_sub(1, std::memory_order_release);
      }
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      seen = gen;
      Message::set_default_alloc_policy(policy_);
      Drain(*body_, n_);
      finished_.fetch_add(1, std::memory_order_release);
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> job_gen_{0};
  std::atomic<size_t> next_{0};
  std::atomic<size_t> finished_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  // Published before the job_gen_ release bump, read after the acquire load.
  const std::function<void(size_t)>* body_ = nullptr;
  size_t n_ = 0;
  HeaderAllocPolicy policy_ = HeaderAllocPolicy::kPointerAdjust;
};

// ---------------------------------------------------------------------------
// Logical process: one host's queue plus the per-epoch capture of what its
// events emitted, in execution order. The Lp is its queue's Listener for the
// whole engine lifetime; outside RunEpochWindow (setup between runs, barrier
// insertions) OnSchedule registers directly in the canonical heap, inside an
// event it appends to the emission list for replay.
// ---------------------------------------------------------------------------
struct ParallelEngine::FiredEvent {
  SimTime at;
  uint32_t slot;
  uint32_t gen;
  uint32_t item_begin;
  uint32_t item_end;
};

struct ParallelEngine::Lp final : EventQueue::Listener {
  struct PendingTransmit {
    EthernetSegment* segment;
    int sender_id;
    EthFrame frame;
    SimTime ready_at;
  };

  struct Item {
    enum class Kind : uint8_t { kRecord, kSchedule, kTransmit };
    Kind kind;
    // kSchedule
    SimTime at = 0;
    uint32_t slot = 0;
    uint32_t gen = 0;
    // kTransmit: index into `transmits`
    uint32_t tx = 0;
    // kRecord
    TraceSink::Record rec;
  };

  ParallelEngine* engine = nullptr;
  uint32_t index = 0;
  std::unique_ptr<EventQueue> queue;
  Kernel* kernel = nullptr;

  // Trace shard (created per master sink; persists across runs so ids stay
  // stable) and the master's translation of its name table.
  std::unique_ptr<TraceSink> shard;
  TraceSink::ShardNameMap name_map;

  // Epoch capture, reset at each barrier.
  std::vector<FiredEvent> events;
  std::vector<Item> items;
  std::vector<PendingTransmit> transmits;
  size_t cursor = 0;  // replay position in `events`
  bool in_event = false;

  void OnSchedule(SimTime at, uint32_t slot, uint32_t gen) override {
    if (!in_event) {
      engine->RegisterCanon(index, at, slot, gen);
      return;
    }
    FlushShardRecords();
    Item item;
    item.kind = Item::Kind::kSchedule;
    item.at = at;
    item.slot = slot;
    item.gen = gen;
    items.push_back(std::move(item));
  }

  void OnFireBegin(SimTime at, uint32_t slot, uint32_t gen) override {
    events.push_back(FiredEvent{at, slot, gen, static_cast<uint32_t>(items.size()),
                                static_cast<uint32_t>(items.size())});
    in_event = true;
  }

  void OnFireEnd() override {
    FlushShardRecords();
    events.back().item_end = static_cast<uint32_t>(items.size());
    in_event = false;
  }

  // Moves records the shard buffered since the last flush onto the emission
  // list, preserving their position relative to schedules and transmits.
  void FlushShardRecords() {
    if (shard == nullptr || shard->num_records() == 0) {
      return;
    }
    for (TraceSink::Record& r : shard->DrainRecords()) {
      Item item;
      item.kind = Item::Kind::kRecord;
      item.rec = std::move(r);
      items.push_back(std::move(item));
    }
  }

  void ClearEpoch() {
    events.clear();
    items.clear();
    transmits.clear();
    cursor = 0;
  }
};

thread_local ParallelEngine::Lp* ParallelEngine::current_lp_ = nullptr;

ParallelEngine::ParallelEngine(int threads) : threads_(threads > 1 ? threads : 1) {}

ParallelEngine::~ParallelEngine() = default;

EventQueue& ParallelEngine::NewLpQueue() {
  auto lp = std::make_unique<Lp>();
  lp->engine = this;
  lp->index = static_cast<uint32_t>(lps_.size());
  lp->queue = std::make_unique<EventQueue>();
  lp->queue->set_listener(lp.get());
  lps_.push_back(std::move(lp));
  return *lps_.back()->queue;
}

void ParallelEngine::BindKernel(Kernel& kernel) {
  for (auto& lp : lps_) {
    if (lp->queue.get() == &kernel.events()) {
      lp->kernel = &kernel;
      kernel_lp_[&kernel] = lp.get();
      return;
    }
  }
  assert(false && "kernel not built on an engine LP queue");
}

void ParallelEngine::AdoptSegment(EthernetSegment& segment) {
  segments_.push_back(&segment);
  segment.set_transmit_sink(this);
}

void ParallelEngine::RegisterCanon(uint32_t lp, SimTime at, uint32_t slot, uint32_t gen) {
  canon_.push(CanonNode{at, next_canon_seq_++, lp, slot, gen});
}

void ParallelEngine::OnTransmit(EthernetSegment& segment, int sender_id, EthFrame frame,
                                SimTime ready_at) {
  Lp* lp = current_lp_;
  if (lp == nullptr) {
    // Setup phase (no epoch running): apply immediately, in call order --
    // which is the serial engine's order for setup-time traffic.
    segment.ProcessTransmit(sender_id, std::move(frame), ready_at, this);
    return;
  }
  lp->FlushShardRecords();
  lp->transmits.push_back(
      Lp::PendingTransmit{&segment, sender_id, std::move(frame), ready_at});
  Lp::Item item;
  item.kind = Lp::Item::Kind::kTransmit;
  item.tx = static_cast<uint32_t>(lp->transmits.size() - 1);
  lp->items.push_back(std::move(item));
}

void ParallelEngine::Deliver(EthernetSegment& segment, SimTime at, FrameSink* sink,
                             int receiver_id, std::shared_ptr<const EthFrame> frame) {
  // Route by the station's kernel (it outlives crash/restart); fall back to
  // the sink for bare test sinks attached without one. The sink itself is
  // resolved when the delivery fires, so a receiver that crashes while the
  // frame is in flight drops it (down_drops) instead of being called dead.
  Kernel* kernel = segment.station_kernel(receiver_id);
  if (kernel == nullptr && sink != nullptr) {
    kernel = sink->sink_kernel();
  }
  assert(kernel != nullptr && "parallel runs need stations that name their kernel");
  Lp* lp = kernel_lp_.at(kernel);
  // Lookahead guarantee: an in-epoch transmit cannot take effect inside the
  // same epoch. (Setup and fallback replay run with barrier_floor_ == 0.)
  assert(at >= barrier_floor_);
  lp->queue->ScheduleAt(at, [seg = &segment, receiver_id, f = std::move(frame)]() {
    seg->FireDelivery(receiver_id, *f);
  });
}

SimTime ParallelEngine::ComputeLookahead() const {
  // The soonest a frame handed to any segment can reach another host: it must
  // first serialize (minimum-size frame) and then propagate. kSimTimeNever if
  // there are no segments -- the LPs are fully independent.
  SimTime lookahead = kSimTimeNever;
  for (const EthernetSegment* seg : segments_) {
    const SimTime l = seg->wire().TransmitTime(0) + seg->wire().propagation;
    if (l < lookahead) {
      lookahead = l;
    }
  }
  return lookahead;
}

void ParallelEngine::BeginRun() {
  if (master_trace_ != observers_bound_) {
    // New (or first) master sink: rebuild the shards against it.
    observers_bound_ = master_trace_;
    for (auto& lp : lps_) {
      lp->shard.reset();
      lp->name_map = TraceSink::ShardNameMap{};
    }
    if (master_trace_ != nullptr) {
      for (auto& lp : lps_) {
        lp->shard = std::make_unique<TraceSink>(SIZE_MAX);
        lp->shard->set_id_tag(master_trace_->AllocateIdTag());
      }
    }
  }
  for (auto& lp : lps_) {
    if (lp->kernel != nullptr) {
      lp->kernel->set_trace_sink(lp->shard.get());
    }
  }
  if (pool_ == nullptr) {
    const int participants =
        static_cast<int>(lps_.size()) < threads_ ? static_cast<int>(lps_.size()) : threads_;
    pool_ = std::make_unique<EpochPool>(participants);
  }
}

void ParallelEngine::EndRun() {
  for (auto& lp : lps_) {
    if (lp->kernel != nullptr) {
      lp->kernel->set_trace_sink(master_trace_);
    }
    if (lp->queue->now() < global_now_) {
      lp->queue->AdvanceTo(global_now_);
    }
  }
  // Setup code between runs reads the Internet's own clock (kernel RunTask
  // timestamps); keep it in step with the serial engine's single clock.
  if (control_ != nullptr && control_->now() < global_now_) {
    control_->AdvanceTo(global_now_);
  }
}

size_t ParallelEngine::Run() {
  BeginRun();
  const SimTime lookahead = ComputeLookahead();
  const size_t fired = lookahead > 0 ? RunEpochs(lookahead) : RunSerialFallback();
  EndRun();
  return fired;
}

size_t ParallelEngine::RunEpochs(SimTime lookahead) {
  size_t fired = 0;
  std::vector<SimTime> next_at(lps_.size(), kSimTimeNever);
  for (;;) {
    SimTime epoch = kSimTimeNever;
    for (size_t i = 0; i < lps_.size(); ++i) {
      SimTime t;
      next_at[i] = lps_[i]->queue->NextEventTime(&t) ? t : kSimTimeNever;
      if (next_at[i] < epoch) {
        epoch = next_at[i];
      }
    }
    if (epoch == kSimTimeNever) {
      break;
    }
    const SimTime end =
        epoch > kSimTimeNever - lookahead ? kSimTimeNever : epoch + lookahead;
    active_.clear();
    for (size_t i = 0; i < lps_.size(); ++i) {
      if (next_at[i] < end) {
        active_.push_back(lps_[i].get());
      }
    }
    for (Lp* lp : active_) {
      lp->queue->set_defer_horizon(end);
    }
    epoch_fired_.assign(active_.size(), 0);
    if (active_.size() == 1) {
      current_lp_ = active_[0];
      epoch_fired_[0] = active_[0]->queue->RunEpochWindow(end);
      current_lp_ = nullptr;
    } else {
      std::vector<Lp*>& active = active_;
      std::vector<size_t>& counts = epoch_fired_;
      pool_->Run(
          [&active, &counts, end](size_t i) {
            current_lp_ = active[i];
            counts[i] = active[i]->queue->RunEpochWindow(end);
            current_lp_ = nullptr;
          },
          active_.size());
    }
    for (size_t i = 0; i < active_.size(); ++i) {
      fired += epoch_fired_[i];
      active_[i]->queue->set_defer_horizon(EventQueue::kNoHorizon);
    }
    barrier_floor_ = end == kSimTimeNever ? 0 : end;
    ReplayBarrier(end);
    barrier_floor_ = 0;
  }
  return fired;
}

void ParallelEngine::ReplayBarrier(SimTime end) {
  // Consume this epoch's canonical prefix. Every node with at < end either
  // matches the owning LP's next fired event (replay it) or was cancelled
  // (skip it); barrier insertions land at >= end, so the prefix is closed.
  while (!canon_.empty() && canon_.top().at < end) {
    const CanonNode n = canon_.top();
    canon_.pop();
    Lp& lp = *lps_[n.lp];
    if (lp.cursor < lp.events.size()) {
      const FiredEvent& fe = lp.events[lp.cursor];
      if (fe.at == n.at && fe.slot == n.slot && fe.gen == n.gen) {
        ++lp.cursor;
        if (n.at > global_now_) {
          global_now_ = n.at;
        }
        ApplyFired(lp, fe, end);
        continue;
      }
    }
    assert(!lp.queue->SlotLive(n.slot, n.gen) && "canonical order diverged from LP order");
  }
  for (auto& lp : lps_) {
    assert(lp->cursor == lp->events.size() && "fired event missing from canonical order");
    lp->ClearEpoch();
  }
}

void ParallelEngine::ApplyFired(Lp& lp, const FiredEvent& fe, SimTime commit_from) {
  for (uint32_t i = fe.item_begin; i < fe.item_end; ++i) {
    Lp::Item& item = lp.items[i];
    switch (item.kind) {
      case Lp::Item::Kind::kRecord:
        if (master_trace_ != nullptr) {
          master_trace_->AbsorbRecord(*lp.shard, lp.name_map, std::move(item.rec));
        }
        break;
      case Lp::Item::Kind::kSchedule:
        // The canonical sequence this schedule would have received from the
        // serial engine's single counter.
        RegisterCanon(lp.index, item.at, item.slot, item.gen);
        if (item.at >= commit_from) {
          // Parked past the epoch: push into the LP heap now, so its local
          // sequence order agrees with the canonical order.
          lp.queue->CommitDeferred(item.slot, item.gen, item.at);
        }
        break;
      case Lp::Item::Kind::kTransmit: {
        Lp::PendingTransmit& t = lp.transmits[item.tx];
        t.segment->ProcessTransmit(t.sender_id, std::move(t.frame), t.ready_at, this);
        break;
      }
    }
  }
}

size_t ParallelEngine::RunSerialFallback() {
  // Degenerate lookahead (a wire model with zero transmit time and zero
  // propagation): run one event at a time in canonical order, applying its
  // emissions immediately. Serial speed, identical results, no deadlock.
  size_t fired = 0;
  while (!canon_.empty()) {
    const CanonNode n = canon_.top();
    Lp& lp = *lps_[n.lp];
    if (!lp.queue->SlotLive(n.slot, n.gen)) {
      canon_.pop();  // cancelled
      continue;
    }
    canon_.pop();
    current_lp_ = &lp;
    const size_t ran = lp.queue->RunEpochWindow(n.at + 1, 1);
    current_lp_ = nullptr;
    if (ran != 1) {
      assert(false && "canonical head not at the LP heap front");
      break;
    }
    ++fired;
    if (n.at > global_now_) {
      global_now_ = n.at;
    }
    assert(lp.events.size() == 1 && lp.events[0].slot == n.slot && lp.events[0].gen == n.gen);
    ApplyFired(lp, lp.events[0], EventQueue::kNoHorizon);
    lp.ClearEpoch();
  }
  return fired;
}

uint64_t ParallelEngine::fired_total() const {
  uint64_t total = 0;
  for (const auto& lp : lps_) {
    total += lp->queue->fired_total();
  }
  return total;
}

}  // namespace xk
