// At-most-once oracle: an external checker for RPC execution semantics under
// fault campaigns.
//
// The oracle tags every request with a unique call id, records server-side
// executions (with the server's boot id at execution time) and client-side
// outcomes, and asserts, under ANY fault plan, that
//   * no call id is executed twice within one server boot (CHANNEL's
//     duplicate suppression holds),
//   * every completed reply echoes its own request (no cross-wiring), and
//   * every issued call reaches a recorded outcome -- reply or surfaced
//     failure -- never silence.
// Re-execution across a server reboot is counted separately: at-most-once
// state is in-memory by design (the paper's Sprite algorithm), so a crashed
// server that lost its duplicate filter MAY re-execute -- the oracle reports
// it, and pure-crash plans (no message loss) must still show zero.
//
// Thread-safety: recording methods take a mutex because under the parallel
// engine the client and server run on different logical processes. All
// bookkeeping is content-addressed by call id, so totals are deterministic
// and engine-invariant regardless of interleaving.

#ifndef XK_SRC_APP_ORACLE_H_
#define XK_SRC_APP_ORACLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "src/app/anchor.h"
#include "src/core/message.h"

namespace xk {

class AmoOracle {
 public:
  static constexpr size_t kIdBytes = 8;

  // Allocates the next call id (client side; ids start at 1).
  uint64_t NextCallId() { return ++last_id_; }

  // Builds a request: 8-byte big-endian call id followed by `payload_bytes`
  // of an id-derived pattern (so corrupted or cross-wired replies are
  // detectable byte-for-byte).
  static Message MakeRequest(uint64_t id, size_t payload_bytes);

  // Reads the call id out of a request or echoed reply; 0 if too short.
  static uint64_t ExtractId(const Message& msg);

  // An RpcServer handler that echoes the request and records its execution
  // under `server_kernel`'s CURRENT boot id (read at execution time, so the
  // same oracle spans crash/restart cycles -- install it again from the
  // restart hook).
  RpcServer::Handler WrapEcho(Kernel* server_kernel);

  // Client side: a call was issued / reached its outcome.
  void RecordIssued(uint64_t id, SimTime at);
  void RecordOutcome(uint64_t id, const Result<Message>& r, SimTime at);

  // Client side: a hedged second attempt went out for `id`. A hedged id
  // executing on TWO DIFFERENT hosts is the intended race, reported in
  // hedged_duplicate_executions instead of flagged; the same id twice on one
  // host in one boot stays a violation.
  void RecordHedged(uint64_t id);

  struct Report {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;       // surfaced errors (retry exhaustion, resets)
    uint64_t executions = 0;   // total server-side executions
    uint64_t double_executions = 0;        // same id twice in ONE boot: violation
    uint64_t cross_boot_reexecutions = 0;  // re-executed after a reboot: reported
    uint64_t mismatched_replies = 0;  // reply does not echo its request: violation
    uint64_t unknown_replies = 0;     // reply id never issued: violation
    uint64_t silent = 0;              // issued, no outcome ever: violation
    // Overload-control outcome classes (each also counted in `failed`):
    uint64_t shed = 0;              // DEADLINE_EXCEEDED: expired client- or server-side
    uint64_t rejected = 0;          // BUSY: admission control / caps fast-rejected
    uint64_t budget_exhausted = 0;  // RESOURCE_EXHAUSTED: retry budget drained
    // Calls the system accepted for execution (issued - shed - rejected) and
    // how many of those completed, per million -- the graceful-degradation
    // headline: under overload this should stay ~1e6 while shed/rejected grow.
    uint64_t admitted = 0;
    uint64_t admitted_success_ppm = 0;
    uint64_t hedged = 0;  // ids that issued a second attempt
    uint64_t hedged_duplicate_executions = 0;  // hedged id ran on 2 hosts: reported

    // True iff at-most-once semantics held and no failure was silent.
    bool clean() const {
      return double_executions == 0 && mismatched_replies == 0 && unknown_replies == 0 &&
             silent == 0;
    }
  };

  // Computes the report. Call after the simulation has quiesced (RunAll
  // returned): only then can "no outcome" be judged silent.
  Report Finish() const;

 private:
  struct CallRecord {
    bool issued = false;
    bool completed = false;
    bool failed = false;
    bool mismatched = false;
    bool hedged = false;
    StatusCode fail_code = StatusCode::kOk;  // classifies `failed`
    // (host, boot id) at each execution; the host lets a hedged id's
    // two-replica race be told apart from a same-server duplicate.
    std::vector<std::pair<const Kernel*, uint32_t>> executed;
  };

  mutable std::mutex mu_;
  uint64_t last_id_ = 0;
  std::map<uint64_t, CallRecord> calls_;
  uint64_t unknown_replies_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_APP_ORACLE_H_
