#include "src/trace/trace.h"

#include <cassert>
#include <cstdio>

#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/core/protocol.h"
#include "src/trace/json_util.h"

namespace xk {

namespace {
thread_local TraceSink* g_thread_default = nullptr;
}  // namespace

const char* TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kPush:
      return "push";
    case TraceOp::kPop:
      return "pop";
    case TraceOp::kDemux:
      return "demux";
    case TraceOp::kOpen:
      return "open";
    case TraceOp::kIntr:
      return "intr";
    case TraceOp::kIssue:
      return "issue";
    case TraceOp::kDone:
      return "done";
    case TraceOp::kExec:
      return "exec";
    case TraceOp::kRetransmit:
      return "rexmit";
    case TraceOp::kGiveUp:
      return "giveup";
    case TraceOp::kPick:
      return "pick";
    case TraceOp::kReroute:
      return "reroute";
    case TraceOp::kReplicaDown:
      return "replica_down";
    case TraceOp::kReplicaReadmit:
      return "replica_readmit";
    case TraceOp::kEvict:
      return "evict";
    case TraceOp::kForward:
      return "forward";
    case TraceOp::kTtlDrop:
      return "ttl_drop";
    case TraceOp::kNoRoute:
      return "no_route";
    case TraceOp::kCrash:
      return "crash";
    case TraceOp::kRestart:
      return "restart";
    case TraceOp::kShed:
      return "shed";
    case TraceOp::kReject:
      return "reject";
    case TraceOp::kBudgetExhausted:
      return "budget_exhausted";
    case TraceOp::kHedge:
      return "hedge";
    case TraceOp::kHedgeCancel:
      return "hedge_cancel";
  }
  return "?";
}

TraceSink* TraceSink::thread_default() { return g_thread_default; }

void TraceSink::set_thread_default(TraceSink* sink) { g_thread_default = sink; }

TraceSink::TraceSink(size_t max_records) : max_records_(max_records) {}

uint32_t TraceSink::InternName(const std::string& name) {
  auto [it, inserted] = name_index_.try_emplace(name, static_cast<uint32_t>(names_.size()));
  if (inserted) {
    names_.push_back(name);
  }
  return it->second;
}

uint64_t TraceSink::SessionTraceId(Session* sess) {
  if (sess == nullptr) {
    return 0;
  }
  if (sess->trace_id_ == 0) {
    sess->trace_id_ = id_tag_ | next_sess_id_++;
    if (id_tag_ != 0) {
      // Tell the master about the new id now: ids must merge in allocation
      // order, and the span carrying this id is only emitted when it closes.
      Record r;
      r.kind = Record::Kind::kAlloc;
      r.sess = sess->trace_id_;
      Append(std::move(r));
    }
  }
  return TranslateId(sess->trace_id_, tagged_sess_, next_sess_id_);
}

uint64_t TraceSink::MessageTraceId(const Message* msg) {
  if (msg == nullptr) {
    return 0;
  }
  if (msg->trace_id_ == 0) {
    msg->trace_id_ = id_tag_ | next_msg_id_++;
    if (id_tag_ != 0) {
      Record r;
      r.kind = Record::Kind::kAlloc;
      r.msg = msg->trace_id_;
      Append(std::move(r));
    }
  }
  return TranslateId(msg->trace_id_, tagged_msg_, next_msg_id_);
}

uint64_t TraceSink::TranslateId(uint64_t id, std::unordered_map<uint64_t, uint64_t>& map,
                                uint64_t& next_id) {
  if ((id & kIdTagBit) == 0 || id_tag_ != 0) {
    return id;  // untagged, or we are a shard: record as-is
  }
  auto [it, inserted] = map.try_emplace(id, 0);
  if (inserted) {
    it->second = next_id++;
  }
  return it->second;
}

std::vector<TraceSink::Record> TraceSink::DrainRecords() {
  std::vector<Record> out = std::move(records_);
  records_.clear();
  return out;
}

void TraceSink::AbsorbRecord(const TraceSink& shard, ShardNameMap& names, Record rec) {
  auto map_name = [&](uint32_t idx) {
    if (names.to_master.size() < shard.names_.size()) {
      names.to_master.resize(shard.names_.size(), UINT32_MAX);
    }
    uint32_t& m = names.to_master[idx];
    if (m == UINT32_MAX) {
      m = InternName(shard.names_[idx]);
    }
    return m;
  };
  switch (rec.kind) {
    case Record::Kind::kSpan:
    case Record::Kind::kEvent:
      rec.host = map_name(rec.host);
      rec.proto = map_name(rec.proto);
      rec.sess = TranslateId(rec.sess, tagged_sess_, next_sess_id_);
      rec.msg = TranslateId(rec.msg, tagged_msg_, next_msg_id_);
      break;
    case Record::Kind::kWire:
      rec.msg = TranslateId(rec.msg, tagged_msg_, next_msg_id_);
      break;
    case Record::Kind::kLog:
      rec.host = map_name(rec.host);
      break;
    case Record::Kind::kAlloc:
      // Establish the id mapping at the allocation's canonical position; the
      // marker itself is not part of the trace.
      if (rec.sess != 0) {
        (void)TranslateId(rec.sess, tagged_sess_, next_sess_id_);
      }
      if (rec.msg != 0) {
        (void)TranslateId(rec.msg, tagged_msg_, next_msg_id_);
      }
      return;
  }
  Append(std::move(rec));
}

void TraceSink::BeginSpan(Kernel& kernel, TraceOp op, const Protocol& proto, Session* sess,
                          const Message* msg) {
  Frame f;
  f.rec.kind = Record::Kind::kSpan;
  f.rec.host = InternName(kernel.host_name());
  f.rec.proto = InternName(proto.name());
  f.rec.op = op;
  f.rec.depth = static_cast<uint32_t>(stack_.size());
  f.rec.sess = SessionTraceId(sess);
  f.rec.msg = MessageTraceId(msg);
  f.rec.len = msg != nullptr ? msg->length() : 0;
  f.rec.t0 = kernel.now();
  f.busy0 = kernel.cpu().total_busy();
  stack_.push_back(std::move(f));
}

void TraceSink::EndSpan(Kernel& kernel, Status status) {
  assert(!stack_.empty());
  Frame f = std::move(stack_.back());
  stack_.pop_back();
  f.rec.status = status.code();
  f.rec.t1 = kernel.now();
  f.rec.incl = kernel.cpu().total_busy() - f.busy0;
  f.rec.excl = f.rec.incl - f.child_incl;
  if (!stack_.empty()) {
    stack_.back().child_incl += f.rec.incl;
  }
  Append(std::move(f.rec));
}

void TraceSink::RecordWire(int segment, SimTime tx_start, SimTime tx_end, SimTime arrival,
                           size_t bytes, uint64_t queue_depth, SimTime queue_wait,
                           uint64_t msg_id) {
  Record r;
  r.kind = Record::Kind::kWire;
  r.segment = segment;
  r.t0 = tx_start;
  r.t1 = tx_end;
  r.arrival = arrival;
  r.len = bytes;
  r.qdepth = queue_depth;
  r.qwait = queue_wait;
  r.msg = TranslateId(msg_id, tagged_msg_, next_msg_id_);
  Append(std::move(r));
}

void TraceSink::RecordEvent(Kernel& kernel, TraceOp op, std::string_view proto_name,
                            SimTime t, uint64_t call, const Message* msg, Session* sess,
                            uint64_t detail, StatusCode status) {
  Record r;
  r.kind = Record::Kind::kEvent;
  r.host = InternName(kernel.host_name());
  r.proto = InternName(std::string(proto_name));
  r.op = op;
  r.t0 = t;
  r.call = call;
  r.msg = MessageTraceId(msg);
  r.sess = SessionTraceId(sess);
  r.len = detail;
  r.status = status;
  Append(std::move(r));
}

void TraceSink::InheritTraceId(const Message& msg, uint64_t id) {
  if (msg.trace_id_ == 0 && id != 0) {
    msg.trace_id_ = id;
  }
}

void TraceSink::RecordLog(const Kernel& kernel, int level, std::string_view text) {
  Record r;
  r.kind = Record::Kind::kLog;
  r.host = InternName(kernel.host_name());
  r.level = level;
  r.t0 = kernel.now();
  r.text = std::string(text);
  Append(std::move(r));
}

void TraceSink::Append(Record rec) {
  if (records_.size() >= max_records_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(rec));
}

void TraceSink::Clear() {
  records_.clear();
  dropped_ = 0;
}

std::string TraceSink::ToJsonl() const {
  std::string out;
  out.reserve(records_.size() * 96 + 128);
  out += "{\"k\":\"meta\",\"v\":1,\"records\":" + std::to_string(records_.size()) +
         ",\"dropped\":" + std::to_string(dropped_) + "}\n";
  for (const Record& r : records_) {
    switch (r.kind) {
      case Record::Kind::kAlloc:
        continue;  // shard bookkeeping, never output
      case Record::Kind::kSpan:
        out += "{\"k\":\"span\"";
        JsonAppendField(out, "host", names_[r.host]);
        JsonAppendField(out, "proto", names_[r.proto]);
        JsonAppendField(out, "op", TraceOpName(r.op));
        JsonAppendField(out, "sess", r.sess);
        JsonAppendField(out, "msg", r.msg);
        JsonAppendField(out, "len", r.len);
        JsonAppendField(out, "t0", r.t0);
        JsonAppendField(out, "t1", r.t1);
        JsonAppendField(out, "incl", r.incl);
        JsonAppendField(out, "excl", r.excl);
        JsonAppendField(out, "depth", static_cast<uint64_t>(r.depth));
        JsonAppendField(out, "status", StatusCodeName(r.status));
        break;
      case Record::Kind::kWire:
        out += "{\"k\":\"wire\"";
        JsonAppendField(out, "seg", static_cast<int64_t>(r.segment));
        JsonAppendField(out, "t0", r.t0);
        JsonAppendField(out, "t1", r.t1);
        JsonAppendField(out, "arrive", r.arrival);
        JsonAppendField(out, "len", r.len);
        JsonAppendField(out, "qd", r.qdepth);
        JsonAppendField(out, "qw", r.qwait);
        JsonAppendField(out, "msg", r.msg);
        break;
      case Record::Kind::kEvent:
        out += "{\"k\":\"ev\"";
        JsonAppendField(out, "host", names_[r.host]);
        JsonAppendField(out, "proto", names_[r.proto]);
        JsonAppendField(out, "op", TraceOpName(r.op));
        JsonAppendField(out, "t", r.t0);
        JsonAppendField(out, "call", r.call);
        JsonAppendField(out, "msg", r.msg);
        JsonAppendField(out, "sess", r.sess);
        JsonAppendField(out, "detail", r.len);
        JsonAppendField(out, "status", StatusCodeName(r.status));
        break;
      case Record::Kind::kLog:
        out += "{\"k\":\"log\"";
        JsonAppendField(out, "host", names_[r.host]);
        JsonAppendField(out, "t", r.t0);
        JsonAppendField(out, "level", static_cast<int64_t>(r.level));
        JsonAppendField(out, "text", r.text);
        break;
    }
    out += "}\n";
  }
  return out;
}

bool TraceSink::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string s = ToJsonl();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace xk
