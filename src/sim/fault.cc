#include "src/sim/fault.h"

#include <cstdio>
#include <cstdlib>

#include "src/core/kernel.h"
#include "src/proto/topology.h"

namespace xk {

namespace {

// Formats a time with the coarsest unit that represents it exactly, so
// Parse(ToString()) round-trips and the common cases read naturally.
std::string TimeStr(SimTime t) {
  if (t != 0 && t % Sec(1) == 0) {
    return std::to_string(t / Sec(1)) + "s";
  }
  if (t % Msec(1) == 0) {
    return std::to_string(t / Msec(1)) + "ms";
  }
  if (t % Usec(1) == 0) {
    return std::to_string(t / Usec(1)) + "us";
  }
  return std::to_string(t) + "ns";
}

std::string RateStr(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", r);
  return buf;
}

bool ParseTime(const std::string& v, SimTime* out) {
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) {
    return false;
  }
  const std::string suffix(end);
  double mult;
  if (suffix == "s") {
    mult = 1e9;
  } else if (suffix == "ms") {
    mult = 1e6;
  } else if (suffix == "us") {
    mult = 1e3;
  } else if (suffix == "ns" || suffix.empty()) {
    mult = 1.0;
  } else {
    return false;
  }
  *out = static_cast<SimTime>(num * mult);
  return true;
}

bool ParseDouble(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

// Splits `s` on `sep`, keeping empty tokens out.
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      end = s.size();
    }
    if (end > start) {
      out.push_back(s.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

bool ParseClause(const std::string& token, FaultPlan* plan, std::string* error) {
  const size_t colon = token.find(':');
  const std::string kind = token.substr(0, colon);
  const std::string rest = colon == std::string::npos ? "" : token.substr(colon + 1);

  if (kind == "seed") {
    char* end = nullptr;
    plan->seed = std::strtoull(rest.c_str(), &end, 10);
    if (end == rest.c_str() || *end != '\0') {
      if (error != nullptr) {
        *error = "bad value '" + rest + "' for seed";
      }
      return false;
    }
    return true;
  }

  FaultClause c;
  if (kind == "partition") {
    c.kind = FaultClause::Kind::kPartition;
  } else if (kind == "drop") {
    c.kind = FaultClause::Kind::kDropWindow;
  } else if (kind == "ge") {
    c.kind = FaultClause::Kind::kGilbertElliott;
  } else if (kind == "dup") {
    c.kind = FaultClause::Kind::kDuplicateStorm;
  } else if (kind == "delay") {
    c.kind = FaultClause::Kind::kDelaySpike;
  } else if (kind == "corrupt") {
    c.kind = FaultClause::Kind::kCorruptWindow;
  } else if (kind == "crash") {
    c.kind = FaultClause::Kind::kCrash;
  } else {
    if (error != nullptr) {
      *error = "unknown fault kind '" + kind + "'";
    }
    return false;
  }

  for (const std::string& pair : Split(rest, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "expected key=value, got '" + pair + "'";
      }
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    bool ok = true;
    if (key == "seg") {
      char* end = nullptr;
      const long seg = std::strtol(val.c_str(), &end, 10);
      ok = end != val.c_str() && *end == '\0' && seg >= -1;  // -1 = all segments
      c.segment = static_cast<int>(seg);
    } else if (key == "from") {
      ok = ParseTime(val, &c.from);
    } else if (key == "until") {
      ok = ParseTime(val, &c.until);
    } else if (key == "rate") {
      ok = ParseDouble(val, &c.rate);
    } else if (key == "delay") {
      ok = ParseTime(val, &c.delay);
    } else if (key == "p_enter") {
      ok = ParseDouble(val, &c.p_enter);
    } else if (key == "p_exit") {
      ok = ParseDouble(val, &c.p_exit);
    } else if (key == "loss_good") {
      ok = ParseDouble(val, &c.loss_good);
    } else if (key == "loss_bad") {
      ok = ParseDouble(val, &c.loss_bad);
    } else if (key == "host") {
      c.host = val;
    } else if (key == "at") {
      ok = ParseTime(val, &c.at);
    } else if (key == "restart") {
      ok = ParseTime(val, &c.restart_at);
    } else {
      if (error != nullptr) {
        *error = "unknown key '" + key + "' in '" + kind + "' clause";
      }
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad value '" + val + "' for key '" + key + "'";
      }
      return false;
    }
  }

  if (c.kind == FaultClause::Kind::kCrash && c.host.empty()) {
    if (error != nullptr) {
      *error = "crash clause needs host=";
    }
    return false;
  }
  plan->clauses.push_back(std::move(c));
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

FaultPlan& FaultPlan::Partition(int segment, SimTime from, SimTime until) {
  FaultClause c;
  c.kind = FaultClause::Kind::kPartition;
  c.segment = segment;
  c.from = from;
  c.until = until;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::DropWindow(int segment, SimTime from, SimTime until, double rate) {
  FaultClause c;
  c.kind = FaultClause::Kind::kDropWindow;
  c.segment = segment;
  c.from = from;
  c.until = until;
  c.rate = rate;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::GilbertElliott(int segment, SimTime from, SimTime until, double p_enter,
                                     double p_exit, double loss_good, double loss_bad) {
  FaultClause c;
  c.kind = FaultClause::Kind::kGilbertElliott;
  c.segment = segment;
  c.from = from;
  c.until = until;
  c.p_enter = p_enter;
  c.p_exit = p_exit;
  c.loss_good = loss_good;
  c.loss_bad = loss_bad;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::DuplicateStorm(int segment, SimTime from, SimTime until, double rate) {
  FaultClause c;
  c.kind = FaultClause::Kind::kDuplicateStorm;
  c.segment = segment;
  c.from = from;
  c.until = until;
  c.rate = rate;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::DelaySpike(int segment, SimTime from, SimTime until, double rate,
                                 SimTime delay) {
  FaultClause c;
  c.kind = FaultClause::Kind::kDelaySpike;
  c.segment = segment;
  c.from = from;
  c.until = until;
  c.rate = rate;
  c.delay = delay;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::CorruptWindow(int segment, SimTime from, SimTime until, double rate) {
  FaultClause c;
  c.kind = FaultClause::Kind::kCorruptWindow;
  c.segment = segment;
  c.from = from;
  c.until = until;
  c.rate = rate;
  clauses.push_back(std::move(c));
  return *this;
}

FaultPlan& FaultPlan::Crash(const std::string& host, SimTime at, SimTime restart_at) {
  FaultClause c;
  c.kind = FaultClause::Kind::kCrash;
  c.host = host;
  c.at = at;
  c.restart_at = restart_at;
  clauses.push_back(std::move(c));
  return *this;
}

bool FaultPlan::HasLinkClauses() const {
  for (const FaultClause& c : clauses) {
    if (c.kind != FaultClause::Kind::kCrash) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::HasCrashClauses() const {
  for (const FaultClause& c : clauses) {
    if (c.kind == FaultClause::Kind::kCrash) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  for (const std::string& token : Split(spec, ';')) {
    if (!ParseClause(token, &plan, error)) {
      return false;
    }
  }
  *out = std::move(plan);
  return true;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultClause& c : clauses) {
    if (!out.empty()) {
      out += ';';
    }
    const std::string window = "seg=" + std::to_string(c.segment) +
                               ",from=" + TimeStr(c.from) + ",until=" + TimeStr(c.until);
    switch (c.kind) {
      case FaultClause::Kind::kPartition:
        out += "partition:" + window;
        break;
      case FaultClause::Kind::kDropWindow:
        out += "drop:" + window + ",rate=" + RateStr(c.rate);
        break;
      case FaultClause::Kind::kGilbertElliott:
        out += "ge:" + window + ",p_enter=" + RateStr(c.p_enter) +
               ",p_exit=" + RateStr(c.p_exit) + ",loss_good=" + RateStr(c.loss_good) +
               ",loss_bad=" + RateStr(c.loss_bad);
        break;
      case FaultClause::Kind::kDuplicateStorm:
        out += "dup:" + window + ",rate=" + RateStr(c.rate);
        break;
      case FaultClause::Kind::kDelaySpike:
        out += "delay:" + window + ",rate=" + RateStr(c.rate) + ",delay=" + TimeStr(c.delay);
        break;
      case FaultClause::Kind::kCorruptWindow:
        out += "corrupt:" + window + ",rate=" + RateStr(c.rate);
        break;
      case FaultClause::Kind::kCrash:
        out += "crash:host=" + c.host + ",at=" + TimeStr(c.at);
        if (c.restart_at != 0) {
          out += ",restart=" + TimeStr(c.restart_at);
        }
        break;
    }
  }
  if (seed != 1) {
    if (!out.empty()) {
      out += ';';
    }
    out += "seed:" + std::to_string(seed);
  }
  return out;
}

// ---------------------------------------------------------------------------
// FaultEngine
// ---------------------------------------------------------------------------

FaultEngine::FaultEngine(Internet& net, FaultPlan plan) : net_(net), plan_(std::move(plan)) {
  segs_.reserve(net_.num_segments());
  for (size_t i = 0; i < net_.num_segments(); ++i) {
    // Independent per-segment streams so adding a segment never shifts the
    // draws another segment sees.
    segs_.push_back(
        SegmentState{Rng(plan_.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1))), false});
  }
  if (plan_.HasLinkClauses()) {
    hooks_installed_ = true;
    for (size_t i = 0; i < net_.num_segments(); ++i) {
      const int seg = static_cast<int>(i);
      net_.segment(seg).set_fault_hook_ex(
          [this, seg](const EthFrame& frame, int receiver_id, uint64_t delivery_index,
                      SimTime arrival) {
            (void)receiver_id;
            (void)delivery_index;
            return Decide(seg, frame, arrival);
          });
    }
  }
  for (const FaultClause& c : plan_.clauses) {
    if (c.kind != FaultClause::Kind::kCrash) {
      continue;
    }
    Kernel* k = net_.host(c.host).kernel;
    const SimTime restart_delay = c.restart_at > c.at ? c.restart_at - c.at : 0;
    k->ScheduleTask(c.at - k->events().now(), [this, host = c.host, restart_delay]() {
      net_.CrashHost(host);
      if (restart_delay > 0) {
        // Scheduled AFTER Crash() cleared the pending registry, so this
        // handle survives the crash and brings the host back.
        net_.host(host).kernel->ScheduleTask(restart_delay,
                                             [this, host]() { net_.RestartHost(host); });
      }
    });
  }
}

FaultEngine::~FaultEngine() {
  if (hooks_installed_) {
    for (size_t i = 0; i < net_.num_segments(); ++i) {
      net_.segment(static_cast<int>(i)).set_fault_hook_ex(nullptr);
    }
  }
}

DeliveryFault FaultEngine::Decide(int segment_id, const EthFrame& frame, SimTime arrival) {
  ++decisions_;
  DeliveryFault out;
  SegmentState& st = segs_[segment_id];
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  for (const FaultClause& c : plan_.clauses) {
    if (c.kind == FaultClause::Kind::kCrash) {
      continue;
    }
    if (c.segment >= 0 && c.segment != segment_id) {
      continue;
    }
    if (arrival < c.from || (c.until != 0 && arrival >= c.until)) {
      continue;
    }
    switch (c.kind) {
      case FaultClause::Kind::kPartition:
        drop = true;
        break;
      case FaultClause::Kind::kDropWindow:
        drop = st.rng.Chance(c.rate) || drop;
        break;
      case FaultClause::Kind::kGilbertElliott:
        // Step the chain on every frame in the window, before sampling loss,
        // so the burst structure is independent of other clauses.
        if (st.ge_bad) {
          if (st.rng.Chance(c.p_exit)) {
            st.ge_bad = false;
          }
        } else if (st.rng.Chance(c.p_enter)) {
          st.ge_bad = true;
        }
        drop = st.rng.Chance(st.ge_bad ? c.loss_bad : c.loss_good) || drop;
        break;
      case FaultClause::Kind::kDuplicateStorm:
        duplicate = st.rng.Chance(c.rate) || duplicate;
        break;
      case FaultClause::Kind::kDelaySpike:
        if (st.rng.Chance(c.rate)) {
          out.extra_delay += c.delay;
        }
        break;
      case FaultClause::Kind::kCorruptWindow:
        corrupt = st.rng.Chance(c.rate) || corrupt;
        break;
      case FaultClause::Kind::kCrash:
        break;
    }
  }
  // Severity order: a dropped frame can't also be corrupted or duplicated.
  if (drop) {
    out.verdict = LinkFault::kDrop;
  } else if (corrupt) {
    out.verdict = LinkFault::kCorrupt;
    if (!frame.bytes.empty()) {
      out.corrupt_offset = st.rng.NextBelow(frame.bytes.size());
    }
  } else if (duplicate) {
    out.verdict = LinkFault::kDuplicate;
  }
  return out;
}

}  // namespace xk
