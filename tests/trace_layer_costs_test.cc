// Table III from a trace: the per-call latency reconstructed from observed
// spans and wire records must match the benchmark's measured latency within
// 1% (the acceptance bar for the trace-based layer-cost methodology).

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/tools/trace_reader.h"
#include "src/trace/trace.h"

namespace xk {
namespace {

struct TracedLatency {
  double measured_ms = 0;   // what the workload reports
  double estimated_ms = 0;  // reconstructed from the trace
  uint64_t calls = 0;
};

TracedLatency RunTraced(int layers) {
  TraceSink sink;
  TraceSink::set_thread_default(&sink);
  EchoExperiment e = MakeEchoExperiment(layers);
  TraceSink::set_thread_default(nullptr);
  // Drop the setup-phase records (opens, enables) so the trace covers exactly
  // the measured calls, mirroring how steady-state latency is reported.
  sink.Clear();

  LatencyResult lat = RpcWorkload::MeasureLatency(*e.net, *e.ch->kernel, e.MakeCall(), 64);
  EXPECT_EQ(lat.completed, 64);
  EXPECT_EQ(sink.dropped(), 0u);

  const tracetool::TraceFile tf = tracetool::Parse(sink.ToJsonl());
  EXPECT_FALSE(tf.spans.empty());
  EXPECT_FALSE(tf.wires.empty());
  const tracetool::Breakdown b = tracetool::Analyze(tf);

  TracedLatency out;
  out.measured_ms = ToMsec(lat.per_call);
  out.estimated_ms = b.PerCallUsec() / 1000.0;
  out.calls = b.calls;
  return out;
}

TEST(TraceLayerCosts, EstimateWithinOnePercentOfMeasurement) {
  for (int layers : {0, 1, 2}) {
    SCOPED_TRACE("layers=" + std::to_string(layers));
    const TracedLatency r = RunTraced(layers);
    EXPECT_EQ(r.calls, 64u);  // inferred from per-layer push counts
    EXPECT_GT(r.measured_ms, 0.0);
    EXPECT_NEAR(r.estimated_ms, r.measured_ms, r.measured_ms * 0.01)
        << "estimated " << r.estimated_ms << " ms vs measured " << r.measured_ms << " ms";
  }
}

// The incremental cost of adding a layer, as seen by the trace estimates,
// must track the benchmark's deltas (Table III's methodology).
TEST(TraceLayerCosts, IncrementalCostsTrackMeasurement) {
  const TracedLatency l0 = RunTraced(0);
  const TracedLatency l1 = RunTraced(1);
  const TracedLatency l2 = RunTraced(2);

  const double measured_d1 = l1.measured_ms - l0.measured_ms;
  const double estimated_d1 = l1.estimated_ms - l0.estimated_ms;
  const double measured_d2 = l2.measured_ms - l1.measured_ms;
  const double estimated_d2 = l2.estimated_ms - l1.estimated_ms;

  EXPECT_GT(measured_d1, 0.0);
  EXPECT_GT(measured_d2, 0.0);
  // Deltas are differences of two ~1%-accurate numbers; allow 5% of the
  // larger endpoint latency.
  EXPECT_NEAR(estimated_d1, measured_d1, l1.measured_ms * 0.05);
  EXPECT_NEAR(estimated_d2, measured_d2, l2.measured_ms * 0.05);
}

}  // namespace
}  // namespace xk
