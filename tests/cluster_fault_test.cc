// Multi-hop routed RPC under faults: datacenter topologies (client segments
// fanning through the core router into a replica pool) driven through
// partition and crash/restart campaigns, with the at-most-once oracle and the
// router/segment accounting checked end to end.

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/datacenter.h"
#include "src/sim/fault.h"

namespace xk {
namespace {

ArrivalSpec Arrivals(const std::string& text) {
  ArrivalSpec spec;
  std::string error;
  EXPECT_TRUE(ArrivalSpec::Parse(text, &spec, &error)) << error;
  return spec;
}

TEST(ClusterFaultTest, RouterAdjacentPartitionHealsOracleClean) {
  // Partition the second client segment (net segment 2: the server segment is
  // 0, client segments follow) for 40ms mid-run. Calls issued through the
  // partition retransmit; CHANNEL's 50ms base timeout puts the first retry
  // past the heal, so every call still completes -- no replica is ever
  // suspected, because the fault is on the client side of the router.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  spec.arrivals = Arrivals("poisson:rate=200,horizon=120ms,seed=21");
  spec.faults.Partition(2, Msec(20), Msec(60));

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_EQ(r.success_ppm, 1000000u);
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " silent=" << r.oracle.silent;
  EXPECT_EQ(r.down_marks, 0u);

  // The partition dropped frames at the wire on the partitioned segment only,
  // and a partition is not a crash: no station ever detached.
  ASSERT_EQ(r.segments.size(), 3u);
  EXPECT_GT(r.segments[2].fault_drops, 0u);
  EXPECT_EQ(r.segments[0].fault_drops, 0u);
  EXPECT_EQ(r.segments[1].fault_drops, 0u);
  for (const DatacenterResult::SegStat& seg : r.segments) {
    EXPECT_EQ(seg.down_drops, 0u) << "segment " << seg.segment;
  }

  // Multi-hop accounting: every completed call was forwarded at least twice
  // (request in, reply out), and the retransmissions through the healed
  // partition were forwarded too.
  ASSERT_EQ(r.routers.size(), 1u);
  EXPECT_GE(r.routers[0].forwards, 2 * r.completed);
  EXPECT_EQ(r.routers[0].no_route_drops, 0u);
  EXPECT_EQ(r.routers[0].ttl_drops, 0u);
}

TEST(ClusterFaultTest, ReplicaCrashFailoverRecoversAfterRestart) {
  // Crash replica s0 at 80ms and restart it at 500ms -- longer than CHANNEL's
  // retry budget, so calls in flight toward it fail rather than ride it out.
  // Every client discovers the crash through its own failed call, marks s0
  // down, fails over to the survivors, and readmits s0 on probation; calls
  // issued after the restart all complete.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 3;
  spec.readmit_after = Msec(120);
  spec.arrivals = Arrivals("poisson:rate=100,horizon=900ms,seed=17");
  spec.faults.Crash("s0", Msec(80), Msec(500));

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GE(r.failed, 1u);  // the calls that discovered the dead replica
  EXPECT_GE(r.down_marks, 1u);
  EXPECT_GE(r.readmits, 1u);
  EXPECT_GT(r.replica_calls[0], 0u);

  // At-most-once held across the crash/restart cycle.
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " unknown=" << r.oracle.unknown_replies
      << " silent=" << r.oracle.silent;
  EXPECT_GT(r.oracle.executions, 0u);

  // Failover timeline (attributed by issue time against [80ms, 500ms)): the
  // outage window saw failures, the post-restart phase saw none.
  EXPECT_GT(r.phases[1].issued, 0u);
  EXPECT_GE(r.phases[1].failed, 1u);
  EXPECT_LT(r.phases[1].success_ppm, 1000000u);
  EXPECT_GT(r.phases[2].issued, 0u);
  EXPECT_EQ(r.phases[2].failed, 0u);
  EXPECT_EQ(r.phases[2].success_ppm, 1000000u);

  // The crash detached s0's station: frames toward it died at the wire.
  EXPECT_GT(r.segments[0].down_drops, 0u);
}

}  // namespace
}  // namespace xk
