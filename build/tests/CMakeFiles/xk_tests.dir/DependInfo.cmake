
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arp_eth_test.cc" "tests/CMakeFiles/xk_tests.dir/arp_eth_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/arp_eth_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/xk_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/channel_select_test.cc" "tests/CMakeFiles/xk_tests.dir/channel_select_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/channel_select_test.cc.o.d"
  "/root/repo/tests/checksum_test.cc" "tests/CMakeFiles/xk_tests.dir/checksum_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/checksum_test.cc.o.d"
  "/root/repo/tests/cpu_link_test.cc" "tests/CMakeFiles/xk_tests.dir/cpu_link_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/cpu_link_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/xk_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/fragment_test.cc" "tests/CMakeFiles/xk_tests.dir/fragment_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/fragment_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/xk_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ip_test.cc" "tests/CMakeFiles/xk_tests.dir/ip_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/ip_test.cc.o.d"
  "/root/repo/tests/kernel_tools_test.cc" "tests/CMakeFiles/xk_tests.dir/kernel_tools_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/kernel_tools_test.cc.o.d"
  "/root/repo/tests/message_test.cc" "tests/CMakeFiles/xk_tests.dir/message_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/message_test.cc.o.d"
  "/root/repo/tests/psync_sun_test.cc" "tests/CMakeFiles/xk_tests.dir/psync_sun_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/psync_sun_test.cc.o.d"
  "/root/repo/tests/sprite_rpc_test.cc" "tests/CMakeFiles/xk_tests.dir/sprite_rpc_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/sprite_rpc_test.cc.o.d"
  "/root/repo/tests/udp_icmp_test.cc" "tests/CMakeFiles/xk_tests.dir/udp_icmp_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/udp_icmp_test.cc.o.d"
  "/root/repo/tests/vip_test.cc" "tests/CMakeFiles/xk_tests.dir/vip_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/vip_test.cc.o.d"
  "/root/repo/tests/wire_test.cc" "tests/CMakeFiles/xk_tests.dir/wire_test.cc.o" "gcc" "tests/CMakeFiles/xk_tests.dir/wire_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xk_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xk_psync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xk_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xk_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xk_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
