# Empty dependencies file for bench_table2_layering.
# This may be replaced when dependencies are built.
