file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_layering.dir/bench_table2_layering.cc.o"
  "CMakeFiles/bench_table2_layering.dir/bench_table2_layering.cc.o.d"
  "bench_table2_layering"
  "bench_table2_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
