// Stack builders: one function per protocol configuration the paper measures.
//
// Each builder instantiates the named composition on one host (inside a
// configuration task) and returns pointers to every layer so tests and
// benchmarks can read statistics. Build the same configuration on both hosts
// of a topology, then attach anchors.
//
// Configurations (paper naming):
//   M_RPC-ETH / M_RPC-IP / M_RPC-VIP      -- BuildMRpc(h, Delivery::...)
//   L_RPC-VIP (SELECT-CHANNEL-FRAGMENT)   -- BuildLRpc(h)
//   SELECT-CHANNEL-VIPsize (Figure 3(b))  -- BuildLRpcDynamic(h)
//   Table III partial stacks              -- BuildPartial(h, layers)
//   Sun RPC mix-and-match                 -- BuildSunRpc(h, pairing, auth)

#ifndef XK_SRC_APP_STACKS_H_
#define XK_SRC_APP_STACKS_H_

#include "src/app/anchor.h"
#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "src/proto/vip.h"
#include "src/proto/vip_size.h"
#include "src/rpc/channel.h"
#include "src/rpc/fragment.h"
#include "src/rpc/select.h"
#include "src/rpc/select_fwd.h"
#include "src/rpc/sprite_rpc.h"
#include "src/rpc/sun/auth.h"
#include "src/rpc/sun/request_reply.h"
#include "src/rpc/sun/sun_select.h"

namespace xk {

// Which message-delivery protocol sits at the bottom of the RPC stack.
enum class Delivery {
  kEth,  // directly on the Ethernet (via the zero-cost open-time shim)
  kIp,   // always through IP
  kVip,  // the virtual protocol picks per destination/size
};

struct RpcStack {
  Protocol* top = nullptr;  // what anchors open against
  VipProtocol* vip = nullptr;
  VipAddrProtocol* vipaddr = nullptr;
  VipSizeProtocol* vipsize = nullptr;
  FragmentProtocol* fragment = nullptr;
  ChannelProtocol* channel = nullptr;
  SelectProtocol* select = nullptr;
  SpriteRpcProtocol* sprite = nullptr;
  RequestReplyProtocol* reqrep = nullptr;
  SunSelectProtocol* sunselect = nullptr;
  AuthProtocolBase* auth = nullptr;
};

// Monolithic Sprite RPC over the chosen delivery protocol.
RpcStack BuildMRpc(HostStack& h, Delivery delivery);

// Layered Sprite RPC: SELECT-CHANNEL-FRAGMENT over the chosen delivery.
RpcStack BuildLRpc(HostStack& h, Delivery delivery = Delivery::kVip);

// The Section 4.3 configuration: SELECT-CHANNEL-VIP_SIZE with FRAGMENT below
// the virtual protocol, bypassed for single-packet messages.
RpcStack BuildLRpcDynamic(HostStack& h);

// Partial layered stacks for Table III. `layers`: 0 = VIP only,
// 1 = FRAGMENT-VIP, 2 = CHANNEL-FRAGMENT-VIP, 3 = SELECT-CHANNEL-FRAGMENT-VIP.
RpcStack BuildPartial(HostStack& h, int layers);

// Layered Sprite RPC with the forwarding selector instead of SELECT.
RpcStack BuildLRpcForwarding(HostStack& h);

// Sun RPC mix-and-match.
enum class SunPairing { kRequestReply, kChannel };
enum class SunAuth { kNone, kAuthNone, kAuthCred };
RpcStack BuildSunRpc(HostStack& h, SunPairing pairing, SunAuth auth);

// UDP/IP (for the Section 1 cross-kernel comparison).
UdpProtocol* BuildUdp(HostStack& h);

// --- echo-session helpers for the partial stacks ------------------------------

// Client side: opens the session an EchoAnchor drives, against `stack.top`.
Result<SessionRef> OpenEchoSession(const RpcStack& stack, EchoAnchor& anchor, IpAddr peer);

// Server side: enables echo service on `stack.top`.
Status EnableEcho(const RpcStack& stack, EchoAnchor& anchor);

}  // namespace xk

#endif  // XK_SRC_APP_STACKS_H_
