#include "src/rpc/select.h"

#include "src/core/wire.h"
#include "src/trace/trace.h"

namespace xk {

// ---------------------------------------------------------------------------
// SelectProtocol
// ---------------------------------------------------------------------------

SelectProtocol::SelectProtocol(Kernel& kernel, Protocol* lower, std::string name,
                               RelProtoNum rel_proto)
    : Protocol(kernel, std::move(name), {lower}),
      rel_proto_(rel_proto),
      active_(*this),
      passive_(*this),
      calls_(*this),
      server_sessions_(*this) {
  MarkIdleCapable();
  ParticipantSet enable;
  enable.local.rel_proto = rel_proto_;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

bool SelectProtocol::EvictSession(Session& s) {
  if (auto* client = dynamic_cast<SelectSession*>(&s)) {
    // CanEvict vetoed outstanding calls; anything else holding the session
    // (the anchor's cached ref) vetoes here.
    if (client->weak_from_this().use_count() > 1) {
      return false;
    }
    active_.Unbind(Key{client->server_, client->command_});
    return true;
  }
  auto* server = static_cast<SelectServerSession*>(&s);
  if (server->weak_from_this().use_count() > 1) {
    return false;
  }
  server_sessions_.Unbind(server->channel_.get());
  return true;
}

Result<SelectProtocol::ChannelPool*> SelectProtocol::PoolFor(IpAddr server) {
  auto it = pools_.find(server);
  if (it != pools_.end()) {
    return &it->second;
  }
  // First contact with this server: open the fixed set of channels once and
  // cache them for every subsequent call ("caching open sessions at all three
  // levels" -- the paper's first layering pitfall).
  ChannelPool pool;
  pool.available = std::make_unique<XSemaphore>(kernel(), kNumChannels);
  for (int i = 0; i < kNumChannels; ++i) {
    ParticipantSet parts;
    parts.peer.host = server;
    parts.local.channel = static_cast<uint16_t>(i);
    parts.local.rel_proto = rel_proto_;
    Result<SessionRef> chan = lower(0)->Open(*this, parts);
    if (!chan.ok()) {
      return chan.status();
    }
    pool.channels.push_back(*chan);
    pool.busy.push_back(false);
  }
  return &pools_.emplace(server, std::move(pool)).first->second;
}

void SelectProtocol::ReleaseChannel(ChannelPool& pool, size_t index) {
  pool.busy[index] = false;
  pool.available->V();
}

int SelectProtocol::free_channels(IpAddr server) const {
  auto it = pools_.find(server);
  if (it == pools_.end()) {
    return kNumChannels;
  }
  int n = 0;
  for (bool b : it->second.busy) {
    n += b ? 0 : 1;
  }
  return n;
}

Result<SessionRef> SelectProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.peer.command.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.host, *parts.peer.command};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  Result<ChannelPool*> pool = PoolFor(*parts.peer.host);
  if (!pool.ok()) {
    return pool.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = client_pool_.Create(*this, &hlp, *parts.peer.host, *parts.peer.command);
  active_.Bind(key, sess);
  TrackIdle(*sess);
  return SessionRef(sess);
}

Status SelectProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  const uint16_t command = parts.local.command.value_or(kAnyCommand);
  Protocol* existing = nullptr;
  if (!passive_.TryBind(command, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(command, &hlp);  // idempotent re-enable recharges, as before
  }
  return OkStatus();
}

Protocol* SelectProtocol::HlpForCommand(uint16_t command) {
  if (Protocol* exact = passive_.Resolve(command)) {
    return exact;
  }
  return passive_.Peek(kAnyCommand);
}

Status SelectProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint8_t type = r.GetU8();
  const uint16_t command = r.GetU16();
  const uint8_t status = r.GetU8();
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }

  if (type == kTypeCall) {
    // Server side: map the command onto a procedure.
    Protocol* hlp = HlpForCommand(command);
    if (hlp == nullptr) {
      ++stats_.no_such_command;
      uint8_t reply_raw[kHeaderSize];
      WireWriter w(reply_raw);
      w.PutU8(kTypeReturn);
      w.PutU16(command);
      w.PutU8(kStatusNoSuchCommand);
      Message reply;
      kernel().ChargeHdrStore(kHeaderSize);
      reply.PushHeader(reply_raw);
      return lls->Push(reply);  // the channel is in_progress: this is its reply
    }
    SessionRef server_sess = server_sessions_.Resolve(lls);
    if (server_sess == nullptr) {
      kernel().ChargeSessionCreate();
      server_sess = server_pool_.Create(*this, hlp, lls->Ref());
      server_sessions_.Bind(lls, server_sess);
      TrackIdle(*server_sess);
      ParticipantSet up;
      up.local.command = command;
      Status s = hlp->OpenDoneUp(*this, server_sess, up);
      if (!s.ok()) {
        server_sessions_.Unbind(lls);
        return s;
      }
    }
    auto* ss = static_cast<SelectServerSession*>(server_sess.get());
    ss->set_last_command(command);
    ss->set_hlp(hlp);
    ++stats_.served;
    return server_sess->Pop(msg, lls);
  }

  if (type == kTypeReturn) {
    // Client side: match the reply to the call occupying this channel.
    SessionRef caller = calls_.Resolve(lls);
    if (caller == nullptr) {
      return ErrStatus(StatusCode::kNotFound);
    }
    ++stats_.returns;
    return static_cast<SelectSession*>(caller.get())->CompleteCall(lls, status, msg);
  }
  return ErrStatus(StatusCode::kInvalidArgument);
}

void SelectProtocol::SessionError(Session& lls, Status error) {
  SessionCallError(lls, error, nullptr);
}

void SelectProtocol::SessionCallError(Session& lls, Status error, const Message* request) {
  // A channel call failed (retransmissions exhausted, deadline, reject).
  // Release the channel and propagate to whoever was calling through it,
  // forwarding the request -- minus our header -- so multiplexed callers
  // above can tell WHICH call died.
  SessionRef caller = calls_.Take(&lls);
  if (caller == nullptr) {
    return;
  }
  auto* sess = static_cast<SelectSession*>(caller.get());
  auto it = pools_.find(sess->server());
  if (it != pools_.end()) {
    for (size_t i = 0; i < it->second.channels.size(); ++i) {
      if (it->second.channels[i].get() == &lls) {
        ReleaseChannel(it->second, i);
        break;
      }
    }
  }
  sess->CallFinished();
  if (sess->hlp() != nullptr) {
    if (request != nullptr && request->length() >= kHeaderSize) {
      Message req = *request;
      (void)req.Discard(kHeaderSize);
      sess->hlp()->SessionCallError(*sess, error, &req);
    } else {
      sess->hlp()->SessionCallError(*sess, error, nullptr);
    }
  }
}

Status SelectProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetFreeChannels:
      args.u64 = static_cast<uint64_t>(free_channels(args.ip));
      return OkStatus();
    case ControlOp::kGetMaxSendSize:
      return lower(0)->Control(ControlOp::kGetMaxSendSize, args);
    default:
      return Protocol::DoControl(op, args);
  }
}

// ---------------------------------------------------------------------------
// SelectSession (client)
// ---------------------------------------------------------------------------

SelectSession::SelectSession(SelectProtocol& owner, Protocol* hlp, IpAddr server,
                             uint16_t command)
    : Session(owner, hlp), sel_(owner), server_(server), command_(command) {}

Status SelectSession::DoPush(Message& msg) {
  Result<SelectProtocol::ChannelPool*> pool_r = sel_.PoolFor(server_);
  if (!pool_r.ok()) {
    return pool_r.status();
  }
  SelectProtocol::ChannelPool* pool = *pool_r;
  last_request_ = msg;
  forward_hops_ = 0;
  ++outstanding_;  // pins the session against eviction until settled
  ++sel_.stats_.calls;
  if (pool->available->count() == 0) {
    ++sel_.stats_.blocked_on_channel;
  }
  // Blocks (queues the continuation) if every channel is busy.
  pool->available->P([this, pool, msg]() mutable {
    if (msg.deadline() != 0 && kernel().now() >= msg.deadline()) {
      // The deadline lapsed while this call queued for a free channel: shed
      // it here rather than spending a wire exchange on a dead call.
      pool->available->V();
      ++sel_.stats_.expired_in_queue;
      if (TraceSink* ts = kernel().trace_sink()) {
        ts->RecordEvent(kernel(), TraceOp::kGiveUp, sel_.name(), kernel().now(), 0, &msg, this, 0,
                        StatusCode::kDeadlineExceeded);
      }
      CallFinished();
      if (hlp() != nullptr) {
        hlp()->SessionCallError(*this, ErrStatus(StatusCode::kDeadlineExceeded), &msg);
      }
      return;
    }
    size_t index = 0;
    while (index < pool->busy.size() && pool->busy[index]) {
      ++index;
    }
    pool->busy[index] = true;
    SessionRef channel = pool->channels[index];
    sel_.calls_.Bind(channel.get(), Ref());

    uint8_t raw[SelectProtocol::kHeaderSize];
    WireWriter w(raw);
    w.PutU8(SelectProtocol::kTypeCall);
    w.PutU16(command_);
    w.PutU8(SelectProtocol::kStatusOk);
    kernel().ChargeHdrStore(SelectProtocol::kHeaderSize);
    msg.PushHeader(raw);
    Status pushed = channel->Push(msg);
    if (!pushed.ok()) {
      // Synchronous failure (e.g. the deadline lapsed while the header charge
      // ran): unwind through the normal call-error path so the channel is
      // released and the caller learns which call died, instead of leaking a
      // busy channel and a silent call.
      sel_.SessionCallError(*channel, pushed, &msg);
    }
  });
  return OkStatus();
}

void SelectSession::CallFinished() {
  if (outstanding_ > 0) {
    --outstanding_;
  }
  // A sweep may have parked this session while the call pinned it; relink so
  // the now-idle session ages out normally.
  NoteActivity();
}

Status SelectSession::CompleteCall(Session* channel, uint8_t status, Message& reply) {
  CallFinished();
  // Unbind BEFORE releasing: V() may run a blocked caller inline, and that
  // caller immediately re-binds this channel to its own call.
  sel_.calls_.Unbind(channel);
  // Find the pool owning this channel. Usually it is this session's server's
  // pool, but a forwarded call's reply arrives on the forward target's pool.
  for (auto& [host, pool] : sel_.pools_) {
    bool found = false;
    for (size_t i = 0; i < pool.channels.size(); ++i) {
      if (pool.channels[i].get() == channel) {
        sel_.ReleaseChannel(pool, i);
        found = true;
        break;
      }
    }
    if (found) {
      break;
    }
  }
  if (status != SelectProtocol::kStatusOk) {
    if (hlp() != nullptr) {
      hlp()->SessionError(*this, ErrStatus(StatusCode::kNotFound));
    }
    return OkStatus();
  }
  return DeliverUp(reply);
}

Status SelectSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SelectSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = server_;
      return OkStatus();
    case ControlOp::kGetLastCommand:
      args.u64 = command_;
      return OkStatus();
    case ControlOp::kGetFreeChannels:
      args.u64 = static_cast<uint64_t>(sel_.free_channels(server_));
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// SelectServerSession
// ---------------------------------------------------------------------------

SelectServerSession::SelectServerSession(SelectProtocol& owner, Protocol* hlp,
                                         SessionRef channel)
    : Session(owner, hlp), sel_(owner), channel_(std::move(channel)) {}

Status SelectServerSession::DoPush(Message& msg) {
  uint8_t raw[SelectProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU8(SelectProtocol::kTypeReturn);
  w.PutU16(last_command_);
  w.PutU8(SelectProtocol::kStatusOk);
  kernel().ChargeHdrStore(SelectProtocol::kHeaderSize);
  msg.PushHeader(raw);
  return channel_->Push(msg);
}

Status SelectServerSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SelectServerSession::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetLastCommand) {
    args.u64 = last_command_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
