# Empty dependencies file for xk_app.
# This may be replaced when dependencies are built.
