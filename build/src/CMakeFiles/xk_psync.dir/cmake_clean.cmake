file(REMOVE_RECURSE
  "CMakeFiles/xk_psync.dir/psync/psync.cc.o"
  "CMakeFiles/xk_psync.dir/psync/psync.cc.o.d"
  "libxk_psync.a"
  "libxk_psync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_psync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
