// Shared helpers for protocol tests: a recording anchor protocol that sits on
// top of any stack, and small task-context conveniences.

#ifndef XK_TESTS_TEST_UTIL_H_
#define XK_TESTS_TEST_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

// A top-of-stack protocol for tests: records everything delivered to it and
// optionally runs a handler (e.g., to push a reply back down `lls`).
class TestAnchor : public Protocol {
 public:
  explicit TestAnchor(Kernel& kernel, std::string name = "anchor")
      : Protocol(kernel, std::move(name), {}) {}

  // All payloads delivered to this anchor, in arrival order.
  std::vector<std::vector<uint8_t>> received;
  // Lower sessions handed up by passive creation (OpenDoneUp).
  std::vector<SessionRef> accepted;
  // Optional: invoked on each delivery after recording.
  std::function<void(Message& msg, Session* lls)> on_receive;
  // What this protocol reports for kGetMaxSendSize (VIP asks).
  uint64_t max_send_size = UINT64_MAX;

  Status OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) override {
    (void)llp;
    (void)parts;
    accepted.push_back(std::move(lls));
    return OkStatus();
  }

 protected:
  Status DoDemux(Session* lls, Message& msg) override {
    received.push_back(msg.Flatten());
    if (on_receive) {
      on_receive(msg, lls);
    }
    return OkStatus();
  }

  Status DoControl(ControlOp op, ControlArgs& args) override {
    if (op == ControlOp::kGetMaxSendSize) {
      args.u64 = max_send_size;
      return OkStatus();
    }
    return ErrStatus(StatusCode::kUnsupported);
  }
};

// Runs `fn` as a task on `kernel` at the current event time.
inline void RunIn(Kernel& kernel, const std::function<void()>& fn) {
  kernel.RunTask(kernel.events().now(), fn);
}

inline std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> v) { return v; }

inline std::vector<uint8_t> PatternBytes(size_t n, uint8_t seed = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 131 + (i >> 7));
  }
  return v;
}

}  // namespace xk

#endif  // XK_TESTS_TEST_UTIL_H_
