// Idle eviction under chaos: a datacenter workload where cold sessions are
// reclaimed mid-run while replicas crash and restart and CHANNEL calls
// retransmit through the outage. Eviction must be invisible to correctness:
// the at-most-once oracle stays clean, calls issued outside the outage all
// complete, and the evicted sessions are rebuilt transparently on the next
// call (an open after eviction is just a slower open).

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/datacenter.h"
#include "src/sim/fault.h"

namespace xk {
namespace {

ArrivalSpec Arrivals(const std::string& text) {
  ArrivalSpec spec;
  std::string error;
  EXPECT_TRUE(ArrivalSpec::Parse(text, &spec, &error)) << error;
  return spec;
}

TEST(EvictionChaosTest, IdleEvictionAloneIsInvisibleToTheWorkload) {
  // No faults: a slow trickle of calls with connection churn (the client
  // drops its cached session every 3 calls, releasing the stack beneath it)
  // and an idle timeout shorter than the inter-arrival gap, so released
  // sessions are evicted and rebuilt between calls.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  spec.arrivals = Arrivals("poisson:rate=50,horizon=200ms,churn=3,seed=11");
  spec.idle_timeout = Msec(8);  // << the ~20ms mean inter-arrival gap

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_EQ(r.success_ppm, 1000000u);  // every call completed
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " silent=" << r.oracle.silent;
  // Eviction actually happened -- this run reclaims sessions between calls.
  EXPECT_GT(r.idle_evictions, 0u);
  EXPECT_EQ(r.down_marks, 0u);  // eviction is not failure detection
}

TEST(EvictionChaosTest, EvictionRacingCrashAndRetransmitStaysOracleClean) {
  // The soak: replica s0 crashes at 80ms and restarts at 500ms while an idle
  // timeout keeps sweeping cold sessions on every layer -- VPOOL lowers,
  // SELECT/CHANNEL pairs on both sides, VIP below them. The sweeps race
  // retransmissions toward the dead replica, failover opens, probation
  // readmits, and the replica's own rebuilt stack. At-most-once must hold
  // and the post-restart phase must be loss-free, exactly as in the
  // eviction-free crash test.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 3;
  spec.readmit_after = Msec(120);
  spec.arrivals = Arrivals("poisson:rate=100,horizon=900ms,churn=5,seed=17");
  spec.faults.Crash("s0", Msec(80), Msec(500));
  spec.idle_timeout = Msec(25);

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GE(r.failed, 1u);      // the calls that discovered the dead replica
  EXPECT_GE(r.down_marks, 1u);
  EXPECT_GE(r.readmits, 1u);
  EXPECT_GT(r.idle_evictions, 0u);  // the sweeps really ran mid-chaos

  // The heart of the test: eviction + crash + retransmission never produced
  // a double execution or an orphaned reply.
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " unknown=" << r.oracle.unknown_replies
      << " silent=" << r.oracle.silent;
  EXPECT_GT(r.oracle.executions, 0u);

  // Failure attribution matches the eviction-free baseline: losses confined
  // to the outage window, the post-restart phase perfect.
  EXPECT_GT(r.phases[1].issued, 0u);
  EXPECT_GE(r.phases[1].failed, 1u);
  EXPECT_GT(r.phases[2].issued, 0u);
  EXPECT_EQ(r.phases[2].failed, 0u);
  EXPECT_EQ(r.phases[2].success_ppm, 1000000u);
}

TEST(EvictionChaosTest, EvictionSurvivesRepeatedCrashCycles) {
  // Two crash/restart cycles of different replicas with an aggressive sweep:
  // the soak form of the race. Each outage exceeds CHANNEL's retry budget
  // (as in the eviction-free crash test) so no retransmit straddles a
  // restart; the oracle then guards everything eviction could break.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 2;
  spec.replicas = 3;
  spec.readmit_after = Msec(100);
  spec.arrivals = Arrivals("poisson:rate=150,horizon=1300ms,churn=4,seed=23");
  spec.faults.Crash("s0", Msec(100), Msec(520));
  spec.faults.Crash("s1", Msec(650), Msec(1070));
  spec.idle_timeout = Msec(15);

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.idle_evictions, 0u);
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " unknown=" << r.oracle.unknown_replies
      << " silent=" << r.oracle.silent;
  // The pool kept serving at the same rate as the eviction-free baseline:
  // this aggressive campaign (two 420ms outages, 100ms probation readmits
  // that repeatedly re-try the still-dead replica, churn re-opens) completes
  // ~45% with or without eviction -- reclamation costs nothing extra.
  EXPECT_GT(r.success_ppm, 400000u);
}

}  // namespace
}  // namespace xk
