// Topology builder: assembles simulated internetworks (hosts, Ethernet
// segments, routers) with the standard substrate stack (ETH + ARP + IP) on
// every node. Tests, benchmarks, and examples build their experiment
// networks through this.
//
// The paper's testbed -- "a pair of Sun 3/75s connected by an isolated 10Mbps
// ethernet" -- is Internet::TwoHosts(); multi-segment topologies exercise the
// routed (non-local) paths that motivate VIP.

#ifndef XK_SRC_PROTO_TOPOLOGY_H_
#define XK_SRC_PROTO_TOPOLOGY_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/kernel.h"
#include "src/proto/arp.h"
#include "src/proto/eth.h"
#include "src/proto/ip.h"
#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/sim/parallel.h"
#include "src/trace/pcap.h"
#include "src/trace/trace.h"

namespace xk {

class ParallelEngine;
class StatSampler;

// The substrate protocols of one node. Higher layers (VIP, RPC, ...) are
// added by the stack builders in src/app.
struct HostStack {
  Kernel* kernel = nullptr;
  EthProtocol* eth = nullptr;  // first interface (hosts have exactly one)
  ArpProtocol* arp = nullptr;
  IpProtocol* ip = nullptr;
};

class Internet {
 public:
  // `engine_threads` > 1 runs the simulation on the conservative parallel
  // engine (src/sim/parallel.h) with one logical process per host; results
  // are bit-identical to the serial engine. 0 picks up the thread default
  // (set_default_engine_threads); 1 (the default default) is the serial
  // single-queue engine with no parallel machinery at all.
  explicit Internet(HostEnv default_env = HostEnv::kXKernel, uint64_t seed = 1,
                    int engine_threads = 0);
  ~Internet();

  Internet(const Internet&) = delete;
  Internet& operator=(const Internet&) = delete;

  // --- construction -----------------------------------------------------------

  // Adds an Ethernet segment; returns its id.
  int AddSegment(WireModel wire = WireModel{});

  // Adds a host with the substrate stack on `segment`. The environment
  // defaults to the Internet's.
  HostStack& AddHost(const std::string& name, int segment, IpAddr ip,
                     std::optional<HostEnv> env = std::nullopt);

  // Adds a router attached to several segments (one (segment, address) pair
  // per interface), with IP forwarding enabled.
  HostStack& AddRouter(const std::string& name,
                       std::vector<std::pair<int, IpAddr>> attachments);

  // Installs static ARP entries for every same-segment pair, modeling the
  // warm caches of the paper's steady-state measurements.
  void WarmArp();

  // Sets `host`'s default gateway.
  void SetDefaultGateway(const std::string& host, IpAddr gw);

  // --- crash / recovery -------------------------------------------------------

  // Crashes `host`: cancels its pending events and destroys its protocol
  // graph (Kernel::Crash), detaching its NIC from the segment. Frames already
  // in flight toward it are dropped at arrival (segment down_drops). Safe to
  // call from a task running on that host (how FaultEngine does it) or from
  // test code outside any task.
  void CrashHost(const std::string& host);

  // Restarts a crashed host: bumps the boot id, rebuilds the substrate stack
  // (ETH + ARP + IP, same addresses and station id), restores its default
  // gateway, re-warms its ARP entries if WarmArp() had run, and finally
  // invokes the host's restart hook (if set) to rebuild the upper layers.
  // Only plain hosts restart; routers don't. Returns the rebuilt stack.
  HostStack& RestartHost(const std::string& host);

  // Called at the end of RestartHost (inside the host's reboot task) so the
  // experiment can rebuild upper-layer protocols and anchors on the fresh
  // substrate. The HostStack passed is the host's live entry.
  void set_restart_hook(const std::string& host, std::function<void(HostStack&)> hook);

  // --- canned topologies ------------------------------------------------------

  // The paper's testbed: two hosts, one isolated segment, warm caches.
  // Hosts are "client" (10.0.1.1) and "server" (10.0.1.2).
  static std::unique_ptr<Internet> TwoHosts(HostEnv env = HostEnv::kXKernel);

  // Two segments joined by a router; "client" (10.0.1.1) and "server"
  // (10.0.2.1) are on different segments, default routes installed.
  static std::unique_ptr<Internet> TwoSegments(HostEnv env = HostEnv::kXKernel);

  // --- observability ----------------------------------------------------------
  // Attaches a trace sink / packet capture to every kernel and segment, now
  // and as later hosts/segments are added (null detaches). The Internet
  // constructor picks up TraceSink::thread_default() and
  // PacketCapture::thread_default() automatically, so the usual way to trace
  // an experiment is to install thread defaults before building it.
  void AttachTrace(TraceSink* trace);
  void AttachPcap(PacketCapture* capture);
  // Attaches a time-series sampler (src/stat) to every kernel and segment,
  // now and as later hosts/segments are added (null detaches). The
  // constructor picks up StatSampler::thread_default().
  void AttachStats(StatSampler* stats);
  TraceSink* trace() const { return trace_; }
  PacketCapture* capture() const { return capture_; }
  StatSampler* stats() const { return stats_; }

  // Per-protocol counters for every host plus per-link statistics (including
  // fault-injection outcomes), as one JSON document.
  std::string CountersJson() const;
  bool WriteCountersJson(const std::string& path) const;

  // --- access -----------------------------------------------------------------
  // The Internet's own queue: the single event queue in serial mode, the
  // control/clock queue (advanced to global time between runs) in parallel
  // mode. Schedule work through kernels, not directly on this queue.
  EventQueue& events() { return events_; }
  EthernetSegment& segment(int id) { return *segments_[id]; }
  const EthernetSegment& segment(int id) const { return *segments_[id]; }
  size_t num_segments() const { return segments_.size(); }
  HostStack& host(const std::string& name);

  // Events fired across the whole simulation (all hosts' queues).
  uint64_t events_fired() const;

  // The engine width this Internet was built with (1 = serial).
  int engine_threads() const { return engine_threads_; }

  // Parallel-engine diagnostics accumulated over every RunAll (null when
  // serial). Sim-time/count fields are deterministic; *_ms fields are not.
  const ParallelEngine::Diag* engine_diag() const {
    return engine_ != nullptr ? &engine_->diag() : nullptr;
  }

  // Runs the simulation to quiescence; returns events fired.
  size_t RunAll();

 private:
  struct Attachment {
    IpAddr ip;
    EthAddr eth;
    ArpProtocol* arp;
  };

  // One host plus everything needed to rebuild its substrate after a crash.
  struct HostEntry {
    std::string name;
    HostStack stack;
    int segment = -1;  // -1: router (multiple attachments; restart unsupported)
    IpAddr ip{};
    HostEnv env = HostEnv::kXKernel;
    std::optional<IpAddr> gateway;
    std::function<void(HostStack&)> restart_hook;
  };

  HostEntry& FindEntry(const std::string& name);
  // Builds ETH+ARP+IP for `e` inside a configuration task on its kernel
  // (shared by AddHost and RestartHost).
  void BuildSubstrate(HostEntry& e);

  HostEnv default_env_;
  EventQueue events_;
  uint64_t seed_;
  int engine_threads_ = 1;
  std::unique_ptr<ParallelEngine> engine_;  // null in serial mode
  TraceSink* trace_ = nullptr;
  PacketCapture* capture_ = nullptr;
  StatSampler* stats_ = nullptr;
  int stat_net_ = -1;  // this Internet's id within stats_
  uint32_t next_eth_index_ = 1;
  std::vector<std::unique_ptr<EthernetSegment>> segments_;
  std::vector<std::vector<Attachment>> attachments_;  // per segment
  std::vector<std::unique_ptr<Kernel>> kernels_;
  bool warmed_ = false;  // WarmArp() has run; restarted hosts re-warm
  // deque: AddHost/AddRouter return stable references into this container.
  std::deque<HostEntry> hosts_;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_TOPOLOGY_H_
