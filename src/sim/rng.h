// Deterministic pseudo-random source for fault injection and property tests.
//
// All randomness in the simulator flows from explicitly seeded SplitMix64
// instances so that every experiment and test is reproducible bit-for-bit.

#ifndef XK_SRC_SIM_RNG_H_
#define XK_SRC_SIM_RNG_H_

#include <cstdint>

namespace xk {

// SplitMix64: tiny, fast, and statistically adequate for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace xk

#endif  // XK_SRC_SIM_RNG_H_
