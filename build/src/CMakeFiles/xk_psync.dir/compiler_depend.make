# Empty compiler generated dependencies file for xk_psync.
# This may be replaced when dependencies are built.
