// Overload-control end to end: deadline propagation and shedding, retry
// budgets draining under a partition, server admission fast-rejects, the
// VPOOL circuit breaker, hedged failover, and the engine-width bit-identity
// of a fully-armed overload-controlled measurement.

#include <gtest/gtest.h>

#include <string>

#include "src/cluster/datacenter.h"
#include "src/sim/fault.h"

namespace xk {
namespace {

ArrivalSpec Arrivals(const std::string& text) {
  ArrivalSpec spec;
  std::string error;
  EXPECT_TRUE(ArrivalSpec::Parse(text, &spec, &error)) << error;
  return spec;
}

TEST(OverloadTest, DeadlinesShedExpiredWorkInsteadOfRetrying) {
  // One replica serving 20ms per call against 200 calls/s: the queue grows
  // without bound. A 15ms deadline means no queued call can make it -- each
  // fails DEADLINE_EXCEEDED at its deadline instead of burning the full
  // retransmission ladder, and the server sheds arrivals that expired in its
  // queue rather than charging execution for them.
  DatacenterSpec spec;
  spec.client_segments = 1;
  spec.clients_per_segment = 1;
  spec.replicas = 1;
  spec.service_delay = Msec(20);
  spec.deadline = Msec(15);
  spec.arrivals = Arrivals("poisson:rate=200,horizon=200ms,seed=5");

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.oracle.shed, r.shed);
  EXPECT_EQ(r.shed + r.completed, r.issued);  // every failure was a shed
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " silent=" << r.oracle.silent;
  // Expired calls stop consuming the server: far fewer executions than
  // arrivals, and every admitted call (the non-shed remainder) completed.
  EXPECT_EQ(r.oracle.admitted, r.oracle.issued - r.oracle.shed);
  EXPECT_EQ(r.oracle.admitted_success_ppm, 1000000u);
}

TEST(OverloadTest, AdmissionControlFastRejectsBeyondTheInflightCap) {
  // The replica admits one delayed-service request at a time; everything
  // beyond that is answered BUSY from the interrupt path, costing no service
  // time. Clients see the cheap error reply immediately instead of a
  // retransmission ladder.
  DatacenterSpec spec;
  spec.client_segments = 1;
  spec.clients_per_segment = 1;
  spec.replicas = 1;
  spec.service_delay = Msec(10);
  spec.max_inflight = 1;
  spec.arrivals = Arrivals("poisson:rate=300,horizon=200ms,seed=11");

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.oracle.rejected, r.rejected);
  EXPECT_EQ(r.rejected + r.completed, r.issued);
  EXPECT_TRUE(r.oracle.clean());
  // Rejected calls never executed: the server ran exactly the admitted set.
  EXPECT_EQ(r.oracle.executions, r.completed);
  EXPECT_EQ(r.oracle.admitted_success_ppm, 1000000u);
}

TEST(OverloadTest, RetryBudgetDrainsUnderPartitionAndRecoversAfterHeal) {
  // A 100ms partition on the client segment swallows every first transmission
  // in the window; CHANNEL's 50ms base timeout retransmits into the void. A
  // 2-token budget refilling at 0.01 retries/call drains almost immediately,
  // so most stranded calls fail RESOURCE_EXHAUSTED instead of each burning
  // its full retry ladder (the retry storm that melts a healing network).
  // Calls issued after the heal ride an intact budget and all complete.
  DatacenterSpec spec;
  spec.client_segments = 1;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  spec.retry_ratio_ppm = 10000;  // 0.01 retries per call
  spec.retry_burst = 2;
  spec.arrivals = Arrivals("poisson:rate=200,horizon=400ms,seed=13");
  spec.faults.Partition(1, Msec(50), Msec(150));
  spec.crash_at = Msec(50);     // phase attribution against the partition
  spec.restart_at = Msec(150);  //   window (issue-time, [from, until))

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.budget_exhausted, 0u);
  EXPECT_EQ(r.oracle.budget_exhausted, r.budget_exhausted);
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " silent=" << r.oracle.silent;

  // Post-heal traffic is untouched: new calls need no retries, so the
  // near-empty bucket does not gate them and success returns to 100%.
  // (Issue-time attribution can blame a *pre*-window call whose retries
  // straddled the partition, so only the post phase is judged.)
  EXPECT_GT(r.phases[2].issued, 0u);
  EXPECT_EQ(r.phases[2].success_ppm, 1000000u);
  // Every budget giveup is an accounted failure, nothing more.
  EXPECT_GE(r.failed, r.budget_exhausted);
}

TEST(OverloadTest, BreakerTripsOnOverloadRejectsAndReadmitsAfterProbation) {
  // A hard failure (crash discovery) marks a replica down directly; the
  // breaker exists for the *brownout* case, where replicas stay up but every
  // call comes back as an overload verdict. Replicas serving 20ms against a
  // 15ms deadline turn every outcome bad: a 4-call window at a 50% trip
  // ratio opens the breaker, probation readmits the replica, and the
  // verdicts stay cleanly classified throughout.
  DatacenterSpec spec;
  spec.client_segments = 1;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  spec.service_delay = Msec(20);
  spec.deadline = Msec(15);
  spec.readmit_after = Msec(50);
  spec.breaker_min_volume = 4;
  spec.breaker_trip_ppm = 500000;
  spec.arrivals = Arrivals("poisson:rate=200,horizon=300ms,seed=19");

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GE(r.breaker_trips, 1u);
  EXPECT_GE(r.down_marks, r.breaker_trips);  // every trip marks its replica down
  EXPECT_GE(r.readmits, 1u);
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " silent=" << r.oracle.silent;
}

TEST(OverloadTest, HedgedFailoverCompletesEachCallOnceAcrossACrash) {
  // Hedging with a 15ms base delay against a crashed replica: calls stranded
  // toward s0 hedge to a survivor and complete long before the primary's
  // retry ladder would have failed. The oracle holds each id to exactly one
  // completion; a hedged id that executed on two hosts is reported as a
  // hedged duplicate, never as an at-most-once violation.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 3;
  spec.readmit_after = Msec(120);
  spec.hedge_delay = Msec(15);
  spec.arrivals = Arrivals("poisson:rate=100,horizon=900ms,seed=17");
  spec.faults.Crash("s0", Msec(80), Msec(500));

  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GT(r.hedges, 0u);
  EXPECT_EQ(r.oracle.hedged, r.hedges);
  EXPECT_LE(r.completed, r.issued);
  EXPECT_TRUE(r.oracle.clean())
      << "double=" << r.oracle.double_executions << " unknown=" << r.oracle.unknown_replies
      << " silent=" << r.oracle.silent;
  // Hedging rescues the outage-window calls the plain failover test loses:
  // the stranded attempts complete via a survivor.
  EXPECT_GT(r.phases[1].issued, 0u);
  EXPECT_GT(r.phases[1].success_ppm, 900000u);
  EXPECT_GT(r.phases[2].issued, 0u);
  EXPECT_EQ(r.phases[2].success_ppm, 1000000u);
}

TEST(OverloadTest, ControlledMeasurementIsBitIdenticalAcrossEngineWidths) {
  // Every overload mechanism armed at once -- deadlines, retry budget,
  // concurrency caps, backlog-bounded admission, breaker, hedging -- must
  // not cost the engine-width determinism guarantee.
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  spec.service_delay = Msec(2);
  spec.deadline = Msec(30);
  spec.retry_ratio_ppm = 100000;
  spec.retry_burst = 5;
  spec.concurrency_cap = 2;
  spec.max_backlog = Msec(5);
  spec.breaker_min_volume = 8;
  spec.breaker_trip_ppm = 500000;
  spec.hedge_delay = Msec(20);
  spec.arrivals = Arrivals("poisson:rate=300,horizon=200ms,seed=29");

  spec.engine_threads = 1;
  const DatacenterResult serial = MeasureDatacenter(spec);
  spec.engine_threads = 4;
  const DatacenterResult parallel = MeasureDatacenter(spec);

  EXPECT_EQ(parallel.issued, serial.issued);
  EXPECT_EQ(parallel.completed, serial.completed);
  EXPECT_EQ(parallel.failed, serial.failed);
  EXPECT_EQ(parallel.shed, serial.shed);
  EXPECT_EQ(parallel.rejected, serial.rejected);
  EXPECT_EQ(parallel.budget_exhausted, serial.budget_exhausted);
  EXPECT_EQ(parallel.hedges, serial.hedges);
  EXPECT_EQ(parallel.hedge_cancels, serial.hedge_cancels);
  EXPECT_EQ(parallel.capped_rejects, serial.capped_rejects);
  EXPECT_EQ(parallel.breaker_trips, serial.breaker_trips);
  EXPECT_EQ(parallel.sum_done_at, serial.sum_done_at);
  EXPECT_EQ(parallel.events_fired, serial.events_fired);
  EXPECT_EQ(parallel.rtt.count(), serial.rtt.count());
  EXPECT_EQ(parallel.rtt.sum(), serial.rtt.sum());
  EXPECT_EQ(parallel.replica_calls, serial.replica_calls);
  EXPECT_GT(serial.issued, 0u);
  EXPECT_TRUE(serial.oracle.clean());
}

}  // namespace
}  // namespace xk
