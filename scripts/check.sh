#!/usr/bin/env bash
# Full pre-merge check: the regular build + test suite, then an
# ASan+UBSan-instrumented build of the same tests as a memory-safety smoke.
#
#   scripts/check.sh            # tier-1 tests + sanitizer smoke
#   scripts/check.sh --fast     # tier-1 tests only
#
# Sanitizer builds live in build-asan/ so they never pollute the primary
# build/ tree. TSan (-DXK_SANITIZE=thread) is not part of the default check
# -- the only multi-threaded binary is bench_suite -- but can be run by hand:
#   cmake -B build-tsan -S . -DXK_SANITIZE=thread && cmake --build build-tsan -j
#   ./build-tsan/bench/bench_suite --threads=4 --out=/dev/null

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo
echo "== sanitizer smoke: ASan+UBSan build + ctest (build-asan/) =="
cmake -B build-asan -S . -DXK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$jobs"
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo
echo "== sanitizer smoke: bench_suite under ASan+UBSan =="
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ./build-asan/bench/bench_suite --threads=2 --out=/dev/null

echo
echo "All checks passed."
