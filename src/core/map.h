// The x-kernel map tool: demultiplexing tables that bind external identifiers
// (header fields) to sessions, with cost accounting built in.
//
// Protocols keep an *active* map (fully-specified keys -> open sessions) and
// a *passive* map (partially-specified keys from open_enable -> the enabled
// high-level protocol). Every Resolve charges map_resolve and every Bind
// charges map_bind, so demux costs are accounted uniformly across protocols.

#ifndef XK_SRC_CORE_MAP_H_
#define XK_SRC_CORE_MAP_H_

#include <map>

#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

template <typename Key, typename Value = SessionRef>
class DemuxMap {
 public:
  explicit DemuxMap(Kernel& kernel) : kernel_(kernel) {}

  // Looks up `key`, charging one map_resolve. Returns a default-constructed
  // Value (null SessionRef) on miss.
  Value Resolve(const Key& key) {
    kernel_.ChargeMapResolve();
    auto it = table_.find(key);
    return it == table_.end() ? Value{} : it->second;
  }

  // Lookup without charging (configuration-time bookkeeping, not datapath).
  Value Peek(const Key& key) const {
    auto it = table_.find(key);
    return it == table_.end() ? Value{} : it->second;
  }

  bool Contains(const Key& key) const { return table_.count(key) != 0; }

  // Installs `key -> value`, charging one map_bind. Overwrites.
  void Bind(const Key& key, Value value) {
    kernel_.ChargeMapBind();
    table_[key] = std::move(value);
  }

  void Unbind(const Key& key) { table_.erase(key); }

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }

  auto begin() { return table_.begin(); }
  auto end() { return table_.end(); }
  auto begin() const { return table_.begin(); }
  auto end() const { return table_.end(); }

 private:
  Kernel& kernel_;
  std::map<Key, Value> table_;
};

}  // namespace xk

#endif  // XK_SRC_CORE_MAP_H_
