#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace xk {

namespace {
// 4-ary heap: shallower than binary for the same size, and the four children
// of a node sit in one cache line of 24-byte entries.
constexpr size_t Parent(size_t i) { return (i - 1) / 4; }
constexpr size_t FirstChild(size_t i) { return 4 * i + 1; }
}  // namespace

EventHandle EventQueue::ScheduleAt(SimTime at, EventFn fn) {
  if (at < now_) {
    at = now_;
  }
  const uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  const uint32_t gen = s.generation;
  if (at >= defer_horizon_) {
    // Parked for the engine: the barrier commits it in canonical order so
    // heap sequence numbers agree with the serial schedule order.
    s.deferred = true;
    deferred_heap_.push_back(Entry{at, 0, slot, gen});
    size_t i = deferred_heap_.size() - 1;
    while (i > 0 && at < deferred_heap_[(i - 1) / 2].at) {
      std::swap(deferred_heap_[i], deferred_heap_[(i - 1) / 2]);
      i = (i - 1) / 2;
    }
  } else {
    HeapPush(Entry{at, next_seq_++, slot, gen});
  }
  ++live_count_;
  if (listener_ != nullptr) {
    listener_->OnSchedule(at, slot, gen);
  }
  return EventHandle(this, slot, gen);
}

void EventQueue::CommitDeferred(uint32_t slot, uint32_t gen, SimTime at) {
  if (!SlotLive(slot, gen)) {
    return;  // cancelled while parked
  }
  Slot& s = slots_[slot];
  if (!s.deferred) {
    return;  // was pushed directly (scheduled inside its epoch window)
  }
  s.deferred = false;
  HeapPush(Entry{at, next_seq_++, slot, gen});
}

SimTime EventQueue::MinDeferredAt() {
  while (!deferred_heap_.empty()) {
    const Entry& top = deferred_heap_.front();
    if (SlotLive(top.slot, top.gen) && slots_[top.slot].deferred) {
      return top.at;
    }
    // Committed or cancelled meanwhile: lazy-delete (binary sift-down).
    deferred_heap_.front() = deferred_heap_.back();
    deferred_heap_.pop_back();
    const size_t n = deferred_heap_.size();
    size_t i = 0;
    for (;;) {
      const size_t l = 2 * i + 1;
      if (l >= n) {
        break;
      }
      const size_t r = l + 1;
      const size_t c = (r < n && deferred_heap_[r].at < deferred_heap_[l].at) ? r : l;
      if (deferred_heap_[c].at >= deferred_heap_[i].at) {
        break;
      }
      std::swap(deferred_heap_[i], deferred_heap_[c]);
      i = c;
    }
  }
  return kSimTimeNever;
}

bool EventQueue::NextEventTime(SimTime* at) {
  if (!SkimDead()) {
    return false;
  }
  *at = heap_.front().at;
  return true;
}

size_t EventQueue::RunEpochWindow(SimTime end_exclusive, size_t max_events) {
  size_t fired = 0;
  EventFn fn;
  while (fired < max_events && SkimDead()) {
    if (heap_.front().at >= end_exclusive) {
      break;
    }
    Entry e;
    if (!PopNext(e, fn)) {
      break;
    }
    if (stat_probe_ != nullptr) {
      stat_probe_->BeforeFire(e.at);
    }
    now_ = e.at;
    ++fired;
    if (listener_ != nullptr) {
      listener_->OnFireBegin(e.at, e.slot, e.gen);
    }
    fn();
    if (listener_ != nullptr) {
      listener_->OnFireEnd();
    }
  }
  fired_total_ += fired;
  return fired;
}

size_t EventQueue::Run(size_t max_events) {
  size_t fired = 0;
  Entry e;
  EventFn fn;
  while (fired < max_events && PopNext(e, fn)) {
    if (stat_probe_ != nullptr) {
      stat_probe_->BeforeFire(e.at);
    }
    now_ = e.at;
    ++fired;
    fn();
  }
  fired_total_ += fired;
  return fired;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t fired = 0;
  EventFn fn;
  while (SkimDead()) {
    if (heap_.front().at > deadline) {
      break;
    }
    Entry e;
    if (!PopNext(e, fn)) {
      break;
    }
    if (stat_probe_ != nullptr) {
      stat_probe_->BeforeFire(e.at);
    }
    now_ = e.at;
    ++fired;
    fn();
  }
  fired_total_ += fired;
  return fired;
}

void EventQueue::AdvanceTo(SimTime t) {
  assert(t >= now_);
  now_ = t;
}

uint32_t EventQueue::AcquireSlot() {
  if (free_head_ != kNil) {
    const uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNil;
    return index;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::RetireSlot(uint32_t index) {
  Slot& s = slots_[index];
  s.fn = nullptr;
  ++s.generation;  // invalidates handles and the heap entry, if still queued
  s.next_free = free_head_;
  free_head_ = index;
}

bool EventQueue::CancelInternal(uint32_t index, uint32_t gen) {
  if (!SlotLive(index, gen)) {
    return false;
  }
  const bool was_deferred = slots_[index].deferred;
  slots_[index].deferred = false;
  RetireSlot(index);
  --live_count_;
  if (!was_deferred) {
    ++dead_in_heap_;  // its Entry is still queued; skipped or swept later
    MaybeSweepDead();
  }
  return true;
}

void EventQueue::HeapPush(Entry e) {
  // Hole-based lift: shift parents down into the hole and write the new
  // entry once at its final position (vs. one 24-byte swap per level).
  heap_.push_back(e);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t p = Parent(i);
    if (!Before(e, heap_[p])) {
      break;
    }
    heap_[i] = heap_[p];
    i = p;
  }
  heap_[i] = e;
}

void EventQueue::HeapPopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  if (i >= n) {
    return;
  }
  // Hole-based sift: carry the displaced entry in a local, pull the winning
  // child up into the hole each level, and store the carried entry once.
  const Entry moving = heap_[i];
  for (;;) {
    const size_t first = FirstChild(i);
    if (first >= n) {
      break;
    }
    size_t best = first;
    const size_t last = (first + 4 < n) ? first + 4 : n;
    for (size_t c = first + 1; c < last; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], moving)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

bool EventQueue::SkimDead() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].generation == top.gen) {
      return true;
    }
    --dead_in_heap_;
    HeapPopTop();
  }
  return false;
}

void EventQueue::MaybeSweepDead() {
  // Under a cancellation storm most heap entries are stale; compact them in
  // one O(n) pass instead of sifting each through the top. The pop order of
  // live entries is unchanged: same comparator, full re-heapify.
  if (heap_.size() < 64 || dead_in_heap_ * 2 < heap_.size()) {
    return;
  }
  size_t w = 0;
  for (size_t r = 0; r < heap_.size(); ++r) {
    const Entry& e = heap_[r];
    if (slots_[e.slot].generation == e.gen) {
      heap_[w++] = e;
    }
  }
  heap_.resize(w);
  dead_in_heap_ = 0;
  if (w > 1) {
    for (size_t i = Parent(w - 1) + 1; i-- > 0;) {
      SiftDown(i);
    }
  }
}

bool EventQueue::PopNext(Entry& out, EventFn& fn) {
  if (!SkimDead()) {
    return false;
  }
  out = heap_.front();
  Slot& s = slots_[out.slot];
  // Retire before running: a Cancel() from inside the handler (or on a stale
  // copy of the handle) is a no-op and charges nothing.
  fn = std::move(s.fn);
  RetireSlot(out.slot);
  --live_count_;
  HeapPopTop();
  return true;
}

}  // namespace xk
