// Ablation: session caching (paper, Section 5, "Potential Pitfalls of
// Layering").
//
// "Unnecessarily establishing and freeing state information at each level
// degrades performance. The implementation of layered RPC avoids this
// problem by caching open sessions at all three levels."
//
// Measures the cost of establishing that state: the FIRST call on a freshly
// configured stack (which creates the SELECT session, the fixed channel pool,
// the CHANNEL sessions, the FRAGMENT session, the VIP session, and the ETH
// session -- and, on a cold cache, resolves ARP) versus the steady-state call
// that reuses all of it. A layered stack that re-did this per call would pay
// the difference on every RPC.

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  std::printf("\nAblation: session caching (first call vs steady state)\n");
  std::printf("%-30s %12s %14s %14s\n", "Configuration", "first call", "steady state",
              "setup cost");
  std::printf("%s\n", std::string(74, '-').c_str());

  struct Row {
    const char* name;
    RpcBench::Builder builder;
  };
  const Row rows[] = {
      {"M_RPC-VIP", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); }},
      {"L_RPC-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); }},
      {"SELECT-CHANNEL-VIPsize", [](HostStack& h) { return BuildLRpcDynamic(h); }},
  };
  for (const Row& row : rows) {
    ColdWarmResult cw = MeasureColdWarm(row.builder);
    std::printf("%-30s %9.2f ms %11.2f ms %11.2f ms\n", row.name, cw.first_ms, cw.steady_ms,
                cw.first_ms - cw.steady_ms);
  }
  std::printf("\nA stack that re-established sessions per call would pay the setup cost\n"
              "on EVERY RPC -- the paper's first layering pitfall.\n");
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
