file(REMOVE_RECURSE
  "libxk_core.a"
)
