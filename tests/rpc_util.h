// Shared fixture for RPC-layer tests: builds a configuration on both hosts of
// a two-host topology, attaches client/server anchors, and provides a
// synchronous call helper that drives the simulation to quiescence.

#ifndef XK_TESTS_RPC_UTIL_H_
#define XK_TESTS_RPC_UTIL_H_

#include <functional>
#include <memory>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/proto/topology.h"
#include "tests/test_util.h"

namespace xk {

class RpcFixture {
 public:
  using Builder = std::function<RpcStack(HostStack&)>;

  explicit RpcFixture(std::unique_ptr<Internet> the_net = nullptr)
      : net(the_net ? std::move(the_net) : Internet::TwoHosts()),
        ch(&net->host("client")),
        sh(&net->host("server")) {}

  // Builds the same stack on both hosts and attaches anchors. The server
  // exports an echo handler for every command unless `export_echo` is false.
  // Also installs restart hooks so crashed hosts rebuild the same stack (and
  // refresh the fixture's pointers) when Internet::RestartHost brings them
  // back.
  void Build(const Builder& builder, bool export_echo = true) {
    cstack = builder(*ch);
    sstack = builder(*sh);
    RunIn(*ch->kernel,
          [&] { client = &ch->kernel->Emplace<RpcClient>(*ch->kernel, cstack.top); });
    RunIn(*sh->kernel, [&] {
      server = &sh->kernel->Emplace<RpcServer>(*sh->kernel, sstack.top);
      if (export_echo) {
        EXPECT_TRUE(server
                        ->Export(RpcServer::kAny,
                                 [](uint16_t, Message& request) { return request; })
                        .ok());
      }
    });
    net->set_restart_hook("client", [this, builder](HostStack& h) {
      cstack = builder(h);
      client = &h.kernel->Emplace<RpcClient>(*h.kernel, cstack.top);
    });
    net->set_restart_hook("server", [this, builder, export_echo](HostStack& h) {
      sstack = builder(h);
      server = &h.kernel->Emplace<RpcServer>(*h.kernel, sstack.top);
      if (export_echo) {
        (void)server->Export(RpcServer::kAny,
                             [](uint16_t, Message& request) { return request; });
      }
    });
  }

  // Issues one call and runs the simulation until it completes (or fails).
  Result<Message> CallSync(uint16_t command, Message args) {
    Result<Message> result = ErrStatus(StatusCode::kError);
    bool done = false;
    RunIn(*ch->kernel, [&] {
      client->Call(sh->kernel->ip_addr(), command, std::move(args), [&](Result<Message> r) {
        result = std::move(r);
        done = true;
      });
    });
    net->RunAll();
    EXPECT_TRUE(done) << "call never completed";
    return result;
  }

  IpAddr server_addr() const { return sh->kernel->ip_addr(); }

  std::unique_ptr<Internet> net;
  HostStack* ch;
  HostStack* sh;
  RpcStack cstack;
  RpcStack sstack;
  RpcClient* client = nullptr;
  RpcServer* server = nullptr;
};

}  // namespace xk

#endif  // XK_TESTS_RPC_UTIL_H_
