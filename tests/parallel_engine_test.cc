// Parallel-engine tests: the conservative per-host engine must produce
// byte-identical observable output (traces, captures, counters, results) to
// the serial engine at any thread count, and must handle the epoch-boundary
// edge cases -- a delivery landing exactly on an epoch boundary, a
// duplicate-fault second copy crossing into the next epoch, and a degenerate
// zero-lookahead wire (serial fallback, no deadlock).

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/oracle.h"
#include "src/app/workload.h"
#include "src/sim/fault.h"
#include "src/sim/parallel.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

// Every observable artifact of one run, for differential comparison.
struct RunArtifacts {
  std::string trace_jsonl;
  std::string pcap_jsonl;
  std::string counters_json;
  uint64_t events_fired = 0;
  SimTime per_call = 0;
  int completed = 0;
  int failed = 0;
};

// Builds a two-host L_RPC stack at `engine_threads`, runs a few calls of
// mixed sizes, and collects everything an engine run can emit.
RunArtifacts RunTwoHostScenario(int engine_threads, double drop_rate = 0.0) {
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(engine_threads);

  RunArtifacts out;
  {
    RpcFixture fix;
    EXPECT_EQ(fix.net->engine_threads(), engine_threads);
    fix.net->segment(0).set_drop_rate(drop_rate);
    fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
    for (int i = 0; i < 4; ++i) {
      Result<Message> r =
          fix.CallSync(1, Message::FromBytes(PatternBytes(i % 2 == 0 ? 64 : 4096, uint8_t(i))));
      if (r.ok()) {
        ++out.completed;
      } else {
        ++out.failed;
      }
    }
    CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
      fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
    };
    LatencyResult lat = RpcWorkload::MeasureLatency(*fix.net, *fix.ch->kernel, call, 10);
    out.per_call = lat.per_call;
    out.completed += lat.completed;
    out.failed += lat.failed;
    out.events_fired = fix.net->events_fired();
    out.counters_json = fix.net->CountersJson();
  }

  set_default_engine_threads(1);
  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.trace_jsonl = sink.ToJsonl();
  out.pcap_jsonl = capture.ToJsonl();
  if (getenv("XK_DUMP_TRACES") != nullptr) {
    (void)sink.WriteFile("/tmp/trace_" + std::to_string(engine_threads) + ".jsonl");
    (void)capture.WriteFile("/tmp/pcap_" + std::to_string(engine_threads) + ".jsonl");
  }
  return out;
}

void ExpectIdentical(const RunArtifacts& serial, const RunArtifacts& par, int threads) {
  SCOPED_TRACE("engine_threads=" + std::to_string(threads));
  EXPECT_EQ(serial.per_call, par.per_call);
  EXPECT_EQ(serial.completed, par.completed);
  EXPECT_EQ(serial.failed, par.failed);
  EXPECT_EQ(serial.events_fired, par.events_fired);
  EXPECT_EQ(serial.counters_json, par.counters_json);
  EXPECT_EQ(serial.trace_jsonl, par.trace_jsonl);
  EXPECT_EQ(serial.pcap_jsonl, par.pcap_jsonl);
}

TEST(ParallelEngineTest, TwoHostsBitIdenticalToSerial) {
  const RunArtifacts serial = RunTwoHostScenario(1);
  EXPECT_FALSE(serial.trace_jsonl.empty());
  EXPECT_FALSE(serial.pcap_jsonl.empty());
  EXPECT_EQ(serial.failed, 0);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunTwoHostScenario(threads), threads);
  }
}

TEST(ParallelEngineTest, RandomDropsBitIdenticalToSerial) {
  // The fault rng draws at ProcessTransmit time; canonical transmit ordering
  // must keep the draw sequence -- and therefore every retransmission --
  // identical to the serial engine.
  const RunArtifacts serial = RunTwoHostScenario(1, /*drop_rate=*/0.05);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunTwoHostScenario(threads, /*drop_rate=*/0.05), threads);
  }
}

// A chaos campaign: link faults plus a mid-run server crash and restart
// (heal), driven by the oracle-checked chaos workload. Every artifact --
// availability numbers, counters, traces, captures -- must be byte-identical
// across engine thread counts.
RunArtifacts RunCrashCampaignScenario(int engine_threads) {
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(engine_threads);

  RunArtifacts out;
  {
    AmoOracle oracle;
    RpcFixture fix;
    EXPECT_EQ(fix.net->engine_threads(), engine_threads);
    RpcFixture::Builder builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
    fix.Build(builder, /*export_echo=*/false);
    RunIn(*fix.sh->kernel, [&] {
      EXPECT_TRUE(fix.server->Export(RpcServer::kAny, oracle.WrapEcho(fix.sh->kernel)).ok());
    });
    fix.net->set_restart_hook("server", [&fix, builder, &oracle](HostStack& h) {
      fix.sstack = builder(h);
      fix.server = &h.kernel->Emplace<RpcServer>(*h.kernel, fix.sstack.top);
      (void)fix.server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel));
    });

    FaultPlan plan;
    plan.seed = 7;
    plan.DropWindow(0, Msec(40), Msec(80), 0.3)
        .DuplicateStorm(0, Msec(80), Msec(120), 0.5)
        .Crash("server", Msec(150), Msec(260));
    FaultEngine faults(*fix.net, plan);

    ChaosSpec spec;
    spec.payload_bytes = 64;
    spec.calls = 30;
    spec.gap = Msec(5);
    spec.crash_at = Msec(150);
    CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
      fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
    };
    ChaosResult r = RpcWorkload::RunChaos(*fix.net, *fix.ch->kernel, call, oracle, spec);
    AmoOracle::Report rep = oracle.Finish();
    EXPECT_TRUE(rep.clean());

    out.per_call = r.elapsed + r.recovery_latency;  // determinism probes
    out.completed = r.completed;
    out.failed = r.failed;
    out.events_fired = fix.net->events_fired();
    out.counters_json = fix.net->CountersJson();
  }

  set_default_engine_threads(1);
  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.trace_jsonl = sink.ToJsonl();
  out.pcap_jsonl = capture.ToJsonl();
  return out;
}

TEST(ParallelEngineTest, CrashCampaignBitIdenticalToSerial) {
  const RunArtifacts serial = RunCrashCampaignScenario(1);
  EXPECT_GT(serial.completed, 0);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunCrashCampaignScenario(threads), threads);
  }
}

TEST(ParallelEngineTest, ManyPairsBitIdenticalToSerial) {
  const ManyPairsBench serial = MeasureManyPairsBench(4, 2048, 5, 1);
  EXPECT_EQ(serial.completed, 4 * 5);
  EXPECT_EQ(serial.failed, 0);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const ManyPairsBench par = MeasureManyPairsBench(4, 2048, 5, threads);
    EXPECT_EQ(serial.agg_kbytes_per_sec, par.agg_kbytes_per_sec);
    EXPECT_EQ(serial.elapsed_ms, par.elapsed_ms);
    EXPECT_EQ(serial.completed, par.completed);
    EXPECT_EQ(serial.failed, par.failed);
    EXPECT_EQ(serial.sum_done_at, par.sum_done_at);
    EXPECT_EQ(serial.events_fired, par.events_fired);
  }
}

// --- epoch-boundary edge cases --------------------------------------------------

// A frame sink that records arrival times and optionally replies, attached as
// an extra station so tests can drive the link with exact timings.
struct RecordingSink final : FrameSink {
  Kernel* kernel = nullptr;
  std::vector<SimTime> arrivals;
  std::function<void(const EthFrame&)> on_arrival;

  void FrameArrived(const EthFrame& frame) override {
    arrivals.push_back(kernel->events().now());
    if (on_arrival) {
      on_arrival(frame);
    }
  }
  Kernel* sink_kernel() override { return kernel; }
};

EthFrame MakeFrame(EthAddr dst, EthAddr src, size_t payload = 0) {
  EthFrame f;
  f.bytes.resize(14 + payload);
  for (size_t i = 0; i < 6; ++i) {
    f.bytes[i] = dst.bytes()[i];
    f.bytes[6 + i] = src.bytes()[i];
  }
  return f;
}

// A wire whose transmit time is exactly 50us for every frame (the per-byte
// term truncates to 0ns) and whose propagation is 50us: lookahead is exactly
// 100us, so epoch edges land on round numbers the test can hit dead-on.
WireModel ExactWire() {
  WireModel wire;
  wire.bits_per_usec = 1e12;
  wire.per_frame_overhead = Usec(50);
  wire.propagation = Usec(50);
  return wire;
}

struct BoundaryRun {
  std::vector<SimTime> a_arrivals;
  std::vector<SimTime> b_arrivals;
  uint64_t duplicates = 0;
};

// Drives the exact-timing scenario at `engine_threads`:
//   F1 (A->B) ready at 0    -> bus 0..50us,    B receives at 100us
//   F2 (A->B) ready at 100  -> bus 100..150us, B receives at 200us -- exactly
//       the end of the first epoch [100us, 200us)
//   B's sink replies (A<-B) from inside its logical process; the reply is
//       committed at the epoch barrier: bus 150..200us, A receives at 250us
//   with `duplicate_reply`, the fault hook duplicates the reply delivery; the
//       second copy lands one transmit-time later, at 300us -- exactly the
//       start of the NEXT epoch [300us, 400us)
BoundaryRun RunBoundaryScenario(int engine_threads, bool duplicate_reply) {
  set_default_engine_threads(engine_threads);
  BoundaryRun out;
  {
    Internet net(HostEnv::kXKernel, 1);
    const int seg = net.AddSegment(ExactWire());
    HostStack& a = net.AddHost("a", seg, IpAddr(10, 0, 1, 1));
    HostStack& b = net.AddHost("b", seg, IpAddr(10, 0, 1, 2));

    const EthAddr addr_a({2, 0, 0, 0, 0, 1});
    const EthAddr addr_b({2, 0, 0, 0, 0, 2});
    RecordingSink sink_a;
    sink_a.kernel = a.kernel;
    RecordingSink sink_b;
    sink_b.kernel = b.kernel;
    const int id_a = net.segment(seg).Attach(addr_a, &sink_a);
    const int id_b = net.segment(seg).Attach(addr_b, &sink_b);
    sink_b.on_arrival = [&](const EthFrame&) {
      if (sink_b.arrivals.size() == 1) {
        net.segment(seg).Transmit(id_b, MakeFrame(addr_a, addr_b),
                                  b.kernel->events().now());
      }
    };
    if (duplicate_reply) {
      net.segment(seg).set_fault_hook(
          [id_a](const EthFrame&, int receiver_id, uint64_t) {
            return receiver_id == id_a ? LinkFault::kDuplicate : LinkFault::kDeliver;
          });
    }

    net.segment(seg).Transmit(id_a, MakeFrame(addr_b, addr_a), 0);
    net.segment(seg).Transmit(id_a, MakeFrame(addr_b, addr_a), Usec(100));
    net.RunAll();

    out.a_arrivals = sink_a.arrivals;
    out.b_arrivals = sink_b.arrivals;
    out.duplicates = net.segment(seg).fault_duplicates();
  }
  set_default_engine_threads(1);
  return out;
}

TEST(ParallelEngineTest, DeliveryExactlyAtEpochBoundary) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const BoundaryRun run = RunBoundaryScenario(threads, /*duplicate_reply=*/false);
    EXPECT_EQ(run.b_arrivals, (std::vector<SimTime>{Usec(100), Usec(200)}));
    EXPECT_EQ(run.a_arrivals, (std::vector<SimTime>{Usec(250)}));
    EXPECT_EQ(run.duplicates, 0u);
  }
}

TEST(ParallelEngineTest, DuplicateFaultSecondCopyLandsNextEpoch) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const BoundaryRun run = RunBoundaryScenario(threads, /*duplicate_reply=*/true);
    EXPECT_EQ(run.b_arrivals, (std::vector<SimTime>{Usec(100), Usec(200)}));
    // Reply at 250us plus its duplicate one transmit-time later, at 300us --
    // the first instant of the following epoch.
    EXPECT_EQ(run.a_arrivals, (std::vector<SimTime>{Usec(250), Usec(300)}));
    EXPECT_EQ(run.duplicates, 1u);
  }
}

// --- batched-delivery differential ---------------------------------------------

// One shared-bus scenario with every workload knob drawn from a seeded RNG.
// Run once with batched delivery (the default) and once with it disabled;
// every observable artifact must be byte-identical. A raw-ETH broadcast
// burst rides along with the RPC traffic: each broadcast lands on every
// other station at the same instant -- the multi-receiver case batching
// folds into one heap event -- while the RPC unicasts exercise the
// singleton-batch path. (ARP must be warm: the synchronous open path the
// RPC stack uses reports UNREACHABLE on a cold cache rather than resolving.)
struct BatchDiffArtifacts {
  std::string trace_jsonl;
  std::string pcap_jsonl;
  std::string counters_json;
  uint64_t events_fired = 0;
  SimTime sum_done_at = 0;
  int completed = 0;
  int failed = 0;
};

BatchDiffArtifacts RunBatchDiffScenario(uint64_t seed, bool batched) {
  std::mt19937_64 rng(seed);
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(1);  // batching is the serial delivery path

  BatchDiffArtifacts out;
  {
    auto net = std::make_unique<Internet>(HostEnv::kXKernel, 1);
    WireModel wire;
    wire.propagation = Usec(100 + static_cast<SimTime>(rng() % 1500));
    const int seg = net->AddSegment(wire);
    const int pairs = 2 + static_cast<int>(rng() % 3);  // 4..8 hosts on one bus
    struct Pair {
      HostStack* ch = nullptr;
      HostStack* sh = nullptr;
      RpcStack cstack, sstack;
      RpcClient* client = nullptr;
      RpcServer* server = nullptr;
    };
    std::vector<Pair> ps(static_cast<size_t>(pairs));
    for (int p = 0; p < pairs; ++p) {
      ps[p].ch = &net->AddHost("c" + std::to_string(p), seg,
                               IpAddr(10, 0, 1, static_cast<uint8_t>(2 * p + 1)));
      ps[p].sh = &net->AddHost("s" + std::to_string(p), seg,
                               IpAddr(10, 0, 1, static_cast<uint8_t>(2 * p + 2)));
    }
    net->segment(seg).set_batched_delivery(batched);
    net->WarmArp();
    const double drop = static_cast<double>(rng() % 8) / 100.0;
    if (drop > 0) {
      net->segment(seg).set_drop_rate(drop);
    }
    std::vector<Kernel*> clients;
    std::vector<CallFn> calls;
    for (Pair& pr : ps) {
      pr.cstack = BuildLRpc(*pr.ch, Delivery::kVip);
      pr.sstack = BuildLRpc(*pr.sh, Delivery::kVip);
      RunIn(*pr.ch->kernel, [&] {
        pr.client = &pr.ch->kernel->Emplace<RpcClient>(*pr.ch->kernel, pr.cstack.top);
      });
      RunIn(*pr.sh->kernel, [&] {
        pr.server = &pr.sh->kernel->Emplace<RpcServer>(*pr.sh->kernel, pr.sstack.top);
        (void)pr.server->Export(RpcServer::kAny,
                                [](uint16_t, Message& request) { return request; });
      });
      clients.push_back(pr.ch->kernel);
      const IpAddr server_ip = pr.sh->kernel->ip_addr();
      RpcClient* client = pr.client;
      calls.push_back(
          [client, server_ip](Message args, std::function<void(Result<Message>)> done) {
            client->Call(server_ip, 1, std::move(args), std::move(done));
          });
    }
    // Broadcast burst on a private ETH type: every station but the sender
    // receives each frame at the same arrival time and echoes it back,
    // contending on the bus with the RPC traffic. With >= 3 receivers per
    // frame, multi-member batches form by construction.
    constexpr EthType kBurstType = 0x3901;
    for (Pair& pr : ps) {
      for (HostStack* h : {pr.ch, pr.sh}) {
        if (h == ps[0].ch) {
          continue;
        }
        h->kernel->RunTask(net->events().now(), [&] {
          auto& srv = h->kernel->Emplace<EchoAnchor>(*h->kernel, /*server_role=*/true);
          srv.set_app_cost(0);
          ParticipantSet enable;
          enable.local.eth_type = kBurstType;
          (void)h->eth->OpenEnable(srv, enable);
        });
      }
    }
    HostStack* burst_host = ps[0].ch;
    hotloop_internal::Burst burst;
    burst_host->kernel->RunTask(net->events().now(), [&] {
      auto& sender =
          burst_host->kernel->Emplace<EchoAnchor>(*burst_host->kernel, /*server_role=*/false);
      sender.set_app_cost(0);
      ParticipantSet parts;
      parts.local.eth_type = kBurstType;
      parts.peer.eth = EthAddr::Broadcast();
      Result<SessionRef> r = burst_host->eth->Open(sender, parts);
      burst.kernel = burst_host->kernel;
      burst.anchor = &sender;
      burst.sess = r.ok() ? *r : nullptr;
      burst.remaining = 8 + static_cast<int>(rng() % 16);
      burst.size = 2 + static_cast<int>(rng() % 3);
      burst.bytes = static_cast<size_t>(64) << (rng() % 3);
      burst.gap = Usec(200 + static_cast<SimTime>(rng() % 800));
    });
    if (burst.sess != nullptr) {
      burst_host->kernel->RunTask(net->events().now(),
                                  [&burst] { hotloop_internal::Fire(&burst); });
    }
    const size_t bytes = static_cast<size_t>(64) << (rng() % 6);  // 64..2048
    ManyPairsResult r = RpcWorkload::MeasureManyPairs(*net, clients, calls, bytes, 3);
    out.completed = r.completed;
    out.failed = r.failed;
    out.sum_done_at = r.sum_done_at;
    out.events_fired = net->events_fired();
    out.counters_json = net->CountersJson();
  }

  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.trace_jsonl = sink.ToJsonl();
  out.pcap_jsonl = capture.ToJsonl();
  return out;
}

TEST(BatchedDeliveryTest, RandomizedDifferentialBatchedVsUnbatched) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const BatchDiffArtifacts with = RunBatchDiffScenario(seed, /*batched=*/true);
    const BatchDiffArtifacts without = RunBatchDiffScenario(seed, /*batched=*/false);
    EXPECT_GT(with.completed, 0);
    EXPECT_EQ(with.completed, without.completed);
    EXPECT_EQ(with.failed, without.failed);
    EXPECT_EQ(with.sum_done_at, without.sum_done_at);
    EXPECT_EQ(with.events_fired, without.events_fired);
    EXPECT_EQ(with.counters_json, without.counters_json);
    EXPECT_EQ(with.trace_jsonl, without.trace_jsonl);
    EXPECT_EQ(with.pcap_jsonl, without.pcap_jsonl);
  }
}

// --- barrier stress --------------------------------------------------------------

// Background traffic for the barrier stress: each pair issues sequential
// calls through a done-callback loop (re-armed via a plain function over a
// stable pointer, so nothing captures itself).
struct BgPair {
  HostStack* ch = nullptr;
  HostStack* sh = nullptr;
  RpcStack cstack, sstack;
  RpcClient* client = nullptr;
  RpcServer* server = nullptr;
  IpAddr server_ip{};
  int remaining = 0;
};

void BgNext(BgPair* p) {
  if (p->remaining-- <= 0) {
    return;
  }
  p->client->Call(p->server_ip, 1, Message(64), [p](Result<Message>) { BgNext(p); });
}

// A near-degenerate wire (1us frame + 2us propagation = 3us lookahead) keeps
// epochs a few microseconds long, so the whole campaign is thousands of
// back-to-back barriers; the FaultPlan crashes the chaos server mid-epoch
// and the oracle plus byte-identity checks must still hold. This is the test
// check.sh runs under TSan for the sense-reversing barrier.
struct StressArtifacts {
  RunArtifacts run;
  uint64_t epochs = 0;
  uint64_t bg_completed = 0;
};

StressArtifacts RunBarrierStressScenario(int engine_threads) {
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(engine_threads);

  StressArtifacts out;
  {
    WireModel wire;
    wire.bits_per_usec = 1e12;
    wire.per_frame_overhead = Usec(1);
    wire.propagation = Usec(2);
    auto net = std::make_unique<Internet>(HostEnv::kXKernel, 1);
    const int seg0 = net->AddSegment(wire);
    net->AddHost("client", seg0, IpAddr(10, 0, 1, 1));
    net->AddHost("server", seg0, IpAddr(10, 0, 1, 2));
    // Background pairs share segment 0 with the chaos pair: on one bus every
    // LP constrains every other through the 3us lookahead, so as long as any
    // pair has traffic in flight the whole team advances in ~one-RTT windows.
    // (Disconnected segments would decouple in the per-LP window computation
    // and give a few long epochs instead of many short ones.)
    constexpr int kBgPairs = 3;
    std::vector<BgPair> bg(kBgPairs);
    for (int p = 0; p < kBgPairs; ++p) {
      const uint8_t b = static_cast<uint8_t>(10 + 2 * p);
      bg[p].ch = &net->AddHost("bc" + std::to_string(p), seg0, IpAddr(10, 0, 1, b));
      bg[p].sh =
          &net->AddHost("bs" + std::to_string(p), seg0, IpAddr(10, 0, 1, static_cast<uint8_t>(b + 1)));
    }
    net->WarmArp();

    AmoOracle oracle;
    RpcFixture fix(std::move(net));
    EXPECT_EQ(fix.net->engine_threads(), engine_threads);
    RpcFixture::Builder builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
    fix.Build(builder, /*export_echo=*/false);
    RunIn(*fix.sh->kernel, [&] {
      EXPECT_TRUE(fix.server->Export(RpcServer::kAny, oracle.WrapEcho(fix.sh->kernel)).ok());
    });
    fix.net->set_restart_hook("server", [&fix, builder, &oracle](HostStack& h) {
      fix.sstack = builder(h);
      fix.server = &h.kernel->Emplace<RpcServer>(*h.kernel, fix.sstack.top);
      (void)fix.server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel));
    });
    for (BgPair& p : bg) {
      p.cstack = builder(*p.ch);
      p.sstack = builder(*p.sh);
      RunIn(*p.ch->kernel,
            [&] { p.client = &p.ch->kernel->Emplace<RpcClient>(*p.ch->kernel, p.cstack.top); });
      RunIn(*p.sh->kernel, [&] {
        p.server = &p.sh->kernel->Emplace<RpcServer>(*p.sh->kernel, p.sstack.top);
        (void)p.server->Export(RpcServer::kAny,
                               [](uint16_t, Message& request) { return request; });
      });
      p.server_ip = p.sh->kernel->ip_addr();
      p.remaining = 150;
      RunIn(*p.ch->kernel, [&p] { BgNext(&p); });
    }

    FaultPlan plan;
    plan.seed = 11;
    plan.DropWindow(0, Msec(8), Msec(16), 0.3).Crash("server", Msec(20), Msec(36));
    FaultEngine faults(*fix.net, plan);

    ChaosSpec spec;
    spec.payload_bytes = 64;
    spec.calls = 20;
    spec.gap = Msec(2);
    spec.crash_at = Msec(20);
    CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
      fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
    };
    ChaosResult r = RpcWorkload::RunChaos(*fix.net, *fix.ch->kernel, call, oracle, spec);
    AmoOracle::Report rep = oracle.Finish();
    EXPECT_TRUE(rep.clean());

    out.run.per_call = r.elapsed + r.recovery_latency;
    out.run.completed = r.completed;
    out.run.failed = r.failed;
    out.run.events_fired = fix.net->events_fired();
    out.run.counters_json = fix.net->CountersJson();
    for (const BgPair& p : bg) {
      out.bg_completed += p.client->calls_completed();
    }
    if (const ParallelEngine::Diag* d = fix.net->engine_diag()) {
      out.epochs = d->epochs;
    }
  }

  set_default_engine_threads(1);
  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.run.trace_jsonl = sink.ToJsonl();
  out.run.pcap_jsonl = capture.ToJsonl();
  return out;
}

TEST(ParallelEngineTest, BarrierStressManyShortEpochsWithCrash) {
  const StressArtifacts serial = RunBarrierStressScenario(1);
  EXPECT_GT(serial.run.completed, 0);
  // The drop window covers segment 0, so background calls can exhaust their
  // retries; what matters is that traffic flowed and every engine width
  // agrees on exactly how much.
  EXPECT_GT(serial.bg_completed, 0u);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const StressArtifacts par = RunBarrierStressScenario(threads);
    ExpectIdentical(serial.run, par.run, threads);
    EXPECT_EQ(serial.bg_completed, par.bg_completed);
    // The point of the scenario: a 3us lookahead over a ~40ms campaign means
    // the barrier turned over thousands of short epochs.
    EXPECT_GT(par.epochs, 1000u);
  }
}

TEST(ParallelEngineTest, ZeroLookaheadWireFallsBackToSerial) {
  // An idealized wire: no per-frame overhead, no propagation, and a per-byte
  // time that truncates to zero. The conservative lookahead is 0, so epochs
  // cannot make progress; the engine must detect this and run the canonical
  // serial fallback -- same results, no deadlock.
  auto run = [](int engine_threads) -> RunArtifacts {
    set_default_engine_threads(engine_threads);
    RunArtifacts out;
    {
      WireModel wire;
      wire.bits_per_usec = 1e12;
      wire.per_frame_overhead = 0;
      wire.propagation = 0;
      EXPECT_EQ(wire.TransmitTime(0) + wire.propagation, 0) << "wire is not degenerate";

      auto net = std::make_unique<Internet>(HostEnv::kXKernel, 1);
      const int seg = net->AddSegment(wire);
      net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
      net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
      net->WarmArp();
      RpcFixture fix(std::move(net));
      fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
      for (int i = 0; i < 3; ++i) {
        Result<Message> r = fix.CallSync(1, Message::FromBytes(PatternBytes(600, uint8_t(i))));
        EXPECT_TRUE(r.ok());
        ++out.completed;
      }
      out.events_fired = fix.net->events_fired();
      out.counters_json = fix.net->CountersJson();
    }
    set_default_engine_threads(1);
    return out;
  };
  const RunArtifacts serial = run(1);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const RunArtifacts par = run(threads);
    EXPECT_EQ(serial.completed, par.completed);
    EXPECT_EQ(serial.events_fired, par.events_fired);
    EXPECT_EQ(serial.counters_json, par.counters_json);
  }
}

}  // namespace
}  // namespace xk
