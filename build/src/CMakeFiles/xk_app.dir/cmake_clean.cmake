file(REMOVE_RECURSE
  "CMakeFiles/xk_app.dir/app/anchor.cc.o"
  "CMakeFiles/xk_app.dir/app/anchor.cc.o.d"
  "CMakeFiles/xk_app.dir/app/stacks.cc.o"
  "CMakeFiles/xk_app.dir/app/stacks.cc.o.d"
  "CMakeFiles/xk_app.dir/app/workload.cc.o"
  "CMakeFiles/xk_app.dir/app/workload.cc.o.d"
  "libxk_app.a"
  "libxk_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
