#include "src/sim/parallel.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/kernel.h"
#include "src/core/message.h"

namespace xk {

namespace {
thread_local int g_default_engine_threads = 1;

// Adds sim times without wrapping past kSimTimeNever ("no bound").
SimTime SatAdd(SimTime a, SimTime b) {
  return a > kSimTimeNever - b ? kSimTimeNever : a + b;
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int default_engine_threads() { return g_default_engine_threads; }

void set_default_engine_threads(int threads) {
  g_default_engine_threads = threads > 1 ? threads : 1;
}

// ---------------------------------------------------------------------------
// WorkerTeam: persistent workers for many short epochs. Participant 0 is the
// calling thread; workers 1..parts-1 are threads that live for the engine's
// lifetime, so LP-to-participant affinity is static and an LP's queue stays
// warm in one core's cache across epochs. Start is signalled by a generation
// bump (spin briefly, then fall back to a condition variable); the join is a
// central sense-reversing barrier -- each participant flips a padded local
// sense and the last arriver releases the rest by flipping the shared sense,
// so back-to-back epochs synchronize on one cache line with no futex round
// trip and no per-worker "finished" counter scan.
// ---------------------------------------------------------------------------
class WorkerTeam {
 public:
  explicit WorkerTeam(int participants) : parts_(participants > 1 ? participants : 1) {
    local_ = std::make_unique<LocalSense[]>(static_cast<size_t>(parts_));
    workers_.reserve(static_cast<size_t>(parts_ - 1));
    for (int p = 1; p < parts_; ++p) {
      workers_.emplace_back([this, p] { WorkerMain(p); });
    }
  }

  ~WorkerTeam() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_.store(true, std::memory_order_release);
      start_gen_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  int parts() const { return parts_; }

  // Wall time participant 0 has spent waiting at the join barrier.
  double main_wait_ms() const { return main_wait_ms_; }

  // Runs body(p) on every participant (the caller is p == 0) and returns
  // once all of them have passed the join barrier.
  void RunEpoch(const std::function<void(int)>& body) {
    if (parts_ == 1) {
      body(0);
      return;
    }
    body_ = &body;
    policy_ = Message::default_alloc_policy();
    start_gen_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    }
    body(0);
    const auto t0 = std::chrono::steady_clock::now();
    Arrive(0);
    main_wait_ms_ += MsSince(t0);
  }

 private:
  struct alignas(64) LocalSense {
    bool sense = true;
  };

  void Arrive(int p) {
    const bool my = local_[p].sense;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == parts_ - 1) {
      // Last arriver: reset the count, then release everyone by flipping the
      // shared sense. Spinners re-read arrived_ only after acquiring the
      // flip, so the reset is never observed mid-epoch.
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my, std::memory_order_release);
    } else {
      size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my) {
        if (++spins % 1024 == 0) {
          std::this_thread::yield();
        }
      }
    }
    local_[p].sense = !my;
  }

  void WorkerMain(int p) {
    uint64_t seen = 0;
    for (;;) {
      uint64_t gen;
      size_t spins = 0;
      for (;;) {
        gen = start_gen_.load(std::memory_order_acquire);
        if (gen != seen || stop_.load(std::memory_order_acquire)) {
          break;
        }
        if (++spins < 4096) {
          continue;
        }
        sleepers_.fetch_add(1, std::memory_order_release);
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [&] {
            return start_gen_.load(std::memory_order_acquire) != seen ||
                   stop_.load(std::memory_order_acquire);
          });
        }
        sleepers_.fetch_sub(1, std::memory_order_release);
      }
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      seen = gen;
      Message::set_default_alloc_policy(policy_);
      (*body_)(p);
      Arrive(p);
    }
  }

  const int parts_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> start_gen_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::unique_ptr<LocalSense[]> local_;
  double main_wait_ms_ = 0;
  // Published before the start_gen_ release bump, read after the acquire load.
  const std::function<void(int)>* body_ = nullptr;
  HeaderAllocPolicy policy_ = HeaderAllocPolicy::kPointerAdjust;
};

// ---------------------------------------------------------------------------
// Logical process: one host's queue plus the per-epoch capture of what its
// events emitted, in execution order. The Lp is its queue's Listener for the
// whole engine lifetime; outside RunEpochWindow (setup between runs, barrier
// insertions) OnSchedule registers directly in the canonical heap, inside an
// event it appends to the emission list for replay.
// ---------------------------------------------------------------------------
struct ParallelEngine::FiredEvent {
  SimTime at;
  uint32_t slot;
  uint32_t gen;
  uint32_t item_begin;
  uint32_t item_end;
};

struct ParallelEngine::Lp final : EventQueue::Listener {
  struct PendingTransmit {
    EthernetSegment* segment;
    int sender_id;
    std::shared_ptr<EthFrame> frame;
    SimTime ready_at;
  };

  struct Item {
    enum class Kind : uint8_t { kRecord, kSchedule, kTransmit };
    Kind kind;
    // kSchedule
    SimTime at = 0;
    uint32_t slot = 0;
    uint32_t gen = 0;
    // kTransmit: index into `transmits`
    uint32_t tx = 0;
    // kRecord
    TraceSink::Record rec;
  };

  ParallelEngine* engine = nullptr;
  uint32_t index = 0;
  std::unique_ptr<EventQueue> queue;
  Kernel* kernel = nullptr;

  // Trace shard (created per master sink; persists across runs so ids stay
  // stable) and the master's translation of its name table.
  std::unique_ptr<TraceSink> shard;
  TraceSink::ShardNameMap name_map;

  // Epoch capture. With per-LP windows an LP may run ahead of the global
  // replay horizon, so captures persist across barriers: `cursor` marks how
  // far replay has consumed them, and the buffers are recycled only once
  // everything has been replayed.
  std::vector<FiredEvent> events;
  std::vector<Item> items;
  std::vector<PendingTransmit> transmits;
  size_t cursor = 0;  // replay position in `events`
  bool in_event = false;

  // This epoch's window end (exclusive), published by the engine before the
  // team runs and read by whichever participant owns this LP.
  SimTime window = 0;

  void OnSchedule(SimTime at, uint32_t slot, uint32_t gen) override {
    if (!in_event) {
      engine->RegisterCanon(index, at, slot, gen);
      return;
    }
    FlushShardRecords();
    Item item;
    item.kind = Item::Kind::kSchedule;
    item.at = at;
    item.slot = slot;
    item.gen = gen;
    items.push_back(std::move(item));
  }

  void OnFireBegin(SimTime at, uint32_t slot, uint32_t gen) override {
    events.push_back(FiredEvent{at, slot, gen, static_cast<uint32_t>(items.size()),
                                static_cast<uint32_t>(items.size())});
    in_event = true;
  }

  void OnFireEnd() override {
    FlushShardRecords();
    events.back().item_end = static_cast<uint32_t>(items.size());
    in_event = false;
  }

  // Moves records the shard buffered since the last flush onto the emission
  // list, preserving their position relative to schedules and transmits.
  void FlushShardRecords() {
    if (shard == nullptr || shard->num_records() == 0) {
      return;
    }
    for (TraceSink::Record& r : shard->DrainRecords()) {
      Item item;
      item.kind = Item::Kind::kRecord;
      item.rec = std::move(r);
      items.push_back(std::move(item));
    }
  }

  void ClearEpoch() {
    events.clear();
    items.clear();
    transmits.clear();
    cursor = 0;
  }
};

thread_local ParallelEngine::Lp* ParallelEngine::current_lp_ = nullptr;

ParallelEngine::ParallelEngine(int threads) : threads_(threads > 1 ? threads : 1) {}

ParallelEngine::~ParallelEngine() = default;

EventQueue& ParallelEngine::NewLpQueue() {
  auto lp = std::make_unique<Lp>();
  lp->engine = this;
  lp->index = static_cast<uint32_t>(lps_.size());
  lp->queue = std::make_unique<EventQueue>();
  lp->queue->set_listener(lp.get());
  lps_.push_back(std::move(lp));
  return *lps_.back()->queue;
}

void ParallelEngine::BindKernel(Kernel& kernel) {
  for (auto& lp : lps_) {
    if (lp->queue.get() == &kernel.events()) {
      lp->kernel = &kernel;
      kernel_lp_[&kernel] = lp.get();
      return;
    }
  }
  assert(false && "kernel not built on an engine LP queue");
}

void ParallelEngine::AdoptSegment(EthernetSegment& segment) {
  segments_.push_back(&segment);
  segment.set_transmit_sink(this);
}

void ParallelEngine::RegisterCanon(uint32_t lp, SimTime at, uint32_t slot, uint32_t gen) {
  canon_.push(CanonNode{at, next_canon_seq_++, lp, slot, gen});
}

void ParallelEngine::OnTransmit(EthernetSegment& segment, int sender_id,
                                std::shared_ptr<EthFrame> frame, SimTime ready_at) {
  Lp* lp = current_lp_;
  if (lp == nullptr) {
    // Setup phase (no epoch running): apply immediately, in call order --
    // which is the serial engine's order for setup-time traffic.
    segment.ProcessTransmit(sender_id, std::move(frame), ready_at, this);
    return;
  }
  lp->FlushShardRecords();
  lp->transmits.push_back(
      Lp::PendingTransmit{&segment, sender_id, std::move(frame), ready_at});
  Lp::Item item;
  item.kind = Lp::Item::Kind::kTransmit;
  item.tx = static_cast<uint32_t>(lp->transmits.size() - 1);
  lp->items.push_back(std::move(item));
}

void ParallelEngine::Deliver(EthernetSegment& segment, SimTime at, FrameSink* sink,
                             int receiver_id, std::shared_ptr<const EthFrame> frame) {
  // Route by the station's kernel (it outlives crash/restart); fall back to
  // the sink for bare test sinks attached without one. The sink itself is
  // resolved when the delivery fires, so a receiver that crashes while the
  // frame is in flight drops it (down_drops) instead of being called dead.
  Kernel* kernel = segment.station_kernel(receiver_id);
  if (kernel == nullptr && sink != nullptr) {
    kernel = sink->sink_kernel();
  }
  assert(kernel != nullptr && "parallel runs need stations that name their kernel");
  Lp* lp = kernel_lp_.at(kernel);
  // Lookahead guarantee: an in-epoch transmit cannot take effect inside the
  // same epoch. (Setup and fallback replay run with barrier_floor_ == 0.)
  assert(at >= barrier_floor_);
  lp->queue->ScheduleAt(at, [seg = &segment, receiver_id, f = std::move(frame)]() {
    seg->FireDelivery(receiver_id, *f);
  });
}

SimTime ParallelEngine::ComputeLookahead() const {
  // The soonest a frame handed to any segment can reach another host: it must
  // first serialize (minimum-size frame) and then propagate. kSimTimeNever if
  // there are no segments -- the LPs are fully independent.
  SimTime lookahead = kSimTimeNever;
  for (const EthernetSegment* seg : segments_) {
    const SimTime l = seg->wire().TransmitTime(0) + seg->wire().propagation;
    if (l < lookahead) {
      lookahead = l;
    }
  }
  return lookahead;
}

void ParallelEngine::BuildAdjacency() {
  // Pairwise lookahead distances: LPs that share a segment constrain each
  // other by that segment's minimum frame latency, and effects relay -- an
  // idle host can be woken by one neighbor and then disturb another, so the
  // binding bound is the shortest lookahead PATH (Floyd-Warshall closure),
  // not the direct edge. The closure keeps the diagonal meaningful too:
  // D(i,i) is the cheapest round trip, the soonest LP i's own unreplayed
  // work can echo back at it, which is what lets a host with an idle peer
  // run ahead of its commit point -- but only by one round trip. LPs in
  // different connected components never constrain each other at all. A
  // station attached without a kernel (a bare test sink serviced by the
  // control queue) has no LP of its own, so its segment conservatively
  // couples every LP.
  const size_t n = lps_.size();
  std::vector<SimTime> la(n * n, kSimTimeNever);
  auto tighten = [&la, n](size_t a, size_t b, SimTime l) {
    if (a == b) {
      return;
    }
    if (l < la[a * n + b]) {
      la[a * n + b] = l;
      la[b * n + a] = l;
    }
  };
  std::vector<size_t> members;
  for (const EthernetSegment* seg : segments_) {
    const SimTime l = seg->wire().TransmitTime(0) + seg->wire().propagation;
    members.clear();
    bool opaque = false;
    for (size_t s = 0; s < seg->num_stations(); ++s) {
      Kernel* kernel = seg->station_kernel(static_cast<int>(s));
      auto it = kernel == nullptr ? kernel_lp_.end() : kernel_lp_.find(kernel);
      if (it == kernel_lp_.end()) {
        opaque = true;
        break;
      }
      members.push_back(it->second->index);
    }
    if (opaque) {
      for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
          tighten(a, b, l);
        }
      }
      continue;
    }
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        tighten(members[a], members[b], l);
      }
    }
  }
  // Closure. The diagonal starts at "never", so D(i,i) comes out as the
  // shortest nonempty cycle, not the empty path.
  for (size_t k = 0; k < n; ++k) {
    for (size_t a = 0; a < n; ++a) {
      const SimTime ak = la[a * n + k];
      if (ak == kSimTimeNever) {
        continue;
      }
      for (size_t b = 0; b < n; ++b) {
        const SimTime through = SatAdd(ak, la[k * n + b]);
        if (through < la[a * n + b]) {
          la[a * n + b] = through;
        }
      }
    }
  }
  nbrs_.assign(n, {});
  SimTime lo = kSimTimeNever;
  SimTime hi = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const SimTime l = la[b * n + a];  // bound on a from b: D(b, a)
      if (l != kSimTimeNever) {
        nbrs_[a].emplace_back(static_cast<uint32_t>(b), l);
        if (l < lo) {
          lo = l;
        }
        if (l > hi) {
          hi = l;
        }
      }
    }
  }
  diag_.lookahead_min = lo == kSimTimeNever ? 0 : lo;
  diag_.lookahead_max = hi;
}

void ParallelEngine::BeginRun() {
  if (master_trace_ != observers_bound_) {
    // New (or first) master sink: rebuild the shards against it.
    observers_bound_ = master_trace_;
    for (auto& lp : lps_) {
      lp->shard.reset();
      lp->name_map = TraceSink::ShardNameMap{};
    }
    if (master_trace_ != nullptr) {
      for (auto& lp : lps_) {
        lp->shard = std::make_unique<TraceSink>(SIZE_MAX);
        lp->shard->set_id_tag(master_trace_->AllocateIdTag());
      }
    }
  }
  for (auto& lp : lps_) {
    if (lp->kernel != nullptr) {
      lp->kernel->set_trace_sink(lp->shard.get());
    }
  }
  if (team_ == nullptr) {
    const int participants =
        static_cast<int>(lps_.size()) < threads_ ? static_cast<int>(lps_.size()) : threads_;
    team_ = std::make_unique<WorkerTeam>(participants);
  }
  BuildAdjacency();
}

void ParallelEngine::EndRun() {
  for (auto& lp : lps_) {
    if (lp->kernel != nullptr) {
      lp->kernel->set_trace_sink(master_trace_);
    }
    if (lp->queue->now() < global_now_) {
      lp->queue->AdvanceTo(global_now_);
    }
  }
  // Setup code between runs reads the Internet's own clock (kernel RunTask
  // timestamps); keep it in step with the serial engine's single clock.
  if (control_ != nullptr && control_->now() < global_now_) {
    control_->AdvanceTo(global_now_);
  }
}

size_t ParallelEngine::Run() {
  BeginRun();
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime lookahead = ComputeLookahead();
  const size_t fired = lookahead > 0 ? RunEpochs() : RunSerialFallback();
  diag_.run_wall_ms += MsSince(t0);
  diag_.fired += fired;
  EndRun();
  return fired;
}

size_t ParallelEngine::RunEpochs() {
  size_t fired = 0;
  const size_t n = lps_.size();
  vt_.assign(n, kSimTimeNever);
  win_.assign(n, kSimTimeNever);
  SimTime prev_h = -1;  // previous replay horizon, for the span diagnostics
  for (;;) {
    // Virtual-time lower bound per LP: nothing this LP does from here on can
    // happen before vt_i. Both its committed heap and its not-yet-replayed
    // captures count -- a replayed capture's transmits take effect at the
    // barrier, so neighbors may not run past capture time + lookahead.
    SimTime vt_min = kSimTimeNever;
    for (size_t i = 0; i < n; ++i) {
      Lp& lp = *lps_[i];
      SimTime t = kSimTimeNever;
      lp.queue->NextEventTime(&t);
      if (lp.cursor < lp.events.size() && lp.events[lp.cursor].at < t) {
        t = lp.events[lp.cursor].at;
      }
      vt_[i] = t;
      if (t < vt_min) {
        vt_min = t;
      }
    }
    if (vt_min == kSimTimeNever) {
      break;
    }
    if (prev_h < 0) {
      prev_h = vt_min;
    }
    // Window per LP: the earliest instant any neighbor could still affect it,
    // capped by its own earliest parked-but-uncommitted event (which must
    // enter the heap -- via replay of its parent -- before the LP may pass
    // it). H = min window is the replay horizon: every capture below H has
    // its canonical position fully determined.
    SimTime h = kSimTimeNever;
    for (size_t i = 0; i < n; ++i) {
      SimTime end = kSimTimeNever;
      for (const auto& [j, la] : nbrs_[i]) {
        const SimTime bound = SatAdd(vt_[j], la);
        if (bound < end) {
          end = bound;
        }
      }
      const SimTime parked = lps_[i]->queue->MinDeferredAt();
      if (parked < end) {
        end = parked;
      }
      win_[i] = end;
      if (end < h) {
        h = end;
      }
    }
    active_.clear();
    for (size_t i = 0; i < n; ++i) {
      SimTime head;
      if (lps_[i]->queue->NextEventTime(&head) && head < win_[i]) {
        lps_[i]->window = win_[i];
        active_.push_back(lps_[i].get());
      }
    }
    ++diag_.epochs;
    diag_.active_lp_sum += active_.size();
    if (h != kSimTimeNever && h > prev_h) {
      const SimTime span = h - prev_h;
      diag_.span_sum += span;
      if (span > diag_.span_max) {
        diag_.span_max = span;
      }
      prev_h = h;
    }
    for (Lp* lp : active_) {
      lp->queue->set_defer_horizon(lp->window);
    }
    epoch_fired_.assign(active_.size(), 0);
    if (active_.size() == 1) {
      current_lp_ = active_[0];
      epoch_fired_[0] = active_[0]->queue->RunEpochWindow(active_[0]->window);
      current_lp_ = nullptr;
    } else if (!active_.empty()) {
      std::vector<Lp*>& active = active_;
      std::vector<size_t>& counts = epoch_fired_;
      const int parts = team_->parts();
      team_->RunEpoch([&active, &counts, parts](int p) {
        // Static affinity: LP index mod team size, so the same participant
        // touches a given LP's queue every epoch.
        for (size_t k = 0; k < active.size(); ++k) {
          Lp* lp = active[k];
          if (static_cast<int>(lp->index % static_cast<uint32_t>(parts)) != p) {
            continue;
          }
          current_lp_ = lp;
          counts[k] = lp->queue->RunEpochWindow(lp->window);
          current_lp_ = nullptr;
        }
      });
    }
    for (size_t i = 0; i < active_.size(); ++i) {
      fired += epoch_fired_[i];
      active_[i]->queue->set_defer_horizon(EventQueue::kNoHorizon);
    }
    if (canon_.size() > diag_.commit_peak) {
      diag_.commit_peak = canon_.size();
    }
    barrier_floor_ = h == kSimTimeNever ? 0 : h;
    ReplayBarrier(h);
    barrier_floor_ = 0;
  }
  if (team_ != nullptr) {
    diag_.barrier_wait_ms = team_->main_wait_ms();
  }
  // Quiescence: every live event has fired and replayed; whatever is left in
  // the canonical heap is a cancelled node.
  while (!canon_.empty()) {
    const CanonNode& top = canon_.top();
    assert(!lps_[top.lp]->queue->SlotLive(top.slot, top.gen) &&
           "live canonical node at quiescence");
    (void)top;
    canon_.pop();
  }
  return fired;
}

void ParallelEngine::ReplayBarrier(SimTime end) {
  // Consume the canonical prefix below the replay horizon. Every node with
  // at < end either matches the owning LP's next unreplayed capture (replay
  // it) or was cancelled (skip it): a capture below the horizon must already
  // have a registered node -- its parent replays first, in this same loop --
  // and barrier insertions land at >= end, so the prefix is closed. Captures
  // at or above the horizon stay parked for a later barrier.
  while (!canon_.empty() && canon_.top().at < end) {
    const CanonNode n = canon_.top();
    Lp& lp = *lps_[n.lp];
    if (lp.cursor < lp.events.size()) {
      const FiredEvent& fe = lp.events[lp.cursor];
      if (fe.at == n.at && fe.slot == n.slot && fe.gen == n.gen) {
        canon_.pop();
        ++diag_.commit_nodes;
        ++lp.cursor;
        if (n.at > global_now_) {
          global_now_ = n.at;
        }
        ApplyFired(lp, fe);
        continue;
      }
    }
    if (lp.queue->SlotLive(n.slot, n.gen)) {
      // A parked event committed earlier in this very replay, at a time the
      // horizon has already passed: it has not fired yet (it enters its LP's
      // next epoch), so nothing canonically after it may replay either. Stop
      // here; the horizon cannot pass vt bounds, so it re-covers this node
      // after the event fires.
      break;
    }
    canon_.pop();  // cancelled while queued
    ++diag_.commit_nodes;
  }
  for (auto& lp : lps_) {
    if (lp->cursor == lp->events.size()) {
      lp->ClearEpoch();
    }
  }
}

void ParallelEngine::ApplyFired(Lp& lp, const FiredEvent& fe) {
  for (uint32_t i = fe.item_begin; i < fe.item_end; ++i) {
    Lp::Item& item = lp.items[i];
    switch (item.kind) {
      case Lp::Item::Kind::kRecord:
        if (master_trace_ != nullptr) {
          master_trace_->AbsorbRecord(*lp.shard, lp.name_map, std::move(item.rec));
        }
        break;
      case Lp::Item::Kind::kSchedule:
        // The canonical sequence this schedule would have received from the
        // serial engine's single counter. If the event was parked past its
        // epoch window, push it into the LP heap now so its local sequence
        // order agrees with the canonical order; if it ran inside the window
        // it is already in (and out of) the heap and the commit is a no-op.
        RegisterCanon(lp.index, item.at, item.slot, item.gen);
        lp.queue->CommitDeferred(item.slot, item.gen, item.at);
        break;
      case Lp::Item::Kind::kTransmit: {
        Lp::PendingTransmit& t = lp.transmits[item.tx];
        t.segment->ProcessTransmit(t.sender_id, std::move(t.frame), t.ready_at, this);
        break;
      }
    }
  }
}

size_t ParallelEngine::RunSerialFallback() {
  // Degenerate lookahead (a wire model with zero transmit time and zero
  // propagation): run one event at a time in canonical order, applying its
  // emissions immediately. Serial speed, identical results, no deadlock.
  size_t fired = 0;
  while (!canon_.empty()) {
    const CanonNode n = canon_.top();
    Lp& lp = *lps_[n.lp];
    if (!lp.queue->SlotLive(n.slot, n.gen)) {
      canon_.pop();  // cancelled
      continue;
    }
    canon_.pop();
    current_lp_ = &lp;
    const size_t ran = lp.queue->RunEpochWindow(n.at + 1, 1);
    current_lp_ = nullptr;
    if (ran != 1) {
      assert(false && "canonical head not at the LP heap front");
      break;
    }
    ++fired;
    if (n.at > global_now_) {
      global_now_ = n.at;
    }
    assert(lp.events.size() == 1 && lp.events[0].slot == n.slot && lp.events[0].gen == n.gen);
    ApplyFired(lp, lp.events[0]);
    lp.ClearEpoch();
  }
  return fired;
}

uint64_t ParallelEngine::fired_total() const {
  uint64_t total = 0;
  for (const auto& lp : lps_) {
    total += lp->queue->fired_total();
  }
  return total;
}

}  // namespace xk
