// REQUEST_REPLY: the pairing layer of decomposed Sun RPC (paper, Section 5,
// "Mix and Match RPCs").
//
// Pairs requests with replies by transaction id (xid) with ZERO-OR-MORE
// semantics -- the defining contrast with CHANNEL's at-most-once: the server
// keeps NO duplicate-filtering state, so a retransmitted request is executed
// again. (Sun RPC over UDP has exactly these semantics.) The paper's point is
// that the two pairing layers are interchangeable parts: composing SUN_SELECT
// with CHANNEL instead of REQUEST_REPLY upgrades Sun RPC to at-most-once
// without touching any other layer.
//
// Header: type(1) xid(4) protocol_num(4) -- 9 bytes.

#ifndef XK_SRC_RPC_SUN_REQUEST_REPLY_H_
#define XK_SRC_RPC_SUN_REQUEST_REPLY_H_

#include <map>
#include <tuple>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"

namespace xk {

class RequestReplyProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 9;

  // `lower` is FRAGMENT, VIP, or IP.
  RequestReplyProtocol(Kernel& kernel, Protocol* lower, std::string name = "reqrep");

  void set_timeout(SimTime t) { timeout_ = t; }
  void set_retry_limit(int n) { retry_limit_ = n; }

  struct Stats {
    uint64_t calls_sent = 0;
    uint64_t replies_received = 0;
    uint64_t requests_executed = 0;  // includes re-executions of duplicates
    uint64_t retransmissions = 0;
    uint64_t call_failures = 0;
    uint64_t stale_replies = 0;
    uint64_t timeouts = 0;  // retransmit timer expirations
    uint64_t deadline_giveups = 0;  // calls abandoned past their deadline
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("calls_sent", stats_.calls_sent);
    emit("replies_received", stats_.replies_received);
    emit("requests_executed", stats_.requests_executed);
    emit("retransmissions", stats_.retransmissions);
    emit("call_failures", stats_.call_failures);
    emit("stale_replies", stats_.stale_replies);
    emit("timeouts", stats_.timeouts);
    emit("deadline_giveups", stats_.deadline_giveups);
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  friend class RequestReplySession;
  using Key = std::tuple<IpAddr, RelProtoNum>;

  DemuxMap<Key> active_;
  DemuxMap<RelProtoNum, Protocol*> passive_;
  SimTime timeout_ = Msec(100);
  int retry_limit_ = 4;
  Stats stats_;
};

class RequestReplySession : public Session {
 public:
  RequestReplySession(RequestReplyProtocol& owner, Protocol* hlp, IpAddr peer, RelProtoNum proto,
                      SessionRef lower);

  Status HandlePacket(uint8_t type, uint32_t xid, Message& payload, Session* lls);

  size_t outstanding_calls() const { return pending_.size(); }

 protected:
  // With a request from the peer executing, Push sends its reply; otherwise
  // it starts a new call. Multiple calls may be outstanding (xid-matched).
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  struct PendingCall {
    Message request;
    int retries = 0;
    SimTime deadline = 0;  // absolute; 0 = none
    EventHandle timer;
  };

  void Send(uint8_t type, uint32_t xid, const Message& payload);
  void ArmTimer(uint32_t xid);
  void OnTimeout(uint32_t xid);

  RequestReplyProtocol& rr_;
  IpAddr peer_;
  RelProtoNum proto_;
  SessionRef lower_;
  uint32_t next_xid_ = 1;
  std::map<uint32_t, PendingCall> pending_;
  // Server side: xid of the request currently being executed (LIFO depth 1 is
  // enough: the server anchor replies synchronously from its upcall).
  std::optional<uint32_t> executing_xid_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SUN_REQUEST_REPLY_H_
