# Empty dependencies file for bench_udp_crosskernel.
# This may be replaced when dependencies are built.
