// Unit tests for the at-most-once oracle: request encoding, execution
// recording across boot ids, and each violation class (double execution,
// mismatched reply, unknown reply, silent failure).

#include "src/app/oracle.h"

#include <gtest/gtest.h>

#include "src/core/kernel.h"

namespace xk {
namespace {

struct OracleFixture : ::testing::Test {
  EventQueue events;
  Kernel kernel{"server", events, HostEnv::kXKernel, IpAddr(10, 0, 0, 1), EthAddr::FromIndex(1)};
  AmoOracle oracle;
};

TEST_F(OracleFixture, RequestRoundTripsIdAndPattern) {
  const uint64_t id = 0x0123456789abcdefULL;
  Message req = AmoOracle::MakeRequest(id, 32);
  EXPECT_EQ(req.length(), AmoOracle::kIdBytes + 32);
  EXPECT_EQ(AmoOracle::ExtractId(req), id);

  // Distinct ids produce distinct payload patterns (cross-wiring shows up).
  Message other = AmoOracle::MakeRequest(id + 1, 32);
  EXPECT_NE(req.Flatten(), other.Flatten());

  EXPECT_EQ(AmoOracle::ExtractId(Message()), 0u);  // too short: no id
}

TEST_F(OracleFixture, NextCallIdIsMonotonic) {
  const uint64_t a = oracle.NextCallId();
  const uint64_t b = oracle.NextCallId();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(b, a + 1);
}

TEST_F(OracleFixture, HappyPathIsClean) {
  RpcServer::Handler handler = oracle.WrapEcho(&kernel);
  for (int i = 0; i < 3; ++i) {
    const uint64_t id = oracle.NextCallId();
    oracle.RecordIssued(id, Msec(i));
    Message req = AmoOracle::MakeRequest(id, 16);
    Message reply = handler(1, req);
    oracle.RecordOutcome(id, Result<Message>(std::move(reply)), Msec(i) + Usec(500));
  }
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.issued, 3u);
  EXPECT_EQ(rep.completed, 3u);
  EXPECT_EQ(rep.executions, 3u);
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.silent, 0u);
}

TEST_F(OracleFixture, SurfacedFailureIsNotSilent) {
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  oracle.RecordOutcome(id, Result<Message>(ErrStatus(StatusCode::kTimeout)), Msec(1));
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.silent, 0u);
}

TEST_F(OracleFixture, SilentCallIsAViolation) {
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.silent, 1u);
}

TEST_F(OracleFixture, DoubleExecutionWithinOneBootIsAViolation) {
  RpcServer::Handler handler = oracle.WrapEcho(&kernel);
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  Message req = AmoOracle::MakeRequest(id, 8);
  Message reply = handler(1, req);
  Message req2 = AmoOracle::MakeRequest(id, 8);
  (void)handler(1, req2);  // duplicate suppression failed: executed twice
  oracle.RecordOutcome(id, Result<Message>(std::move(reply)), Msec(1));

  AmoOracle::Report rep = oracle.Finish();
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.executions, 2u);
  EXPECT_EQ(rep.double_executions, 1u);
  EXPECT_EQ(rep.cross_boot_reexecutions, 0u);
}

TEST_F(OracleFixture, ReexecutionAcrossRebootIsReportedButNotAViolation) {
  RpcServer::Handler handler = oracle.WrapEcho(&kernel);
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  Message req = AmoOracle::MakeRequest(id, 8);
  (void)handler(1, req);

  // The server reboots (losing its duplicate filter) and a retransmitted
  // request executes again under the new boot id.
  kernel.Crash();
  kernel.Restart();
  Message req2 = AmoOracle::MakeRequest(id, 8);
  Message reply = handler(1, req2);
  oracle.RecordOutcome(id, Result<Message>(std::move(reply)), Msec(1));

  AmoOracle::Report rep = oracle.Finish();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.executions, 2u);
  EXPECT_EQ(rep.double_executions, 0u);
  EXPECT_EQ(rep.cross_boot_reexecutions, 1u);
}

TEST_F(OracleFixture, MismatchedReplyIsAViolation) {
  const uint64_t a = oracle.NextCallId();
  const uint64_t b = oracle.NextCallId();
  oracle.RecordIssued(a, 0);
  oracle.RecordIssued(b, 0);
  // Call a completes with call b's reply: cross-wired.
  oracle.RecordOutcome(a, Result<Message>(AmoOracle::MakeRequest(b, 8)), Msec(1));
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.mismatched_replies, 1u);
  EXPECT_EQ(rep.unknown_replies, 0u);  // b was at least a known call
}

TEST_F(OracleFixture, UnknownReplyIdIsAViolation) {
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  oracle.RecordOutcome(id, Result<Message>(AmoOracle::MakeRequest(0x7777, 8)), Msec(1));
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.mismatched_replies, 1u);
  EXPECT_EQ(rep.unknown_replies, 1u);
}

TEST_F(OracleFixture, CorruptedPayloadIsAViolation) {
  const uint64_t id = oracle.NextCallId();
  oracle.RecordIssued(id, 0);
  Message reply = AmoOracle::MakeRequest(id, 8);
  std::vector<uint8_t> bytes = reply.Flatten();
  bytes.back() ^= 0xFF;
  oracle.RecordOutcome(id, Result<Message>(Message::FromBytes(bytes)), Msec(1));
  AmoOracle::Report rep = oracle.Finish();
  EXPECT_FALSE(rep.clean());
  EXPECT_EQ(rep.mismatched_replies, 1u);
}

}  // namespace
}  // namespace xk
