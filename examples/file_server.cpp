// A Sprite-style remote file service over layered RPC -- the workload that
// motivated Sprite RPC's design (a network operating system whose file system
// lives behind RPC, with arguments and results up to 16 KB).
//
// The server keeps an in-memory file store and exports three procedures:
//   WRITE(name, offset, data)  -- bulk data rides FRAGMENT (16 fragments/16KB)
//   READ(name, offset, len)    -- bulk results fragment on the way back
//   STAT(name)                 -- a null-ish call dominated by latency
//
// Run it to see the asymmetry the paper's throughput tables measure: bulk
// writes move ~0.8 MB/s while stats cost ~2 ms each.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/core/wire.h"
#include "src/proto/topology.h"

using namespace xk;

namespace {

constexpr uint16_t kCmdWrite = 1;
constexpr uint16_t kCmdRead = 2;
constexpr uint16_t kCmdStat = 3;
constexpr size_t kNameLen = 16;  // fixed-size name field

// Request headers (classic fixed-layout RPC argument structs).
struct FileArgs {
  char name[kNameLen] = {};
  uint32_t offset = 0;
  uint32_t len = 0;
};

Message PackArgs(const std::string& name, uint32_t offset, uint32_t len,
                 const std::vector<uint8_t>& data = {}) {
  std::vector<uint8_t> buf(kNameLen + 8);
  std::memcpy(buf.data(), name.data(), std::min(name.size(), kNameLen - 1));
  WireWriter w(std::span<uint8_t>(buf.data() + kNameLen, 8));
  w.PutU32(offset);
  w.PutU32(len);
  Message m = Message::FromBytes(data);
  m.PushHeader(buf);
  return m;
}

bool UnpackArgs(Message& m, FileArgs* out) {
  std::vector<uint8_t> buf(kNameLen + 8);
  if (!m.PopHeader(buf)) {
    return false;
  }
  std::memcpy(out->name, buf.data(), kNameLen);
  out->name[kNameLen - 1] = 0;
  WireReader r(std::span<const uint8_t>(buf.data() + kNameLen, 8));
  out->offset = r.GetU32();
  out->len = r.GetU32();
  return true;
}

// The in-memory file store behind the server.
class FileStore {
 public:
  Message Handle(uint16_t command, Message& request) {
    FileArgs args;
    if (!UnpackArgs(request, &args)) {
      return Message();
    }
    std::vector<uint8_t>& file = files_[args.name];
    switch (command) {
      case kCmdWrite: {
        const std::vector<uint8_t> data = request.Flatten();
        if (file.size() < args.offset + data.size()) {
          file.resize(args.offset + data.size());
        }
        std::memcpy(file.data() + args.offset, data.data(), data.size());
        uint8_t ok[4] = {0, 0, 0, 1};
        return Message::FromBytes(ok);
      }
      case kCmdRead: {
        const size_t end = std::min<size_t>(file.size(), args.offset + args.len);
        if (args.offset >= end) {
          return Message();
        }
        return Message::FromBytes(
            {file.data() + args.offset, end - args.offset});
      }
      case kCmdStat: {
        uint8_t size_buf[4];
        WireWriter w(size_buf);
        w.PutU32(static_cast<uint32_t>(file.size()));
        return Message::FromBytes(size_buf);
      }
      default:
        return Message();
    }
  }

 private:
  std::map<std::string, std::vector<uint8_t>> files_;
};

}  // namespace

int main() {
  auto net = Internet::TwoHosts();
  HostStack& ch = net->host("client");
  HostStack& sh = net->host("server");
  RpcStack cstack = BuildLRpc(ch);
  RpcStack sstack = BuildLRpc(sh);

  FileStore store;
  sh.kernel->RunTask(0, [&] {
    auto& server = sh.kernel->Emplace<RpcServer>(*sh.kernel, sstack.top);
    (void)server.Export(RpcServer::kAny, [&store](uint16_t command, Message& request) {
      return store.Handle(command, request);
    });
  });
  RpcClient* client = nullptr;
  ch.kernel->RunTask(0, [&] { client = &ch.kernel->Emplace<RpcClient>(*ch.kernel, cstack.top); });
  const IpAddr server_addr = sh.kernel->ip_addr();

  // Write a 64 KB file in 16 KB chunks, stat it, read a block back, verify.
  std::vector<uint8_t> content(64 * 1024);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>(i * 131 + 7);
  }

  SimTime write_start = 0;
  SimTime write_end = 0;
  int failures = 0;
  // Declared at main() scope: the completion callbacks that re-invoke it run
  // long after the task that started the pipeline has returned.
  std::function<void(size_t)> write_chunk;
  ch.kernel->ScheduleTask(0, [&] {
    write_start = ch.kernel->now();
    write_chunk = [&, server_addr](size_t offset) {
      if (offset >= content.size()) {
        write_end = ch.kernel->now();
        // stat
        client->Call(server_addr, kCmdStat, PackArgs("data.bin", 0, 0),
                     [&](Result<Message> r) {
                       uint8_t size_buf[4] = {};
                       if (!r.ok() || !(*r).PopHeader(size_buf)) {
                         ++failures;
                         return;
                       }
                       WireReader rd(size_buf);
                       std::printf("STAT data.bin -> %u bytes\n", rd.GetU32());
                       // read back a block spanning a chunk boundary
                       client->Call(server_addr, kCmdRead, PackArgs("data.bin", 15000, 4000),
                                    [&](Result<Message> rr) {
                                      if (!rr.ok()) {
                                        ++failures;
                                        return;
                                      }
                                      auto got = (*rr).Flatten();
                                      const bool match =
                                          got.size() == 4000 &&
                                          std::equal(got.begin(), got.end(),
                                                     content.begin() + 15000);
                                      std::printf("READ 4000@15000 -> %zu bytes, %s\n",
                                                  got.size(),
                                                  match ? "verified" : "MISMATCH");
                                    });
                     });
        return;
      }
      const size_t n = std::min<size_t>(16 * 1024, content.size() - offset);
      client->Call(server_addr, kCmdWrite,
                   PackArgs("data.bin", static_cast<uint32_t>(offset), 0,
                            {content.begin() + offset, content.begin() + offset + n}),
                   [&, offset, n](Result<Message> r) {
                     if (!r.ok()) {
                       ++failures;
                       return;
                     }
                     write_chunk(offset + n);
                   });
    };
    write_chunk(0);
  });
  net->RunAll();

  if (write_end > write_start) {
    const double secs = ToMsec(write_end - write_start) / 1000.0;
    std::printf("WRITE 64 KB in %.1f ms (%.0f kbytes/sec)\n", ToMsec(write_end - write_start),
                64.0 / secs);
  }
  std::printf("fragments sent by client FRAGMENT layer: %lu\n",
              static_cast<unsigned long>(cstack.fragment->stats().fragments_sent));
  return failures == 0 ? 0 : 1;
}
