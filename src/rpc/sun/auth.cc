#include "src/rpc/sun/auth.h"

#include "src/core/wire.h"

namespace xk {

// Wire format: flavor(1) body_len(1) body[body_len].

// ---------------------------------------------------------------------------
// AuthProtocolBase
// ---------------------------------------------------------------------------

AuthProtocolBase::AuthProtocolBase(Kernel& kernel, Protocol* lower, std::string name,
                                   RelProtoNum rel_proto)
    : Protocol(kernel, std::move(name), {lower}), rel_proto_(rel_proto), active_(*this) {
  ParticipantSet enable;
  enable.local.rel_proto = rel_proto_;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SessionRef> AuthProtocolBase::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (SessionRef cached = active_.Resolve(*parts.peer.host)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.peer.host = *parts.peer.host;
  lparts.local.rel_proto = rel_proto_;
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<AuthSession>(*this, &hlp, *parts.peer.host, *lower_sess,
                                            /*server_side=*/false);
  active_.Bind(*parts.peer.host, sess);
  return SessionRef(sess);
}

Status AuthProtocolBase::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  (void)parts;
  if (enabled_hlp_ != nullptr && enabled_hlp_ != &hlp) {
    return ErrStatus(StatusCode::kAlreadyExists);
  }
  enabled_hlp_ = &hlp;
  return OkStatus();
}

Status AuthProtocolBase::DoDemux(Session* lls, Message& msg) {
  uint8_t head[2];
  if (!msg.PopHeader(head)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const uint8_t flavor = head[0];
  const uint8_t body_len = head[1];
  std::vector<uint8_t> body(body_len);
  if (body_len > 0 && !msg.PopHeader(body)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(2u + body_len);
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }

  IpAddr peer;
  ControlArgs args;
  if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
    peer = args.ip;
  }
  SessionRef sess = active_.Resolve(peer);
  const bool existing_client = sess != nullptr && !static_cast<AuthSession*>(sess.get())->server_side();

  if (flavor == kFlavorReject) {
    ++stats_.reject_notices;
    if (sess != nullptr && sess->hlp() != nullptr) {
      sess->hlp()->SessionError(*sess, ErrStatus(StatusCode::kRejected));
    }
    return OkStatus();
  }

  if (!existing_client) {
    // Server side: verify before anything is delivered.
    if (!Verify(flavor, body)) {
      ++stats_.rejected;
      uint8_t reject[2] = {kFlavorReject, 0};
      Message notice;
      kernel().ChargeHdrStore(2);
      notice.PushHeader(reject);
      return lls->Push(notice);
    }
    ++stats_.verified;
    if (sess == nullptr) {
      if (enabled_hlp_ == nullptr) {
        return ErrStatus(StatusCode::kNotFound);
      }
      kernel().ChargeSessionCreate();
      sess = std::make_shared<AuthSession>(*this, enabled_hlp_, peer, lls->Ref(),
                                           /*server_side=*/true);
      active_.Bind(peer, sess);
      ParticipantSet up;
      up.peer.host = peer;
      Status s = enabled_hlp_->OpenDoneUp(*this, sess, up);
      if (!s.ok()) {
        active_.Unbind(peer);
        return s;
      }
    }
  }
  return sess->Pop(msg, lls);
}

// ---------------------------------------------------------------------------
// AuthSession
// ---------------------------------------------------------------------------

AuthSession::AuthSession(AuthProtocolBase& owner, Protocol* hlp, IpAddr peer, SessionRef lower,
                         bool server_side)
    : Session(owner, hlp), auth_(owner), peer_(peer), lower_(std::move(lower)),
      server_side_(server_side) {}

Status AuthSession::DoPush(Message& msg) {
  const std::vector<uint8_t> cred = auth_.MakeCredentials();
  kernel().ChargeHdrStore(cred.size());
  msg.PushHeader(cred);
  ++auth_.stats_.attached;
  return lower_->Push(msg);
}

Status AuthSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status AuthSession::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetPeerHost) {
    args.ip = peer_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// AUTH_NONE
// ---------------------------------------------------------------------------

AuthNoneProtocol::AuthNoneProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : AuthProtocolBase(kernel, lower, std::move(name), kRelProtoAuthNone) {}

std::vector<uint8_t> AuthNoneProtocol::MakeCredentials() const {
  return {kFlavorNone, 0};
}

bool AuthNoneProtocol::Verify(uint8_t flavor, std::span<const uint8_t> body) const {
  return flavor == kFlavorNone && body.empty();
}

// ---------------------------------------------------------------------------
// AUTH_CRED
// ---------------------------------------------------------------------------

AuthCredProtocol::AuthCredProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : AuthProtocolBase(kernel, lower, std::move(name), kRelProtoAuthCred) {}

std::vector<uint8_t> AuthCredProtocol::MakeCredentials() const {
  std::vector<uint8_t> cred(2 + 8);
  cred[0] = kFlavorCred;
  cred[1] = 8;
  WireWriter w(std::span<uint8_t>(cred.data() + 2, 8));
  w.PutU32(uid_);
  w.PutU32(gid_);
  return cred;
}

bool AuthCredProtocol::Verify(uint8_t flavor, std::span<const uint8_t> body) const {
  if (flavor != kFlavorCred || body.size() != 8) {
    return false;
  }
  WireReader r(body);
  const uint32_t uid = r.GetU32();
  return allowed_uids_.count(uid) != 0;
}

}  // namespace xk
