# Empty dependencies file for vip_locality.
# This may be replaced when dependencies are built.
