#include "src/proto/topology.h"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "src/sim/parallel.h"
#include "src/stat/timeseries.h"
#include "src/trace/counters.h"

namespace xk {

Internet::Internet(HostEnv default_env, uint64_t seed, int engine_threads)
    : default_env_(default_env),
      seed_(seed),
      engine_threads_(engine_threads > 0 ? engine_threads : default_engine_threads()),
      trace_(TraceSink::thread_default()),
      capture_(PacketCapture::thread_default()) {
  if (engine_threads_ > 1) {
    engine_ = std::make_unique<ParallelEngine>(engine_threads_);
    engine_->set_control_queue(&events_);
    engine_->set_trace_master(trace_);
  }
  if (StatSampler* s = StatSampler::thread_default(); s != nullptr) {
    AttachStats(s);
  }
}

Internet::~Internet() {
  // Detach the sampler while the event queues it probes are still alive.
  if (stats_ != nullptr) {
    stats_->DetachNet(stat_net_);
  }
  // Kernels (and the protocols inside them) may hold sessions referring to
  // segments; destroy kernels first. The engine owns the per-host event
  // queues, so it must outlive the kernels built on them (engine_ is a
  // member, destroyed after this body).
  kernels_.clear();
  segments_.clear();
}

uint64_t Internet::events_fired() const {
  return engine_ != nullptr ? engine_->fired_total() : events_.fired_total();
}

size_t Internet::RunAll() {
  const size_t fired = engine_ != nullptr ? engine_->Run() : events_.Run();
  // Emit the trailing sample boundaries (identical under both engines:
  // events_ is advanced to global time after a parallel run).
  if (stats_ != nullptr) {
    stats_->FlushNet(stat_net_, events_.now());
  }
  return fired;
}

int Internet::AddSegment(WireModel wire) {
  const int id = static_cast<int>(segments_.size());
  segments_.push_back(
      std::make_unique<EthernetSegment>(events_, wire, seed_ + static_cast<uint64_t>(id)));
  segments_.back()->set_observer_id(id);
  segments_.back()->set_trace(trace_);
  segments_.back()->set_capture(capture_);
  if (stats_ != nullptr) {
    segments_.back()->set_stats(stats_->RegisterSegment(stat_net_, id));
  }
  if (engine_ != nullptr) {
    engine_->AdoptSegment(*segments_.back());
  }
  attachments_.emplace_back();
  return id;
}

HostStack& Internet::AddHost(const std::string& name, int segment, IpAddr ip,
                             std::optional<HostEnv> env) {
  const EthAddr mac = EthAddr::FromIndex(next_eth_index_++);
  EventQueue& host_events = engine_ != nullptr ? engine_->NewLpQueue() : events_;
  if (engine_ != nullptr) {
    // Reproduce the boot ids a single shared queue would have handed out.
    host_events.set_next_boot_id(1000 + static_cast<uint32_t>(kernels_.size()));
    host_events.AdvanceTo(events_.now());
  }
  auto kernel =
      std::make_unique<Kernel>(name, host_events, env.value_or(default_env_), ip, mac);
  Kernel* k = kernel.get();
  k->set_trace_sink(trace_);
  kernels_.push_back(std::move(kernel));
  if (engine_ != nullptr) {
    engine_->BindKernel(*k);
  }
  if (stats_ != nullptr) {
    stats_->RegisterKernel(stat_net_, *k);
  }

  HostEntry entry;
  entry.name = name;
  entry.stack.kernel = k;
  entry.segment = segment;
  entry.ip = ip;
  entry.env = env.value_or(default_env_);
  hosts_.push_back(std::move(entry));
  HostEntry& e = hosts_.back();
  // Protocol constructors perform open_enables, which charge the CPU, so the
  // graph is built inside a configuration task.
  k->RunTask(events_.now(), [&]() { BuildSubstrate(e); });
  attachments_[segment].push_back(Attachment{ip, mac, e.stack.arp});
  return e.stack;
}

void Internet::BuildSubstrate(HostEntry& e) {
  // Must run inside a task on e's kernel. On restart the Ethernet driver
  // reclaims its old station id (same MAC), so wire-level identity persists
  // across reboots just as the IP address does.
  Kernel* k = e.stack.kernel;
  e.stack.eth = &k->Emplace<EthProtocol>(*k, *segments_[e.segment]);
  e.stack.arp = &k->Emplace<ArpProtocol>(*k, e.stack.eth);
  e.stack.ip = &k->Emplace<IpProtocol>(
      *k, std::vector<IpInterface>{IpInterface{e.stack.eth, e.stack.arp, e.ip, 24}});
}

Internet::HostEntry& Internet::FindEntry(const std::string& name) {
  for (HostEntry& e : hosts_) {
    if (e.name == name) {
      return e;
    }
  }
  throw std::out_of_range("no such host: " + name);
}

void Internet::CrashHost(const std::string& host_name) {
  HostEntry& e = FindEntry(host_name);
  Kernel* k = e.stack.kernel;
  assert(k->is_up() && "CrashHost: host is already down");
  // Null out attachment ARP pointers before their protocols die.
  for (auto& seg : attachments_) {
    for (Attachment& a : seg) {
      if (a.arp != nullptr && &a.arp->kernel() == k) {
        a.arp = nullptr;
      }
    }
  }
  // Protocol destructors charge teardown work, so the crash itself runs as a
  // task unless the caller (e.g. a FaultEngine crash event) already is one.
  if (k->cpu().in_task()) {
    k->Crash();
  } else {
    k->RunTask(k->events().now(), [&]() { k->Crash(); });
  }
  e.stack.eth = nullptr;
  e.stack.arp = nullptr;
  e.stack.ip = nullptr;
}

HostStack& Internet::RestartHost(const std::string& host_name) {
  HostEntry& e = FindEntry(host_name);
  assert(e.segment >= 0 && "RestartHost: routers do not restart");
  Kernel* k = e.stack.kernel;
  assert(!k->is_up() && "RestartHost: host is not down");
  k->Restart();
  const auto reboot = [this, &e, k]() {
    BuildSubstrate(e);
    if (e.gateway.has_value()) {
      e.stack.ip->SetDefaultGateway(*e.gateway);
    }
    if (warmed_) {
      // The peers kept their (still valid) entries for this host; only the
      // reborn host's cache is cold.
      for (const Attachment& b : attachments_[e.segment]) {
        if (b.ip == e.ip) {
          continue;
        }
        ControlArgs args;
        args.ip = b.ip;
        args.eth = b.eth;
        (void)e.stack.arp->Control(ControlOp::kAddResolveEntry, args);
      }
    }
    if (e.restart_hook) {
      e.restart_hook(e.stack);
    }
  };
  // Use the host's own clock: in parallel mode the Internet's control queue
  // can lag the host's logical process mid-run.
  if (k->cpu().in_task()) {
    reboot();
  } else {
    k->RunTask(k->events().now(), reboot);
  }
  for (Attachment& a : attachments_[e.segment]) {
    if (a.ip == e.ip) {
      a.arp = e.stack.arp;
    }
  }
  return e.stack;
}

void Internet::set_restart_hook(const std::string& host_name,
                                std::function<void(HostStack&)> hook) {
  FindEntry(host_name).restart_hook = std::move(hook);
}

HostStack& Internet::AddRouter(const std::string& name,
                               std::vector<std::pair<int, IpAddr>> attachments) {
  assert(!attachments.empty());
  const EthAddr primary_mac = EthAddr::FromIndex(next_eth_index_);
  EventQueue& host_events = engine_ != nullptr ? engine_->NewLpQueue() : events_;
  if (engine_ != nullptr) {
    host_events.set_next_boot_id(1000 + static_cast<uint32_t>(kernels_.size()));
    host_events.AdvanceTo(events_.now());
  }
  auto kernel = std::make_unique<Kernel>(name, host_events, default_env_,
                                         attachments[0].second, primary_mac);
  Kernel* k = kernel.get();
  k->set_trace_sink(trace_);
  kernels_.push_back(std::move(kernel));
  if (engine_ != nullptr) {
    engine_->BindKernel(*k);
  }
  if (stats_ != nullptr) {
    stats_->RegisterKernel(stat_net_, *k);
  }

  HostStack stack;
  stack.kernel = k;
  k->RunTask(events_.now(), [&]() {
    std::vector<IpInterface> ifaces;
    for (size_t i = 0; i < attachments.size(); ++i) {
      const auto& [seg, addr] = attachments[i];
      const EthAddr mac = EthAddr::FromIndex(next_eth_index_++);
      auto* eth = &k->Emplace<EthProtocol>(*k, *segments_[seg], mac,
                                           "eth" + std::to_string(i));
      auto* arp = &k->Emplace<ArpProtocol>(*k, eth, addr, "arp" + std::to_string(i));
      ifaces.push_back(IpInterface{eth, arp, addr, 24});
      attachments_[seg].push_back(Attachment{addr, mac, arp});
      if (i == 0) {
        stack.eth = eth;
        stack.arp = arp;
      }
    }
    stack.ip = &k->Emplace<IpProtocol>(*k, std::move(ifaces));
    stack.ip->set_forwarding(true);
  });
  HostEntry entry;
  entry.name = name;
  entry.stack = stack;
  entry.segment = -1;  // multiple attachments; routers don't restart
  entry.ip = attachments[0].second;
  entry.env = default_env_;
  hosts_.push_back(std::move(entry));
  return hosts_.back().stack;
}

void Internet::WarmArp() {
  for (const auto& seg : attachments_) {
    for (const Attachment& a : seg) {
      a.arp->kernel().RunTask(events_.now(), [&]() {
        for (const Attachment& b : seg) {
          if (&a == &b) {
            continue;
          }
          ControlArgs args;
          args.ip = b.ip;
          args.eth = b.eth;
          (void)a.arp->Control(ControlOp::kAddResolveEntry, args);
        }
      });
    }
  }
  warmed_ = true;
}

void Internet::SetDefaultGateway(const std::string& host_name, IpAddr gw) {
  HostEntry& e = FindEntry(host_name);
  e.gateway = gw;
  e.stack.kernel->RunTask(events_.now(), [&]() { e.stack.ip->SetDefaultGateway(gw); });
}

void Internet::AttachTrace(TraceSink* trace) {
  trace_ = trace;
  for (auto& k : kernels_) {
    k->set_trace_sink(trace);
  }
  for (auto& s : segments_) {
    s->set_trace(trace);
  }
  if (engine_ != nullptr) {
    engine_->set_trace_master(trace);
  }
}

void Internet::AttachPcap(PacketCapture* capture) {
  capture_ = capture;
  for (auto& s : segments_) {
    s->set_capture(capture);
  }
}

void Internet::AttachStats(StatSampler* stats) {
  if (stats_ == stats) {
    return;
  }
  if (stats_ != nullptr) {
    for (auto& s : segments_) {
      s->set_stats(nullptr);
    }
    stats_->DetachNet(stat_net_);
    stat_net_ = -1;
  }
  stats_ = stats;
  if (stats_ == nullptr) {
    return;
  }
  stat_net_ = stats_->AttachNet();
  for (auto& k : kernels_) {
    stats_->RegisterKernel(stat_net_, *k);
  }
  for (size_t i = 0; i < segments_.size(); ++i) {
    segments_[i]->set_stats(stats_->RegisterSegment(stat_net_, static_cast<int>(i)));
  }
}

std::string Internet::CountersJson() const {
  std::string out;
  out += "{\"schema_version\":1,\"hosts\":[";
  bool first = true;
  for (const HostEntry& e : hosts_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendHostCountersJson(out, *e.stack.kernel);
  }
  out += "],\"links\":[";
  for (size_t i = 0; i < segments_.size(); ++i) {
    const EthernetSegment& s = *segments_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"segment\":" + std::to_string(i);
    out += ",\"frames_sent\":" + std::to_string(s.frames_sent());
    out += ",\"bytes_sent\":" + std::to_string(s.bytes_sent());
    out += ",\"frames_dropped\":" + std::to_string(s.frames_dropped());
    out += ",\"random_drops\":" + std::to_string(s.random_drops());
    out += ",\"fault_drops\":" + std::to_string(s.fault_drops());
    out += ",\"fault_duplicates\":" + std::to_string(s.fault_duplicates());
    out += ",\"fault_corruptions\":" + std::to_string(s.fault_corruptions());
    out += ",\"fault_delays\":" + std::to_string(s.fault_delays());
    out += ",\"down_drops\":" + std::to_string(s.down_drops());
    out += ",\"bus_busy_ns\":" + std::to_string(s.bus_busy_time());
    // Utilization over the full simulated span, parts-per-million (integer,
    // so the document stays byte-stable).
    const SimTime elapsed = events_.now();
    const uint64_t util_ppm =
        elapsed > 0 ? static_cast<uint64_t>(s.bus_busy_time()) * 1000000u /
                          static_cast<uint64_t>(elapsed)
                    : 0;
    out += ",\"utilization_ppm\":" + std::to_string(util_ppm);
    out += ",\"queued_frames\":" + std::to_string(s.queued_frames());
    out += ",\"peak_queue_depth\":" + std::to_string(s.peak_queue_depth());
    out += ",\"mean_queue_depth_x1000\":" + std::to_string(s.mean_queue_depth_x1000());
    const Histogram& qw = s.queue_wait();
    out += ",\"queue_wait_p50_ns\":" + std::to_string(qw.P50());
    out += ",\"queue_wait_p99_ns\":" + std::to_string(qw.P99());
    out += ",\"queue_wait_p999_ns\":" + std::to_string(qw.P999());
    out += ",\"queue_wait_max_ns\":" + std::to_string(qw.max());
    out += "}";
  }
  out += "]}\n";
  return out;
}

bool Internet::WriteCountersJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string s = CountersJson();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

HostStack& Internet::host(const std::string& name) { return FindEntry(name).stack; }

std::unique_ptr<Internet> Internet::TwoHosts(HostEnv env) {
  auto net = std::make_unique<Internet>(env);
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  net->WarmArp();
  return net;
}

std::unique_ptr<Internet> Internet::TwoSegments(HostEnv env) {
  auto net = std::make_unique<Internet>(env);
  const int seg_a = net->AddSegment();
  const int seg_b = net->AddSegment();
  net->AddHost("client", seg_a, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg_b, IpAddr(10, 0, 2, 1));
  net->AddRouter("router", {{seg_a, IpAddr(10, 0, 1, 254)}, {seg_b, IpAddr(10, 0, 2, 254)}});
  net->WarmArp();
  net->SetDefaultGateway("client", IpAddr(10, 0, 1, 254));
  net->SetDefaultGateway("server", IpAddr(10, 0, 2, 254));
  return net;
}

}  // namespace xk
