// Per-host CPU model.
//
// Each simulated host (a Sun 3/75 in the paper's testbed) has one CPU. All
// protocol processing on a host -- a shepherd process carrying a message up
// or down the stack -- executes as a *task* on that CPU. A task begins at
// max(event time, time the CPU frees up), accumulates Charge()d costs, and
// leaves the CPU busy until it ends. This serializes concurrent shepherd
// processing on a uniprocessor exactly the way contention did on the real
// machines, while letting the two hosts and the wire pipeline against each
// other (which is what makes throughput, not latency, saturate the link).

#ifndef XK_SRC_SIM_CPU_H_
#define XK_SRC_SIM_CPU_H_

#include <cassert>

#include "src/core/types.h"

namespace xk {

class Cpu {
 public:
  Cpu() = default;

  // Begins a task dispatched at `at`. Returns the time the task actually
  // starts executing (>= at if the CPU was busy).
  SimTime BeginTask(SimTime at) {
    assert(!in_task_);
    in_task_ = true;
    now_ = at > busy_until_ ? at : busy_until_;
    return now_;
  }

  // Accounts `cost` of CPU work to the current task.
  void Charge(SimTime cost) {
    assert(in_task_);
    assert(cost >= 0);
    now_ += cost;
    total_busy_ += cost;
  }

  // Ends the current task; the CPU is busy until the returned time.
  SimTime EndTask() {
    assert(in_task_);
    in_task_ = false;
    busy_until_ = now_;
    return busy_until_;
  }

  // The current task's local clock (valid only inside a task).
  SimTime now() const {
    assert(in_task_);
    return now_;
  }

  bool in_task() const { return in_task_; }
  SimTime busy_until() const { return busy_until_; }

  // Total CPU time charged since construction (the paper's "uses less CPU
  // time" comparisons read this).
  SimTime total_busy() const { return total_busy_; }
  void ResetTotalBusy() { total_busy_ = 0; }

 private:
  SimTime now_ = 0;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
  bool in_task_ = false;
};

}  // namespace xk

#endif  // XK_SRC_SIM_CPU_H_
