# Empty compiler generated dependencies file for xk_rpc.
# This may be replaced when dependencies are built.
