// Tests for the CPU and Ethernet link models.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/link.h"

namespace xk {
namespace {

TEST(CpuTest, ChargesAccumulateWithinTask) {
  Cpu cpu;
  EXPECT_EQ(cpu.BeginTask(Usec(100)), Usec(100));
  cpu.Charge(Usec(10));
  cpu.Charge(Usec(5));
  EXPECT_EQ(cpu.now(), Usec(115));
  EXPECT_EQ(cpu.EndTask(), Usec(115));
  EXPECT_EQ(cpu.total_busy(), Usec(15));
}

TEST(CpuTest, BackToBackTasksSerialize) {
  Cpu cpu;
  cpu.BeginTask(Usec(0));
  cpu.Charge(Usec(50));
  cpu.EndTask();
  // A task dispatched at t=20 while the CPU is busy until t=50 starts at 50.
  EXPECT_EQ(cpu.BeginTask(Usec(20)), Usec(50));
  cpu.Charge(Usec(10));
  EXPECT_EQ(cpu.EndTask(), Usec(60));
}

TEST(CpuTest, IdleGapsDoNotCountAsBusy) {
  Cpu cpu;
  cpu.BeginTask(Usec(0));
  cpu.Charge(Usec(10));
  cpu.EndTask();
  cpu.BeginTask(Usec(1000));
  cpu.Charge(Usec(10));
  cpu.EndTask();
  EXPECT_EQ(cpu.total_busy(), Usec(20));
}

class Recorder : public FrameSink {
 public:
  struct Arrival {
    SimTime at;
    std::vector<uint8_t> bytes;
  };
  explicit Recorder(EventQueue& q) : q_(q) {}
  void FrameArrived(const EthFrame& f) override { arrivals.push_back({q_.now(), f.bytes}); }
  std::vector<Arrival> arrivals;

 private:
  EventQueue& q_;
};

EthFrame MakeFrame(EthAddr dst, EthAddr src, size_t payload) {
  EthFrame f;
  auto put = [&](const EthAddr& a) {
    for (uint8_t b : a.bytes()) {
      f.bytes.push_back(b);
    }
  };
  put(dst);
  put(src);
  f.bytes.push_back(0x08);
  f.bytes.push_back(0x00);
  f.bytes.resize(14 + payload, 0xAB);
  return f;
}

struct LinkFixture : ::testing::Test {
  EventQueue q;
  WireModel wire;
  EthernetSegment seg{q, WireModel{}, 42};
  Recorder a{q}, b{q}, c{q};
  int ia = seg.Attach(EthAddr::FromIndex(1), &a);
  int ib = seg.Attach(EthAddr::FromIndex(2), &b);
  int ic = seg.Attach(EthAddr::FromIndex(3), &c);
};

TEST_F(LinkFixture, UnicastReachesOnlyDestination) {
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 100), 0);
  q.Run();
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 0u);
}

TEST_F(LinkFixture, BroadcastReachesAllButSender) {
  seg.Transmit(ia, MakeFrame(EthAddr::Broadcast(), EthAddr::FromIndex(1), 10), 0);
  q.Run();
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);
}

TEST_F(LinkFixture, ArrivalTimeMatchesWireModel) {
  const size_t payload = 1000;
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), payload), Usec(50));
  q.Run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  const SimTime expected = Usec(50) + wire.TransmitTime(14 + payload) + wire.propagation;
  EXPECT_EQ(b.arrivals[0].at, expected);
}

TEST_F(LinkFixture, MinFramePaddingAffectsTiming) {
  // A tiny frame still takes min_frame_bytes on the wire.
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 1), 0);
  q.Run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].at, wire.TransmitTime(64) + wire.propagation);
}

TEST_F(LinkFixture, BusSerializesBackToBackFrames) {
  const auto f = MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 1000);
  seg.Transmit(ia, f, 0);
  seg.Transmit(ia, f, 0);  // ready at the same instant: queues behind
  q.Run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  const SimTime tx = wire.TransmitTime(1014);
  EXPECT_EQ(b.arrivals[0].at, tx + wire.propagation);
  EXPECT_EQ(b.arrivals[1].at, 2 * tx + wire.propagation);
  EXPECT_EQ(seg.bus_busy_time(), 2 * tx);
}

TEST_F(LinkFixture, DropRateDropsEverythingAtOne) {
  seg.set_drop_rate(1.0);
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 10), 0);
  q.Run();
  EXPECT_EQ(b.arrivals.size(), 0u);
  EXPECT_EQ(seg.frames_dropped(), 1u);
}

TEST_F(LinkFixture, FaultHookCanTargetSpecificDelivery) {
  seg.set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  const auto f = MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 10);
  seg.Transmit(ia, f, 0);
  seg.Transmit(ia, f, 0);
  seg.Transmit(ia, f, 0);
  q.Run();
  EXPECT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(seg.frames_dropped(), 1u);
}

TEST_F(LinkFixture, FaultHookDuplicateDeliversTwice) {
  seg.set_fault_hook(
      [](const EthFrame&, int, uint64_t) { return LinkFault::kDuplicate; });
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 10), 0);
  q.Run();
  EXPECT_EQ(b.arrivals.size(), 2u);
}

TEST_F(LinkFixture, StatsCountFramesAndBytes) {
  seg.Transmit(ia, MakeFrame(EthAddr::FromIndex(2), EthAddr::FromIndex(1), 100), 0);
  seg.Transmit(ib, MakeFrame(EthAddr::FromIndex(1), EthAddr::FromIndex(2), 200), 0);
  q.Run();
  EXPECT_EQ(seg.frames_sent(), 2u);
  EXPECT_EQ(seg.bytes_sent(), 114u + 214u);
  seg.ResetStats();
  EXPECT_EQ(seg.frames_sent(), 0u);
  EXPECT_EQ(seg.bus_busy_time(), 0);
}

TEST(WireModelTest, TransmitTimeAt10Mbps) {
  WireModel w;
  // 1250 bytes = 10000 bits = 1000 us at 10 Mbps, plus per-frame overhead.
  EXPECT_EQ(w.TransmitTime(1250), w.per_frame_overhead + Usec(1000));
}

}  // namespace
}  // namespace xk
