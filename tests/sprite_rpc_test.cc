// Tests for the monolithic Sprite RPC (M_RPC) across its three delivery
// configurations, covering the full Sprite algorithm: implicit acks,
// at-most-once, fragmentation with selective retransmission, boot ids.

#include "src/rpc/sprite_rpc.h"

#include <gtest/gtest.h>

#include "tests/rpc_util.h"

namespace xk {
namespace {

class MRpcTest : public ::testing::TestWithParam<Delivery> {
 protected:
  void SetUp() override {
    fix.Build([this](HostStack& h) { return BuildMRpc(h, GetParam()); });
  }
  RpcFixture fix;
};

TEST_P(MRpcTest, NullCallRoundTrips) {
  Result<Message> r = fix.CallSync(42, Message());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->length(), 0u);
  EXPECT_EQ(fix.cstack.sprite->stats().calls_sent, 1u);
  EXPECT_EQ(fix.sstack.sprite->stats().requests_executed, 1u);
}

TEST_P(MRpcTest, PayloadEchoes) {
  Result<Message> r = fix.CallSync(42, Message::FromBytes(PatternBytes(777, 3)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(777, 3));
}

TEST_P(MRpcTest, SixteenKArgsFragmentInto16) {
  Result<Message> r = fix.CallSync(42, Message::FromBytes(PatternBytes(16384, 4)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(16384, 4));
  // 16 request fragments + 16 reply fragments.
  EXPECT_EQ(fix.cstack.sprite->stats().fragments_sent, 16u);
  EXPECT_EQ(fix.sstack.sprite->stats().fragments_sent, 16u);
}

TEST_P(MRpcTest, OversizeRejected) {
  bool done = false;
  RunIn(*fix.ch->kernel, [&] {
    fix.client->Call(fix.server_addr(), 42, Message(SpriteRpcProtocol::kMaxMessage + 1),
                     [&](Result<Message> r) {
                       EXPECT_FALSE(r.ok());
                       EXPECT_EQ(r.status().code(), StatusCode::kTooBig);
                       done = true;
                     });
  });
  fix.net->RunAll();
  EXPECT_TRUE(done);
}

TEST_P(MRpcTest, SequentialCallsReuseState) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fix.CallSync(42, Message::FromBytes(PatternBytes(64, uint8_t(i)))).ok());
  }
  EXPECT_EQ(fix.cstack.sprite->stats().retransmissions, 0u);
  EXPECT_EQ(fix.sstack.sprite->stats().duplicates_suppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Deliveries, MRpcTest,
                         ::testing::Values(Delivery::kEth, Delivery::kIp, Delivery::kVip),
                         [](const ::testing::TestParamInfo<Delivery>& info) {
                           switch (info.param) {
                             case Delivery::kEth:
                               return "Eth";
                             case Delivery::kIp:
                               return "Ip";
                             case Delivery::kVip:
                               return "Vip";
                           }
                           return "Unknown";
                         });

// --- reliability paths (on the VIP configuration) -------------------------------

struct MRpcReliabilityTest : ::testing::Test {
  void SetUp() override {
    fix.Build([](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  }
  RpcFixture fix;
};

TEST_F(MRpcReliabilityTest, LostRequestRetransmitted) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  ASSERT_TRUE(fix.CallSync(42, Message()).ok());
  EXPECT_GE(fix.cstack.sprite->stats().retransmissions, 1u);
  EXPECT_EQ(fix.server->requests_served(), 1u);
}

TEST_F(MRpcReliabilityTest, LostReplyAnsweredFromSavedReply) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  ASSERT_TRUE(fix.CallSync(42, Message::FromBytes(PatternBytes(5))).ok());
  EXPECT_EQ(fix.server->requests_served(), 1u);  // at-most-once
  EXPECT_GE(fix.sstack.sprite->stats().replies_resent, 1u);
}

TEST_F(MRpcReliabilityTest, LostMiddleFragmentSelectivelyResent) {
  // Drop one fragment of a 16-fragment request. The client's retransmission
  // asks for an ack; the server's partial ack (mask of received fragments)
  // triggers a selective resend of only the missing fragment.
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 7 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  Result<Message> r = fix.CallSync(42, Message::FromBytes(PatternBytes(16384, 6)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(16384, 6));
  EXPECT_EQ(fix.server->requests_served(), 1u);
  EXPECT_GE(fix.sstack.sprite->stats().explicit_acks_sent, 1u);
  EXPECT_GE(fix.cstack.sprite->stats().selective_resends, 1u);
  // Selective: far fewer resends than a full 16-fragment retransmission.
  EXPECT_LE(fix.cstack.sprite->stats().selective_resends, 3u);
}

TEST_F(MRpcReliabilityTest, DuplicateRequestSuppressed) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  ASSERT_TRUE(fix.CallSync(42, Message()).ok());
  EXPECT_EQ(fix.server->requests_served(), 1u);
  EXPECT_GE(fix.sstack.sprite->stats().duplicates_suppressed, 1u);
}

TEST_F(MRpcReliabilityTest, SlowServerElicitsExplicitAck) {
  RunIn(*fix.sh->kernel, [&] { fix.server->set_service_delay(Msec(180)); });
  ASSERT_TRUE(fix.CallSync(42, Message()).ok());
  EXPECT_GE(fix.sstack.sprite->stats().explicit_acks_sent, 1u);
  EXPECT_EQ(fix.server->requests_served(), 1u);
}

TEST_F(MRpcReliabilityTest, DeadServerFailsAndChannelRecovers) {
  fix.net->segment(0).set_drop_rate(1.0);
  Result<Message> r = fix.CallSync(42, Message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  fix.net->segment(0).set_drop_rate(0.0);
  EXPECT_TRUE(fix.CallSync(42, Message()).ok());
}

TEST_F(MRpcReliabilityTest, ClientCrashRestartResetsChannels) {
  ASSERT_TRUE(fix.CallSync(42, Message()).ok());
  fix.net->CrashHost("client");
  fix.net->RestartHost("client");
  ASSERT_TRUE(fix.CallSync(42, Message()).ok());
  EXPECT_GE(fix.sstack.sprite->stats().boot_resets, 1u);
}

TEST_F(MRpcReliabilityTest, ChannelPoolLimitsConcurrency) {
  RunIn(*fix.sh->kernel, [&] { fix.server->set_service_delay(Msec(5)); });
  const int kCalls = SpriteRpcProtocol::kNumChannels + 3;
  int completed = 0;
  RunIn(*fix.ch->kernel, [&] {
    for (int i = 0; i < kCalls; ++i) {
      fix.client->Call(fix.server_addr(), 42, Message(), [&](Result<Message> r) {
        EXPECT_TRUE(r.ok());
        ++completed;
      });
    }
  });
  fix.net->RunAll();
  EXPECT_EQ(completed, kCalls);
  EXPECT_GE(fix.cstack.sprite->stats().blocked_on_channel, 3u);
}

TEST_F(MRpcReliabilityTest, RandomLossPropertySweep) {
  // Under moderate random loss every call still completes exactly once at
  // the server per executed transaction, and echoes are never corrupted.
  Rng rng(1234);
  int drops_left = 10;
  fix.net->segment(0).set_fault_hook([&](const EthFrame&, int, uint64_t) {
    if (drops_left > 0 && rng.Chance(0.08)) {
      --drops_left;
      return LinkFault::kDrop;
    }
    return LinkFault::kDeliver;
  });
  for (int i = 0; i < 10; ++i) {
    auto payload = PatternBytes(rng.NextInRange(0, 8000), static_cast<uint8_t>(i));
    Result<Message> r = fix.CallSync(42, Message::FromBytes(payload));
    ASSERT_TRUE(r.ok()) << "call " << i;
    EXPECT_EQ(r->Flatten(), payload) << "call " << i;
  }
  EXPECT_EQ(fix.server->requests_served(), 10u);
}

}  // namespace
}  // namespace xk
