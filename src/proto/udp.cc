#include "src/proto/udp.h"

#include "src/core/wire.h"
#include "src/tools/checksum.h"

namespace xk {

namespace {

// Pseudo-header + UDP header + payload checksum (RFC 768).
uint16_t UdpChecksum(IpAddr src, IpAddr dst, uint16_t src_port, uint16_t dst_port,
                     const Message& payload) {
  InternetChecksum c;
  c.AddU32(src.value());
  c.AddU32(dst.value());
  c.AddU16(kIpProtoUdp);
  const uint16_t udp_len = static_cast<uint16_t>(UdpProtocol::kHeaderSize + payload.length());
  c.AddU16(udp_len);
  c.AddU16(src_port);
  c.AddU16(dst_port);
  c.AddU16(udp_len);
  c.AddU16(0);  // checksum field itself
  std::vector<uint8_t> body = payload.Flatten();
  c.Add(body);
  return c.Finalize();
}

}  // namespace

// ---------------------------------------------------------------------------
// UdpProtocol
// ---------------------------------------------------------------------------

UdpProtocol::UdpProtocol(Kernel& kernel, Protocol* ip, std::string name)
    : Protocol(kernel, std::move(name), {ip}), active_(*this), passive_(*this) {
  MarkIdleCapable();
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoUdp;
  (void)lower(0)->OpenEnable(*this, enable);
}

void UdpProtocol::ExportGauges(const CounterEmit& emit) const {
  emit("live_sessions", pool_.live());
}

bool UdpProtocol::EvictSession(Session& s) {
  auto& us = static_cast<UdpSession&>(s);
  // Only the active map may hold the session; an anchor protocol caching its
  // own ref (or a call still walking the stack) vetoes eviction.
  if (us.weak_from_this().use_count() > 1) {
    return false;
  }
  active_.Unbind(Key{us.peer_, us.peer_port_, us.local_port_});
  return true;
}

Result<SessionRef> UdpProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.peer.port.has_value() ||
      !parts.local.port.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.host, *parts.peer.port, *parts.local.port};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.local.ip_proto = kIpProtoUdp;
  lparts.peer.host = *parts.peer.host;
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = pool_.Create(*this, &hlp, *lower_sess, *parts.peer.host, *parts.peer.port,
                           *parts.local.port);
  active_.Bind(key, sess);
  TrackIdle(*sess);
  return SessionRef(sess);
}

Status UdpProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.port.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  Protocol* existing = nullptr;
  if (!passive_.TryBind(*parts.local.port, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(*parts.local.port, &hlp);  // idempotent re-enable recharges
  }
  return OkStatus();
}

Status UdpProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint16_t src_port = r.GetU16();
  const uint16_t dst_port = r.GetU16();
  const uint16_t udp_len = r.GetU16();
  const uint16_t wire_cks = r.GetU16();
  if (udp_len < kHeaderSize || udp_len - kHeaderSize > msg.length()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  msg.Truncate(udp_len - kHeaderSize);

  IpAddr src, dst;
  if (lls != nullptr) {
    ControlArgs args;
    if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
      src = args.ip;
    }
    if (lls->Control(ControlOp::kGetMyHost, args).ok()) {
      dst = args.ip;
    }
  }
  if (checksum_enabled_ && wire_cks != 0) {
    kernel().ChargeChecksum(msg.length() + kHeaderSize);
    if (UdpChecksum(src, dst, src_port, dst_port, msg) != wire_cks) {
      ++checksum_failures_;
      return ErrStatus(StatusCode::kInvalidArgument);
    }
  }

  const Key key{src, src_port, dst_port};
  SessionRef sess = active_.Resolve(key);
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(dst_port);
    if (hlp == nullptr) {
      kernel().Tracef(2, "udp: no binding for port %u", dst_port);
      return ErrStatus(StatusCode::kNotFound);
    }
    if (lls == nullptr) {
      return ErrStatus(StatusCode::kInvalidArgument);
    }
    kernel().ChargeSessionCreate();
    auto created = pool_.Create(*this, hlp, lls->Ref(), src, src_port, dst_port);
    active_.Bind(key, created);
    TrackIdle(*created);
    ParticipantSet parts;
    parts.local.port = dst_port;
    parts.peer.host = src;
    parts.peer.port = src_port;
    Status s = hlp->OpenDoneUp(*this, created, parts);
    if (!s.ok()) {
      active_.Unbind(key);
      return s;
    }
    sess = created;
  }
  return sess->Pop(msg, lls);
}

Status UdpProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxSendSize: {
      // "UDP sends arbitrarily large messages (i.e., it depends on IP to
      // fragment large messages)" -- Section 3.1.
      ControlArgs sub;
      args.u64 = lower(0)->Control(ControlOp::kGetMaxPacket, sub).ok() ? sub.u64 : 65515;
      return OkStatus();
    }
    default:
      return Protocol::DoControl(op, args);
  }
}

// ---------------------------------------------------------------------------
// UdpSession
// ---------------------------------------------------------------------------

UdpSession::UdpSession(UdpProtocol& owner, Protocol* hlp, SessionRef lower, IpAddr peer,
                       uint16_t peer_port, uint16_t local_port)
    : Session(owner, hlp),
      udp_(owner),
      lower_(std::move(lower)),
      peer_(peer),
      peer_port_(peer_port),
      local_port_(local_port) {}

Status UdpSession::DoPush(Message& msg) {
  uint16_t cks = 0;
  if (udp_.checksum_enabled()) {
    IpAddr src = kernel().ip_addr();
    ControlArgs args;
    if (lower_->Control(ControlOp::kGetMyHost, args).ok()) {
      src = args.ip;
    }
    kernel().ChargeChecksum(msg.length() + UdpProtocol::kHeaderSize);
    cks = UdpChecksum(src, peer_, local_port_, peer_port_, msg);
  }
  uint8_t raw[UdpProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU16(local_port_);
  w.PutU16(peer_port_);
  w.PutU16(static_cast<uint16_t>(UdpProtocol::kHeaderSize + msg.length()));
  w.PutU16(cks);
  kernel().ChargeHdrStore(UdpProtocol::kHeaderSize);
  msg.PushHeader(raw);
  return lower_->Push(msg);
}

Status UdpSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status UdpSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMyPort:
      args.u64 = local_port_;
      return OkStatus();
    case ControlOp::kGetPeerPort:
      args.u64 = peer_port_;
      return OkStatus();
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMaxPacket: {
      ControlArgs sub;
      if (lower_->Control(ControlOp::kGetMaxPacket, sub).ok()) {
        args.u64 = sub.u64 - UdpProtocol::kHeaderSize;
        return OkStatus();
      }
      return ErrStatus(StatusCode::kError);
    }
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
