// ICMP: echo request/reply (enough of ICMP for reachability probes and for a
// second, non-RPC client of the IP substrate).

#ifndef XK_SRC_PROTO_ICMP_H_
#define XK_SRC_PROTO_ICMP_H_

#include <functional>
#include <map>

#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

class IcmpProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 8;  // type, code, checksum, id, seq

  // `ip` is the delivery protocol below (IP, or anything IP-semantics like
  // VIP).
  IcmpProtocol(Kernel& kernel, Protocol* ip);

  // Called with the echo round-trip time, or an error after the timeout.
  using PingCallback = std::function<void(Result<SimTime>)>;

  // Sends an echo request with `payload_len` bytes; must run within a task.
  void Ping(IpAddr dest, size_t payload_len, PingCallback done);

  void set_timeout(SimTime t) { timeout_ = t; }

  uint64_t echoes_answered() const { return echoes_answered_; }

 protected:
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  struct Pending {
    SimTime sent_at;
    PingCallback done;
    EventHandle timer;
  };

  uint16_t next_id_ = 1;
  std::map<uint16_t, Pending> pending_;
  SimTime timeout_ = Msec(500);
  uint64_t echoes_answered_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_ICMP_H_
