#include "src/app/workload.h"

namespace xk {

LatencyResult RpcWorkload::MeasureLatency(Internet& net, Kernel& client_kernel,
                                          const CallFn& call, int iters) {
  LatencyResult result;
  SimTime start = 0;
  SimTime done_at = 0;
  int remaining = iters;

  std::function<void()> issue = [&]() {
    call(Message(), [&](Result<Message> r) {
      if (r.ok()) {
        ++result.completed;
      } else {
        ++result.failed;
      }
      if (--remaining > 0) {
        issue();  // still inside the completion task; the clock has advanced
      } else {
        done_at = client_kernel.now();
      }
    });
  };

  client_kernel.ScheduleTask(0, [&]() {
    start = client_kernel.now();
    issue();
  });
  net.RunAll();
  if (iters > 0 && done_at > start) {
    result.per_call = (done_at - start) / iters;
  }
  return result;
}

ThroughputResult RpcWorkload::MeasureThroughput(Internet& net, Kernel& client_kernel,
                                                Kernel& server_kernel, const CallFn& call,
                                                size_t bytes, int iters) {
  ThroughputResult result;
  result.bytes_per_call = bytes;
  SimTime start = 0;
  SimTime done_at = 0;
  int remaining = iters;
  const SimTime client_cpu0 = client_kernel.cpu().total_busy();
  const SimTime server_cpu0 = server_kernel.cpu().total_busy();

  std::function<void()> issue = [&]() {
    call(Message(bytes), [&](Result<Message> r) {
      if (r.ok()) {
        ++result.completed;
      }
      if (--remaining > 0) {
        issue();
      } else {
        done_at = client_kernel.now();
      }
    });
  };

  client_kernel.ScheduleTask(0, [&]() {
    start = client_kernel.now();
    issue();
  });
  net.RunAll();
  result.elapsed = done_at - start;
  if (result.elapsed > 0 && result.completed > 0) {
    const double total_bytes = static_cast<double>(bytes) * result.completed;
    result.kbytes_per_sec = total_bytes / 1024.0 / (ToMsec(result.elapsed) / 1000.0);
    result.client_cpu = (client_kernel.cpu().total_busy() - client_cpu0) / result.completed;
    result.server_cpu = (server_kernel.cpu().total_busy() - server_cpu0) / result.completed;
  }
  return result;
}

}  // namespace xk
