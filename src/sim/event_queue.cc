#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace xk {

EventHandle EventQueue::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  auto dead = std::make_shared<bool>(false);
  heap_.push(Event{at, next_seq_++, std::move(fn), dead});
  ++live_count_;
  return EventHandle(std::move(dead));
}

bool EventQueue::PopNext(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the event is moved out via const_cast,
    // which is safe because we pop immediately and never re-heapify first.
    Event& top = const_cast<Event&>(heap_.top());
    Event ev = std::move(top);
    heap_.pop();
    --live_count_;
    if (*ev.dead) {
      continue;  // cancelled
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

size_t EventQueue::Run(size_t max_events) {
  size_t fired = 0;
  Event ev;
  while (fired < max_events && PopNext(ev)) {
    now_ = ev.at;
    *ev.dead = true;
    ev.fn();
    ++fired;
  }
  return fired;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t fired = 0;
  while (!heap_.empty()) {
    // Peek: skip dead events at the top first so deadline checks see a live one.
    if (*heap_.top().dead) {
      heap_.pop();
      --live_count_;
      continue;
    }
    if (heap_.top().at > deadline) {
      break;
    }
    Event ev;
    if (!PopNext(ev)) {
      break;
    }
    now_ = ev.at;
    *ev.dead = true;
    ev.fn();
    ++fired;
  }
  return fired;
}

void EventQueue::AdvanceTo(SimTime t) {
  assert(t >= now_);
  now_ = t;
}

}  // namespace xk
