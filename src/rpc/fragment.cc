#include "src/rpc/fragment.h"

#include <algorithm>

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr uint8_t kTypeData = 1;
constexpr uint8_t kTypeNack = 2;
constexpr size_t kRecentWindow = 64;

uint16_t FullMask(uint16_t num_frags) {
  return num_frags >= 16 ? 0xFFFF : static_cast<uint16_t>((1u << num_frags) - 1);
}
}  // namespace

// ---------------------------------------------------------------------------
// FragmentProtocol
// ---------------------------------------------------------------------------

FragmentProtocol::FragmentProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), passive_(*this) {
  // Receive FRAGMENT traffic from below.
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoFragment;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SessionRef> FragmentProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.host, *parts.local.rel_proto};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.local.ip_proto = kIpProtoFragment;
  lparts.peer.host = *parts.peer.host;
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<FragmentSession>(*this, &hlp, *parts.peer.host,
                                                *parts.local.rel_proto, *lower_sess);
  active_.Bind(key, sess);
  return SessionRef(sess);
}

Status FragmentProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  Protocol* existing = nullptr;
  if (!passive_.TryBind(*parts.local.rel_proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(*parts.local.rel_proto, &hlp);  // re-enable recharges
  }
  return OkStatus();
}

Status FragmentProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint8_t type = r.GetU8();
  const IpAddr src = r.GetIpAddr();
  const IpAddr dst = r.GetIpAddr();
  const RelProtoNum proto = r.GetU32();
  const uint32_t seq = r.GetU32();
  const uint16_t num_frags = r.GetU16();
  const uint16_t frag_mask = r.GetU16();
  const uint16_t len = r.GetU16();
  if (dst != kernel().ip_addr()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  msg.Truncate(len);

  const Key key{src, proto};
  SessionRef sess = active_.Resolve(key);
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(proto);
    if (hlp == nullptr || lls == nullptr) {
      kernel().Tracef(2, "fragment: no binding for proto %u", proto);
      return ErrStatus(StatusCode::kNotFound);
    }
    kernel().ChargeSessionCreate();
    auto created = std::make_shared<FragmentSession>(*this, hlp, src, proto, lls->Ref());
    active_.Bind(key, created);
    ParticipantSet up;
    up.local.rel_proto = proto;
    up.peer.host = src;
    Status s = hlp->OpenDoneUp(*this, created, up);
    if (!s.ok()) {
      active_.Unbind(key);
      return s;
    }
    sess = created;
  }
  return static_cast<FragmentSession*>(sess.get())
      ->HandlePacket(type, seq, num_frags, frag_mask, msg, lls);
}

Status FragmentProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      args.u64 = kMaxMessage;
      return OkStatus();
    case ControlOp::kGetOptPacket:
      args.u64 = kFragSize;
      return OkStatus();
    case ControlOp::kGetMaxSendSize:
      // What VIP needs to know at open time: the largest packet FRAGMENT will
      // ever hand downward is one fragment plus its header.
      args.u64 = kFragSize + kHeaderSize;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// FragmentSession
// ---------------------------------------------------------------------------

FragmentSession::FragmentSession(FragmentProtocol& owner, Protocol* hlp, IpAddr peer,
                                 RelProtoNum proto, SessionRef lower)
    : Session(owner, hlp), frag_(owner), peer_(peer), proto_(proto), lower_(std::move(lower)) {}

void FragmentSession::SendFragment(uint32_t seq, uint16_t num_frags, uint16_t index,
                                   const Message& payload, uint8_t type) {
  uint8_t raw[FragmentProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU8(type);
  w.PutIpAddr(kernel().ip_addr());
  w.PutIpAddr(peer_);
  w.PutU32(proto_);
  w.PutU32(seq);
  w.PutU16(num_frags);
  w.PutU16(static_cast<uint16_t>(1u << index));
  w.PutU16(static_cast<uint16_t>(payload.length()));
  Message pkt = payload;
  kernel().ChargeHdrStore(FragmentProtocol::kHeaderSize);
  pkt.PushHeader(raw);
  ++frag_.stats_.fragments_sent;
  (void)lower_->Push(pkt);
}

Status FragmentSession::DoPush(Message& msg) {
  if (msg.length() > FragmentProtocol::kMaxMessage) {
    return ErrStatus(StatusCode::kTooBig);
  }
  const uint32_t seq = next_seq_++;
  const uint16_t num_frags = static_cast<uint16_t>(
      std::max<size_t>(1, (msg.length() + FragmentProtocol::kFragSize - 1) /
                              FragmentProtocol::kFragSize));
  ++frag_.stats_.messages_sent;

  kernel().ChargeMapBind();  // enter the send cache
  SendRecord& rec = send_cache_[seq];
  rec.num_frags = num_frags;
  rec.frags.reserve(num_frags);
  for (uint16_t i = 0; i < num_frags; ++i) {
    Message piece;
    if (num_frags == 1) {
      piece = msg;
    } else {
      kernel().ChargeMsgSlice();
      piece = msg.Slice(static_cast<size_t>(i) * FragmentProtocol::kFragSize,
                        FragmentProtocol::kFragSize);
    }
    // The cache shares the payload bytes with the in-flight packets (the
    // footnote in Section 3.2: multiple layers hold references to pieces of
    // the same message).
    rec.frags.push_back(piece);
    SendFragment(seq, num_frags, i, piece, kTypeData);
  }
  // "The sending host associates a timer with each message it sends and
  // discards the message when the timer expires."
  rec.discard_timer = kernel().SetTimer(frag_.send_cache_timeout_, [this, seq]() {
    if (send_cache_.erase(seq) > 0) {
      ++frag_.stats_.cache_expirations;
    }
  });
  return OkStatus();
}

void FragmentSession::SendNack(uint32_t seq, uint16_t missing_mask) {
  uint8_t raw[FragmentProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU8(kTypeNack);
  w.PutIpAddr(kernel().ip_addr());
  w.PutIpAddr(peer_);
  w.PutU32(proto_);
  w.PutU32(seq);
  w.PutU16(0);
  w.PutU16(missing_mask);
  w.PutU16(0);
  Message pkt;
  kernel().ChargeHdrStore(FragmentProtocol::kHeaderSize);
  pkt.PushHeader(raw);
  ++frag_.stats_.nacks_sent;
  (void)lower_->Push(pkt);
}

void FragmentSession::ArmGapTimer(uint32_t seq) {
  auto it = reasm_.find(seq);
  if (it == reasm_.end()) {
    return;
  }
  it->second.gap_timer = kernel().SetTimer(frag_.nack_delay_, [this, seq]() { OnGapTimer(seq); });
}

void FragmentSession::OnGapTimer(uint32_t seq) {
  auto it = reasm_.find(seq);
  if (it == reasm_.end()) {
    return;
  }
  Reasm& r = it->second;
  if (r.nacks >= frag_.max_nacks_) {
    // Give up; the higher level's own timeout will resend the whole message.
    reasm_.erase(it);
    ++frag_.stats_.reassembly_abandoned;
    return;
  }
  ++r.nacks;
  SendNack(seq, static_cast<uint16_t>(FullMask(r.num_frags) & ~r.have_mask));
  ArmGapTimer(seq);
}

void FragmentSession::OnNack(uint32_t seq, uint16_t missing_mask) {
  ++frag_.stats_.nacks_received;
  auto it = send_cache_.find(seq);
  if (it == send_cache_.end()) {
    // Cache already discarded: the higher level must resend (as a new
    // message). Nothing to do here.
    ++frag_.stats_.stale_nacks;
    return;
  }
  SendRecord& rec = it->second;
  for (uint16_t i = 0; i < rec.num_frags; ++i) {
    if (missing_mask & (1u << i)) {
      ++frag_.stats_.fragments_resent;
      SendFragment(seq, rec.num_frags, i, rec.frags[i], kTypeData);
    }
  }
}

Status FragmentSession::CompleteReassembly(uint32_t seq, Reasm& r) {
  Message whole;
  for (uint16_t i = 0; i < r.num_frags; ++i) {
    kernel().ChargeMsgJoin();
    whole.Append(r.frags[i]);
  }
  kernel().CancelTimer(r.gap_timer);
  reasm_.erase(seq);
  recent_done_.push_back(seq);
  if (recent_done_.size() > kRecentWindow) {
    recent_done_.erase(recent_done_.begin());
  }
  ++frag_.stats_.messages_delivered;
  return DeliverUp(whole);
}

Status FragmentSession::HandlePacket(uint8_t type, uint32_t seq, uint16_t num_frags,
                                     uint16_t frag_mask, Message& payload, Session* lls) {
  // Adopt the reverse path for replies/NACKs if we were created before we had
  // a lower session (defensive; passive creation always supplies one).
  if (lower_ == nullptr && lls != nullptr) {
    lower_ = lls->Ref();
  }
  if (type == kTypeNack) {
    OnNack(seq, frag_mask);
    return OkStatus();
  }
  if (type != kTypeData || num_frags == 0 || num_frags > FragmentProtocol::kMaxFrags) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (num_frags == 1) {
    // Fast path: single-fragment message, no reassembly state at all (one
    // duplicate-window probe).
    kernel().ChargeMapResolve();
    ++frag_.stats_.messages_delivered;
    return DeliverUp(payload);
  }
  if (std::find(recent_done_.begin(), recent_done_.end(), seq) != recent_done_.end()) {
    return OkStatus();  // late duplicate of a completed message
  }
  kernel().ChargeMapResolve();
  auto [it, inserted] = reasm_.try_emplace(seq);
  Reasm& r = it->second;
  if (inserted) {
    r.num_frags = num_frags;
    r.frags.resize(num_frags);
    ArmGapTimer(seq);
  } else {
    // New fragment: push the gap timer back.
    kernel().CancelTimer(r.gap_timer);
    ArmGapTimer(seq);
  }
  // Which fragment is this? The sender sets exactly one mask bit.
  int index = -1;
  for (int i = 0; i < 16; ++i) {
    if (frag_mask == (1u << i)) {
      index = i;
      break;
    }
  }
  if (index < 0 || index >= num_frags) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if ((r.have_mask & (1u << index)) == 0) {
    r.have_mask |= static_cast<uint16_t>(1u << index);
    kernel().ChargeMsgJoin();
    r.frags[index] = payload;
  }
  if (r.have_mask == FullMask(r.num_frags)) {
    return CompleteReassembly(seq, r);
  }
  return OkStatus();
}

Status FragmentSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status FragmentSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      args.u64 = FragmentProtocol::kMaxMessage;
      return OkStatus();
    case ControlOp::kGetOptPacket:
      args.u64 = FragmentProtocol::kFragSize;
      return OkStatus();
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
