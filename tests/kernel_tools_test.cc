// Unit tests for the Kernel (tasks, timers, cost accounting), the shepherd
// semaphore, the demux map, and small core value types.

#include <gtest/gtest.h>

#include <map>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/participant.h"
#include "src/tools/semaphore.h"

namespace xk {
namespace {

struct KernelFixture : ::testing::Test {
  EventQueue events;
  Kernel kernel{"host", events, HostEnv::kXKernel, IpAddr(10, 0, 0, 1), EthAddr::FromIndex(1)};
};

TEST_F(KernelFixture, TasksAdvanceTheCpuClock) {
  SimTime seen = -1;
  kernel.RunTask(Usec(100), [&] {
    kernel.Charge(Usec(50));
    seen = kernel.now();
  });
  EXPECT_EQ(seen, Usec(150));
  EXPECT_EQ(kernel.cpu().busy_until(), Usec(150));
  EXPECT_EQ(kernel.cpu().total_busy(), Usec(50));
}

TEST_F(KernelFixture, ScheduledTasksSerializeOnTheCpu) {
  std::vector<SimTime> starts;
  kernel.ScheduleTask(Usec(10), [&] {
    starts.push_back(kernel.now());
    kernel.Charge(Usec(100));
  });
  kernel.ScheduleTask(Usec(20), [&] { starts.push_back(kernel.now()); });
  events.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], Usec(10));
  EXPECT_EQ(starts[1], Usec(110));  // waited for the CPU, not just the clock
}

TEST_F(KernelFixture, TimerFiresAfterDelayAndCharges) {
  bool fired = false;
  kernel.RunTask(0, [&] {
    kernel.Charge(Usec(5));
    kernel.SetTimer(Usec(100), [&] { fired = true; });
  });
  const SimTime timer_set_cost = kernel.costs().timer_set;
  EXPECT_EQ(kernel.cpu().total_busy(), Usec(5) + timer_set_cost);
  events.RunUntil(Usec(104) + timer_set_cost);
  EXPECT_FALSE(fired);
  events.Run();
  EXPECT_TRUE(fired);
}

TEST_F(KernelFixture, CancelledTimerNeverFiresAndChargesCancel) {
  bool fired = false;
  EventHandle h;
  kernel.RunTask(0, [&] { h = kernel.SetTimer(Usec(50), [&] { fired = true; }); });
  const SimTime before = kernel.cpu().total_busy();
  kernel.RunTask(0, [&] { kernel.CancelTimer(h); });
  EXPECT_EQ(kernel.cpu().total_busy() - before, kernel.costs().timer_cancel);
  events.Run();
  EXPECT_FALSE(fired);
  // Cancelling again charges nothing.
  const SimTime before2 = kernel.cpu().total_busy();
  kernel.RunTask(0, [&] { kernel.CancelTimer(h); });
  EXPECT_EQ(kernel.cpu().total_busy(), before2);
}

TEST_F(KernelFixture, BootIdsAreUniqueAndBumpOnRestart) {
  Kernel other("other", events, HostEnv::kXKernel, IpAddr(10, 0, 0, 2), EthAddr::FromIndex(2));
  EXPECT_NE(kernel.boot_id(), other.boot_id());
  const uint32_t before = kernel.boot_id();
  EXPECT_TRUE(kernel.is_up());
  kernel.Crash();
  EXPECT_FALSE(kernel.is_up());
  kernel.Restart();
  EXPECT_TRUE(kernel.is_up());
  EXPECT_EQ(kernel.boot_id(), before + 1);
}

TEST_F(KernelFixture, CrashCancelsPendingTasksAndTimersAndClearsGraph) {
  bool fired = false;
  kernel.ScheduleTask(Usec(10), [&] { fired = true; });
  kernel.RunTask(0, [&] { kernel.SetTimer(Usec(20), [&] { fired = true; }); });
  EXPECT_EQ(kernel.tasks_pending(), 2u);
  kernel.Crash();
  EXPECT_EQ(kernel.tasks_pending(), 0u);
  events.Run();
  EXPECT_FALSE(fired);  // cancelled events never fire after the crash
  int protocols = 0;
  kernel.ForEachProtocol([&](const Protocol&) { ++protocols; });
  EXPECT_EQ(protocols, 0);  // the protocol graph is gone
}

TEST_F(KernelFixture, HeaderChargesFollowAllocPolicy) {
  const CostModel& c = kernel.costs();
  SimTime adjust_cost = 0;
  SimTime alloc_cost = 0;
  kernel.RunTask(0, [&] {
    const SimTime t0 = kernel.cpu().total_busy();
    Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
    kernel.ChargeHdrStore(20);
    adjust_cost = kernel.cpu().total_busy() - t0;
    Message::set_default_alloc_policy(HeaderAllocPolicy::kPerLayerAlloc);
    const SimTime t1 = kernel.cpu().total_busy();
    kernel.ChargeHdrStore(20);
    alloc_cost = kernel.cpu().total_busy() - t1;
    Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
  });
  EXPECT_EQ(alloc_cost - adjust_cost, c.hdr_alloc_extra);
}

TEST_F(KernelFixture, EnvironmentsHaveDistinctCostModels) {
  Kernel sprite("sprite", events, HostEnv::kNativeSprite, IpAddr(10, 0, 0, 3),
                EthAddr::FromIndex(3));
  Kernel sunos("sunos", events, HostEnv::kSunOs, IpAddr(10, 0, 0, 4), EthAddr::FromIndex(4));
  EXPECT_EQ(kernel.costs().layer_cross_extra, 0);
  EXPECT_GT(sprite.costs().layer_cross_extra, 0);
  EXPECT_GT(sunos.costs().layer_cross_extra, sprite.costs().layer_cross_extra);
  EXPECT_GT(sunos.costs().process_switch, kernel.costs().process_switch);
}

// --- XSemaphore -----------------------------------------------------------------

TEST_F(KernelFixture, SemaphorePassesWhenCountAvailable) {
  kernel.RunTask(0, [&] {
    XSemaphore sem(kernel, 2);
    int ran = 0;
    sem.P([&] { ++ran; });
    sem.P([&] { ++ran; });
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sem.count(), 0);
    EXPECT_EQ(sem.waiting(), 0u);
  });
}

TEST_F(KernelFixture, SemaphoreQueuesAndReleasesFifo) {
  kernel.RunTask(0, [&] {
    XSemaphore sem(kernel, 1);
    std::vector<int> order;
    sem.P([&] { order.push_back(0); });
    sem.P([&] { order.push_back(1); });  // blocks
    sem.P([&] { order.push_back(2); });  // blocks
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(sem.waiting(), 2u);
    sem.V();
    sem.V();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    sem.V();  // banks the unit
    EXPECT_EQ(sem.count(), 1);
  });
}

TEST_F(KernelFixture, SemaphoreVChargesSwitchOnlyWhenWaking) {
  kernel.RunTask(0, [&] {
    XSemaphore sem(kernel, 0);
    const SimTime t0 = kernel.cpu().total_busy();
    sem.V();  // no waiter: just the semaphore op
    EXPECT_EQ(kernel.cpu().total_busy() - t0, kernel.costs().sem_op);
    sem.P([] {});  // consumes the banked unit
    sem.P([] {});  // blocks
    const SimTime t1 = kernel.cpu().total_busy();
    sem.V();  // wakes the waiter: semaphore op + process switch
    EXPECT_EQ(kernel.cpu().total_busy() - t1,
              kernel.costs().sem_op + kernel.costs().process_switch);
  });
}

// --- DemuxMap -------------------------------------------------------------------

TEST_F(KernelFixture, DemuxMapChargesResolveAndBind) {
  kernel.RunTask(0, [&] {
    DemuxMap<int, int> map(kernel);
    const SimTime t0 = kernel.cpu().total_busy();
    map.Bind(1, 42);
    EXPECT_EQ(kernel.cpu().total_busy() - t0, kernel.costs().map_bind);
    const SimTime t1 = kernel.cpu().total_busy();
    EXPECT_EQ(map.Resolve(1), 42);
    EXPECT_EQ(kernel.cpu().total_busy() - t1, kernel.costs().map_resolve);
    EXPECT_EQ(map.Resolve(9), 0);  // miss: default value
    // Peek does not charge.
    const SimTime t2 = kernel.cpu().total_busy();
    EXPECT_EQ(map.Peek(1), 42);
    EXPECT_EQ(kernel.cpu().total_busy(), t2);
    // Unbind charges like Bind: removal pays the same probe-and-unlink price.
    const SimTime t3 = kernel.cpu().total_busy();
    map.Unbind(1);
    EXPECT_EQ(kernel.cpu().total_busy() - t3, kernel.costs().map_bind);
    EXPECT_FALSE(map.Contains(1));
  });
}

TEST_F(KernelFixture, DemuxMapTryBindSingleProbe) {
  kernel.RunTask(0, [&] {
    DemuxMap<int, int> map(kernel);
    // Miss: installs and charges one map_bind.
    const SimTime t0 = kernel.cpu().total_busy();
    int existing = 0;
    EXPECT_TRUE(map.TryBind(7, 70, &existing));
    EXPECT_EQ(kernel.cpu().total_busy() - t0, kernel.costs().map_bind);
    // Hit: leaves the incumbent, reports it, and charges nothing (the same
    // total the old Peek-then-bail pattern paid).
    const SimTime t1 = kernel.cpu().total_busy();
    EXPECT_FALSE(map.TryBind(7, 99, &existing));
    EXPECT_EQ(existing, 70);
    EXPECT_EQ(kernel.cpu().total_busy(), t1);
    EXPECT_EQ(map.Peek(7), 70);
  });
}

TEST_F(KernelFixture, DemuxMapTakeRemovesAndReturns) {
  kernel.RunTask(0, [&] {
    DemuxMap<int, int> map(kernel);
    map.Bind(3, 30);
    const SimTime t0 = kernel.cpu().total_busy();
    EXPECT_EQ(map.Take(3), 30);
    // Removal probes and unlinks like installation, so it charges the same.
    EXPECT_EQ(kernel.cpu().total_busy() - t0, kernel.costs().map_bind);
    EXPECT_FALSE(map.Contains(3));
    EXPECT_EQ(map.Take(3), 0);  // miss: default value
  });
}

TEST_F(KernelFixture, DemuxMapSurvivesChurnAndRehash) {
  // Bind/unbind far more keys than the initial capacity, with interleaved
  // removals so probe chains cross tombstones and the table rehashes several
  // times. A shadowing std::map checks every answer.
  kernel.RunTask(0, [&] {
    DemuxMap<uint32_t, int> map(kernel);
    std::map<uint32_t, int> shadow;
    uint32_t rng = 1;
    for (int step = 0; step < 3000; ++step) {
      rng = rng * 1664525u + 1013904223u;
      const uint32_t key = (rng >> 8) % 256;  // dense keys force collisions
      if (step % 3 == 2) {
        map.Unbind(key);
        shadow.erase(key);
      } else {
        map.Bind(key, step);
        shadow[key] = step;
      }
      if (step % 97 == 0) {
        for (uint32_t k = 0; k < 256; ++k) {
          auto it = shadow.find(k);
          EXPECT_EQ(map.Peek(k), it == shadow.end() ? 0 : it->second);
        }
      }
      ASSERT_EQ(map.size(), shadow.size());
    }
  });
}

// --- Participant / Status ---------------------------------------------------------

TEST(ParticipantTest, ToStringShowsOnlySetFields) {
  Participant p;
  p.host = IpAddr(10, 0, 1, 2);
  p.command = 7;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("host=10.0.1.2"), std::string::npos);
  EXPECT_NE(s.find("cmd=7"), std::string::npos);
  EXPECT_EQ(s.find("port="), std::string::npos);
  ParticipantSet set;
  set.peer = p;
  EXPECT_NE(set.ToString().find("peer="), std::string::npos);
}

TEST(StatusTest, NamesAndPredicates) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "TIMEOUT");
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_FALSE(ErrStatus(StatusCode::kError).ok());
  EXPECT_EQ(ErrStatus(StatusCode::kTooBig).code(), StatusCode::kTooBig);
  Result<int> good = 5;
  Result<int> bad = ErrStatus(StatusCode::kNotFound);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xk
