// Slab-allocated object storage with generation-counted handles: the session
// store behind the connection-scale work (ROADMAP: "millions of sessions
// without collapse").
//
// object_pool.h recycles shared_ptr-managed hot-path objects through
// thread-local freelists, but each object still comes from its own heap
// allocation the first time around and the pool keeps no index over the live
// set. SlabPool goes further for per-connection state:
//
//  * objects live in fixed-size chunks (stable addresses, cache-friendly
//    iteration in index order), so a million sessions are ~16k contiguous
//    chunks instead of a million scattered heap nodes;
//  * create/destroy after the high-water mark is allocation-free: destroyed
//    slots park on a LIFO freelist and are re-constructed in place;
//  * every slot carries a generation counter, so a Handle{index, generation}
//    is a safe weak reference: it resolves to null -- never to a recycled
//    stranger -- once the slot it named has been reused;
//  * the shared_ptr control block recycles through the same pooling allocator
//    object_pool.h uses, so the steady state touches the allocator not at all.
//
// Lifetime: the returned shared_ptr's deleter owns a reference to the pool's
// backing state, so an object handed out by a pool keeps its slab alive even
// if the pool (e.g. the owning protocol) is destroyed first -- the same
// "session outlives a crashed protocol graph" tolerance plain make_shared
// gave us.
//
// Determinism: freelist order is LIFO and purely a function of the
// create/destroy sequence, so slot assignment -- and therefore iteration
// order -- is reproducible bit-for-bit at any engine width.

#ifndef XK_SRC_SIM_SLAB_POOL_H_
#define XK_SRC_SIM_SLAB_POOL_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/sim/object_pool.h"

namespace xk {

template <typename T>
class SlabPool {
 public:
  // Generation-counted weak reference. Value-semantic and trivially
  // copyable; a default-constructed Handle is null. Generations start at 1
  // and bump on every destroy, so a stale handle never resolves.
  struct Handle {
    uint32_t index = 0;
    uint32_t gen = 0;  // 0 = null
    explicit operator bool() const { return gen != 0; }
    bool operator==(const Handle& o) const { return index == o.index && gen == o.gen; }
    bool operator!=(const Handle& o) const { return !(*this == o); }
  };

  SlabPool() : state_(std::make_shared<State>()) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Constructs a T in the lowest free slot (allocation-free once the slab has
  // grown past the demand) and returns it shared_ptr-managed; destruction
  // runs ~T in place and recycles the slot.
  template <typename... Args>
  std::shared_ptr<T> Create(Args&&... args) {
    State& st = *state_;
    Slot* slot;
    if (!st.free.empty()) {
      slot = st.SlotAt(st.free.back());
      st.free.pop_back();
    } else {
      slot = st.Grow();
    }
    T* obj = new (static_cast<void*>(slot->storage)) T(std::forward<Args>(args)...);
    slot->live = true;
    ++st.live;
    if (st.live > st.high_water) {
      st.high_water = st.live;
    }
    return std::shared_ptr<T>(obj, Recycler{state_}, pool_internal::CtlAlloc<T>{});
  }

  // The handle naming `obj`'s current residency. `obj` must be pool-owned.
  Handle HandleOf(const T* obj) const {
    const Slot* slot = reinterpret_cast<const Slot*>(obj);
    return Handle{slot->index, slot->gen};
  }

  // Resolves a handle: the object if its slot still holds the generation the
  // handle named, null once the slot was destroyed or recycled.
  T* Get(Handle h) const {
    if (h.gen == 0) {
      return nullptr;
    }
    State& st = *state_;
    if (h.index >= st.chunks.size() * kChunkSlots) {
      return nullptr;
    }
    Slot* slot = st.SlotAt(h.index);
    if (!slot->live || slot->gen != h.gen) {
      return nullptr;
    }
    return std::launder(reinterpret_cast<T*>(slot->storage));
  }

  size_t live() const { return state_->live; }
  size_t high_water() const { return state_->high_water; }
  // Slots allocated (the slab's footprint; never shrinks -- that's the
  // "memory plateaus at the high-water mark" contract).
  size_t capacity() const { return state_->chunks.size() * kChunkSlots; }

  // Visits every live object in slot-index order -- a linear walk over the
  // chunks, not a pointer chase.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const State& st = *state_;
    for (size_t c = 0; c < st.chunks.size(); ++c) {
      Slot* chunk = st.chunks[c].get();
      for (size_t i = 0; i < kChunkSlots; ++i) {
        if (chunk[i].live) {
          fn(*std::launder(reinterpret_cast<T*>(chunk[i].storage)));
        }
      }
    }
  }

 private:
  static constexpr size_t kChunkSlots = 64;

  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];  // first member: Slot* == T*
    uint32_t index = 0;
    uint32_t gen = 1;
    bool live = false;
  };

  struct State {
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<uint32_t> free;  // LIFO; deterministic slot reuse
    size_t live = 0;
    size_t high_water = 0;

    Slot* SlotAt(uint32_t index) {
      return &chunks[index / kChunkSlots][index % kChunkSlots];
    }

    // Adds a chunk; returns its first slot, parking the rest on the freelist
    // so they pop in ascending index order.
    Slot* Grow() {
      const uint32_t base = static_cast<uint32_t>(chunks.size() * kChunkSlots);
      chunks.push_back(std::make_unique<Slot[]>(kChunkSlots));
      Slot* chunk = chunks.back().get();
      for (uint32_t i = 0; i < kChunkSlots; ++i) {
        chunk[i].index = base + i;
      }
      for (uint32_t i = kChunkSlots; i-- > 1;) {
        free.push_back(base + i);
      }
      return &chunk[0];
    }

    void Destroy(T* obj) {
      Slot* slot = reinterpret_cast<Slot*>(obj);
      assert(slot->live);
      obj->~T();
      slot->live = false;
      ++slot->gen;  // invalidates every outstanding Handle to this residency
      free.push_back(slot->index);
      --live;
    }
  };

  struct Recycler {
    std::shared_ptr<State> state;
    void operator()(T* p) const { state->Destroy(p); }
  };

  std::shared_ptr<State> state_;
};

}  // namespace xk

#endif  // XK_SRC_SIM_SLAB_POOL_H_
