// DemuxMap tombstone hygiene: a long-lived map under heavy bind/unbind churn
// at a fixed live size (the per-call CHANNEL binding pattern) must not let
// tombstones degrade probes or balloon the table. The map counts tombstones
// toward its load factor and rehashes in place, so both the table size and
// the worst probe chain stay bounded no matter how many keys pass through.

#include <gtest/gtest.h>

#include <cstdint>

#include "src/core/map.h"
#include "src/sim/event_queue.h"

namespace xk {
namespace {

struct ChurnFixture : ::testing::Test {
  EventQueue events;
  Kernel kernel{"churn", events, HostEnv::kXKernel, IpAddr(10, 0, 1, 1),
                EthAddr::FromIndex(1)};
  DemuxMap<uint64_t, uint64_t> map{kernel};
};

TEST_F(ChurnFixture, FixedSizeChurnKeepsTableAndProbesBounded) {
  // Steady state: 8 live keys, while 40,000 distinct keys come and go.
  constexpr uint64_t kLive = 8;
  for (uint64_t k = 0; k < kLive; ++k) {
    map.Bind(k, k);
  }
  const size_t steady_capacity = map.capacity();
  size_t max_capacity = steady_capacity;
  size_t worst_probe = 0;
  for (uint64_t k = kLive; k < 40000; ++k) {
    map.Bind(k, k);                      // 9th binding...
    EXPECT_EQ(map.Take(k - kLive), k - kLive);  // ...oldest evicted: back to 8
    max_capacity = std::max(max_capacity, map.capacity());
    worst_probe = std::max(worst_probe, map.MaxProbeLength());
    ASSERT_EQ(map.size(), kLive);
  }
  // The table never grew past one doubling of its steady-state size even
  // though 5000x more keys than buckets passed through it...
  EXPECT_LE(max_capacity, 2 * steady_capacity);
  // ...tombstones were reclaimed by in-place rehashes rather than left to
  // poison probe chains...
  EXPECT_LT(map.tombstones(), map.capacity());
  // ...and the worst lookup anyone ever saw stayed within the 70% load
  // ceiling (11 of 16 buckets full-or-tombstone), not a crawl that scales
  // with the 40,000 keys that passed through.
  EXPECT_LE(worst_probe, 11u);

  // The survivors are still all resolvable.
  for (uint64_t k = 40000 - kLive; k < 40000; ++k) {
    EXPECT_EQ(map.Peek(k), k);
  }
}

TEST_F(ChurnFixture, MassUnbindCompactsAndShrinksTheTable) {
  // The idle-eviction drain pattern: a large population is bound once, then
  // unbound en masse with no intervening inserts. The insert-side rehash in
  // MaybeGrow never fires on this path, so the unbind-side amortized
  // compaction must both reclaim tombstones and give the memory back.
  constexpr uint64_t kKeys = 1u << 17;  // 131072 live keys
  for (uint64_t k = 0; k < kKeys; ++k) {
    map.Bind(k, k);
  }
  const size_t peak_capacity = map.capacity();
  ASSERT_GE(peak_capacity, kKeys);  // table actually grew to hold them

  size_t worst_probe_during_drain = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    map.Unbind(k);
    // Tombstones never exceed the compaction threshold's grace window: a
    // quarter of the (current) table triggers an in-place rehash. The floor
    // capacity (16) is exempt -- compaction there would thrash, and 16
    // buckets cannot rot meaningfully.
    if (map.capacity() > 16) {
      ASSERT_LT(map.tombstones() * 4, map.capacity() + 4);
    }
    if ((k & 0xFFF) == 0) {
      worst_probe_during_drain =
          std::max(worst_probe_during_drain, map.MaxProbeLength());
    }
  }

  // Fully drained: the rehash-on-unbind shrank the table back to its floor
  // instead of leaving a 256k-bucket array holding nothing.
  EXPECT_EQ(map.size(), 0u);
  EXPECT_LT(map.capacity(), peak_capacity / 4);
  EXPECT_LE(map.capacity(), 64u);  // within a couple doublings of kMinCapacity
  // Residual tombstones fit inside the (possibly floor-sized) table.
  EXPECT_LE(map.tombstones(), map.capacity());
  // Probes stayed bounded all the way down -- the half-drained table never
  // degenerated into tombstone crawls.
  EXPECT_LE(worst_probe_during_drain, 64u);

  // The shrunken table is still a working map.
  map.Bind(7, 77);
  EXPECT_EQ(map.Peek(7), 77u);
}

TEST_F(ChurnFixture, ProbeLengthReportsActualChainLengths) {
  EXPECT_EQ(map.ProbeLength(7), 0u);  // empty table: no buckets visited
  map.Bind(1, 10);
  EXPECT_GE(map.ProbeLength(1), 1u);
  EXPECT_LE(map.ProbeLength(1), map.MaxProbeLength());
  EXPECT_EQ(map.MaxProbeLength(), 1u);  // one key, landed on its home bucket
  map.Unbind(1);
  EXPECT_EQ(map.MaxProbeLength(), 0u);
  EXPECT_EQ(map.tombstones(), 1u);
}

}  // namespace
}  // namespace xk
