#include "src/trace/pcap.h"

#include <algorithm>
#include <cstdio>

#include "src/trace/json_util.h"

namespace xk {

namespace {
thread_local PacketCapture* g_thread_default = nullptr;

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendHex(std::string& out, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out += kHexDigits[p[i] >> 4];
    out += kHexDigits[p[i] & 0xF];
  }
}

// Ethernet addresses straight off the frame (dst at 0, src at 6), formatted
// aa:bb:cc:dd:ee:ff; "?" when the frame is too short to carry them.
void AppendEthAddr(std::string& out, const std::vector<uint8_t>& bytes, size_t off) {
  if (bytes.size() < off + 6) {
    out += '?';
    return;
  }
  for (size_t i = 0; i < 6; ++i) {
    if (i > 0) {
      out += ':';
    }
    out += kHexDigits[bytes[off + i] >> 4];
    out += kHexDigits[bytes[off + i] & 0xF];
  }
}
}  // namespace

const char* CaptureVerdictName(CaptureVerdict v) {
  switch (v) {
    case CaptureVerdict::kDelivered:
      return "delivered";
    case CaptureVerdict::kDropped:
      return "dropped";
    case CaptureVerdict::kDuplicated:
      return "duplicated";
    case CaptureVerdict::kCorrupted:
      return "corrupted";
  }
  return "?";
}

PacketCapture* PacketCapture::thread_default() { return g_thread_default; }

void PacketCapture::set_thread_default(PacketCapture* capture) { g_thread_default = capture; }

PacketCapture::PacketCapture(size_t capacity, size_t snaplen)
    : capacity_(capacity == 0 ? 1 : capacity), snaplen_(snaplen) {}

void PacketCapture::Record(int segment, int receiver_id, SimTime tx_start, SimTime arrival,
                           const std::vector<uint8_t>& frame, CaptureVerdict verdict) {
  Rec r;
  r.seq = next_seq_++;
  r.segment = segment;
  r.receiver = receiver_id;
  r.tx_start = tx_start;
  r.arrival = arrival;
  r.len = frame.size();
  r.verdict = verdict;
  r.bytes.assign(frame.begin(), frame.begin() + std::min(frame.size(), snaplen_));
  ++verdict_counts_[static_cast<size_t>(verdict)];
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(r));
  } else {
    ring_[head_] = std::move(r);
    head_ = (head_ + 1) % capacity_;
  }
}

std::string PacketCapture::ToJsonl() const {
  std::string out;
  out.reserve(ring_.size() * 160 + 128);
  out += "{\"k\":\"meta\",\"v\":1,\"records\":" + std::to_string(ring_.size()) +
         ",\"captured\":" + std::to_string(next_seq_) +
         ",\"snaplen\":" + std::to_string(snaplen_) + "}\n";
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Rec& r = ring_[(head_ + i) % ring_.size()];
    out += "{\"k\":\"pkt\"";
    JsonAppendField(out, "seq", r.seq);
    JsonAppendField(out, "seg", static_cast<int64_t>(r.segment));
    JsonAppendField(out, "rcv", static_cast<int64_t>(r.receiver));
    JsonAppendField(out, "t_tx", r.tx_start);
    JsonAppendField(out, "t_rx", r.arrival);
    JsonAppendField(out, "len", r.len);
    JsonAppendField(out, "verdict", CaptureVerdictName(r.verdict));
    out += ",\"dst\":\"";
    AppendEthAddr(out, r.bytes, 0);
    out += "\",\"src\":\"";
    AppendEthAddr(out, r.bytes, 6);
    out += "\",\"bytes\":\"";
    AppendHex(out, r.bytes.data(), r.bytes.size());
    out += "\"}\n";
  }
  return out;
}

void PacketCapture::Clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  for (uint64_t& c : verdict_counts_) {
    c = 0;
  }
}

bool PacketCapture::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string s = ToJsonl();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace xk
