#include "src/app/stacks.h"

namespace xk {

namespace {

// Runs `fn` as a configuration task on h's kernel and returns its result.
template <typename Fn>
RpcStack Configure(HostStack& h, Fn fn) {
  RpcStack stack;
  h.kernel->RunTask(h.kernel->events().now(), [&]() { fn(stack); });
  return stack;
}

// The delivery protocol under an RPC stack.
Protocol* MakeDelivery(HostStack& h, Delivery delivery, RpcStack& stack) {
  Kernel& k = *h.kernel;
  switch (delivery) {
    case Delivery::kEth:
      // Open-time shim: host-addressed opens, raw Ethernet sessions, zero
      // per-message cost (how Sprite RPC sat "directly on the ethernet").
      stack.vipaddr = &k.Emplace<VipAddrProtocol>(k, h.eth, nullptr, h.arp, "ethmap");
      return stack.vipaddr;
    case Delivery::kIp:
      return h.ip;
    case Delivery::kVip:
      stack.vip = &k.Emplace<VipProtocol>(k, h.eth, h.ip, h.arp);
      return stack.vip;
  }
  return nullptr;
}

}  // namespace

RpcStack BuildMRpc(HostStack& h, Delivery delivery) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    Protocol* lower = MakeDelivery(h, delivery, stack);
    stack.sprite = &k.Emplace<SpriteRpcProtocol>(k, lower);
    stack.top = stack.sprite;
  });
}

RpcStack BuildLRpc(HostStack& h, Delivery delivery) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    Protocol* lower = MakeDelivery(h, delivery, stack);
    stack.fragment = &k.Emplace<FragmentProtocol>(k, lower);
    stack.channel = &k.Emplace<ChannelProtocol>(k, stack.fragment);
    stack.select = &k.Emplace<SelectProtocol>(k, stack.channel);
    stack.top = stack.select;
  });
}

RpcStack BuildLRpcDynamic(HostStack& h) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    // Figure 3(b): VIP_ADDR picks ETH/IP at open time; FRAGMENT sits on it;
    // VIP_SIZE bypasses FRAGMENT per message.
    stack.vipaddr = &k.Emplace<VipAddrProtocol>(k, h.eth, h.ip, h.arp);
    stack.fragment = &k.Emplace<FragmentProtocol>(k, stack.vipaddr);
    stack.vipsize = &k.Emplace<VipSizeProtocol>(k, stack.vipaddr, stack.fragment, h.arp);
    stack.channel = &k.Emplace<ChannelProtocol>(k, stack.vipsize);
    stack.select = &k.Emplace<SelectProtocol>(k, stack.channel);
    stack.top = stack.select;
  });
}

RpcStack BuildPartial(HostStack& h, int layers) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    stack.vip = &k.Emplace<VipProtocol>(k, h.eth, h.ip, h.arp);
    stack.top = stack.vip;
    if (layers >= 1) {
      stack.fragment = &k.Emplace<FragmentProtocol>(k, stack.vip);
      stack.top = stack.fragment;
    }
    if (layers >= 2) {
      stack.channel = &k.Emplace<ChannelProtocol>(k, stack.fragment);
      stack.top = stack.channel;
    }
    if (layers >= 3) {
      stack.select = &k.Emplace<SelectProtocol>(k, stack.channel);
      stack.top = stack.select;
    }
  });
}

RpcStack BuildLRpcForwarding(HostStack& h) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    stack.vip = &k.Emplace<VipProtocol>(k, h.eth, h.ip, h.arp);
    stack.fragment = &k.Emplace<FragmentProtocol>(k, stack.vip);
    stack.channel = &k.Emplace<ChannelProtocol>(k, stack.fragment);
    stack.select = &k.Emplace<SelectFwdProtocol>(k, stack.channel);
    stack.top = stack.select;
  });
}

RpcStack BuildSunRpc(HostStack& h, SunPairing pairing, SunAuth auth) {
  return Configure(h, [&](RpcStack& stack) {
    Kernel& k = *h.kernel;
    stack.vip = &k.Emplace<VipProtocol>(k, h.eth, h.ip, h.arp);
    stack.fragment = &k.Emplace<FragmentProtocol>(k, stack.vip);
    Protocol* pair = nullptr;
    if (pairing == SunPairing::kRequestReply) {
      stack.reqrep = &k.Emplace<RequestReplyProtocol>(k, stack.fragment);
      pair = stack.reqrep;
    } else {
      stack.channel = &k.Emplace<ChannelProtocol>(k, stack.fragment);
      pair = stack.channel;
    }
    Protocol* below_select = pair;
    switch (auth) {
      case SunAuth::kNone:
        break;
      case SunAuth::kAuthNone:
        stack.auth = &k.Emplace<AuthNoneProtocol>(k, pair);
        below_select = stack.auth;
        break;
      case SunAuth::kAuthCred:
        stack.auth = &k.Emplace<AuthCredProtocol>(k, pair);
        below_select = stack.auth;
        break;
    }
    stack.sunselect = &k.Emplace<SunSelectProtocol>(k, below_select);
    stack.top = stack.sunselect;
  });
}

UdpProtocol* BuildUdp(HostStack& h) {
  UdpProtocol* udp = nullptr;
  h.kernel->RunTask(h.kernel->events().now(),
                    [&]() { udp = &h.kernel->Emplace<UdpProtocol>(*h.kernel, h.ip); });
  return udp;
}

Result<SessionRef> OpenEchoSession(const RpcStack& stack, EchoAnchor& anchor, IpAddr peer) {
  ParticipantSet parts;
  parts.peer.host = peer;
  if (stack.top == stack.vip) {
    parts.local.ip_proto = kIpProtoRawTest;
  } else if (stack.top == stack.fragment) {
    parts.local.rel_proto = kRelProtoRawTest;
  } else if (stack.top == stack.channel) {
    parts.local.channel = 0;
    parts.local.rel_proto = kRelProtoRawTest;
  } else {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  return stack.top->Open(anchor, parts);
}

Status EnableEcho(const RpcStack& stack, EchoAnchor& anchor) {
  ParticipantSet parts;
  if (stack.top == stack.vip) {
    parts.local.ip_proto = kIpProtoRawTest;
  } else if (stack.top == stack.fragment) {
    parts.local.rel_proto = kRelProtoRawTest;
  } else if (stack.top == stack.channel) {
    parts.local.rel_proto = kRelProtoRawTest;
  } else {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  return stack.top->OpenEnable(anchor, parts);
}

}  // namespace xk
