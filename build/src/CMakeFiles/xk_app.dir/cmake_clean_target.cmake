file(REMOVE_RECURSE
  "libxk_app.a"
)
