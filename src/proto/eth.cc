#include "src/proto/eth.h"

#include "src/core/wire.h"
#include "src/sim/object_pool.h"
#include "src/trace/trace.h"

namespace xk {

// ---------------------------------------------------------------------------
// EthProtocol
// ---------------------------------------------------------------------------

EthProtocol::EthProtocol(Kernel& kernel, EthernetSegment& segment, std::optional<EthAddr> addr,
                         std::string name)
    : Protocol(kernel, std::move(name), {}),
      segment_(segment),
      addr_(addr.value_or(kernel.eth_addr())),
      attach_id_(segment.Attach(addr_, this, &kernel)),
      active_(*this),
      passive_(*this) {}

EthProtocol::~EthProtocol() { segment_.Detach(attach_id_); }

Result<SessionRef> EthProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.eth.has_value() || !parts.local.eth_type.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.eth, *parts.local.eth_type};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<EthSession>(*this, &hlp, *parts.peer.eth, *parts.local.eth_type);
  active_.Bind(key, sess);
  return SessionRef(sess);
}

Status EthProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.eth_type.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const EthType type = *parts.local.eth_type;
  Protocol* existing = nullptr;
  if (!passive_.TryBind(type, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(type, &hlp);  // idempotent re-enable recharges, as before
  }
  return OkStatus();
}

Status EthProtocol::OpenDisable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.eth_type.has_value() || passive_.Peek(*parts.local.eth_type) != &hlp) {
    return ErrStatus(StatusCode::kNotFound);
  }
  passive_.Unbind(*parts.local.eth_type);
  return OkStatus();
}

void EthProtocol::Transmit(Message& msg) {
  kernel().ChargeDevStart();
  kernel().ChargeDevCopy(msg.length());
  // A pooled frame keeps its byte buffer across reuse, so flattening into it
  // is a straight copy with no heap traffic in steady state.
  auto frame = AcquirePooled<EthFrame>();
  msg.FlattenInto(frame->bytes);
  // Carry the message's trace identity on the frame (overwriting whatever a
  // pooled frame held last). Zero wire bytes, zero simulated cost -- it lets
  // wire records and the receiving host's spans name the sender's message.
  frame->trace_msg_id = msg.trace_id();
  ++frames_out_;
  segment_.Transmit(attach_id_, std::move(frame), kernel().cpu().now());
}

void EthProtocol::FrameArrived(const EthFrame& frame) {
  // Interrupt: dispatch a shepherd process to carry the message up. The kIntr
  // span wraps the whole shepherd so the interrupt and device-copy charges
  // (which land before Demux) are attributed to the driver, not lost.
  kernel().RunTask(kernel().events().now(), [this, &frame]() {
    TraceSpan span(kernel().trace_sink(), kernel(), TraceOp::kIntr, *this, nullptr, nullptr);
    kernel().ChargeIntr();
    kernel().ChargeDevCopy(frame.bytes.size());
    ++frames_in_;
    Message msg = Message::FromBytes(frame.bytes);
    // The deserialized copy is the same logical message the sender pushed;
    // let its spans read as one id across the wire.
    TraceSink::InheritTraceId(msg, frame.trace_msg_id);
    (void)span.Finish(Demux(nullptr, msg));
  });
}

Status EthProtocol::DoDemux(Session* lls, Message& msg) {
  (void)lls;  // ETH sits directly on the device
  uint8_t hdr[kHeaderSize];
  if (!msg.PopHeader(hdr)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(hdr);
  const EthAddr dst = r.GetEthAddr();
  const EthAddr src = r.GetEthAddr();
  const EthType type = r.GetU16();
  if (dst != addr_ && !dst.IsBroadcast()) {
    // Not for us. The segment delivers point-to-point, so a mismatched
    // destination only happens when the address bytes were corrupted on the
    // wire -- count it as a demux drop rather than silently succeeding.
    kernel().Tracef(2, "eth: destination mismatch, dropping");
    return ErrStatus(StatusCode::kNotFound);
  }
  SessionRef sess = active_.Resolve(Key{src, type});
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(type);
    if (hlp == nullptr) {
      kernel().Tracef(2, "eth: no binding for type 0x%04x, dropping", type);
      return ErrStatus(StatusCode::kNotFound);
    }
    // open_done: passively create the session and notify the enabled
    // protocol so it can attach its own state.
    kernel().ChargeSessionCreate();
    auto created = std::make_shared<EthSession>(*this, hlp, src, type);
    active_.Bind(Key{src, type}, created);
    ParticipantSet parts;
    parts.local.eth = addr_;
    parts.local.eth_type = type;
    parts.peer.eth = src;
    Status s = hlp->OpenDoneUp(*this, created, parts);
    if (!s.ok()) {
      active_.Unbind(Key{src, type});
      return s;
    }
    sess = created;
  }
  return sess->Pop(msg, nullptr);
}

void EthProtocol::ExportCounters(const CounterEmit& emit) const {
  Protocol::ExportCounters(emit);
  emit("frames_out", frames_out_);
  emit("frames_in", frames_in_);
}

Status EthProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
    case ControlOp::kGetOptPacket:
      args.u64 = kMtu;
      return OkStatus();
    case ControlOp::kGetMyHostEth:
      args.eth = addr_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// EthSession
// ---------------------------------------------------------------------------

EthSession::EthSession(EthProtocol& owner, Protocol* hlp, EthAddr peer, EthType type)
    : Session(owner, hlp), eth_(owner), peer_(peer), type_(type) {}

Status EthSession::DoPush(Message& msg) {
  if (msg.length() > EthProtocol::kMtu) {
    return ErrStatus(StatusCode::kTooBig);
  }
  uint8_t hdr[EthProtocol::kHeaderSize];
  WireWriter w(hdr);
  w.PutEthAddr(peer_);
  w.PutEthAddr(eth_.addr());
  w.PutU16(type_);
  kernel().ChargeHdrStore(EthProtocol::kHeaderSize);
  msg.PushHeader(hdr);
  eth_.Transmit(msg);
  return OkStatus();
}

Status EthSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status EthSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
    case ControlOp::kGetOptPacket:
      args.u64 = EthProtocol::kMtu;
      return OkStatus();
    case ControlOp::kGetMyHostEth:
      args.eth = eth_.addr();
      return OkStatus();
    case ControlOp::kGetPeerHostEth:
      args.eth = peer_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
