file(REMOVE_RECURSE
  "CMakeFiles/vip_locality.dir/vip_locality.cpp.o"
  "CMakeFiles/vip_locality.dir/vip_locality.cpp.o.d"
  "vip_locality"
  "vip_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vip_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
