// Structured event tracing for the simulator.
//
// A TraceSink records a span for every layer crossing -- Push, Pop, Demux,
// Open, and the interrupt shepherd that starts a receive chain -- with
// simulated timestamps, the charged-cost delta attributed to that crossing,
// and message/session identity. The sink hangs off the Kernel and is
// consulted from the *non-virtual* Protocol/Session entry points, so every
// protocol in the graph is instrumented from one choke point.
//
// The invariant that makes tracing safe to leave attached: recording charges
// ZERO simulated cost. Spans read the CPU's accumulated-busy counter and the
// simulated clock but never call Charge(), never touch an Rng, and never
// schedule events, so a traced run is bit-identical (in every simulated
// metric) to an untraced one. All bookkeeping costs host time only.
//
// Cost attribution: spans nest like the call stack they shadow. A span's
// inclusive cost is the total_busy() delta between entry and exit; its
// exclusive cost subtracts the inclusive costs of its direct children, so
// summing `excl` over any set of spans never double-counts. Records are
// emitted at span end (post-order), exactly as a profiler would.

#ifndef XK_SRC_TRACE_TRACE_H_
#define XK_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/types.h"

namespace xk {

class Kernel;
class Message;
class Protocol;
class Session;

// The layer crossings the chokepoints record, plus the point events
// (Record::Kind::kEvent) the cluster tier emits so a causal stitcher sees
// decisions -- retries, reroutes, failover -- instead of inferring them
// from gaps between spans.
enum class TraceOp : uint8_t {
  kPush,   // Session::Push (down the stack)
  kPop,    // Session::Pop (up the stack)
  kDemux,  // Protocol::Demux
  kOpen,   // Protocol::Open
  kIntr,   // interrupt shepherd carrying a frame off the wire
  // --- point events (kEvent records) ---
  kIssue,       // workload generator issued a call (t = scheduled arrival)
  kDone,        // call completed at the client (status = outcome)
  kExec,        // server executed the call body
  kRetransmit,  // CHANNEL retransmitted the pending request (detail = retry #)
  kGiveUp,      // CHANNEL exhausted its retry budget
  kPick,        // VPOOL chose replica `detail` for an open
  kReroute,     // VPOOL open toward replica `detail` failed; trying the next
  kReplicaDown,     // VPOOL marked replica `detail` down
  kReplicaReadmit,  // VPOOL readmitted replica `detail`
  kEvict,       // idle sweep reclaimed a session
  kForward,     // IP forwarded a datagram through this router (detail = ttl left)
  kTtlDrop,     // IP discarded a datagram whose ttl expired
  kNoRoute,     // IP discarded a datagram with no matching route
  kCrash,       // host crashed
  kRestart,     // host restarted (detail = new boot id)
  // --- overload control (terminal/point events) ---
  kShed,        // server dropped an already-expired request before execution
  kReject,      // server admission control fast-rejected a request (BUSY)
  kBudgetExhausted,  // client retry budget empty: call given up
  kHedge,        // client issued a hedged second attempt (detail = avoided replica)
  kHedgeCancel,  // primary settled first: pending hedge timer cancelled
};

const char* TraceOpName(TraceOp op);

class TraceSink {
 public:
  // `max_records` bounds host memory; once full, new records are counted in
  // dropped() instead of stored (span nesting is still tracked so exclusive
  // costs of retained records stay correct).
  explicit TraceSink(size_t max_records = 1 << 20);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  struct Record {
    // kAlloc is shard-internal bookkeeping: emitted when a shard assigns a
    // tagged trace id, so the master learns ids in *allocation* order (span
    // records are emitted post-order at span end, which is too late -- a
    // serial run numbers ids at span begin). Never appears in output.
    //
    // kEvent is a zero-duration point annotation (RecordEvent): a cluster-tier
    // decision stamped with the oracle call id, emitted immediately (in
    // program order, unlike post-order spans).
    enum class Kind : uint8_t { kSpan, kWire, kLog, kAlloc, kEvent };
    Kind kind = Kind::kSpan;
    // span + event
    uint32_t host = 0;   // name-table index
    uint32_t proto = 0;  // name-table index
    TraceOp op = TraceOp::kPush;
    StatusCode status = StatusCode::kOk;
    uint32_t depth = 0;
    uint64_t sess = 0;
    uint64_t msg = 0;
    uint64_t call = 0;  // oracle call id (events; 0 = not bound to a call)
    uint64_t len = 0;   // events reuse this as `detail`
    SimTime t0 = 0;
    SimTime t1 = 0;
    SimTime incl = 0;
    SimTime excl = 0;
    // wire
    int segment = 0;
    SimTime arrival = 0;
    uint64_t qdepth = 0;  // segment queue depth at bus acquisition
    SimTime qwait = 0;    // tx_start - ready (time queued behind the bus)
    // log
    int level = 0;
    std::string text;
  };

  // --- span API (used via TraceSpan below) ------------------------------------
  void BeginSpan(Kernel& kernel, TraceOp op, const Protocol& proto, Session* sess,
                 const Message* msg);
  void EndSpan(Kernel& kernel, Status status);

  // --- wire + log records -----------------------------------------------------
  // One frame transmission on segment `segment`: serialization starts at
  // `tx_start`, ends at `tx_end`, and the frame reaches receivers at
  // `arrival` (tx_end + propagation). `queue_depth` is the number of frames
  // queued behind the bus at acquisition; `queue_wait` is how long this frame
  // waited for the bus (tx_start - ready).
  // `msg_id` is the trace identity of the message the frame carries (the
  // EthFrame remembers it host-side; no wire bytes change), so an observer can
  // tie a bus transmission back to the push/pop spans of the same message.
  void RecordWire(int segment, SimTime tx_start, SimTime tx_end, SimTime arrival,
                  size_t bytes, uint64_t queue_depth = 0, SimTime queue_wait = 0,
                  uint64_t msg_id = 0);

  // A structured log line (the Kernel routes Tracef here when attached).
  void RecordLog(const Kernel& kernel, int level, std::string_view text);

  // A point event: a cluster-tier decision (issue/done/exec, retransmit,
  // reroute, failover, eviction, forward) bound to the oracle call id that
  // caused it. `t` is explicit so generators can stamp the scheduled arrival
  // rather than "now". Zero simulated cost, like every other record.
  void RecordEvent(Kernel& kernel, TraceOp op, std::string_view proto_name, SimTime t,
                   uint64_t call, const Message* msg, Session* sess, uint64_t detail,
                   StatusCode status = StatusCode::kOk);

  // Copies a previously assigned trace id onto a freshly deserialized
  // message (the receive path's Message::FromBytes), so one logical message
  // reads as one id across the wire. Charges nothing; pure bookkeeping.
  static void InheritTraceId(const Message& msg, uint64_t id);

  // --- output -----------------------------------------------------------------
  // JSON-lines: one `{"k":"meta",...}` header line, then one line per record
  // in emission order. Deterministic for a deterministic simulation.
  std::string ToJsonl() const;
  bool WriteFile(const std::string& path) const;

  // Drops buffered records (open spans keep nesting). Id counters are NOT
  // reset, so sessions tagged before the clear stay unique.
  void Clear();

  size_t num_records() const { return records_.size(); }
  size_t dropped() const { return dropped_; }

  // --- thread default ---------------------------------------------------------
  // An Internet constructed on this thread attaches the thread-default sink
  // to all its kernels and segments. Lets the bench harness trace helpers
  // that build their own topologies, without plumbing a sink through every
  // signature. Mirrors Message::default_alloc_policy().
  static TraceSink* thread_default();
  static void set_thread_default(TraceSink* sink);

  // --- parallel-engine merge (src/sim/parallel.cc) ----------------------------
  // During a parallel run each logical process records into its own shard
  // sink; at every epoch barrier the engine replays the shard records into
  // the master sink in canonical (serial) order, so the merged stream is
  // byte-identical to a serial run's. Session/message trace ids are stored on
  // the traced objects, so a shard tags the ids it assigns (high bit + a
  // master-allocated shard serial); the master translates tagged ids -- in
  // absorbed records and in its own later records -- onto its own id space in
  // first-encounter order, exactly as a serial run would have assigned them.
  static constexpr uint64_t kIdTagBit = uint64_t{1} << 63;

  // Master side: a unique tag for one shard sink (bits 62..40).
  uint64_t AllocateIdTag() { return kIdTagBit | (next_shard_serial_++ << 40); }
  // Shard side: all ids this sink assigns carry `tag` (0 = master, untagged).
  void set_id_tag(uint64_t tag) { id_tag_ = tag; }

  // Moves out the buffered records; the name table, id counters, and open
  // span nesting stay. Shard-side, called between events of an epoch.
  std::vector<Record> DrainRecords();

  // Master-kept translation of one shard's name-table indices.
  struct ShardNameMap {
    std::vector<uint32_t> to_master;
  };

  // Appends one of `shard`'s drained records to this (master) sink,
  // translating name indices and tagged ids.
  void AbsorbRecord(const TraceSink& shard, ShardNameMap& names, Record rec);

 private:
  friend class TraceSpan;

  // A span in flight: the partially-filled record plus what is needed to
  // compute costs at exit.
  struct Frame {
    Record rec;
    SimTime busy0 = 0;       // cpu().total_busy() at entry
    SimTime child_incl = 0;  // sum of direct children's inclusive costs
  };

  uint32_t InternName(const std::string& name);
  uint64_t SessionTraceId(Session* sess);
  uint64_t MessageTraceId(const Message* msg);
  // Master-side: maps a shard-tagged id onto this sink's id space
  // (first-encounter order); untagged ids pass through.
  uint64_t TranslateId(uint64_t id, std::unordered_map<uint64_t, uint64_t>& map,
                       uint64_t& next_id);
  void Append(Record rec);

  size_t max_records_;
  std::vector<Record> records_;
  std::vector<Frame> stack_;
  size_t dropped_ = 0;

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_index_;
  uint64_t next_sess_id_ = 1;
  uint64_t next_msg_id_ = 1;
  uint64_t id_tag_ = 0;
  uint64_t next_shard_serial_ = 1;
  std::unordered_map<uint64_t, uint64_t> tagged_sess_;
  std::unordered_map<uint64_t, uint64_t> tagged_msg_;
};

// RAII span guard for the chokepoints. A null sink makes it a no-op, so the
// entry points construct one unconditionally.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, Kernel& kernel, TraceOp op, const Protocol& proto,
            Session* sess, const Message* msg)
      : sink_(sink), kernel_(kernel) {
    if (sink_ != nullptr) {
      sink_->BeginSpan(kernel_, op, proto, sess, msg);
    }
  }

  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->EndSpan(kernel_, status_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Records the operation's outcome and passes it through, so the call sites
  // read `return span.Finish(DoPush(msg));`.
  Status Finish(Status s) {
    status_ = s;
    return s;
  }

 private:
  TraceSink* sink_;
  Kernel& kernel_;
  // A span destroyed without Finish() (exception/early return) reads as an
  // error rather than a silent success.
  Status status_ = ErrStatus(StatusCode::kError);
};

}  // namespace xk

#endif  // XK_SRC_TRACE_TRACE_H_
