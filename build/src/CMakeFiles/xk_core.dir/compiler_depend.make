# Empty compiler generated dependencies file for xk_core.
# This may be replaced when dependencies are built.
