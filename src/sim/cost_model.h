// Calibrated cost model for a Sun 3/75 running protocols in three
// environments.
//
// Every protocol in this repository is functionally real (it builds real
// headers and runs its real algorithm over the simulated wire); what the
// simulator prices is the CPU cost of each primitive operation. The values
// below are calibrated so that the paper's headline numbers emerge from the
// *composition* of primitives -- e.g., Table III's 0.11 ms/layer floor is not
// a constant anywhere; it is what SELECT's four layer traversals of header
// stores/loads and map lookups add up to.
//
// Three environments reproduce the paper's cross-system comparisons:
//  - kXKernel:      the x-kernel on SunOS 4.0 cc (all Section 4 numbers).
//  - kNativeSprite: the Sprite kernel's native RPC (Table I, N_RPC row) --
//                   same protocol, heavier per-layer costs (buffer allocation
//                   per header, heavier process switches).
//  - kSunOs:        SunOS 4.0 sockets (the 5.36 ms UDP number in Section 1) --
//                   mbuf allocation per layer, socket-layer process switches,
//                   expensive user/kernel crossings.

#ifndef XK_SRC_SIM_COST_MODEL_H_
#define XK_SRC_SIM_COST_MODEL_H_

#include "src/core/types.h"

namespace xk {

// Which machine/OS environment a kernel instance models.
enum class HostEnv : uint8_t {
  kXKernel,
  kNativeSprite,
  kSunOs,
};

// Primitive operation costs, in simulated time. See file comment.
struct CostModel {
  // --- layer crossing -------------------------------------------------------
  SimTime proc_call = Usec(3);          // one procedure call between layers
  SimTime layer_cross_extra = Usec(0);  // extra per crossing (non-x-kernel envs)

  // --- header manipulation --------------------------------------------------
  SimTime hdr_store_fixed = Usec(7);
  SimTime hdr_store_per_byte = UsecF(0.35);
  SimTime hdr_load_fixed = Usec(6);
  SimTime hdr_load_per_byte = UsecF(0.30);
  // Additional cost when HeaderAllocPolicy::kPerLayerAlloc is in force
  // (allocate a buffer per header / free it per pop).
  SimTime hdr_alloc_extra = Usec(130);
  SimTime hdr_free_extra = Usec(65);
  // mbuf-style buffer allocation charged per layer in non-x-kernel envs.
  SimTime buffer_alloc = Usec(0);

  // --- demultiplexing maps ---------------------------------------------------
  SimTime map_resolve = Usec(10);
  SimTime map_bind = Usec(14);

  // --- processes and synchronization ----------------------------------------
  SimTime sem_op = Usec(8);
  SimTime process_switch = Usec(165);
  SimTime user_kernel_cross = Usec(120);  // one boundary crossing (user tests)

  // --- timers ----------------------------------------------------------------
  SimTime timer_set = Usec(12);
  SimTime timer_cancel = Usec(8);

  // --- message tool ----------------------------------------------------------
  SimTime msg_slice = Usec(14);       // create a fragment view
  SimTime msg_join = Usec(12);        // append during reassembly
  SimTime copy_per_byte = UsecF(0.55);  // memory copy bandwidth (~1.8 MB/s)

  // --- device / interrupt ----------------------------------------------------
  SimTime dev_start = Usec(153);          // program the LANCE, start DMA
  SimTime intr_overhead = Usec(178);      // take interrupt, dispatch shepherd
  SimTime dev_copy_per_byte = UsecF(0.66);  // frame bytes to/from board memory

  // --- checksums -------------------------------------------------------------
  SimTime checksum_fixed = Usec(30);
  SimTime checksum_per_byte = UsecF(0.70);

  // --- session management ----------------------------------------------------
  SimTime session_create = Usec(150);
  SimTime session_destroy = Usec(80);

  // Preset for each environment.
  static CostModel For(HostEnv env);
  static CostModel XKernel();
  static CostModel NativeSprite();
  static CostModel SunOs();
};

// Shared-bus Ethernet parameters (isolated 10 Mbps segment, as in Section 4).
struct WireModel {
  double bits_per_usec = 10.0;          // 10 Mbps
  SimTime per_frame_overhead = Usec(16);  // preamble + interframe gap
  SimTime propagation = Usec(3);
  size_t min_frame_bytes = 64;
  size_t max_frame_bytes = 1514;  // 1500-byte MTU + 14-byte header

  SimTime TransmitTime(size_t bytes) const {
    if (bytes < min_frame_bytes) {
      bytes = min_frame_bytes;
    }
    return per_frame_overhead +
           static_cast<SimTime>(static_cast<double>(bytes) * 8.0 / bits_per_usec * 1000.0);
  }
};

}  // namespace xk

#endif  // XK_SRC_SIM_COST_MODEL_H_
