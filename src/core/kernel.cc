#include "src/core/kernel.h"

#include <cstdio>

#include "src/trace/trace.h"

namespace xk {

Kernel::Kernel(std::string host_name, EventQueue& events, HostEnv env, IpAddr ip, EthAddr eth)
    : host_name_(std::move(host_name)),
      events_(events),
      env_(env),
      costs_(CostModel::For(env)),
      ip_(ip),
      eth_(eth),
      // Per-queue, not process-global: a simulation's boot ids (which appear
      // in wire bytes) depend only on its own kernel allocation order, so the
      // same configuration always produces the same frames regardless of what
      // other simulations run in the process or in sibling threads.
      boot_id_(events.AllocateBootId()) {}

Kernel::~Kernel() {
  // Tear the graph down top-first so high-level protocols can still reach the
  // substrates they hold capabilities for.
  while (!protocols_.empty()) {
    protocols_.pop_back();
  }
}

void Kernel::TrackPending(EventHandle handle) {
  // Host bookkeeping only (never charged): keep the registry from growing
  // without bound by squeezing out fired/cancelled handles once they dominate.
  if (pending_handles_.size() >= 64 && pending_handles_.size() >= 2 * tasks_pending_) {
    size_t kept = 0;
    for (EventHandle& h : pending_handles_) {
      if (h.pending()) {
        pending_handles_[kept++] = h;
      }
    }
    pending_handles_.resize(kept);
  }
  pending_handles_.push_back(handle);
}

void Kernel::Crash() {
  if (trace_ != nullptr) {
    trace_->RecordEvent(*this, TraceOp::kCrash, "kernel", now(), 0, nullptr, nullptr,
                        boot_id_, StatusCode::kUnreachable);
  }
  // Order matters: pending task/timer closures capture raw pointers into the
  // protocol graph, so they must die before the graph does.
  for (EventHandle& h : pending_handles_) {
    h.Cancel();
  }
  pending_handles_.clear();
  tasks_pending_ = 0;
  while (!protocols_.empty()) {
    protocols_.pop_back();
  }
  by_name_.clear();
  up_ = false;
}

void Kernel::Restart() {
  // A plain increment rather than EventQueue::AllocateBootId(): under the
  // parallel engine each host has its own queue, so a shared allocator would
  // hand out different ids than the serial engine's single queue does.
  ++boot_id_;
  up_ = true;
  if (trace_ != nullptr) {
    trace_->RecordEvent(*this, TraceOp::kRestart, "kernel", now(), 0, nullptr, nullptr,
                        boot_id_);
  }
}

void Kernel::CancelTimer(EventHandle& handle) {
  if (handle.Cancel()) {
    cpu_.Charge(costs_.timer_cancel);
    if (tasks_pending_ > 0) {
      --tasks_pending_;
    }
  }
}

Protocol& Kernel::Add(std::unique_ptr<Protocol> proto) {
  Protocol& ref = *proto;
  by_name_[ref.name()] = &ref;
  protocols_.push_back(std::move(proto));
  return ref;
}

Protocol* Kernel::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void Kernel::Tracef(int level, const char* fmt, ...) {
  const bool to_stderr = level <= trace_level_;
  if (trace_ == nullptr && !to_stderr) {
    return;
  }
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (trace_ != nullptr) {
    trace_->RecordLog(*this, level, buf);
  }
  if (to_stderr) {
    std::fprintf(stderr, "[%10.3f ms] %-8s %s\n", ToMsec(events_.now()), host_name_.c_str(), buf);
  }
}

}  // namespace xk
