#include "src/core/types.h"

#include <cstdio>

namespace xk {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kError:
      return "ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnreachable:
      return "UNREACHABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kTooBig:
      return "TOO_BIG";
    case StatusCode::kRejected:
      return "REJECTED";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kBusy:
      return "BUSY";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string IpAddr::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xFF, (addr_ >> 16) & 0xFF,
                (addr_ >> 8) & 0xFF, addr_ & 0xFF);
  return buf;
}

std::string EthAddr::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace xk
