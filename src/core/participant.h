// Participants and participant sets (paper, Section 2).
//
// "Participants identify themselves and their peers with host addresses,
// port numbers, protocol numbers, and so on. By convention, the first element
// of that set identifies the local participant."
//
// We model a participant as a small struct of optional address components;
// each protocol reads the components it understands (ETH reads eth/eth_type,
// IP reads host/proto_num, CHANNEL reads channel, ...). A ParticipantSet for
// open/open_done carries both ends; for open_enable only the local side need
// be filled in.

#ifndef XK_SRC_CORE_PARTICIPANT_H_
#define XK_SRC_CORE_PARTICIPANT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/core/types.h"

namespace xk {

struct Participant {
  std::optional<IpAddr> host;         // IP-level host address
  std::optional<EthAddr> eth;         // Ethernet station address
  std::optional<EthType> eth_type;    // Ethernet type (ETH-level demux key)
  std::optional<IpProtoNum> ip_proto; // 8-bit IP protocol number
  std::optional<RelProtoNum> rel_proto;  // 32-bit protocol number (FRAGMENT/CHANNEL hdrs)
  std::optional<uint16_t> port;       // UDP port
  std::optional<uint16_t> channel;    // RPC channel number
  std::optional<uint16_t> command;    // RPC procedure id (SELECT-level address)

  std::string ToString() const;
};

struct ParticipantSet {
  Participant local;
  Participant peer;

  std::string ToString() const;
};

}  // namespace xk

#endif  // XK_SRC_CORE_PARTICIPANT_H_
