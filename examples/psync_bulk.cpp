// Psync over FRAGMENT: the reuse the paper designed FRAGMENT for.
//
// "When designing the FRAGMENT protocol ... we chose to make it unreliable --
// i.e., not send positive acknowledgements -- so that it could also be used
// by Psync." Here three hosts hold a conversation; one message is 16 KB and
// rides the same FRAGMENT protocol the RPC stack uses, while the context
// graph records what-followed-what.

#include <cstdio>
#include <string>

#include "src/proto/topology.h"
#include "src/proto/vip.h"
#include "src/psync/psync.h"
#include "src/rpc/fragment.h"

using namespace xk;

namespace {
constexpr const char* kNames[3] = {"alice", "bob", "carol"};

Message FromString(const std::string& s) {
  return Message::FromBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
}
}  // namespace

int main() {
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  HostStack* hosts[3];
  for (int i = 0; i < 3; ++i) {
    hosts[i] = &net->AddHost(kNames[i], seg, IpAddr(10, 0, 1, static_cast<uint8_t>(i + 1)));
  }
  net->WarmArp();

  PsyncProtocol* psync[3];
  PsyncConversation* conv[3];
  FragmentProtocol* frag[3];
  for (int i = 0; i < 3; ++i) {
    HostStack* h = hosts[i];
    h->kernel->RunTask(0, [&, i] {
      auto& vip = h->kernel->Emplace<VipProtocol>(*h->kernel, h->eth, h->ip, h->arp);
      frag[i] = &h->kernel->Emplace<FragmentProtocol>(*h->kernel, &vip);
      psync[i] = &h->kernel->Emplace<PsyncProtocol>(*h->kernel, frag[i]);
      std::vector<IpAddr> others;
      for (int j = 0; j < 3; ++j) {
        if (j != i) {
          others.push_back(IpAddr(10, 0, 1, static_cast<uint8_t>(j + 1)));
        }
      }
      conv[i] = *psync[i]->Join(1, others);
      conv[i]->set_receive_handler([i](const PsyncDelivery& d) {
        std::printf("%-6s got msg %08x from %s (%zu bytes, follows %zu message(s))\n",
                    kNames[i], d.id, d.sender.ToString().c_str(), d.payload.length(),
                    d.context.size());
      });
    });
  }

  PsyncMsgId m1 = 0, m2 = 0, m3 = 0;
  hosts[0]->kernel->ScheduleTask(0, [&] {
    m1 = *conv[0]->Send(FromString("does anyone have the trace file?"));
  });
  net->RunAll();
  hosts[1]->kernel->ScheduleTask(0, [&] {
    m2 = *conv[1]->Send(Message(16000));  // bob ships 16 KB: 16 FRAGMENT packets
  });
  net->RunAll();
  hosts[2]->kernel->ScheduleTask(0, [&] {
    m3 = *conv[2]->Send(FromString("got it, thanks bob"));
  });
  net->RunAll();

  std::printf("\ncontext graph (carol's view): m1 -> m2: %s, m2 -> m3: %s, m3 -> m1: %s\n",
              conv[2]->Precedes(m1, m2) ? "yes" : "no",
              conv[2]->Precedes(m2, m3) ? "yes" : "no",
              conv[2]->Precedes(m3, m1) ? "yes" : "no");
  std::printf("bob's FRAGMENT layer sent %lu packets for the 16 KB message x 2 peers\n",
              static_cast<unsigned long>(frag[1]->stats().fragments_sent));
  return 0;
}
