// xkbench-diff: the bench regression gate.
//
//   xkbench_diff BASELINE.json CURRENT.json [options]
//
//   --default-threshold=PCT   relative tolerance for unmatched metrics (2)
//   --threshold=REGEX=PCT     override for paths matching REGEX (first match
//                             wins; may repeat)
//   --allow-missing           tolerate metrics present only in the baseline
//   --quiet                   no output, exit status only
//
// Exit status: 0 = within thresholds, 1 = regression (or missing metric),
// 2 = usage/parse error. Host-dependent fields (wall_ms, threads, ...) are
// never compared -- see SkippedKey in bench_diff.h.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/tools/bench_diff.h"

namespace {

bool ReadFile(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

const char* DirName(xk::benchdiff::Direction d) {
  switch (d) {
    case xk::benchdiff::Direction::kLowerBetter:
      return "lower-better";
    case xk::benchdiff::Direction::kHigherBetter:
      return "higher-better";
    case xk::benchdiff::Direction::kTwoSided:
      return "two-sided";
  }
  return "?";
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--default-threshold=PCT]\n"
               "          [--threshold=REGEX=PCT]... [--allow-missing] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xk::benchdiff::Options opt;
  const char* base_path = nullptr;
  const char* cur_path = nullptr;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--default-threshold=", 20) == 0) {
      opt.default_threshold = std::atof(a + 20) / 100.0;
    } else if (std::strncmp(a, "--threshold=", 12) == 0) {
      const char* spec = a + 12;
      const char* eq = std::strrchr(spec, '=');
      if (eq == nullptr || eq == spec) {
        return Usage(argv[0]);
      }
      opt.thresholds.emplace_back(std::string(spec, eq), std::atof(eq + 1) / 100.0);
    } else if (std::strcmp(a, "--allow-missing") == 0) {
      opt.allow_missing = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (a[0] == '-') {
      return Usage(argv[0]);
    } else if (base_path == nullptr) {
      base_path = a;
    } else if (cur_path == nullptr) {
      cur_path = a;
    } else {
      return Usage(argv[0]);
    }
  }
  if (base_path == nullptr || cur_path == nullptr) {
    return Usage(argv[0]);
  }

  std::string base_json, cur_json;
  if (!ReadFile(base_path, base_json)) {
    std::fprintf(stderr, "xkbench-diff: cannot read %s\n", base_path);
    return 2;
  }
  if (!ReadFile(cur_path, cur_json)) {
    std::fprintf(stderr, "xkbench-diff: cannot read %s\n", cur_path);
    return 2;
  }

  const xk::benchdiff::Report report = xk::benchdiff::Compare(base_json, cur_json, opt);
  if (!report.error.empty()) {
    std::fprintf(stderr, "xkbench-diff: %s\n", report.error.c_str());
    return 2;
  }
  if (!quiet) {
    for (const xk::benchdiff::Finding& f : report.regressions) {
      if (f.missing) {
        std::fprintf(stderr, "REGRESSION %s: present in baseline (%.10g), missing now\n",
                     f.path.c_str(), f.base);
      } else {
        std::fprintf(stderr,
                     "REGRESSION %s: baseline %.10g -> current %.10g "
                     "(%.2f%% > %.2f%%, %s)\n",
                     f.path.c_str(), f.base, f.current, f.rel_err * 100.0,
                     f.threshold * 100.0, DirName(f.direction));
      }
    }
    std::printf("xkbench-diff: %zu metrics compared, %zu regression(s)\n", report.compared,
                report.regressions.size());
  }
  return report.regressions.empty() ? 0 : 1;
}
