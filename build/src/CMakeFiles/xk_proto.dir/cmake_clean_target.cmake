file(REMOVE_RECURSE
  "libxk_proto.a"
)
