// CHANNEL: request/reply transactions with at-most-once semantics (paper,
// Section 3.2).
//
// Each channel is a separate x-kernel session running the Sprite algorithm:
// a high-level protocol pushes a request into the channel and the reply is
// returned (delivered up when it arrives, with the blocked shepherd's
// semaphore and process-switch costs charged at the paper's attribution
// points -- CHANNEL is the most expensive layer because "of the cost of
// synchronization and process switching that is intrinsic to the
// request/reply paradigm").
//
//  * IMPLICIT ACKNOWLEDGEMENT: a reply acknowledges its request; the next
//    request on a channel acknowledges the previous reply (whose saved copy
//    the server then discards).
//  * AT-MOST-ONCE: duplicate requests are answered from the saved reply (if
//    done) or elicit an explicit ACK (if still executing); they are never
//    re-executed.
//  * STEP-FUNCTION TIMEOUT: because FRAGMENT exists as a separate protocol
//    below, CHANNEL's retransmit timer grows with the number of fragments the
//    message will become, so it never fires while FRAGMENT is mid-transfer.
//  * BOOT IDs detect peer reboots; a rebooted client resets the channel, a
//    rebooted server fails the pending call.
//
// Header (paper appendix, CHANNEL_HDR):
//   flags(2) channel(2) protocol_num(4) sequence_num(4) error(2) boot_id(4)
//   -- 18 bytes. Note the deliberate duplication the paper discusses: both
//   FRAGMENT and CHANNEL carry their own sequence number and protocol number.
//
// Sessions are slab-pooled and idle-tracked. A channel with a call in flight
// (client pending_ or server in_progress_) refuses eviction; one that only
// holds a saved reply may be evicted, which narrows the duplicate-suppression
// window -- configure the idle timeout well above the peers' full
// retransmission budget (retry_limit x timeout) so an evicted channel cannot
// see a late retransmit as a fresh request.

#ifndef XK_SRC_RPC_CHANNEL_H_
#define XK_SRC_RPC_CHANNEL_H_

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/sim/rng.h"
#include "src/sim/slab_pool.h"

namespace xk {

class ChannelProtocol;

class ChannelSession final : public Session {
 public:
  ChannelSession(ChannelProtocol& owner, Protocol* hlp, IpAddr peer, uint16_t channel,
                 RelProtoNum proto, SessionRef lower);

  Status HandlePacket(uint16_t flags, uint32_t seq, uint16_t error, uint32_t boot_id,
                      Message& payload, Session* lls);

  uint16_t channel_id() const { return channel_; }
  bool call_pending() const { return pending_.has_value(); }

 protected:
  // Push semantics depend on direction: with no request executing locally
  // this is a CLIENT CALL (send request, await reply); while a request from
  // the peer is executing, it is the SERVER'S REPLY to that request.
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

  // An outstanding call -- in either direction -- pins the channel. A saved
  // (not yet implicitly acknowledged) reply pins it too until the peer's
  // whole retransmission budget has lapsed since the last packet: evicting
  // sooner would let a late retransmit of the answered request hit a fresh
  // channel and re-execute -- an at-most-once violation.
  bool CanEvict() const override;

 private:
  friend class ChannelProtocol;  // eviction needs the demux key

  struct PendingCall {
    Message request;  // saved for retransmission
    uint32_t seq = 0;
    int retries = 0;
    bool acked = false;          // server sent an explicit "I'm working on it"
    bool retransmitted = false;  // Karn's rule: never sample a retransmitted call
    SimTime sent_at = 0;
    SimTime deadline = 0;  // absolute; 0 = none. Bounds retransmission.
    EventHandle timer;
  };

  void Send(uint16_t flags, uint32_t seq, uint16_t error, const Message& payload);
  SimTime TimeoutFor(const Message& msg) const;
  SimTime AdaptiveRto() const;
  void ArmTimer();
  void OnTimeout();
  // Fails the pending call with `code`, tracing the giveup and delivering
  // SessionCallError (with the request, so multiplexed callers can identify
  // the victim) to the high-level protocol.
  void FailPending(StatusCode code);
  Status HandleRequest(uint32_t seq, uint32_t boot_id, Message& payload, Session* lls);
  Status HandleReply(uint16_t flags, uint32_t seq, uint16_t error, Message& payload);

  ChannelProtocol& chan_;
  IpAddr peer_;
  uint16_t channel_;
  RelProtoNum proto_;
  SessionRef lower_;

  // --- client half ------------------------------------------------------------
  uint32_t send_seq_ = 0;
  std::optional<PendingCall> pending_;
  uint32_t peer_boot_id_ = 0;

  // Adaptive-RTO state (maintained always, consulted only when the protocol's
  // adaptive_timeout_ is on). The jitter stream is seeded from the channel
  // identity so runs are deterministic and engine-invariant.
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  bool have_rtt_ = false;
  Rng jitter_;

  // --- server half ------------------------------------------------------------
  uint32_t recv_seq_ = 0;
  bool in_progress_ = false;
  // Seqs of requests currently executing above, oldest first. A client that
  // gives up on a call (deadline) releases its channel and may reuse it for a
  // new request while the old one is still executing here; replies complete
  // in start order (one deterministic kernel, uniform service delay), so a
  // popped front older than recv_seq_ identifies the abandoned execution's
  // reply, which must be dropped rather than sent as the current request's
  // answer.
  std::vector<uint32_t> exec_seqs_;
  std::optional<Message> saved_reply_;
  uint32_t client_boot_id_ = 0;
};

class ChannelProtocol final : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 18;

  // `lower` is FRAGMENT, VIP_SIZE, VIP, or IP -- anything host-addressed.
  ChannelProtocol(Kernel& kernel, Protocol* lower, std::string name = "channel");

  void set_base_timeout(SimTime t) { base_timeout_ = t; }
  void set_retry_limit(int n) { retry_limit_ = n; }

  // Adaptive retransmission (kSetAdaptiveTimeout): per-session SRTT/RTTVAR
  // estimation with Karn's rule and capped exponential backoff, instead of the
  // paper's step-function timeout. Off by default so the paper's Table I-III
  // timing behavior is untouched.
  void set_adaptive_timeout(bool on) { adaptive_timeout_ = on; }
  bool adaptive_timeout() const { return adaptive_timeout_; }

  struct Stats {
    uint64_t calls_sent = 0;
    uint64_t replies_received = 0;
    uint64_t requests_executed = 0;
    uint64_t retransmissions = 0;
    uint64_t duplicates_suppressed = 0;  // duplicate requests NOT re-executed
    uint64_t replies_resent = 0;         // answered from the saved reply
    uint64_t explicit_acks_sent = 0;
    uint64_t explicit_acks_received = 0;
    uint64_t call_failures = 0;  // retries exhausted
    uint64_t boot_resets = 0;
    uint64_t stale_drops = 0;  // old-sequence packets discarded
    uint64_t timeouts = 0;     // retransmit timer expirations
    // Overload control (all zero unless deadlines/budgets are configured).
    uint64_t deadline_giveups = 0;  // client stopped calling/retrying: deadline
    uint64_t deadline_sheds = 0;    // server shed an already-expired request
    uint64_t budget_giveups = 0;    // retry budget empty at retransmit time
    uint64_t reject_replies = 0;    // error replies completing a call (BUSY etc.)
    uint64_t abandoned_replies = 0;  // server replies to requests the client
                                     // had already abandoned (dropped)
  };
  const Stats& stats() const { return stats_; }

  // Live ChannelSessions (slab-pooled).
  size_t live_sessions() const { return pool_.live(); }

  // Idle age after which no retransmission of an already-answered request can
  // still arrive, so a channel holding a saved reply becomes safe to evict.
  SimTime EvictQuarantine() const;

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("calls_sent", stats_.calls_sent);
    emit("replies_received", stats_.replies_received);
    emit("requests_executed", stats_.requests_executed);
    emit("retransmissions", stats_.retransmissions);
    emit("duplicates_suppressed", stats_.duplicates_suppressed);
    emit("replies_resent", stats_.replies_resent);
    emit("explicit_acks_sent", stats_.explicit_acks_sent);
    emit("explicit_acks_received", stats_.explicit_acks_received);
    emit("call_failures", stats_.call_failures);
    emit("boot_resets", stats_.boot_resets);
    emit("stale_drops", stats_.stale_drops);
    emit("timeouts", stats_.timeouts);
    emit("deadline_giveups", stats_.deadline_giveups);
    emit("deadline_sheds", stats_.deadline_sheds);
    emit("budget_giveups", stats_.budget_giveups);
    emit("reject_replies", stats_.reject_replies);
    emit("abandoned_replies", stats_.abandoned_replies);
  }

  void ExportGauges(const CounterEmit& emit) const override {
    const uint64_t settled = stats_.replies_received + stats_.call_failures;
    emit("calls_in_flight", stats_.calls_sent > settled ? stats_.calls_sent - settled : 0);
    emit("retransmissions", stats_.retransmissions);
    emit("live_sessions", pool_.live());
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool EvictSession(Session& s) override;

 private:
  friend class ChannelSession;
  using Key = std::tuple<IpAddr, uint16_t, RelProtoNum>;  // (peer, channel, proto)

  // Adds one call's worth of refill to the retry budget (no-op when the
  // budget is disabled). Called once per original request sent.
  void RefillBudget();

  SlabPool<ChannelSession> pool_;
  DemuxMap<Key> active_;
  DemuxMap<RelProtoNum, Protocol*> passive_;
  SimTime base_timeout_ = Msec(50);
  int retry_limit_ = 5;
  bool adaptive_timeout_ = false;
  // Retry budget (kSetRetryBudget): a token bucket shared by every channel of
  // this stack. Each original call deposits retry_ratio_ppm_ tokens (capped at
  // retry_burst_ calls' worth); each retransmission spends one call's worth
  // (1e6 ppm). ratio 0 = disabled, the default -- retransmission behavior is
  // then exactly the paper's.
  uint64_t retry_ratio_ppm_ = 0;
  uint64_t retry_burst_ = 0;
  uint64_t retry_tokens_ppm_ = 0;
  Stats stats_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_CHANNEL_H_
