// Bench regression gate: compares two BENCH_RESULTS.json documents metric by
// metric and reports relative-error violations.
//
// The comparator is direction-aware: throughput-like metrics regress when
// they DROP, latency-like metrics regress when they RISE, and utilization or
// count-like metrics are compared two-sided. Host-dependent fields (wall
// clock, thread counts, events/sec) are never compared, so a baseline written
// with --stable on one machine gates runs on any other.
//
// Header-only so the unit tests exercise exactly the code the CLI runs.

#ifndef XK_SRC_TOOLS_BENCH_DIFF_H_
#define XK_SRC_TOOLS_BENCH_DIFF_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace xk::benchdiff {

// --- minimal JSON ---------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;  // insertion order

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  // Parses one document; returns false (with error()) on malformed input.
  bool Parse(JsonValue& out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) {
      return Fail("bad literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool ParseString(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return Fail("bad escape");
        }
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: return Fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= s_.size()) {
      return Fail("unterminated string");
    }
    ++pos_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (pos_ >= s_.size()) {
      return Fail("unexpected end");
    }
    const char c = s_[pos_];
    if (c == '{') {
      out.kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!ParseString(key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        JsonValue v;
        if (!ParseValue(v)) {
          return false;
        }
        out.obj.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out.kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!ParseValue(v)) {
          return false;
        }
        out.arr.push_back(std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return ParseString(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.b = false;
      return Literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return Literal("null");
    }
    // number
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.num = std::stod(std::string(s_.substr(start, pos_ - start)));
    } catch (...) {
      return Fail("bad number");
    }
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
  std::string error_;
};

// --- flattening -----------------------------------------------------------------

// Fields that are host- or schema-dependent rather than simulated results.
inline bool SkippedKey(std::string_view key) {
  return key == "wall_ms" || key == "threads" || key == "serial_estimate_ms" ||
         key == "parallel_speedup" || key == "events_per_sec" || key == "engine_threads" ||
         key == "engine_serial_ms" || key == "engine_parallel_ms" || key == "engine_speedup" ||
         key == "schema_version" || key == "jobs" || key == "events_fired" ||
         key == "events_fired_total" || key == "sum_done_at_ns";
}

// Flattens every numeric leaf into path -> value. Entries of the "results"
// array are keyed "<group>.<name>" rather than by index, so job reordering
// never reads as a regression; "segments" entries are keyed "seg<id>".
inline void FlattenInto(const JsonValue& v, const std::string& path,
                        std::map<std::string, double>& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNumber:
      out[path] = v.num;
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [k, child] : v.obj) {
        if (SkippedKey(k)) {
          continue;
        }
        FlattenInto(child, path.empty() ? k : path + "." + k, out);
      }
      return;
    case JsonValue::Kind::kArray:
      for (size_t i = 0; i < v.arr.size(); ++i) {
        const JsonValue& e = v.arr[i];
        std::string key = "[" + std::to_string(i) + "]";
        if (e.kind == JsonValue::Kind::kObject) {
          const JsonValue* group = e.Find("group");
          const JsonValue* name = e.Find("name");
          const JsonValue* seg = e.Find("segment");
          if (group != nullptr && name != nullptr &&
              group->kind == JsonValue::Kind::kString &&
              name->kind == JsonValue::Kind::kString) {
            key = group->str + "." + name->str;
          } else if (seg != nullptr && seg->kind == JsonValue::Kind::kNumber) {
            key = "seg" + std::to_string(static_cast<int64_t>(seg->num));
          }
        }
        FlattenInto(e, path.empty() ? key : path + "." + key, out);
      }
      return;
    default:
      return;  // strings/bools/nulls are not compared
  }
}

// --- comparison -----------------------------------------------------------------

enum class Direction {
  kLowerBetter,   // latency-like: regression when current rises
  kHigherBetter,  // throughput-like: regression when current drops
  kTwoSided,      // counts, utilization: any drift past the threshold
};

// Classifies by the final path component's name.
inline Direction DirectionFor(std::string_view path) {
  const size_t dot = path.rfind('.');
  const std::string_view leaf = dot == std::string_view::npos ? path : path.substr(dot + 1);
  auto contains = [&](std::string_view needle) {
    return leaf.find(needle) != std::string_view::npos;
  };
  if (contains("throughput") || contains("kbytes_per_sec") || contains("speedup") ||
      contains("completed") || contains("success") || contains("goodput")) {
    return Direction::kHigherBetter;
  }
  // "offered"/"issued" are workload inputs, "calls" are per-replica routing
  // counts, and "overhead" measures instrumentation cost: drift in either
  // direction is a real change, not an improvement. Overload-control verdicts
  // (sheds, rejects, budget giveups, hedges, breaker trips, admitted volume)
  // are policy decisions, not performance: fewer sheds can mean the policy
  // broke just as easily as the load eased, so they compare two-sided too.
  // ("admitted_success_ppm" is classified above: its "success" leaf wins.)
  if (contains("util") || contains("frames") || contains("bytes") || contains("count") ||
      contains("depth") || contains("busy") || contains("offered") || contains("issued") ||
      contains("calls") || contains("overhead") || contains("shed") || contains("reject") ||
      contains("budget") || contains("hedge") || contains("breaker") || contains("admitted") ||
      contains("giveup")) {
    return Direction::kTwoSided;
  }
  return Direction::kLowerBetter;  // *_ms, *_ns, failed, drops, ...
}

struct Options {
  double default_threshold = 0.02;  // 2% relative
  // (regex, threshold) pairs matched against the full flattened path; the
  // first match wins. A threshold > 1e9 effectively exempts the metric.
  std::vector<std::pair<std::string, double>> thresholds;
  bool allow_missing = false;  // tolerate metrics present in base, absent now
};

struct Finding {
  std::string path;
  double base = 0;
  double current = 0;
  double rel_err = 0;
  double threshold = 0;
  Direction direction = Direction::kLowerBetter;
  bool missing = false;  // in baseline but not in current
};

struct Report {
  std::vector<Finding> regressions;
  size_t compared = 0;
  std::string error;  // non-empty: parse/usage failure, nothing compared

  bool ok() const { return error.empty() && regressions.empty(); }
};

inline double ThresholdFor(const std::string& path, const Options& opt) {
  for (const auto& [pattern, th] : opt.thresholds) {
    if (std::regex_search(path, std::regex(pattern))) {
      return th;
    }
  }
  return opt.default_threshold;
}

inline Report Compare(std::string_view base_json, std::string_view current_json,
                      const Options& opt = Options{}) {
  Report report;
  JsonValue base_doc, cur_doc;
  {
    JsonParser p(base_json);
    if (!p.Parse(base_doc)) {
      report.error = "baseline: " + p.error();
      return report;
    }
  }
  {
    JsonParser p(current_json);
    if (!p.Parse(cur_doc)) {
      report.error = "current: " + p.error();
      return report;
    }
  }
  std::map<std::string, double> base, cur;
  FlattenInto(base_doc, "", base);
  FlattenInto(cur_doc, "", cur);
  if (base.empty()) {
    report.error = "baseline: no numeric metrics found";
    return report;
  }
  for (const auto& [path, bval] : base) {
    const double threshold = ThresholdFor(path, opt);
    auto it = cur.find(path);
    if (it == cur.end()) {
      if (!opt.allow_missing) {
        Finding f;
        f.path = path;
        f.base = bval;
        f.missing = true;
        f.threshold = threshold;
        report.regressions.push_back(std::move(f));
      }
      continue;
    }
    ++report.compared;
    const double cval = it->second;
    const double denom = std::max({std::fabs(bval), std::fabs(cval), 1e-12});
    const double rel = std::fabs(cval - bval) / denom;
    if (rel <= threshold) {
      continue;
    }
    const Direction dir = DirectionFor(path);
    const bool bad = dir == Direction::kTwoSided ||
                     (dir == Direction::kLowerBetter && cval > bval) ||
                     (dir == Direction::kHigherBetter && cval < bval);
    if (!bad) {
      continue;  // an improvement past the threshold is not a regression
    }
    Finding f;
    f.path = path;
    f.base = bval;
    f.current = cval;
    f.rel_err = rel;
    f.threshold = threshold;
    f.direction = dir;
    report.regressions.push_back(std::move(f));
  }
  return report;
}

}  // namespace xk::benchdiff

#endif  // XK_SRC_TOOLS_BENCH_DIFF_H_
