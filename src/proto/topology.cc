#include "src/proto/topology.h"

#include <cassert>
#include <stdexcept>

namespace xk {

Internet::Internet(HostEnv default_env, uint64_t seed) : default_env_(default_env), seed_(seed) {}

Internet::~Internet() {
  // Kernels (and the protocols inside them) may hold sessions referring to
  // segments; destroy kernels first.
  kernels_.clear();
  segments_.clear();
}

int Internet::AddSegment(WireModel wire) {
  const int id = static_cast<int>(segments_.size());
  segments_.push_back(
      std::make_unique<EthernetSegment>(events_, wire, seed_ + static_cast<uint64_t>(id)));
  attachments_.emplace_back();
  return id;
}

HostStack& Internet::AddHost(const std::string& name, int segment, IpAddr ip,
                             std::optional<HostEnv> env) {
  const EthAddr mac = EthAddr::FromIndex(next_eth_index_++);
  auto kernel = std::make_unique<Kernel>(name, events_, env.value_or(default_env_), ip, mac);
  Kernel* k = kernel.get();
  kernels_.push_back(std::move(kernel));

  HostStack stack;
  stack.kernel = k;
  // Protocol constructors perform open_enables, which charge the CPU, so the
  // graph is built inside a configuration task.
  k->RunTask(events_.now(), [&]() {
    stack.eth = &k->Emplace<EthProtocol>(*k, *segments_[segment]);
    stack.arp = &k->Emplace<ArpProtocol>(*k, stack.eth);
    stack.ip = &k->Emplace<IpProtocol>(
        *k, std::vector<IpInterface>{IpInterface{stack.eth, stack.arp, ip, 24}});
  });
  attachments_[segment].push_back(Attachment{ip, mac, stack.arp});
  hosts_.emplace_back(name, stack);
  return hosts_.back().second;
}

HostStack& Internet::AddRouter(const std::string& name,
                               std::vector<std::pair<int, IpAddr>> attachments) {
  assert(!attachments.empty());
  const EthAddr primary_mac = EthAddr::FromIndex(next_eth_index_);
  auto kernel = std::make_unique<Kernel>(name, events_, default_env_, attachments[0].second,
                                         primary_mac);
  Kernel* k = kernel.get();
  kernels_.push_back(std::move(kernel));

  HostStack stack;
  stack.kernel = k;
  k->RunTask(events_.now(), [&]() {
    std::vector<IpInterface> ifaces;
    for (size_t i = 0; i < attachments.size(); ++i) {
      const auto& [seg, addr] = attachments[i];
      const EthAddr mac = EthAddr::FromIndex(next_eth_index_++);
      auto* eth = &k->Emplace<EthProtocol>(*k, *segments_[seg], mac,
                                           "eth" + std::to_string(i));
      auto* arp = &k->Emplace<ArpProtocol>(*k, eth, addr, "arp" + std::to_string(i));
      ifaces.push_back(IpInterface{eth, arp, addr, 24});
      attachments_[seg].push_back(Attachment{addr, mac, arp});
      if (i == 0) {
        stack.eth = eth;
        stack.arp = arp;
      }
    }
    stack.ip = &k->Emplace<IpProtocol>(*k, std::move(ifaces));
    stack.ip->set_forwarding(true);
  });
  hosts_.emplace_back(name, stack);
  return hosts_.back().second;
}

void Internet::WarmArp() {
  for (const auto& seg : attachments_) {
    for (const Attachment& a : seg) {
      a.arp->kernel().RunTask(events_.now(), [&]() {
        for (const Attachment& b : seg) {
          if (&a == &b) {
            continue;
          }
          ControlArgs args;
          args.ip = b.ip;
          args.eth = b.eth;
          (void)a.arp->Control(ControlOp::kAddResolveEntry, args);
        }
      });
    }
  }
}

void Internet::SetDefaultGateway(const std::string& host_name, IpAddr gw) {
  HostStack& h = host(host_name);
  h.kernel->RunTask(events_.now(), [&]() { h.ip->SetDefaultGateway(gw); });
}

HostStack& Internet::host(const std::string& name) {
  for (auto& [n, stack] : hosts_) {
    if (n == name) {
      return stack;
    }
  }
  throw std::out_of_range("no such host: " + name);
}

std::unique_ptr<Internet> Internet::TwoHosts(HostEnv env) {
  auto net = std::make_unique<Internet>(env);
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  net->WarmArp();
  return net;
}

std::unique_ptr<Internet> Internet::TwoSegments(HostEnv env) {
  auto net = std::make_unique<Internet>(env);
  const int seg_a = net->AddSegment();
  const int seg_b = net->AddSegment();
  net->AddHost("client", seg_a, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg_b, IpAddr(10, 0, 2, 1));
  net->AddRouter("router", {{seg_a, IpAddr(10, 0, 1, 254)}, {seg_b, IpAddr(10, 0, 2, 254)}});
  net->WarmArp();
  net->SetDefaultGateway("client", IpAddr(10, 0, 1, 254));
  net->SetDefaultGateway("server", IpAddr(10, 0, 2, 254));
  return net;
}

}  // namespace xk
