#include "src/cluster/client.h"

#include "src/app/oracle.h"
#include "src/trace/trace.h"

namespace xk {

ClusterClient::ClusterClient(Kernel& kernel, Protocol* rpc, std::string name)
    : Protocol(kernel, std::move(name), {rpc}), rpc_(rpc) {}

void ClusterClient::Call(IpAddr service, uint16_t command, uint64_t id, Message args,
                         RpcDone done) {
  kernel().Charge(app_cost_);
  SessionRef sess;
  auto it = session_cache_.find({service, command});
  if (it != session_cache_.end()) {
    sess = it->second;
  } else {
    ParticipantSet parts;
    parts.peer.host = service;
    parts.peer.command = command;
    Result<SessionRef> r = rpc_->Open(*this, parts);
    if (!r.ok()) {
      ++calls_failed_;
      done(r.status());
      return;
    }
    sess = *r;
    session_cache_[{service, command}] = sess;
  }
  PendingCall& entry = outstanding_[sess.get()][id];
  entry.done = std::move(done);
  entry.issued_at = kernel().now();
  if (hedge_base_delay_ > 0) {
    entry.args = args;  // keep a copy: Push consumes/extends the original
  }
  Status pushed = sess->Push(args);
  // Re-find after the push: our own synchronous-failure path below is the
  // only eraser, but map nodes are stable so the reference would dangle only
  // if this id settled, which a not-yet-delivered push cannot do.
  auto oit = outstanding_.find(sess.get());
  if (oit == outstanding_.end()) {
    return;
  }
  auto cit = oit->second.find(id);
  if (cit == oit->second.end()) {
    return;
  }
  if (!pushed.ok()) {
    // Synchronous failure (every replica down, or all capped): nothing went
    // out, so the id is still ours to complete directly.
    RpcDone cb = std::move(cit->second.done);
    oit->second.erase(cit);
    ++calls_failed_;
    cb(pushed);
    return;
  }
  if (hedge_base_delay_ > 0) {
    PendingCall& pc = cit->second;
    ControlArgs cargs;
    if (rpc_->Control(ControlOp::kGetLastPick, cargs).ok()) {
      pc.primary_pick = static_cast<int>(static_cast<int64_t>(cargs.u64));
    }
    const SimTime delay =
        rtt_.count() >= kHedgeMinSamples ? rtt_.P99() : hedge_base_delay_;
    Session* sp = sess.get();
    pc.hedge_timer = kernel().SetTimer(delay, [this, sp, id] { FireHedge(sp, id); });
  }
}

void ClusterClient::FireHedge(Session* sess, uint64_t id) {
  auto oit = outstanding_.find(sess);
  if (oit == outstanding_.end()) {
    return;
  }
  auto cit = oit->second.find(id);
  if (cit == oit->second.end()) {
    return;  // settled while the timer was in flight
  }
  PendingCall& pc = cit->second;
  pc.hedged = true;
  ++pc.attempts;
  ++hedges_;
  if (pc.primary_pick >= 0) {
    // One-shot: only this hedge push avoids the primary's replica.
    ControlArgs cargs;
    cargs.u64 = static_cast<uint64_t>(static_cast<int64_t>(pc.primary_pick));
    (void)rpc_->Control(ControlOp::kSetAvoidReplica, cargs);
  }
  if (TraceSink* ts = kernel().trace_sink()) {
    ts->RecordEvent(kernel(), TraceOp::kHedge, name(), kernel().now(), id, &pc.args, sess,
                    static_cast<uint64_t>(pc.primary_pick >= 0 ? pc.primary_pick : 0));
  }
  if (hedge_notify_) {
    hedge_notify_(id);
  }
  Message copy = pc.args;  // carries the deadline metadata too
  Status pushed = sess->Push(copy);
  if (!pushed.ok()) {
    // No second replica to hedge onto (capped, avoided, or down): the
    // primary attempt stands alone again.
    --pc.attempts;
  }
}

void ClusterClient::Evict(IpAddr service, uint16_t command) {
  auto it = session_cache_.find({service, command});
  if (it == session_cache_.end()) {
    return;
  }
  ControlArgs args;
  (void)it->second->Control(ControlOp::kFlushSessions, args);
  // Keep the outstanding_ entry: in-flight replies still demux through the
  // session object until they drain; only the cache forgets it.
  session_cache_.erase(it);
}

Status ClusterClient::DoDemux(Session* lls, Message& msg) {
  kernel().Charge(app_cost_);
  auto it = outstanding_.find(lls);
  if (it == outstanding_.end()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  const uint64_t id = AmoOracle::ExtractId(msg);
  auto cit = it->second.find(id);
  if (cit == it->second.end()) {
    // The reply beat us here after its call already failed, or the other
    // hedge attempt won. Count it; don't misdeliver.
    ++late_replies_;
    return OkStatus();
  }
  PendingCall pc = std::move(cit->second);
  it->second.erase(cit);
  if (hedge_base_delay_ > 0 && !pc.hedged) {
    // Primary settled before the hedge delay elapsed: the common case.
    kernel().CancelTimer(pc.hedge_timer);
    ++hedge_cancels_;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kHedgeCancel, name(), kernel().now(), id, &msg,
                      lls, 0);
    }
  }
  rtt_.Record(kernel().now() - pc.issued_at);
  ++calls_completed_;
  pc.done(msg);
  return OkStatus();
}

void ClusterClient::SessionError(Session& lls, Status error) {
  SessionCallError(lls, error, nullptr);
}

void ClusterClient::SessionCallError(Session& lls, Status error, const Message* request) {
  auto it = outstanding_.find(&lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return;
  }
  // The failing request's first 8 bytes are the call id, so out-of-order
  // rejects complete the right call. Without a request (legacy SessionError)
  // fall back to the oldest outstanding id -- CHANNEL surfaces giveups in
  // issue order.
  auto cit = it->second.begin();
  if (request != nullptr) {
    const uint64_t id = AmoOracle::ExtractId(*request);
    cit = it->second.find(id);
    if (cit == it->second.end()) {
      // This attempt's call already settled (its hedge twin won, or the
      // reply raced the error). Nothing left to complete.
      ++late_replies_;
      return;
    }
  }
  PendingCall& pc = cit->second;
  if (pc.attempts > 1) {
    // One attempt died; its twin is still in flight and may yet win.
    --pc.attempts;
    return;
  }
  if (hedge_base_delay_ > 0 && !pc.hedged) {
    kernel().CancelTimer(pc.hedge_timer);
  }
  RpcDone done = std::move(pc.done);
  it->second.erase(cit);
  ++calls_failed_;
  done(error);
}

void ClusterClient::ExportCounters(const CounterEmit& emit) const {
  Protocol::ExportCounters(emit);
  emit("calls_completed", calls_completed_);
  emit("calls_failed", calls_failed_);
  emit("late_replies", late_replies_);
  emit("hedges", hedges_);
  emit("hedge_cancels", hedge_cancels_);
}

void ClusterClient::ExportGauges(const CounterEmit& emit) const {
  uint64_t outstanding = 0;
  for (const auto& [sess, by_id] : outstanding_) {
    (void)sess;
    outstanding += by_id.size();
  }
  emit("outstanding_calls", outstanding);
}

Status ClusterClient::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetMaxSendSize) {
    args.u64 = max_send_size_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
