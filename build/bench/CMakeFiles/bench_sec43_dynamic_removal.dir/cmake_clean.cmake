file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_dynamic_removal.dir/bench_sec43_dynamic_removal.cc.o"
  "CMakeFiles/bench_sec43_dynamic_removal.dir/bench_sec43_dynamic_removal.cc.o.d"
  "bench_sec43_dynamic_removal"
  "bench_sec43_dynamic_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_dynamic_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
