// xkflow: cross-host causal call-flow analysis for trace JSONL files.
//
// Where xktrace aggregates spans per layer, xkflow stitches every record that
// belongs to ONE oracle call -- client issue, retransmission attempts, each
// frame hop (queue wait + wire + propagation + per-router forward), the VPOOL
// replica choice, server execution, and the reply path -- into a causal graph,
// and attributes the call's full RTT across categories whose sums reconstruct
// the benchmark's measured latency exactly.
//
//   xkflow TRACE.jsonl                     per-call table + aggregate summary
//   xkflow TRACE.jsonl --call=ID           one call's waterfall, hop by hop
//   xkflow TRACE.jsonl --slowest=N         the N worst calls, with breakdowns
//   xkflow TRACE.jsonl --rejected          only overload-terminated calls
//                                          (shed / rejected / budget-exhausted)
//   xkflow TRACE.jsonl --critical-path     aggregate attribution [--json]
//   xkflow TRACE.jsonl --folded            flame-graph folded stacks to stdout
//   xkflow TRACE.jsonl --flow              flow JSONL to stdout
//
// The input is a --trace= file from the bench suite; --flow= writes the same
// flow/folded artifacts directly from the bench run.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/tools/trace_reader.h"
#include "src/trace/causal.h"

namespace {

using xk::causal::Attempt;
using xk::causal::CallFlow;
using xk::causal::Category;
using xk::causal::CategoryName;
using xk::causal::FlowAnalysis;
using xk::causal::Hop;
using xk::causal::kNumCategories;
using xk::causal::Slice;
using xk::causal::Stitch;
using xk::causal::ToFlowJsonl;
using xk::causal::ToFolded;

int Usage() {
  std::fprintf(stderr,
               "usage: xkflow TRACE.jsonl [--call=ID] [--slowest=N] [--rejected]\n"
               "              [--critical-path] [--folded] [--flow] [--json]\n");
  return 2;
}

double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }
double Us(int64_t ns) { return static_cast<double>(ns) / 1e3; }

// A call the overload-control layer turned away (or that died giving up):
// either a shed/reject/budget event bound to it, or an overload status.
bool OverloadTerminated(const CallFlow& c) {
  return !c.terminal.empty() || c.status == "DEADLINE_EXCEEDED" || c.status == "BUSY" ||
         c.status == "RESOURCE_EXHAUSTED";
}

void PrintCallRow(const CallFlow& c) {
  std::printf("%6" PRIu64 " %-10s %-10s %-12s %4d %9.3f %4zu %3d %-12s\n", c.id,
              c.client.c_str(), c.server.empty() ? "-" : c.server.c_str(),
              c.status.empty() ? "-" : c.status.c_str(), c.replica, Ms(c.rtt()),
              c.attempts.size(), c.reroutes,
              c.completed && c.rtt() > 0 ? CategoryName(c.critical()) : "-");
}

void PrintCallTableHeader() {
  std::printf("%6s %-10s %-10s %-12s %4s %9s %4s %3s %-12s\n", "call", "client", "server",
              "status", "repl", "rtt_ms", "att", "rr", "critical");
}

void PrintBreakdownLine(const std::array<int64_t, kNumCategories>& ns, int64_t total) {
  for (int k = 0; k < kNumCategories; ++k) {
    const int64_t v = ns[static_cast<size_t>(k)];
    if (v == 0) {
      continue;
    }
    const double pct = total > 0 ? 100.0 * static_cast<double>(v) / static_cast<double>(total) : 0;
    std::printf("    %-14s %12.3f us  %5.1f%%\n", CategoryName(static_cast<Category>(k)), Us(v),
                pct);
  }
}

void PrintWaterfall(const CallFlow& c) {
  std::printf("call %" PRIu64 ": %s -> %s  status=%s replica=%d rtt=%.3f ms\n", c.id,
              c.client.c_str(), c.server.empty() ? "?" : c.server.c_str(),
              c.status.empty() ? "?" : c.status.c_str(), c.replica, Ms(c.rtt()));
  std::printf("  issued %.6f ms, done %.6f ms, %zu message id(s), %zu hop(s), %d reroute(s)\n",
              Ms(c.issue_t), Ms(c.done_t), c.msgs.size(), c.hops.size(), c.reroutes);
  if (!c.terminal.empty()) {
    std::printf("  overload verdict: %s at +%.3f us%s\n", c.terminal.c_str(),
                Us(c.terminal_t - c.issue_t), c.hedged ? " (hedged)" : "");
  } else if (c.hedged) {
    std::printf("  hedged: yes\n");
  }
  if (c.attempts.size() > 1) {
    std::printf("  attempts:\n");
    for (const Attempt& a : c.attempts) {
      std::printf("    +%10.3f us  retry=%d  cause=%s\n", Us(a.t - c.issue_t), a.retry,
                  a.cause.c_str());
    }
  }
  if (!c.hops.empty()) {
    std::printf("  hops:\n");
    for (const Hop& h : c.hops) {
      std::printf("    +%10.3f us  seg%-2" PRId64 " %5" PRIu64 "B  queue %.3f us, wire %.3f us,"
                  " prop %.3f us  (msg %" PRIu64 ")\n",
                  Us(h.t0 - c.issue_t), h.seg, h.len, Us(h.qwait), Us(h.t1 - h.t0),
                  Us(h.arrive - h.t1), h.msg);
    }
  }
  if (!c.slices.empty()) {
    std::printf("  waterfall (slices partition the rtt exactly):\n");
    for (const Slice& sl : c.slices) {
      std::printf("    +%10.3f us  %10.3f us  %-12s %s\n", Us(sl.t0 - c.issue_t),
                  Us(sl.t1 - sl.t0), CategoryName(sl.cat), sl.label.c_str());
    }
    std::printf("  attribution:\n");
    PrintBreakdownLine(c.ns, c.rtt());
  }
}

void PrintSummary(const FlowAnalysis& fa) {
  std::printf("calls: %zu (%" PRIu64 " ok, %" PRIu64 " failed, %zu never settled)\n",
              fa.calls.size(), fa.completed, fa.failed,
              fa.calls.size() - static_cast<size_t>(fa.completed + fa.failed));
  std::printf("mean rtt: %.3f ms\n", fa.MeanRttNs() / 1e6);
  if (fa.retransmits > 0) {
    std::printf("retransmits: %" PRIu64 " (", fa.retransmits);
    bool first = true;
    for (const auto& [cause, n] : fa.retry_causes) {
      std::printf("%s%s=%" PRIu64, first ? "" : ", ", cause.c_str(), n);
      first = false;
    }
    std::printf(")\n");
  }
  if (!fa.replica_picks.empty()) {
    std::printf("replica picks:");
    for (const auto& [idx, n] : fa.replica_picks) {
      std::printf(" s%d=%" PRIu64, idx, n);
    }
    std::printf("\n");
  }
  if (fa.reroutes + fa.replica_downs + fa.replica_readmits + fa.crashes + fa.restarts +
          fa.evictions >
      0) {
    std::printf("cluster events: %" PRIu64 " reroutes, %" PRIu64 " replica_down, %" PRIu64
                " replica_readmit, %" PRIu64 " crashes, %" PRIu64 " restarts, %" PRIu64
                " evictions\n",
                fa.reroutes, fa.replica_downs, fa.replica_readmits, fa.crashes, fa.restarts,
                fa.evictions);
  }
  if (fa.sheds + fa.rejects + fa.budget_exhausted + fa.hedges + fa.hedge_cancels > 0) {
    std::printf("overload: %" PRIu64 " sheds, %" PRIu64 " rejects, %" PRIu64
                " budget_exhausted, %" PRIu64 " hedges (%" PRIu64 " cancelled)\n",
                fa.sheds, fa.rejects, fa.budget_exhausted, fa.hedges, fa.hedge_cancels);
  }
  if (fa.forwards + fa.ttl_drops + fa.no_route_drops > 0) {
    std::printf("routing: %" PRIu64 " forwards, %" PRIu64 " ttl_drops, %" PRIu64
                " no_route_drops\n",
                fa.forwards, fa.ttl_drops, fa.no_route_drops);
  }
  int64_t total = 0;
  for (int k = 0; k < kNumCategories; ++k) {
    total += fa.total_ns[static_cast<size_t>(k)];
  }
  if (total > 0) {
    std::printf("aggregate attribution (sums to total settled rtt):\n");
    PrintBreakdownLine(fa.total_ns, total);
    std::printf("dominant category by call:\n");
    for (int k = 0; k < kNumCategories; ++k) {
      if (fa.dominant_calls[static_cast<size_t>(k)] > 0) {
        std::printf("    %-14s %6" PRIu64 " call(s)\n", CategoryName(static_cast<Category>(k)),
                    fa.dominant_calls[static_cast<size_t>(k)]);
      }
    }
  }
}

void PrintCriticalPathJson(const FlowAnalysis& fa) {
  int64_t total = 0;
  for (int k = 0; k < kNumCategories; ++k) {
    total += fa.total_ns[static_cast<size_t>(k)];
  }
  std::printf("{\"calls\":%zu,\"completed\":%" PRIu64 ",\"failed\":%" PRIu64
              ",\"mean_rtt_ns\":%.3f,\"mean_rtt_ms\":%.6f,\"total_attributed_ns\":%" PRId64
              ",\"retransmits\":%" PRIu64 ",\"sheds\":%" PRIu64 ",\"rejects\":%" PRIu64
              ",\"budget_exhausted\":%" PRIu64 ",\"hedges\":%" PRIu64
              ",\"hedge_cancels\":%" PRIu64,
              fa.calls.size(), fa.completed, fa.failed, fa.MeanRttNs(), fa.MeanRttNs() / 1e6,
              total, fa.retransmits, fa.sheds, fa.rejects, fa.budget_exhausted, fa.hedges,
              fa.hedge_cancels);
  std::printf(",\"categories\":{");
  for (int k = 0; k < kNumCategories; ++k) {
    std::printf("%s\"%s\":%" PRId64, k == 0 ? "" : ",", CategoryName(static_cast<Category>(k)),
                fa.total_ns[static_cast<size_t>(k)]);
  }
  std::printf("},\"dominant_calls\":{");
  for (int k = 0; k < kNumCategories; ++k) {
    std::printf("%s\"%s\":%" PRIu64, k == 0 ? "" : ",", CategoryName(static_cast<Category>(k)),
                fa.dominant_calls[static_cast<size_t>(k)]);
  }
  std::printf("},\"retry_causes\":{");
  bool first = true;
  for (const auto& [cause, n] : fa.retry_causes) {
    std::printf("%s\"%s\":%" PRIu64, first ? "" : ",", cause.c_str(), n);
    first = false;
  }
  std::printf("}}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  uint64_t call_id = 0;
  bool have_call = false;
  size_t slowest = 0;
  bool critical = false;
  bool folded = false;
  bool flow = false;
  bool json = false;
  bool rejected = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--call=", 7) == 0) {
      call_id = std::strtoull(a + 7, nullptr, 10);
      have_call = true;
    } else if (std::strncmp(a, "--slowest=", 10) == 0) {
      slowest = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strcmp(a, "--critical-path") == 0) {
      critical = true;
    } else if (std::strcmp(a, "--folded") == 0) {
      folded = true;
    } else if (std::strcmp(a, "--flow") == 0) {
      flow = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--rejected") == 0) {
      rejected = true;
    } else if (a[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = a;
    } else {
      return Usage();
    }
  }
  if (path.empty()) {
    return Usage();
  }
  const xk::tracetool::TraceFile tf = xk::tracetool::Load(path);
  if (tf.spans.empty() && tf.wires.empty() && tf.events.empty()) {
    std::fprintf(stderr, "xkflow: %s is empty or unreadable\n", path.c_str());
    return 1;
  }
  const FlowAnalysis fa = Stitch(tf);
  if (folded) {
    std::fputs(ToFolded(fa).c_str(), stdout);
    return 0;
  }
  if (flow) {
    std::fputs(ToFlowJsonl(fa).c_str(), stdout);
    return 0;
  }
  if (have_call) {
    for (const CallFlow& c : fa.calls) {
      if (c.id == call_id) {
        PrintWaterfall(c);
        return 0;
      }
    }
    std::fprintf(stderr, "xkflow: no call %" PRIu64 " in %s\n", call_id, path.c_str());
    return 1;
  }
  if (slowest > 0) {
    std::vector<const CallFlow*> settled;
    for (const CallFlow& c : fa.calls) {
      if (c.completed) {
        settled.push_back(&c);
      }
    }
    std::stable_sort(settled.begin(), settled.end(),
                     [](const CallFlow* a, const CallFlow* b) { return a->rtt() > b->rtt(); });
    if (settled.size() > slowest) {
      settled.resize(slowest);
    }
    for (const CallFlow* c : settled) {
      PrintWaterfall(*c);
      std::printf("\n");
    }
    return 0;
  }
  if (rejected) {
    PrintCallTableHeader();
    size_t n = 0;
    for (const CallFlow& c : fa.calls) {
      if (OverloadTerminated(c)) {
        PrintCallRow(c);
        ++n;
      }
    }
    std::printf("\n%zu overload-terminated call(s) of %zu (%" PRIu64 " sheds, %" PRIu64
                " rejects, %" PRIu64 " budget_exhausted)\n",
                n, fa.calls.size(), fa.sheds, fa.rejects, fa.budget_exhausted);
    return 0;
  }
  if (critical) {
    if (json) {
      PrintCriticalPathJson(fa);
    } else {
      PrintSummary(fa);
    }
    return 0;
  }
  if (fa.calls.empty()) {
    std::printf("no call-bound events in %s (trace has %zu spans, %zu wires, %zu events)\n",
                path.c_str(), tf.spans.size(), tf.wires.size(), tf.events.size());
    return 0;
  }
  PrintCallTableHeader();
  for (const CallFlow& c : fa.calls) {
    PrintCallRow(c);
  }
  std::printf("\n");
  PrintSummary(fa);
  return 0;
}
