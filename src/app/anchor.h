// Application anchor protocols: the top of every experimental stack.
//
// In the x-kernel the test programs themselves are protocols ("all the
// experiments are kernel-to-kernel"). Three anchors cover every
// configuration in the paper:
//
//  * RpcClient / RpcServer -- call/serve through any protocol that addresses
//    procedures with (host, command): M_RPC, SELECT, SELECT_FWD, or (with a
//    participant-set override) SUN_SELECT.
//  * EchoAnchor -- a raw request/echo test protocol used to measure partial
//    stacks (Table III's VIP, FRAGMENT-VIP, and CHANNEL-FRAGMENT-VIP rows),
//    where no selection layer exists and the anchor does its own pairing.

#ifndef XK_SRC_APP_ANCHOR_H_
#define XK_SRC_APP_ANCHOR_H_

#include <deque>
#include <functional>
#include <map>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/stat/histogram.h"

namespace xk {

using RpcDone = std::function<void(Result<Message>)>;

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

class RpcClient : public Protocol {
 public:
  // `rpc` is the protocol procedures are addressed through.
  RpcClient(Kernel& kernel, Protocol* rpc, std::string name = "rpcclient");

  // Invokes `command` at `server` with `args`; `done` runs with the reply (or
  // an error). Must be called from within a task. Completions pair FIFO per
  // (server, command) session.
  void Call(IpAddr server, uint16_t command, Message args, RpcDone done);

  // Generalized form for protocols with richer addresses (Sun RPC).
  void CallParts(const ParticipantSet& parts, Message args, RpcDone done);

  // CPU cost charged per call for argument marshalling (part of the test
  // program, present in the paper's numbers too).
  void set_app_cost(SimTime t) { app_cost_ = t; }

  // What this client reports when a virtual protocol asks how large its
  // messages can get (relevant only when the client sits directly on VIP).
  void set_max_send_size(uint64_t n) { max_send_size_ = n; }

  uint64_t calls_completed() const { return calls_completed_; }
  uint64_t calls_failed() const { return calls_failed_; }

  // Calls issued but not yet completed or failed (time-series gauge).
  void ExportGauges(const CounterEmit& emit) const override;

  void SessionError(Session& lls, Status error) override;

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  Protocol* rpc_;
  SimTime app_cost_ = Usec(45);
  uint64_t max_send_size_ = UINT64_MAX;
  std::map<std::pair<IpAddr, uint16_t>, SessionRef> session_cache_;
  std::map<Session*, std::deque<RpcDone>> outstanding_;
  uint64_t calls_completed_ = 0;
  uint64_t calls_failed_ = 0;
};

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

class RpcServer : public Protocol {
 public:
  using Handler = std::function<Message(uint16_t command, Message& request)>;

  RpcServer(Kernel& kernel, Protocol* rpc, std::string name = "rpcserver");

  // Registers `handler` for `command` (kAny = every command) and enables the
  // underlying protocol.
  static constexpr uint16_t kAny = 0xFFFF;
  Status Export(uint16_t command, Handler handler);

  // Registration for Sun-style services.
  Status ExportParts(const ParticipantSet& parts, Handler handler);

  // Replies are delayed by this much simulated service time (lets tests drive
  // the slow-server / explicit-ack paths).
  void set_service_delay(SimTime t) { service_delay_ = t; }
  void set_app_cost(SimTime t) { app_cost_ = t; }

  // Admission control (also via ControlOp::kSetAdmissionLimit): bounds the
  // server's run queue. `max_inflight` caps delayed-service requests whose
  // reply timer is still pending; `max_backlog` caps how far this request's
  // task clock may be running behind its arrival event (queueing delay plus
  // the receive path's own processing) before new work is fast-rejected with
  // a cheap BUSY reply. 0 = unbounded (the default).
  void set_admission_limit(uint32_t max_inflight, SimTime max_backlog) {
    max_inflight_ = max_inflight;
    max_backlog_ = max_backlog;
  }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t busy_rejects() const { return busy_rejects_; }
  uint64_t deadline_sheds() const { return deadline_sheds_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("requests_served", requests_served_);
    emit("busy_rejects", busy_rejects_);
    emit("deadline_sheds", deadline_sheds_);
  }

  // Per-request service time: from the request reaching this server protocol
  // to the reply being handed back down the stack (includes app cost, any
  // configured service delay, the handler, and the reply push).
  const Histogram& service_histogram() const { return service_time_; }

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  Handler HandlerFor(uint16_t command);

  Protocol* rpc_;
  std::map<uint16_t, Handler> handlers_;
  SimTime service_delay_ = 0;
  SimTime app_cost_ = Usec(45);
  uint64_t requests_served_ = 0;
  uint32_t max_inflight_ = 0;   // delayed-service requests in flight (0 = off)
  SimTime max_backlog_ = 0;     // run-queue delay bound (0 = off)
  uint64_t inflight_ = 0;
  uint64_t busy_rejects_ = 0;
  uint64_t deadline_sheds_ = 0;
  Histogram service_time_;
};

// ---------------------------------------------------------------------------
// EchoAnchor
// ---------------------------------------------------------------------------

// Raw test protocol: in server role echoes every delivered message back down
// the session it arrived on; in client role sends messages down a session and
// pairs responses FIFO.
class EchoAnchor : public Protocol {
 public:
  EchoAnchor(Kernel& kernel, bool server_role, std::string name = "echo");

  // Client role: sends `msg` through `sess`; `done` runs when the echo (or,
  // over CHANNEL, the reply) comes back.
  void Send(const SessionRef& sess, Message msg, RpcDone done);

  void set_app_cost(SimTime t) { app_cost_ = t; }
  void set_max_send_size(uint64_t n) { max_send_size_ = n; }
  // Server role: echo only the first `n` bytes (null-reply throughput tests).
  void set_echo_limit(size_t n) { echo_limit_ = n; }

  uint64_t echoes() const { return echoes_; }

  // Sends awaiting their echo (client role; time-series gauge).
  void ExportGauges(const CounterEmit& emit) const override;

  void SessionError(Session& lls, Status error) override;

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  bool server_role_;
  SimTime app_cost_ = Usec(45);
  uint64_t max_send_size_ = 1500;
  size_t echo_limit_ = SIZE_MAX;
  std::map<Session*, std::deque<RpcDone>> outstanding_;
  uint64_t echoes_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_APP_ANCHOR_H_
