// Quickstart: the smallest complete x-kernel RPC program.
//
// Builds the paper's testbed (two simulated Sun 3/75s on an isolated 10 Mbps
// Ethernet), configures layered Sprite RPC (SELECT-CHANNEL-FRAGMENT-VIP) on
// both hosts, exports a procedure, and calls it.
//
//   $ ./quickstart
//   reply: "hello, client" (23 bytes) in 1.96 ms of simulated time

#include <cstdio>
#include <string>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/proto/topology.h"

using namespace xk;

namespace {
constexpr uint16_t kCmdGreet = 1;

Message FromString(const std::string& s) {
  return Message::FromBytes({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
}

std::string ToString(const Message& m) {
  auto bytes = m.Flatten();
  return std::string(bytes.begin(), bytes.end());
}
}  // namespace

int main() {
  // 1. The testbed: two hosts, one wire, warm ARP caches.
  std::unique_ptr<Internet> net = Internet::TwoHosts();
  HostStack& client_host = net->host("client");
  HostStack& server_host = net->host("server");

  // 2. The protocol graph: layered Sprite RPC over the virtual protocol.
  RpcStack client_stack = BuildLRpc(client_host);
  RpcStack server_stack = BuildLRpc(server_host);

  // 3. The server side: export a procedure.
  server_host.kernel->RunTask(0, [&] {
    auto& server = server_host.kernel->Emplace<RpcServer>(*server_host.kernel,
                                                          server_stack.top);
    (void)server.Export(kCmdGreet, [](uint16_t, Message& request) {
      std::printf("server: got \"%s\"\n", ToString(request).c_str());
      return FromString("hello, client");
    });
  });

  // 4. The client side: call it.
  RpcClient* client = nullptr;
  client_host.kernel->RunTask(0, [&] {
    client = &client_host.kernel->Emplace<RpcClient>(*client_host.kernel, client_stack.top);
  });

  SimTime started = 0;
  client_host.kernel->ScheduleTask(0, [&] {
    started = client_host.kernel->now();
    client->Call(server_host.kernel->ip_addr(), kCmdGreet, FromString("hello, server"),
                 [&](Result<Message> reply) {
                   if (!reply.ok()) {
                     std::printf("call failed: %s\n", StatusCodeName(reply.status().code()));
                     return;
                   }
                   const SimTime elapsed = client_host.kernel->now() - started;
                   std::printf("reply: \"%s\" (%zu bytes) in %.2f ms of simulated time "
                               "(first call: includes session setup)\n",
                               ToString(*reply).c_str(), (*reply).length(), ToMsec(elapsed));
                 });
  });

  // 5. Run the simulation to quiescence.
  net->RunAll();
  return 0;
}
