// ClusterClient: an RPC client anchor for replicated pools.
//
// RpcClient pairs completions FIFO per session, which is correct when every
// reply returns in issue order. Through VPOOL that no longer holds: calls on
// one session fan out over several replicas (and several CHANNEL channels per
// replica), so replies complete out of order. ClusterClient therefore pairs
// replies by the 8-byte big-endian call id at the head of every oracle-format
// request/reply (AmoOracle::MakeRequest layout) instead of by queue position.
//
// Errors: the SessionCallError upcall carries the failing request, whose
// first 8 bytes are the call id, so failures complete the exact call that
// died even when rejects arrive out of issue order. A legacy SessionError
// (no request) falls back to completing the oldest outstanding id. A reply
// for an id that already failed is counted in `late_replies` and dropped;
// at-most-once stays observable because failure outcomes need no echo match.
//
// Hedged requests (set_hedge_delay): when the primary attempt has not settled
// after the hedge delay -- the client's own observed p99 RTT once it has
// enough samples, the configured base until then -- a second attempt is
// pushed toward a DIFFERENT replica (one-shot kSetAvoidReplica on the pool
// below) and the first reply wins. A primary reply arriving before the timer
// fires cancels the hedge outright; the call fails only when every attempt
// has failed.

#ifndef XK_SRC_CLUSTER_CLIENT_H_
#define XK_SRC_CLUSTER_CLIENT_H_

#include <map>
#include <utility>

#include "src/app/anchor.h"
#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

class ClusterClient : public Protocol {
 public:
  // `rpc` is whatever addresses procedures with (host, command) -- normally a
  // VpoolProtocol, but any SELECT-shaped protocol works.
  ClusterClient(Kernel& kernel, Protocol* rpc, std::string name = "cluclient");

  // Invokes `command` at `service` (a VPOOL virtual address or a real host).
  // `args` must be in oracle format: its first 8 bytes are `id`, big-endian.
  // Must be called from within a task.
  void Call(IpAddr service, uint16_t command, uint64_t id, Message args, RpcDone done);

  // Connection churn: drops the cached session for (service, command) and
  // asks it to flush its idle lower sessions first.
  void Evict(IpAddr service, uint16_t command);

  void set_app_cost(SimTime t) { app_cost_ = t; }
  void set_max_send_size(uint64_t n) { max_send_size_ = n; }

  // Enables hedging with `base` as the delay until 64 RTT samples exist
  // (then the client's own p99 takes over). 0 = off (the default).
  void set_hedge_delay(SimTime base) { hedge_base_delay_ = base; }

  // Observer for hedged call ids; the bench wires this to the oracle so a
  // hedged id executing on two replicas is reported, not flagged.
  void set_hedge_notify(std::function<void(uint64_t)> f) { hedge_notify_ = std::move(f); }

  uint64_t calls_completed() const { return calls_completed_; }
  uint64_t calls_failed() const { return calls_failed_; }
  uint64_t late_replies() const { return late_replies_; }
  uint64_t hedges() const { return hedges_; }
  uint64_t hedge_cancels() const { return hedge_cancels_; }
  const Histogram& rtt_histogram() const { return rtt_; }

  void ExportCounters(const CounterEmit& emit) const override;
  void ExportGauges(const CounterEmit& emit) const override;
  void SessionError(Session& lls, Status error) override;
  void SessionCallError(Session& lls, Status error, const Message* request) override;

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  // RTT samples before the hedge delay switches from the base to own-p99.
  static constexpr uint64_t kHedgeMinSamples = 64;

  struct PendingCall {
    RpcDone done;
    SimTime issued_at = 0;
    int attempts = 1;       // pushes in flight for this id
    int primary_pick = -1;  // replica the first attempt rode (hedge avoids it)
    bool hedged = false;    // the second attempt actually went out
    EventHandle hedge_timer;
    Message args;  // retained only while hedging is enabled
  };

  void FireHedge(Session* sess, uint64_t id);

  Protocol* rpc_;
  SimTime app_cost_ = Usec(45);
  uint64_t max_send_size_ = UINT64_MAX;
  SimTime hedge_base_delay_ = 0;
  std::function<void(uint64_t)> hedge_notify_;
  std::map<std::pair<IpAddr, uint16_t>, SessionRef> session_cache_;
  // Ordered by id within each session, so "oldest outstanding" = begin().
  std::map<Session*, std::map<uint64_t, PendingCall>> outstanding_;
  Histogram rtt_;
  uint64_t calls_completed_ = 0;
  uint64_t calls_failed_ = 0;
  uint64_t late_replies_ = 0;
  uint64_t hedges_ = 0;
  uint64_t hedge_cancels_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_CLUSTER_CLIENT_H_
