// Tests for the declarative fault-campaign engine (src/sim/fault.h): plan
// parsing, the no-draws-outside-windows determinism guarantee, partitions
// that heal, duplicate storms, a scheduled server crash/restart campaign
// checked by the at-most-once oracle, and the corruption-detection guarantee
// (a corrupted frame is either rejected by a checksum/demux check or
// delivered with its payload intact -- never silently mangled).

#include "src/sim/fault.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/app/oracle.h"
#include "src/app/stacks.h"
#include "src/app/workload.h"
#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

// --- plan parsing -------------------------------------------------------------

TEST(FaultPlanTest, ParseToStringRoundTrip) {
  FaultPlan plan;
  std::string error;
  const char* spec =
      "drop:seg=0,from=10ms,until=20ms,rate=0.25;"
      "partition:seg=1,from=5ms,until=40ms;"
      "ge:seg=0,from=0s,until=1s,p_enter=0.01,p_exit=0.2,loss_good=0.001,loss_bad=0.9;"
      "dup:seg=0,from=2ms,until=3ms,rate=0.5;"
      "delay:seg=0,from=1ms,until=9ms,rate=1,delay=500us;"
      "corrupt:seg=0,from=0s,until=100ms,rate=0.125;"
      "crash:host=server,at=50ms,restart=80ms;"
      "seed:42";
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.clauses.size(), 7u);
  EXPECT_EQ(plan.clauses[0].kind, FaultClause::Kind::kDropWindow);
  EXPECT_EQ(plan.clauses[0].rate, 0.25);
  EXPECT_EQ(plan.clauses[1].kind, FaultClause::Kind::kPartition);
  EXPECT_EQ(plan.clauses[1].segment, 1);
  EXPECT_EQ(plan.clauses[2].kind, FaultClause::Kind::kGilbertElliott);
  EXPECT_EQ(plan.clauses[2].loss_bad, 0.9);
  EXPECT_EQ(plan.clauses[4].delay, Usec(500));
  EXPECT_EQ(plan.clauses[6].kind, FaultClause::Kind::kCrash);
  EXPECT_EQ(plan.clauses[6].host, "server");
  EXPECT_EQ(plan.clauses[6].at, Msec(50));
  EXPECT_EQ(plan.clauses[6].restart_at, Msec(80));

  // ToString -> Parse -> ToString is a fixed point.
  const std::string printed = plan.ToString();
  FaultPlan reparsed;
  ASSERT_TRUE(FaultPlan::Parse(printed, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), printed);
}

TEST(FaultPlanTest, BuildersRoundTripThroughToString) {
  FaultPlan plan;
  plan.seed = 7;
  plan.DropWindow(0, Msec(10), Msec(20), 0.5)
      .Partition(0, Msec(30), Msec(40))
      .GilbertElliott(-1, 0, Sec(2), 0.02, 0.3, 0.0, 1.0)
      .DelaySpike(0, Msec(1), Msec(2), 0.25, Usec(750))
      .Crash("server", Msec(50), Msec(90));
  EXPECT_TRUE(plan.HasLinkClauses());
  EXPECT_TRUE(plan.HasCrashClauses());

  FaultPlan reparsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToString(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
  EXPECT_EQ(reparsed.seed, 7u);
  ASSERT_EQ(reparsed.clauses.size(), plan.clauses.size());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("bogus:seg=0", &plan, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=0,from=10xs", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=0,rate=abc", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("crash:at=10ms", &plan, &error));  // missing host
  EXPECT_FALSE(FaultPlan::Parse("drop:wibble=3", &plan, &error));
}

TEST(FaultPlanTest, ParseErrorsNameTheOffendingToken) {
  FaultPlan plan;
  std::string error;

  // Unknown kind.
  EXPECT_FALSE(FaultPlan::Parse("bogus:seg=0", &plan, &error));
  EXPECT_NE(error.find("'bogus'"), std::string::npos) << error;

  // Bare key without '='.
  EXPECT_FALSE(FaultPlan::Parse("drop:seg", &plan, &error));
  EXPECT_NE(error.find("'seg'"), std::string::npos) << error;

  // Unknown key names both the key and the clause kind.
  EXPECT_FALSE(FaultPlan::Parse("drop:wibble=3", &plan, &error));
  EXPECT_NE(error.find("'wibble'"), std::string::npos) << error;
  EXPECT_NE(error.find("'drop'"), std::string::npos) << error;

  // Bad time value.
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=0,from=10xs", &plan, &error));
  EXPECT_NE(error.find("'10xs'"), std::string::npos) << error;
  EXPECT_NE(error.find("'from'"), std::string::npos) << error;

  // Bad rate value.
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=0,rate=abc", &plan, &error));
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;
  EXPECT_NE(error.find("'rate'"), std::string::npos) << error;
}

TEST(FaultPlanTest, ParseRejectsGarbageSeed) {
  // std::strtoull with a null end pointer used to read "seed:banana" as 0.
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("seed:banana", &plan, &error));
  EXPECT_NE(error.find("'banana'"), std::string::npos) << error;
  EXPECT_NE(error.find("seed"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FaultPlan::Parse("seed:12x", &plan, &error));  // trailing garbage
  EXPECT_NE(error.find("'12x'"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FaultPlan::Parse("seed:", &plan, &error));  // empty value
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlanTest, ParseRejectsGarbageSegment) {
  // std::atoi used to read seg=abc as segment 0 without complaint.
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=abc,from=0ms,until=1ms,rate=0.5", &plan, &error));
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;
  EXPECT_NE(error.find("'seg'"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=1x,from=0ms,until=1ms,rate=0.5", &plan, &error));
  EXPECT_NE(error.find("'1x'"), std::string::npos) << error;

  // -1 is the all-segments wildcard; other negatives don't exist.
  error.clear();
  EXPECT_FALSE(FaultPlan::Parse("drop:seg=-2,from=0ms,until=1ms,rate=0.5", &plan, &error));
  EXPECT_NE(error.find("'-2'"), std::string::npos) << error;
  ASSERT_TRUE(FaultPlan::Parse("drop:seg=-1,from=0ms,until=1ms,rate=0.5", &plan, &error))
      << error;
  EXPECT_EQ(plan.clauses.back().segment, -1);

  // A valid segment still parses.
  error.clear();
  ASSERT_TRUE(FaultPlan::Parse("drop:seg=3,from=0ms,until=1ms,rate=0.5", &plan, &error))
      << error;
  EXPECT_EQ(plan.clauses.back().segment, 3);
}

// --- determinism --------------------------------------------------------------

// Runs a fixed echo workload and returns (CountersJson, events_fired).
std::pair<std::string, uint64_t> RunEchoWorkload(const FaultPlan* plan) {
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  std::optional<FaultEngine> engine;
  if (plan != nullptr) {
    engine.emplace(*fix.net, *plan);
  }
  for (int i = 0; i < 6; ++i) {
    Result<Message> r = fix.CallSync(1, Message::FromBytes(PatternBytes(256, uint8_t(i))));
    EXPECT_TRUE(r.ok()) << "call " << i;
  }
  return {fix.net->CountersJson(), fix.net->events_fired()};
}

TEST(FaultEngineTest, WindowOutsideTheWorkloadPerturbsNothing) {
  // The engine consults its RNG only while a clause's window is active, so a
  // fault window scheduled long after the workload ends must leave the run
  // bit-identical to a fault-free one -- counters and event counts included.
  const auto baseline = RunEchoWorkload(nullptr);

  FaultPlan inert;
  inert.DropWindow(0, Sec(100), Sec(101), 1.0)
      .GilbertElliott(-1, Sec(200), Sec(201), 0.5, 0.5, 0.1, 0.9)
      .CorruptWindow(0, Sec(300), Sec(301), 1.0);
  const auto with_inert_faults = RunEchoWorkload(&inert);

  EXPECT_EQ(with_inert_faults.first, baseline.first);
  EXPECT_EQ(with_inert_faults.second, baseline.second);
}

TEST(FaultEngineTest, SamePlanSameSeedIsReproducible) {
  FaultPlan plan;
  plan.seed = 11;
  plan.DropWindow(0, 0, Msec(30), 0.3).DuplicateStorm(0, Msec(30), Msec(60), 0.5);
  const auto a = RunEchoWorkload(&plan);
  const auto b = RunEchoWorkload(&plan);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- link-fault campaigns over the RPC stack ----------------------------------

TEST(FaultEngineTest, PartitionHealsAndCallCompletes) {
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });

  FaultPlan plan;
  plan.Partition(0, 0, Msec(80));
  FaultEngine faults(*fix.net, plan);

  // The call is issued inside the partition; CHANNEL retransmits through it
  // and the retry that lands after the heal completes the call.
  Result<Message> r = fix.CallSync(1, Message::FromBytes(PatternBytes(64, 1)));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(fix.cstack.channel->stats().retransmissions, 1u);
  EXPECT_GT(fix.net->segment(0).fault_drops(), 0u);
  EXPECT_GT(faults.decisions(), 0u);
}

TEST(FaultEngineTest, DuplicateStormIsSuppressedByChannel) {
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });

  FaultPlan plan;
  plan.DuplicateStorm(0, 0, 0, 1.0);  // open-ended: duplicate every frame
  FaultEngine faults(*fix.net, plan);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(64, uint8_t(i)))).ok());
  }
  EXPECT_GT(fix.net->segment(0).fault_duplicates(), 0u);
  // Every request arrived twice; the server executed each exactly once.
  EXPECT_EQ(fix.sstack.channel->stats().requests_executed, 4u);
  EXPECT_GE(fix.sstack.channel->stats().duplicates_suppressed +
                fix.sstack.channel->stats().stale_drops,
            1u);
}

// --- crash/restart campaign, checked by the at-most-once oracle ---------------

TEST(FaultEngineTest, ServerCrashCampaignIsOracleCleanAndRecovers) {
  AmoOracle oracle;
  RpcFixture fix;
  RpcFixture::Builder builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
  fix.Build(builder, /*export_echo=*/false);
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(fix.server->Export(RpcServer::kAny, oracle.WrapEcho(fix.sh->kernel)).ok());
  });
  // Replace the fixture's restart hook so the rebuilt server records
  // executions in the same oracle (under its new boot id).
  fix.net->set_restart_hook("server", [&fix, builder, &oracle](HostStack& h) {
    fix.sstack = builder(h);
    fix.server = &h.kernel->Emplace<RpcServer>(*h.kernel, fix.sstack.top);
    (void)fix.server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel));
  });
  const uint32_t boot_before = fix.sh->kernel->boot_id();

  // Crash the server mid-workload; restart it 400ms later -- longer than
  // CHANNEL's retry budget (5 retries x 50ms), so the call spanning the
  // outage surfaces a timeout instead of riding it out.
  FaultPlan plan;
  plan.Crash("server", Msec(100), Msec(500));
  FaultEngine faults(*fix.net, plan);

  ChaosSpec spec;
  spec.payload_bytes = 64;
  spec.calls = 40;
  spec.gap = Msec(5);
  spec.crash_at = Msec(100);
  CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
    fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
  };
  ChaosResult r = RpcWorkload::RunChaos(*fix.net, *fix.ch->kernel, call, oracle, spec);

  EXPECT_EQ(r.issued, 40);
  EXPECT_EQ(r.completed + r.failed, 40);
  EXPECT_GE(r.completed, 35);
  EXPECT_GE(r.failed, 1);  // the call spanning the outage exhausts its retries
  EXPECT_GT(r.recovery_latency, 0);
  EXPECT_LT(r.recovery_latency, Msec(500));

  AmoOracle::Report rep = oracle.Finish();
  EXPECT_TRUE(rep.clean()) << "double=" << rep.double_executions
                           << " mismatched=" << rep.mismatched_replies
                           << " unknown=" << rep.unknown_replies << " silent=" << rep.silent;
  EXPECT_EQ(rep.issued, 40u);
  EXPECT_EQ(rep.completed, static_cast<uint64_t>(r.completed));
  EXPECT_EQ(rep.failed, static_cast<uint64_t>(r.failed));
  // A pure crash (no message loss) never re-executes: requests in flight
  // toward the dead host drop at the wire, and an executed request's reply
  // is already in flight when the crash lands.
  EXPECT_EQ(rep.cross_boot_reexecutions, 0u);
  EXPECT_GT(rep.executions, 0u);

  // The restart bumped the boot id; the client observed it via CHANNEL and
  // its retransmissions into the outage died at the detached station.
  EXPECT_EQ(fix.sh->kernel->boot_id(), boot_before + 1);
  EXPECT_GE(fix.cstack.channel->stats().boot_resets, 1u);
  EXPECT_GT(fix.net->segment(0).down_drops(), 0u);
}

// --- corruption detection -----------------------------------------------------

// A sink protocol that records every payload delivered to it.
class CaptureAnchor final : public Protocol {
 public:
  explicit CaptureAnchor(Kernel& kernel) : Protocol(kernel, "capture", {}) {}

  std::vector<std::vector<uint8_t>> payloads;

 protected:
  Status DoDemux(Session* lls, Message& msg) override {
    (void)lls;
    payloads.push_back(msg.Flatten());
    return OkStatus();
  }
};

TEST(FaultEngineTest, CorruptedFramesNeverReachTheAnchorUndetected) {
  // Randomize the flip position via the plan seed: every corrupted frame must
  // be rejected somewhere (Ethernet demux, IP header checksum, UDP checksum)
  // or delivered with its payload intact (flips confined to header fields a
  // point-to-point delivery does not depend on). The receive path cascades
  // drops down to the Ethernet layer, so the server's Ethernet demux_drops
  // counter is the total rejection count.
  uint64_t total_corrupted = 0;
  uint64_t total_ip_bad = 0;
  uint64_t total_udp_bad = 0;
  uint64_t total_eth_direct = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    auto net = Internet::TwoHosts();
    auto& ch = net->host("client");
    auto& sh = net->host("server");
    UdpProtocol* cudp = BuildUdp(ch);
    UdpProtocol* sudp = BuildUdp(sh);

    CaptureAnchor* capture = nullptr;
    RunIn(*sh.kernel, [&] {
      capture = &sh.kernel->Emplace<CaptureAnchor>(*sh.kernel);
      ParticipantSet enable;
      enable.local.port = 7;
      EXPECT_TRUE(sudp->OpenEnable(*capture, enable).ok());
    });
    CaptureAnchor* sender = nullptr;
    SessionRef sess;
    RunIn(*ch.kernel, [&] {
      sender = &ch.kernel->Emplace<CaptureAnchor>(*ch.kernel);
      ParticipantSet parts;
      parts.local.port = 1234;
      parts.peer.host = sh.kernel->ip_addr();
      parts.peer.port = 7;
      Result<SessionRef> r = cudp->Open(*sender, parts);
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        sess = *r;
      }
    });
    ASSERT_NE(sess, nullptr);

    FaultPlan plan;
    plan.seed = seed;
    plan.CorruptWindow(0, 0, 0, 0.5);  // open-ended: flip a byte in half the frames
    FaultEngine faults(*net, plan);

    const std::vector<uint8_t> payload = PatternBytes(96, 0x5A);
    const uint64_t kSends = 60;
    for (uint64_t i = 0; i < kSends; ++i) {
      ch.kernel->ScheduleTask(Msec(1) * static_cast<SimTime>(i + 1), [&sess, payload] {
        Message m = Message::FromBytes(payload);
        (void)sess->Push(m);
      });
    }
    net->RunAll();

    // No corrupted payload reached the anchor.
    for (const auto& got : capture->payloads) {
      EXPECT_EQ(got, payload);
    }
    // Every frame was either delivered (payload intact) or counted as a drop.
    const uint64_t captured = capture->payloads.size();
    const uint64_t eth_drops = sh.eth->counters().demux_drops;
    EXPECT_EQ(captured + eth_drops, kSends);

    const uint64_t corrupted = net->segment(0).fault_corruptions();
    EXPECT_GT(corrupted, 0u);
    total_corrupted += corrupted;
    total_ip_bad += sh.ip->stats().checksum_failures;
    total_udp_bad += sudp->checksum_failures();
    // Drops the Ethernet layer itself decided (corrupted dst address or
    // EtherType), as opposed to cascaded IP/UDP rejections.
    total_eth_direct += eth_drops - sh.ip->counters().demux_drops;
  }
  // Across the seeds, every detection layer fired at least once.
  EXPECT_GT(total_corrupted, 100u);
  EXPECT_GT(total_ip_bad, 0u);
  EXPECT_GT(total_udp_bad, 0u);
  EXPECT_GT(total_eth_direct, 0u);
}

}  // namespace
}  // namespace xk
