// Open-loop arrival processes for saturation workloads.
//
// Every workload so far is closed-loop: the next call waits for the previous
// one to settle, so offered load can never exceed service capacity and the
// interesting saturation behavior -- queue growth, p999 collapse -- is
// invisible. An OpenLoopGen issues calls at times drawn from an arrival
// process (Poisson, or bursty on-off) computed purely from the sim clock and
// a seeded Rng: arrivals never wait for completions, so offered load is an
// independent variable and overload is observable.
//
// Determinism: each generator owns its own SplitMix64 stream and allocates
// call ids from a private (client_index-tagged) range, so a fleet of
// generators is reproducible bit-for-bit at any engine width.

#ifndef XK_SRC_CLUSTER_ARRIVALS_H_
#define XK_SRC_CLUSTER_ARRIVALS_H_

#include <string>

#include "src/cluster/client.h"
#include "src/core/kernel.h"
#include "src/sim/rng.h"
#include "src/stat/histogram.h"

namespace xk {

class AmoOracle;

// Textual forms (the --arrivals= flag; FaultPlan::Parse's conventions):
//   poisson:rate=400,horizon=500ms[,churn=50][,seed=7]
//   onoff:rate=900,off_rate=100,on=100ms,off=100ms,horizon=1s[,churn=...]
// `rate` is calls/second per generator; `churn=N` drops cached sessions every
// N issues (connection churn). An on-off process is a 2-state MMPP: `rate`
// while on, `off_rate` while off (0 = silent), phases of length on/off.
struct ArrivalSpec {
  enum class Kind : uint8_t { kPoisson, kOnOff };

  Kind kind = Kind::kPoisson;
  double rate_cps = 1000.0;    // arrival rate (on-phase rate for onoff)
  double off_rate_cps = 0.0;   // off-phase rate (onoff only)
  SimTime on_for = Msec(10);   // on-phase length (onoff only)
  SimTime off_for = Msec(10);  // off-phase length (onoff only)
  SimTime horizon = Msec(500); // issue arrivals in [0, horizon)
  int churn_every = 0;         // 0 = no churn
  uint64_t seed = 1;

  static bool Parse(const std::string& text, ArrivalSpec* out, std::string* error);
  std::string ToString() const;
};

// Drives one client with an open-loop oracle-tagged call stream.
class OpenLoopGen {
 public:
  // Calls `command` at `service` through `client` with `payload_bytes`
  // payloads. Ids are `id_base | seq` with seq starting at 1: give every
  // generator a disjoint id_base (e.g. (client_index+1) << 32) because the
  // shared oracle's own allocator must not be used concurrently.
  OpenLoopGen(Kernel& kernel, ClusterClient& client, AmoOracle& oracle,
              const ArrivalSpec& spec, IpAddr service, uint16_t command,
              size_t payload_bytes, uint64_t id_base);

  // Schedules the arrival stream (call before Internet::RunAll).
  void Start();

  // Attributes issues/outcomes to before/during/after this window by their
  // ISSUE time (failover timeline for crash runs). Set before Start.
  void set_phase_window(SimTime from, SimTime until) {
    phase_from_ = from;
    phase_until_ = until;
  }

  // Per-call deadline, relative to the arrival time: every request is stamped
  // with absolute deadline `at + d`, which CHANNEL propagates on the wire so
  // both ends shed expired work. 0 = no deadlines (the default).
  void set_deadline(SimTime d) { deadline_ = d; }

  struct PhaseStats {
    uint64_t issued = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
  };

  uint64_t issued() const { return issued_; }
  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }
  // Failure classes (each also counted in failed()).
  uint64_t shed() const { return shed_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t budget_exhausted() const { return budget_exhausted_; }
  const Histogram& rtt() const { return rtt_; }
  SimTime last_done_at() const { return last_done_at_; }
  // 0 = before the phase window, 1 = inside, 2 = after.
  const PhaseStats& phase(int i) const { return phases_[static_cast<size_t>(i)]; }

 private:
  // The first arrival strictly after `t` (exact for on-off by memorylessness:
  // a draw crossing a phase boundary is redrawn from the boundary).
  SimTime NextArrivalAfter(SimTime t);
  SimTime ExpGap(double rate_cps);
  void IssueAt(SimTime at);
  int PhaseIndexFor(SimTime issue_at) const;

  Kernel& kernel_;
  ClusterClient& client_;
  AmoOracle& oracle_;
  ArrivalSpec spec_;
  IpAddr service_;
  uint16_t command_;
  size_t payload_bytes_;
  uint64_t id_base_;
  Rng rng_;
  SimTime phase_from_ = 0;
  SimTime phase_until_ = 0;
  SimTime deadline_ = 0;
  uint64_t seq_ = 0;
  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t shed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t budget_exhausted_ = 0;
  Histogram rtt_;
  SimTime last_done_at_ = 0;
  PhaseStats phases_[3];
};

}  // namespace xk

#endif  // XK_SRC_CLUSTER_ARRIVALS_H_
