file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_framework.dir/bench_micro_framework.cc.o"
  "CMakeFiles/bench_micro_framework.dir/bench_micro_framework.cc.o.d"
  "bench_micro_framework"
  "bench_micro_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
