#include "src/app/anchor.h"

#include "src/trace/trace.h"

namespace xk {

// ---------------------------------------------------------------------------
// RpcClient
// ---------------------------------------------------------------------------

RpcClient::RpcClient(Kernel& kernel, Protocol* rpc, std::string name)
    : Protocol(kernel, std::move(name), {rpc}), rpc_(rpc) {}

void RpcClient::CallParts(const ParticipantSet& parts, Message args, RpcDone done) {
  kernel().Charge(app_cost_);
  Result<SessionRef> sess = rpc_->Open(*this, parts);
  if (!sess.ok()) {
    ++calls_failed_;
    done(sess.status());
    return;
  }
  outstanding_[sess->get()].push_back(std::move(done));
  Status pushed = (*sess)->Push(args);
  if (!pushed.ok()) {
    ++calls_failed_;
    RpcDone cb = std::move(outstanding_[sess->get()].back());
    outstanding_[sess->get()].pop_back();
    cb(pushed);
  }
}

void RpcClient::Call(IpAddr server, uint16_t command, Message args, RpcDone done) {
  // Cache open sessions (the paper's first "efficiency rule").
  auto it = session_cache_.find({server, command});
  if (it != session_cache_.end()) {
    kernel().Charge(app_cost_);
    SessionRef sess = it->second;
    outstanding_[sess.get()].push_back(std::move(done));
    Status pushed = sess->Push(args);
    if (!pushed.ok()) {
      ++calls_failed_;
      RpcDone cb = std::move(outstanding_[sess.get()].back());
      outstanding_[sess.get()].pop_back();
      cb(pushed);
    }
    return;
  }
  ParticipantSet parts;
  parts.peer.host = server;
  parts.peer.command = command;
  kernel().Charge(app_cost_);
  Result<SessionRef> sess = rpc_->Open(*this, parts);
  if (!sess.ok()) {
    ++calls_failed_;
    done(sess.status());
    return;
  }
  session_cache_[{server, command}] = *sess;
  outstanding_[sess->get()].push_back(std::move(done));
  Status pushed = (*sess)->Push(args);
  if (!pushed.ok()) {
    ++calls_failed_;
    RpcDone cb = std::move(outstanding_[sess->get()].back());
    outstanding_[sess->get()].pop_back();
    cb(pushed);
  }
}

Status RpcClient::DoDemux(Session* lls, Message& msg) {
  kernel().Charge(app_cost_);
  auto it = outstanding_.find(lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  RpcDone done = std::move(it->second.front());
  it->second.pop_front();
  ++calls_completed_;
  done(msg);
  return OkStatus();
}

void RpcClient::ExportGauges(const CounterEmit& emit) const {
  uint64_t outstanding = 0;
  for (const auto& [sess, queue] : outstanding_) {
    (void)sess;
    outstanding += queue.size();
  }
  emit("outstanding_calls", outstanding);
}

void RpcClient::SessionError(Session& lls, Status error) {
  auto it = outstanding_.find(&lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return;
  }
  RpcDone done = std::move(it->second.front());
  it->second.pop_front();
  ++calls_failed_;
  done(error);
}

Status RpcClient::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetMaxSendSize) {
    args.u64 = max_send_size_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// RpcServer
// ---------------------------------------------------------------------------

RpcServer::RpcServer(Kernel& kernel, Protocol* rpc, std::string name)
    : Protocol(kernel, std::move(name), {rpc}), rpc_(rpc) {}

Status RpcServer::Export(uint16_t command, Handler handler) {
  handlers_[command] = std::move(handler);
  ParticipantSet parts;
  if (command != kAny) {
    parts.local.command = command;
  }
  return rpc_->OpenEnable(*this, parts);
}

Status RpcServer::ExportParts(const ParticipantSet& parts, Handler handler) {
  handlers_[parts.local.command.value_or(kAny)] = std::move(handler);
  return rpc_->OpenEnable(*this, parts);
}

RpcServer::Handler RpcServer::HandlerFor(uint16_t command) {
  if (auto it = handlers_.find(command); it != handlers_.end()) {
    return it->second;
  }
  if (auto it = handlers_.find(kAny); it != handlers_.end()) {
    return it->second;
  }
  return nullptr;
}

Status RpcServer::DoDemux(Session* lls, Message& msg) {
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  uint16_t command = 0;
  ControlArgs args;
  if (lls->Control(ControlOp::kGetLastCommand, args).ok()) {
    command = static_cast<uint16_t>(args.u64);
  }
  Handler handler = HandlerFor(command);
  if (handler == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  // Service time runs from here to the reply entering the stack; reading the
  // task clock charges nothing, so measured runs stay bit-identical.
  const SimTime service_start = kernel().now();
  // Deadline-aware shedding: a request that expired while queued (behind the
  // CPU backlog or the channel semaphore) is answered with a cheap error
  // reply instead of being charged execution -- the client has already given
  // up on it, so executing it only steals capacity from live work.
  if (msg.deadline() != 0 && service_start >= msg.deadline()) {
    ++deadline_sheds_;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kShed, name(), service_start, 0, &msg, lls, 0,
                      StatusCode::kDeadlineExceeded);
    }
    Message reply;
    reply.set_wire_error(static_cast<uint8_t>(StatusCode::kDeadlineExceeded));
    return lls->Push(reply);
  }
  // Admission control: when the delayed-service window is full, or this task
  // is running `max_backlog_` behind its arrival event (the CPU run queue has
  // grown past the bound), fast-reject with BUSY before charging app cost or
  // running the handler. The reply still pays the normal send path -- the
  // point is to skip the expensive part, not to be free.
  const SimTime backlog = service_start - kernel().events().now();
  if ((max_inflight_ != 0 && inflight_ >= max_inflight_) ||
      (max_backlog_ != 0 && backlog > max_backlog_)) {
    ++busy_rejects_;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kReject, name(), service_start, 0, &msg, lls,
                      static_cast<uint64_t>(backlog), StatusCode::kBusy);
    }
    Message reply;
    reply.set_wire_error(static_cast<uint8_t>(StatusCode::kBusy));
    return lls->Push(reply);
  }
  kernel().Charge(app_cost_);
  ++requests_served_;
  if (service_delay_ > 0) {
    // Slow service: reply later, from a fresh task.
    SessionRef reply_to = lls->Ref();
    Message request = msg;
    ++inflight_;
    kernel().SetTimer(service_delay_,
                      [this, handler, reply_to, request, command, service_start]() mutable {
                        --inflight_;
                        Message reply = handler(command, request);
                        (void)reply_to->Push(reply);
                        service_time_.Record(kernel().now() - service_start);
                      });
    return OkStatus();
  }
  Message reply = handler(command, msg);
  const Status pushed = lls->Push(reply);
  service_time_.Record(kernel().now() - service_start);
  return pushed;
}

Status RpcServer::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetMaxSendSize) {
    args.u64 = UINT64_MAX;
    return OkStatus();
  }
  if (op == ControlOp::kSetAdmissionLimit) {
    set_admission_limit(static_cast<uint32_t>(args.u64 >> 32),
                        Usec(args.u64 & 0xFFFFFFFF));
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// EchoAnchor
// ---------------------------------------------------------------------------

EchoAnchor::EchoAnchor(Kernel& kernel, bool server_role, std::string name)
    : Protocol(kernel, std::move(name), {}), server_role_(server_role) {}

void EchoAnchor::Send(const SessionRef& sess, Message msg, RpcDone done) {
  kernel().Charge(app_cost_);
  outstanding_[sess.get()].push_back(std::move(done));
  Status pushed = sess->Push(msg);
  if (!pushed.ok()) {
    RpcDone cb = std::move(outstanding_[sess.get()].back());
    outstanding_[sess.get()].pop_back();
    cb(pushed);
  }
}

Status EchoAnchor::DoDemux(Session* lls, Message& msg) {
  kernel().Charge(app_cost_);
  if (server_role_) {
    if (lls == nullptr) {
      return ErrStatus(StatusCode::kInvalidArgument);
    }
    ++echoes_;
    Message reply = echo_limit_ == SIZE_MAX ? msg : msg.Slice(0, echo_limit_);
    return lls->Push(reply);
  }
  auto it = outstanding_.find(lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  RpcDone done = std::move(it->second.front());
  it->second.pop_front();
  done(msg);
  return OkStatus();
}

void EchoAnchor::ExportGauges(const CounterEmit& emit) const {
  if (server_role_) {
    return;
  }
  uint64_t outstanding = 0;
  for (const auto& [sess, queue] : outstanding_) {
    (void)sess;
    outstanding += queue.size();
  }
  emit("outstanding_sends", outstanding);
}

void EchoAnchor::SessionError(Session& lls, Status error) {
  auto it = outstanding_.find(&lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return;
  }
  RpcDone done = std::move(it->second.front());
  it->second.pop_front();
  done(error);
}

Status EchoAnchor::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetMaxSendSize) {
    args.u64 = max_send_size_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
