// Tests for CHANNEL (at-most-once request/reply) and SELECT (channel pool,
// command mapping), plus the forwarding selector and RDP.

#include "src/rpc/channel.h"

#include <gtest/gtest.h>

#include "src/rpc/rdp.h"
#include "src/rpc/select.h"
#include "src/rpc/select_fwd.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

RpcFixture::Builder LayeredVip() {
  return [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
}

// --- CHANNEL semantics (via the full layered stack) ---------------------------

struct ChannelFixture : ::testing::Test {
  void SetUp() override { fix.Build(LayeredVip()); }
  RpcFixture fix;
};

TEST_F(ChannelFixture, NullCallRoundTrips) {
  Result<Message> r = fix.CallSync(7, Message());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->length(), 0u);
  EXPECT_EQ(fix.cstack.channel->stats().calls_sent, 1u);
  EXPECT_EQ(fix.sstack.channel->stats().requests_executed, 1u);
}

TEST_F(ChannelFixture, PayloadEchoes) {
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(300, 1)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(300, 1));
}

TEST_F(ChannelFixture, LargeArgsAndResultsFragment) {
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(16384, 2)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(16384, 2));
  EXPECT_GE(fix.cstack.fragment->stats().fragments_sent, 16u);
  EXPECT_GE(fix.sstack.fragment->stats().fragments_sent, 16u);  // the echo back
}

TEST_F(ChannelFixture, LostRequestRetransmitted) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(fix.cstack.channel->stats().retransmissions, 1u);
}

TEST_F(ChannelFixture, LostReplyNotReExecuted) {
  // The reply is dropped; the client retransmits; the server answers from its
  // SAVED reply without re-executing -- at-most-once.
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 1 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fix.sstack.channel->stats().requests_executed, 1u);
  EXPECT_EQ(fix.server->requests_served(), 1u);  // the handler ran ONCE
  EXPECT_GE(fix.sstack.channel->stats().duplicates_suppressed, 1u);
  EXPECT_GE(fix.sstack.channel->stats().replies_resent, 1u);
}

TEST_F(ChannelFixture, DuplicatedRequestNotReExecuted) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fix.server->requests_served(), 1u);
  EXPECT_GE(fix.sstack.channel->stats().duplicates_suppressed, 1u);
}

TEST_F(ChannelFixture, SlowServerElicitsExplicitAck) {
  // The server takes longer than the retransmit timeout: the retransmission
  // (with PLEASE_ACK) gets an explicit ack, the client keeps waiting, and the
  // call completes without re-execution.
  RunIn(*fix.sh->kernel, [&] { fix.server->set_service_delay(Msec(180)); });
  Result<Message> r = fix.CallSync(7, Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(fix.sstack.channel->stats().explicit_acks_sent, 1u);
  EXPECT_GE(fix.cstack.channel->stats().explicit_acks_received, 1u);
  EXPECT_EQ(fix.server->requests_served(), 1u);
}

TEST_F(ChannelFixture, DeadServerFailsAfterRetries) {
  fix.net->segment(0).set_drop_rate(1.0);
  Result<Message> r = fix.CallSync(7, Message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(fix.cstack.channel->stats().call_failures, 1u);
  // The channel was released: a later call (with the network healed) works.
  fix.net->segment(0).set_drop_rate(0.0);
  Result<Message> r2 = fix.CallSync(7, Message());
  EXPECT_TRUE(r2.ok());
}

TEST_F(ChannelFixture, ImplicitAckDiscardsSavedReply) {
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  // Two calls on (potentially) the same channel: the second request
  // implicitly acknowledged the first reply. No explicit acks were needed.
  EXPECT_EQ(fix.sstack.channel->stats().explicit_acks_sent, 0u);
  EXPECT_EQ(fix.cstack.channel->stats().retransmissions, 0u);
}

TEST_F(ChannelFixture, ClientCrashRestartResetsServerChannelState) {
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  // A real crash/restart cycle: the client loses its protocol graph, comes
  // back with a new boot id, and its sequence numbers restart from scratch.
  fix.net->CrashHost("client");
  EXPECT_FALSE(fix.ch->kernel->is_up());
  fix.net->RestartHost("client");
  EXPECT_TRUE(fix.ch->kernel->is_up());
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  EXPECT_GE(fix.sstack.channel->stats().boot_resets, 1u);
}

// --- SELECT -------------------------------------------------------------------

struct SelectFixture : ::testing::Test {
  void SetUp() override { fix.Build(LayeredVip(), /*export_echo=*/false); }
  RpcFixture fix;
};

TEST_F(SelectFixture, CommandsRouteToDistinctHandlers) {
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(fix.server
                    ->Export(1, [](uint16_t, Message&) {
                      return Message::FromBytes(PatternBytes(4, 1));
                    })
                    .ok());
    EXPECT_TRUE(fix.server
                    ->Export(2, [](uint16_t, Message&) {
                      return Message::FromBytes(PatternBytes(4, 2));
                    })
                    .ok());
  });
  Result<Message> r1 = fix.CallSync(1, Message());
  Result<Message> r2 = fix.CallSync(2, Message());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->Flatten(), PatternBytes(4, 1));
  EXPECT_EQ(r2->Flatten(), PatternBytes(4, 2));
}

TEST_F(SelectFixture, UnknownCommandFails) {
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(fix.server->Export(1, [](uint16_t, Message& m) { return m; }).ok());
  });
  Result<Message> r = fix.CallSync(99, Message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(fix.sstack.select->stats().no_such_command, 1u);
}

TEST_F(SelectFixture, ChannelPoolLimitsConcurrency) {
  // Issue more concurrent calls than channels; all must complete, and some
  // must have blocked waiting for a free channel.
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(fix.server->Export(RpcServer::kAny, [](uint16_t, Message& m) { return m; }).ok());
    fix.server->set_service_delay(Msec(5));  // keep channels busy a while
  });
  const int kCalls = SelectProtocol::kNumChannels + 4;
  int completed = 0;
  RunIn(*fix.ch->kernel, [&] {
    for (int i = 0; i < kCalls; ++i) {
      fix.client->Call(fix.server_addr(), 7, Message::FromBytes(PatternBytes(8)),
                       [&](Result<Message> r) {
                         EXPECT_TRUE(r.ok());
                         ++completed;
                       });
    }
  });
  fix.net->RunAll();
  EXPECT_EQ(completed, kCalls);
  EXPECT_GE(fix.cstack.select->stats().blocked_on_channel, 4u);
  EXPECT_EQ(fix.cstack.select->free_channels(fix.server_addr()), SelectProtocol::kNumChannels);
}

TEST_F(SelectFixture, SessionsAreCachedAcrossCalls) {
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(fix.server->Export(RpcServer::kAny, [](uint16_t, Message& m) { return m; }).ok());
  });
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  const SimTime busy_after_first = fix.ch->kernel->cpu().total_busy();
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  const SimTime second_call_cost = fix.ch->kernel->cpu().total_busy() - busy_after_first;
  ASSERT_TRUE(fix.CallSync(7, Message()).ok());
  const SimTime third_call_cost =
      fix.ch->kernel->cpu().total_busy() - busy_after_first - second_call_cost;
  // Steady state: identical cost, no session creation.
  EXPECT_EQ(second_call_cost, third_call_cost);
}

// --- SELECT_FWD ----------------------------------------------------------------

TEST(SelectFwdTest, CallIsForwardedTransparently) {
  // Three hosts: client calls "frontend"; command 5 is forwarded to "backend".
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));    // frontend
  net->AddHost("backend", seg, IpAddr(10, 0, 1, 3));
  net->WarmArp();
  auto& ch = net->host("client");
  auto& fh = net->host("server");
  auto& bh = net->host("backend");
  RpcStack cs = BuildLRpcForwarding(ch);
  RpcStack fs = BuildLRpcForwarding(fh);
  RpcStack bs = BuildLRpcForwarding(bh);

  RpcClient* client = nullptr;
  RunIn(*ch.kernel, [&] { client = &ch.kernel->Emplace<RpcClient>(*ch.kernel, cs.top); });
  RunIn(*fh.kernel, [&] {
    auto& server = fh.kernel->Emplace<RpcServer>(*fh.kernel, fs.top);
    EXPECT_TRUE(server.Export(RpcServer::kAny, [](uint16_t, Message&) {
      return Message::FromBytes(PatternBytes(4, 0xF0));  // frontend's answer
    }).ok());
    static_cast<SelectFwdProtocol*>(fs.top)->AddForwardingRule(5, IpAddr(10, 0, 1, 3));
  });
  RunIn(*bh.kernel, [&] {
    auto& server = bh.kernel->Emplace<RpcServer>(*bh.kernel, bs.top);
    EXPECT_TRUE(server.Export(RpcServer::kAny, [](uint16_t, Message&) {
      return Message::FromBytes(PatternBytes(4, 0xB0));  // backend's answer
    }).ok());
  });

  Result<Message> forwarded = ErrStatus(StatusCode::kError);
  Result<Message> direct = ErrStatus(StatusCode::kError);
  RunIn(*ch.kernel, [&] {
    client->Call(IpAddr(10, 0, 1, 2), 5, Message(), [&](Result<Message> r) { forwarded = r; });
    client->Call(IpAddr(10, 0, 1, 2), 6, Message(), [&](Result<Message> r) { direct = r; });
  });
  net->RunAll();
  ASSERT_TRUE(forwarded.ok());
  EXPECT_EQ(forwarded->Flatten(), PatternBytes(4, 0xB0));  // served by backend
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->Flatten(), PatternBytes(4, 0xF0));  // served by frontend
  auto* ffwd = static_cast<SelectFwdProtocol*>(fs.top);
  EXPECT_EQ(ffwd->forwards_sent(), 1u);
  auto* cfwd = static_cast<SelectFwdProtocol*>(cs.top);
  EXPECT_EQ(cfwd->forwards_followed(), 1u);
}

// --- RDP -----------------------------------------------------------------------

TEST(RdpTest, ReliableDatagramsDeliverExactlyOnceUnderLoss) {
  auto net = Internet::TwoHosts();
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  RpcStack cs = BuildPartial(ch, 2);  // CHANNEL-FRAGMENT-VIP
  RpcStack ss = BuildPartial(sh, 2);
  RdpProtocol* crdp = nullptr;
  RdpProtocol* srdp = nullptr;
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
  RunIn(*ch.kernel, [&] {
    crdp = &ch.kernel->Emplace<RdpProtocol>(*ch.kernel, cs.channel);
    ca = &ch.kernel->Emplace<TestAnchor>(*ch.kernel);
  });
  RunIn(*sh.kernel, [&] {
    srdp = &sh.kernel->Emplace<RdpProtocol>(*sh.kernel, ss.channel);
    sa = &sh.kernel->Emplace<TestAnchor>(*sh.kernel);
    ParticipantSet enable;
    EXPECT_TRUE(srdp->OpenEnable(*sa, enable).ok());
  });
  // Drop some frames; CHANNEL below recovers; each datagram arrives once.
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return (index % 5 == 1) ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  SessionRef sess;
  RunIn(*ch.kernel, [&] {
    ParticipantSet parts;
    parts.peer.host = sh.kernel->ip_addr();
    Result<SessionRef> r = crdp->Open(*ca, parts);
    ASSERT_TRUE(r.ok());
    sess = *r;
    for (int i = 0; i < 5; ++i) {
      Message msg = Message::FromBytes(PatternBytes(200, static_cast<uint8_t>(i)));
      EXPECT_TRUE(sess->Push(msg).ok());
    }
  });
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sa->received[i].size(), 200u);
  }
  EXPECT_EQ(srdp->stats().datagrams_delivered, 5u);  // exactly once each
}

}  // namespace
}  // namespace xk
