
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/arp.cc" "src/CMakeFiles/xk_proto.dir/proto/arp.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/arp.cc.o.d"
  "/root/repo/src/proto/eth.cc" "src/CMakeFiles/xk_proto.dir/proto/eth.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/eth.cc.o.d"
  "/root/repo/src/proto/icmp.cc" "src/CMakeFiles/xk_proto.dir/proto/icmp.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/icmp.cc.o.d"
  "/root/repo/src/proto/ip.cc" "src/CMakeFiles/xk_proto.dir/proto/ip.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/ip.cc.o.d"
  "/root/repo/src/proto/topology.cc" "src/CMakeFiles/xk_proto.dir/proto/topology.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/topology.cc.o.d"
  "/root/repo/src/proto/udp.cc" "src/CMakeFiles/xk_proto.dir/proto/udp.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/udp.cc.o.d"
  "/root/repo/src/proto/vip.cc" "src/CMakeFiles/xk_proto.dir/proto/vip.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/vip.cc.o.d"
  "/root/repo/src/proto/vip_size.cc" "src/CMakeFiles/xk_proto.dir/proto/vip_size.cc.o" "gcc" "src/CMakeFiles/xk_proto.dir/proto/vip_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xk_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
