// Deterministic discrete-event core.
//
// The EventQueue is the single clock of a simulation: every kernel, link, and
// timer in one experiment shares one queue. Events scheduled for the same
// instant fire in schedule order (a monotonically increasing sequence number
// breaks ties), which makes every run bit-for-bit reproducible.
//
// Host-side representation (invisible to simulated time): closures live in a
// slab of reusable slots, cancellation is a generation-counter bump, and the
// ready order is kept in a 4-ary min-heap of 24-byte POD entries. Scheduling,
// firing, and cancelling therefore allocate nothing in steady state -- the
// slab and the heap reach a high-water mark and stay there. This matters
// because the dominant pattern is a retransmit timer (CHANNEL, FRAGMENT, RDP)
// that is set per message and cancelled when the reply beats it: a cancel is
// one generation bump, and the stale heap entry is skipped when it surfaces
// (or swept out wholesale if the heap becomes mostly dead).
//
// Handles are {slot index, generation} pairs into the queue's slab; they must
// not outlive the EventQueue they came from (in this repository queues always
// outlive the kernels holding timers on them).
//
// Parallel engine support (src/sim/parallel.h): a queue can carry a Listener
// that observes schedules and firings, a defer horizon that parks
// far-future events outside the heap until the engine commits them in its
// canonical order, and an epoch-window run loop. All of it is dormant in
// serial use -- the hot paths gain only a null-pointer check and an
// always-false comparison against kNoHorizon.

#ifndef XK_SRC_SIM_EVENT_QUEUE_H_
#define XK_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/core/types.h"

namespace xk {

class EventQueue;

// Move-only callable holding an event closure. Closures up to kInlineSize
// bytes are stored inside the object itself, so scheduling one costs no heap
// traffic -- the slab slot below IS the storage. Larger closures (rare; none
// on the simulation hot path) fall back to a single allocation. Unlike
// std::function the wrapped callable may itself be move-only, which lets
// timers own their captured state instead of sharing it.
class EventFn {
 public:
  EventFn() = default;
  /*implicit*/ EventFn(std::nullptr_t) {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> && std::is_invocable_v<D&>>>
  /*implicit*/ EventFn(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      new (static_cast<void*>(buf_)) (D*)(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(buf_); }

 private:
  // Sized so every closure the simulator schedules in steady state (timer
  // bodies wrapping a protocol callback, frame deliveries carrying a
  // shared_ptr) fits inline; with the ops pointer the object is one 64-byte
  // line.
  static constexpr size_t kInlineSize = 56;

  struct Ops {
    void (*invoke)(void* p);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* p);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(static_cast<D*>(src));
        new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(static_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        new (dst) (D*)(*std::launder(static_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(static_cast<D**>(p)); },
  };

  void MoveFrom(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

// Handle used to cancel a pending event. Copies share fate: cancelling or
// firing the event makes every copy report !pending().
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  inline bool pending() const;

  // Cancels the event if still pending. Returns true if it was pending.
  inline bool Cancel();

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, uint32_t slot, uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t gen_ = 0;
};

class EventQueue {
 public:
  // Observer used by the parallel engine. OnSchedule fires for every
  // ScheduleAt (committed or deferred); OnFireBegin/OnFireEnd bracket each
  // event fired by RunEpochWindow (the serial Run/RunUntil loops never
  // consult the listener).
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnSchedule(SimTime at, uint32_t slot, uint32_t gen) = 0;
    virtual void OnFireBegin(SimTime at, uint32_t slot, uint32_t gen) = 0;
    virtual void OnFireEnd() = 0;
  };

  // Zero-cost sampling hook (src/stat/timeseries.h). BeforeFire is invoked
  // with the firing time of each event just before the event executes, in
  // all three run loops, so a sampler can emit samples for every boundary
  // <= that time knowing state reflects exactly the events that fired
  // earlier. The probe must only read simulation state -- it must never
  // schedule, cancel, charge, or touch an Rng, or determinism breaks.
  class StatProbe {
   public:
    virtual ~StatProbe() = default;
    virtual void BeforeFire(SimTime at) = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside Run()/RunUntil().
  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to now()).
  EventHandle ScheduleAt(SimTime at, EventFn fn);

  // Schedules `fn` to run `delay` from now.
  EventHandle ScheduleIn(SimTime delay, EventFn fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue is empty or `max_events` have fired.
  // Returns the number of events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with firing time <= deadline. The clock is left at
  // min(deadline, time of last event) -- callers that want the clock pinned
  // to the deadline should use AdvanceTo afterwards.
  size_t RunUntil(SimTime deadline);

  // Moves the clock forward without running anything (asserts no earlier
  // pending events exist; used by test harnesses between phases).
  void AdvanceTo(SimTime t);

  // Live (scheduled, not yet fired or cancelled) events. Exact: a Cancel()
  // takes effect immediately.
  bool empty() const { return live_count_ == 0; }
  size_t pending_events() const { return live_count_; }

  // Host-side counter of events fired over this queue's lifetime (benchmark
  // instrumentation; has no effect on simulated time).
  uint64_t fired_total() const { return fired_total_; }

  // Counts `n` additional logical firings. A batched frame delivery fires as
  // one heap event but reports one firing per member, so event counts match
  // the unbatched schedule exactly (the engine identity cross-check compares
  // them).
  void AddExtraFired(uint64_t n) { fired_total_ += n; }

  // Boot ids for kernels constructed over this queue. Per-queue (not
  // process-global) so a simulation's wire bytes depend only on its own
  // allocation order -- concurrent simulations in other threads can't
  // perturb them.
  uint32_t AllocateBootId() { return next_boot_id_++; }

  // --- parallel-engine hooks (see src/sim/parallel.h) ------------------------
  // None of these are used by serial simulations.

  void set_listener(Listener* listener) { listener_ = listener; }

  // Installs (or with null, removes) the sampling probe. The probe is
  // consulted on every fired event; it must outlive the queue or be removed
  // first.
  void set_stat_probe(StatProbe* probe) { stat_probe_ = probe; }
  StatProbe* stat_probe() const { return stat_probe_; }

  // Schedules at or after the horizon are parked outside the heap (slot
  // acquired, closure stored) until CommitDeferred; the engine commits them
  // at an epoch barrier so heap insertion order matches its canonical order.
  static constexpr SimTime kNoHorizon = kSimTimeNever;
  void set_defer_horizon(SimTime horizon) { defer_horizon_ = horizon; }
  SimTime defer_horizon() const { return defer_horizon_; }

  // Moves a parked event into the heap. No-op if it was cancelled meanwhile,
  // or if the slot was never parked (the engine replays every capture's
  // schedule through here; in-window schedules were pushed directly).
  void CommitDeferred(uint32_t slot, uint32_t gen, SimTime at);

  // Earliest still-parked (deferred, not yet committed or cancelled) event
  // time, kSimTimeNever if none. The engine caps an LP's epoch window here:
  // a parked event only enters the heap when its scheduling event replays at
  // a barrier, so the LP must not fire past it in the meantime.
  SimTime MinDeferredAt();

  // Earliest pending committed event time; false if the heap is drained.
  bool NextEventTime(SimTime* at);

  // Runs up to `max_events` events with firing time < end_exclusive,
  // reporting each to the listener. The clock is left at the last fired
  // event. Returns the number of events fired.
  size_t RunEpochWindow(SimTime end_exclusive, size_t max_events = SIZE_MAX);

  // Seeds the boot-id counter so per-host queues reproduce the allocation
  // order a shared queue would have used (kernel creation order).
  void set_next_boot_id(uint32_t id) { next_boot_id_ = id; }

 private:
  friend class EventHandle;
  friend class ParallelEngine;  // liveness checks against its canonical order

  static constexpr uint32_t kNil = UINT32_MAX;

  // One slab slot. `generation` advances every time the slot's event ends
  // (fires or is cancelled), so stale handles and stale heap entries are
  // recognized by mismatch. While free, `next_free` links the freelist.
  struct Slot {
    EventFn fn;
    uint32_t generation = 0;
    uint32_t next_free = kNil;
    bool deferred = false;  // parked past the defer horizon, not in the heap
  };

  // Heap entry: plain data, cheap to sift. The closure stays in the slab.
  struct Entry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  static bool Before(const Entry& a, const Entry& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  }

  uint32_t AcquireSlot();
  void RetireSlot(uint32_t index);
  bool SlotLive(uint32_t index, uint32_t gen) const {
    return index < slots_.size() && slots_[index].generation == gen;
  }
  bool CancelInternal(uint32_t index, uint32_t gen);

  void HeapPush(Entry e);
  void HeapPopTop();
  void SiftDown(size_t i);
  // Drops dead heap entries at the top; returns false if the heap drained.
  bool SkimDead();
  void MaybeSweepDead();

  // Pops the next live event, transferring its closure to `fn`.
  bool PopNext(Entry& out, EventFn& fn);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  uint64_t fired_total_ = 0;
  uint32_t next_boot_id_ = 1000;
  SimTime defer_horizon_ = kNoHorizon;
  Listener* listener_ = nullptr;
  StatProbe* stat_probe_ = nullptr;

  std::vector<Slot> slots_;
  uint32_t free_head_ = kNil;
  std::vector<Entry> heap_;
  size_t dead_in_heap_ = 0;  // cancelled entries not yet skipped/swept

  // Min-heap (by `at`) over parked events, with lazy deletion: entries whose
  // slot was committed or cancelled are skimmed off in MinDeferredAt().
  std::vector<Entry> deferred_heap_;
};

inline bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->SlotLive(slot_, gen_);
}

inline bool EventHandle::Cancel() {
  return queue_ != nullptr && queue_->CancelInternal(slot_, gen_);
}

}  // namespace xk

#endif  // XK_SRC_SIM_EVENT_QUEUE_H_
