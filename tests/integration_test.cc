// Cross-module integration tests: full RPC stacks over routed topologies,
// mixed-size traffic through the dynamic (Section 4.3) configuration, the
// layered workload drivers, and Table III stack composition invariants.

#include <gtest/gtest.h>

#include "src/app/workload.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

// --- RPC across a router --------------------------------------------------------

class RoutedRpcTest : public ::testing::TestWithParam<int> {};

TEST_P(RoutedRpcTest, CallsWorkAcrossSegments) {
  RpcFixture fix(Internet::TwoSegments());
  switch (GetParam()) {
    case 0:
      fix.Build([](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
      break;
    case 1:
      fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
      break;
    case 2:
      fix.Build([](HostStack& h) { return BuildLRpcDynamic(h); });
      break;
  }
  Result<Message> small = fix.CallSync(3, Message::FromBytes(PatternBytes(64, 1)));
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->Flatten(), PatternBytes(64, 1));
  Result<Message> big = fix.CallSync(3, Message::FromBytes(PatternBytes(12000, 2)));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->Flatten(), PatternBytes(12000, 2));
  // Everything went through the router: the client could not resolve the
  // server on its own wire, so VIP (or VIP_ADDR) picked IP.
  EXPECT_GT(fix.net->host("router").ip->stats().forwards, 2u);
}

std::string RoutedStackName(const ::testing::TestParamInfo<int>& param_info) {
  static const char* kNames[] = {"MRpcVip", "LRpcVip", "LRpcDynamic"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(Stacks, RoutedRpcTest, ::testing::Values(0, 1, 2), RoutedStackName);

// --- Section 4.3 configuration under mixed traffic --------------------------------

struct DynamicStackTest : ::testing::Test {
  void SetUp() override { fix.Build([](HostStack& h) { return BuildLRpcDynamic(h); }); }
  RpcFixture fix;
};

TEST_F(DynamicStackTest, SmallCallsBypassFragment) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(100, uint8_t(i)))).ok());
  }
  // VIP_SIZE routed everything down the direct path: FRAGMENT idle.
  EXPECT_EQ(fix.cstack.fragment->stats().messages_sent, 0u);
  EXPECT_EQ(fix.sstack.fragment->stats().messages_sent, 0u);
}

TEST_F(DynamicStackTest, LargeCallsUseFragment) {
  Result<Message> r = fix.CallSync(1, Message::FromBytes(PatternBytes(9000, 7)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(9000, 7));
  EXPECT_GE(fix.cstack.fragment->stats().messages_sent, 1u);  // the request
  EXPECT_GE(fix.sstack.fragment->stats().messages_sent, 1u);  // the echo back
}

TEST_F(DynamicStackTest, MixedTrafficSplitsCorrectly) {
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(50, 1))).ok());
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(8000, 2))).ok());
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(60, 3))).ok());
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(16000, 4))).ok());
  // Exactly the two large requests (and their echoes) used FRAGMENT.
  EXPECT_EQ(fix.cstack.fragment->stats().messages_sent, 2u);
  EXPECT_EQ(fix.sstack.fragment->stats().messages_sent, 2u);
}

TEST_F(DynamicStackTest, RecoversFromLossOnBothPaths) {
  fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return (index == 0 || index == 6) ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(50, 1))).ok());
  ASSERT_TRUE(fix.CallSync(1, Message::FromBytes(PatternBytes(8000, 2))).ok());
}

// --- workload drivers --------------------------------------------------------------

TEST(WorkloadTest, LatencyIsSteadyStatePerCall) {
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
  };
  LatencyResult a = RpcWorkload::MeasureLatency(*fix.net, *fix.ch->kernel, call, 8);
  LatencyResult b = RpcWorkload::MeasureLatency(*fix.net, *fix.ch->kernel, call, 64);
  EXPECT_EQ(a.completed, 8);
  EXPECT_EQ(b.completed, 64);
  EXPECT_EQ(a.failed, 0);
  // The 8-call average includes the cold first call; the 64-call run that
  // follows is pure steady state and must be cheaper per call.
  EXPECT_GT(a.per_call, b.per_call);
  EXPECT_GT(b.per_call, Msec(1));
  EXPECT_LT(b.per_call, Msec(3));
}

TEST(WorkloadTest, ThroughputAccountsCpuAndBytes) {
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); }, false);
  RunIn(*fix.sh->kernel, [&] {
    EXPECT_TRUE(
        fix.server->Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); }).ok());
  });
  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
  };
  ThroughputResult t = RpcWorkload::MeasureThroughput(*fix.net, *fix.ch->kernel,
                                                      *fix.sh->kernel, call, 16 * 1024, 8);
  EXPECT_EQ(t.completed, 8);
  EXPECT_GT(t.kbytes_per_sec, 500);
  EXPECT_LT(t.kbytes_per_sec, 1200);  // can't beat the wire
  EXPECT_GT(t.client_cpu, 0);
  EXPECT_GT(t.server_cpu, 0);
}

// --- composition invariants ---------------------------------------------------------

TEST(CompositionTest, SubstitutabilityAcrossDeliveries) {
  // The same M_RPC code runs over three different delivery protocols and
  // yields byte-identical results -- the uniform-interface claim.
  for (Delivery d : {Delivery::kEth, Delivery::kIp, Delivery::kVip}) {
    RpcFixture fix;
    fix.Build([d](HostStack& h) { return BuildMRpc(h, d); });
    Result<Message> r = fix.CallSync(9, Message::FromBytes(PatternBytes(5000, 9)));
    ASSERT_TRUE(r.ok()) << static_cast<int>(d);
    EXPECT_EQ(r->Flatten(), PatternBytes(5000, 9)) << static_cast<int>(d);
  }
}

TEST(CompositionTest, MultipleClientsOfFragmentCoexist) {
  // CHANNEL (via L_RPC) and a raw test client share one FRAGMENT instance,
  // demultiplexed by FRAGMENT's own protocol number field -- the reason the
  // layered headers carry one.
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
  RunIn(*fix.ch->kernel, [&] { ca = &fix.ch->kernel->Emplace<TestAnchor>(*fix.ch->kernel); });
  RunIn(*fix.sh->kernel, [&] {
    sa = &fix.sh->kernel->Emplace<TestAnchor>(*fix.sh->kernel);
    ParticipantSet enable;
    enable.local.rel_proto = kRelProtoRawTest;
    EXPECT_TRUE(fix.sstack.fragment->OpenEnable(*sa, enable).ok());
  });
  // Raw bulk message and an RPC, interleaved over the same FRAGMENT.
  RunIn(*fix.ch->kernel, [&] {
    ParticipantSet parts;
    parts.peer.host = fix.server_addr();
    parts.local.rel_proto = kRelProtoRawTest;
    Result<SessionRef> sess = fix.cstack.fragment->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    Message bulk = Message::FromBytes(PatternBytes(5000, 5));
    EXPECT_TRUE((*sess)->Push(bulk).ok());
  });
  Result<Message> rpc = fix.CallSync(2, Message::FromBytes(PatternBytes(300, 2)));
  ASSERT_TRUE(rpc.ok());
  fix.net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(5000, 5));
}

TEST(CompositionTest, ControlOpsTraverseTheWholeStack) {
  // kGetPeerHostEth asked of a CHANNEL session must travel down through
  // FRAGMENT and VIP to the Ethernet level that knows the answer.
  RpcFixture fix;
  fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  ASSERT_TRUE(fix.CallSync(1, Message()).ok());
  RunIn(*fix.ch->kernel, [&] {
    ParticipantSet parts;
    parts.peer.host = fix.server_addr();
    parts.local.channel = 0;
    parts.local.rel_proto = kRelProtoSelect;
    Result<SessionRef> chan = fix.cstack.channel->Open(*fix.client, parts);
    ASSERT_TRUE(chan.ok());
    ControlArgs args;
    EXPECT_TRUE((*chan)->Control(ControlOp::kGetPeerHostEth, args).ok());
    EXPECT_EQ(args.eth, fix.sh->eth->addr());
  });
}

}  // namespace
}  // namespace xk
