#include "src/cluster/client.h"

#include "src/app/oracle.h"

namespace xk {

ClusterClient::ClusterClient(Kernel& kernel, Protocol* rpc, std::string name)
    : Protocol(kernel, std::move(name), {rpc}), rpc_(rpc) {}

void ClusterClient::Call(IpAddr service, uint16_t command, uint64_t id, Message args,
                         RpcDone done) {
  kernel().Charge(app_cost_);
  SessionRef sess;
  auto it = session_cache_.find({service, command});
  if (it != session_cache_.end()) {
    sess = it->second;
  } else {
    ParticipantSet parts;
    parts.peer.host = service;
    parts.peer.command = command;
    Result<SessionRef> r = rpc_->Open(*this, parts);
    if (!r.ok()) {
      ++calls_failed_;
      done(r.status());
      return;
    }
    sess = *r;
    session_cache_[{service, command}] = sess;
  }
  outstanding_[sess.get()][id] = std::move(done);
  Status pushed = sess->Push(args);
  if (!pushed.ok()) {
    // Synchronous failure (e.g. every replica down): nothing went out, so the
    // id is still ours to complete directly.
    auto oit = outstanding_.find(sess.get());
    if (oit != outstanding_.end()) {
      auto cit = oit->second.find(id);
      if (cit != oit->second.end()) {
        RpcDone cb = std::move(cit->second);
        oit->second.erase(cit);
        ++calls_failed_;
        cb(pushed);
      }
    }
  }
}

void ClusterClient::Evict(IpAddr service, uint16_t command) {
  auto it = session_cache_.find({service, command});
  if (it == session_cache_.end()) {
    return;
  }
  ControlArgs args;
  (void)it->second->Control(ControlOp::kFlushSessions, args);
  // Keep the outstanding_ entry: in-flight replies still demux through the
  // session object until they drain; only the cache forgets it.
  session_cache_.erase(it);
}

Status ClusterClient::DoDemux(Session* lls, Message& msg) {
  kernel().Charge(app_cost_);
  auto it = outstanding_.find(lls);
  if (it == outstanding_.end()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  const uint64_t id = AmoOracle::ExtractId(msg);
  auto cit = it->second.find(id);
  if (cit == it->second.end()) {
    // The reply beat us here after its call already failed (retransmit raced
    // a slow reply, or an error surfaced first). Count it; don't misdeliver.
    ++late_replies_;
    return OkStatus();
  }
  RpcDone done = std::move(cit->second);
  it->second.erase(cit);
  ++calls_completed_;
  done(msg);
  return OkStatus();
}

void ClusterClient::SessionError(Session& lls, Status error) {
  auto it = outstanding_.find(&lls);
  if (it == outstanding_.end() || it->second.empty()) {
    return;
  }
  // Errors carry no id; CHANNEL surfaces call failures in issue order, so the
  // oldest (smallest) outstanding id is the one that just died.
  auto cit = it->second.begin();
  RpcDone done = std::move(cit->second);
  it->second.erase(cit);
  ++calls_failed_;
  done(error);
}

void ClusterClient::ExportCounters(const CounterEmit& emit) const {
  Protocol::ExportCounters(emit);
  emit("calls_completed", calls_completed_);
  emit("calls_failed", calls_failed_);
  emit("late_replies", late_replies_);
}

void ClusterClient::ExportGauges(const CounterEmit& emit) const {
  uint64_t outstanding = 0;
  for (const auto& [sess, by_id] : outstanding_) {
    (void)sess;
    outstanding += by_id.size();
  }
  emit("outstanding_calls", outstanding);
}

Status ClusterClient::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetMaxSendSize) {
    args.u64 = max_send_size_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
