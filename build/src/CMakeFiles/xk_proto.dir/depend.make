# Empty dependencies file for xk_proto.
# This may be replaced when dependencies are built.
