// Control operations (paper, Section 2).
//
// "Both protocol and session objects support a control(opcode,buffer,length)
// operation ... used to read and set certain object-dependent parameters."
// The paper's Discussion notes that "a relatively small number of control
// operations is sufficient; i.e., on the order of two dozen" -- this is that
// set for our protocol suite.
//
// Instead of an untyped (buffer, length) pair we pass a small in/out struct;
// each opcode documents which slots it reads and writes.

#ifndef XK_SRC_CORE_CONTROL_H_
#define XK_SRC_CORE_CONTROL_H_

#include <cstdint>

#include "src/core/types.h"

namespace xk {

enum class ControlOp : uint8_t {
  // --- packet sizes ----------------------------------------------------------
  kGetMaxPacket,    // out u64: largest message the object can carry (MTU)
  kGetOptPacket,    // out u64: largest message carried without fragmentation
  kGetMaxSendSize,  // out u64: largest message a HIGH-level protocol will push
                    // (VIP asks its client this at open time; Section 3.1)

  // --- addresses -------------------------------------------------------------
  kGetMyHost,       // out ip
  kGetPeerHost,     // out ip
  kGetMyHostEth,    // out eth
  kGetPeerHostEth,  // out eth
  kGetMyProto,      // out u64: protocol number this session sends as
  kGetPeerProto,    // out u64
  kGetMyPort,       // out u64
  kGetPeerPort,     // out u64

  // --- resolution (ARP) -------------------------------------------------------
  kResolve,         // in ip, out eth: cache-only IP->Ethernet resolution
  kResolveTest,     // in ip, out u64(bool): is the host resolvable (cached)?
  kAddResolveEntry, // in ip + eth: install a static cache entry

  // --- routing ----------------------------------------------------------------
  kAddRoute,        // in ip (dest subnet) + ip2 (gateway)
  kSetDefaultGateway,  // in ip

  // --- RPC --------------------------------------------------------------------
  kGetBootId,          // out u64
  kGetLastCommand,     // out u64: command of the request a server session holds
  kGetFreeChannels,    // out u64: channels not currently in use
  kSetRetransmitLimit, // in u64
  kSetTimeoutBase,     // in u64: base retransmit timeout, nanoseconds
  kGetRetransmits,     // out u64: total retransmissions performed (stats)
  kGetDuplicatesDropped,  // out u64: duplicate requests suppressed (stats)
  kGetTimeouts,        // out u64: retransmit timer expirations (stats)
  kSetAdaptiveTimeout, // in u64(bool): SRTT/RTTVAR adaptive RTO instead of the
                       // paper's step-function timeout (default off)
  kFlushSessions,      // drop idle cached lower sessions (connection churn);
                       // out u64: sessions actually dropped

  // --- overload control --------------------------------------------------------
  kSetRetryBudget,     // in u64: packed burst<<32 | retry_ratio_ppm. Installs a
                       // per-stack retransmit token bucket on CHANNEL (0 ppm =
                       // disabled, the default). See README "Overload control".
  kGetRetryBudgetTokens,  // out u64: current bucket level in ppm (stats)
  kSetAdmissionLimit,  // in u64: packed max_inflight<<32 | max_backlog_us.
                       // Bounds the RpcServer run queue; 0/0 = unbounded.
  kSetConcurrencyCap,  // in u64: VPOOL per-replica outstanding-call cap
                       // (0 = uncapped, the default)
  kSetBreaker,         // in u64: packed min_volume<<32 | trip_ratio_ppm.
                       // VPOOL circuit breaker: trip a replica whose rejected/
                       // errored fraction over the window reaches the ratio
                       // once min_volume outcomes have been observed.
  kSetAvoidReplica,    // in u64: replica index the NEXT VPOOL pick must avoid
                       // (one-shot; consumed by the next push). Used by hedging.
  kGetLastPick,        // out u64: replica index chosen by the most recent push

  // --- load spreading (VPOOL) -------------------------------------------------
  kGetReplicasUp,      // out u64: replicas currently considered up

  // --- session lifecycle (idle eviction) ---------------------------------------
  // Handled generically by any session-owning protocol (UDP, CHANNEL, SELECT,
  // VIP, VPOOL); forwarded down the stack until one accepts, so each layer is
  // configured individually.
  kSetIdleTimeout,  // in u64: ns of inactivity before a session may be
                    // evicted (0 = disable; see Protocol idle-LRU)
  kGetIdleTimeout,  // out u64
  kEvictIdle,       // in u64: minimum idle ns (0 = every evictable session);
                    // out u64: sessions evicted now

  // --- auth (Sun RPC optional layers) -----------------------------------------
  kSetCredentials,  // in u64: packed uid<<32|gid
  kGetCredentials,  // out u64
};

// In/out argument block for Control. Opcodes document which slots they use;
// unused slots are ignored. This stands in for the x-kernel's
// (opcode, buffer, length) convention with type safety.
struct ControlArgs {
  uint64_t u64 = 0;
  IpAddr ip{};
  IpAddr ip2{};
  EthAddr eth{};
};

}  // namespace xk

#endif  // XK_SRC_CORE_CONTROL_H_
