// Parallel-engine tests: the conservative per-host engine must produce
// byte-identical observable output (traces, captures, counters, results) to
// the serial engine at any thread count, and must handle the epoch-boundary
// edge cases -- a delivery landing exactly on an epoch boundary, a
// duplicate-fault second copy crossing into the next epoch, and a degenerate
// zero-lookahead wire (serial fallback, no deadlock).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/app/oracle.h"
#include "src/app/workload.h"
#include "src/sim/fault.h"
#include "src/sim/parallel.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

// Every observable artifact of one run, for differential comparison.
struct RunArtifacts {
  std::string trace_jsonl;
  std::string pcap_jsonl;
  std::string counters_json;
  uint64_t events_fired = 0;
  SimTime per_call = 0;
  int completed = 0;
  int failed = 0;
};

// Builds a two-host L_RPC stack at `engine_threads`, runs a few calls of
// mixed sizes, and collects everything an engine run can emit.
RunArtifacts RunTwoHostScenario(int engine_threads, double drop_rate = 0.0) {
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(engine_threads);

  RunArtifacts out;
  {
    RpcFixture fix;
    EXPECT_EQ(fix.net->engine_threads(), engine_threads);
    fix.net->segment(0).set_drop_rate(drop_rate);
    fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
    for (int i = 0; i < 4; ++i) {
      Result<Message> r =
          fix.CallSync(1, Message::FromBytes(PatternBytes(i % 2 == 0 ? 64 : 4096, uint8_t(i))));
      if (r.ok()) {
        ++out.completed;
      } else {
        ++out.failed;
      }
    }
    CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
      fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
    };
    LatencyResult lat = RpcWorkload::MeasureLatency(*fix.net, *fix.ch->kernel, call, 10);
    out.per_call = lat.per_call;
    out.completed += lat.completed;
    out.failed += lat.failed;
    out.events_fired = fix.net->events_fired();
    out.counters_json = fix.net->CountersJson();
  }

  set_default_engine_threads(1);
  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.trace_jsonl = sink.ToJsonl();
  out.pcap_jsonl = capture.ToJsonl();
  if (getenv("XK_DUMP_TRACES") != nullptr) {
    (void)sink.WriteFile("/tmp/trace_" + std::to_string(engine_threads) + ".jsonl");
    (void)capture.WriteFile("/tmp/pcap_" + std::to_string(engine_threads) + ".jsonl");
  }
  return out;
}

void ExpectIdentical(const RunArtifacts& serial, const RunArtifacts& par, int threads) {
  SCOPED_TRACE("engine_threads=" + std::to_string(threads));
  EXPECT_EQ(serial.per_call, par.per_call);
  EXPECT_EQ(serial.completed, par.completed);
  EXPECT_EQ(serial.failed, par.failed);
  EXPECT_EQ(serial.events_fired, par.events_fired);
  EXPECT_EQ(serial.counters_json, par.counters_json);
  EXPECT_EQ(serial.trace_jsonl, par.trace_jsonl);
  EXPECT_EQ(serial.pcap_jsonl, par.pcap_jsonl);
}

TEST(ParallelEngineTest, TwoHostsBitIdenticalToSerial) {
  const RunArtifacts serial = RunTwoHostScenario(1);
  EXPECT_FALSE(serial.trace_jsonl.empty());
  EXPECT_FALSE(serial.pcap_jsonl.empty());
  EXPECT_EQ(serial.failed, 0);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunTwoHostScenario(threads), threads);
  }
}

TEST(ParallelEngineTest, RandomDropsBitIdenticalToSerial) {
  // The fault rng draws at ProcessTransmit time; canonical transmit ordering
  // must keep the draw sequence -- and therefore every retransmission --
  // identical to the serial engine.
  const RunArtifacts serial = RunTwoHostScenario(1, /*drop_rate=*/0.05);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunTwoHostScenario(threads, /*drop_rate=*/0.05), threads);
  }
}

// A chaos campaign: link faults plus a mid-run server crash and restart
// (heal), driven by the oracle-checked chaos workload. Every artifact --
// availability numbers, counters, traces, captures -- must be byte-identical
// across engine thread counts.
RunArtifacts RunCrashCampaignScenario(int engine_threads) {
  TraceSink sink;
  PacketCapture capture;
  TraceSink::set_thread_default(&sink);
  PacketCapture::set_thread_default(&capture);
  set_default_engine_threads(engine_threads);

  RunArtifacts out;
  {
    AmoOracle oracle;
    RpcFixture fix;
    EXPECT_EQ(fix.net->engine_threads(), engine_threads);
    RpcFixture::Builder builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
    fix.Build(builder, /*export_echo=*/false);
    RunIn(*fix.sh->kernel, [&] {
      EXPECT_TRUE(fix.server->Export(RpcServer::kAny, oracle.WrapEcho(fix.sh->kernel)).ok());
    });
    fix.net->set_restart_hook("server", [&fix, builder, &oracle](HostStack& h) {
      fix.sstack = builder(h);
      fix.server = &h.kernel->Emplace<RpcServer>(*h.kernel, fix.sstack.top);
      (void)fix.server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel));
    });

    FaultPlan plan;
    plan.seed = 7;
    plan.DropWindow(0, Msec(40), Msec(80), 0.3)
        .DuplicateStorm(0, Msec(80), Msec(120), 0.5)
        .Crash("server", Msec(150), Msec(260));
    FaultEngine faults(*fix.net, plan);

    ChaosSpec spec;
    spec.payload_bytes = 64;
    spec.calls = 30;
    spec.gap = Msec(5);
    spec.crash_at = Msec(150);
    CallFn call = [&fix](Message args, std::function<void(Result<Message>)> done) {
      fix.client->Call(fix.server_addr(), 1, std::move(args), std::move(done));
    };
    ChaosResult r = RpcWorkload::RunChaos(*fix.net, *fix.ch->kernel, call, oracle, spec);
    AmoOracle::Report rep = oracle.Finish();
    EXPECT_TRUE(rep.clean());

    out.per_call = r.elapsed + r.recovery_latency;  // determinism probes
    out.completed = r.completed;
    out.failed = r.failed;
    out.events_fired = fix.net->events_fired();
    out.counters_json = fix.net->CountersJson();
  }

  set_default_engine_threads(1);
  TraceSink::set_thread_default(nullptr);
  PacketCapture::set_thread_default(nullptr);
  out.trace_jsonl = sink.ToJsonl();
  out.pcap_jsonl = capture.ToJsonl();
  return out;
}

TEST(ParallelEngineTest, CrashCampaignBitIdenticalToSerial) {
  const RunArtifacts serial = RunCrashCampaignScenario(1);
  EXPECT_GT(serial.completed, 0);
  for (int threads : {2, 4}) {
    ExpectIdentical(serial, RunCrashCampaignScenario(threads), threads);
  }
}

TEST(ParallelEngineTest, ManyPairsBitIdenticalToSerial) {
  const ManyPairsBench serial = MeasureManyPairsBench(4, 2048, 5, 1);
  EXPECT_EQ(serial.completed, 4 * 5);
  EXPECT_EQ(serial.failed, 0);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const ManyPairsBench par = MeasureManyPairsBench(4, 2048, 5, threads);
    EXPECT_EQ(serial.agg_kbytes_per_sec, par.agg_kbytes_per_sec);
    EXPECT_EQ(serial.elapsed_ms, par.elapsed_ms);
    EXPECT_EQ(serial.completed, par.completed);
    EXPECT_EQ(serial.failed, par.failed);
    EXPECT_EQ(serial.sum_done_at, par.sum_done_at);
    EXPECT_EQ(serial.events_fired, par.events_fired);
  }
}

// --- epoch-boundary edge cases --------------------------------------------------

// A frame sink that records arrival times and optionally replies, attached as
// an extra station so tests can drive the link with exact timings.
struct RecordingSink final : FrameSink {
  Kernel* kernel = nullptr;
  std::vector<SimTime> arrivals;
  std::function<void(const EthFrame&)> on_arrival;

  void FrameArrived(const EthFrame& frame) override {
    arrivals.push_back(kernel->events().now());
    if (on_arrival) {
      on_arrival(frame);
    }
  }
  Kernel* sink_kernel() override { return kernel; }
};

EthFrame MakeFrame(EthAddr dst, EthAddr src, size_t payload = 0) {
  EthFrame f;
  f.bytes.resize(14 + payload);
  for (size_t i = 0; i < 6; ++i) {
    f.bytes[i] = dst.bytes()[i];
    f.bytes[6 + i] = src.bytes()[i];
  }
  return f;
}

// A wire whose transmit time is exactly 50us for every frame (the per-byte
// term truncates to 0ns) and whose propagation is 50us: lookahead is exactly
// 100us, so epoch edges land on round numbers the test can hit dead-on.
WireModel ExactWire() {
  WireModel wire;
  wire.bits_per_usec = 1e12;
  wire.per_frame_overhead = Usec(50);
  wire.propagation = Usec(50);
  return wire;
}

struct BoundaryRun {
  std::vector<SimTime> a_arrivals;
  std::vector<SimTime> b_arrivals;
  uint64_t duplicates = 0;
};

// Drives the exact-timing scenario at `engine_threads`:
//   F1 (A->B) ready at 0    -> bus 0..50us,    B receives at 100us
//   F2 (A->B) ready at 100  -> bus 100..150us, B receives at 200us -- exactly
//       the end of the first epoch [100us, 200us)
//   B's sink replies (A<-B) from inside its logical process; the reply is
//       committed at the epoch barrier: bus 150..200us, A receives at 250us
//   with `duplicate_reply`, the fault hook duplicates the reply delivery; the
//       second copy lands one transmit-time later, at 300us -- exactly the
//       start of the NEXT epoch [300us, 400us)
BoundaryRun RunBoundaryScenario(int engine_threads, bool duplicate_reply) {
  set_default_engine_threads(engine_threads);
  BoundaryRun out;
  {
    Internet net(HostEnv::kXKernel, 1);
    const int seg = net.AddSegment(ExactWire());
    HostStack& a = net.AddHost("a", seg, IpAddr(10, 0, 1, 1));
    HostStack& b = net.AddHost("b", seg, IpAddr(10, 0, 1, 2));

    const EthAddr addr_a({2, 0, 0, 0, 0, 1});
    const EthAddr addr_b({2, 0, 0, 0, 0, 2});
    RecordingSink sink_a;
    sink_a.kernel = a.kernel;
    RecordingSink sink_b;
    sink_b.kernel = b.kernel;
    const int id_a = net.segment(seg).Attach(addr_a, &sink_a);
    const int id_b = net.segment(seg).Attach(addr_b, &sink_b);
    sink_b.on_arrival = [&](const EthFrame&) {
      if (sink_b.arrivals.size() == 1) {
        net.segment(seg).Transmit(id_b, MakeFrame(addr_a, addr_b),
                                  b.kernel->events().now());
      }
    };
    if (duplicate_reply) {
      net.segment(seg).set_fault_hook(
          [id_a](const EthFrame&, int receiver_id, uint64_t) {
            return receiver_id == id_a ? LinkFault::kDuplicate : LinkFault::kDeliver;
          });
    }

    net.segment(seg).Transmit(id_a, MakeFrame(addr_b, addr_a), 0);
    net.segment(seg).Transmit(id_a, MakeFrame(addr_b, addr_a), Usec(100));
    net.RunAll();

    out.a_arrivals = sink_a.arrivals;
    out.b_arrivals = sink_b.arrivals;
    out.duplicates = net.segment(seg).fault_duplicates();
  }
  set_default_engine_threads(1);
  return out;
}

TEST(ParallelEngineTest, DeliveryExactlyAtEpochBoundary) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const BoundaryRun run = RunBoundaryScenario(threads, /*duplicate_reply=*/false);
    EXPECT_EQ(run.b_arrivals, (std::vector<SimTime>{Usec(100), Usec(200)}));
    EXPECT_EQ(run.a_arrivals, (std::vector<SimTime>{Usec(250)}));
    EXPECT_EQ(run.duplicates, 0u);
  }
}

TEST(ParallelEngineTest, DuplicateFaultSecondCopyLandsNextEpoch) {
  for (int threads : {1, 2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const BoundaryRun run = RunBoundaryScenario(threads, /*duplicate_reply=*/true);
    EXPECT_EQ(run.b_arrivals, (std::vector<SimTime>{Usec(100), Usec(200)}));
    // Reply at 250us plus its duplicate one transmit-time later, at 300us --
    // the first instant of the following epoch.
    EXPECT_EQ(run.a_arrivals, (std::vector<SimTime>{Usec(250), Usec(300)}));
    EXPECT_EQ(run.duplicates, 1u);
  }
}

TEST(ParallelEngineTest, ZeroLookaheadWireFallsBackToSerial) {
  // An idealized wire: no per-frame overhead, no propagation, and a per-byte
  // time that truncates to zero. The conservative lookahead is 0, so epochs
  // cannot make progress; the engine must detect this and run the canonical
  // serial fallback -- same results, no deadlock.
  auto run = [](int engine_threads) -> RunArtifacts {
    set_default_engine_threads(engine_threads);
    RunArtifacts out;
    {
      WireModel wire;
      wire.bits_per_usec = 1e12;
      wire.per_frame_overhead = 0;
      wire.propagation = 0;
      EXPECT_EQ(wire.TransmitTime(0) + wire.propagation, 0) << "wire is not degenerate";

      auto net = std::make_unique<Internet>(HostEnv::kXKernel, 1);
      const int seg = net->AddSegment(wire);
      net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
      net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
      net->WarmArp();
      RpcFixture fix(std::move(net));
      fix.Build([](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
      for (int i = 0; i < 3; ++i) {
        Result<Message> r = fix.CallSync(1, Message::FromBytes(PatternBytes(600, uint8_t(i))));
        EXPECT_TRUE(r.ok());
        ++out.completed;
      }
      out.events_fired = fix.net->events_fired();
      out.counters_json = fix.net->CountersJson();
    }
    set_default_engine_threads(1);
    return out;
  };
  const RunArtifacts serial = run(1);
  for (int threads : {2, 4}) {
    SCOPED_TRACE("engine_threads=" + std::to_string(threads));
    const RunArtifacts par = run(threads);
    EXPECT_EQ(serial.completed, par.completed);
    EXPECT_EQ(serial.events_fired, par.events_fired);
    EXPECT_EQ(serial.counters_json, par.counters_json);
  }
}

}  // namespace
}  // namespace xk
