// Shape tests: every quantitative claim reproduced from the paper's
// evaluation, asserted with tolerances. These are the repository's contract
// with EXPERIMENTS.md -- if a refactor breaks a shape, this suite fails.
//
// Absolute numbers are expected to land near the paper's (the cost model is
// calibrated to a Sun 3/75); relative claims (who wins, by roughly what
// factor) are asserted more tightly.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/proto/udp.h"

namespace xk {
namespace {

// Measured once, shared across the assertions below.
struct Measurements {
  ConfigResult n_rpc = RpcBench::Measure(
      "N_RPC", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); },
      HostEnv::kNativeSprite);
  ConfigResult m_eth =
      RpcBench::Measure("M_RPC-ETH", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); });
  ConfigResult m_ip =
      RpcBench::Measure("M_RPC-IP", [](HostStack& h) { return BuildMRpc(h, Delivery::kIp); });
  ConfigResult m_vip =
      RpcBench::Measure("M_RPC-VIP", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  ConfigResult l_vip =
      RpcBench::Measure("L_RPC-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  ConfigResult dynamic = RpcBench::Measure(
      "SELECT-CHANNEL-VIPsize", [](HostStack& h) { return BuildLRpcDynamic(h); });
};

const Measurements& M() {
  static Measurements m;
  return m;
}

// Latency within `tol_pct`% of the paper's value.
void ExpectNear(double measured, double paper, double tol_pct, const char* what) {
  EXPECT_NEAR(measured, paper, paper * tol_pct / 100.0) << what;
}

// --- Table I -------------------------------------------------------------------

TEST(ShapeTableI, AbsoluteLatenciesNearPaper) {
  ExpectNear(M().m_eth.latency_ms, 1.73, 10, "M_RPC-ETH");
  ExpectNear(M().m_ip.latency_ms, 2.10, 10, "M_RPC-IP");
  ExpectNear(M().m_vip.latency_ms, 1.79, 10, "M_RPC-VIP");
  ExpectNear(M().n_rpc.latency_ms, 2.60, 12, "N_RPC");
}

TEST(ShapeTableI, XKernelBeatsNativeSprite) {
  EXPECT_LT(M().m_eth.latency_ms, M().n_rpc.latency_ms);
  EXPECT_GT(M().m_eth.throughput_kbs, M().n_rpc.throughput_kbs);
}

TEST(ShapeTableI, IpPenaltyAbout21Percent) {
  const double penalty = M().m_ip.latency_ms - M().m_eth.latency_ms;
  EXPECT_GT(penalty, 0.25);  // paper: 0.37
  EXPECT_LT(penalty, 0.50);
  const double pct = 100.0 * penalty / M().m_eth.latency_ms;
  EXPECT_GT(pct, 14.0);  // paper: 21%
  EXPECT_LT(pct, 28.0);
}

TEST(ShapeTableI, VipOverheadSmall) {
  const double overhead = M().m_vip.latency_ms - M().m_eth.latency_ms;
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.10);  // paper: 0.06
  // VIP eliminates most of the IP penalty.
  EXPECT_LT(M().m_vip.latency_ms - M().m_eth.latency_ms,
            0.3 * (M().m_ip.latency_ms - M().m_eth.latency_ms));
}

TEST(ShapeTableI, ThroughputOrderingEthVipIp) {
  EXPECT_GE(M().m_eth.throughput_kbs, M().m_vip.throughput_kbs);
  EXPECT_GT(M().m_vip.throughput_kbs, M().m_ip.throughput_kbs);
  // All x-kernel stacks near the paper's ~860 (within 10%).
  ExpectNear(M().m_eth.throughput_kbs, 863, 10, "ETH tput");
  ExpectNear(M().m_vip.throughput_kbs, 860, 10, "VIP tput");
}

TEST(ShapeTableI, VipUsesLessCpuThanIp) {
  EXPECT_LT(M().m_vip.client_cpu_ms + M().m_vip.server_cpu_ms,
            M().m_ip.client_cpu_ms + M().m_ip.server_cpu_ms);
}

TEST(ShapeTableI, IncrementalCostNearOneMsPerKb) {
  ExpectNear(M().m_eth.incr_ms_per_kb, 1.04, 12, "ETH incr");
  ExpectNear(M().m_ip.incr_ms_per_kb, 1.05, 12, "IP incr");
  EXPECT_GT(M().n_rpc.incr_ms_per_kb, M().m_eth.incr_ms_per_kb);  // native is worse
}

// --- Table II ------------------------------------------------------------------

TEST(ShapeTableII, LayeringPenaltySmall) {
  const double penalty = M().l_vip.latency_ms - M().m_vip.latency_ms;
  EXPECT_GT(penalty, 0.05);  // layering is not free...
  EXPECT_LT(penalty, 0.25);  // ...but close to the paper's 0.14
}

TEST(ShapeTableII, ThroughputNearlyIdentical) {
  EXPECT_NEAR(M().l_vip.throughput_kbs, M().m_vip.throughput_kbs,
              0.05 * M().m_vip.throughput_kbs);
}

TEST(ShapeTableII, LayeredUsesSlightlyLessCpuOnBulk) {
  // "Only FRAGMENT handles the individual packets" of a 16 KB message.
  EXPECT_LT(M().l_vip.client_cpu_ms + M().l_vip.server_cpu_ms,
            M().m_vip.client_cpu_ms + M().m_vip.server_cpu_ms);
}

// --- Section 4.3 ----------------------------------------------------------------

TEST(ShapeSec43, BypassingFragmentRecoversMonolithicLatency) {
  // SELECT-CHANNEL-VIPsize ~ M_RPC-VIP (paper: 1.78 vs 1.79).
  EXPECT_NEAR(M().dynamic.latency_ms, M().m_vip.latency_ms, 0.08);
  // And clearly better than the static layered stack.
  EXPECT_LT(M().dynamic.latency_ms, M().l_vip.latency_ms - 0.08);
}

// --- Section 1 (UDP cross-kernel) ------------------------------------------------

double UdpEchoMs(HostEnv env) {
  auto net = Internet::TwoHosts(env);
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  UdpProtocol* cudp = BuildUdp(ch);
  UdpProtocol* sudp = BuildUdp(sh);
  EchoAnchor* client = nullptr;
  ch.kernel->RunTask(0, [&] {
    client = &ch.kernel->Emplace<EchoAnchor>(*ch.kernel, false);
    client->set_app_cost(ch.kernel->costs().user_kernel_cross);
  });
  sh.kernel->RunTask(0, [&] {
    auto& server = sh.kernel->Emplace<EchoAnchor>(*sh.kernel, true);
    server.set_app_cost(2 * sh.kernel->costs().user_kernel_cross);
    ParticipantSet enable;
    enable.local.port = 7;
    (void)sudp->OpenEnable(server, enable);
  });
  SessionRef sess;
  ch.kernel->RunTask(0, [&] {
    ParticipantSet parts;
    parts.local.port = 9;
    parts.peer.host = sh.kernel->ip_addr();
    parts.peer.port = 7;
    sess = *cudp->Open(*client, parts);
  });
  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    client->Send(sess, std::move(args), std::move(done));
  };
  return ToMsec(RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 32).per_call);
}

TEST(ShapeSec1, UdpCrossKernelRatio) {
  const double xk = UdpEchoMs(HostEnv::kXKernel);
  const double sunos = UdpEchoMs(HostEnv::kSunOs);
  EXPECT_NEAR(xk, 2.00, 0.25);
  EXPECT_NEAR(sunos, 5.36, 0.90);
  EXPECT_GT(sunos / xk, 2.0);  // paper: 2.68x
  EXPECT_LT(sunos / xk, 3.5);
}

// --- Section 5 ablation (header buffers) -----------------------------------------

TEST(ShapeAblation, PerLayerAllocMuchWorse) {
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
  ConfigResult adjust =
      RpcBench::Measure("L_RPC", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPerLayerAlloc);
  ConfigResult alloc =
      RpcBench::Measure("L_RPC-old", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
  // The paper: 0.11 -> 0.50 per layer, i.e. roughly +0.39/layer. Over the
  // whole stack (and the anchors' headers) the penalty is >1 ms of latency.
  EXPECT_GT(alloc.latency_ms - adjust.latency_ms, 1.0);
}

// --- determinism -----------------------------------------------------------------

TEST(ShapeDeterminism, RepeatedMeasurementIsBitIdentical) {
  ConfigResult a =
      RpcBench::Measure("x", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  ConfigResult b =
      RpcBench::Measure("x", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.throughput_kbs, b.throughput_kbs);
}

}  // namespace
}  // namespace xk
