#include "src/core/protocol.h"

#include "src/core/kernel.h"
#include "src/trace/trace.h"

namespace xk {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Protocol& owner, Protocol* hlp)
    : owner_(owner), hlp_(hlp), kernel_(owner.kernel()) {}

Session::~Session() {
  if (idle_linked_) {
    owner_.UnlinkIdle(*this);
  }
}

void Session::NoteActivity() {
  if (idle_eligible_) {
    owner_.TouchIdle(*this);
  }
}

Status Session::Push(Message& msg) {
  Kernel& k = kernel();
  ProtoCounters& c = owner_.counters();
  ++c.msgs_out;
  c.bytes_out += msg.length();
  NoteActivity();
  TraceSpan span(k.trace_sink(), k, TraceOp::kPush, owner_, this, &msg);
  k.ChargeLayerCross();
  return span.Finish(DoPush(msg));
}

Status Session::Pop(Message& msg, Session* lls) {
  Kernel& k = kernel();
  NoteActivity();
  TraceSpan span(k.trace_sink(), k, TraceOp::kPop, owner_, this, &msg);
  return span.Finish(DoPop(msg, lls));
}

Status Session::Control(ControlOp op, ControlArgs& args) {
  kernel().ChargeProcCall();
  Status s = DoControl(op, args);
  if (s.code() == StatusCode::kUnsupported && lower_for_control() != nullptr) {
    return lower_for_control()->Control(op, args);
  }
  return s;
}

Status Session::DoControl(ControlOp op, ControlArgs& args) {
  (void)op;
  (void)args;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Session::DeliverUp(Message& msg) {
  if (hlp_ == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  return hlp_->Demux(this, msg);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

Protocol::Protocol(Kernel& kernel, std::string name, std::vector<Protocol*> lowers)
    : kernel_(kernel), name_(std::move(name)), lowers_(std::move(lowers)) {}

Protocol::~Protocol() {
  // Sessions can outlive their protocol (crash teardown, stray test refs);
  // detach any still-linked ones so their destructors don't call back into a
  // dead protocol.
  for (Session* s = idle_.head; s != nullptr;) {
    Session* next = s->idle_next_;
    s->idle_prev_ = nullptr;
    s->idle_next_ = nullptr;
    s->idle_linked_ = false;
    s->idle_eligible_ = false;
    s = next;
  }
}

Result<SessionRef> Protocol::Open(Protocol& hlp, const ParticipantSet& parts) {
  ++counters_.opens;
  TraceSpan span(kernel_.trace_sink(), kernel_, TraceOp::kOpen, *this, nullptr, nullptr);
  kernel_.ChargeProcCall();
  Result<SessionRef> r = DoOpen(hlp, parts);
  (void)span.Finish(r.ok() ? OkStatus() : r.status());
  return r;
}

void Protocol::OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) {
  done(Open(hlp, parts));
}

Status Protocol::OpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  ++counters_.open_enables;
  kernel_.ChargeProcCall();
  return DoOpenEnable(hlp, parts);
}

Status Protocol::OpenDisable(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::Demux(Session* lls, Message& msg) {
  ++counters_.msgs_in;
  counters_.bytes_in += msg.length();
  TraceSpan span(kernel_.trace_sink(), kernel_, TraceOp::kDemux, *this, lls, &msg);
  kernel_.ChargeLayerCross();
  Status s = DoDemux(lls, msg);
  if (!s.ok()) {
    ++counters_.demux_drops;
  }
  return span.Finish(s);
}

Status Protocol::OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) {
  (void)llp;
  (void)lls;
  (void)parts;
  return OkStatus();
}

void Protocol::SessionError(Session& lls, Status error) {
  (void)lls;
  (void)error;
}

Status Protocol::Control(ControlOp op, ControlArgs& args) {
  kernel_.ChargeProcCall();
  Status s = DoControl(op, args);
  if (s.code() == StatusCode::kUnsupported && lower(0) != nullptr) {
    return lower(0)->Control(op, args);
  }
  return s;
}

Result<SessionRef> Protocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kSetIdleTimeout:
      if (!idle_.capable) {
        break;
      }
      idle_.timeout = args.u64;
      if (idle_.timeout == 0) {
        if (idle_.sweep_armed) {
          kernel_.CancelTimer(idle_.sweep);
          idle_.sweep_armed = false;
        }
      } else {
        ArmIdleSweep();
      }
      return OkStatus();
    case ControlOp::kGetIdleTimeout:
      if (!idle_.capable) {
        break;
      }
      args.u64 = idle_.timeout;
      return OkStatus();
    case ControlOp::kEvictIdle:
      if (!idle_.capable) {
        break;
      }
      args.u64 = EvictIdle(args.u64);
      return OkStatus();
    default:
      break;
  }
  return ErrStatus(StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Idle-session tracking and eviction
// ---------------------------------------------------------------------------

void Protocol::TrackIdle(Session& s) {
  s.idle_eligible_ = true;
  TouchIdle(s);
}

void Protocol::TouchIdle(Session& s) {
  s.last_active_ = kernel_.now();
  if (s.idle_linked_ && idle_.tail == &s) {
    return;  // already the hot end; just restamped
  }
  UnlinkIdle(s);
  s.idle_prev_ = idle_.tail;
  s.idle_next_ = nullptr;
  if (idle_.tail != nullptr) {
    idle_.tail->idle_next_ = &s;
  } else {
    idle_.head = &s;
  }
  idle_.tail = &s;
  s.idle_linked_ = true;
  ++idle_.tracked;
  ArmIdleSweep();
}

void Protocol::UnlinkIdle(Session& s) {
  if (!s.idle_linked_) {
    return;
  }
  if (s.idle_prev_ != nullptr) {
    s.idle_prev_->idle_next_ = s.idle_next_;
  } else {
    idle_.head = s.idle_next_;
  }
  if (s.idle_next_ != nullptr) {
    s.idle_next_->idle_prev_ = s.idle_prev_;
  } else {
    idle_.tail = s.idle_prev_;
  }
  s.idle_prev_ = nullptr;
  s.idle_next_ = nullptr;
  s.idle_linked_ = false;
  --idle_.tracked;
}

void Protocol::ArmIdleSweep() {
  if (idle_.sweep_armed || idle_.timeout == 0 || idle_.head == nullptr) {
    return;
  }
  const SimTime now = kernel_.now();
  const SimTime deadline = idle_.head->last_active_ + idle_.timeout;
  idle_.sweep_armed = true;
  idle_.sweep = kernel_.SetTimer(deadline > now ? deadline - now : 0, [this] { IdleSweep(); });
}

void Protocol::IdleSweep() {
  idle_.sweep_armed = false;
  if (idle_.timeout == 0) {
    return;
  }
  (void)EvictIdle(idle_.timeout);
  // One-shot re-arm for the new cold end; no timer at all once the list
  // drains, so an idle protocol never keeps the simulation alive.
  ArmIdleSweep();
}

bool Protocol::EvictSession(Session& s) {
  (void)s;
  return false;
}

uint64_t Protocol::EvictIdle(SimTime min_idle) {
  const SimTime now = kernel_.now();
  uint64_t dropped = 0;
  while (idle_.head != nullptr) {
    Session* s = idle_.head;
    if (now - s->last_active_ < min_idle) {
      break;  // LRU order: everything behind the head is younger still
    }
    UnlinkIdle(*s);
    if (!s->CanEvict()) {
      ++idle_.declined;  // parked; next activity relinks it
      continue;
    }
    // EvictSession drops the protocol's owning refs, which may destroy `s`
    // before it returns -- mark it disowned first and don't touch it after.
    // The event reads the session's trace id before the eviction for the
    // same reason.
    TraceSink* ts = kernel_.trace_sink();
    const SimTime idle_for = now - s->last_active_;
    s->idle_eligible_ = false;
    if (ts != nullptr) {
      ts->RecordEvent(kernel_, TraceOp::kEvict, name_, now, 0, nullptr, s,
                      static_cast<uint64_t>(idle_for));
    }
    if (EvictSession(*s)) {
      kernel_.ChargeSessionDestroy();
      ++idle_.evicted;
      ++dropped;
    } else {
      s->idle_eligible_ = true;
      ++idle_.declined;
    }
  }
  return dropped;
}

void Protocol::ExportCounters(const CounterEmit& emit) const {
  emit("msgs_out", counters_.msgs_out);
  emit("bytes_out", counters_.bytes_out);
  emit("msgs_in", counters_.msgs_in);
  emit("bytes_in", counters_.bytes_in);
  emit("opens", counters_.opens);
  emit("open_enables", counters_.open_enables);
  emit("demux_drops", counters_.demux_drops);
  emit("map_hits", counters_.map_hits);
  emit("map_misses", counters_.map_misses);
  if (idle_.capable) {
    emit("idle_evictions", idle_.evicted);
    emit("idle_declined", idle_.declined);
  }
}

// ---------------------------------------------------------------------------
// Control helpers
// ---------------------------------------------------------------------------

Result<uint64_t> CtlGetU64(Protocol& p, ControlOp op) {
  ControlArgs args;
  Status s = p.Control(op, args);
  if (!s.ok()) {
    return s;
  }
  return args.u64;
}

Result<uint64_t> CtlGetU64(Session& s, ControlOp op) {
  ControlArgs args;
  Status st = s.Control(op, args);
  if (!st.ok()) {
    return st;
  }
  return args.u64;
}

Result<IpAddr> CtlGetIp(Session& s, ControlOp op) {
  ControlArgs args;
  Status st = s.Control(op, args);
  if (!st.ok()) {
    return st;
  }
  return args.ip;
}

}  // namespace xk
