// UDP: unreliable datagram service with ports.
//
// Two roles in the reproduction:
//  * the Section 1 cross-kernel comparison (x-kernel UDP/IP at 2.00 ms vs
//    SunOS at 5.36 ms) runs UDP over IP over ETH under the two environments;
//  * UDP is the paper's example of a protocol whose maximum send size is
//    "arbitrarily large" (it depends on IP to fragment), which exercises
//    VIP's open-both-sessions path.
//
// Note on layering hygiene: the paper's Discussion faults TCP for depending
// on fields inside the IP header. Our UDP asks its lower session for the
// source/destination hosts through control operations (kGetMyHost /
// kGetPeerHost) when computing the pseudo-header checksum, so it composes
// with anything offering IP semantics -- including VIP.
//
// Sessions are slab-pooled (SlabPool) and idle-tracked: create/destroy is
// allocation-free at steady state and kSetIdleTimeout/kEvictIdle reclaim
// cold connections. The session class is defined before the protocol so the
// pool member sees a complete type.

#ifndef XK_SRC_PROTO_UDP_H_
#define XK_SRC_PROTO_UDP_H_

#include <tuple>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/sim/slab_pool.h"

namespace xk {

class UdpProtocol;

class UdpSession : public Session {
 public:
  UdpSession(UdpProtocol& owner, Protocol* hlp, SessionRef lower, IpAddr peer, uint16_t peer_port,
             uint16_t local_port);

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  friend class UdpProtocol;  // eviction needs the demux key

  UdpProtocol& udp_;
  SessionRef lower_;
  IpAddr peer_;
  uint16_t peer_port_;
  uint16_t local_port_;
};

class UdpProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 8;

  // `ip` is the delivery protocol below (IP or VIP).
  UdpProtocol(Kernel& kernel, Protocol* ip, std::string name = "udp");

  // The paper-faithful default computes a checksum over the pseudo-header
  // and payload; tests can disable it.
  void set_checksum_enabled(bool on) { checksum_enabled_ = on; }
  bool checksum_enabled() const { return checksum_enabled_; }

  uint64_t checksum_failures() const { return checksum_failures_; }

  // Live UdpSessions (slab-pooled; also exported as the live_sessions gauge).
  size_t live_sessions() const { return pool_.live(); }

  // Demux-table and slab introspection for the session_scale bench.
  const DemuxMap<std::tuple<IpAddr, uint16_t, uint16_t>>& active_map() const { return active_; }
  size_t session_slots() const { return pool_.capacity(); }
  size_t session_high_water() const { return pool_.high_water(); }

  void ExportGauges(const CounterEmit& emit) const override;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool EvictSession(Session& s) override;

 private:
  friend class UdpSession;
  using Key = std::tuple<IpAddr, uint16_t, uint16_t>;  // (peer, peer port, local port)

  SlabPool<UdpSession> pool_;
  DemuxMap<Key> active_;
  DemuxMap<uint16_t, Protocol*> passive_;  // local port -> hlp
  bool checksum_enabled_ = true;
  uint64_t checksum_failures_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_UDP_H_
