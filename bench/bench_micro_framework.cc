// Micro-benchmarks (google-benchmark, real wall-clock time) of the x-kernel
// infrastructure primitives the paper's argument rests on:
//
//  * a layer crossing is one procedure call (Session::Push dispatch);
//  * header push/pop is a pointer adjustment under the current buffer scheme
//    and an allocation under the old one (the 0.11 vs 0.50 ms/layer ablation,
//    here in host nanoseconds);
//  * demultiplexing is one map lookup;
//  * the discrete-event core itself is cheap enough that simulated results
//    are not distorted by harness costs.

#include <benchmark/benchmark.h>

#include "src/app/stacks.h"
#include "src/core/map.h"
#include "src/core/message.h"
#include "src/proto/topology.h"
#include "src/sim/event_queue.h"

namespace xk {
namespace {

void BM_MessagePushPopPointerAdjust(benchmark::State& state) {
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
  const size_t hdr_size = state.range(0);
  std::vector<uint8_t> hdr(hdr_size, 0xAB);
  std::vector<uint8_t> out(hdr_size);
  Message msg(1024);
  for (auto _ : state) {
    msg.PushHeader(hdr);
    benchmark::DoNotOptimize(msg.PopHeader(out));
  }
}
BENCHMARK(BM_MessagePushPopPointerAdjust)->Arg(4)->Arg(18)->Arg(23)->Arg(36);

void BM_MessagePushPopPerLayerAlloc(benchmark::State& state) {
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPerLayerAlloc);
  const size_t hdr_size = state.range(0);
  std::vector<uint8_t> hdr(hdr_size, 0xAB);
  std::vector<uint8_t> out(hdr_size);
  Message msg(1024);
  for (auto _ : state) {
    msg.PushHeader(hdr);
    benchmark::DoNotOptimize(msg.PopHeader(out));
  }
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
}
BENCHMARK(BM_MessagePushPopPerLayerAlloc)->Arg(4)->Arg(18)->Arg(23)->Arg(36);

void BM_MessageSliceJoin16k(benchmark::State& state) {
  Message msg(16 * 1024);
  for (auto _ : state) {
    Message whole;
    for (int i = 0; i < 16; ++i) {
      whole.Append(msg.Slice(static_cast<size_t>(i) * 1024, 1024));
    }
    benchmark::DoNotOptimize(whole.length());
  }
}
BENCHMARK(BM_MessageSliceJoin16k);

void BM_MessageFlatten(benchmark::State& state) {
  Message msg(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.Flatten());
  }
}
BENCHMARK(BM_MessageFlatten)->Arg(64)->Arg(1500)->Arg(16384);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue q;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.ScheduleIn(Usec(i), [] {});
    }
    q.Run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueScheduleCancelMix(benchmark::State& state) {
  // The retransmit-timer pattern that dominates CHANNEL/FRAGMENT/RDP: set a
  // timer per message, cancel most of them when the ack arrives first, let
  // the rest fire.
  EventQueue q;
  std::vector<EventHandle> handles(64);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      handles[i] = q.ScheduleIn(Usec(100 + i), [] {});
    }
    for (int i = 0; i < 48; ++i) {
      handles[i].Cancel();
    }
    q.Run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleCancelMix);

void BM_FullNullRpcSimulated(benchmark::State& state) {
  // Wall-clock cost of simulating one complete null RPC through the full
  // layered stack -- the harness overhead per simulated call.
  for (auto _ : state) {
    state.PauseTiming();
    auto net = Internet::TwoHosts();
    auto& ch = net->host("client");
    auto& sh = net->host("server");
    RpcStack cs = BuildLRpc(ch);
    RpcStack ss = BuildLRpc(sh);
    RpcClient* client = nullptr;
    ch.kernel->RunTask(0, [&] { client = &ch.kernel->Emplace<RpcClient>(*ch.kernel, cs.top); });
    sh.kernel->RunTask(0, [&] {
      auto& server = sh.kernel->Emplace<RpcServer>(*sh.kernel, ss.top);
      (void)server.Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
    });
    state.ResumeTiming();
    bool done = false;
    ch.kernel->RunTask(0, [&] {
      client->Call(sh.kernel->ip_addr(), 1, Message(), [&](Result<Message>) { done = true; });
    });
    net->RunAll();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FullNullRpcSimulated);

}  // namespace
}  // namespace xk

BENCHMARK_MAIN();
