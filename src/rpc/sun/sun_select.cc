#include "src/rpc/sun/sun_select.h"

#include "src/core/wire.h"

namespace xk {

namespace {
// Participant encoding for Sun procedure addresses: peer.rel_proto = program,
// peer.channel = version, peer.command = procedure.
}  // namespace

ParticipantSet SunProcAddress(IpAddr server, uint32_t prog, uint16_t vers, uint16_t proc) {
  ParticipantSet parts;
  parts.peer.host = server;
  parts.peer.rel_proto = prog;
  parts.peer.channel = vers;
  parts.peer.command = proc;
  return parts;
}

ParticipantSet SunProgService(uint32_t prog, uint16_t vers) {
  ParticipantSet parts;
  parts.local.rel_proto = prog;
  parts.local.channel = vers;
  return parts;
}

// ---------------------------------------------------------------------------
// SunSelectProtocol
// ---------------------------------------------------------------------------

SunSelectProtocol::SunSelectProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}),
      active_(*this),
      passive_(*this),
      server_sessions_(*this) {
  ParticipantSet enable;
  enable.local.rel_proto = kRelProtoSunSelect;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SessionRef> SunSelectProtocol::LowerFor(IpAddr server) {
  ParticipantSet parts;
  parts.peer.host = server;
  parts.local.rel_proto = kRelProtoSunSelect;
  return lower(0)->Open(*this, parts);
}

Result<SessionRef> SunSelectProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.peer.rel_proto.has_value() ||
      !parts.peer.channel.has_value() || !parts.peer.command.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.host, *parts.peer.rel_proto,
                static_cast<uint16_t>(*parts.peer.channel),
                static_cast<uint16_t>(*parts.peer.command)};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  Result<SessionRef> lower_sess = LowerFor(*parts.peer.host);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<SunSelectSession>(
      *this, &hlp, *parts.peer.host, *parts.peer.rel_proto,
      static_cast<uint16_t>(*parts.peer.channel), static_cast<uint16_t>(*parts.peer.command));
  active_.Bind(key, sess);
  return SessionRef(sess);
}

Status SunSelectProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.rel_proto.has_value() || !parts.local.channel.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const ProgKey key{*parts.local.rel_proto, static_cast<uint16_t>(*parts.local.channel)};
  Protocol* existing = nullptr;
  if (!passive_.TryBind(key, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(key, &hlp);  // idempotent re-enable recharges, as before
  }
  return OkStatus();
}

Status SunSelectProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint32_t prog = r.GetU32();
  const uint16_t vers = r.GetU16();
  const uint16_t proc = r.GetU16();
  const uint8_t status = r.GetU8();
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }

  IpAddr peer;
  ControlArgs args;
  if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
    peer = args.ip;
  }
  const Key key{peer, prog, vers, proc};

  // A reply? Pair with the oldest waiting call for this procedure.
  if (auto wit = waiting_.find(key); wit != waiting_.end() && !wit->second.empty()) {
    SessionRef caller = wit->second.front();
    wit->second.pop_front();
    if (wit->second.empty()) {
      waiting_.erase(wit);
    }
    ++stats_.returns;
    kernel().ChargeMapResolve();
    if (status != kStatusOk) {
      if (caller->hlp() != nullptr) {
        caller->hlp()->SessionError(*caller, ErrStatus(StatusCode::kNotFound));
      }
      return OkStatus();
    }
    return caller->Pop(msg, lls);
  }

  // A call: map (prog, vers) onto a registered service.
  Protocol* hlp = passive_.Resolve(ProgKey{prog, vers});
  if (hlp == nullptr) {
    ++stats_.prog_unavail;
    uint8_t reply_raw[kHeaderSize];
    WireWriter w(reply_raw);
    w.PutU32(prog);
    w.PutU16(vers);
    w.PutU16(proc);
    w.PutU8(kStatusProgUnavail);
    Message reply;
    kernel().ChargeHdrStore(kHeaderSize);
    reply.PushHeader(reply_raw);
    return lls->Push(reply);
  }
  SessionRef server_sess = server_sessions_.Resolve(lls);
  if (server_sess == nullptr) {
    kernel().ChargeSessionCreate();
    server_sess = std::make_shared<SunSelectServerSession>(*this, hlp, lls->Ref());
    server_sessions_.Bind(lls, server_sess);
    ParticipantSet up;
    up.local.rel_proto = prog;
    up.local.channel = vers;
    up.local.command = proc;
    up.peer.host = peer;
    Status s = hlp->OpenDoneUp(*this, server_sess, up);
    if (!s.ok()) {
      server_sessions_.Unbind(lls);
      return s;
    }
  }
  auto* ss = static_cast<SunSelectServerSession*>(server_sess.get());
  ss->SetCurrent(prog, vers, proc);
  ss->set_hlp(hlp);
  ++stats_.served;
  return server_sess->Pop(msg, lls);
}

void SunSelectProtocol::SessionError(Session& lls, Status error) {
  // A lower-level call failed. Fail the oldest waiter bound to that lower
  // session's peer (all procedures share the lower session, so fail them
  // all -- the conservative interpretation).
  ControlArgs args;
  IpAddr peer;
  if (lls.Control(ControlOp::kGetPeerHost, args).ok()) {
    peer = args.ip;
  }
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (std::get<0>(it->first) == peer) {
      for (SessionRef& caller : it->second) {
        if (caller->hlp() != nullptr) {
          caller->hlp()->SessionError(*caller, error);
        }
      }
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// SunSelectSession
// ---------------------------------------------------------------------------

SunSelectSession::SunSelectSession(SunSelectProtocol& owner, Protocol* hlp, IpAddr server,
                                   uint32_t prog, uint16_t vers, uint16_t proc)
    : Session(owner, hlp), sel_(owner), server_(server), prog_(prog), vers_(vers), proc_(proc) {}

Status SunSelectSession::DoPush(Message& msg) {
  Result<SessionRef> lower = sel_.LowerFor(server_);
  if (!lower.ok()) {
    return lower.status();
  }
  uint8_t raw[SunSelectProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU32(prog_);
  w.PutU16(vers_);
  w.PutU16(proc_);
  w.PutU8(SunSelectProtocol::kStatusOk);
  kernel().ChargeHdrStore(SunSelectProtocol::kHeaderSize);
  msg.PushHeader(raw);
  ++sel_.stats_.calls;
  sel_.waiting_[SunSelectProtocol::Key{server_, prog_, vers_, proc_}].push_back(Ref());
  kernel().ChargeMapBind();
  return (*lower)->Push(msg);
}

Status SunSelectSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SunSelectSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = server_;
      return OkStatus();
    case ControlOp::kGetLastCommand:
      args.u64 = proc_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// SunSelectServerSession
// ---------------------------------------------------------------------------

SunSelectServerSession::SunSelectServerSession(SunSelectProtocol& owner, Protocol* hlp,
                                               SessionRef lower)
    : Session(owner, hlp), sel_(owner), lower_(std::move(lower)) {}

void SunSelectServerSession::SetCurrent(uint32_t prog, uint16_t vers, uint16_t proc) {
  prog_ = prog;
  vers_ = vers;
  proc_ = proc;
}

Status SunSelectServerSession::DoPush(Message& msg) {
  uint8_t raw[SunSelectProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU32(prog_);
  w.PutU16(vers_);
  w.PutU16(proc_);
  w.PutU8(SunSelectProtocol::kStatusOk);
  kernel().ChargeHdrStore(SunSelectProtocol::kHeaderSize);
  msg.PushHeader(raw);
  return lower_->Push(msg);
}

Status SunSelectServerSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SunSelectServerSession::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetLastCommand) {
    args.u64 = proc_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
