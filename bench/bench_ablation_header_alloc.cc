// Ablation: header buffer management (paper, Section 5, "Potential Pitfalls
// of Layering").
//
// "In an earlier version of the x-kernel, we used a buffer management scheme
// that allocated a buffer for each new header added to a message. In
// contrast, the current version pre-allocates a single buffer ... and simply
// adjusts a pointer for each new header. The original approach resulted in a
// 0.50 msec minimum cost for each layer, whereas the current approach has a
// minimum cost of 0.11 msec per layer."
//
// This bench re-runs the Table III layer-cost measurement under both
// HeaderAllocPolicy values. The policy switch changes BOTH the real message
// representation (a fresh chunk per header vs. pointer adjustment into the
// shared arena) and the charged cost of every header push/pop.

#include "bench/bench_util.h"

namespace xk {
namespace {

double MeasureFullStackMs() {
  ConfigResult full = RpcBench::Measure(
      "SELECT-CHANNEL-FRAGMENT-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  return full.latency_ms;
}

// The base below the three RPC layers.
double MeasureVipOnlyMs() { return MeasurePartialLatency(0).ms; }

// The cost the FULL stack minus the CHANNEL-FRAGMENT-VIP stack isolates: the
// cheapest layer, SELECT -- the paper's "minimum cost per layer".
double MeasureChannelStackMs() { return MeasurePartialLatency(2).ms; }

int Run() {
  std::printf("\nAblation: header buffer scheme (pointer adjust vs per-layer alloc)\n");
  std::printf("%-26s %12s %12s %14s %16s\n", "Scheme", "VIP base", "Full stack",
              "avg/layer", "min/layer(SELECT)");
  std::printf("%s\n", std::string(86, '-').c_str());

  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);
  const double base_adjust = MeasureVipOnlyMs();
  const double chan_adjust = MeasureChannelStackMs();
  const double full_adjust = MeasureFullStackMs();

  Message::set_default_alloc_policy(HeaderAllocPolicy::kPerLayerAlloc);
  const double base_alloc = MeasureVipOnlyMs();
  const double chan_alloc = MeasureChannelStackMs();
  const double full_alloc = MeasureFullStackMs();
  Message::set_default_alloc_policy(HeaderAllocPolicy::kPointerAdjust);

  std::printf("%-26s %9.2f ms %9.2f ms %11.2f ms %13.2f ms   [paper: 0.11]\n",
              "pointer-adjust (current)", base_adjust, full_adjust,
              (full_adjust - base_adjust) / 3.0, full_adjust - chan_adjust);
  std::printf("%-26s %9.2f ms %9.2f ms %11.2f ms %13.2f ms   [paper: 0.50]\n",
              "alloc-per-header (old)", base_alloc, full_alloc,
              (full_alloc - base_alloc) / 3.0, full_alloc - chan_alloc);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
