// Shared benchmark harness: runs a named RPC configuration on the paper's
// testbed topology (two hosts, one isolated 10 Mbps Ethernet) and measures
// the three quantities every table reports:
//
//   Latency          round trip of a null call (null request, null reply)
//   Throughput       kbytes/sec for 16 KB requests with null replies
//   Incremental cost msec per additional 1 KB (slope of the 1k..16k sweep)
//
// Following the paper: all experiments are kernel-to-kernel, messages
// fragment into wire-sized packets, and sessions are cached (steady state).

#ifndef XK_BENCH_BENCH_UTIL_H_
#define XK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/app/workload.h"
#include "src/proto/topology.h"

namespace xk {

struct ConfigResult {
  std::string name;
  double latency_ms = 0;        // null-call round trip
  double throughput_kbs = 0;    // at 16 KB requests
  double incr_ms_per_kb = 0;    // slope between 1 KB and 16 KB
  double client_cpu_ms = 0;     // CPU time per 16 KB call, client side
  double server_cpu_ms = 0;
};

struct RpcBench {
  using Builder = std::function<RpcStack(HostStack&)>;

  // One fully-wired experiment instance.
  struct Instance {
    std::unique_ptr<Internet> net;
    HostStack* ch = nullptr;
    HostStack* sh = nullptr;
    RpcStack cstack, sstack;
    RpcClient* client = nullptr;
    RpcServer* server = nullptr;

    CallFn MakeCall() {
      return [this](Message args, std::function<void(Result<Message>)> done) {
        client->Call(sh->kernel->ip_addr(), 1, std::move(args), std::move(done));
      };
    }
  };

  static Instance MakeInstance(const Builder& builder, HostEnv env = HostEnv::kXKernel) {
    Instance in;
    in.net = Internet::TwoHosts(env);
    in.ch = &in.net->host("client");
    in.sh = &in.net->host("server");
    in.cstack = builder(*in.ch);
    in.sstack = builder(*in.sh);
    in.ch->kernel->RunTask(in.net->events().now(), [&] {
      in.client = &in.ch->kernel->Emplace<RpcClient>(*in.ch->kernel, in.cstack.top);
    });
    in.sh->kernel->RunTask(in.net->events().now(), [&] {
      in.server = &in.sh->kernel->Emplace<RpcServer>(*in.sh->kernel, in.sstack.top);
      // Null reply regardless of request size (the paper's throughput test).
      (void)in.server->Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
    });
    return in;
  }

  // Measures the standard three columns for `builder` under `env`.
  static ConfigResult Measure(const std::string& name, const Builder& builder,
                              HostEnv env = HostEnv::kXKernel) {
    ConfigResult result;
    result.name = name;

    {
      Instance in = MakeInstance(builder, env);
      LatencyResult lat = RpcWorkload::MeasureLatency(*in.net, *in.ch->kernel, in.MakeCall(), 64);
      result.latency_ms = ToMsec(lat.per_call);
    }
    {
      Instance in = MakeInstance(builder, env);
      ThroughputResult t16 = RpcWorkload::MeasureThroughput(
          *in.net, *in.ch->kernel, *in.sh->kernel, in.MakeCall(), 16 * 1024, 16);
      result.throughput_kbs = t16.kbytes_per_sec;
      result.client_cpu_ms = ToMsec(t16.client_cpu);
      result.server_cpu_ms = ToMsec(t16.server_cpu);
    }
    {
      Instance in = MakeInstance(builder, env);
      ThroughputResult t1 = RpcWorkload::MeasureThroughput(*in.net, *in.ch->kernel,
                                                           *in.sh->kernel, in.MakeCall(),
                                                           1 * 1024, 16);
      Instance in2 = MakeInstance(builder, env);
      ThroughputResult t16 = RpcWorkload::MeasureThroughput(
          *in2.net, *in2.ch->kernel, *in2.sh->kernel, in2.MakeCall(), 16 * 1024, 16);
      const double ms1 = ToMsec(t1.elapsed) / t1.completed;
      const double ms16 = ToMsec(t16.elapsed) / t16.completed;
      result.incr_ms_per_kb = (ms16 - ms1) / 15.0;
    }
    return result;
  }
};

// --- table printing ------------------------------------------------------------

inline void PrintTableHeader(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-30s %10s %14s %18s\n", "Configuration", "Latency", "Throughput",
              "Incremental Cost");
  std::printf("%-30s %10s %14s %18s\n", "", "(msec)", "(kbytes/sec)", "(msec/1k-bytes)");
  std::printf("%s\n", std::string(76, '-').c_str());
}

inline void PrintRow(const ConfigResult& r, double paper_lat = 0, double paper_tput = 0,
                     double paper_incr = 0) {
  std::printf("%-30s %10.2f %14.0f %18.2f", r.name.c_str(), r.latency_ms, r.throughput_kbs,
              r.incr_ms_per_kb);
  if (paper_lat > 0) {
    std::printf("   [paper: %.2f / %.0f / %.2f]", paper_lat, paper_tput, paper_incr);
  }
  std::printf("\n");
}

}  // namespace xk

#endif  // XK_BENCH_BENCH_UTIL_H_
