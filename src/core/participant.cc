#include "src/core/participant.h"

#include <sstream>

namespace xk {

std::string Participant::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  auto sep = [&]() {
    if (!first) {
      os << ",";
    }
    first = false;
  };
  if (host) {
    sep();
    os << "host=" << host->ToString();
  }
  if (eth) {
    sep();
    os << "eth=" << eth->ToString();
  }
  if (eth_type) {
    sep();
    os << "type=0x" << std::hex << *eth_type << std::dec;
  }
  if (ip_proto) {
    sep();
    os << "ipproto=" << static_cast<int>(*ip_proto);
  }
  if (rel_proto) {
    sep();
    os << "relproto=" << *rel_proto;
  }
  if (port) {
    sep();
    os << "port=" << *port;
  }
  if (channel) {
    sep();
    os << "chan=" << *channel;
  }
  if (command) {
    sep();
    os << "cmd=" << *command;
  }
  os << "}";
  return os.str();
}

std::string ParticipantSet::ToString() const {
  return "local=" + local.ToString() + " peer=" + peer.ToString();
}

}  // namespace xk
