// Tests for the discrete-event core.

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace xk {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Usec(30), [&] { order.push_back(3); });
  q.ScheduleAt(Usec(10), [&] { order.push_back(1); });
  q.ScheduleAt(Usec(20), [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Usec(30));
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(Usec(10), [&order, i] { order.push_back(i); });
  }
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(Usec(100), [&] {
    q.ScheduleIn(Usec(50), [&] { fired_at = q.now(); });
  });
  q.Run();
  EXPECT_EQ(fired_at, Usec(150));
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(Usec(100), [&] {
    q.ScheduleAt(Usec(10), [&] { fired_at = q.now(); });  // in the past
  });
  q.Run();
  EXPECT_EQ(fired_at, Usec(100));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.ScheduleAt(Usec(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());  // second cancel is a no-op
  q.Run();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, HandleReportsFiredEventNotPending) {
  EventQueue q;
  EventHandle h = q.ScheduleAt(Usec(5), [] {});
  q.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Usec(10), [&] { order.push_back(1); });
  q.ScheduleAt(Usec(20), [&] { order.push_back(2); });
  q.ScheduleAt(Usec(30), [&] { order.push_back(3); });
  EXPECT_EQ(q.RunUntil(Usec(20)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(q.empty());
  q.Run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.ScheduleAt(Usec(5), [&] { fired = true; });
  q.ScheduleAt(Usec(10), [&] {});
  h.Cancel();
  EXPECT_EQ(q.RunUntil(Usec(20)), 1u);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, MaxEventsBound) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(Usec(i), [&] { ++count; });
  }
  EXPECT_EQ(q.Run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      q.ScheduleIn(Usec(1), chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), Usec(99));
}

TEST(EventQueueTest, AdvanceToMovesClock) {
  EventQueue q;
  q.AdvanceTo(Msec(5));
  EXPECT_EQ(q.now(), Msec(5));
}

TEST(EventQueueTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      q.ScheduleAt(Usec((i * 7) % 5), [&order, i] { order.push_back(i); });
    }
    q.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xk
