// Shepherd-process synchronization (x-kernel "process" tool).
//
// The x-kernel runs a light-weight shepherd process per message; when one
// blocks (a client awaiting a reply, SELECT awaiting a free channel) it waits
// on a semaphore, and the V that wakes it pays a process switch. In the
// discrete-event model a blocked shepherd is a stored continuation: P() with
// an empty count queues the continuation, and the V() that releases it runs
// it inline on the signalling host's CPU after charging sem + switch costs --
// time-accurate for a uniprocessor, where the woken process really does run
// on the same CPU right after the waker.

#ifndef XK_SRC_TOOLS_SEMAPHORE_H_
#define XK_SRC_TOOLS_SEMAPHORE_H_

#include <deque>
#include <functional>

#include "src/core/kernel.h"

namespace xk {

class XSemaphore {
 public:
  XSemaphore(Kernel& kernel, int initial_count)
      : kernel_(kernel), count_(initial_count) {}

  // P (wait): if a unit is available, consume it and run `k` immediately
  // (charging one semaphore op). Otherwise queue `k` until a V() releases it.
  void P(std::function<void()> k) {
    kernel_.ChargeSemOp();
    if (count_ > 0) {
      --count_;
      k();
      return;
    }
    waiters_.push_back(std::move(k));
  }

  // V (signal): release one unit. If a shepherd is waiting, charge the
  // process switch and run it now; otherwise bank the unit.
  void V() {
    kernel_.ChargeSemOp();
    if (!waiters_.empty()) {
      std::function<void()> k = std::move(waiters_.front());
      waiters_.pop_front();
      kernel_.ChargeProcessSwitch();
      k();
      return;
    }
    ++count_;
  }

  int count() const { return count_; }
  size_t waiting() const { return waiters_.size(); }

 private:
  Kernel& kernel_;
  int count_;
  std::deque<std::function<void()>> waiters_;
};

}  // namespace xk

#endif  // XK_SRC_TOOLS_SEMAPHORE_H_
