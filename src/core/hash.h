// Hashing customization point for demux keys.
//
// The real x-kernel map tool is a hash table over fixed-size external ids
// (header fields); every protocol's demux key here is a small value type --
// an address, a protocol number, or a tuple of them -- so hashing reduces to
// mixing a few machine words. XkHash<T> is the per-key-type hook: protocols
// with exotic keys specialize it next to the key definition, and tuple keys
// compose element hashes automatically.

#ifndef XK_SRC_CORE_HASH_H_
#define XK_SRC_CORE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <type_traits>

#include "src/core/types.h"

namespace xk {

// splitmix64 finalizer: cheap, and every input bit affects every output bit.
// Demux keys are dense small integers (protocol numbers, host addresses
// numbered from 10.0.0.x), so table indices must come from mixed high bits,
// not the raw value.
constexpr uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return MixBits(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

// Primary template is undefined: a key type without a specialization (or one
// of the generic cases below) is a compile error at the DemuxMap that uses it.
template <typename T, typename Enable = void>
struct XkHash;

template <typename T>
struct XkHash<T, std::enable_if_t<std::is_integral_v<T> || std::is_enum_v<T>>> {
  constexpr uint64_t operator()(T v) const {
    return MixBits(static_cast<uint64_t>(v));
  }
};

template <typename T>
struct XkHash<T*> {
  uint64_t operator()(T* p) const {
    return MixBits(reinterpret_cast<uintptr_t>(p));
  }
};

template <>
struct XkHash<IpAddr> {
  constexpr uint64_t operator()(IpAddr a) const { return MixBits(a.value()); }
};

template <>
struct XkHash<EthAddr> {
  constexpr uint64_t operator()(const EthAddr& a) const {
    uint64_t packed = 0;
    for (uint8_t b : a.bytes()) {
      packed = (packed << 8) | b;
    }
    return MixBits(packed);
  }
};

template <typename... Ts>
struct XkHash<std::tuple<Ts...>> {
  constexpr uint64_t operator()(const std::tuple<Ts...>& t) const {
    uint64_t seed = 0;
    std::apply(
        [&seed](const Ts&... elems) {
          ((seed = HashCombine(seed, XkHash<Ts>{}(elems))), ...);
        },
        t);
    return seed;
  }
};

// Equality hook, overridable per key type alongside XkHash.
template <typename T>
struct XkEq {
  constexpr bool operator()(const T& a, const T& b) const { return a == b; }
};

}  // namespace xk

#endif  // XK_SRC_CORE_HASH_H_
