// Throughput sweep: the 1k..16k request-size series behind every
// "Incremental Cost" column in Tables I and II (the paper reports the
// endpoints; this regenerates the whole series, figure-style).
//
// Shape claims: every x-kernel stack's per-call time is close to linear in
// message size with a slope near 1 ms per additional kbyte (the wire and the
// per-fragment CPU costs pipeline); ETH >= VIP > IP throughout; the layered
// stack tracks the monolithic stack.

#include "bench/bench_util.h"

namespace xk {
namespace {

struct Series {
  std::string name;
  RpcBench::Builder builder;
  HostEnv env = HostEnv::kXKernel;
};

int Run() {
  const std::vector<Series> series = {
      {"M_RPC-ETH", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); }},
      {"M_RPC-IP", [](HostStack& h) { return BuildMRpc(h, Delivery::kIp); }},
      {"M_RPC-VIP", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); }},
      {"L_RPC-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); }},
      {"L_RPC-VIPsize", [](HostStack& h) { return BuildLRpcDynamic(h); }},
      {"N_RPC", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); },
       HostEnv::kNativeSprite},
  };

  std::printf("\nThroughput sweep: per-call round trip (ms) vs request size\n");
  std::printf("%-8s", "size");
  for (const auto& s : series) {
    std::printf(" %14s", s.name.c_str());
  }
  std::printf("\n%s\n", std::string(8 + 15 * series.size(), '-').c_str());

  std::vector<std::vector<double>> per_call(series.size());
  for (size_t kb = 1; kb <= 16; ++kb) {
    std::printf("%-8zu", kb * 1024);
    for (size_t i = 0; i < series.size(); ++i) {
      RpcBench::Instance in = RpcBench::MakeInstance(series[i].builder, series[i].env);
      ThroughputResult t = RpcWorkload::MeasureThroughput(
          *in.net, *in.ch->kernel, *in.sh->kernel, in.MakeCall(), kb * 1024, 8);
      const double ms = ToMsec(t.elapsed) / t.completed;
      per_call[i].push_back(ms);
      std::printf(" %14.2f", ms);
    }
    std::printf("\n");
  }

  std::printf("\nThroughput at 16k (kbytes/sec):\n");
  for (size_t i = 0; i < series.size(); ++i) {
    const double t16 = per_call[i].back();
    std::printf("  %-16s %6.0f\n", series[i].name.c_str(), 16.0 / (t16 / 1000.0));
  }
  std::printf("\nSlope 1k->16k (ms per additional kbyte):\n");
  for (size_t i = 0; i < series.size(); ++i) {
    std::printf("  %-16s %6.2f\n", series[i].name.c_str(),
                (per_call[i].back() - per_call[i].front()) / 15.0);
  }
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
