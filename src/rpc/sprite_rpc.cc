#include "src/rpc/sprite_rpc.h"

#include <algorithm>

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr uint16_t kFlagRequest = 0x1;
constexpr uint16_t kFlagReply = 0x2;
constexpr uint16_t kFlagAck = 0x4;
constexpr uint16_t kFlagPleaseAck = 0x8;

uint16_t FullMask(uint16_t num_frags) {
  return num_frags >= 16 ? 0xFFFF : static_cast<uint16_t>((1u << num_frags) - 1);
}
}  // namespace

// ---------------------------------------------------------------------------
// Collect
// ---------------------------------------------------------------------------

bool SpriteRpcProtocol::Collect::Complete() const {
  return num_frags > 0 && have_mask == FullMask(num_frags);
}

Message SpriteRpcProtocol::Collect::Join(Kernel& kernel) const {
  Message whole;
  for (const Message& m : frags) {
    kernel.ChargeMsgJoin();
    whole.Append(m);
  }
  return whole;
}

// ---------------------------------------------------------------------------
// SpriteRpcProtocol
// ---------------------------------------------------------------------------

SpriteRpcProtocol::SpriteRpcProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), passive_(*this) {
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoSpriteRpc;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SpriteRpcProtocol::ClientPool*> SpriteRpcProtocol::PoolFor(IpAddr server) {
  auto it = client_pools_.find(server);
  if (it != client_pools_.end()) {
    return &it->second;
  }
  ParticipantSet lparts;
  lparts.peer.host = server;
  lparts.local.ip_proto = kIpProtoSpriteRpc;
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  ClientPool pool;
  pool.channels.resize(kNumChannels);
  pool.available = std::make_unique<XSemaphore>(kernel(), kNumChannels);
  pool.lower = *lower_sess;
  return &client_pools_.emplace(server, std::move(pool)).first->second;
}

Result<SessionRef> SpriteRpcProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.peer.command.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const SessKey key{*parts.peer.host, *parts.peer.command};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  Result<ClientPool*> pool = PoolFor(*parts.peer.host);
  if (!pool.ok()) {
    return pool.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<SpriteClientSession>(*this, &hlp, *parts.peer.host,
                                                    *parts.peer.command);
  active_.Bind(key, sess);
  return SessionRef(sess);
}

Status SpriteRpcProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  const uint16_t command = parts.local.command.value_or(kAnyCommand);
  Protocol* existing = nullptr;
  if (!passive_.TryBind(command, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(command, &hlp);  // idempotent re-enable recharges, as before
  }
  return OkStatus();
}

void SpriteRpcProtocol::SendPacket(Session& lls, const Header& hdr, const Message& payload) {
  uint8_t raw[kHeaderSize];
  WireWriter w(raw);
  w.PutU16(hdr.flags);
  w.PutIpAddr(hdr.clnt_host);
  w.PutIpAddr(hdr.srvr_host);
  w.PutU16(hdr.channel);
  w.PutU16(hdr.srvr_process);
  w.PutU32(hdr.seq);
  w.PutU16(hdr.num_frags);
  w.PutU16(hdr.frag_mask);
  w.PutU16(hdr.command);
  w.PutU32(hdr.boot_id);
  w.PutU16(hdr.data1_sz);
  w.PutU16(0);  // data2_sz: unused (see file comment)
  w.PutU16(0);  // data1_offset
  w.PutU16(0);  // data2_offset
  Message pkt = payload;
  kernel().ChargeHdrStore(kHeaderSize);
  kernel().Charge(Usec(20));  // dual data-area size/offset bookkeeping
  pkt.PushHeader(raw);
  ++stats_.fragments_sent;
  (void)lls.Push(pkt);
}

std::vector<Message> SpriteRpcProtocol::Fragment(Kernel& kernel, const Message& msg) {
  std::vector<Message> frags;
  const size_t n = std::max<size_t>(1, (msg.length() + kFragSize - 1) / kFragSize);
  frags.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (n > 1) {
      kernel.ChargeMsgSlice();
      frags.push_back(msg.Slice(i * kFragSize, kFragSize));
    } else {
      frags.push_back(msg);
    }
  }
  return frags;
}

void SpriteRpcProtocol::SendRequestFrags(IpAddr server, ClientPool& pool, size_t index,
                                         uint16_t resend_mask, bool please_ack) {
  ClientChannel& chan = pool.channels[index];
  Header hdr;
  hdr.flags = kFlagRequest;
  if (please_ack) {
    hdr.flags |= kFlagPleaseAck;
  }
  hdr.clnt_host = kernel().ip_addr();
  hdr.srvr_host = server;
  hdr.channel = static_cast<uint16_t>(index);
  hdr.seq = chan.seq;
  hdr.num_frags = static_cast<uint16_t>(chan.request_frags.size());
  hdr.command = chan.command;
  hdr.boot_id = kernel().boot_id();
  for (size_t i = 0; i < chan.request_frags.size(); ++i) {
    if ((resend_mask & (1u << i)) == 0) {
      continue;
    }
    hdr.frag_mask = static_cast<uint16_t>(1u << i);
    hdr.data1_sz = static_cast<uint16_t>(chan.request_frags[i].length());
    SendPacket(*pool.lower, hdr, chan.request_frags[i]);
  }
}

void SpriteRpcProtocol::ArmTimer(IpAddr server, size_t index) {
  ClientPool& pool = client_pools_.at(server);
  ClientChannel& chan = pool.channels[index];
  const SimTime step =
      base_timeout_ * static_cast<SimTime>(chan.request_frags.size()) * (chan.acked ? 4 : 1);
  chan.timer = kernel().SetTimer(step, [this, server, index]() { OnTimeout(server, index); });
}

void SpriteRpcProtocol::ReleaseChannel(ClientPool& pool, size_t index) {
  ClientChannel& chan = pool.channels[index];
  chan.busy = false;
  chan.caller.reset();
  chan.request = Message();
  chan.request_frags.clear();
  pool.available->V();
}

void SpriteRpcProtocol::OnTimeout(IpAddr server, size_t index) {
  auto it = client_pools_.find(server);
  if (it == client_pools_.end() || !it->second.channels[index].busy) {
    return;
  }
  ClientChannel& chan = it->second.channels[index];
  if (chan.retries >= retry_limit_) {
    ++stats_.call_failures;
    auto caller = chan.caller;
    ReleaseChannel(it->second, index);
    if (caller != nullptr && caller->hlp() != nullptr) {
      caller->hlp()->SessionError(*caller, ErrStatus(StatusCode::kTimeout));
    }
    return;
  }
  ++chan.retries;
  ++stats_.retransmissions;
  // Sprite-style probe: resend the lowest unacknowledged fragment with
  // PLEASE_ACK. The server's partial ack then names exactly what is missing,
  // and the selective resend fills only those holes -- much cheaper than
  // blindly retransmitting a 16-fragment message.
  const uint16_t missing = static_cast<uint16_t>(
      FullMask(static_cast<uint16_t>(chan.request_frags.size())) & ~chan.server_has_mask);
  uint16_t probe = 1;
  for (uint16_t bit = 0; bit < 16; ++bit) {
    if (missing & (1u << bit)) {
      probe = static_cast<uint16_t>(1u << bit);
      break;
    }
  }
  SendRequestFrags(server, it->second, index, probe, true);
  ArmTimer(server, index);
}

void SpriteRpcProtocol::StartCall(IpAddr server, ClientPool& pool, size_t index,
                                  std::shared_ptr<SpriteClientSession> caller, uint16_t command,
                                  Message msg) {
  ClientChannel& chan = pool.channels[index];
  chan.busy = true;
  chan.seq += 1;
  chan.caller = std::move(caller);
  chan.command = command;
  chan.request = msg;
  chan.request_frags = Fragment(kernel(), msg);
  kernel().ChargeMapBind();  // record the outstanding transaction
  chan.server_has_mask = 0;
  chan.retries = 0;
  chan.acked = false;
  chan.reply = Collect{};
  ++stats_.calls_sent;
  SendRequestFrags(server, pool, index,
                   FullMask(static_cast<uint16_t>(chan.request_frags.size())), false);
  ArmTimer(server, index);
  kernel().ChargeSemOp();  // the calling shepherd blocks awaiting the reply
}

Status SpriteRpcProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  Header hdr;
  hdr.flags = r.GetU16();
  hdr.clnt_host = r.GetIpAddr();
  hdr.srvr_host = r.GetIpAddr();
  hdr.channel = r.GetU16();
  hdr.srvr_process = r.GetU16();
  hdr.seq = r.GetU32();
  hdr.num_frags = r.GetU16();
  hdr.frag_mask = r.GetU16();
  hdr.command = r.GetU16();
  hdr.boot_id = r.GetU32();
  hdr.data1_sz = r.GetU16();
  r.Skip(6);
  kernel().Charge(Usec(20));  // dual data-area size/offset bookkeeping
  msg.Truncate(hdr.data1_sz);

  if (hdr.flags & kFlagRequest) {
    return HandleRequest(hdr, msg, lls);
  }
  return HandleReplyOrAck(hdr, msg);
}

Status SpriteRpcProtocol::HandleRequest(const Header& hdr, Message& payload, Session* lls) {
  const ServKey key{hdr.clnt_host, hdr.channel};
  kernel().ChargeMapResolve();
  ServerChannel& chan = server_chans_[key];
  if (lls != nullptr) {
    chan.reply_lls = lls->Ref();
  }
  if (chan.clnt_boot_id != 0 && chan.clnt_boot_id != hdr.boot_id) {
    ++stats_.boot_resets;
    chan = ServerChannel{};
    if (lls != nullptr) {
      chan.reply_lls = lls->Ref();
    }
  }
  chan.clnt_boot_id = hdr.boot_id;

  if (hdr.seq < chan.cur_seq) {
    return OkStatus();  // stale
  }
  if (hdr.seq == chan.cur_seq) {
    // Fragment of the current transaction -- or a duplicate of it.
    if (chan.saved_reply.has_value()) {
      // The whole request was already executed: at-most-once. Resend reply.
      ++stats_.duplicates_suppressed;
      ++stats_.replies_resent;
      SendReplyFrags(chan, hdr.clnt_host, hdr.channel, *chan.saved_reply);
      return OkStatus();
    }
    if (chan.in_progress) {
      ++stats_.duplicates_suppressed;
      if (hdr.flags & kFlagPleaseAck) {
        // Explicit ack with the fragments we hold (all of them: executing).
        Header ack;
        ack.flags = kFlagAck;
        ack.clnt_host = hdr.clnt_host;
        ack.srvr_host = kernel().ip_addr();
        ack.channel = hdr.channel;
        ack.seq = hdr.seq;
        ack.num_frags = chan.request.num_frags;
        ack.frag_mask = chan.request.have_mask;
        ack.boot_id = kernel().boot_id();
        ++stats_.explicit_acks_sent;
        SendPacket(*chan.reply_lls, ack, Message());
      }
      return OkStatus();
    }
  } else {
    // New transaction: implicitly acknowledges the previous reply.
    chan.cur_seq = hdr.seq;
    chan.saved_reply.reset();
    chan.in_progress = false;
    chan.request.Reset(hdr.num_frags);
  }

  // Collect this fragment.
  if (chan.request.num_frags == 0) {
    chan.request.Reset(hdr.num_frags);
  }
  int index = -1;
  for (int i = 0; i < 16; ++i) {
    if (hdr.frag_mask == (1u << i)) {
      index = i;
      break;
    }
  }
  if (index < 0 || index >= hdr.num_frags) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if ((chan.request.have_mask & (1u << index)) == 0) {
    chan.request.have_mask |= static_cast<uint16_t>(1u << index);
    chan.request.frags[index] = payload;
  } else if (hdr.flags & kFlagPleaseAck) {
    // Duplicate fragment with an ack request: partial ack so the client
    // resends only what is missing.
    Header ack;
    ack.flags = kFlagAck;
    ack.clnt_host = hdr.clnt_host;
    ack.srvr_host = kernel().ip_addr();
    ack.channel = hdr.channel;
    ack.seq = hdr.seq;
    ack.num_frags = chan.request.num_frags;
    ack.frag_mask = chan.request.have_mask;
    ack.boot_id = kernel().boot_id();
    ++stats_.explicit_acks_sent;
    SendPacket(*chan.reply_lls, ack, Message());
    return OkStatus();
  }
  if (!chan.request.Complete()) {
    return OkStatus();
  }

  // Full request assembled: execute exactly once.
  Message whole = chan.request.num_frags == 1 ? chan.request.frags[0]
                                              : chan.request.Join(kernel());
  chan.in_progress = true;
  chan.last_command = hdr.command;
  ++stats_.requests_executed;

  Protocol* hlp = passive_.Resolve(hdr.command);
  if (hlp == nullptr) {
    hlp = passive_.Peek(kAnyCommand);
  }
  if (hlp == nullptr) {
    kernel().Tracef(2, "sprite: no binding for command %u", hdr.command);
    return ErrStatus(StatusCode::kNotFound);
  }
  if (chan.server_sess == nullptr) {
    kernel().ChargeSessionCreate();
    chan.server_sess =
        std::make_shared<SpriteServerSession>(*this, hlp, hdr.clnt_host, hdr.channel);
    ParticipantSet up;
    up.peer.host = hdr.clnt_host;
    up.local.channel = hdr.channel;
    up.local.command = hdr.command;
    Status s = hlp->OpenDoneUp(*this, chan.server_sess, up);
    if (!s.ok()) {
      chan.server_sess.reset();
      return s;
    }
  }
  chan.server_sess->set_hlp(hlp);
  // Dispatch to the server process.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  return chan.server_sess->Pop(whole, lls);
}

void SpriteRpcProtocol::SendReplyFrags(ServerChannel& chan, IpAddr clnt, uint16_t channel_id,
                                       const Message& reply) {
  if (chan.reply_lls == nullptr) {
    return;
  }
  std::vector<Message> frags = Fragment(kernel(), reply);
  Header hdr;
  hdr.flags = kFlagReply;
  hdr.clnt_host = clnt;
  hdr.srvr_host = kernel().ip_addr();
  hdr.channel = channel_id;
  hdr.seq = chan.cur_seq;
  hdr.num_frags = static_cast<uint16_t>(frags.size());
  hdr.command = chan.last_command;
  hdr.boot_id = kernel().boot_id();
  for (size_t i = 0; i < frags.size(); ++i) {
    hdr.frag_mask = static_cast<uint16_t>(1u << i);
    hdr.data1_sz = static_cast<uint16_t>(frags[i].length());
    SendPacket(*chan.reply_lls, hdr, frags[i]);
  }
}

Status SpriteRpcProtocol::HandleReplyOrAck(const Header& hdr, Message& payload) {
  // We are the client: hdr.clnt_host is us, hdr.srvr_host is the peer.
  kernel().ChargeMapResolve();
  auto it = client_pools_.find(hdr.srvr_host);
  if (it == client_pools_.end() || hdr.channel >= it->second.channels.size()) {
    return ErrStatus(StatusCode::kNotFound);
  }
  ClientPool& pool = it->second;
  ClientChannel& chan = pool.channels[hdr.channel];
  if (!chan.busy || hdr.seq != chan.seq) {
    return OkStatus();  // stale reply
  }
  if (hdr.flags & kFlagAck) {
    // Partial/explicit ack: the server tells us which fragments it holds.
    chan.acked = true;
    chan.server_has_mask = hdr.frag_mask;
    const uint16_t missing = static_cast<uint16_t>(
        FullMask(static_cast<uint16_t>(chan.request_frags.size())) & ~hdr.frag_mask);
    if (missing != 0 && hdr.num_frags != 0) {
      stats_.selective_resends +=
          static_cast<uint64_t>(__builtin_popcount(missing));
      SendRequestFrags(hdr.srvr_host, pool, hdr.channel, missing, false);
    }
    kernel().CancelTimer(chan.timer);
    ArmTimer(hdr.srvr_host, hdr.channel);
    return OkStatus();
  }
  if ((hdr.flags & kFlagReply) == 0) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  // Reply fragment.
  if (chan.reply.num_frags == 0) {
    chan.reply.Reset(hdr.num_frags);
  }
  int index = -1;
  for (int i = 0; i < 16; ++i) {
    if (hdr.frag_mask == (1u << i)) {
      index = i;
      break;
    }
  }
  if (index < 0 || index >= hdr.num_frags) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if ((chan.reply.have_mask & (1u << index)) == 0) {
    chan.reply.have_mask |= static_cast<uint16_t>(1u << index);
    chan.reply.frags[index] = payload;
  }
  if (!chan.reply.Complete()) {
    return OkStatus();
  }
  Message whole =
      chan.reply.num_frags == 1 ? chan.reply.frags[0] : chan.reply.Join(kernel());
  kernel().CancelTimer(chan.timer);
  auto caller = chan.caller;
  ReleaseChannel(pool, hdr.channel);
  ++stats_.replies_received;
  // Wake the blocked calling shepherd.
  kernel().ChargeSemOp();
  kernel().ChargeProcessSwitch();
  if (caller == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  return caller->Pop(whole, nullptr);
}

Status SpriteRpcProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxSendSize:
      // "Sprite RPC reports that it never sends a message greater than
      // 1500 bytes (it has its own fragmentation mechanism)" -- Section 3.1.
      args.u64 = kFragSize + kHeaderSize;
      return OkStatus();
    case ControlOp::kGetMaxPacket:
      args.u64 = kMaxMessage;
      return OkStatus();
    case ControlOp::kGetRetransmits:
      args.u64 = stats_.retransmissions;
      return OkStatus();
    case ControlOp::kGetDuplicatesDropped:
      args.u64 = stats_.duplicates_suppressed;
      return OkStatus();
    case ControlOp::kSetTimeoutBase:
      base_timeout_ = static_cast<SimTime>(args.u64);
      return OkStatus();
    case ControlOp::kSetRetransmitLimit:
      retry_limit_ = static_cast<int>(args.u64);
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// SpriteClientSession
// ---------------------------------------------------------------------------

SpriteClientSession::SpriteClientSession(SpriteRpcProtocol& owner, Protocol* hlp, IpAddr server,
                                         uint16_t command)
    : Session(owner, hlp), rpc_(owner), server_(server), command_(command) {}

Status SpriteClientSession::DoPush(Message& msg) {
  if (msg.length() > SpriteRpcProtocol::kMaxMessage) {
    return ErrStatus(StatusCode::kTooBig);
  }
  Result<SpriteRpcProtocol::ClientPool*> pool_r = rpc_.PoolFor(server_);
  if (!pool_r.ok()) {
    return pool_r.status();
  }
  SpriteRpcProtocol::ClientPool* pool = *pool_r;
  if (pool->available->count() == 0) {
    ++rpc_.stats_.blocked_on_channel;
  }
  auto self = std::static_pointer_cast<SpriteClientSession>(Ref());
  pool->available->P([this, pool, self, msg]() {
    size_t index = 0;
    kernel().ChargeMapResolve();
    while (index < pool->channels.size() && pool->channels[index].busy) {
      ++index;
    }
    rpc_.StartCall(server_, *pool, index, self, command_, msg);
  });
  return OkStatus();
}

Status SpriteClientSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SpriteClientSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = server_;
      return OkStatus();
    case ControlOp::kGetLastCommand:
      args.u64 = command_;
      return OkStatus();
    case ControlOp::kGetMaxPacket:
      args.u64 = SpriteRpcProtocol::kMaxMessage;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// SpriteServerSession
// ---------------------------------------------------------------------------

SpriteServerSession::SpriteServerSession(SpriteRpcProtocol& owner, Protocol* hlp, IpAddr clnt,
                                         uint16_t channel)
    : Session(owner, hlp), rpc_(owner), clnt_(clnt), channel_(channel) {}

uint16_t SpriteServerSession::last_command() const {
  auto it = rpc_.server_chans_.find(SpriteRpcProtocol::ServKey{clnt_, channel_});
  return it == rpc_.server_chans_.end() ? 0 : it->second.last_command;
}

Status SpriteServerSession::DoPush(Message& msg) {
  auto it = rpc_.server_chans_.find(SpriteRpcProtocol::ServKey{clnt_, channel_});
  if (it == rpc_.server_chans_.end() || !it->second.in_progress) {
    return ErrStatus(StatusCode::kError);
  }
  SpriteRpcProtocol::ServerChannel& chan = it->second;
  chan.in_progress = false;
  chan.saved_reply = msg;  // kept until the next request implicitly acks it
  rpc_.SendReplyFrags(chan, clnt_, channel_, msg);
  return OkStatus();
}

Status SpriteServerSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status SpriteServerSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = clnt_;
      return OkStatus();
    case ControlOp::kGetLastCommand:
      args.u64 = last_command();
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
