// ARP: Ethernet address resolution.
//
// VIP decides whether a destination is on the local Ethernet by "trying to
// resolve the IP address using ARP" (paper, Section 3.1); IP uses ARP to find
// the Ethernet address of a local destination or of the gateway.
//
// Resolution is exposed two ways:
//  * Control(kResolve / kResolveTest): cache-only, synchronous -- this is the
//    fast path VIP uses at open time once the cache is warm.
//  * Resolve(ip, callback): asynchronous -- broadcasts a request and retries
//    until a reply arrives or the retry limit is exhausted. Used on a cold
//    cache by the OpenAsync paths.

#ifndef XK_SRC_PROTO_ARP_H_
#define XK_SRC_PROTO_ARP_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/protocol.h"
#include "src/sim/event_queue.h"

namespace xk {

class ArpProtocol : public Protocol {
 public:
  static constexpr size_t kPacketSize = 22;  // op + 2x(ip, eth)
  static constexpr int kDefaultRetries = 3;

  // `eth` is the Ethernet protocol ARP broadcasts through. `my_ip` defaults
  // to the kernel's address; routers pass the interface's address (and a
  // distinct `name`, e.g. "arp0").
  ArpProtocol(Kernel& kernel, Protocol* eth, std::optional<IpAddr> my_ip = std::nullopt,
              std::string name = "arp");

  using ResolveCallback = std::function<void(Result<EthAddr>)>;

  // Asynchronous resolution; completes from cache immediately when warm.
  // Must be called from within a task.
  void Resolve(IpAddr ip, ResolveCallback done);

  // Cache-only lookup (no traffic). nullopt on miss.
  std::optional<EthAddr> Lookup(IpAddr ip) const;

  // Cache-only reverse lookup: which IP address advertised `eth`?
  std::optional<IpAddr> ReverseLookup(EthAddr eth) const;

  void set_retry_timeout(SimTime t) { retry_timeout_ = t; }
  void set_max_retries(int n) { max_retries_ = n; }

  uint64_t requests_sent() const { return requests_sent_; }
  uint64_t replies_sent() const { return replies_sent_; }

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  struct Pending {
    std::vector<ResolveCallback> waiters;
    int attempts = 0;
    EventHandle timer;
  };

  void SendRequest(IpAddr target);
  void SendReply(IpAddr target_ip, EthAddr target_eth);
  void RetryOrFail(IpAddr target);
  SessionRef BroadcastSession();

  IpAddr my_ip_;
  EthAddr my_eth_;
  std::map<IpAddr, EthAddr> cache_;
  std::map<IpAddr, Pending> pending_;
  SessionRef bcast_;
  SimTime retry_timeout_ = Msec(100);
  int max_retries_ = kDefaultRetries;
  uint64_t requests_sent_ = 0;
  uint64_t replies_sent_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_ARP_H_
