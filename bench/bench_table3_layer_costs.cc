// Table III: Cost of Individual RPC Layers (paper, Section 4.2).
//
// Measures the null round trip through each partial stack:
//   VIP, FRAGMENT-VIP, CHANNEL-FRAGMENT-VIP, SELECT-CHANNEL-FRAGMENT-VIP
// and reports each layer's incremental latency.
//
// Shape claims to reproduce:
//   * SELECT (the trivial layer) costs ~0.11 ms -- the per-layer floor that
//     makes ten-layer stacks thinkable;
//   * CHANNEL is the most expensive layer (~0.49 ms) because of the
//     synchronization and process switching intrinsic to request/reply;
//   * FRAGMENT costs ~0.21 ms;
//   * FRAGMENT by itself achieves ~865 kbytes/sec.

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  std::printf("\nTable III: Cost of Individual RPC Layers\n");
  std::printf("%-34s %10s %20s\n", "Configuration", "Latency", "Incremental Cost");
  std::printf("%-34s %10s %20s\n", "", "(msec)", "(msec/layer)");
  std::printf("%s\n", std::string(70, '-').c_str());

  const double paper[4] = {1.12, 1.33, 1.82, 1.93};
  const char* names[4] = {"VIP", "FRAGMENT-VIP", "CHANNEL-FRAGMENT-VIP",
                          "SELECT-CHANNEL-FRAGMENT-VIP"};
  double lat[4];
  for (int i = 0; i < 3; ++i) {
    lat[i] = MeasurePartialLatency(i).ms;
  }
  {
    // The full stack uses the real RPC anchors.
    ConfigResult full = RpcBench::Measure(
        "SELECT-CHANNEL-FRAGMENT-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
    lat[3] = full.latency_ms;
  }
  for (int i = 0; i < 4; ++i) {
    if (i == 0) {
      std::printf("%-34s %10.2f %20s   [paper: %.2f]\n", names[i], lat[i], "NA", paper[i]);
    } else {
      std::printf("%-34s %10.2f %20.2f   [paper: %.2f, +%.2f]\n", names[i], lat[i],
                  lat[i] - lat[i - 1], paper[i], paper[i] - paper[i - 1]);
    }
  }

  const double frag_tput = MeasureFragmentThroughput().kbytes_per_sec;
  std::printf("\nFRAGMENT standalone throughput: %.0f kbytes/sec   [paper: 865]\n", frag_tput);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
