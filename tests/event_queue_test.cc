// Tests for the discrete-event core.

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

namespace xk {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Usec(30), [&] { order.push_back(3); });
  q.ScheduleAt(Usec(10), [&] { order.push_back(1); });
  q.ScheduleAt(Usec(20), [&] { order.push_back(2); });
  EXPECT_EQ(q.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Usec(30));
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(Usec(10), [&order, i] { order.push_back(i); });
  }
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(Usec(100), [&] {
    q.ScheduleIn(Usec(50), [&] { fired_at = q.now(); });
  });
  q.Run();
  EXPECT_EQ(fired_at, Usec(150));
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(Usec(100), [&] {
    q.ScheduleAt(Usec(10), [&] { fired_at = q.now(); });  // in the past
  });
  q.Run();
  EXPECT_EQ(fired_at, Usec(100));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.ScheduleAt(Usec(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());  // second cancel is a no-op
  q.Run();
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, HandleReportsFiredEventNotPending) {
  EventQueue q;
  EventHandle h = q.ScheduleAt(Usec(5), [] {});
  q.Run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.Cancel());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Usec(10), [&] { order.push_back(1); });
  q.ScheduleAt(Usec(20), [&] { order.push_back(2); });
  q.ScheduleAt(Usec(30), [&] { order.push_back(3); });
  EXPECT_EQ(q.RunUntil(Usec(20)), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(q.empty());
  q.Run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueueTest, RunUntilSkipsCancelledHead) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.ScheduleAt(Usec(5), [&] { fired = true; });
  q.ScheduleAt(Usec(10), [&] {});
  h.Cancel();
  EXPECT_EQ(q.RunUntil(Usec(20)), 1u);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, MaxEventsBound) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(Usec(i), [&] { ++count; });
  }
  EXPECT_EQ(q.Run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      q.ScheduleIn(Usec(1), chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), Usec(99));
}

TEST(EventQueueTest, AdvanceToMovesClock) {
  EventQueue q;
  q.AdvanceTo(Msec(5));
  EXPECT_EQ(q.now(), Msec(5));
}

TEST(EventQueueTest, CancelInsideOwnHandlerIsNoOp) {
  // By the time a handler runs, its own handle is already retired: a Cancel()
  // from inside the handler must report false (the kernel uses this to decide
  // whether to charge timer_cancel).
  EventQueue q;
  EventHandle h;
  bool cancel_result = true;
  h = q.ScheduleAt(Usec(5), [&] { cancel_result = h.Cancel(); });
  q.Run();
  EXPECT_FALSE(cancel_result);
}

TEST(EventQueueTest, CancellationStorm) {
  // Schedule thousands of timers and cancel almost all of them -- the
  // retransmit pattern at scale. Only the survivors fire, in order, and the
  // queue's live accounting stays exact throughout.
  EventQueue q;
  constexpr int kEvents = 4096;
  std::vector<EventHandle> handles;
  handles.reserve(kEvents);
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(q.ScheduleAt(Usec(i), [&fired, i] { fired.push_back(i); }));
  }
  EXPECT_EQ(q.pending_events(), static_cast<size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    if (i % 64 != 0) {
      EXPECT_TRUE(handles[i].Cancel());
    }
  }
  EXPECT_EQ(q.pending_events(), static_cast<size_t>(kEvents / 64));
  q.Run();
  ASSERT_EQ(fired.size(), static_cast<size_t>(kEvents / 64));
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(i) * 64);
  }
  EXPECT_TRUE(q.empty());
  // Every cancelled handle stays dead.
  for (auto& h : handles) {
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.Cancel());
  }
}

TEST(EventQueueTest, HandleStaysDeadAfterSlotReuse) {
  // Once an event fires or is cancelled its slab slot is recycled for new
  // events. Old handles -- including copies -- must keep reporting dead even
  // while a new event occupies the same slot.
  EventQueue q;
  EventHandle first = q.ScheduleAt(Usec(1), [] {});
  EventHandle first_copy = first;
  q.Run();
  EXPECT_FALSE(first.pending());

  // With one slot free, this reuses it under a bumped generation.
  bool second_fired = false;
  EventHandle second = q.ScheduleIn(Usec(1), [&] { second_fired = true; });
  EXPECT_TRUE(second.pending());
  EXPECT_FALSE(first.pending());
  EXPECT_FALSE(first_copy.pending());
  EXPECT_FALSE(first.Cancel());  // must not kill the new occupant
  EXPECT_TRUE(second.pending());
  q.Run();
  EXPECT_TRUE(second_fired);

  // Same pattern through many reuse cycles.
  std::vector<EventHandle> stale;
  for (int i = 0; i < 100; ++i) {
    EventHandle h = q.ScheduleIn(Usec(1), [] {});
    for (auto& old : stale) {
      EXPECT_FALSE(old.Cancel());
    }
    EXPECT_TRUE(h.pending());
    if (i % 2 == 0) {
      EXPECT_TRUE(h.Cancel());
    } else {
      q.Run();
    }
    stale.push_back(h);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DifferentialAgainstReferenceModel) {
  // Replay a long random schedule/cancel/run trace against a transparent
  // reference implementation with the seed's priority-queue semantics
  // ((at, seq) ordering, cancellation by flag). Firing order, firing times,
  // cancel return values, and live counts must match exactly.
  struct RefEvent {
    SimTime at;
    uint64_t seq;
    int id;
    bool operator>(const RefEvent& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<RefEvent>>
      ref_heap;
  std::vector<bool> ref_dead;  // id -> cancelled-or-fired
  SimTime ref_now = 0;
  uint64_t ref_seq = 0;

  EventQueue q;
  std::vector<EventHandle> handles;
  std::vector<int> fired_real;
  std::vector<int> fired_ref;

  auto ref_live = [&] {
    size_t n = 0;
    for (size_t i = 0; i < ref_dead.size(); ++i) {
      // Count ids scheduled but neither fired nor cancelled.
      n += ref_dead[i] ? 0 : 1;
    }
    return n;
  };
  auto ref_run = [&](size_t max_events) {
    size_t fired = 0;
    while (fired < max_events && !ref_heap.empty()) {
      RefEvent ev = ref_heap.top();
      ref_heap.pop();
      if (ref_dead[ev.id]) continue;
      ref_now = ev.at;
      ref_dead[ev.id] = true;
      fired_ref.push_back(ev.id);
      ++fired;
    }
    return fired;
  };

  std::mt19937 rng(20260806);
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55) {  // schedule, sometimes in the "past" to exercise clamping
      const SimTime at = ref_now + static_cast<SimTime>(rng() % 500) - 50;
      const int id = static_cast<int>(ref_dead.size());
      const SimTime clamped = at < ref_now ? ref_now : at;
      ref_heap.push(RefEvent{clamped, ref_seq++, id});
      ref_dead.push_back(false);
      handles.push_back(
          q.ScheduleAt(at, [&fired_real, id] { fired_real.push_back(id); }));
    } else if (op < 85 && !handles.empty()) {  // cancel a random id
      const size_t victim = rng() % handles.size();
      const bool ref_was_live = !ref_dead[victim];
      ref_dead[victim] = true;
      EXPECT_EQ(handles[victim].Cancel(), ref_was_live) << "step " << step;
      EXPECT_FALSE(handles[victim].pending());
    } else {  // run a bounded burst
      const size_t burst = 1 + rng() % 8;
      EXPECT_EQ(q.Run(burst), ref_run(burst)) << "step " << step;
      EXPECT_EQ(q.now(), ref_now) << "step " << step;
    }
    EXPECT_EQ(q.pending_events(), ref_live()) << "step " << step;
  }
  q.Run();
  ref_run(SIZE_MAX);
  EXPECT_EQ(q.now(), ref_now);
  EXPECT_EQ(fired_real, fired_ref);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CountsFiredEvents) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(Usec(i), [] {});
  }
  EventHandle h = q.ScheduleAt(Usec(10), [] {});
  h.Cancel();
  q.Run();
  EXPECT_EQ(q.fired_total(), 5u);  // cancelled events don't count
  q.ScheduleIn(Usec(1), [] {});
  q.Run();
  EXPECT_EQ(q.fired_total(), 6u);  // lifetime counter, keeps accumulating
}

TEST(EventQueueTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      q.ScheduleAt(Usec((i * 7) % 5), [&order, i] { order.push_back(i); });
    }
    q.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace xk
