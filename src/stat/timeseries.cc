#include "src/stat/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "src/core/kernel.h"
#include "src/core/protocol.h"
#include "src/trace/json_util.h"

namespace xk {

namespace {
thread_local StatSampler* g_thread_default = nullptr;
}  // namespace

StatSampler* StatSampler::thread_default() { return g_thread_default; }

void StatSampler::set_thread_default(StatSampler* sampler) { g_thread_default = sampler; }

// --- HostSeries ----------------------------------------------------------------

void HostSeries::FlushTo(SimTime t) {
  if (kernel_ == nullptr) {
    return;
  }
  while (next_ <= t) {
    EmitSample(next_);
    next_ += period_;
  }
}

void HostSeries::EmitSample(SimTime at) {
  StatLine line;
  line.t = at;
  std::string& out = line.text;
  out += "{\"k\":\"host\"";
  JsonAppendField(out, "net", static_cast<int64_t>(net_));
  JsonAppendField(out, "t", at);
  JsonAppendField(out, "host", kernel_->host_name());
  JsonAppendField(out, "ready", kernel_->tasks_pending());
  const SimTime backlog = kernel_->cpu().busy_until() > at ? kernel_->cpu().busy_until() - at : 0;
  JsonAppendField(out, "backlog", backlog);
  JsonAppendField(out, "busy", kernel_->cpu().total_busy());
  out += ",\"g\":{";
  bool first = true;
  kernel_->ForEachProtocol([&](const Protocol& p) {
    p.ExportGauges([&](std::string_view name, uint64_t v) {
      if (!first) {
        out += ',';
      }
      first = false;
      JsonAppendEscaped(out, p.name() + "." + std::string(name));
      out += ':';
      out += std::to_string(v);
    });
  });
  out += "}}";
  lines_.push_back(std::move(line));
}

// --- SegmentSeries -------------------------------------------------------------

void SegmentSeries::OnTransmit(SimTime start, SimTime tx_time, uint64_t bytes,
                               uint64_t queue_depth) {
  // Boundaries <= start are cut first, so a sample at S covers exactly the
  // transmissions with start < S (starts are strictly monotone).
  FlushTo(start);
  ++frames_;
  bytes_ += bytes;
  busy_ += tx_time;
  last_depth_ = queue_depth;
}

void SegmentSeries::FlushTo(SimTime t) {
  while (next_ <= t) {
    EmitSample(next_);
    next_ += period_;
  }
}

void SegmentSeries::EmitSample(SimTime at) {
  StatLine line;
  line.t = at;
  std::string& out = line.text;
  const SimTime window = busy_ - busy_at_boundary_;
  busy_at_boundary_ = busy_;
  out += "{\"k\":\"seg\"";
  JsonAppendField(out, "net", static_cast<int64_t>(net_));
  JsonAppendField(out, "t", at);
  JsonAppendField(out, "seg", static_cast<int64_t>(segment_));
  JsonAppendField(out, "frames", frames_);
  JsonAppendField(out, "bytes", bytes_);
  JsonAppendField(out, "busy", busy_);
  JsonAppendField(out, "busy_w", window);
  // Utilization of the elapsed window, parts per million (integer, so the
  // line is byte-stable). A transmission is attributed entirely to the window
  // containing its bus acquisition, so short windows can exceed 1e6.
  JsonAppendField(out, "util_ppm",
                  static_cast<uint64_t>(period_ > 0 ? window * 1000000 / period_ : 0));
  JsonAppendField(out, "qdepth", last_depth_);
  out += "}";
  lines_.push_back(std::move(line));
}

// --- StatSampler ---------------------------------------------------------------

StatSampler::StatSampler(SimTime period) : period_(period > 0 ? period : Msec(1)) {}

StatSampler::~StatSampler() {
  for (auto& probe : probes_) {
    if (probe->queue != nullptr) {
      probe->queue->set_stat_probe(nullptr);
    }
  }
}

int StatSampler::AttachNet() { return next_net_++; }

void StatSampler::QueueProbe::BeforeFire(SimTime at) {
  if (at < min_next) {
    return;
  }
  SimTime next_min = kSimTimeNever;
  for (HostSeries* h : hosts) {
    h->FlushTo(at);
    if (h->next_ < next_min) {
      next_min = h->next_;
    }
  }
  min_next = next_min;
}

void StatSampler::RegisterKernel(int net, Kernel& kernel) {
  hosts_.emplace_back();
  HostSeries& h = hosts_.back();
  h.kernel_ = &kernel;
  h.net_ = net;
  h.period_ = period_;
  h.next_ = period_;  // first boundary: one period in (t=0 is setup state)
  int idx = 0;
  for (const HostSeries& other : hosts_) {
    if (&other != &h && other.net_ == net) {
      ++idx;
    }
  }
  h.idx_ = idx;

  EventQueue& q = kernel.events();
  QueueProbe* probe = nullptr;
  for (auto& p : probes_) {
    if (p->queue == &q) {
      probe = p.get();
      break;
    }
  }
  if (probe == nullptr) {
    probes_.push_back(std::make_unique<QueueProbe>());
    probe = probes_.back().get();
    probe->queue = &q;
    probe->net = net;
    q.set_stat_probe(probe);
  }
  probe->hosts.push_back(&h);
  if (h.next_ < probe->min_next) {
    probe->min_next = h.next_;
  }
}

SegmentSeries* StatSampler::RegisterSegment(int net, int segment_id) {
  segments_.emplace_back();
  SegmentSeries& s = segments_.back();
  s.net_ = net;
  s.segment_ = segment_id;
  s.period_ = period_;
  s.next_ = period_;
  return &s;
}

void StatSampler::FlushNet(int net, SimTime t) {
  for (HostSeries& h : hosts_) {
    if (h.net_ == net) {
      h.FlushTo(t);
    }
  }
  for (SegmentSeries& s : segments_) {
    if (s.net_ == net) {
      s.FlushTo(t);
    }
  }
  for (auto& probe : probes_) {
    if (probe->net == net && probe->queue != nullptr) {
      SimTime next_min = kSimTimeNever;
      for (const HostSeries* h : probe->hosts) {
        if (h->next_ < next_min) {
          next_min = h->next_;
        }
      }
      probe->min_next = next_min;
    }
  }
}

void StatSampler::DetachNet(int net) {
  for (auto& probe : probes_) {
    if (probe->net == net && probe->queue != nullptr) {
      probe->queue->set_stat_probe(nullptr);
      probe->queue = nullptr;
    }
  }
  for (HostSeries& h : hosts_) {
    if (h.net_ == net) {
      h.kernel_ = nullptr;
    }
  }
}

size_t StatSampler::num_samples() const {
  size_t n = 0;
  for (const HostSeries& h : hosts_) {
    n += h.lines_.size();
  }
  for (const SegmentSeries& s : segments_) {
    n += s.lines_.size();
  }
  return n;
}

std::string StatSampler::ToJsonl() const {
  // Canonical order: (net, t, kind, index). Independent of which thread or
  // engine emitted a line, so the file is byte-identical at any width.
  struct Ref {
    int net;
    SimTime t;
    int kind;  // 0 = host, 1 = segment
    int idx;
    const std::string* text;
  };
  std::vector<Ref> refs;
  refs.reserve(num_samples());
  for (const HostSeries& h : hosts_) {
    for (const StatLine& l : h.lines_) {
      refs.push_back(Ref{h.net_, l.t, 0, h.idx_, &l.text});
    }
  }
  for (const SegmentSeries& s : segments_) {
    for (const StatLine& l : s.lines_) {
      refs.push_back(Ref{s.net_, l.t, 1, s.segment_, &l.text});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.net != b.net) return a.net < b.net;
    if (a.t != b.t) return a.t < b.t;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });
  std::string out;
  out.reserve(refs.size() * 96 + 128);
  out += "{\"k\":\"meta\",\"v\":1,\"period_ns\":" + std::to_string(period_) +
         ",\"nets\":" + std::to_string(next_net_) +
         ",\"samples\":" + std::to_string(refs.size()) + "}\n";
  for (const Ref& r : refs) {
    out += *r.text;
    out += '\n';
  }
  return out;
}

bool StatSampler::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string s = ToJsonl();
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace xk
