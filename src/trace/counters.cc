#include "src/trace/counters.h"

#include "src/core/kernel.h"
#include "src/core/protocol.h"
#include "src/trace/json_util.h"

namespace xk {

void AppendHostCountersJson(std::string& out, const Kernel& kernel) {
  out += "{\"host\":";
  JsonAppendEscaped(out, kernel.host_name());
  out += ",\"protocols\":[";
  bool first_proto = true;
  kernel.ForEachProtocol([&](const Protocol& p) {
    if (!first_proto) {
      out += ',';
    }
    first_proto = false;
    out += "{\"protocol\":";
    JsonAppendEscaped(out, p.name());
    out += ",\"counters\":{";
    bool first_field = true;
    p.ExportCounters([&](std::string_view name, uint64_t value) {
      JsonAppendField(out, name, value, first_field);
      first_field = false;
    });
    out += "}}";
  });
  out += "]}";
}

}  // namespace xk
