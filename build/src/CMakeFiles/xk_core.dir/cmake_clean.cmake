file(REMOVE_RECURSE
  "CMakeFiles/xk_core.dir/core/kernel.cc.o"
  "CMakeFiles/xk_core.dir/core/kernel.cc.o.d"
  "CMakeFiles/xk_core.dir/core/message.cc.o"
  "CMakeFiles/xk_core.dir/core/message.cc.o.d"
  "CMakeFiles/xk_core.dir/core/participant.cc.o"
  "CMakeFiles/xk_core.dir/core/participant.cc.o.d"
  "CMakeFiles/xk_core.dir/core/protocol.cc.o"
  "CMakeFiles/xk_core.dir/core/protocol.cc.o.d"
  "CMakeFiles/xk_core.dir/core/types.cc.o"
  "CMakeFiles/xk_core.dir/core/types.cc.o.d"
  "CMakeFiles/xk_core.dir/sim/cost_model.cc.o"
  "CMakeFiles/xk_core.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/xk_core.dir/sim/event_queue.cc.o"
  "CMakeFiles/xk_core.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/xk_core.dir/sim/link.cc.o"
  "CMakeFiles/xk_core.dir/sim/link.cc.o.d"
  "libxk_core.a"
  "libxk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
