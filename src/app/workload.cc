#include "src/app/workload.h"

#include <cassert>
#include <memory>

#include "src/app/oracle.h"

namespace xk {

LatencyResult RpcWorkload::MeasureLatency(Internet& net, Kernel& client_kernel,
                                          const CallFn& call, int iters) {
  LatencyResult result;
  SimTime start = 0;
  SimTime done_at = 0;
  int remaining = iters;

  std::function<void()> issue = [&]() {
    const SimTime t0 = client_kernel.now();
    call(Message(), [&, t0](Result<Message> r) {
      result.rtt.Record(client_kernel.now() - t0);
      if (r.ok()) {
        ++result.completed;
      } else {
        ++result.failed;
      }
      if (--remaining > 0) {
        issue();  // still inside the completion task; the clock has advanced
      } else {
        done_at = client_kernel.now();
      }
    });
  };

  client_kernel.ScheduleTask(0, [&]() {
    start = client_kernel.now();
    issue();
  });
  net.RunAll();
  if (iters > 0 && done_at > start) {
    result.per_call = (done_at - start) / iters;
  }
  return result;
}

ThroughputResult RpcWorkload::MeasureThroughput(Internet& net, Kernel& client_kernel,
                                                Kernel& server_kernel, const CallFn& call,
                                                size_t bytes, int iters) {
  ThroughputResult result;
  result.bytes_per_call = bytes;
  SimTime start = 0;
  SimTime done_at = 0;
  int remaining = iters;
  const SimTime client_cpu0 = client_kernel.cpu().total_busy();
  const SimTime server_cpu0 = server_kernel.cpu().total_busy();

  std::function<void()> issue = [&]() {
    const SimTime t0 = client_kernel.now();
    call(Message(bytes), [&, t0](Result<Message> r) {
      result.rtt.Record(client_kernel.now() - t0);
      if (r.ok()) {
        ++result.completed;
      }
      if (--remaining > 0) {
        issue();
      } else {
        done_at = client_kernel.now();
      }
    });
  };

  client_kernel.ScheduleTask(0, [&]() {
    start = client_kernel.now();
    issue();
  });
  net.RunAll();
  result.elapsed = done_at - start;
  if (result.elapsed > 0 && result.completed > 0) {
    const double total_bytes = static_cast<double>(bytes) * result.completed;
    result.kbytes_per_sec = total_bytes / 1024.0 / (ToMsec(result.elapsed) / 1000.0);
    result.client_cpu = (client_kernel.cpu().total_busy() - client_cpu0) / result.completed;
    result.server_cpu = (server_kernel.cpu().total_busy() - server_cpu0) / result.completed;
  }
  return result;
}

ChaosResult RpcWorkload::RunChaos(Internet& net, Kernel& client_kernel, const CallFn& call,
                                  AmoOracle& oracle, const ChaosSpec& spec) {
  ChaosResult result;
  SimTime start = 0;
  SimTime first_success_after_crash = 0;
  int remaining = spec.calls;

  // Sequential issue chain, like MeasureLatency -- but failures continue the
  // chain (availability is the point), and calls are spaced by `gap` so the
  // workload spans the fault windows instead of completing before them.
  std::function<void()> issue = [&]() {
    const uint64_t id = oracle.NextCallId();
    const SimTime t0 = client_kernel.now();
    ++result.issued;
    oracle.RecordIssued(id, t0);
    call(AmoOracle::MakeRequest(id, spec.payload_bytes), [&, id, t0](Result<Message> r) {
      const SimTime now = client_kernel.now();
      result.rtt.Record(now - t0);
      oracle.RecordOutcome(id, r, now);
      if (r.ok()) {
        ++result.completed;
        if (spec.crash_at > 0 && now >= spec.crash_at && first_success_after_crash == 0) {
          first_success_after_crash = now;
        }
      } else {
        ++result.failed;
        result.last_failure_at = now;
      }
      if (--remaining > 0) {
        if (spec.gap > 0) {
          client_kernel.ScheduleTask(spec.gap, [&]() { issue(); });
        } else {
          issue();
        }
      } else {
        result.elapsed = now - start;
      }
    });
  };

  client_kernel.ScheduleTask(0, [&]() {
    start = client_kernel.now();
    issue();
  });
  net.RunAll();
  if (first_success_after_crash > 0) {
    result.recovery_latency = first_success_after_crash - spec.crash_at;
  }
  return result;
}

ManyPairsResult RpcWorkload::MeasureManyPairs(Internet& net,
                                              const std::vector<Kernel*>& clients,
                                              const std::vector<CallFn>& calls, size_t bytes,
                                              int iters) {
  assert(clients.size() == calls.size());
  ManyPairsResult result;
  const size_t pairs = clients.size();

  // All per-call state is per pair: in a parallel run each pair's callbacks
  // execute on its own client's logical process, so pairs must not share
  // mutable state.
  struct PairState {
    int remaining = 0;
    int completed = 0;
    int failed = 0;
    SimTime start = 0;
    SimTime done_at = 0;
    Histogram rtt;  // recorded on this pair's logical process only
    std::function<void()> issue;
  };
  std::vector<std::unique_ptr<PairState>> states;
  states.reserve(pairs);

  for (size_t p = 0; p < pairs; ++p) {
    states.push_back(std::make_unique<PairState>());
    PairState* st = states.back().get();
    st->remaining = iters;
    Kernel* client = clients[p];
    const CallFn* call = &calls[p];
    st->issue = [st, client, call, bytes]() {
      const SimTime t0 = client->now();
      (*call)(Message(bytes), [st, client, t0](Result<Message> r) {
        st->rtt.Record(client->now() - t0);
        if (r.ok()) {
          ++st->completed;
        } else {
          ++st->failed;
        }
        if (--st->remaining > 0) {
          st->issue();
        } else {
          st->done_at = client->now();
        }
      });
    };
    client->ScheduleTask(0, [st, client]() {
      st->start = client->now();
      st->issue();
    });
  }

  net.RunAll();

  SimTime first_start = kSimTimeNever;
  SimTime last_done = 0;
  for (const auto& st : states) {
    if (st->start < first_start) {
      first_start = st->start;
    }
    if (st->done_at > last_done) {
      last_done = st->done_at;
    }
    result.completed += st->completed;
    result.failed += st->failed;
    result.sum_done_at += st->done_at;
    result.rtt.Merge(st->rtt);  // after the run: pairs merge in pair order
  }
  if (!states.empty() && last_done > first_start) {
    result.elapsed = last_done - first_start;
  }
  if (result.elapsed > 0 && result.completed > 0) {
    const double total_bytes = static_cast<double>(bytes) * result.completed;
    result.agg_kbytes_per_sec = total_bytes / 1024.0 / (ToMsec(result.elapsed) / 1000.0);
  }
  return result;
}

}  // namespace xk
