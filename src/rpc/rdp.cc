#include "src/rpc/rdp.h"

#include "src/rpc/channel.h"

namespace xk {

void RdpProtocol::ExportCounters(const CounterEmit& emit) const {
  Protocol::ExportCounters(emit);
  emit("datagrams_sent", stats_.datagrams_sent);
  emit("datagrams_delivered", stats_.datagrams_delivered);
  emit("send_failures", stats_.send_failures);
  // Counter export runs outside any task (it may not charge), so read the
  // CHANNEL's stats directly rather than going through Control.
  if (const auto* ch = dynamic_cast<const ChannelProtocol*>(lower(0))) {
    emit("retransmits", ch->stats().retransmissions);
    emit("timeouts", ch->stats().timeouts);
  }
}

RdpProtocol::RdpProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), sends_(*this) {
  ParticipantSet enable;
  enable.local.rel_proto = kRelProtoRdp;
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<RdpProtocol::Pool*> RdpProtocol::PoolFor(IpAddr peer) {
  auto it = pools_.find(peer);
  if (it != pools_.end()) {
    return &it->second;
  }
  Pool pool;
  pool.available = std::make_unique<XSemaphore>(kernel(), kNumChannels);
  for (int i = 0; i < kNumChannels; ++i) {
    ParticipantSet parts;
    parts.peer.host = peer;
    parts.local.channel = static_cast<uint16_t>(i + 100);  // distinct from SELECT's
    parts.local.rel_proto = kRelProtoRdp;
    Result<SessionRef> chan = lower(0)->Open(*this, parts);
    if (!chan.ok()) {
      return chan.status();
    }
    pool.channels.push_back(*chan);
    pool.busy.push_back(false);
  }
  return &pools_.emplace(peer, std::move(pool)).first->second;
}

Result<SessionRef> RdpProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (SessionRef cached = active_.Resolve(*parts.peer.host)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  Result<Pool*> pool = PoolFor(*parts.peer.host);
  if (!pool.ok()) {
    return pool.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<RdpSession>(*this, &hlp, *parts.peer.host);
  active_.Bind(*parts.peer.host, sess);
  return SessionRef(sess);
}

Status RdpProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  (void)parts;
  if (enabled_hlp_ != nullptr && enabled_hlp_ != &hlp) {
    return ErrStatus(StatusCode::kAlreadyExists);
  }
  enabled_hlp_ = &hlp;
  return OkStatus();
}

void RdpProtocol::ReleaseChannelFor(Session* channel) {
  for (auto& [peer, pool] : pools_) {
    for (size_t i = 0; i < pool.channels.size(); ++i) {
      if (pool.channels[i].get() == channel) {
        pool.busy[i] = false;
        pool.available->V();
        return;
      }
    }
  }
}

Status RdpProtocol::DoDemux(Session* lls, Message& msg) {
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  // Is this the (empty) reply to one of our sends?
  if (SessionRef sender = sends_.Resolve(lls)) {
    sends_.Unbind(lls);
    ReleaseChannelFor(lls);
    return OkStatus();  // delivery confirmed; nothing to surface
  }
  // Otherwise it is an incoming datagram: deliver it, then acknowledge by
  // replying (empty) on the channel.
  if (enabled_hlp_ == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  IpAddr peer;
  ControlArgs args;
  if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
    peer = args.ip;
  }
  SessionRef sess = active_.Resolve(peer);
  if (sess == nullptr) {
    kernel().ChargeSessionCreate();
    sess = std::make_shared<RdpSession>(*this, enabled_hlp_, peer);
    active_.Bind(peer, sess);
    ParticipantSet up;
    up.peer.host = peer;
    Status s = enabled_hlp_->OpenDoneUp(*this, sess, up);
    if (!s.ok()) {
      active_.Unbind(peer);
      return s;
    }
  }
  ++stats_.datagrams_delivered;
  Status delivered = sess->Pop(msg, lls);
  Message empty_reply;
  (void)lls->Push(empty_reply);  // the channel is in_progress: complete it
  return delivered;
}

void RdpProtocol::SessionError(Session& lls, Status error) {
  (void)error;
  if (SessionRef sender = sends_.Take(&lls)) {
    ReleaseChannelFor(&lls);
    ++stats_.send_failures;
    auto* sess = static_cast<RdpSession*>(sender.get());
    if (sess->hlp() != nullptr) {
      sess->hlp()->SessionError(*sess, error);
    }
  }
}

// ---------------------------------------------------------------------------
// RdpSession
// ---------------------------------------------------------------------------

RdpSession::RdpSession(RdpProtocol& owner, Protocol* hlp, IpAddr peer)
    : Session(owner, hlp), rdp_(owner), peer_(peer) {}

Status RdpSession::DoPush(Message& msg) {
  Result<RdpProtocol::Pool*> pool_r = rdp_.PoolFor(peer_);
  if (!pool_r.ok()) {
    return pool_r.status();
  }
  RdpProtocol::Pool* pool = *pool_r;
  ++rdp_.stats_.datagrams_sent;
  pool->available->P([this, pool, msg]() mutable {
    size_t index = 0;
    kernel().ChargeMapResolve();
    while (index < pool->busy.size() && pool->busy[index]) {
      ++index;
    }
    pool->busy[index] = true;
    SessionRef channel = pool->channels[index];
    rdp_.sends_.Bind(channel.get(), Ref());
    (void)channel->Push(msg);
  });
  return OkStatus();
}

Status RdpSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status RdpSession::DoControl(ControlOp op, ControlArgs& args) {
  if (op == ControlOp::kGetPeerHost) {
    args.ip = peer_;
    return OkStatus();
  }
  return ErrStatus(StatusCode::kUnsupported);
}

}  // namespace xk
