// Section 1 cross-kernel comparison: "the user-to-user round trip delay using
// the UDP/IP protocol suite is 2.00 msec in the x-kernel and 5.36 msec in
// SunOS Release 4.0 (4.3BSD Unix)".
//
// Both runs use the same UDP/IP/ETH protocol code over the same simulated
// wire; only the host environment differs (see CostModel::SunOs in DESIGN.md
// for the substitution). Unlike the Section 4 experiments this one is
// user-to-user, so each send and each receive pays a user/kernel boundary
// crossing.

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  std::printf("\nSection 1: UDP/IP user-to-user round trip, x-kernel vs SunOS 4.0\n");
  std::printf("%-24s %10s\n", "Environment", "Latency");
  std::printf("%s\n", std::string(40, '-').c_str());
  const double xk = MeasureUdpEcho(HostEnv::kXKernel).ms;
  const double sunos = MeasureUdpEcho(HostEnv::kSunOs).ms;
  std::printf("%-24s %7.2f ms   [paper: 2.00]\n", "x-kernel", xk);
  std::printf("%-24s %7.2f ms   [paper: 5.36]\n", "SunOS 4.0 (4.3BSD)", sunos);
  std::printf("\nRatio: %.2fx   [paper: 2.68x]\n", sunos / xk);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
