// SlabPool: the pooled, index-addressed session store. These tests pin the
// properties the protocols rely on -- stable addresses, allocation-free
// recycling past the high-water mark, generation-counted handles that never
// resolve to a recycled stranger, and LIFO (deterministic) slot reuse.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/slab_pool.h"

namespace xk {
namespace {

struct Tracked {
  static int live_count;
  int value;
  explicit Tracked(int v) : value(v) { ++live_count; }
  ~Tracked() { --live_count; }
};
int Tracked::live_count = 0;

TEST(SlabPoolTest, CreateDestroyCountsAndRunsDestructors) {
  Tracked::live_count = 0;
  SlabPool<Tracked> pool;
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);

  auto a = pool.Create(1);
  auto b = pool.Create(2);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(pool.high_water(), 2u);
  EXPECT_EQ(Tracked::live_count, 2);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);

  a.reset();
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(Tracked::live_count, 1);
  EXPECT_EQ(pool.high_water(), 2u);  // high water sticks
  b.reset();
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(Tracked::live_count, 0);
}

TEST(SlabPoolTest, AddressesAreStableAcrossGrowth) {
  SlabPool<Tracked> pool;
  std::vector<std::shared_ptr<Tracked>> objs;
  std::vector<Tracked*> addrs;
  // Span several chunks so the backing store grows repeatedly.
  for (int i = 0; i < 500; ++i) {
    objs.push_back(pool.Create(i));
    addrs.push_back(objs.back().get());
  }
  EXPECT_GE(pool.capacity(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(objs[i].get(), addrs[i]);
    EXPECT_EQ(objs[i]->value, i);
  }
}

TEST(SlabPoolTest, RecyclingIsLifoAndCapacityPlateaus) {
  SlabPool<Tracked> pool;
  std::vector<std::shared_ptr<Tracked>> objs;
  for (int i = 0; i < 200; ++i) {
    objs.push_back(pool.Create(i));
  }
  const size_t cap = pool.capacity();
  Tracked* last_addr = objs.back().get();

  // Destroy the newest, create again: LIFO reuse lands on the same slot.
  objs.pop_back();
  auto again = pool.Create(999);
  EXPECT_EQ(again.get(), last_addr);
  EXPECT_EQ(again->value, 999);

  // Heavy churn below the high-water mark never grows the slab.
  for (int round = 0; round < 50; ++round) {
    objs.pop_back();
    objs.pop_back();
    objs.push_back(pool.Create(round));
    objs.push_back(pool.Create(round));
  }
  EXPECT_EQ(pool.capacity(), cap);
  EXPECT_EQ(pool.high_water(), 200u);
}

TEST(SlabPoolTest, HandleResolvesLiveObjectAndExpiresOnDestroy) {
  SlabPool<Tracked> pool;
  auto obj = pool.Create(42);
  auto h = pool.HandleOf(obj.get());
  ASSERT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(pool.Get(h), obj.get());
  EXPECT_EQ(pool.Get(h)->value, 42);

  obj.reset();
  EXPECT_EQ(pool.Get(h), nullptr);  // slot dead: handle expired
}

TEST(SlabPoolTest, StaleHandleNeverResolvesToRecycledSlot) {
  SlabPool<Tracked> pool;
  auto first = pool.Create(1);
  auto h = pool.HandleOf(first.get());
  Tracked* addr = first.get();
  first.reset();

  // LIFO reuse puts a new object in the exact same slot...
  auto second = pool.Create(2);
  ASSERT_EQ(second.get(), addr);
  // ...but the generation bumped, so the old handle resolves to null, not to
  // the stranger now living there; the new object's own handle works.
  EXPECT_EQ(pool.Get(h), nullptr);
  auto h2 = pool.HandleOf(second.get());
  EXPECT_EQ(pool.Get(h2), second.get());
  EXPECT_NE(h, h2);
}

TEST(SlabPoolTest, NullAndOutOfRangeHandlesResolveToNull) {
  SlabPool<Tracked> pool;
  SlabPool<Tracked>::Handle null_handle;
  EXPECT_FALSE(static_cast<bool>(null_handle));
  EXPECT_EQ(pool.Get(null_handle), nullptr);

  SlabPool<Tracked>::Handle bogus{100000, 1};
  EXPECT_EQ(pool.Get(bogus), nullptr);
}

TEST(SlabPoolTest, ObjectOutlivesThePool) {
  // The deleter keeps the backing state alive: a session handed out by a
  // protocol must survive that protocol's destruction (crash teardown).
  Tracked::live_count = 0;
  std::shared_ptr<Tracked> survivor;
  {
    SlabPool<Tracked> pool;
    survivor = pool.Create(7);
  }
  EXPECT_EQ(Tracked::live_count, 1);
  EXPECT_EQ(survivor->value, 7);
  survivor.reset();
  EXPECT_EQ(Tracked::live_count, 0);
}

TEST(SlabPoolTest, ForEachVisitsLiveObjectsInSlotOrder) {
  SlabPool<Tracked> pool;
  std::vector<std::shared_ptr<Tracked>> objs;
  for (int i = 0; i < 10; ++i) {
    objs.push_back(pool.Create(i));
  }
  objs.erase(objs.begin() + 3);  // kill one in the middle
  std::vector<int> seen;
  pool.ForEach([&](Tracked& t) { seen.push_back(t.value); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace xk
