#include "src/trace/causal.h"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <unordered_map>

namespace xk::causal {

namespace {

// Sweep priority: lower wins when activities overlap. CPU work explains a
// slice better than "the frame was also in flight" (the host is actively
// driving the call); queueing beats serialization beats propagation because
// each is the *cause* of the next's delay.
int PriorityOf(Category c) {
  switch (c) {
    case kClientCpu:
    case kServerCpu:
    case kRouterCpu:
      return 0;
    case kQueue:
      return 1;
    case kWire:
      return 2;
    case kProp:
      return 3;
    default:
      return 4;
  }
}

struct Iv {
  int64_t t0 = 0;
  int64_t t1 = 0;
  Category cat = kSched;
  int prio = 4;
  uint64_t depth = 0;  // span nesting; innermost wins within a priority
  std::string label;
};

struct CrashMark {
  int64_t t = 0;
};

// One host's down window: crash time to restart time (open until restarted).
struct Outage {
  std::string host;
  int64_t t0 = 0;
  int64_t t1 = -1;  // -1 = never restarted
};

void AppendNum(std::string& out, const char* key, int64_t v) {
  out += ",\"";
  out += key;
  out += "\":" + std::to_string(v);
}

void AppendStr(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += v;  // host/proto/status/category names: no escapes needed
  out += '"';
}

}  // namespace

const char* CategoryName(Category c) {
  switch (c) {
    case kClientCpu:
      return "client_cpu";
    case kServerCpu:
      return "server_cpu";
    case kRouterCpu:
      return "router_cpu";
    case kQueue:
      return "queue";
    case kWire:
      return "wire";
    case kProp:
      return "prop";
    case kBackoff:
      return "retry_backoff";
    case kSched:
      return "sched_wait";
    case kNumCategories:
      break;
  }
  return "?";
}

Category CallFlow::critical() const {
  int best = 0;
  for (int c = 1; c < kNumCategories; ++c) {
    if (ns[static_cast<size_t>(c)] > ns[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return static_cast<Category>(best);
}

double FlowAnalysis::MeanRttNs() const {
  double sum = 0;
  uint64_t n = 0;
  for (const CallFlow& c : calls) {
    if (c.completed) {
      sum += static_cast<double>(c.rtt());
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

FlowAnalysis Stitch(const tracetool::TraceFile& tf) {
  FlowAnalysis fa;
  std::vector<CallFlow> calls;
  std::unordered_map<uint64_t, size_t> by_id;
  auto call_for = [&](uint64_t id) -> CallFlow& {
    auto [it, fresh] = by_id.try_emplace(id, calls.size());
    if (fresh) {
      calls.emplace_back();
      calls.back().id = id;
    }
    return calls[it->second];
  };
  std::unordered_map<uint64_t, uint64_t> msg_call;
  auto bind_msg = [&](uint64_t msg, uint64_t id) {
    if (msg != 0) {
      msg_call.try_emplace(msg, id);
    }
  };
  auto call_of_msg = [&](uint64_t msg) -> CallFlow* {
    if (msg == 0) {
      return nullptr;
    }
    auto it = msg_call.find(msg);
    return it != msg_call.end() ? &call_for(it->second) : nullptr;
  };

  // Pass 1 -- events, in emission order (kIssue precedes everything else a
  // call produces, so message ids bind before they are referenced).
  std::vector<CrashMark> crashes;
  std::vector<Outage> outages;
  std::unordered_map<uint64_t, std::vector<int64_t>> reroute_times;
  for (const tracetool::EventRec& e : tf.events) {
    if (e.op == "issue") {
      CallFlow& c = call_for(e.call);
      c.issue_t = e.t;
      c.client = e.host;
      bind_msg(e.msg, e.call);
    } else if (e.op == "done") {
      CallFlow& c = call_for(e.call);
      c.done_t = e.t;
      c.completed = true;
      c.status = e.status;
      bind_msg(e.msg, e.call);
    } else if (e.op == "exec") {
      CallFlow& c = call_for(e.call);
      c.exec_t = e.t;
      c.server = e.host;
      bind_msg(e.msg, e.call);
    } else if (e.op == "rexmit") {
      ++fa.retransmits;
      if (CallFlow* c = call_of_msg(e.msg)) {
        Attempt a;
        a.t = e.t;
        a.retry = static_cast<int>(e.detail);
        c->attempts.push_back(std::move(a));
      }
    } else if (e.op == "pick") {
      ++fa.replica_picks[static_cast<int>(e.detail)];
      if (CallFlow* c = call_of_msg(e.msg)) {
        c->replica = static_cast<int>(e.detail);
      }
    } else if (e.op == "reroute") {
      ++fa.reroutes;
      if (CallFlow* c = call_of_msg(e.msg)) {
        ++c->reroutes;
        reroute_times[c->id].push_back(e.t);
      }
    } else if (e.op == "replica_down") {
      ++fa.replica_downs;
    } else if (e.op == "replica_readmit") {
      ++fa.replica_readmits;
    } else if (e.op == "evict") {
      ++fa.evictions;
    } else if (e.op == "forward") {
      ++fa.forwards;
    } else if (e.op == "ttl_drop") {
      ++fa.ttl_drops;
    } else if (e.op == "no_route") {
      ++fa.no_route_drops;
    } else if (e.op == "crash") {
      ++fa.crashes;
      crashes.push_back({e.t});
      outages.push_back({e.host, e.t, -1});
    } else if (e.op == "restart") {
      ++fa.restarts;
      for (auto it = outages.rbegin(); it != outages.rend(); ++it) {
        if (it->host == e.host && it->t1 < 0) {
          it->t1 = e.t;
          break;
        }
      }
    } else if (e.op == "shed" || e.op == "reject" || e.op == "budget_exhausted") {
      // Overload verdicts are emitted mid-stack (server anchor, CHANNEL,
      // VPOOL) where the oracle id is unknown, so they join via the request
      // message id. The LAST verdict wins: an early attempt's shed that a
      // retransmission recovered from is not the call's fate.
      if (e.op == "shed") {
        ++fa.sheds;
      } else if (e.op == "reject") {
        ++fa.rejects;
      } else {
        ++fa.budget_exhausted;
      }
      if (CallFlow* c = call_of_msg(e.msg)) {
        c->terminal_t = e.t;
        c->terminal = e.op;
      }
    } else if (e.op == "hedge") {
      ++fa.hedges;
      CallFlow& c = call_for(e.call);
      c.hedged = true;
      bind_msg(e.msg, e.call);
    } else if (e.op == "hedge_cancel") {
      ++fa.hedge_cancels;
    }
  }

  // Pass 2 -- spans and wire hops, joined through the message id.
  std::unordered_map<uint64_t, std::vector<const tracetool::SpanRec*>> call_spans;
  for (const tracetool::SpanRec& s : tf.spans) {
    if (s.msg == 0) {
      continue;
    }
    auto it = msg_call.find(s.msg);
    if (it != msg_call.end()) {
      call_spans[it->second].push_back(&s);
    }
  }
  for (const tracetool::WireRec& w : tf.wires) {
    if (CallFlow* c = call_of_msg(w.msg)) {
      c->hops.push_back({w.seg, w.t0, w.t1, w.arrive, w.qwait, w.len, w.msg});
    }
  }
  for (const auto& [msg, id] : msg_call) {
    call_for(id).msgs.push_back(msg);
  }
  for (CallFlow& c : calls) {
    std::sort(c.msgs.begin(), c.msgs.end());
    std::sort(c.hops.begin(), c.hops.end(),
              [](const Hop& a, const Hop& b) { return std::tie(a.t0, a.seg) < std::tie(b.t0, b.seg); });
  }

  // Pass 3 -- per call: attempt causes, then the attribution sweep.
  for (CallFlow& c : calls) {
    const std::vector<const tracetool::SpanRec*>* spans = nullptr;
    if (auto it = call_spans.find(c.id); it != call_spans.end()) {
      spans = &it->second;
    }
    // Attempt boundaries: issue plus every retransmission, each classified by
    // what happened in the window since the previous attempt.
    std::vector<Attempt> att;
    att.push_back({c.issue_t, 0, "first"});
    for (Attempt& a : c.attempts) {
      att.push_back(std::move(a));
    }
    std::sort(att.begin(), att.end(),
              [](const Attempt& a, const Attempt& b) { return a.t < b.t; });
    const std::vector<int64_t>* rrts = nullptr;
    if (auto it = reroute_times.find(c.id); it != reroute_times.end()) {
      rrts = &it->second;
    }
    for (size_t k = 1; k < att.size(); ++k) {
      const int64_t lo = att[k - 1].t;
      const int64_t hi = att[k].t;
      auto in_window = [&](int64_t t) { return t > lo && t <= hi; };
      bool crash = false;
      for (const CrashMark& cm : crashes) {
        crash = crash || in_window(cm.t);
      }
      // A call that never reached any server, retrying while a host was down
      // for the whole window, is recovering from the crash even though the
      // crash instant predates this window.
      if (!crash && c.exec_t < 0) {
        for (const Outage& o : outages) {
          crash = crash || (o.t0 <= lo && (o.t1 < 0 || o.t1 >= hi));
        }
      }
      bool reroute = false;
      if (rrts != nullptr) {
        for (int64_t t : *rrts) {
          reroute = reroute || in_window(t);
        }
      }
      bool corruption = false;
      if (spans != nullptr) {
        for (const tracetool::SpanRec* s : *spans) {
          corruption = corruption || (s->status != "OK" && s->host != c.client && in_window(s->t0));
        }
      }
      bool sent = false;
      for (const Hop& h : c.hops) {
        sent = sent || in_window(h.t0);
      }
      att[k].cause = crash        ? "crash"
                     : reroute    ? "reroute"
                     : corruption ? "corruption"
                     : sent       ? "drop"
                                  : "timeout";
    }
    c.attempts = std::move(att);
    for (size_t k = 1; k < c.attempts.size(); ++k) {
      ++fa.retry_causes[c.attempts[k].cause];
    }
    if (!c.completed || c.done_t <= c.issue_t) {
      continue;
    }

    // Interval set, clipped to [issue, done].
    std::vector<Iv> ivs;
    auto add = [&](int64_t t0, int64_t t1, Category cat, uint64_t depth, std::string label) {
      t0 = std::max(t0, c.issue_t);
      t1 = std::min(t1, c.done_t);
      if (t1 > t0) {
        ivs.push_back({t0, t1, cat, PriorityOf(cat), depth, std::move(label)});
      }
    };
    if (spans != nullptr) {
      for (const tracetool::SpanRec* s : *spans) {
        const Category cat = s->host == c.client   ? kClientCpu
                             : s->host == c.server ? kServerCpu
                                                   : kRouterCpu;
        add(s->t0, s->t1, cat, s->depth, s->host + ";" + s->proto);
      }
    }
    for (const Hop& h : c.hops) {
      const std::string seg = "seg" + std::to_string(h.seg);
      add(h.t0 - h.qwait, h.t0, kQueue, 0, seg);
      add(h.t0, h.t1, kWire, 0, seg);
      add(h.t1, h.arrive, kProp, 0, seg);
    }

    // Boundary sweep: every elementary slice goes to the best active
    // interval; uncovered slices are backoff (if they end at an attempt
    // boundary) or scheduling wait.
    std::vector<int64_t> cuts;
    cuts.push_back(c.issue_t);
    cuts.push_back(c.done_t);
    for (const Iv& iv : ivs) {
      cuts.push_back(iv.t0);
      cuts.push_back(iv.t1);
    }
    for (size_t k = 1; k < c.attempts.size(); ++k) {
      if (c.attempts[k].t > c.issue_t && c.attempts[k].t < c.done_t) {
        cuts.push_back(c.attempts[k].t);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      const int64_t a = cuts[i];
      const int64_t b = cuts[i + 1];
      const Iv* best = nullptr;
      for (const Iv& iv : ivs) {
        if (iv.t0 > a || iv.t1 < b) {
          continue;  // cuts include every endpoint: covering means containing
        }
        if (best == nullptr ||
            std::tie(iv.prio, best->depth, iv.t0, iv.label) <
                std::tie(best->prio, iv.depth, best->t0, best->label)) {
          // Lower priority value wins; within it the deeper (innermost) span,
          // then the later-started, then the lexically-smaller label -- all
          // deterministic functions of the trace.
          best = &iv;
        }
      }
      Slice sl;
      sl.t0 = a;
      sl.t1 = b;
      if (best != nullptr) {
        sl.cat = best->cat;
        sl.label = best->label;
      } else {
        // Gap. If the next attempt fires at (or right after) this slice's
        // end, the call was sitting in CHANNEL's retransmit timer.
        const Attempt* next_att = nullptr;
        for (size_t k = 1; k < c.attempts.size(); ++k) {
          if (c.attempts[k].t > a) {
            next_att = &c.attempts[k];
            break;
          }
        }
        if (next_att != nullptr && next_att->t <= b) {
          sl.cat = kBackoff;
          sl.label = next_att->cause;
        } else if (!c.terminal.empty() && c.status != "OK") {
          // The call ended on an overload verdict: its idle tail (waiting out
          // the deadline, sitting behind a full queue) is that verdict's cost,
          // not anonymous scheduling wait.
          sl.cat = kSched;
          sl.label = c.terminal;
        } else {
          sl.cat = kSched;
          sl.label = "wait";
        }
      }
      c.ns[static_cast<size_t>(sl.cat)] += b - a;
      if (!c.slices.empty() && c.slices.back().cat == sl.cat &&
          c.slices.back().label == sl.label && c.slices.back().t1 == sl.t0) {
        c.slices.back().t1 = sl.t1;
      } else {
        c.slices.push_back(std::move(sl));
      }
    }
  }

  std::sort(calls.begin(), calls.end(), [](const CallFlow& a, const CallFlow& b) {
    return std::tie(a.issue_t, a.id) < std::tie(b.issue_t, b.id);
  });
  for (const CallFlow& c : calls) {
    if (c.completed) {
      if (c.status == "OK") {
        ++fa.completed;
      } else {
        ++fa.failed;
      }
      for (int k = 0; k < kNumCategories; ++k) {
        fa.total_ns[static_cast<size_t>(k)] += c.ns[static_cast<size_t>(k)];
      }
      if (c.rtt() > 0) {
        ++fa.dominant_calls[static_cast<size_t>(c.critical())];
      }
    }
  }
  fa.calls = std::move(calls);
  return fa;
}

std::string ToFlowJsonl(const FlowAnalysis& fa) {
  std::string out;
  out.reserve(fa.calls.size() * 256 + 512);
  out += "{\"k\":\"meta\",\"calls\":" + std::to_string(fa.calls.size()) +
         ",\"completed\":" + std::to_string(fa.completed) +
         ",\"failed\":" + std::to_string(fa.failed) + "}\n";
  for (const CallFlow& c : fa.calls) {
    out += "{\"k\":\"call\",\"id\":" + std::to_string(c.id);
    AppendStr(out, "client", c.client);
    AppendStr(out, "server", c.server);
    AppendStr(out, "status", c.status);
    AppendNum(out, "issue", c.issue_t);
    AppendNum(out, "done", c.done_t);
    AppendNum(out, "rtt", c.completed ? c.rtt() : 0);
    AppendNum(out, "attempts", static_cast<int64_t>(c.attempts.size()));
    AppendNum(out, "reroutes", c.reroutes);
    AppendNum(out, "replica", c.replica);
    AppendNum(out, "hops", static_cast<int64_t>(c.hops.size()));
    AppendNum(out, "hedged", c.hedged ? 1 : 0);
    if (!c.terminal.empty()) {
      AppendStr(out, "terminal", c.terminal);
    }
    if (c.attempts.size() > 1) {
      AppendStr(out, "last_cause", c.attempts.back().cause);
    }
    for (int k = 0; k < kNumCategories; ++k) {
      AppendNum(out, CategoryName(static_cast<Category>(k)), c.ns[static_cast<size_t>(k)]);
    }
    if (c.completed && c.rtt() > 0) {
      AppendStr(out, "critical", CategoryName(c.critical()));
    }
    out += "}\n";
  }
  out += "{\"k\":\"total\"";
  AppendNum(out, "retransmits", static_cast<int64_t>(fa.retransmits));
  AppendNum(out, "reroutes", static_cast<int64_t>(fa.reroutes));
  AppendNum(out, "replica_downs", static_cast<int64_t>(fa.replica_downs));
  AppendNum(out, "replica_readmits", static_cast<int64_t>(fa.replica_readmits));
  AppendNum(out, "evictions", static_cast<int64_t>(fa.evictions));
  AppendNum(out, "forwards", static_cast<int64_t>(fa.forwards));
  AppendNum(out, "ttl_drops", static_cast<int64_t>(fa.ttl_drops));
  AppendNum(out, "no_route_drops", static_cast<int64_t>(fa.no_route_drops));
  AppendNum(out, "crashes", static_cast<int64_t>(fa.crashes));
  AppendNum(out, "restarts", static_cast<int64_t>(fa.restarts));
  AppendNum(out, "sheds", static_cast<int64_t>(fa.sheds));
  AppendNum(out, "rejects", static_cast<int64_t>(fa.rejects));
  AppendNum(out, "budget_exhausted", static_cast<int64_t>(fa.budget_exhausted));
  AppendNum(out, "hedges", static_cast<int64_t>(fa.hedges));
  AppendNum(out, "hedge_cancels", static_cast<int64_t>(fa.hedge_cancels));
  for (int k = 0; k < kNumCategories; ++k) {
    AppendNum(out, CategoryName(static_cast<Category>(k)),
              fa.total_ns[static_cast<size_t>(k)]);
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", fa.MeanRttNs());
  out += ",\"mean_rtt_ns\":";
  out += buf;
  out += "}\n";
  return out;
}

std::string ToFolded(const FlowAnalysis& fa) {
  std::map<std::string, int64_t> stacks;
  for (const CallFlow& c : fa.calls) {
    for (const Slice& sl : c.slices) {
      std::string key = "call;";
      key += CategoryName(sl.cat);
      if (!sl.label.empty()) {
        key += ';';
        key += sl.label;
      }
      stacks[key] += sl.t1 - sl.t0;
    }
  }
  std::string out;
  for (const auto& [key, ns] : stacks) {
    out += key + " " + std::to_string(ns) + "\n";
  }
  return out;
}

}  // namespace xk::causal
