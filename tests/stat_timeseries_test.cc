// Tests for the StatSampler time series (src/stat/timeseries):
//
//   1. Zero simulated cost: enabling the sampler leaves every simulated
//      result and the trace byte-identical to an unobserved run.
//   2. Engine invariance: the sampled JSONL is byte-identical whether the
//      simulation runs on the serial engine or the 4-thread parallel engine.

#include "src/stat/timeseries.h"

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "gtest/gtest.h"
#include "src/trace/trace.h"

namespace xk {
namespace {

constexpr int kPairs = 4;
constexpr size_t kBytes = 2048;
constexpr int kIters = 4;

TEST(StatSampler, ZeroSimulatedCostOnManyPairs) {
  // Baseline: traced but unsampled.
  TraceSink base_sink;
  TraceSink::set_thread_default(&base_sink);
  const ManyPairsBench base = MeasureManyPairsBench(kPairs, kBytes, kIters);
  TraceSink::set_thread_default(nullptr);

  // Same run with the sampler attached.
  TraceSink obs_sink;
  StatSampler sampler;
  TraceSink::set_thread_default(&obs_sink);
  StatSampler::set_thread_default(&sampler);
  const ManyPairsBench obs = MeasureManyPairsBench(kPairs, kBytes, kIters);
  StatSampler::set_thread_default(nullptr);
  TraceSink::set_thread_default(nullptr);

  EXPECT_GT(sampler.num_samples(), 0u);
  EXPECT_EQ(base.completed, obs.completed);
  EXPECT_EQ(base.failed, obs.failed);
  EXPECT_EQ(base.sum_done_at, obs.sum_done_at);
  EXPECT_EQ(base.events_fired, obs.events_fired);
  EXPECT_DOUBLE_EQ(base.agg_kbytes_per_sec, obs.agg_kbytes_per_sec);
  EXPECT_EQ(base.rtt.count(), obs.rtt.count());
  EXPECT_EQ(base.rtt.sum(), obs.rtt.sum());
  EXPECT_EQ(base.rtt.P999(), obs.rtt.P999());
  EXPECT_EQ(base.service.sum(), obs.service.sum());
  EXPECT_EQ(base_sink.ToJsonl(), obs_sink.ToJsonl());
}

TEST(StatSampler, ZeroSimulatedCostOnTwoHostConfig) {
  const RpcBench::Builder builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
  const ConfigResult base = RpcBench::Measure("L_RPC", builder);

  StatSampler sampler;
  StatSampler::set_thread_default(&sampler);
  const ConfigResult obs = RpcBench::Measure("L_RPC", builder);
  StatSampler::set_thread_default(nullptr);

  EXPECT_GT(sampler.num_samples(), 0u);
  EXPECT_DOUBLE_EQ(base.latency_ms, obs.latency_ms);
  EXPECT_DOUBLE_EQ(base.throughput_kbs, obs.throughput_kbs);
  EXPECT_DOUBLE_EQ(base.incr_ms_per_kb, obs.incr_ms_per_kb);
  EXPECT_DOUBLE_EQ(base.client_cpu_ms, obs.client_cpu_ms);
  EXPECT_DOUBLE_EQ(base.server_cpu_ms, obs.server_cpu_ms);
  EXPECT_EQ(base.events_fired, obs.events_fired);
  EXPECT_EQ(base.latency_rtt.count(), obs.latency_rtt.count());
  EXPECT_EQ(base.latency_rtt.sum(), obs.latency_rtt.sum());
  EXPECT_EQ(base.service.sum(), obs.service.sum());
}

TEST(StatSampler, ByteIdenticalAcrossEngineWidths) {
  StatSampler serial_sampler;
  StatSampler::set_thread_default(&serial_sampler);
  const ManyPairsBench serial = MeasureManyPairsBench(kPairs, kBytes, kIters, 1);
  StatSampler::set_thread_default(nullptr);

  StatSampler parallel_sampler;
  StatSampler::set_thread_default(&parallel_sampler);
  const ManyPairsBench parallel = MeasureManyPairsBench(kPairs, kBytes, kIters, 4);
  StatSampler::set_thread_default(nullptr);

  EXPECT_EQ(serial.sum_done_at, parallel.sum_done_at);
  EXPECT_EQ(serial_sampler.num_samples(), parallel_sampler.num_samples());
  const std::string a = serial_sampler.ToJsonl();
  const std::string b = parallel_sampler.ToJsonl();
  EXPECT_GT(serial_sampler.num_samples(), 0u);
  EXPECT_EQ(a, b);
  // Both record kinds are present.
  EXPECT_NE(a.find("\"k\":\"host\""), std::string::npos);
  EXPECT_NE(a.find("\"k\":\"seg\""), std::string::npos);
  EXPECT_NE(a.find("\"k\":\"meta\""), std::string::npos);
}

TEST(StatSampler, FaultedRunStaysEngineInvariant) {
  // Random link drops draw from the segment's Rng inside ProcessTransmit,
  // which runs in canonical order under both engines, so even a faulted run
  // samples identically.
  StatSampler s1;
  StatSampler::set_thread_default(&s1);
  const ManyPairsBench r1 = MeasureManyPairsBench(kPairs, kBytes, 8, 1, 0.05);
  StatSampler::set_thread_default(nullptr);

  StatSampler s4;
  StatSampler::set_thread_default(&s4);
  const ManyPairsBench r4 = MeasureManyPairsBench(kPairs, kBytes, 8, 4, 0.05);
  StatSampler::set_thread_default(nullptr);

  EXPECT_EQ(r1.sum_done_at, r4.sum_done_at);
  EXPECT_EQ(r1.rtt.P999(), r4.rtt.P999());
  uint64_t dropped = 0;
  for (const SegmentStat& s : r1.segments) {
    dropped += s.frames_dropped;
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(s1.ToJsonl(), s4.ToJsonl());
}

}  // namespace
}  // namespace xk
