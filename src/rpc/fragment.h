// FRAGMENT: unreliable-but-persistent bulk transfer (paper, Section 3.2).
//
// The bulk-transfer function carved out of Sprite RPC as an independent,
// reusable protocol:
//
//  * UNRELIABLE: messages may arrive out of order, duplicated, or not at all;
//    the receiver never sends a positive acknowledgement.
//  * PERSISTENT: a receiver that detects missing fragments asks the sender
//    for exactly those fragments; the sender keeps a copy of every message it
//    sent until a per-message timer expires and resends on request.
//
// A high-level protocol that needs a reply (CHANNEL) keeps its own timer and
// may resend the whole message; FRAGMENT treats the resend as an independent
// message with a fresh sequence number.
//
// Because FRAGMENT is meant to be used by multiple high-level protocols
// (CHANNEL, Psync, ...), its header carries its own 32-bit protocol number
// field -- one of the costs of making a layer a stand-alone protocol that the
// paper calls out explicitly.
//
// Header (paper appendix, FRAGMENT_HDR):
//   type(1) clnt_host(4) srvr_host(4) protocol_num(4) sequence_num(4)
//   num_frags(2) frag_mask(2) len(2)   -- 23 bytes
// where clnt_host is the SENDER of this packet and srvr_host the receiver.

#ifndef XK_SRC_RPC_FRAGMENT_H_
#define XK_SRC_RPC_FRAGMENT_H_

#include <map>
#include <tuple>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"

namespace xk {

class FragmentProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 23;
  // Sprite fragments on ~1 KB boundaries. The fragment size leaves room for
  // the CHANNEL and SELECT headers above, so a 16 KB RPC payload is still
  // exactly 16 fragments (the paper's "FRAGMENT handles 16 messages").
  static constexpr size_t kFragSize = 1056;
  static constexpr size_t kMaxFrags = 16;  // frag_mask is 16 bits
  static constexpr size_t kMaxMessage = kFragSize * kMaxFrags;

  // `lower` is any IP-semantics delivery protocol (VIP, IP, VIP_ADDR).
  FragmentProtocol(Kernel& kernel, Protocol* lower, std::string name = "fragment");

  // Tuning knobs (tests shrink these).
  void set_send_cache_timeout(SimTime t) { send_cache_timeout_ = t; }
  void set_nack_delay(SimTime t) { nack_delay_ = t; }
  void set_max_nacks(int n) { max_nacks_ = n; }

  struct Stats {
    uint64_t messages_sent = 0;
    uint64_t fragments_sent = 0;
    uint64_t messages_delivered = 0;
    uint64_t nacks_sent = 0;
    uint64_t nacks_received = 0;
    uint64_t fragments_resent = 0;
    uint64_t reassembly_abandoned = 0;
    uint64_t cache_expirations = 0;
    uint64_t stale_nacks = 0;  // NACK for a message no longer cached
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("messages_sent", stats_.messages_sent);
    emit("fragments_sent", stats_.fragments_sent);
    emit("messages_delivered", stats_.messages_delivered);
    emit("nacks_sent", stats_.nacks_sent);
    emit("nacks_received", stats_.nacks_received);
    emit("fragments_resent", stats_.fragments_resent);
    emit("reassembly_abandoned", stats_.reassembly_abandoned);
    emit("cache_expirations", stats_.cache_expirations);
    emit("stale_nacks", stats_.stale_nacks);
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  friend class FragmentSession;
  using Key = std::tuple<IpAddr, RelProtoNum>;  // (peer host, client protocol)

  DemuxMap<Key> active_;
  DemuxMap<RelProtoNum, Protocol*> passive_;
  SimTime send_cache_timeout_ = Msec(1000);
  SimTime nack_delay_ = Msec(20);
  int max_nacks_ = 3;
  Stats stats_;
};

class FragmentSession : public Session {
 public:
  FragmentSession(FragmentProtocol& owner, Protocol* hlp, IpAddr peer, RelProtoNum proto,
                  SessionRef lower);

  // Demux entry: handles one FRAGMENT packet addressed to this session.
  Status HandlePacket(uint8_t type, uint32_t seq, uint16_t num_frags, uint16_t frag_mask,
                      Message& payload, Session* lls);

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  struct SendRecord {
    std::vector<Message> frags;  // payload slices, headers rebuilt on resend
    uint16_t num_frags = 0;
    EventHandle discard_timer;
  };
  struct Reasm {
    std::vector<Message> frags;
    uint16_t num_frags = 0;
    uint16_t have_mask = 0;
    int nacks = 0;
    EventHandle gap_timer;
  };

  void SendFragment(uint32_t seq, uint16_t num_frags, uint16_t index, const Message& payload,
                    uint8_t type);
  void SendNack(uint32_t seq, uint16_t missing_mask);
  void OnGapTimer(uint32_t seq);
  void OnNack(uint32_t seq, uint16_t missing_mask);
  Status CompleteReassembly(uint32_t seq, Reasm& r);
  void ArmGapTimer(uint32_t seq);

  FragmentProtocol& frag_;
  IpAddr peer_;
  RelProtoNum proto_;
  SessionRef lower_;
  uint32_t next_seq_ = 1;
  std::map<uint32_t, SendRecord> send_cache_;
  std::map<uint32_t, Reasm> reasm_;
  // Recently completed sequence numbers (sliding window) so late duplicate
  // fragments don't rebuild reassembly state.
  std::vector<uint32_t> recent_done_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_FRAGMENT_H_
