#!/usr/bin/env bash
# Full pre-merge check: the regular build + test suite, then an
# ASan+UBSan-instrumented build of the same tests as a memory-safety smoke,
# observability determinism diffs, the parallel-engine bit-identity and
# speedup gates, and a TSan pass over the engine.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 tests only
#
# Sanitizer builds live in build-asan/ and build-tsan/ so they never pollute
# the primary build/ tree.

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo
echo "== sanitizer smoke: ASan+UBSan build + ctest (build-asan/) =="
cmake -B build-asan -S . -DXK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$jobs"
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo
echo "== sanitizer smoke: bench_suite under ASan+UBSan =="
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ./build-asan/bench/bench_suite --threads=2 --out=/dev/null

echo
echo "== observability smoke: capture -> analyze =="
obs=$(mktemp -d)
trap 'rm -rf "$obs"' EXIT
./build/bench/bench_table3_layer_costs \
  --trace="$obs/t3.trace.jsonl" --pcap="$obs/t3.pcap.jsonl" >/dev/null
[[ -s "$obs/t3.trace.jsonl" && -s "$obs/t3.pcap.jsonl" ]]
./build/src/xktrace "$obs/t3.trace.jsonl" > "$obs/t3.breakdown.txt"
[[ -s "$obs/t3.breakdown.txt" ]]
grep -q "per-call" "$obs/t3.breakdown.txt"

echo
echo "== observability determinism: bench_suite bit-identical at 1/2/4 threads =="
# --stable omits the host-time fields (the only run-to-run variation), so the
# whole results file -- simulated metrics, percentiles, per-segment stats --
# plus traces, captures, and sampled time series must be byte-identical
# across worker thread counts, no normalization needed.
for t in 1 2 4; do
  ./build/bench/bench_suite --threads="$t" --stable --out="$obs/r$t.json" \
    --trace="$obs/trace$t" --pcap="$obs/pcap$t" --stats="$obs/stats$t" \
    --flow="$obs/flow$t" >/dev/null
done
cmp "$obs/r1.json" "$obs/r2.json"
cmp "$obs/r1.json" "$obs/r4.json"
# Zero observer effect: an unobserved run reports the same simulated metrics.
./build/bench/bench_suite --threads=4 --stable --out="$obs/plain.json" >/dev/null
cmp "$obs/r1.json" "$obs/plain.json"
diff -r "$obs/trace1" "$obs/trace2"
diff -r "$obs/trace1" "$obs/trace4"
diff -r "$obs/pcap1" "$obs/pcap2"
diff -r "$obs/pcap1" "$obs/pcap4"
diff -r "$obs/stats1" "$obs/stats2"
diff -r "$obs/stats1" "$obs/stats4"
diff -r "$obs/flow1" "$obs/flow2"
diff -r "$obs/flow1" "$obs/flow4"

echo
echo "== parallel engine: bit-identical at --engine-threads=1 vs 4 =="
# Same suite, same artifacts, now varying the *simulation* engine width. The
# conservative engine must reproduce the serial engine byte for byte --
# metrics, events fired, traces, and captures.
for t in 1 4; do
  ./build/bench/bench_suite --engine-threads="$t" --stable --out="$obs/g$t.json" \
    --trace="$obs/gtrace$t" --pcap="$obs/gpcap$t" --stats="$obs/gstats$t" \
    --flow="$obs/gflow$t" >/dev/null
done
cmp "$obs/g1.json" "$obs/g4.json"
diff -r "$obs/gtrace1" "$obs/gtrace4"
diff -r "$obs/gpcap1" "$obs/gpcap4"
diff -r "$obs/gstats1" "$obs/gstats4"
diff -r "$obs/gflow1" "$obs/gflow4"

echo
echo "== xkflow smoke: critical-path attribution reconstructs the bench RTT =="
# Stitch the sat-knee trace into per-call causal graphs and insist the mean
# of the reconstructed RTTs matches the benchmark's own histogram mean within
# 1% (the attribution partitions each call's [issue, done] exactly, so the
# agreement is exact in practice -- 1% is the ISSUE acceptance bound).
./build/src/xkflow "$obs/trace1/datacenter.sat-knee.trace.jsonl" > "$obs/knee.flow.txt"
grep -q "aggregate attribution" "$obs/knee.flow.txt"
flow_ms=$(./build/src/xkflow "$obs/trace1/datacenter.sat-knee.trace.jsonl" \
  --critical-path --json | sed -E 's/.*"mean_rtt_ms":([0-9.eE+-]+).*/\1/')
bench_ms=$(grep '"name": "sat-knee"' "$obs/r1.json" \
  | sed -E 's/.*"mean_ms": ([0-9.eE+-]+).*/\1/')
awk -v f="$flow_ms" -v b="$bench_ms" 'BEGIN {
  d = f > b ? f - b : b - f;
  if (b <= 0 || d > 0.01 * b) {
    printf "FAIL: xkflow mean rtt %.6f ms vs bench %.6f ms\n", f, b; exit 1;
  }
  printf "xkflow rtt %.6f ms vs bench %.6f ms (|delta| %.6f)\n", f, b, d;
}'
# The replica-crash campaign reads as a causal story: the crash, the VPOOL
# down/readmit cycle, and cause-attributed retransmissions all surface.
./build/src/xkflow "$obs/trace1/datacenter.replica-crash-failover.trace.jsonl" \
  --critical-path > "$obs/crash.flow.txt"
grep -q "crash" "$obs/crash.flow.txt"
grep -Eq "retransmits: [1-9]" "$obs/crash.flow.txt"
grep -Eq "replica_down" "$obs/crash.flow.txt"

echo
echo "== bench regression gate: xkbench-diff vs bench/baseline.json =="
# Every simulated metric in the fresh run must sit within the per-metric
# thresholds of the committed baseline (host-dependent fields are skipped).
./build/src/xkbench_diff bench/baseline.json "$obs/r1.json"
# Negative test: an injected latency regression must fail the gate.
sed -E 's/"latency_ms": [0-9.eE+-]+/"latency_ms": 9999/' "$obs/r1.json" \
  > "$obs/tampered.json"
if ./build/src/xkbench_diff --quiet bench/baseline.json "$obs/tampered.json"; then
  echo "FAIL: xkbench-diff accepted an injected latency regression"
  exit 1
fi
echo "negative test: injected latency regression correctly rejected"

echo
echo "== chaos campaigns: oracle-clean crash/recovery =="
# The scheduled mid-workload server crash must recover (boot_resets = 1) with
# the at-most-once oracle reporting zero double executions and zero silent
# failures. Byte-identity of the chaos jobs across worker threads and engine
# widths is already enforced by the r*/g* cmp gates above, which include them.
crash_line=$(grep '"name": "server-crash"' "$obs/r1.json")
echo "$crash_line" | grep -q '"oracle_double_exec": 0' \
  || { echo "FAIL: chaos.server-crash reported double executions"; exit 1; }
echo "$crash_line" | grep -q '"oracle_silent": 0' \
  || { echo "FAIL: chaos.server-crash reported silent failures"; exit 1; }
echo "$crash_line" | grep -q '"boot_resets": 1' \
  || { echo "FAIL: chaos.server-crash never observed the server reboot"; exit 1; }
# A custom plan from the command line drives the same machinery.
./build/bench/bench_suite \
  --faults='crash:host=server,at=250ms,restart=600ms;drop:seg=0,from=0ms,until=200ms,rate=0.05;seed:5' \
  --filter='^chaos\.custom' --stable --out="$obs/chaos_custom.json" >/dev/null
grep -q '"oracle_double_exec": 0' "$obs/chaos_custom.json"
grep -q '"oracle_silent": 0' "$obs/chaos_custom.json"
echo "server-crash and --faults= campaigns oracle-clean"

echo
echo "== datacenter cluster: round-robin balance + oracle-clean failover =="
# The sub-saturation saturation-sweep job must complete every call with the
# round-robin share spread across the 4 replicas inside 10% (100000 ppm).
sat_line=$(grep '"name": "sat-low"' "$obs/r1.json")
echo "$sat_line" | grep -q '"success_rate_ppm": 1000000' \
  || { echo "FAIL: datacenter.sat-low dropped calls below saturation"; exit 1; }
spread=$(echo "$sat_line" | sed -nE 's/.*"share_spread_ppm": ([0-9]+).*/\1/p')
[ -n "$spread" ] && [ "$spread" -le 100000 ] \
  || { echo "FAIL: datacenter.sat-low replica share spread ${spread:-?} ppm > 10%"; exit 1; }
# The replica-crash job must stay oracle-clean, mark the dead replica down,
# readmit it, and fully recover in the post-restart phase of the timeline.
dc_line=$(grep '"name": "replica-crash-failover"' "$obs/r1.json")
echo "$dc_line" | grep -q '"oracle_double_exec": 0' \
  || { echo "FAIL: datacenter.replica-crash-failover reported double executions"; exit 1; }
echo "$dc_line" | grep -q '"oracle_silent": 0' \
  || { echo "FAIL: datacenter.replica-crash-failover reported silent failures"; exit 1; }
echo "$dc_line" | grep -Eq '"readmits": [1-9]' \
  || { echo "FAIL: datacenter.replica-crash-failover never readmitted the replica"; exit 1; }
post_ppm=$(echo "$dc_line" | sed -nE 's/.*"post": \{[^}]*"success_ppm": ([0-9]+).*/\1/p')
[ "${post_ppm:-0}" -eq 1000000 ] \
  || { echo "FAIL: post-restart phase success ${post_ppm:-?} ppm != 1000000"; exit 1; }
# A custom arrival process from the command line drives the same machinery.
./build/bench/bench_suite --arrivals='poisson:rate=120,horizon=300ms,seed=3' \
  --filter='^datacenter\.custom' --stable --out="$obs/dc_custom.json" >/dev/null
grep -q '"success_rate_ppm": 1000000' "$obs/dc_custom.json"
grep -q '"oracle_silent": 0' "$obs/dc_custom.json"
echo "saturation balance, replica-crash failover, and --arrivals= campaigns clean"

echo
echo "== overload control: graceful degradation at 2.5x the knee =="
# sat-overload-controlled offers the same 400 cps/client that collapses the
# uncontrolled sat-overload job, but with deadlines + retry budget + caps +
# backlog-bounded admission armed it must sustain >= 85% of the knee's
# goodput, and >= 99% of the calls the system admitted must complete.
knee_good=$(grep '"name": "sat-knee"' "$obs/r1.json" \
  | sed -nE 's/.*"goodput_cps": ([0-9.eE+-]+).*/\1/p')
ctrl_line=$(grep '"name": "sat-overload-controlled"' "$obs/r1.json")
ctrl_good=$(echo "$ctrl_line" | sed -nE 's/.*"goodput_cps": ([0-9.eE+-]+).*/\1/p')
awk -v c="$ctrl_good" -v k="$knee_good" 'BEGIN { exit !(k > 0 && c >= 0.85 * k) }' \
  || { echo "FAIL: controlled goodput ${ctrl_good:-?} cps < 85% of knee ${knee_good:-?}"; \
       exit 1; }
adm_ppm=$(echo "$ctrl_line" \
  | sed -nE 's/.*"oracle_admitted_success_ppm": ([0-9]+).*/\1/p')
[ "${adm_ppm:-0}" -ge 990000 ] \
  || { echo "FAIL: admitted-call success ${adm_ppm:-?} ppm < 990000"; exit 1; }
echo "$ctrl_line" | grep -q '"oracle_double_exec": 0' \
  || { echo "FAIL: sat-overload-controlled reported double executions"; exit 1; }
echo "$ctrl_line" | grep -q '"oracle_silent": 0' \
  || { echo "FAIL: sat-overload-controlled reported silent failures"; exit 1; }
# Hedged failover across a replica crash: at-most-once must hold even with
# deliberate duplicate attempts in flight (hedged duplicates are reported as
# their own class, never as violations).
hedge_line=$(grep '"name": "hedged-crash-failover"' "$obs/r1.json")
echo "$hedge_line" | grep -Eq '"hedges": [1-9]' \
  || { echo "FAIL: hedged-crash-failover never hedged"; exit 1; }
echo "$hedge_line" | grep -q '"oracle_double_exec": 0' \
  || { echo "FAIL: hedged-crash-failover reported double executions"; exit 1; }
echo "$hedge_line" | grep -q '"oracle_silent": 0' \
  || { echo "FAIL: hedged-crash-failover reported silent failures"; exit 1; }
echo "controlled goodput ${ctrl_good} cps (knee ${knee_good})," \
     "admitted success ${adm_ppm} ppm, hedged failover oracle-clean"

echo
echo "== session scale: churn soak evicts everything and RSS plateaus =="
# Three open -> drain cycles of 20k sessions each. The sweep timer must
# reclaim every session (live_after = 0, evictions > 0) and the resident set
# after the last drain must sit at the first cycle's plateau -- the slab
# high-water from cycle 1 serves every later cycle, so memory does not grow
# with total sessions ever created. Byte-identity of the simulated fields is
# already enforced by the r*/g* cmp gates above, which include this group;
# this run is deliberately non---stable so the host-side RSS fields exist.
./build/bench/bench_suite --filter='^session_scale\.soak' \
  --out="$obs/ss_soak.json" >/dev/null
soak_line=$(grep '"name": "soak"' "$obs/ss_soak.json")
echo "$soak_line" | grep -Eq '"client_evicted": [1-9]' \
  || { echo "FAIL: session_scale.soak never evicted a session"; exit 1; }
echo "$soak_line" | grep -q '"client_live_after": 0' \
  || { echo "FAIL: session_scale.soak left client sessions live after drain"; exit 1; }
echo "$soak_line" | grep -q '"server_live_after": 0' \
  || { echo "FAIL: session_scale.soak left server sessions live after drain"; exit 1; }
rss_first=$(echo "$soak_line" | sed -nE 's/.*"rss_mb_first_cycle": ([0-9.]+).*/\1/p')
rss_drain=$(echo "$soak_line" | sed -nE 's/.*"rss_mb_after_drain": ([0-9.]+).*/\1/p')
awk -v a="$rss_drain" -v b="$rss_first" 'BEGIN { exit !(b > 0 && a <= b * 1.35) }' \
  || { echo "FAIL: session_scale.soak RSS grew across cycles" \
              "(first=${rss_first:-?} MB, after=${rss_drain:-?} MB)"; exit 1; }
echo "soak: full reclamation, RSS plateau ${rss_first} MB -> ${rss_drain} MB"

echo
echo "== parallel engine: wall-clock speedup on the many-host workload =="
# --engine-speedup times the many-host workload serially and at 4 engine
# threads and fails if the simulated results differ at all. The >= 1.8x
# wall-clock bar only applies where the hardware can parallelize.
./build/bench/bench_suite --filter='^manyhost' --engine-speedup=4 \
  --out="$obs/speedup.json" >/dev/null
speedup=$(sed -nE 's/.*"engine_speedup": ([0-9.]+).*/\1/p' "$obs/speedup.json")
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  awk -v s="$speedup" 'BEGIN { exit !(s >= 1.8) }' \
    || { echo "FAIL: engine speedup ${speedup}x < 1.8x on $cores cores"; exit 1; }
  echo "engine speedup ${speedup}x at 4 threads (>= 1.8x required, $cores cores)"
else
  echo "engine speedup ${speedup}x recorded; 1.8x bar skipped ($cores core(s) < 4)"
fi

echo
echo "== TSan: parallel engine data-race check (build-tsan/) =="
cmake -B build-tsan -S . -DXK_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$jobs" --target bench_suite xk_tests
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/bench/bench_suite \
  --filter='^(manyhost|chaos)' --engine-threads=4 --out=/dev/null
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/xk_tests \
  --gtest_filter='ParallelEngine*'

echo
echo "All checks passed."
