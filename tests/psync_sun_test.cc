// Tests for Psync (FRAGMENT reuse, context graph) and the Sun RPC
// decomposition (REQUEST_REPLY zero-or-more semantics, SUN_SELECT addressing,
// optional auth layers, mix-and-match with CHANNEL).

#include <gtest/gtest.h>

#include "src/psync/psync.h"
#include "src/rpc/sun/auth.h"
#include "src/rpc/sun/request_reply.h"
#include "src/rpc/sun/sun_select.h"
#include "tests/rpc_util.h"

namespace xk {
namespace {

// --- Psync ---------------------------------------------------------------------

struct PsyncFixture : ::testing::Test {
  void SetUp() override {
    net = std::make_unique<Internet>();
    const int seg = net->AddSegment();
    hosts[0] = &net->AddHost("a", seg, IpAddr(10, 0, 1, 1));
    hosts[1] = &net->AddHost("b", seg, IpAddr(10, 0, 1, 2));
    hosts[2] = &net->AddHost("c", seg, IpAddr(10, 0, 1, 3));
    net->WarmArp();
    for (int i = 0; i < 3; ++i) {
      HostStack* h = hosts[i];
      RunIn(*h->kernel, [&, i] {
        auto& vip = h->kernel->Emplace<VipProtocol>(*h->kernel, h->eth, h->ip, h->arp);
        auto& frag = h->kernel->Emplace<FragmentProtocol>(*h->kernel, &vip);
        psync[i] = &h->kernel->Emplace<PsyncProtocol>(*h->kernel, &frag);
        std::vector<IpAddr> others;
        for (int j = 0; j < 3; ++j) {
          if (j != i) {
            others.push_back(IpAddr(10, 0, 1, static_cast<uint8_t>(j + 1)));
          }
        }
        Result<PsyncConversation*> c = psync[i]->Join(77, others);
        ASSERT_TRUE(c.ok());
        conv[i] = *c;
      });
    }
  }

  Result<PsyncMsgId> SendFrom(int i, std::vector<uint8_t> payload) {
    Result<PsyncMsgId> id = ErrStatus(StatusCode::kError);
    RunIn(*hosts[i]->kernel, [&] { id = conv[i]->Send(Message::FromBytes(payload)); });
    net->RunAll();
    return id;
  }

  std::unique_ptr<Internet> net;
  HostStack* hosts[3] = {};
  PsyncProtocol* psync[3] = {};
  PsyncConversation* conv[3] = {};
};

TEST_F(PsyncFixture, MessageReachesAllParticipants) {
  std::vector<PsyncDelivery> got_b, got_c;
  conv[1]->set_receive_handler([&](const PsyncDelivery& d) { got_b.push_back(d); });
  conv[2]->set_receive_handler([&](const PsyncDelivery& d) { got_c.push_back(d); });
  Result<PsyncMsgId> id = SendFrom(0, PatternBytes(100, 1));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(got_b.size(), 1u);
  ASSERT_EQ(got_c.size(), 1u);
  EXPECT_EQ(got_b[0].id, *id);
  EXPECT_EQ(got_b[0].sender, IpAddr(10, 0, 1, 1));
  EXPECT_EQ(got_b[0].payload.Flatten(), PatternBytes(100, 1));
  EXPECT_TRUE(got_b[0].context.empty());  // first message: no context
  EXPECT_EQ(psync[0]->stats().copies_sent, 2u);
}

TEST_F(PsyncFixture, ContextCapturesConversationOrder) {
  Result<PsyncMsgId> m1 = SendFrom(0, PatternBytes(10, 1));
  ASSERT_TRUE(m1.ok());
  Result<PsyncMsgId> m2 = SendFrom(1, PatternBytes(10, 2));  // b saw m1
  ASSERT_TRUE(m2.ok());
  Result<PsyncMsgId> m3 = SendFrom(2, PatternBytes(10, 3));  // c saw m1, m2
  ASSERT_TRUE(m3.ok());
  // Everyone's graph agrees on the precedence relation.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(conv[i]->Precedes(*m1, *m2)) << "host " << i;
    EXPECT_TRUE(conv[i]->Precedes(*m2, *m3)) << "host " << i;
    EXPECT_TRUE(conv[i]->Precedes(*m1, *m3)) << "host " << i;
    EXPECT_FALSE(conv[i]->Precedes(*m2, *m1)) << "host " << i;
    EXPECT_EQ(conv[i]->GraphSize(), 3u);
  }
  // m3 is the single leaf everywhere.
  EXPECT_EQ(conv[0]->Leaves(), std::vector<PsyncMsgId>{*m3});
}

TEST_F(PsyncFixture, ConcurrentMessagesAreUnordered) {
  // a and b send "simultaneously" (before seeing each other's message).
  Result<PsyncMsgId> ma = ErrStatus(StatusCode::kError);
  Result<PsyncMsgId> mb = ErrStatus(StatusCode::kError);
  RunIn(*hosts[0]->kernel, [&] { ma = conv[0]->Send(Message::FromBytes(PatternBytes(5, 1))); });
  RunIn(*hosts[1]->kernel, [&] { mb = conv[1]->Send(Message::FromBytes(PatternBytes(5, 2))); });
  net->RunAll();
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_FALSE(conv[2]->Precedes(*ma, *mb));
  EXPECT_FALSE(conv[2]->Precedes(*mb, *ma));
  EXPECT_EQ(conv[2]->Leaves().size(), 2u);  // both are leaves: concurrent
}

TEST_F(PsyncFixture, LargeMessageRidesFragment) {
  // 16 KB message: Psync reuses FRAGMENT's bulk transfer, which is the reason
  // the paper made FRAGMENT unreliable rather than at-most-once.
  std::vector<PsyncDelivery> got_b;
  conv[1]->set_receive_handler([&](const PsyncDelivery& d) { got_b.push_back(d); });
  Result<PsyncMsgId> id = SendFrom(0, PatternBytes(16000, 7));
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0].payload.Flatten(), PatternBytes(16000, 7));
}

TEST_F(PsyncFixture, LostFragmentRecoveredTransparently) {
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 3 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  std::vector<PsyncDelivery> got_b, got_c;
  conv[1]->set_receive_handler([&](const PsyncDelivery& d) { got_b.push_back(d); });
  conv[2]->set_receive_handler([&](const PsyncDelivery& d) { got_c.push_back(d); });
  Result<PsyncMsgId> id = SendFrom(0, PatternBytes(8000, 9));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(got_b.size() + got_c.size(), 2u);
}

// --- Sun RPC -------------------------------------------------------------------

constexpr uint32_t kProg = 100003;  // NFS-ish
constexpr uint16_t kVers = 2;
constexpr uint16_t kProcRead = 6;

struct SunFixture {
  explicit SunFixture(SunPairing pairing, SunAuth auth) {
    fix.Build([=](HostStack& h) { return BuildSunRpc(h, pairing, auth); },
              /*export_echo=*/false);
    RunIn(*fix.sh->kernel, [&] {
      EXPECT_TRUE(fix.server
                      ->ExportParts(SunProgService(kProg, kVers),
                                    [](uint16_t, Message& request) { return request; })
                      .ok());
    });
  }

  Result<Message> CallSync(Message args) {
    Result<Message> result = ErrStatus(StatusCode::kError);
    bool done = false;
    RunIn(*fix.ch->kernel, [&] {
      fix.client->CallParts(SunProcAddress(fix.server_addr(), kProg, kVers, kProcRead),
                            std::move(args), [&](Result<Message> r) {
                              result = std::move(r);
                              done = true;
                            });
    });
    fix.net->RunAll();
    EXPECT_TRUE(done);
    return result;
  }

  RpcFixture fix;
};

TEST(SunRpcTest, BasicCallOverRequestReply) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(200, 1)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(200, 1));
  EXPECT_EQ(sun.fix.cstack.reqrep->stats().calls_sent, 1u);
  EXPECT_EQ(sun.fix.sstack.reqrep->stats().requests_executed, 1u);
}

TEST(SunRpcTest, LargeArgsRideFragment) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(8192, 2)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(8192, 2));
  EXPECT_GE(sun.fix.cstack.fragment->stats().fragments_sent, 8u);
}

TEST(SunRpcTest, UnknownProgramFails) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  Result<Message> result = ErrStatus(StatusCode::kError);
  bool done = false;
  RunIn(*sun.fix.ch->kernel, [&] {
    sun.fix.client->CallParts(SunProcAddress(sun.fix.server_addr(), 999, 1, 1), Message(),
                              [&](Result<Message> r) {
                                result = std::move(r);
                                done = true;
                              });
  });
  sun.fix.net->RunAll();
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(sun.fix.sstack.sunselect->stats().prog_unavail, 1u);
}

TEST(SunRpcTest, RequestReplyHasZeroOrMoreSemantics) {
  // A duplicated request is executed TWICE -- the defining contrast with
  // CHANNEL's at-most-once.
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  sun.fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sun.fix.sstack.reqrep->stats().requests_executed, 2u);
  EXPECT_EQ(sun.fix.server->requests_served(), 2u);
}

TEST(SunRpcTest, SwappingInChannelGivesAtMostOnce) {
  // The mix-and-match payoff: replace REQUEST_REPLY with CHANNEL and the same
  // duplicated request is executed ONCE.
  SunFixture sun(SunPairing::kChannel, SunAuth::kNone);
  sun.fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(10)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sun.fix.server->requests_served(), 1u);
  EXPECT_GE(sun.fix.sstack.channel->stats().duplicates_suppressed, 1u);
}

TEST(SunRpcTest, LostRequestRetransmittedAndReExecuted) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  sun.fix.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  Result<Message> r = sun.CallSync(Message());
  ASSERT_TRUE(r.ok());
  EXPECT_GE(sun.fix.cstack.reqrep->stats().retransmissions, 1u);
}

TEST(SunRpcTest, AuthNoneLayerPassesThrough) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kAuthNone);
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(50, 3)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Flatten(), PatternBytes(50, 3));
  EXPECT_GE(sun.fix.cstack.auth->stats().attached, 1u);
  EXPECT_GE(sun.fix.sstack.auth->stats().verified, 1u);
}

TEST(SunRpcTest, AuthCredAcceptsAllowedUid) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kAuthCred);
  RunIn(*sun.fix.ch->kernel, [&] {
    static_cast<AuthCredProtocol*>(sun.fix.cstack.auth)->SetCredentials(1001, 100);
  });
  RunIn(*sun.fix.sh->kernel, [&] {
    static_cast<AuthCredProtocol*>(sun.fix.sstack.auth)->AllowUid(1001);
  });
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(20, 4)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sun.fix.sstack.auth->stats().verified, 1u);
  EXPECT_EQ(sun.fix.sstack.auth->stats().rejected, 0u);
}

TEST(SunRpcTest, AuthCredRejectsUnknownUid) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kAuthCred);
  RunIn(*sun.fix.ch->kernel, [&] {
    static_cast<AuthCredProtocol*>(sun.fix.cstack.auth)->SetCredentials(666, 666);
  });
  RunIn(*sun.fix.sh->kernel, [&] {
    static_cast<AuthCredProtocol*>(sun.fix.sstack.auth)->AllowUid(1001);
  });
  Result<Message> r = sun.CallSync(Message::FromBytes(PatternBytes(20, 5)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRejected);
  EXPECT_GE(sun.fix.sstack.auth->stats().rejected, 1u);
  EXPECT_EQ(sun.fix.server->requests_served(), 0u);  // never reached the service
}

TEST(SunRpcTest, DistinctProceduresPairIndependently) {
  SunFixture sun(SunPairing::kRequestReply, SunAuth::kNone);
  Result<Message> r1 = ErrStatus(StatusCode::kError);
  Result<Message> r2 = ErrStatus(StatusCode::kError);
  RunIn(*sun.fix.ch->kernel, [&] {
    sun.fix.client->CallParts(SunProcAddress(sun.fix.server_addr(), kProg, kVers, 1),
                              Message::FromBytes(PatternBytes(4, 1)),
                              [&](Result<Message> r) { r1 = std::move(r); });
    sun.fix.client->CallParts(SunProcAddress(sun.fix.server_addr(), kProg, kVers, 2),
                              Message::FromBytes(PatternBytes(4, 2)),
                              [&](Result<Message> r) { r2 = std::move(r); });
  });
  sun.fix.net->RunAll();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->Flatten(), PatternBytes(4, 1));
  EXPECT_EQ(r2->Flatten(), PatternBytes(4, 2));
}

}  // namespace
}  // namespace xk
