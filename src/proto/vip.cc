#include "src/proto/vip.h"

namespace xk {

// ---------------------------------------------------------------------------
// VipProtocol
// ---------------------------------------------------------------------------

VipProtocol::VipProtocol(Kernel& kernel, Protocol* eth, Protocol* ip, ArpProtocol* arp,
                         std::string name)
    : Protocol(kernel, std::move(name), {eth, ip}),
      arp_(arp),
      active_(*this),
      passive_(*this),
      by_lls_(*this) {
  MarkIdleCapable();
}

size_t VipProtocol::EthMtu() {
  ControlArgs args;
  return eth()->Control(ControlOp::kGetMaxPacket, args).ok() ? args.u64 : 1500;
}

Result<SessionRef> VipProtocol::FinishOpen(Protocol& hlp, IpAddr peer, IpProtoNum proto,
                                           std::optional<EthAddr> local_eth, uint64_t max_send) {
  const size_t eth_mtu = EthMtu();
  SessionRef eth_sess;
  SessionRef ip_sess;

  if (local_eth.has_value()) {
    // Destination is on the local Ethernet: map the protocol number onto the
    // reserved type range and open an ETH session.
    ParticipantSet eparts;
    eparts.local.eth_type = VipEthTypeFor(proto);
    eparts.peer.eth = *local_eth;
    Result<SessionRef> r = eth()->Open(*this, eparts);
    if (!r.ok()) {
      return r.status();
    }
    eth_sess = *r;
  }
  if (!local_eth.has_value() || max_send > eth_mtu) {
    // Off-link destination, or the client may send messages the local wire
    // cannot carry: open an IP session (possibly in addition to ETH).
    ParticipantSet iparts;
    iparts.local.ip_proto = proto;
    iparts.peer.host = peer;
    Result<SessionRef> r = ip()->Open(*this, iparts);
    if (!r.ok()) {
      return r.status();
    }
    ip_sess = *r;
  }

  kernel().ChargeSessionCreate();
  auto sess = pool_.Create(*this, &hlp, std::optional<IpAddr>(peer), proto, eth_sess, ip_sess,
                           eth_mtu);
  TrackIdle(*sess);
  active_.Bind(Key{peer, proto}, sess);
  if (eth_sess != nullptr) {
    by_lls_.Bind(eth_sess.get(), sess);
  }
  if (ip_sess != nullptr) {
    by_lls_.Bind(ip_sess.get(), sess);
  }
  return SessionRef(sess);
}

Result<SessionRef> VipProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpAddr peer = *parts.peer.host;
  const IpProtoNum proto = *parts.local.ip_proto;
  if (SessionRef cached = active_.Resolve(Key{peer, proto})) {
    cached->set_hlp(&hlp);
    return cached;
  }
  // "VIP asks the invoking protocol about the size of messages it expects the
  // underlying protocol to support using a control operation."
  ControlArgs args;
  uint64_t max_send = UINT64_MAX;
  if (hlp.Control(ControlOp::kGetMaxSendSize, args).ok()) {
    max_send = args.u64;
  }
  // "VIP next decides if the destination host is reachable via the ethernet
  // by trying to resolve the IP address using ARP." Synchronous open uses the
  // cache only; OpenAsync covers the cold-cache case.
  kernel().ChargeMapResolve();
  return FinishOpen(hlp, peer, proto, arp_->Lookup(peer), max_send);
}

void VipProtocol::OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value()) {
    done(ErrStatus(StatusCode::kInvalidArgument));
    return;
  }
  const IpAddr peer = *parts.peer.host;
  const IpProtoNum proto = *parts.local.ip_proto;
  if (SessionRef cached = active_.Resolve(Key{peer, proto})) {
    cached->set_hlp(&hlp);
    done(cached);
    return;
  }
  ControlArgs args;
  uint64_t max_send = UINT64_MAX;
  if (hlp.Control(ControlOp::kGetMaxSendSize, args).ok()) {
    max_send = args.u64;
  }
  // Cold cache: actually try ARP on the wire. Failure to resolve means the
  // destination is not on the local network -- fall back to IP.
  Protocol* hlp_ptr = &hlp;
  arp_->Resolve(peer, [this, hlp_ptr, peer, proto, max_send, done](Result<EthAddr> r) {
    std::optional<EthAddr> local_eth;
    if (r.ok()) {
      local_eth = *r;
    }
    done(FinishOpen(*hlp_ptr, peer, proto, local_eth, max_send));
  });
}

Status VipProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpProtoNum proto = *parts.local.ip_proto;
  Protocol* existing = nullptr;
  if (!passive_.TryBind(proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(proto, &hlp);  // idempotent re-enable recharges, as before
  }
  // Enable both delivery paths: the mapped Ethernet type and the IP protocol.
  ParticipantSet eparts;
  eparts.local.eth_type = VipEthTypeFor(proto);
  Status es = eth()->OpenEnable(*this, eparts);
  ParticipantSet iparts;
  iparts.local.ip_proto = proto;
  Status is = ip()->OpenEnable(*this, iparts);
  return es.ok() ? is : es;
}

Status VipProtocol::OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) {
  // A lower protocol passively created `lls` for traffic we enabled. Work out
  // which protocol number it serves and wire a VIP session around it.
  IpProtoNum proto = 0;
  SessionRef eth_sess;
  SessionRef ip_sess;
  std::optional<IpAddr> peer = parts.peer.host;
  if (parts.local.eth_type.has_value()) {
    proto = static_cast<IpProtoNum>(*parts.local.eth_type - kEthTypeVipBase);
    eth_sess = lls;
    if (!peer.has_value() && parts.peer.eth.has_value()) {
      peer = arp_->ReverseLookup(*parts.peer.eth);
    }
  } else if (parts.local.ip_proto.has_value()) {
    proto = *parts.local.ip_proto;
    ip_sess = lls;
  } else {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  (void)llp;
  Protocol* hlp = passive_.Resolve(proto);
  if (hlp == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  kernel().ChargeSessionCreate();
  auto sess = pool_.Create(*this, hlp, peer, proto, eth_sess, ip_sess, EthMtu());
  TrackIdle(*sess);
  by_lls_.Bind(lls.get(), sess);
  if (peer.has_value()) {
    active_.Bind(Key{*peer, proto}, sess);
  }
  ParticipantSet up;
  up.local.ip_proto = proto;
  up.peer.host = peer;
  return hlp->OpenDoneUp(*this, sess, up);
}

Status VipProtocol::DoDemux(Session* lls, Message& msg) {
  // VIP is header-less: nothing to pop. Find the VIP session wrapped around
  // the delivering lower session.
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  SessionRef sess = by_lls_.Resolve(lls);
  if (sess == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  return sess->Pop(msg, lls);
}

Status VipProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      // VIP offers IP semantics: the IP maximum.
      return ip()->Control(ControlOp::kGetMaxPacket, args);
    case ControlOp::kGetOptPacket:
      // Optimal = what the local wire carries without fragmentation.
      return eth()->Control(ControlOp::kGetMaxPacket, args);
    default:
      return Protocol::DoControl(op, args);
  }
}

bool VipProtocol::EvictSession(Session& s) {
  auto& vs = static_cast<VipSession&>(s);
  // Count the references this protocol's own maps hold; anything beyond those
  // (an upper session using us as its lower, a caller mid-open) vetoes.
  long expected = 0;
  if (vs.eth_sess_ != nullptr && by_lls_.Peek(vs.eth_sess_.get()).get() == &vs) {
    ++expected;
  }
  if (vs.ip_sess_ != nullptr && by_lls_.Peek(vs.ip_sess_.get()).get() == &vs) {
    ++expected;
  }
  bool active_bound = false;
  if (vs.peer_.has_value() && active_.Peek(Key{*vs.peer_, vs.proto_}).get() == &vs) {
    active_bound = true;
    ++expected;
  }
  if (static_cast<long>(vs.weak_from_this().use_count()) > expected) {
    return false;
  }
  // Pin: dropping the map references one by one must not destroy the session
  // mid-function; the pin releases (and ~VipSession runs) on return.
  SessionRef pin = vs.weak_from_this().lock();
  if (vs.eth_sess_ != nullptr) {
    by_lls_.Unbind(vs.eth_sess_.get());
  }
  if (vs.ip_sess_ != nullptr) {
    by_lls_.Unbind(vs.ip_sess_.get());
  }
  if (active_bound) {
    active_.Unbind(Key{*vs.peer_, vs.proto_});
  }
  return true;
}

// ---------------------------------------------------------------------------
// VipSession
// ---------------------------------------------------------------------------

VipSession::VipSession(VipProtocol& owner, Protocol* hlp, std::optional<IpAddr> peer,
                       IpProtoNum proto, SessionRef eth_sess, SessionRef ip_sess, size_t eth_mtu)
    : Session(owner, hlp),
      vip_(owner),
      peer_(peer),
      proto_(proto),
      eth_sess_(std::move(eth_sess)),
      ip_sess_(std::move(ip_sess)),
      eth_mtu_(eth_mtu) {}

Status VipSession::DoPush(Message& msg) {
  // "VIP's push operation inspects the length of the message... the only
  // overhead it adds to message delivery is the cost of the single test."
  kernel().Charge(Usec(2));
  if (eth_sess_ != nullptr && msg.length() <= eth_mtu_) {
    return eth_sess_->Push(msg);
  }
  if (ip_sess_ == nullptr) {
    // Message too large for the wire and no IP path was opened: open one
    // lazily if we know the peer (can happen on passively created sessions).
    if (!peer_.has_value()) {
      return ErrStatus(StatusCode::kTooBig);
    }
    ParticipantSet iparts;
    iparts.local.ip_proto = proto_;
    iparts.peer.host = *peer_;
    Result<SessionRef> r = vip_.ip()->Open(vip_, iparts);
    if (!r.ok()) {
      return r.status();
    }
    ip_sess_ = *r;
    vip_.by_lls_.Bind(ip_sess_.get(), std::static_pointer_cast<Session>(Ref()));
  }
  return ip_sess_->Push(msg);
}

Status VipSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status VipSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      if (ip_sess_ != nullptr) {
        return ip_sess_->Control(op, args);
      }
      args.u64 = eth_mtu_;
      return OkStatus();
    case ControlOp::kGetOptPacket:
      // Optimal size: whatever avoids fragmentation on the chosen path.
      if (eth_sess_ != nullptr) {
        args.u64 = eth_mtu_;
        return OkStatus();
      }
      return ip_sess_->Control(op, args);
    case ControlOp::kGetPeerHost:
      if (peer_.has_value()) {
        args.ip = *peer_;
        return OkStatus();
      }
      return ErrStatus(StatusCode::kNotFound);
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
