#include "src/stat/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

namespace xk {

int Histogram::BucketIndex(SimTime v) {
  if (v < kSubBuckets) {
    return v < 0 ? 0 : static_cast<int>(v);
  }
  const auto u = static_cast<uint64_t>(v);
  // Highest set bit index; >= kSubBits because v >= 2^kSubBits.
  const int msb = 63 - std::countl_zero(u);
  const int shift = msb - kSubBits;
  // Octave group (msb - kSubBits + 1), then the linear position within it.
  // (u >> shift) is in [32, 64); subtracting 32 yields the sub-bucket.
  return (msb - kSubBits + 1) * kSubBuckets + static_cast<int>((u >> shift) - kSubBuckets);
}

SimTime Histogram::BucketLow(int b) {
  if (b < kSubBuckets) {
    return b;
  }
  const int group = b / kSubBuckets;  // >= 1
  const int sub = b % kSubBuckets;
  const int shift = group - 1;
  return static_cast<SimTime>(static_cast<uint64_t>(kSubBuckets + sub) << shift);
}

SimTime Histogram::BucketHigh(int b) {
  if (b < kSubBuckets) {
    return b;
  }
  const int shift = b / kSubBuckets - 1;
  return BucketLow(b) + static_cast<SimTime>((uint64_t{1} << shift) - 1);
}

void Histogram::Record(SimTime v) {
  if (v < 0) {
    v = 0;
  }
  ++buckets_[static_cast<size_t>(BucketIndex(v))];
  if (count_ == 0 || v < min_) {
    min_ = v;
  }
  if (v > max_) {
    max_ = v;
  }
  sum_ += v;
  ++count_;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() { *this = Histogram{}; }

SimTime Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > count_) {
    rank = count_;
  }
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      SimTime v = BucketHigh(static_cast<int>(b));
      if (v > max_) {
        v = max_;
      }
      if (v < min_) {
        v = min_;
      }
      return v;
    }
  }
  return max_;
}

void AppendPercentilesMsJson(std::string& out, const Histogram& h, std::string_view key) {
  auto num = [&out](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out += buf;
  };
  out += '"';
  out += key;
  out += "\": {\"count\": ";
  out += std::to_string(h.count());
  out += ", \"p50_ms\": ";
  num(ToMsec(h.P50()));
  out += ", \"p90_ms\": ";
  num(ToMsec(h.P90()));
  out += ", \"p99_ms\": ";
  num(ToMsec(h.P99()));
  out += ", \"p999_ms\": ";
  num(ToMsec(h.P999()));
  out += ", \"max_ms\": ";
  num(ToMsec(h.max()));
  out += ", \"mean_ms\": ";
  num(h.Mean() / 1e6);
  out += "}";
}

}  // namespace xk
