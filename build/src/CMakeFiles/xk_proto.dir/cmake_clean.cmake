file(REMOVE_RECURSE
  "CMakeFiles/xk_proto.dir/proto/arp.cc.o"
  "CMakeFiles/xk_proto.dir/proto/arp.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/eth.cc.o"
  "CMakeFiles/xk_proto.dir/proto/eth.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/icmp.cc.o"
  "CMakeFiles/xk_proto.dir/proto/icmp.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/ip.cc.o"
  "CMakeFiles/xk_proto.dir/proto/ip.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/topology.cc.o"
  "CMakeFiles/xk_proto.dir/proto/topology.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/udp.cc.o"
  "CMakeFiles/xk_proto.dir/proto/udp.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/vip.cc.o"
  "CMakeFiles/xk_proto.dir/proto/vip.cc.o.d"
  "CMakeFiles/xk_proto.dir/proto/vip_size.cc.o"
  "CMakeFiles/xk_proto.dir/proto/vip_size.cc.o.d"
  "libxk_proto.a"
  "libxk_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
