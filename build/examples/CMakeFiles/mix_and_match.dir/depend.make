# Empty dependencies file for mix_and_match.
# This may be replaced when dependencies are built.
