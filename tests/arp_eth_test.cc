// Tests for the Ethernet driver protocol and ARP over the simulated segment.

#include <gtest/gtest.h>

#include "src/proto/topology.h"
#include "tests/test_util.h"

namespace xk {
namespace {

constexpr EthType kTestType = 0x4242;

struct EthFixture : ::testing::Test {
  void SetUp() override {
    net = Internet::TwoHosts();
    client = &net->host("client");
    server = &net->host("server");
  }

  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
};

TEST_F(EthFixture, UnicastDataFlowsBetweenAnchors) {
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
  RunIn(*client->kernel, [&] { ca = &client->kernel->Emplace<TestAnchor>(*client->kernel); });
  RunIn(*server->kernel, [&] {
    sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
    ParticipantSet enable;
    enable.local.eth_type = kTestType;
    EXPECT_TRUE(server->eth->OpenEnable(*sa, enable).ok());
  });
  RunIn(*client->kernel, [&] {
    ParticipantSet parts;
    parts.local.eth_type = kTestType;
    parts.peer.eth = server->eth->addr();
    Result<SessionRef> sess = client->eth->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg = Message::FromBytes(PatternBytes(100));
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  net->RunAll();
  ASSERT_EQ(sa->received.size(), 1u);
  EXPECT_EQ(sa->received[0], PatternBytes(100));
  EXPECT_EQ(sa->accepted.size(), 1u);  // passive session was created
}

TEST_F(EthFixture, ReplyFlowsThroughPassivelyCreatedSession) {
  TestAnchor* ca = nullptr;
  TestAnchor* sa = nullptr;
  RunIn(*client->kernel, [&] { ca = &client->kernel->Emplace<TestAnchor>(*client->kernel); });
  RunIn(*server->kernel, [&] {
    sa = &server->kernel->Emplace<TestAnchor>(*server->kernel);
    sa->on_receive = [&](Message& msg, Session* lls) {
      Message reply = Message::FromBytes(PatternBytes(7, 9));
      (void)msg;
      ASSERT_NE(lls, nullptr);
      EXPECT_TRUE(lls->Push(reply).ok());
    };
    ParticipantSet enable;
    enable.local.eth_type = kTestType;
    EXPECT_TRUE(server->eth->OpenEnable(*sa, enable).ok());
  });
  RunIn(*client->kernel, [&] {
    ParticipantSet parts;
    parts.local.eth_type = kTestType;
    parts.peer.eth = server->eth->addr();
    Result<SessionRef> sess = client->eth->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg = Message::FromBytes(PatternBytes(10));
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  net->RunAll();
  ASSERT_EQ(ca->received.size(), 1u);
  EXPECT_EQ(ca->received[0], PatternBytes(7, 9));
}

TEST_F(EthFixture, OversizeMessageRejected) {
  TestAnchor* ca = nullptr;
  RunIn(*client->kernel, [&] {
    ca = &client->kernel->Emplace<TestAnchor>(*client->kernel);
    ParticipantSet parts;
    parts.local.eth_type = kTestType;
    parts.peer.eth = server->eth->addr();
    Result<SessionRef> sess = client->eth->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg(1501);
    EXPECT_EQ((*sess)->Push(msg).code(), StatusCode::kTooBig);
    Message ok_msg(1500);
    EXPECT_TRUE((*sess)->Push(ok_msg).ok());
  });
}

TEST_F(EthFixture, UnknownTypeDropped) {
  TestAnchor* ca = nullptr;
  RunIn(*client->kernel, [&] {
    ca = &client->kernel->Emplace<TestAnchor>(*client->kernel);
    ParticipantSet parts;
    parts.local.eth_type = 0x9999;  // nothing enabled on server
    parts.peer.eth = server->eth->addr();
    Result<SessionRef> sess = client->eth->Open(*ca, parts);
    ASSERT_TRUE(sess.ok());
    Message msg(10);
    EXPECT_TRUE((*sess)->Push(msg).ok());
  });
  net->RunAll();
  EXPECT_EQ(server->eth->frames_in(), 1u);  // arrived but no binding
}

TEST_F(EthFixture, OpenReturnsCachedSession) {
  RunIn(*client->kernel, [&] {
    auto& ca = client->kernel->Emplace<TestAnchor>(*client->kernel);
    ParticipantSet parts;
    parts.local.eth_type = kTestType;
    parts.peer.eth = server->eth->addr();
    Result<SessionRef> a = client->eth->Open(ca, parts);
    Result<SessionRef> b = client->eth->Open(ca, parts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->get(), b->get());
  });
}

TEST_F(EthFixture, DuplicateEnableByOtherProtocolRejected) {
  RunIn(*server->kernel, [&] {
    auto& a = server->kernel->Emplace<TestAnchor>(*server->kernel, "a");
    auto& b = server->kernel->Emplace<TestAnchor>(*server->kernel, "b");
    ParticipantSet enable;
    enable.local.eth_type = kTestType;
    EXPECT_TRUE(server->eth->OpenEnable(a, enable).ok());
    EXPECT_TRUE(server->eth->OpenEnable(a, enable).ok());  // same hlp: idempotent
    EXPECT_EQ(server->eth->OpenEnable(b, enable).code(), StatusCode::kAlreadyExists);
    EXPECT_TRUE(server->eth->OpenDisable(a, enable).ok());
    EXPECT_TRUE(server->eth->OpenEnable(b, enable).ok());
  });
}

// --- ARP ---------------------------------------------------------------------

struct ArpFixture : ::testing::Test {
  void SetUp() override {
    // Cold caches: build the topology without WarmArp.
    net = std::make_unique<Internet>();
    const int seg = net->AddSegment();
    client = &net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
    server = &net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  }

  std::unique_ptr<Internet> net;
  HostStack* client = nullptr;
  HostStack* server = nullptr;
};

TEST_F(ArpFixture, ResolveGoesToWireAndCaches) {
  Result<EthAddr> got = ErrStatus(StatusCode::kError);
  RunIn(*client->kernel, [&] {
    client->arp->Resolve(IpAddr(10, 0, 1, 2), [&](Result<EthAddr> r) { got = r; });
  });
  net->RunAll();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, server->eth->addr());
  EXPECT_EQ(client->arp->requests_sent(), 1u);
  EXPECT_EQ(server->arp->replies_sent(), 1u);
  // Cached now: no more traffic.
  EXPECT_TRUE(client->arp->Lookup(IpAddr(10, 0, 1, 2)).has_value());
  // The exchange also taught the server the client's binding (gratuitous
  // learning from the request).
  EXPECT_TRUE(server->arp->Lookup(IpAddr(10, 0, 1, 1)).has_value());
}

TEST_F(ArpFixture, ResolveUnknownHostFailsAfterRetries) {
  Result<EthAddr> got = ErrStatus(StatusCode::kOk);
  RunIn(*client->kernel, [&] {
    client->arp->Resolve(IpAddr(10, 0, 1, 99), [&](Result<EthAddr> r) { got = r; });
  });
  net->RunAll();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnreachable);
  EXPECT_EQ(client->arp->requests_sent(), ArpProtocol::kDefaultRetries);
}

TEST_F(ArpFixture, LostRequestIsRetried) {
  // Drop the first broadcast; the retry succeeds.
  net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDrop : LinkFault::kDeliver;
  });
  Result<EthAddr> got = ErrStatus(StatusCode::kError);
  RunIn(*client->kernel, [&] {
    client->arp->Resolve(IpAddr(10, 0, 1, 2), [&](Result<EthAddr> r) { got = r; });
  });
  net->RunAll();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(client->arp->requests_sent(), 2u);
}

TEST_F(ArpFixture, ConcurrentResolvesShareOneRequest) {
  int done = 0;
  RunIn(*client->kernel, [&] {
    for (int i = 0; i < 5; ++i) {
      client->arp->Resolve(IpAddr(10, 0, 1, 2), [&](Result<EthAddr> r) {
        EXPECT_TRUE(r.ok());
        ++done;
      });
    }
  });
  net->RunAll();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(client->arp->requests_sent(), 1u);
}

TEST_F(ArpFixture, ControlInterface) {
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.ip = IpAddr(10, 0, 1, 2);
    EXPECT_EQ(client->arp->Control(ControlOp::kResolve, args).code(), StatusCode::kNotFound);
    EXPECT_TRUE(client->arp->Control(ControlOp::kResolveTest, args).ok());
    EXPECT_EQ(args.u64, 0u);
    args.eth = EthAddr::FromIndex(77);
    EXPECT_TRUE(client->arp->Control(ControlOp::kAddResolveEntry, args).ok());
    EXPECT_TRUE(client->arp->Control(ControlOp::kResolve, args).ok());
    EXPECT_EQ(args.eth, EthAddr::FromIndex(77));
    EXPECT_TRUE(client->arp->Control(ControlOp::kResolveTest, args).ok());
    EXPECT_EQ(args.u64, 1u);
  });
}

TEST_F(ArpFixture, ReverseLookup) {
  RunIn(*client->kernel, [&] {
    ControlArgs args;
    args.ip = IpAddr(10, 0, 1, 2);
    args.eth = EthAddr::FromIndex(55);
    (void)client->arp->Control(ControlOp::kAddResolveEntry, args);
  });
  EXPECT_EQ(client->arp->ReverseLookup(EthAddr::FromIndex(55)), IpAddr(10, 0, 1, 2));
  EXPECT_FALSE(client->arp->ReverseLookup(EthAddr::FromIndex(56)).has_value());
}

}  // namespace
}  // namespace xk
