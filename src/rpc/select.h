// SELECT: the selection layer of layered Sprite RPC (paper, Section 3.2).
//
// Maps Sprite commands (procedure ids) onto procedure addresses (server
// processes), and implements THE CACHING REQUIRED FOR GOOD RPC PERFORMANCE:
// Sprite has a fixed, predefined number of channels, so SELECT keeps a pool
// of pre-opened CHANNEL sessions per server host, picks a free one per call,
// and blocks the caller (on a semaphore) when all are busy.
//
// SELECT exists as a separate protocol -- rather than being folded into
// CHANNEL -- so that different addressing schemes can be substituted: see
// SelectFwdProtocol (forwarding) and RdpProtocol (reliable datagrams) for the
// alternatives the paper mentions.
//
// Header (paper appendix, SELECT_HDR): type(1) command(2) status(1) -- 4
// bytes, the cheapest layer (0.11 ms on a Sun 3/75, the per-layer floor).
//
// Sessions are slab-pooled and idle-tracked (session classes are defined
// before the protocol so its pools see complete types). A client session with
// calls outstanding -- including one queued on the channel semaphore or mid-
// forward -- refuses eviction. The pre-opened channels themselves are owned
// here, never evicted by CHANNEL (their extra reference vetoes it).

#ifndef XK_SRC_RPC_SELECT_H_
#define XK_SRC_RPC_SELECT_H_

#include <deque>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/sim/slab_pool.h"
#include "src/tools/semaphore.h"

namespace xk {

class SelectProtocol;

// Client-side session: one per (server, command).
class SelectSession : public Session {
 public:
  SelectSession(SelectProtocol& owner, Protocol* hlp, IpAddr server, uint16_t command);

  uint16_t command() const { return command_; }
  IpAddr server() const { return server_; }

  // The most recent request pushed through this session (kept so a
  // forwarding selector can re-issue the call toward a new host) and the
  // forward-hop budget of the current call.
  const Message& last_request() const { return last_request_; }
  int forward_hops() const { return forward_hops_; }
  void set_forward_hops(int n) { forward_hops_ = n; }

  // Completes a call: releases the channel and delivers `reply` (or an error)
  // to the high-level protocol.
  Status CompleteCall(Session* channel, uint8_t status, Message& reply);

  // Settles one outstanding call without a reply (selector-layer error
  // paths). Keeps the eviction pin (CanEvict) balanced with DoPush.
  void CallFinished();

  int calls_outstanding() const { return outstanding_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool CanEvict() const override { return outstanding_ == 0; }

 private:
  friend class SelectProtocol;  // eviction needs the demux key

  SelectProtocol& sel_;
  IpAddr server_;
  uint16_t command_;
  Message last_request_;
  int forward_hops_ = 0;
  int outstanding_ = 0;  // calls issued and not yet settled
};

// Server-side session: wraps the channel a request arrived on; the server
// anchor pushes its reply into it.
class SelectServerSession : public Session {
 public:
  SelectServerSession(SelectProtocol& owner, Protocol* hlp, SessionRef channel);

  uint16_t last_command() const { return last_command_; }
  void set_last_command(uint16_t c) { last_command_ = c; }

 protected:
  Status DoPush(Message& msg) override;  // send the reply
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return channel_.get(); }

 private:
  friend class SelectProtocol;  // eviction needs the channel key

  SelectProtocol& sel_;
  SessionRef channel_;
  uint16_t last_command_ = 0;
};

class SelectProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 4;
  static constexpr uint16_t kAnyCommand = 0xFFFF;  // wildcard enable
  static constexpr int kNumChannels = 8;           // Sprite's fixed channel count

  // Wire types.
  static constexpr uint8_t kTypeCall = 1;
  static constexpr uint8_t kTypeReturn = 2;
  static constexpr uint8_t kTypeForward = 3;  // used by SELECT_FWD

  // Wire status codes.
  static constexpr uint8_t kStatusOk = 0;
  static constexpr uint8_t kStatusNoSuchCommand = 1;

  // `lower` is CHANNEL (or anything with its request/reply session
  // semantics). `rel_proto` is the protocol number this selector uses in the
  // CHANNEL header (SELECT_FWD uses a different one).
  SelectProtocol(Kernel& kernel, Protocol* lower, std::string name = "select",
                 RelProtoNum rel_proto = kRelProtoSelect);

  void SessionError(Session& lls, Status error) override;
  void SessionCallError(Session& lls, Status error, const Message* request) override;

  struct Stats {
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t served = 0;
    uint64_t no_such_command = 0;
    uint64_t blocked_on_channel = 0;  // calls that waited for a free channel
    uint64_t expired_in_queue = 0;    // shed while waiting for a free channel
  };
  const Stats& stats() const { return stats_; }

  // Live client + server SelectSessions (slab-pooled).
  size_t live_sessions() const { return client_pool_.live() + server_pool_.live(); }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("calls", stats_.calls);
    emit("returns", stats_.returns);
    emit("served", stats_.served);
    emit("no_such_command", stats_.no_such_command);
    emit("blocked_on_channel", stats_.blocked_on_channel);
    emit("expired_in_queue", stats_.expired_in_queue);
  }

  void ExportGauges(const CounterEmit& emit) const override {
    emit("live_sessions", live_sessions());
  }

  int free_channels(IpAddr server) const;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool EvictSession(Session& s) override;

  friend class SelectSession;
  friend class SelectServerSession;

  // The per-server-host pool of pre-opened channels.
  struct ChannelPool {
    std::vector<SessionRef> channels;       // CHANNEL sessions, index = channel id
    std::vector<bool> busy;                 // parallel to channels
    std::unique_ptr<XSemaphore> available;  // counts free channels
  };

  Result<ChannelPool*> PoolFor(IpAddr server);
  void ReleaseChannel(ChannelPool& pool, size_t index);
  Protocol* HlpForCommand(uint16_t command);

  using Key = std::tuple<IpAddr, uint16_t>;  // (server host, command)

  RelProtoNum rel_proto_;
  SlabPool<SelectSession> client_pool_;
  SlabPool<SelectServerSession> server_pool_;
  DemuxMap<Key> active_;                      // client sessions
  DemuxMap<uint16_t, Protocol*> passive_;     // command -> server hlp
  std::map<IpAddr, ChannelPool> pools_;
  // Which client session is using each busy channel session (for replies).
  DemuxMap<Session*, SessionRef> calls_;
  // Server-side sessions, one per delivering channel session.
  DemuxMap<Session*, SessionRef> server_sessions_;
  Stats stats_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SELECT_H_
