file(REMOVE_RECURSE
  "CMakeFiles/xk_rpc.dir/rpc/channel.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/channel.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/fragment.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/fragment.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/rdp.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/rdp.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/select.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/select.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/select_fwd.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/select_fwd.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/sprite_rpc.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/sprite_rpc.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/sun/auth.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/sun/auth.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/sun/request_reply.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/sun/request_reply.cc.o.d"
  "CMakeFiles/xk_rpc.dir/rpc/sun/sun_select.cc.o"
  "CMakeFiles/xk_rpc.dir/rpc/sun/sun_select.cc.o.d"
  "libxk_rpc.a"
  "libxk_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xk_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
