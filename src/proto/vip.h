// VIP: Virtual IP (paper, Section 3.1).
//
// A virtual protocol is a HEADER-LESS protocol that accepts messages from
// high-level protocols and dynamically multiplexes them onto lower protocols
// that provide approximately the same semantics. VIP provides IP semantics
// (unreliable delivery to hosts named by IP addresses) but routes each
// message to ETH or to IP:
//
//  * at OPEN time it asks the invoking protocol how large its messages can be
//    (control kGetMaxSendSize) and asks ARP whether the destination resolves
//    (resolvable => the host is on the local Ethernet). It then opens an ETH
//    session, an IP session, or both;
//  * at PUSH time the only overhead is a single message-length test.
//
// Because VIP adds no header, the peer's VIP must be able to recognize
// VIP-routed Ethernet frames: VIP maps the 8-bit IP protocol number onto a
// reserved range of 256 Ethernet types (kEthTypeVipBase + proto).
//
// Sessions are slab-pooled and idle-tracked (the session class precedes the
// protocol so the pool member sees a complete type). An upper session holding
// a VIP session as its lower keeps it referenced, so VIP sessions age out
// bottom-up only after their users have been evicted.

#ifndef XK_SRC_PROTO_VIP_H_
#define XK_SRC_PROTO_VIP_H_

#include <tuple>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/proto/arp.h"
#include "src/sim/slab_pool.h"

namespace xk {

// The VIP protocol-number -> Ethernet-type mapping ("VIP maps IP protocol
// numbers onto an unused range of 256 ethernet types").
constexpr EthType VipEthTypeFor(IpProtoNum proto) {
  return static_cast<EthType>(kEthTypeVipBase + proto);
}

class VipProtocol;

class VipSession final : public Session {
 public:
  VipSession(VipProtocol& owner, Protocol* hlp, std::optional<IpAddr> peer, IpProtoNum proto,
             SessionRef eth_sess, SessionRef ip_sess, size_t eth_mtu);

  bool has_eth_path() const { return eth_sess_ != nullptr; }
  bool has_ip_path() const { return ip_sess_ != nullptr; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override {
    return ip_sess_ != nullptr ? ip_sess_.get() : eth_sess_.get();
  }

 private:
  friend class VipProtocol;
  VipProtocol& vip_;
  std::optional<IpAddr> peer_;
  IpProtoNum proto_;
  SessionRef eth_sess_;  // null when the peer is off-link
  SessionRef ip_sess_;   // null when every message fits on the local wire
  size_t eth_mtu_;
};

class VipProtocol final : public Protocol {
 public:
  VipProtocol(Kernel& kernel, Protocol* eth, Protocol* ip, ArpProtocol* arp,
              std::string name = "vip");

  void OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) override;

  Status OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) override;

  // Live VipSessions (slab-pooled).
  size_t live_sessions() const { return pool_.live(); }

  void ExportGauges(const CounterEmit& emit) const override {
    emit("live_sessions", pool_.live());
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool EvictSession(Session& s) override;

 private:
  friend class VipSession;
  using Key = std::tuple<IpAddr, IpProtoNum>;

  Protocol* eth() const { return lower(0); }
  Protocol* ip() const { return lower(1); }

  // Builds the session once locality (local_eth set => on-link) is known.
  Result<SessionRef> FinishOpen(Protocol& hlp, IpAddr peer, IpProtoNum proto,
                                std::optional<EthAddr> local_eth, uint64_t max_send);

  size_t EthMtu();

  ArpProtocol* arp_;
  SlabPool<VipSession> pool_;
  DemuxMap<Key> active_;
  DemuxMap<IpProtoNum, Protocol*> passive_;
  DemuxMap<Session*, SessionRef> by_lls_;  // lower session -> VIP session
};

}  // namespace xk

#endif  // XK_SRC_PROTO_VIP_H_
