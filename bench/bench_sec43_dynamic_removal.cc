// Section 4.3: Dynamically Removing Layers.
//
// The Figure 3(b) configuration moves FRAGMENT below the virtual protocol:
// SELECT-CHANNEL-VIP_SIZE-{VIP_ADDR, FRAGMENT-VIP_ADDR}. VIP_SIZE bypasses
// FRAGMENT for single-packet messages; VIP_ADDR is involved only at open
// time.
//
// Shape claims to reproduce:
//   * SELECT-CHANNEL-VIP_size null-call latency ~1.78 ms: bypassing FRAGMENT
//     saves its ~0.21 ms and re-adds only VIP_SIZE's ~0.06 ms, recovering the
//     monolithic stack's latency (1.79 ms);
//   * large messages still flow through FRAGMENT (same throughput).

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  PrintTableHeader("Section 4.3: Dynamically Removing Layers");

  ConfigResult m_vip =
      RpcBench::Measure("M_RPC-VIP (reference)",
                        [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  PrintRow(m_vip, 1.79, 860, 1.04);

  ConfigResult l_vip = RpcBench::Measure(
      "SELECT-CHANNEL-FRAGMENT-VIP", [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); });
  PrintRow(l_vip, 1.93, 839, 1.03);

  ConfigResult dynamic = RpcBench::Measure(
      "SELECT-CHANNEL-VIPsize", [](HostStack& h) { return BuildLRpcDynamic(h); });
  PrintRow(dynamic, 1.78, 0, 0);

  std::printf("\nDerived quantities:\n");
  std::printf("  Saved by bypassing FRAGMENT:  %+.2f ms   [paper: -0.15 ms "
              "(-0.21 FRAGMENT + 0.06 VIPsize)]\n",
              dynamic.latency_ms - l_vip.latency_ms);
  std::printf("  Gap to monolithic:            %+.2f ms   [paper: -0.01 ms]\n",
              dynamic.latency_ms - m_vip.latency_ms);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
