// Psync: many-to-many IPC preserving context (simplified from Peterson,
// Buchholz & Schlichting; see DESIGN.md for the substitution note).
//
// Why it is here: the paper chose FRAGMENT's unreliable-but-persistent
// semantics specifically "so that it could also be used by Psync" -- Psync
// wants bulk transfer of its up-to-16KB messages but NOT at-most-once RPC
// semantics. This module demonstrates that reuse: Psync composes with the
// same FRAGMENT protocol the RPC stack uses, unchanged.
//
// Model: a conversation among N hosts. Each message carries the ids of the
// sender's current context LEAVES (messages not yet followed by another);
// receivers maintain the context graph and can ask whether one message
// precedes another in conversation order.
//
// Header: conv_id(4) msg_id(4) sender(4) num_deps(1) deps[4 each].

#ifndef XK_SRC_PSYNC_PSYNC_H_
#define XK_SRC_PSYNC_PSYNC_H_

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"

namespace xk {

// A message's identity within a conversation.
using PsyncMsgId = uint32_t;

struct PsyncDelivery {
  IpAddr sender;
  PsyncMsgId id = 0;
  std::vector<PsyncMsgId> context;  // ids this message directly follows
  Message payload;
};

class PsyncConversation;

class PsyncProtocol : public Protocol {
 public:
  static constexpr size_t kMaxDeps = 16;

  // `lower` is FRAGMENT (or any host-addressed bulk delivery protocol).
  PsyncProtocol(Kernel& kernel, Protocol* lower, std::string name = "psync");

  // Joins conversation `conv_id` with `others`. All participants must join
  // (the conversation is defined by configuration, as in Psync).
  Result<PsyncConversation*> Join(uint32_t conv_id, std::vector<IpAddr> others);

  struct Stats {
    uint64_t sent = 0;
    uint64_t copies_sent = 0;  // sent x (N-1) participants
    uint64_t delivered = 0;
    uint64_t duplicates_dropped = 0;
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("sent", stats_.sent);
    emit("copies_sent", stats_.copies_sent);
    emit("delivered", stats_.delivered);
    emit("duplicates_dropped", stats_.duplicates_dropped);
  }

 protected:
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  friend class PsyncConversation;
  Result<SessionRef> SessionTo(IpAddr host);

  std::map<uint32_t, std::unique_ptr<PsyncConversation>> conversations_;
  std::map<IpAddr, SessionRef> peers_;  // cached FRAGMENT sessions
  Stats stats_;
};

// One host's view of one conversation: the context graph plus send state.
class PsyncConversation {
 public:
  using ReceiveHandler = std::function<void(const PsyncDelivery&)>;

  // Sends `payload` to every other participant, stamped with the current
  // context leaves. Returns the new message's id.
  Result<PsyncMsgId> Send(const Message& payload);

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }

  // Context-graph queries.
  bool Knows(PsyncMsgId id) const { return nodes_.count(id) != 0; }
  // True if `a` precedes `b` in conversation order (a is reachable from b
  // through context edges).
  bool Precedes(PsyncMsgId a, PsyncMsgId b) const;
  std::vector<PsyncMsgId> Leaves() const { return {leaves_.begin(), leaves_.end()}; }
  size_t GraphSize() const { return nodes_.size(); }

 private:
  friend class PsyncProtocol;
  struct Node {
    IpAddr sender;
    std::vector<PsyncMsgId> deps;
  };

  PsyncConversation(PsyncProtocol& proto, uint32_t conv_id, std::vector<IpAddr> others);
  void Insert(PsyncMsgId id, IpAddr sender, const std::vector<PsyncMsgId>& deps);
  void HandleIncoming(PsyncMsgId id, IpAddr sender, std::vector<PsyncMsgId> deps,
                      Message& payload);

  PsyncProtocol& proto_;
  uint32_t conv_id_;
  std::vector<IpAddr> others_;
  uint32_t next_local_ = 1;
  std::map<PsyncMsgId, Node> nodes_;
  std::set<PsyncMsgId> leaves_;
  ReceiveHandler on_receive_;
};

}  // namespace xk

#endif  // XK_SRC_PSYNC_PSYNC_H_
