// A Kernel is one simulated host: an instance of the x-kernel (or of a
// baseline environment) holding a protocol graph, a CPU, timers, and the
// accounting helpers protocols use to charge their work.
//
// Kernels for one experiment share an EventQueue (the simulation's clock) and
// are attached to EthernetSegments through their Ethernet driver protocols.

#ifndef XK_SRC_CORE_KERNEL_H_
#define XK_SRC_CORE_KERNEL_H_

#include <cstdarg>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/message.h"
#include "src/core/protocol.h"
#include "src/core/types.h"
#include "src/sim/cost_model.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"

namespace xk {

class TraceSink;

class Kernel {
 public:
  Kernel(std::string host_name, EventQueue& events, HostEnv env, IpAddr ip, EthAddr eth);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- identity ---------------------------------------------------------------
  const std::string& host_name() const { return host_name_; }
  IpAddr ip_addr() const { return ip_; }
  EthAddr eth_addr() const { return eth_; }
  HostEnv env() const { return env_; }

  // Monotonic per-boot identifier (CHANNEL and Sprite RPC use it to detect
  // reboots).
  uint32_t boot_id() const { return boot_id_; }

  // Simulates a host crash: cancels every pending task and timer on this
  // kernel, then destroys the whole protocol graph (top-first, like the
  // destructor) so all in-memory protocol state -- sessions, sequence
  // numbers, duplicate filters -- is lost exactly as a real crash loses it.
  // The kernel object itself survives; Internet::RestartHost rebuilds the
  // graph and brings the host back up.
  void Crash();

  // Brings a crashed host back up under a new boot id. The caller (normally
  // Internet::RestartHost) rebuilds the protocol graph afterwards.
  void Restart();

  // False between Crash() and Restart().
  bool is_up() const { return up_; }

  // --- simulation access ------------------------------------------------------
  EventQueue& events() { return events_; }
  Cpu& cpu() { return cpu_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }
  SimTime now() const { return cpu_.in_task() ? cpu_.now() : events_.now(); }

  // --- tasks ------------------------------------------------------------------
  // Runs `fn` as a shepherd task dispatched at event time `at` (begins at
  // max(at, cpu busy_until)). Templated so the callable is invoked directly,
  // with no std::function wrapper on the frame-arrival hot path.
  template <typename F>
  void RunTask(SimTime at, F&& fn) {
    cpu_.BeginTask(at);
    fn();
    cpu_.EndTask();
  }

  // Schedules `fn` to run as a task after `delay` of simulated time. The
  // closure travels to the event queue as-is (one EventFn, usually inline in
  // the slab slot) rather than through a std::function indirection.
  template <typename F>
  EventHandle ScheduleTask(SimTime delay, F fn) {
    ++tasks_pending_;
    EventHandle h = events_.ScheduleIn(delay, [this, fn = std::move(fn)]() mutable {
      if (tasks_pending_ > 0) {
        --tasks_pending_;
      }
      RunTask(events_.now(), fn);
    });
    TrackPending(h);
    return h;
  }

  // --- timers -----------------------------------------------------------------
  // Sets a timeout that fires `delay` from now as a task on this kernel.
  // Charges timer_set. Must be called from within a task.
  template <typename F>
  EventHandle SetTimer(SimTime delay, F fn) {
    cpu_.Charge(costs_.timer_set);
    const SimTime fire_at = cpu_.now() + delay;
    ++tasks_pending_;
    EventHandle h = events_.ScheduleAt(fire_at, [this, fn = std::move(fn)]() mutable {
      if (tasks_pending_ > 0) {
        --tasks_pending_;
      }
      RunTask(events_.now(), fn);
    });
    TrackPending(h);
    return h;
  }

  // Cancels a pending timer, charging timer_cancel if it was still pending.
  void CancelTimer(EventHandle& handle);

  // Tasks and timers scheduled on this kernel that have not yet started (the
  // host's ready/pending queue depth). Host-side gauge for the stat sampler;
  // maintained by ScheduleTask/SetTimer/CancelTimer, never charged.
  uint64_t tasks_pending() const { return tasks_pending_; }

  // --- protocol graph ---------------------------------------------------------
  // Takes ownership; protocols are destroyed in reverse insertion order
  // (top-most last-added protocols die before the substrates they use).
  Protocol& Add(std::unique_ptr<Protocol> proto);

  template <typename T, typename... Args>
  T& Emplace(Args&&... args) {
    auto p = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *p;
    Add(std::move(p));
    return ref;
  }

  // Looks up a protocol by name; null if absent.
  Protocol* Find(const std::string& name) const;

  // Visits every protocol in insertion (configuration) order.
  void ForEachProtocol(const std::function<void(const Protocol&)>& fn) const {
    for (const auto& p : protocols_) {
      fn(*p);
    }
  }

  // --- cost accounting helpers (see CostModel) --------------------------------
  void Charge(SimTime cost) { cpu_.Charge(cost); }
  void ChargeProcCall() { cpu_.Charge(costs_.proc_call); }
  // One layer crossing (Push or Demux): procedure call + environment extras.
  // Inline: these run on every message at every layer.
  void ChargeLayerCross() {
    cpu_.Charge(costs_.proc_call + costs_.layer_cross_extra + costs_.buffer_alloc);
  }
  void ChargeHdrStore(size_t bytes) {
    SimTime cost = costs_.hdr_store_fixed +
                   static_cast<SimTime>(static_cast<double>(bytes) *
                                        static_cast<double>(costs_.hdr_store_per_byte));
    if (Message::default_alloc_policy() == HeaderAllocPolicy::kPerLayerAlloc) {
      cost += costs_.hdr_alloc_extra;
    }
    cpu_.Charge(cost);
  }
  void ChargeHdrLoad(size_t bytes) {
    SimTime cost = costs_.hdr_load_fixed +
                   static_cast<SimTime>(static_cast<double>(bytes) *
                                        static_cast<double>(costs_.hdr_load_per_byte));
    if (Message::default_alloc_policy() == HeaderAllocPolicy::kPerLayerAlloc) {
      cost += costs_.hdr_free_extra;
    }
    cpu_.Charge(cost);
  }
  void ChargeMapResolve() { cpu_.Charge(costs_.map_resolve); }
  void ChargeMapBind() { cpu_.Charge(costs_.map_bind); }
  // Removing a binding probes and unlinks just like installing one, so it
  // costs the same map_bind price (the paper's map tool has no cheaper
  // removal path).
  void ChargeMapUnbind() { cpu_.Charge(costs_.map_bind); }
  void ChargeSemOp() { cpu_.Charge(costs_.sem_op); }
  void ChargeProcessSwitch() { cpu_.Charge(costs_.process_switch); }
  void ChargeUserKernelCross() { cpu_.Charge(costs_.user_kernel_cross); }
  void ChargeCopy(size_t bytes) {
    cpu_.Charge(static_cast<SimTime>(static_cast<double>(bytes) *
                                     static_cast<double>(costs_.copy_per_byte)));
  }
  void ChargeDevCopy(size_t bytes) {
    cpu_.Charge(static_cast<SimTime>(static_cast<double>(bytes) *
                                     static_cast<double>(costs_.dev_copy_per_byte)));
  }
  void ChargeDevStart() { cpu_.Charge(costs_.dev_start); }
  void ChargeIntr() { cpu_.Charge(costs_.intr_overhead); }
  void ChargeChecksum(size_t bytes) {
    cpu_.Charge(costs_.checksum_fixed +
                static_cast<SimTime>(static_cast<double>(bytes) *
                                     static_cast<double>(costs_.checksum_per_byte)));
  }
  void ChargeMsgSlice() { cpu_.Charge(costs_.msg_slice); }
  void ChargeMsgJoin() { cpu_.Charge(costs_.msg_join); }
  void ChargeSessionCreate() { cpu_.Charge(costs_.session_create); }
  void ChargeSessionDestroy() { cpu_.Charge(costs_.session_destroy); }

  // --- tracing ----------------------------------------------------------------
  // The structured sink the entry-point spans and Tracef record into; null
  // (the default) disables recording. Attaching a sink never perturbs the
  // simulation -- recording charges zero simulated cost.
  TraceSink* trace_sink() const { return trace_; }
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

  // Legacy printf-style logging, now routed through the trace subsystem: a
  // Tracef always records a structured log event when a sink is attached, and
  // still prints to stderr when `level` <= trace_level (the pre-sink
  // behavior, preserved as the human-readable fallback).
  int trace_level() const { return trace_level_; }
  void set_trace_level(int level) { trace_level_ = level; }
  void Tracef(int level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));

 private:
  std::string host_name_;
  EventQueue& events_;
  HostEnv env_;
  CostModel costs_;
  Cpu cpu_;
  IpAddr ip_;
  EthAddr eth_;
  uint32_t boot_id_;
  uint64_t tasks_pending_ = 0;
  bool up_ = true;
  int trace_level_ = 0;
  TraceSink* trace_ = nullptr;

  // Every pending task/timer handle, so Crash() can cancel the lot (their
  // closures capture protocol objects the crash destroys). Fired and
  // cancelled handles are compacted lazily.
  std::vector<EventHandle> pending_handles_;
  void TrackPending(EventHandle handle);

  std::vector<std::unique_ptr<Protocol>> protocols_;
  std::map<std::string, Protocol*> by_name_;
};

}  // namespace xk

#endif  // XK_SRC_CORE_KERNEL_H_
