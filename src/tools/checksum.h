// Internet checksum (RFC 1071), used by IP and optionally by UDP.

#ifndef XK_SRC_TOOLS_CHECKSUM_H_
#define XK_SRC_TOOLS_CHECKSUM_H_

#include <cstdint>
#include <span>

namespace xk {

// Accumulates 16-bit one's-complement sums across multiple byte ranges
// (header, pseudo-header, payload) before finalizing.
class InternetChecksum {
 public:
  // Adds `bytes` to the sum. An odd final byte is padded with zero, so only
  // the last Add of a datagram may have odd length.
  void Add(std::span<const uint8_t> bytes) {
    size_t i = 0;
    if (have_odd_) {
      // Pair the carried odd byte with the first new byte.
      if (!bytes.empty()) {
        sum_ += static_cast<uint32_t>(odd_byte_) << 8 | bytes[0];
        have_odd_ = false;
        i = 1;
      }
    }
    for (; i + 1 < bytes.size(); i += 2) {
      sum_ += static_cast<uint32_t>(bytes[i]) << 8 | bytes[i + 1];
    }
    if (i < bytes.size()) {
      odd_byte_ = bytes[i];
      have_odd_ = true;
    }
  }

  void AddU16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
    Add(b);
  }

  void AddU32(uint32_t v) {
    AddU16(static_cast<uint16_t>(v >> 16));
    AddU16(static_cast<uint16_t>(v));
  }

  // One's-complement of the folded sum. 0xFFFF is returned instead of 0 so a
  // transmitted checksum is never zero (UDP convention).
  uint16_t Finalize() const {
    uint32_t s = sum_;
    if (have_odd_) {
      s += static_cast<uint32_t>(odd_byte_) << 8;
    }
    while (s >> 16) {
      s = (s & 0xFFFF) + (s >> 16);
    }
    uint16_t result = static_cast<uint16_t>(~s);
    return result == 0 ? 0xFFFF : result;
  }

 private:
  uint32_t sum_ = 0;
  uint8_t odd_byte_ = 0;
  bool have_odd_ = false;
};

// One-shot convenience.
inline uint16_t ComputeChecksum(std::span<const uint8_t> bytes) {
  InternetChecksum c;
  c.Add(bytes);
  return c.Finalize();
}

}  // namespace xk

#endif  // XK_SRC_TOOLS_CHECKSUM_H_
