#include "src/proto/ip.h"

#include <algorithm>

#include "src/core/wire.h"
#include "src/tools/checksum.h"
#include "src/trace/trace.h"

namespace xk {

namespace {

constexpr uint16_t kFlagMoreFragments = 0x2000;
constexpr uint16_t kOffsetMask = 0x1FFF;
constexpr size_t kDefaultMtu = 1500;

// Serializes `h` (with correct checksum) into `out[20]`.
void BuildHeader(const IpHeader& h, uint8_t* out) {
  WireWriter w(std::span<uint8_t>(out, IpProtocol::kHeaderSize));
  w.PutU8(0x45);  // version 4, ihl 5
  w.PutU8(h.tos);
  w.PutU16(h.total_len);
  w.PutU16(h.id);
  uint16_t ff = static_cast<uint16_t>((h.frag_offset_bytes / 8) & kOffsetMask);
  if (h.more_fragments) {
    ff |= kFlagMoreFragments;
  }
  w.PutU16(ff);
  w.PutU8(h.ttl);
  w.PutU8(h.proto);
  w.PutU16(0);  // checksum placeholder
  w.PutIpAddr(h.src);
  w.PutIpAddr(h.dst);
  const uint16_t cks = ComputeChecksum(std::span<const uint8_t>(out, IpProtocol::kHeaderSize));
  out[10] = static_cast<uint8_t>(cks >> 8);
  out[11] = static_cast<uint8_t>(cks);
}

// Parses `raw[20]`; returns false if the version or checksum is bad.
bool ParseHeader(const uint8_t* raw, IpHeader* h) {
  WireReader r(std::span<const uint8_t>(raw, IpProtocol::kHeaderSize));
  const uint8_t ver_ihl = r.GetU8();
  if (ver_ihl != 0x45) {
    return false;
  }
  h->tos = r.GetU8();
  h->total_len = r.GetU16();
  h->id = r.GetU16();
  const uint16_t ff = r.GetU16();
  h->more_fragments = (ff & kFlagMoreFragments) != 0;
  h->frag_offset_bytes = static_cast<uint16_t>((ff & kOffsetMask) * 8);
  h->ttl = r.GetU8();
  h->proto = r.GetU8();
  r.Skip(2);  // checksum (verified over the raw bytes below)
  h->src = r.GetIpAddr();
  h->dst = r.GetIpAddr();
  // Verify: the checksum over the header including its checksum field must
  // fold to 0 (ComputeChecksum returns 0xFFFF for a valid header under the
  // never-zero rule).
  return ComputeChecksum(std::span<const uint8_t>(raw, IpProtocol::kHeaderSize)) == 0xFFFF;
}

}  // namespace

// ---------------------------------------------------------------------------
// IpProtocol
// ---------------------------------------------------------------------------

IpProtocol::IpProtocol(Kernel& kernel, std::vector<IpInterface> interfaces, std::string name)
    : Protocol(kernel, std::move(name), {}),
      interfaces_(std::move(interfaces)),
      active_(*this),
      passive_(*this) {
  // Receive IP datagrams on every interface.
  for (IpInterface& ifc : interfaces_) {
    ParticipantSet enable;
    enable.local.eth_type = kEthTypeIp;
    (void)ifc.eth->OpenEnable(*this, enable);
  }
}

bool IpProtocol::IsLocalAddr(IpAddr a) const {
  return std::any_of(interfaces_.begin(), interfaces_.end(),
                     [a](const IpInterface& i) { return i.addr == a; });
}

void IpProtocol::AddRoute(IpAddr subnet, IpAddr gateway) { routes_[subnet] = gateway; }

const IpInterface* IpProtocol::Route(IpAddr dst, IpAddr* next_hop) const {
  // Directly connected subnet?
  for (const IpInterface& ifc : interfaces_) {
    if (ifc.addr.SameSubnet(dst, ifc.mask_bits)) {
      *next_hop = dst;
      return &ifc;
    }
  }
  // Specific route, then default gateway. The gateway must be directly
  // connected through some interface.
  std::optional<IpAddr> gw;
  for (const auto& [subnet, gateway] : routes_) {
    if (subnet.SameSubnet(dst, 24)) {
      gw = gateway;
      break;
    }
  }
  if (!gw) {
    gw = default_gateway_;
  }
  if (!gw) {
    return nullptr;
  }
  for (const IpInterface& ifc : interfaces_) {
    if (ifc.addr.SameSubnet(*gw, ifc.mask_bits)) {
      *next_hop = *gw;
      return &ifc;
    }
  }
  return nullptr;
}

Result<SessionRef> IpProtocol::OpenLower(const IpInterface& ifc, IpAddr next_hop) {
  auto eth_addr = ifc.arp->Lookup(next_hop);
  if (!eth_addr) {
    return ErrStatus(StatusCode::kUnreachable);
  }
  ParticipantSet lparts;
  lparts.local.eth_type = kEthTypeIp;
  lparts.peer.eth = *eth_addr;
  return ifc.eth->Open(*this, lparts);
}

Result<SessionRef> IpProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpAddr dst = *parts.peer.host;
  const IpProtoNum proto = *parts.local.ip_proto;
  const Key key{dst, proto};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  IpAddr next_hop;
  const IpInterface* ifc = Route(dst, &next_hop);
  if (ifc == nullptr) {
    return ErrStatus(StatusCode::kUnreachable);
  }
  Result<SessionRef> lower = OpenLower(*ifc, next_hop);
  if (!lower.ok()) {
    return lower.status();
  }
  ControlArgs args;
  size_t mtu = kDefaultMtu;
  if ((*lower)->Control(ControlOp::kGetMaxPacket, args).ok()) {
    mtu = args.u64;
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<IpSession>(*this, &hlp, dst, proto, *lower, mtu);
  active_.Bind(key, sess);
  return SessionRef(sess);
}

void IpProtocol::OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value()) {
    done(ErrStatus(StatusCode::kInvalidArgument));
    return;
  }
  IpAddr next_hop;
  const IpInterface* ifc = Route(*parts.peer.host, &next_hop);
  if (ifc == nullptr) {
    done(ErrStatus(StatusCode::kUnreachable));
    return;
  }
  // Resolve the next hop first (may go to the wire), then complete the open
  // through the normal synchronous path, whose ARP lookup now hits.
  ifc->arp->Resolve(next_hop, [this, &hlp, parts, done](Result<EthAddr> r) {
    if (!r.ok()) {
      done(r.status());
      return;
    }
    done(Open(hlp, parts));
  });
}

Status IpProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpProtoNum proto = *parts.local.ip_proto;
  Protocol* existing = nullptr;
  if (!passive_.TryBind(proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(proto, &hlp);  // idempotent re-enable recharges, as before
  }
  return OkStatus();
}

Status IpProtocol::Forward(const IpHeader& hdr, Message& msg) {
  TraceSink* ts = kernel().trace_sink();
  if (hdr.ttl <= 1) {
    ++stats_.ttl_drops;
    if (ts != nullptr) {
      ts->RecordEvent(kernel(), TraceOp::kTtlDrop, name(), kernel().now(), 0, &msg, nullptr,
                      hdr.ttl, StatusCode::kUnreachable);
    }
    return ErrStatus(StatusCode::kUnreachable);
  }
  IpAddr next_hop;
  const IpInterface* ifc = Route(hdr.dst, &next_hop);
  if (ifc == nullptr) {
    ++stats_.no_route_drops;
    if (ts != nullptr) {
      ts->RecordEvent(kernel(), TraceOp::kNoRoute, name(), kernel().now(), 0, &msg, nullptr,
                      0, StatusCode::kUnreachable);
    }
    return ErrStatus(StatusCode::kUnreachable);
  }
  Result<SessionRef> lower = OpenLower(*ifc, next_hop);
  if (!lower.ok()) {
    ++stats_.no_route_drops;
    if (ts != nullptr) {
      ts->RecordEvent(kernel(), TraceOp::kNoRoute, name(), kernel().now(), 0, &msg, nullptr,
                      0, lower.status().code());
    }
    return lower.status();
  }
  IpHeader out = hdr;
  out.ttl = static_cast<uint8_t>(hdr.ttl - 1);
  uint8_t raw[kHeaderSize];
  BuildHeader(out, raw);
  kernel().ChargeHdrStore(kHeaderSize);
  kernel().ChargeChecksum(kHeaderSize);
  msg.PushHeader(raw);
  ++stats_.forwards;
  if (ts != nullptr) {
    // One event per router hop, on the same message id the endpoints see, so
    // an observer can count the hop chain of any call's path.
    ts->RecordEvent(kernel(), TraceOp::kForward, name(), kernel().now(), 0, &msg, nullptr,
                    out.ttl);
  }
  return (*lower)->Push(msg);
}

Result<Message> IpProtocol::Reassemble(const IpHeader& hdr, Message& msg) {
  const ReasmKey key{hdr.src, hdr.dst, hdr.proto, hdr.id};
  Reasm& r = reasm_[key];
  if (r.frags.empty()) {
    r.timer = kernel().SetTimer(kReassemblyTimeout, [this, key]() {
      if (reasm_.erase(key) > 0) {
        ++stats_.reassembly_timeouts;
      }
    });
  }
  kernel().ChargeMsgJoin();
  r.frags[hdr.frag_offset_bytes] = msg;
  if (!hdr.more_fragments) {
    r.total_len = hdr.frag_offset_bytes + msg.length();
  }
  if (r.total_len == SIZE_MAX) {
    return ErrStatus(StatusCode::kNotFound);  // incomplete: last fragment missing
  }
  // Contiguity check from offset 0 to total_len.
  size_t covered = 0;
  for (const auto& [off, frag] : r.frags) {
    if (off > covered) {
      return ErrStatus(StatusCode::kNotFound);  // hole
    }
    covered = std::max(covered, off + frag.length());
  }
  if (covered < r.total_len) {
    return ErrStatus(StatusCode::kNotFound);
  }
  // Complete: join in order (overlaps trimmed).
  Message whole;
  size_t pos = 0;
  for (auto& [off, frag] : r.frags) {
    if (off + frag.length() <= pos) {
      continue;  // fully duplicate
    }
    Message piece = off < pos ? frag.Slice(pos - off, frag.length() - (pos - off)) : frag;
    whole.Append(piece);
    pos = off + frag.length();
    if (pos >= r.total_len) {
      break;
    }
  }
  whole.Truncate(r.total_len);
  kernel().CancelTimer(r.timer);
  reasm_.erase(key);
  ++stats_.reassemblies_completed;
  return whole;
}

Status IpProtocol::DeliverToSession(const IpHeader& hdr, Session* lls, Message& msg) {
  SessionRef sess = active_.Resolve(Key{hdr.src, hdr.proto});
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(hdr.proto);
    if (hlp == nullptr) {
      kernel().Tracef(2, "ip: no binding for proto %u", hdr.proto);
      return ErrStatus(StatusCode::kNotFound);
    }
    // open_done: prefer the routed path back to the source; fall back to the
    // reverse path (the lower session the datagram arrived on).
    SessionRef lower;
    size_t mtu = kDefaultMtu;
    IpAddr next_hop;
    if (const IpInterface* ifc = Route(hdr.src, &next_hop)) {
      if (Result<SessionRef> r = OpenLower(*ifc, next_hop); r.ok()) {
        lower = *r;
      }
    }
    if (lower == nullptr && lls != nullptr) {
      lower = lls->Ref();
    }
    if (lower == nullptr) {
      return ErrStatus(StatusCode::kUnreachable);
    }
    ControlArgs args;
    if (lower->Control(ControlOp::kGetMaxPacket, args).ok()) {
      mtu = args.u64;
    }
    kernel().ChargeSessionCreate();
    auto created = std::make_shared<IpSession>(*this, hlp, hdr.src, hdr.proto, lower, mtu);
    active_.Bind(Key{hdr.src, hdr.proto}, created);
    ParticipantSet parts;
    parts.local.host = hdr.dst;
    parts.local.ip_proto = hdr.proto;
    parts.peer.host = hdr.src;
    Status s = hlp->OpenDoneUp(*this, created, parts);
    if (!s.ok()) {
      active_.Unbind(Key{hdr.src, hdr.proto});
      return s;
    }
    sess = created;
  }
  ++stats_.datagrams_delivered;
  return sess->Pop(msg, lls);
}

Status IpProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  kernel().ChargeChecksum(kHeaderSize);
  IpHeader hdr;
  if (!ParseHeader(raw, &hdr)) {
    ++stats_.checksum_failures;
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (hdr.total_len < kHeaderSize || hdr.total_len - kHeaderSize > msg.length()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  // Strip Ethernet minimum-frame padding.
  msg.Truncate(hdr.total_len - kHeaderSize);

  if (!IsLocalAddr(hdr.dst)) {
    if (forwarding_) {
      return Forward(hdr, msg);
    }
    return OkStatus();  // not ours, not a router: drop silently
  }

  if (hdr.more_fragments || hdr.frag_offset_bytes != 0) {
    Result<Message> whole = Reassemble(hdr, msg);
    if (!whole.ok()) {
      return OkStatus();  // incomplete; wait for more fragments
    }
    return DeliverToSession(hdr, lls, *whole);
  }
  return DeliverToSession(hdr, lls, msg);
}

Status IpProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      args.u64 = kMaxDatagram - kHeaderSize;
      return OkStatus();
    case ControlOp::kGetOptPacket: {
      // Largest datagram that does not fragment on the first interface.
      ControlArgs sub;
      size_t mtu = kDefaultMtu;
      if (!interfaces_.empty() && interfaces_[0].eth->Control(ControlOp::kGetMaxPacket, sub).ok()) {
        mtu = sub.u64;
      }
      args.u64 = mtu - kHeaderSize;
      return OkStatus();
    }
    case ControlOp::kGetMyHost:
      args.ip = interfaces_.empty() ? IpAddr() : interfaces_[0].addr;
      return OkStatus();
    case ControlOp::kAddRoute:
      AddRoute(args.ip, args.ip2);
      return OkStatus();
    case ControlOp::kSetDefaultGateway:
      SetDefaultGateway(args.ip);
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// IpSession
// ---------------------------------------------------------------------------

IpSession::IpSession(IpProtocol& owner, Protocol* hlp, IpAddr peer, IpProtoNum proto,
                     SessionRef lower, size_t lower_mtu)
    : Session(owner, hlp),
      ip_(owner),
      peer_(peer),
      proto_(proto),
      lower_(std::move(lower)),
      lower_mtu_(lower_mtu) {}

Status IpSession::SendOne(Message piece, uint16_t id, uint16_t offset_bytes, bool more) {
  kernel().ChargeMapResolve();  // route table consulted per datagram
  IpHeader h;
  h.total_len = static_cast<uint16_t>(IpProtocol::kHeaderSize + piece.length());
  h.id = id;
  h.more_fragments = more;
  h.frag_offset_bytes = offset_bytes;
  h.proto = proto_;
  h.src = kernel().ip_addr();
  h.dst = peer_;
  uint8_t raw[IpProtocol::kHeaderSize];
  BuildHeader(h, raw);
  kernel().ChargeHdrStore(IpProtocol::kHeaderSize);
  kernel().ChargeChecksum(IpProtocol::kHeaderSize);
  piece.PushHeader(raw);
  ++ip_.stats_.fragments_sent;
  return lower_->Push(piece);
}

Status IpSession::DoPush(Message& msg) {
  if (msg.length() > IpProtocol::kMaxDatagram - IpProtocol::kHeaderSize) {
    return ErrStatus(StatusCode::kTooBig);
  }
  ++ip_.stats_.datagrams_sent;
  const uint16_t id = ip_.NextId();
  const size_t max_payload = lower_mtu_ - IpProtocol::kHeaderSize;
  if (msg.length() <= max_payload) {
    return SendOne(msg, id, 0, false);
  }
  // Fragment: all pieces except the last carry a multiple of 8 bytes.
  const size_t piece_len = max_payload & ~size_t{7};
  size_t offset = 0;
  Status last = OkStatus();
  while (offset < msg.length()) {
    const size_t n = std::min(piece_len, msg.length() - offset);
    kernel().ChargeMsgSlice();
    Message piece = msg.Slice(offset, n);
    const bool more = offset + n < msg.length();
    last = SendOne(std::move(piece), id, static_cast<uint16_t>(offset), more);
    if (!last.ok()) {
      return last;
    }
    offset += n;
  }
  return last;
}

Status IpSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status IpSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      args.u64 = IpProtocol::kMaxDatagram - IpProtocol::kHeaderSize;
      return OkStatus();
    case ControlOp::kGetOptPacket:
      args.u64 = lower_mtu_ - IpProtocol::kHeaderSize;
      return OkStatus();
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
