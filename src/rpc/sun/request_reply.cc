#include "src/rpc/sun/request_reply.h"

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr uint8_t kTypeCall = 1;
constexpr uint8_t kTypeReply = 2;
}  // namespace

// ---------------------------------------------------------------------------
// RequestReplyProtocol
// ---------------------------------------------------------------------------

RequestReplyProtocol::RequestReplyProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : Protocol(kernel, std::move(name), {lower}), active_(*this), passive_(*this) {
  ParticipantSet enable;
  enable.local.ip_proto = kIpProtoSunRpc;
  enable.local.rel_proto = kRelProtoRequestReply;  // when FRAGMENT is below
  (void)this->lower(0)->OpenEnable(*this, enable);
}

Result<SessionRef> RequestReplyProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Key key{*parts.peer.host, *parts.local.rel_proto};
  if (SessionRef cached = active_.Resolve(key)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  ParticipantSet lparts;
  lparts.peer.host = *parts.peer.host;
  lparts.local.ip_proto = kIpProtoSunRpc;
  lparts.local.rel_proto = kRelProtoRequestReply;
  Result<SessionRef> lower_sess = lower(0)->Open(*this, lparts);
  if (!lower_sess.ok()) {
    return lower_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<RequestReplySession>(*this, &hlp, *parts.peer.host,
                                                    *parts.local.rel_proto, *lower_sess);
  active_.Bind(key, sess);
  return SessionRef(sess);
}

Status RequestReplyProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  Protocol* existing = nullptr;
  if (!passive_.TryBind(*parts.local.rel_proto, &hlp, &existing)) {
    if (existing != &hlp) {
      return ErrStatus(StatusCode::kAlreadyExists);
    }
    passive_.Bind(*parts.local.rel_proto, &hlp);  // re-enable recharges
  }
  return OkStatus();
}

Status RequestReplyProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PopHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kHeaderSize);
  WireReader r(raw);
  const uint8_t type = r.GetU8();
  const uint32_t xid = r.GetU32();
  const RelProtoNum proto = r.GetU32();

  IpAddr peer;
  if (lls != nullptr) {
    ControlArgs args;
    if (lls->Control(ControlOp::kGetPeerHost, args).ok()) {
      peer = args.ip;
    }
  }
  const Key key{peer, proto};
  SessionRef sess = active_.Resolve(key);
  if (sess == nullptr) {
    Protocol* hlp = passive_.Resolve(proto);
    if (hlp == nullptr || lls == nullptr) {
      return ErrStatus(StatusCode::kNotFound);
    }
    kernel().ChargeSessionCreate();
    auto created = std::make_shared<RequestReplySession>(*this, hlp, peer, proto, lls->Ref());
    active_.Bind(key, created);
    ParticipantSet up;
    up.local.rel_proto = proto;
    up.peer.host = peer;
    Status s = hlp->OpenDoneUp(*this, created, up);
    if (!s.ok()) {
      active_.Unbind(key);
      return s;
    }
    sess = created;
  }
  return static_cast<RequestReplySession*>(sess.get())->HandlePacket(type, xid, msg, lls);
}

Status RequestReplyProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetRetransmits:
      args.u64 = stats_.retransmissions;
      return OkStatus();
    case ControlOp::kGetTimeouts:
      args.u64 = stats_.timeouts;
      return OkStatus();
    case ControlOp::kSetTimeoutBase:
      timeout_ = static_cast<SimTime>(args.u64);
      return OkStatus();
    case ControlOp::kSetRetransmitLimit:
      retry_limit_ = static_cast<int>(args.u64);
      return OkStatus();
    case ControlOp::kGetMaxSendSize:
      return lower(0)->Control(ControlOp::kGetMaxPacket, args);
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// RequestReplySession
// ---------------------------------------------------------------------------

RequestReplySession::RequestReplySession(RequestReplyProtocol& owner, Protocol* hlp, IpAddr peer,
                                         RelProtoNum proto, SessionRef lower)
    : Session(owner, hlp), rr_(owner), peer_(peer), proto_(proto), lower_(std::move(lower)) {}

void RequestReplySession::Send(uint8_t type, uint32_t xid, const Message& payload) {
  uint8_t raw[RequestReplyProtocol::kHeaderSize];
  WireWriter w(raw);
  w.PutU8(type);
  w.PutU32(xid);
  w.PutU32(proto_);
  Message pkt = payload;
  kernel().ChargeHdrStore(RequestReplyProtocol::kHeaderSize);
  pkt.PushHeader(raw);
  (void)lower_->Push(pkt);
}

void RequestReplySession::ArmTimer(uint32_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) {
    return;
  }
  it->second.timer = kernel().SetTimer(rr_.timeout_, [this, xid]() { OnTimeout(xid); });
}

void RequestReplySession::OnTimeout(uint32_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) {
    return;
  }
  PendingCall& call = it->second;
  ++rr_.stats_.timeouts;
  // Deadline check before the retry check: retransmitting a call nobody is
  // waiting for anymore only adds load. Sun RPC has no deadline wire format,
  // so this is purely the client giving up (the server still runs zero-or-
  // more semantics on whatever already reached it).
  if (call.deadline != 0 && kernel().now() >= call.deadline) {
    ++rr_.stats_.deadline_giveups;
    ++rr_.stats_.call_failures;
    pending_.erase(it);
    if (hlp() != nullptr) {
      hlp()->SessionError(*this, ErrStatus(StatusCode::kDeadlineExceeded));
    }
    return;
  }
  if (call.retries >= rr_.retry_limit_) {
    ++rr_.stats_.call_failures;
    pending_.erase(it);
    if (hlp() != nullptr) {
      hlp()->SessionError(*this, ErrStatus(StatusCode::kTimeout));
    }
    return;
  }
  ++call.retries;
  ++rr_.stats_.retransmissions;
  // Zero-or-more semantics: the retransmission may be executed AGAIN by the
  // server; nothing here (or there) prevents that.
  Send(kTypeCall, xid, call.request);
  ArmTimer(xid);
}

Status RequestReplySession::DoPush(Message& msg) {
  if (executing_xid_.has_value()) {
    // Reply to the request currently being executed.
    const uint32_t xid = *executing_xid_;
    executing_xid_.reset();
    Send(kTypeReply, xid, msg);
    return OkStatus();
  }
  const uint32_t xid = next_xid_++;
  ++rr_.stats_.calls_sent;
  PendingCall call;
  call.request = msg;
  call.deadline = msg.deadline();
  pending_.emplace(xid, std::move(call));
  Send(kTypeCall, xid, msg);
  ArmTimer(xid);
  kernel().ChargeSemOp();
  return OkStatus();
}

Status RequestReplySession::HandlePacket(uint8_t type, uint32_t xid, Message& payload,
                                         Session* lls) {
  if (lls != nullptr) {
    lower_ = lls->Ref();
  }
  if (type == kTypeCall) {
    // Zero-or-more: every arriving call is executed, duplicates included.
    ++rr_.stats_.requests_executed;
    executing_xid_ = xid;
    kernel().ChargeSemOp();
    kernel().ChargeProcessSwitch();
    return DeliverUp(payload);
  }
  if (type == kTypeReply) {
    auto it = pending_.find(xid);
    if (it == pending_.end()) {
      ++rr_.stats_.stale_replies;  // duplicate reply from a re-execution
      return OkStatus();
    }
    kernel().CancelTimer(it->second.timer);
    pending_.erase(it);
    ++rr_.stats_.replies_received;
    kernel().ChargeSemOp();
    kernel().ChargeProcessSwitch();
    return DeliverUp(payload);
  }
  return ErrStatus(StatusCode::kInvalidArgument);
}

Status RequestReplySession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status RequestReplySession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = peer_;
      return OkStatus();
    case ControlOp::kGetMyProto:
    case ControlOp::kGetPeerProto:
      args.u64 = proto_;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
