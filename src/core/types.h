// Core value types shared by every x-kernel module: simulated time, network
// addresses, status/result plumbing, and small identifier types.
//
// Everything in this file is a plain value type with no dependency on the
// simulator or the protocol graph, so any module may include it.

#ifndef XK_SRC_CORE_TYPES_H_
#define XK_SRC_CORE_TYPES_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>

namespace xk {

// ---------------------------------------------------------------------------
// Simulated time.
// ---------------------------------------------------------------------------

// Simulated time and durations, in nanoseconds. Signed so that subtracting two
// times is natural; the simulator never schedules negative times.
using SimTime = int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

// Convenience constructors so cost tables read in the units the paper uses.
constexpr SimTime Nsec(int64_t n) { return n; }
constexpr SimTime Usec(int64_t u) { return u * 1000; }
constexpr SimTime Msec(int64_t m) { return m * 1000 * 1000; }
constexpr SimTime Sec(int64_t s) { return s * 1000 * 1000 * 1000; }

// Fractional microseconds, used by cost tables ("0.4 us per header byte").
constexpr SimTime UsecF(double u) { return static_cast<SimTime>(u * 1000.0); }

constexpr double ToUsec(SimTime t) { return static_cast<double>(t) / 1000.0; }
constexpr double ToMsec(SimTime t) { return static_cast<double>(t) / 1.0e6; }

// ---------------------------------------------------------------------------
// Status / Result.
// ---------------------------------------------------------------------------

// Error space for the uniform protocol interface. Deliberately small: the
// x-kernel's operations return XK_SUCCESS/XK_FAILURE; we keep slightly more
// detail for diagnosability but protocols only branch on Ok().
enum class StatusCode : uint8_t {
  kOk = 0,
  kError,           // generic failure
  kNotFound,        // no such session/binding/route
  kAlreadyExists,   // duplicate enable/bind
  kInvalidArgument, // malformed participants, bad control buffer
  kUnreachable,     // no route / unresolvable address
  kTimeout,         // retries exhausted
  kTooBig,          // message exceeds what the protocol can carry
  kRejected,        // peer refused (e.g., authentication, boot-id mismatch)
  kUnsupported,     // operation or control opcode not implemented
  kBusy,            // server admission control fast-rejected the request
  kDeadlineExceeded,   // call deadline passed (client gave up or server shed)
  kResourceExhausted,  // client-side retry budget drained
};

// Lightweight status value; converts to bool for "is ok" checks.
class [[nodiscard]] Status {
 public:
  constexpr Status() : code_(StatusCode::kOk) {}
  constexpr explicit Status(StatusCode code) : code_(code) {}

  static constexpr Status Ok() { return Status(); }
  static constexpr Status Error(StatusCode code) { return Status(code); }

  constexpr bool ok() const { return code_ == StatusCode::kOk; }
  constexpr StatusCode code() const { return code_; }

  friend constexpr bool operator==(Status a, Status b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
};

constexpr Status OkStatus() { return Status::Ok(); }
constexpr Status ErrStatus(StatusCode c) { return Status::Error(c); }

const char* StatusCodeName(StatusCode code);

// Minimal expected-like result carrier (the toolchain is C++20, which lacks
// std::expected). Holds either a value or an error status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), status_() {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::nullopt), status_(status) {}  // NOLINT
  Result(StatusCode code) : value_(std::nullopt), status_(code) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  Status status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

// ---------------------------------------------------------------------------
// Network addresses.
// ---------------------------------------------------------------------------

// 32-bit IPv4-style host address, stored in host byte order. The paper's
// Sprite implementation identifies hosts with IP addresses; so do we.
class IpAddr {
 public:
  constexpr IpAddr() : addr_(0) {}
  constexpr explicit IpAddr(uint32_t addr) : addr_(addr) {}
  constexpr IpAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : addr_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) | uint32_t{d}) {}

  constexpr uint32_t value() const { return addr_; }
  constexpr bool IsZero() const { return addr_ == 0; }

  // True if `other` is on the same subnet under `mask_bits` (default /24,
  // which is how the simulated topologies are numbered).
  constexpr bool SameSubnet(IpAddr other, int mask_bits = 24) const {
    if (mask_bits <= 0) {
      return true;
    }
    const uint32_t mask = mask_bits >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - mask_bits)) - 1u);
    return (addr_ & mask) == (other.addr_ & mask);
  }

  std::string ToString() const;

  friend constexpr bool operator==(IpAddr a, IpAddr b) { return a.addr_ == b.addr_; }
  friend constexpr bool operator!=(IpAddr a, IpAddr b) { return a.addr_ != b.addr_; }
  friend constexpr bool operator<(IpAddr a, IpAddr b) { return a.addr_ < b.addr_; }

 private:
  uint32_t addr_;
};

// 48-bit Ethernet address.
class EthAddr {
 public:
  constexpr EthAddr() : bytes_{} {}
  constexpr explicit EthAddr(std::array<uint8_t, 6> bytes) : bytes_(bytes) {}

  // Deterministic unicast address derived from a small host index.
  static constexpr EthAddr FromIndex(uint32_t index) {
    return EthAddr({0x08, 0x00, 0x20, static_cast<uint8_t>(index >> 16),
                    static_cast<uint8_t>(index >> 8), static_cast<uint8_t>(index)});
  }

  static constexpr EthAddr Broadcast() {
    return EthAddr({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  constexpr const std::array<uint8_t, 6>& bytes() const { return bytes_; }
  constexpr bool IsBroadcast() const {
    for (uint8_t b : bytes_) {
      if (b != 0xFF) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const;

  friend constexpr bool operator==(const EthAddr& a, const EthAddr& b) {
    return a.bytes_ == b.bytes_;
  }
  friend constexpr bool operator!=(const EthAddr& a, const EthAddr& b) { return !(a == b); }
  friend constexpr bool operator<(const EthAddr& a, const EthAddr& b) {
    return a.bytes_ < b.bytes_;
  }

 private:
  std::array<uint8_t, 6> bytes_;
};

// ---------------------------------------------------------------------------
// Protocol identifiers.
// ---------------------------------------------------------------------------

// Ethernet type field (16 bits).
using EthType = uint16_t;

constexpr EthType kEthTypeIp = 0x0800;
constexpr EthType kEthTypeArp = 0x0806;
// Base of the reserved range VIP uses to map 8-bit IP protocol numbers onto
// 16-bit Ethernet types (paper Section 3.1).
constexpr EthType kEthTypeVipBase = 0x3A00;

// IP protocol numbers (8 bits). The RPC protocols claim numbers from the
// experimental range.
using IpProtoNum = uint8_t;

constexpr IpProtoNum kIpProtoIcmp = 1;
constexpr IpProtoNum kIpProtoUdp = 17;
constexpr IpProtoNum kIpProtoRawTest = 249;     // raw echo test anchors
constexpr IpProtoNum kIpProtoSpriteRpc = 250;   // monolithic Sprite RPC
constexpr IpProtoNum kIpProtoFragment = 251;    // FRAGMENT bulk-transfer layer
constexpr IpProtoNum kIpProtoChannel = 252;     // CHANNEL when run without FRAGMENT
constexpr IpProtoNum kIpProtoPsync = 253;
constexpr IpProtoNum kIpProtoSunRpc = 254;      // REQUEST_REPLY when run bare

// "Relative protocol numbers" demultiplexed by FRAGMENT and CHANNEL (their
// headers carry a 32-bit protocol_num field; see the paper's appendix).
using RelProtoNum = uint32_t;

constexpr RelProtoNum kRelProtoChannel = 1;    // CHANNEL above FRAGMENT
constexpr RelProtoNum kRelProtoPsync = 2;      // Psync above FRAGMENT
constexpr RelProtoNum kRelProtoSelect = 3;     // SELECT above CHANNEL
constexpr RelProtoNum kRelProtoRdp = 4;        // reliable datagram above CHANNEL
constexpr RelProtoNum kRelProtoSelectFwd = 5;  // forwarding selector above CHANNEL
constexpr RelProtoNum kRelProtoSunSelect = 6;  // SUN_SELECT above REQUEST_REPLY
constexpr RelProtoNum kRelProtoAuthNone = 7;   // AUTH_NONE above REQUEST_REPLY
constexpr RelProtoNum kRelProtoAuthCred = 8;   // AUTH_CRED above REQUEST_REPLY
constexpr RelProtoNum kRelProtoRequestReply = 9;  // REQUEST_REPLY above FRAGMENT
constexpr RelProtoNum kRelProtoRawTest = 10;   // test anchors above FRAGMENT/CHANNEL

}  // namespace xk

#endif  // XK_SRC_CORE_TYPES_H_
