// Link-level packet capture: a pcap-style ring buffer attached to an
// EthernetSegment. Every (frame, receiver) delivery decision is recorded with
// simulated timestamps, the fault-injection verdict, and the leading frame
// bytes, so tests and tools can see exactly what the fault hooks did to the
// wire. Like the trace sink, capturing charges zero simulated cost.

#ifndef XK_SRC_TRACE_PCAP_H_
#define XK_SRC_TRACE_PCAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/types.h"

namespace xk {

// What the link decided to do with one (frame, receiver) delivery.
enum class CaptureVerdict : uint8_t {
  kDelivered,
  kDropped,     // random drop rate or a fault hook kDrop
  kDuplicated,  // delivered twice
  kCorrupted,   // delivered with flipped bits
};

const char* CaptureVerdictName(CaptureVerdict v);

class PacketCapture {
 public:
  // Ring of `capacity` records; each keeps the first `snaplen` frame bytes.
  explicit PacketCapture(size_t capacity = 65536, size_t snaplen = 128);

  PacketCapture(const PacketCapture&) = delete;
  PacketCapture& operator=(const PacketCapture&) = delete;

  void Record(int segment, int receiver_id, SimTime tx_start, SimTime arrival,
              const std::vector<uint8_t>& frame, CaptureVerdict verdict);

  // JSON-lines, oldest record first; `seq` is the capture-order sequence
  // number (monotonic even after the ring wraps).
  std::string ToJsonl() const;
  bool WriteFile(const std::string& path) const;

  void Clear();

  // Records currently held (<= capacity).
  size_t size() const { return ring_.size(); }
  // Records ever captured, including ones the ring has since evicted.
  uint64_t total_captured() const { return next_seq_; }
  uint64_t verdict_count(CaptureVerdict v) const {
    return verdict_counts_[static_cast<size_t>(v)];
  }

  // Thread-default instance picked up by Internet, like TraceSink's.
  static PacketCapture* thread_default();
  static void set_thread_default(PacketCapture* capture);

 private:
  struct Rec {
    uint64_t seq = 0;
    int segment = 0;
    int receiver = 0;
    SimTime tx_start = 0;
    SimTime arrival = 0;
    uint64_t len = 0;  // full frame length
    CaptureVerdict verdict = CaptureVerdict::kDelivered;
    std::vector<uint8_t> bytes;  // first snaplen bytes
  };

  size_t capacity_;
  size_t snaplen_;
  std::vector<Rec> ring_;
  size_t head_ = 0;  // index of the oldest record once the ring is full
  uint64_t next_seq_ = 0;
  uint64_t verdict_counts_[4] = {0, 0, 0, 0};
};

}  // namespace xk

#endif  // XK_SRC_TRACE_PCAP_H_
