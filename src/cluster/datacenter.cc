#include "src/cluster/datacenter.h"

#include <algorithm>
#include <memory>

#include "src/app/stacks.h"
#include "src/proto/topology.h"

namespace xk {

namespace {

constexpr uint16_t kEchoCommand = 1;

// The virtual service address: on no segment, owned by every client's VPOOL.
const IpAddr kVip(10, 99, 0, 1);

struct ClientNode {
  HostStack* hs = nullptr;
  RpcStack stack;
  VpoolProtocol* vpool = nullptr;
  ClusterClient* client = nullptr;
  std::unique_ptr<OpenLoopGen> gen;
};

}  // namespace

DatacenterResult MeasureDatacenter(const DatacenterSpec& spec) {
  Internet net(HostEnv::kXKernel, spec.seed, spec.engine_threads);

  // Campus-scale propagation: long enough that the conservative engine's
  // per-LP-pair windows carry real work, short relative to call latency.
  WireModel wire;
  wire.propagation = Usec(200);

  const int server_seg = net.AddSegment(wire);
  std::vector<int> client_segs;
  for (int i = 0; i < spec.client_segments; ++i) {
    client_segs.push_back(net.AddSegment(wire));
  }

  // The fan-in point: one router attached to every segment.
  std::vector<std::pair<int, IpAddr>> attachments;
  attachments.emplace_back(server_seg, IpAddr(10, 0, 0, 254));
  for (int i = 0; i < spec.client_segments; ++i) {
    attachments.emplace_back(client_segs[static_cast<size_t>(i)],
                             IpAddr(10, 0, static_cast<uint8_t>(i + 1), 254));
  }
  net.AddRouter("core", attachments);

  std::vector<IpAddr> replica_ips;
  std::vector<std::string> replica_names;
  for (int r = 0; r < spec.replicas; ++r) {
    const IpAddr ip(10, 0, 0, static_cast<uint8_t>(r + 1));
    const std::string name = "s" + std::to_string(r);
    net.AddHost(name, server_seg, ip);
    net.SetDefaultGateway(name, IpAddr(10, 0, 0, 254));
    replica_ips.push_back(ip);
    replica_names.push_back(name);
  }

  std::vector<ClientNode> clients;
  for (int i = 0; i < spec.client_segments; ++i) {
    for (int j = 0; j < spec.clients_per_segment; ++j) {
      const std::string name = "c" + std::to_string(i) + "_" + std::to_string(j);
      ClientNode node;
      node.hs = &net.AddHost(name, client_segs[static_cast<size_t>(i)],
                             IpAddr(10, 0, static_cast<uint8_t>(i + 1),
                                    static_cast<uint8_t>(j + 1)));
      net.SetDefaultGateway(name, IpAddr(10, 0, static_cast<uint8_t>(i + 1), 254));
      clients.push_back(std::move(node));
    }
  }
  net.WarmArp();

  // Arms idle-session eviction on every idle-capable layer of one stack.
  // Runs inside a configuration task (Control charges the calling kernel).
  auto arm_idle = [&spec](const RpcStack& stack) {
    if (spec.idle_timeout == 0) {
      return;
    }
    ControlArgs args;
    args.u64 = static_cast<uint64_t>(spec.idle_timeout);
    if (stack.select != nullptr) {
      (void)stack.select->Control(ControlOp::kSetIdleTimeout, args);
    }
    if (stack.channel != nullptr) {
      (void)stack.channel->Control(ControlOp::kSetIdleTimeout, args);
    }
    if (stack.vip != nullptr) {
      (void)stack.vip->Control(ControlOp::kSetIdleTimeout, args);
    }
  };

  // Replica stacks: the standard layered L_RPC serving the oracle's echo.
  // The restart hook rebuilds the same configuration on the fresh substrate
  // (it runs inside the host's reboot task, so no RunTask wrapper there).
  AmoOracle oracle;
  for (const std::string& name : replica_names) {
    HostStack& h = net.host(name);
    RpcStack stack = BuildLRpc(h, Delivery::kVip);
    h.kernel->RunTask(net.events().now(), [&] {
      auto& server = h.kernel->Emplace<RpcServer>(*h.kernel, stack.top);
      server.set_service_delay(spec.service_delay);
      server.set_admission_limit(spec.max_inflight, spec.max_backlog);
      (void)server.Export(kEchoCommand, oracle.WrapEcho(h.kernel));
      arm_idle(stack);
    });
    net.set_restart_hook(name, [&oracle, &spec, &arm_idle](HostStack& fresh) {
      RpcStack rebuilt = BuildLRpc(fresh, Delivery::kVip);
      auto& server = fresh.kernel->Emplace<RpcServer>(*fresh.kernel, rebuilt.top);
      server.set_service_delay(spec.service_delay);
      server.set_admission_limit(spec.max_inflight, spec.max_backlog);
      (void)server.Export(kEchoCommand, oracle.WrapEcho(fresh.kernel));
      arm_idle(rebuilt);
    });
  }

  // Client stacks: L_RPC, VPOOL spreading over the pool, ClusterClient on top.
  for (ClientNode& node : clients) {
    node.stack = BuildLRpc(*node.hs, Delivery::kVip);
    Kernel* k = node.hs->kernel;
    k->RunTask(net.events().now(), [&] {
      node.vpool = &k->Emplace<VpoolProtocol>(*k, node.stack.top);
      node.vpool->BindService(kVip, replica_ips, spec.policy, spec.weights);
      node.vpool->set_readmit_after(spec.readmit_after);
      node.vpool->set_concurrency_cap(spec.concurrency_cap);
      node.vpool->set_breaker(spec.breaker_min_volume, spec.breaker_trip_ppm);
      node.client = &k->Emplace<ClusterClient>(*k, node.vpool);
      if (spec.hedge_delay > 0) {
        node.client->set_hedge_delay(spec.hedge_delay);
        node.client->set_hedge_notify([&oracle](uint64_t id) { oracle.RecordHedged(id); });
      }
      if (spec.retry_ratio_ppm > 0 && node.stack.channel != nullptr) {
        ControlArgs budget;
        budget.u64 = (static_cast<uint64_t>(spec.retry_burst) << 32) |
                     static_cast<uint64_t>(spec.retry_ratio_ppm);
        (void)node.stack.channel->Control(ControlOp::kSetRetryBudget, budget);
      }
      if (spec.idle_timeout != 0) {
        ControlArgs args;
        args.u64 = static_cast<uint64_t>(spec.idle_timeout);
        (void)node.vpool->Control(ControlOp::kSetIdleTimeout, args);
      }
      arm_idle(node.stack);
    });
  }

  // Failover-timeline window: explicit in the spec, else the plan's first
  // crash clause.
  SimTime crash_at = spec.crash_at;
  SimTime restart_at = spec.restart_at;
  if (crash_at == 0) {
    for (const FaultClause& c : spec.faults.clauses) {
      if (c.kind == FaultClause::Kind::kCrash) {
        crash_at = c.at;
        restart_at = c.restart_at;
        break;
      }
    }
  }

  // One open-loop generator per client, each with a private Rng stream and a
  // disjoint id range.
  uint64_t idx = 0;
  for (ClientNode& node : clients) {
    ArrivalSpec arrivals = spec.arrivals;
    arrivals.seed = spec.arrivals.seed * 1000003 + idx;
    node.gen = std::make_unique<OpenLoopGen>(*node.hs->kernel, *node.client, oracle, arrivals,
                                             kVip, kEchoCommand, spec.payload_bytes,
                                             (idx + 1) << 32);
    if (restart_at > crash_at) {
      node.gen->set_phase_window(crash_at, restart_at);
    }
    node.gen->set_deadline(spec.deadline);
    node.gen->Start();
    ++idx;
  }

  FaultEngine faults(net, spec.faults);
  net.RunAll();

  DatacenterResult out;
  for (const ClientNode& node : clients) {
    out.issued += node.gen->issued();
    out.completed += node.gen->completed();
    out.failed += node.gen->failed();
    out.rtt.Merge(node.gen->rtt());
    out.last_done_at = std::max(out.last_done_at, node.gen->last_done_at());
    out.sum_done_at += node.gen->last_done_at();
    for (int p = 0; p < 3; ++p) {
      const OpenLoopGen::PhaseStats& ph = node.gen->phase(p);
      out.phases[p].issued += ph.issued;
      out.phases[p].completed += ph.completed;
      out.phases[p].failed += ph.failed;
    }
    out.down_marks += node.vpool->down_marks();
    out.readmits += node.vpool->readmits();
    out.rerouted_opens += node.vpool->rerouted_opens();
    out.all_down_failures += node.vpool->all_down_failures();
    out.session_flushes += node.vpool->session_flushes();
    out.late_replies += node.client->late_replies();
    out.shed += node.gen->shed();
    out.rejected += node.gen->rejected();
    out.budget_exhausted += node.gen->budget_exhausted();
    out.hedges += node.client->hedges();
    out.hedge_cancels += node.client->hedge_cancels();
    out.capped_rejects += node.vpool->capped_rejects();
    out.breaker_trips += node.vpool->breaker_trips();
    out.idle_evictions += node.vpool->idle_evictions();
    if (node.stack.select != nullptr) {
      out.idle_evictions += node.stack.select->idle_evictions();
    }
    if (node.stack.channel != nullptr) {
      out.idle_evictions += node.stack.channel->idle_evictions();
    }
    if (node.stack.vip != nullptr) {
      out.idle_evictions += node.stack.vip->idle_evictions();
    }
  }
  out.success_ppm = out.issued > 0 ? out.completed * 1000000u / out.issued : 0;
  for (int p = 0; p < 3; ++p) {
    out.phases[p].success_ppm =
        out.phases[p].issued > 0 ? out.phases[p].completed * 1000000u / out.phases[p].issued : 0;
  }
  const double horizon_sec = static_cast<double>(spec.arrivals.horizon) / 1e9;
  out.offered_cps = horizon_sec > 0 ? static_cast<double>(out.issued) / horizon_sec : 0;
  out.goodput_cps = out.last_done_at > 0 ? static_cast<double>(out.completed) * 1e9 /
                                               static_cast<double>(out.last_done_at)
                                         : 0;

  out.replica_calls.assign(static_cast<size_t>(spec.replicas), 0);
  for (const ClientNode& node : clients) {
    for (int r = 0; r < spec.replicas; ++r) {
      out.replica_calls[static_cast<size_t>(r)] += node.vpool->replica_calls(r);
    }
  }
  uint64_t total_calls = 0;
  uint64_t min_calls = UINT64_MAX;
  uint64_t max_calls = 0;
  for (uint64_t c : out.replica_calls) {
    total_calls += c;
    min_calls = std::min(min_calls, c);
    max_calls = std::max(max_calls, c);
  }
  if (total_calls > 0 && spec.replicas > 0) {
    const uint64_t mean = total_calls / static_cast<uint64_t>(spec.replicas);
    out.share_spread_ppm = mean > 0 ? (max_calls - min_calls) * 1000000u / mean : 0;
  }

  out.oracle = oracle.Finish();
  out.events_fired = net.events_fired();

  {
    DatacenterResult::RouterStat rs;
    rs.name = "core";
    const IpProtocol::Stats& ip = net.host("core").ip->stats();
    rs.forwards = ip.forwards;
    rs.ttl_drops = ip.ttl_drops;
    rs.no_route_drops = ip.no_route_drops;
    out.routers.push_back(std::move(rs));
  }

  const SimTime elapsed_sim = net.events().now();
  for (size_t s = 0; s < net.num_segments(); ++s) {
    const EthernetSegment& seg = net.segment(static_cast<int>(s));
    DatacenterResult::SegStat st;
    st.segment = static_cast<int>(s);
    st.frames = seg.frames_sent();
    st.bytes = seg.bytes_sent();
    st.utilization_ppm = elapsed_sim > 0
                             ? static_cast<uint64_t>(seg.bus_busy_time()) * 1000000u /
                                   static_cast<uint64_t>(elapsed_sim)
                             : 0;
    st.queued_frames = seg.queued_frames();
    st.peak_queue_depth = seg.peak_queue_depth();
    st.wait_p99_ns = seg.queue_wait().P99();
    st.frames_dropped = seg.frames_dropped();
    st.down_drops = seg.down_drops();
    st.fault_drops = seg.fault_drops();
    out.segments.push_back(st);
  }
  return out;
}

}  // namespace xk
