// Table I: Evaluating VIP (paper, Section 4.1).
//
// Measures monolithic Sprite RPC over three delivery protocols -- raw
// Ethernet, IP, and the virtual protocol VIP -- plus the native-Sprite-kernel
// baseline (the same protocol under the kNativeSprite environment model; see
// DESIGN.md for the substitution).
//
// Shape claims to reproduce:
//   * the x-kernel implementation beats the native one (latency & throughput);
//   * IP costs ~0.37 ms over raw ETH (a ~21% latency penalty on RPC);
//   * VIP adds only ~0.06 ms over ETH and nearly eliminates the IP penalty;
//   * all x-kernel stacks drive the wire at close to the same rate, but the
//     VIP stack uses less CPU than the IP stack.

#include "bench/bench_util.h"

namespace xk {
namespace {

int Run() {
  PrintTableHeader("Table I: Evaluating VIP");

  ConfigResult n_rpc = RpcBench::Measure(
      "N_RPC", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); },
      HostEnv::kNativeSprite);
  PrintRow(n_rpc, 2.6, 700, 1.2);

  ConfigResult m_eth =
      RpcBench::Measure("M_RPC-ETH", [](HostStack& h) { return BuildMRpc(h, Delivery::kEth); });
  PrintRow(m_eth, 1.73, 863, 1.04);

  ConfigResult m_ip =
      RpcBench::Measure("M_RPC-IP", [](HostStack& h) { return BuildMRpc(h, Delivery::kIp); });
  PrintRow(m_ip, 2.10, 836, 1.05);

  ConfigResult m_vip =
      RpcBench::Measure("M_RPC-VIP", [](HostStack& h) { return BuildMRpc(h, Delivery::kVip); });
  PrintRow(m_vip, 1.79, 860, 1.04);

  std::printf("\nDerived quantities:\n");
  std::printf("  IP penalty over ETH:   %+.2f ms (%.0f%%)   [paper: +0.37 ms, 21%%]\n",
              m_ip.latency_ms - m_eth.latency_ms,
              100.0 * (m_ip.latency_ms - m_eth.latency_ms) / m_eth.latency_ms);
  std::printf("  VIP overhead over ETH: %+.2f ms          [paper: +0.06 ms]\n",
              m_vip.latency_ms - m_eth.latency_ms);
  std::printf("  CPU per 16k call: ETH %.2f+%.2f  IP %.2f+%.2f  VIP %.2f+%.2f ms "
              "(client+server; VIP < IP expected)\n",
              m_eth.client_cpu_ms, m_eth.server_cpu_ms, m_ip.client_cpu_ms, m_ip.server_cpu_ms,
              m_vip.client_cpu_ms, m_vip.server_cpu_ms);
  return 0;
}

}  // namespace
}  // namespace xk

int main(int argc, char** argv) {
  xk::BenchObservers observers(argc, argv);
  return xk::Run();
}
