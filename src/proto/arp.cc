#include "src/proto/arp.h"

#include "src/core/wire.h"

namespace xk {

namespace {
constexpr uint8_t kOpRequest = 1;
constexpr uint8_t kOpReply = 2;
}  // namespace

ArpProtocol::ArpProtocol(Kernel& kernel, Protocol* eth, std::optional<IpAddr> my_ip,
                         std::string name)
    : Protocol(kernel, std::move(name), {eth}), my_ip_(my_ip.value_or(kernel.ip_addr())) {
  ControlArgs args;
  my_eth_ = lower(0)->Control(ControlOp::kGetMyHostEth, args).ok() ? args.eth : kernel.eth_addr();
  // Receive ARP traffic: both broadcasts (requests) and unicasts (replies).
  ParticipantSet enable;
  enable.local.eth_type = kEthTypeArp;
  (void)lower(0)->OpenEnable(*this, enable);
}

SessionRef ArpProtocol::BroadcastSession() {
  if (bcast_ == nullptr) {
    ParticipantSet parts;
    parts.local.eth_type = kEthTypeArp;
    parts.peer.eth = EthAddr::Broadcast();
    Result<SessionRef> r = lower(0)->Open(*this, parts);
    if (r.ok()) {
      bcast_ = *r;
    }
  }
  return bcast_;
}

std::optional<EthAddr> ArpProtocol::Lookup(IpAddr ip) const {
  auto it = cache_.find(ip);
  if (it == cache_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<IpAddr> ArpProtocol::ReverseLookup(EthAddr eth) const {
  for (const auto& [ip, mac] : cache_) {
    if (mac == eth) {
      return ip;
    }
  }
  return std::nullopt;
}

void ArpProtocol::Resolve(IpAddr ip, ResolveCallback done) {
  kernel().ChargeMapResolve();
  if (auto hit = Lookup(ip)) {
    done(*hit);
    return;
  }
  Pending& p = pending_[ip];
  p.waiters.push_back(std::move(done));
  if (p.waiters.size() > 1) {
    return;  // a request is already outstanding
  }
  p.attempts = 1;
  SendRequest(ip);
  p.timer = kernel().SetTimer(retry_timeout_, [this, ip]() { RetryOrFail(ip); });
}

void ArpProtocol::RetryOrFail(IpAddr target) {
  auto it = pending_.find(target);
  if (it == pending_.end()) {
    return;
  }
  Pending& p = it->second;
  if (p.attempts >= max_retries_) {
    std::vector<ResolveCallback> waiters = std::move(p.waiters);
    pending_.erase(it);
    for (auto& cb : waiters) {
      cb(ErrStatus(StatusCode::kUnreachable));
    }
    return;
  }
  ++p.attempts;
  SendRequest(target);
  p.timer = kernel().SetTimer(retry_timeout_, [this, target]() { RetryOrFail(target); });
}

void ArpProtocol::SendRequest(IpAddr target) {
  SessionRef bcast = BroadcastSession();
  if (bcast == nullptr) {
    return;
  }
  uint8_t pkt[kPacketSize];
  WireWriter w(pkt);
  w.PutU8(kOpRequest);
  w.PutU8(0);  // pad
  w.PutIpAddr(my_ip_);
  w.PutEthAddr(my_eth_);
  w.PutIpAddr(target);
  w.PutEthAddr(EthAddr());
  Message msg = Message::FromBytes(pkt);
  ++requests_sent_;
  (void)bcast->Push(msg);
}

void ArpProtocol::SendReply(IpAddr requester_ip, EthAddr requester_eth) {
  ParticipantSet parts;
  parts.local.eth_type = kEthTypeArp;
  parts.peer.eth = requester_eth;
  Result<SessionRef> r = lower(0)->Open(*this, parts);
  if (!r.ok()) {
    return;
  }
  uint8_t pkt[kPacketSize];
  WireWriter w(pkt);
  w.PutU8(kOpReply);
  w.PutU8(0);
  w.PutIpAddr(my_ip_);
  w.PutEthAddr(my_eth_);
  w.PutIpAddr(requester_ip);
  w.PutEthAddr(requester_eth);
  Message msg = Message::FromBytes(pkt);
  ++replies_sent_;
  (void)(*r)->Push(msg);
}

Status ArpProtocol::DoDemux(Session* lls, Message& msg) {
  (void)lls;
  uint8_t pkt[kPacketSize];
  if (!msg.PopHeader(pkt)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  kernel().ChargeHdrLoad(kPacketSize);
  WireReader r(pkt);
  const uint8_t op = r.GetU8();
  r.Skip(1);
  const IpAddr sender_ip = r.GetIpAddr();
  const EthAddr sender_eth = r.GetEthAddr();
  const IpAddr target_ip = r.GetIpAddr();

  // Every ARP packet teaches us the sender's binding.
  cache_[sender_ip] = sender_eth;

  // Complete any resolution waiting on the sender.
  if (auto it = pending_.find(sender_ip); it != pending_.end()) {
    Pending p = std::move(it->second);
    pending_.erase(it);
    kernel().CancelTimer(p.timer);
    for (auto& cb : p.waiters) {
      cb(sender_eth);
    }
  }

  if (op == kOpRequest && target_ip == my_ip_) {
    SendReply(sender_ip, sender_eth);
  }
  return OkStatus();
}

Status ArpProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kResolve: {
      auto hit = Lookup(args.ip);
      if (!hit) {
        return ErrStatus(StatusCode::kNotFound);
      }
      args.eth = *hit;
      return OkStatus();
    }
    case ControlOp::kResolveTest:
      args.u64 = Lookup(args.ip).has_value() ? 1 : 0;
      return OkStatus();
    case ControlOp::kAddResolveEntry:
      cache_[args.ip] = args.eth;
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
