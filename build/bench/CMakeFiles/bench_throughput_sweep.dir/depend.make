# Empty dependencies file for bench_throughput_sweep.
# This may be replaced when dependencies are built.
