// M_RPC: the monolithic Sprite RPC protocol (paper, Sections 3 and 4).
//
// One protocol, one header, implementing everything the SELECT / CHANNEL /
// FRAGMENT decomposition provides as three:
//
//  * a fixed pool of channels per server host, callers blocking when all are
//    busy (selection);
//  * request/reply pairing with at-most-once semantics and implicit
//    acknowledgements -- a reply acks its request, the next request acks the
//    previous reply -- with timeouts eliciting retransmissions and explicit
//    acks (channels);
//  * fragmentation of requests/replies up to 16 KB into 1 KB fragments,
//    where the fragments of one RPC are parts of a single transaction: a
//    reply implicitly acknowledges ALL fragments of the request, and a
//    partial acknowledgement (an ACK carrying the received-fragment mask)
//    triggers selective retransmission (fragmentation).
//
// Header (paper appendix, SPRITE_HDR, 36 bytes on the wire):
//   flags(2) clnt_host(4) srvr_host(4) channel(2) srvr_process(2)
//   sequence_num(4) num_frags(2) frag_mask(2) command(2) boot_id(4)
//   data1_sz(2) data2_sz(2) data1_offset(2) data2_offset(2)
// The dual data size/offset fields are carried for wire fidelity but always
// describe a single data area (the paper notes the x-kernel message tool
// makes the second area pointless).

#ifndef XK_SRC_RPC_SPRITE_RPC_H_
#define XK_SRC_RPC_SPRITE_RPC_H_

#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/tools/semaphore.h"

namespace xk {

class SpriteClientSession;
class SpriteServerSession;

class SpriteRpcProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 36;
  static constexpr size_t kFragSize = 1024;
  static constexpr size_t kMaxFrags = 16;
  static constexpr size_t kMaxMessage = kFragSize * kMaxFrags;  // 16 KB args/results
  static constexpr int kNumChannels = 8;
  static constexpr uint16_t kAnyCommand = 0xFFFF;

  // `lower` is any host-addressed delivery protocol: VIP, IP, or the
  // Ethernet open-time shim (for the M_RPC-ETH configuration).
  SpriteRpcProtocol(Kernel& kernel, Protocol* lower, std::string name = "sprite");

  void set_base_timeout(SimTime t) { base_timeout_ = t; }
  void set_retry_limit(int n) { retry_limit_ = n; }

  struct Stats {
    uint64_t calls_sent = 0;
    uint64_t replies_received = 0;
    uint64_t requests_executed = 0;
    uint64_t fragments_sent = 0;
    uint64_t retransmissions = 0;        // timeout-driven fragment resends
    uint64_t selective_resends = 0;      // fragments resent from a partial ack
    uint64_t duplicates_suppressed = 0;  // duplicate requests not re-executed
    uint64_t replies_resent = 0;
    uint64_t explicit_acks_sent = 0;
    uint64_t call_failures = 0;
    uint64_t boot_resets = 0;
    uint64_t blocked_on_channel = 0;
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("calls_sent", stats_.calls_sent);
    emit("replies_received", stats_.replies_received);
    emit("requests_executed", stats_.requests_executed);
    emit("fragments_sent", stats_.fragments_sent);
    emit("retransmissions", stats_.retransmissions);
    emit("selective_resends", stats_.selective_resends);
    emit("duplicates_suppressed", stats_.duplicates_suppressed);
    emit("replies_resent", stats_.replies_resent);
    emit("explicit_acks_sent", stats_.explicit_acks_sent);
    emit("call_failures", stats_.call_failures);
    emit("boot_resets", stats_.boot_resets);
    emit("blocked_on_channel", stats_.blocked_on_channel);
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  friend class SpriteClientSession;
  friend class SpriteServerSession;

  struct Header {
    uint16_t flags = 0;
    IpAddr clnt_host;
    IpAddr srvr_host;
    uint16_t channel = 0;
    uint16_t srvr_process = 0;
    uint32_t seq = 0;
    uint16_t num_frags = 0;
    uint16_t frag_mask = 0;
    uint16_t command = 0;
    uint32_t boot_id = 0;
    uint16_t data1_sz = 0;
  };

  // Gathers fragments of one message.
  struct Collect {
    uint16_t num_frags = 0;
    uint16_t have_mask = 0;
    std::vector<Message> frags;

    void Reset(uint16_t num) {
      num_frags = num;
      have_mask = 0;
      frags.assign(num, Message());
    }
    bool Complete() const;
    Message Join(Kernel& kernel) const;
  };

  // Client-side channel state.
  struct ClientChannel {
    uint32_t seq = 0;
    bool busy = false;
    // Outstanding call on this channel.
    Message request;
    uint16_t command = 0;
    std::vector<Message> request_frags;
    uint16_t server_has_mask = 0;  // from partial acks
    int retries = 0;
    bool acked = false;
    EventHandle timer;
    std::shared_ptr<SpriteClientSession> caller;
    Collect reply;  // reply fragments being collected
  };

  struct ClientPool {
    std::vector<ClientChannel> channels;
    std::unique_ptr<XSemaphore> available;
    SessionRef lower;
  };

  // Server-side channel state, keyed (client host, channel id).
  struct ServerChannel {
    uint32_t cur_seq = 0;
    bool in_progress = false;
    Collect request;
    std::optional<Message> saved_reply;
    uint16_t last_command = 0;
    uint32_t clnt_boot_id = 0;
    SessionRef reply_lls;
    std::shared_ptr<SpriteServerSession> server_sess;
  };

  Result<ClientPool*> PoolFor(IpAddr server);
  void SendPacket(Session& lls, const Header& hdr, const Message& payload);
  static std::vector<Message> Fragment(Kernel& kernel, const Message& msg);
  void StartCall(IpAddr server, ClientPool& pool, size_t index,
                 std::shared_ptr<SpriteClientSession> caller, uint16_t command, Message msg);
  void SendRequestFrags(IpAddr server, ClientPool& pool, size_t index, uint16_t resend_mask,
                        bool please_ack);
  void ArmTimer(IpAddr server, size_t index);
  void OnTimeout(IpAddr server, size_t index);
  void ReleaseChannel(ClientPool& pool, size_t index);

  Status HandleRequest(const Header& hdr, Message& payload, Session* lls);
  Status HandleReplyOrAck(const Header& hdr, Message& payload);
  void SendReplyFrags(ServerChannel& chan, IpAddr clnt, uint16_t channel_id,
                      const Message& reply);

  using SessKey = std::tuple<IpAddr, uint16_t>;  // (server host, command)
  using ServKey = std::tuple<IpAddr, uint16_t>;  // (client host, channel)

  DemuxMap<SessKey> active_;                   // client sessions
  DemuxMap<uint16_t, Protocol*> passive_;      // command -> server hlp
  std::map<IpAddr, ClientPool> client_pools_;
  std::map<ServKey, ServerChannel> server_chans_;
  SimTime base_timeout_ = Msec(50);
  int retry_limit_ = 5;
  Stats stats_;
};

// Client session: one per (server host, command); calls multiplex over the
// per-host channel pool.
class SpriteClientSession : public Session {
 public:
  SpriteClientSession(SpriteRpcProtocol& owner, Protocol* hlp, IpAddr server, uint16_t command);

  IpAddr server() const { return server_; }
  uint16_t command() const { return command_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  SpriteRpcProtocol& rpc_;
  IpAddr server_;
  uint16_t command_;
};

// Server session: one per (client host, channel); the server anchor pushes
// its reply into it.
class SpriteServerSession : public Session {
 public:
  SpriteServerSession(SpriteRpcProtocol& owner, Protocol* hlp, IpAddr clnt, uint16_t channel);

  uint16_t last_command() const;

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  SpriteRpcProtocol& rpc_;
  IpAddr clnt_;
  uint16_t channel_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SPRITE_RPC_H_
