// Mix-and-match RPC (paper, Section 5).
//
// Decomposed Sun RPC lets you assemble a transport from parts:
//
//   SUN_SELECT - REQUEST_REPLY - FRAGMENT - VIP     faithful Sun semantics
//   SUN_SELECT - AUTH_CRED - REQUEST_REPLY - ...    with authentication
//   SUN_SELECT - CHANNEL - FRAGMENT - VIP           at-most-once Sun RPC
//
// This example runs the same duplicated-request experiment against the first
// and third stacks: with REQUEST_REPLY the server executes the call twice
// (zero-or-more); with CHANNEL swapped in, exactly once -- no other layer
// changes. It then shows AUTH_CRED rejecting a caller.

#include <cstdio>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/proto/topology.h"
#include "src/rpc/sun/auth.h"
#include "src/rpc/sun/sun_select.h"

using namespace xk;

namespace {

constexpr uint32_t kProg = 200001;
constexpr uint16_t kVers = 1;
constexpr uint16_t kProcIncr = 1;

struct World {
  std::unique_ptr<Internet> net;
  HostStack* ch;
  HostStack* sh;
  RpcStack cstack, sstack;
  RpcClient* client = nullptr;
  RpcServer* server = nullptr;
  int executions = 0;
};

World Build(SunPairing pairing, SunAuth auth) {
  World w;
  w.net = Internet::TwoHosts();
  w.ch = &w.net->host("client");
  w.sh = &w.net->host("server");
  w.cstack = BuildSunRpc(*w.ch, pairing, auth);
  w.sstack = BuildSunRpc(*w.sh, pairing, auth);
  w.ch->kernel->RunTask(0, [&] {
    w.client = &w.ch->kernel->Emplace<RpcClient>(*w.ch->kernel, w.cstack.top);
  });
  return w;
}

void ExportCounter(World& w) {
  w.sh->kernel->RunTask(0, [&] {
    w.server = &w.sh->kernel->Emplace<RpcServer>(*w.sh->kernel, w.sstack.top);
    (void)w.server->ExportParts(SunProgService(kProg, kVers), [&w](uint16_t, Message& m) {
      ++w.executions;  // count how many times the procedure actually runs
      return m;
    });
  });
}

void CallOnceWithDuplicatedRequest(World& w) {
  // Duplicate the first frame on the wire: a classic retransmission hazard.
  w.net->segment(0).set_fault_hook([](const EthFrame&, int, uint64_t index) {
    return index == 0 ? LinkFault::kDuplicate : LinkFault::kDeliver;
  });
  w.ch->kernel->ScheduleTask(0, [&] {
    w.client->CallParts(SunProcAddress(w.sh->kernel->ip_addr(), kProg, kVers, kProcIncr),
                        Message(64), [](Result<Message>) {});
  });
  w.net->RunAll();
}

}  // namespace

int main() {
  std::printf("=== duplicated request, REQUEST_REPLY pairing (zero-or-more) ===\n");
  {
    World w = Build(SunPairing::kRequestReply, SunAuth::kNone);
    ExportCounter(w);
    CallOnceWithDuplicatedRequest(w);
    std::printf("procedure executed %d time(s)  <- duplicates re-execute\n\n", w.executions);
  }

  std::printf("=== same experiment, CHANNEL swapped in (at-most-once) ===\n");
  {
    World w = Build(SunPairing::kChannel, SunAuth::kNone);
    ExportCounter(w);
    CallOnceWithDuplicatedRequest(w);
    std::printf("procedure executed %d time(s)  <- CHANNEL suppressed the duplicate\n\n",
                w.executions);
  }

  std::printf("=== AUTH_CRED inserted as an optional layer ===\n");
  {
    World w = Build(SunPairing::kRequestReply, SunAuth::kAuthCred);
    ExportCounter(w);
    w.ch->kernel->RunTask(0, [&] {
      static_cast<AuthCredProtocol*>(w.cstack.auth)->SetCredentials(1001, 100);
    });
    w.sh->kernel->RunTask(0, [&] {
      static_cast<AuthCredProtocol*>(w.sstack.auth)->AllowUid(42);  // 1001 NOT allowed
    });
    bool rejected = false;
    w.ch->kernel->ScheduleTask(0, [&] {
      w.client->CallParts(SunProcAddress(w.sh->kernel->ip_addr(), kProg, kVers, kProcIncr),
                          Message(16), [&](Result<Message> r) {
                            rejected = !r.ok() && r.status().code() == StatusCode::kRejected;
                          });
    });
    w.net->RunAll();
    std::printf("uid 1001 vs allow-list {42}: call %s; procedure executed %d time(s)\n",
                rejected ? "REJECTED by the auth layer" : "accepted (?)", w.executions);
  }
  return 0;
}
