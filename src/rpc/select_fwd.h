// SELECT_FWD: the alternative selection layer the paper mentions ("we have
// built an alternative selection layer that does forwarding").
//
// A server may answer a call with a FORWARD response naming another host; the
// client-side selector transparently re-issues the call there (up to a hop
// budget) and delivers only the final reply to its caller. Because SELECT is
// a separate protocol, swapping this in requires no change to CHANNEL,
// FRAGMENT, or the application anchor -- the point of the decomposition.

#ifndef XK_SRC_RPC_SELECT_FWD_H_
#define XK_SRC_RPC_SELECT_FWD_H_

#include <map>

#include "src/rpc/select.h"

namespace xk {

class SelectFwdProtocol : public SelectProtocol {
 public:
  static constexpr int kMaxHops = 4;

  SelectFwdProtocol(Kernel& kernel, Protocol* lower, std::string name = "selectfwd");

  // Server side: calls for `command` are answered with "forward to `target`".
  void AddForwardingRule(uint16_t command, IpAddr target);

  uint64_t forwards_sent() const { return forwards_sent_; }
  uint64_t forwards_followed() const { return forwards_followed_; }

 protected:
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  Status SendForward(Session* lls, uint16_t command, IpAddr target);
  Status FollowForward(Session* lls, uint16_t command, Message& msg);

  std::map<uint16_t, IpAddr> forward_rules_;
  uint64_t forwards_sent_ = 0;
  uint64_t forwards_followed_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SELECT_FWD_H_
