// Tests for the cluster subsystem (src/cluster): VPOOL load-spreading
// policies and health tracking, the id-paired ClusterClient, open-loop
// arrival generators, and the datacenter topology builder -- including the
// engine-width bit-identity guarantee for the whole datacenter measurement.

#include "src/cluster/vpool.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/app/anchor.h"
#include "src/app/oracle.h"
#include "src/app/stacks.h"
#include "src/cluster/arrivals.h"
#include "src/cluster/client.h"
#include "src/cluster/datacenter.h"
#include "src/proto/topology.h"
#include "tests/test_util.h"

namespace xk {
namespace {

constexpr uint16_t kEcho = 1;
const IpAddr kVip(10, 99, 0, 1);

// One client plus a replica pool on a single segment, with the client's stack
// topped by VPOOL + ClusterClient and every replica serving the oracle echo.
struct PoolOptions {
  int replicas = 4;
  VpoolPolicy policy = VpoolPolicy::kRoundRobin;
  std::vector<uint32_t> weights;
  SimTime readmit_after = Msec(200);
  std::vector<SimTime> service_delays;  // per replica; missing entries = 0
};

class PoolFixture {
 public:
  explicit PoolFixture(const PoolOptions& opt) {
    net = std::make_unique<Internet>();
    const int seg = net->AddSegment();
    ch = &net->AddHost("client", seg, IpAddr(10, 0, 1, 100));
    std::vector<IpAddr> addrs;
    for (int r = 0; r < opt.replicas; ++r) {
      names.push_back("s" + std::to_string(r));
      addrs.push_back(IpAddr(10, 0, 1, static_cast<uint8_t>(r + 1)));
      net->AddHost(names.back(), seg, addrs.back());
    }
    net->WarmArp();

    for (int r = 0; r < opt.replicas; ++r) {
      HostStack& h = net->host(names[static_cast<size_t>(r)]);
      const SimTime delay = static_cast<size_t>(r) < opt.service_delays.size()
                                ? opt.service_delays[static_cast<size_t>(r)]
                                : 0;
      servers.push_back(InstallServer(h, delay));
      net->set_restart_hook(names[static_cast<size_t>(r)], [this, r, delay](HostStack& fresh) {
        // Runs inside the host's reboot task: build directly, no RunIn.
        RpcStack rebuilt = BuildLRpc(fresh, Delivery::kVip);
        auto& server = fresh.kernel->Emplace<RpcServer>(*fresh.kernel, rebuilt.top);
        server.set_service_delay(delay);
        (void)server.Export(RpcServer::kAny, oracle.WrapEcho(fresh.kernel));
        servers[static_cast<size_t>(r)] = &server;
      });
    }

    cstack = BuildLRpc(*ch, Delivery::kVip);
    RunIn(*ch->kernel, [&] {
      vpool = &ch->kernel->Emplace<VpoolProtocol>(*ch->kernel, cstack.top);
      vpool->BindService(kVip, addrs, opt.policy, opt.weights);
      vpool->set_readmit_after(opt.readmit_after);
      client = &ch->kernel->Emplace<ClusterClient>(*ch->kernel, vpool);
    });
  }

  // Issues one call to the virtual service and runs to quiescence.
  Result<Message> CallSync(uint16_t command = kEcho) {
    return CallSyncTo(kVip, command);
  }

  // Same, but to an explicit address (passthrough tests).
  Result<Message> CallSyncTo(IpAddr service, uint16_t command) {
    const uint64_t id = ++next_id_;
    Result<Message> result = ErrStatus(StatusCode::kError);
    bool done = false;
    RunIn(*ch->kernel, [&] {
      oracle.RecordIssued(id, ch->kernel->now());
      client->Call(service, command, id, AmoOracle::MakeRequest(id, 64),
                   [&](Result<Message> r) {
                     oracle.RecordOutcome(id, r, ch->kernel->now());
                     result = std::move(r);
                     done = true;
                   });
    });
    net->RunAll();
    EXPECT_TRUE(done) << "call never completed";
    return result;
  }

  // Schedules a call at absolute sim time `at` without waiting (open-loop-ish
  // issue pattern for concurrency-sensitive policies). Run net->RunAll()
  // afterwards; outcomes land in the oracle.
  void CallAt(SimTime at, uint16_t command = kEcho) {
    const uint64_t id = ++next_id_;
    ch->kernel->ScheduleTask(at, [this, id, command] {
      oracle.RecordIssued(id, ch->kernel->now());
      client->Call(kVip, command, id, AmoOracle::MakeRequest(id, 64),
                   [this, id](Result<Message> r) {
                     oracle.RecordOutcome(id, r, ch->kernel->now());
                   });
    });
  }

  RpcServer* InstallServer(HostStack& h, SimTime delay) {
    RpcStack stack = BuildLRpc(h, Delivery::kVip);
    RpcServer* server = nullptr;
    RunIn(*h.kernel, [&] {
      server = &h.kernel->Emplace<RpcServer>(*h.kernel, stack.top);
      server->set_service_delay(delay);
      EXPECT_TRUE(server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel)).ok());
    });
    return server;
  }

  std::unique_ptr<Internet> net;
  HostStack* ch;
  RpcStack cstack;
  VpoolProtocol* vpool = nullptr;
  ClusterClient* client = nullptr;
  std::vector<std::string> names;
  std::vector<RpcServer*> servers;
  AmoOracle oracle;
  uint64_t next_id_ = 0;
};

// --- arrival-spec parsing -----------------------------------------------------

TEST(ArrivalSpecTest, ParseToStringRoundTrip) {
  ArrivalSpec spec;
  std::string error;
  ASSERT_TRUE(ArrivalSpec::Parse("poisson:rate=400,horizon=500ms,churn=50,seed=7", &spec,
                                 &error))
      << error;
  EXPECT_EQ(spec.kind, ArrivalSpec::Kind::kPoisson);
  EXPECT_EQ(spec.rate_cps, 400.0);
  EXPECT_EQ(spec.horizon, Msec(500));
  EXPECT_EQ(spec.churn_every, 50);
  EXPECT_EQ(spec.seed, 7u);

  ASSERT_TRUE(ArrivalSpec::Parse("onoff:rate=900,off_rate=100,on=100ms,off=100ms,horizon=1s",
                                 &spec, &error))
      << error;
  EXPECT_EQ(spec.kind, ArrivalSpec::Kind::kOnOff);
  EXPECT_EQ(spec.off_rate_cps, 100.0);
  EXPECT_EQ(spec.on_for, Msec(100));
  EXPECT_EQ(spec.horizon, Sec(1));

  // ToString -> Parse -> ToString is a fixed point for both kinds.
  for (const char* text :
       {"poisson:rate=400,horizon=500ms,churn=50,seed=7",
        "onoff:rate=900,off_rate=100,on=100ms,off=100ms,horizon=1s,seed=1"}) {
    ASSERT_TRUE(ArrivalSpec::Parse(text, &spec, &error)) << error;
    const std::string printed = spec.ToString();
    ArrivalSpec reparsed;
    ASSERT_TRUE(ArrivalSpec::Parse(printed, &reparsed, &error)) << error;
    EXPECT_EQ(reparsed.ToString(), printed);
  }
}

TEST(ArrivalSpecTest, ParseErrorsNameTheOffendingToken) {
  ArrivalSpec spec;
  std::string error;

  EXPECT_FALSE(ArrivalSpec::Parse("burst:rate=100", &spec, &error));
  EXPECT_NE(error.find("'burst'"), std::string::npos) << error;

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate", &spec, &error));
  EXPECT_NE(error.find("'rate'"), std::string::npos) << error;

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:wibble=3", &spec, &error));
  EXPECT_NE(error.find("'wibble'"), std::string::npos) << error;

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate=abc", &spec, &error));
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:horizon=10xs", &spec, &error));
  EXPECT_NE(error.find("'10xs'"), std::string::npos) << error;

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate=-5", &spec, &error));
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(ArrivalSpec::Parse("poisson:rate=100,horizon=0ms", &spec, &error));
  EXPECT_NE(error.find("horizon"), std::string::npos) << error;

  // onoff requires both phase lengths.
  EXPECT_FALSE(ArrivalSpec::Parse("onoff:rate=100,on=0ms,off=10ms,horizon=1s", &spec, &error));
  EXPECT_NE(error.find("on="), std::string::npos) << error;
}

// --- spreading policies -------------------------------------------------------

TEST(VpoolTest, RoundRobinSpreadsExactly) {
  PoolFixture fix(PoolOptions{});
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fix.CallSync().ok()) << "call " << i;
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(fix.vpool->replica_calls(r), 3u) << "replica " << r;
    EXPECT_EQ(fix.servers[static_cast<size_t>(r)]->requests_served(), 3u) << "replica " << r;
  }
  EXPECT_EQ(fix.vpool->down_marks(), 0u);
  EXPECT_TRUE(fix.oracle.Finish().clean());
}

TEST(VpoolTest, WeightedFollowsTheWeights) {
  PoolOptions opt;
  opt.replicas = 2;
  opt.policy = VpoolPolicy::kWeighted;
  opt.weights = {3, 1};
  PoolFixture fix(opt);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fix.CallSync().ok()) << "call " << i;
  }
  // Smooth WRR at weights 3:1 serves exactly 3 of every 4 from replica 0.
  EXPECT_EQ(fix.vpool->replica_calls(0), 6u);
  EXPECT_EQ(fix.vpool->replica_calls(1), 2u);
}

TEST(VpoolTest, LeastOutstandingRoutesAroundABusyReplica) {
  PoolOptions opt;
  opt.replicas = 2;
  opt.policy = VpoolPolicy::kLeastOutstanding;
  opt.service_delays = {Msec(100), 0};
  PoolFixture fix(opt);

  // Six calls spaced 10ms apart. The first lands on replica 0 (tie, lowest
  // index) and sits in its 100ms service time; every later call sees replica 0
  // with one outstanding and replica 1 idle, so the pool routes around it.
  for (int i = 0; i < 6; ++i) {
    fix.CallAt(Msec(10) * static_cast<SimTime>(i));
  }
  fix.net->RunAll();
  EXPECT_EQ(fix.vpool->replica_calls(0), 1u);
  EXPECT_EQ(fix.vpool->replica_calls(1), 5u);
  AmoOracle::Report rep = fix.oracle.Finish();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.completed, 6u);
}

TEST(VpoolTest, HashAffinityPinsACommandAndFailsOverOnCrash) {
  PoolOptions opt;
  opt.policy = VpoolPolicy::kHashAffinity;
  opt.readmit_after = 0;  // never readmit: the failover target must be stable
  PoolFixture fix(opt);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fix.CallSync(7).ok()) << "call " << i;
  }
  // Affinity sends every call for (this client, command 7) to one replica.
  int pinned = -1;
  for (int r = 0; r < 4; ++r) {
    if (fix.vpool->replica_calls(r) > 0) {
      EXPECT_EQ(fix.vpool->replica_calls(r), 8u);
      EXPECT_EQ(pinned, -1) << "calls landed on two replicas";
      pinned = r;
    }
  }
  ASSERT_GE(pinned, 0);

  // Crash the pinned replica. The next call is still routed to it (nothing
  // observed yet), exhausts its retries, and marks it down; the rest fall to
  // its ring successor -- one single other replica, consistently.
  fix.net->CrashHost(fix.names[static_cast<size_t>(pinned)]);
  EXPECT_FALSE(fix.CallSync(7).ok());
  EXPECT_EQ(fix.vpool->down_marks(), 1u);
  EXPECT_FALSE(fix.vpool->replica_up(pinned));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fix.CallSync(7).ok()) << "failover call " << i;
  }
  EXPECT_EQ(fix.vpool->replica_calls(pinned), 9u);
  int successor = -1;
  for (int r = 0; r < 4; ++r) {
    if (r == pinned || fix.vpool->replica_calls(r) == 0) {
      continue;
    }
    EXPECT_EQ(fix.vpool->replica_calls(r), 4u);
    EXPECT_EQ(successor, -1) << "failover spread over two replicas";
    successor = r;
  }
  ASSERT_GE(successor, 0);
  AmoOracle::Report rep = fix.oracle.Finish();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.failed, 1u);
}

// --- health: markdown, probation, recovery ------------------------------------

TEST(VpoolTest, MarkDownReadmitAndRecoverAfterRestart) {
  PoolOptions opt;
  opt.replicas = 2;
  opt.readmit_after = Msec(100);
  PoolFixture fix(opt);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fix.CallSync().ok());
  }
  EXPECT_EQ(fix.vpool->replica_calls(0), 2u);
  EXPECT_EQ(fix.vpool->replica_calls(1), 2u);

  // Crash replica 0: the next call routed to it exhausts CHANNEL's retries,
  // surfaces an error, and marks it down. The probation timer fires 100ms
  // later (inside the same run-to-quiescence), readmitting it.
  fix.net->CrashHost("s0");
  EXPECT_FALSE(fix.CallSync().ok());
  EXPECT_EQ(fix.vpool->down_marks(), 1u);
  EXPECT_EQ(fix.vpool->readmits(), 1u);
  EXPECT_TRUE(fix.vpool->replica_up(0));

  // Bring the host back; the restart hook rebuilt its server. Calls spread
  // over both replicas again and every one completes.
  fix.net->RestartHost("s0");
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fix.CallSync().ok()) << "post-restart call " << i;
  }
  EXPECT_EQ(fix.vpool->replica_calls(0), 5u);  // 2 + the failed probe + 2
  EXPECT_EQ(fix.vpool->replica_calls(1), 4u);
  AmoOracle::Report rep = fix.oracle.Finish();
  EXPECT_TRUE(rep.clean()) << "double=" << rep.double_executions
                           << " silent=" << rep.silent;
  EXPECT_EQ(rep.failed, 1u);
  EXPECT_EQ(rep.completed, 8u);
}

TEST(VpoolTest, AllReplicasDownFailsFastWithUnreachable) {
  PoolOptions opt;
  opt.replicas = 2;
  opt.readmit_after = 0;
  PoolFixture fix(opt);

  fix.net->CrashHost("s0");
  fix.net->CrashHost("s1");
  // Each crashed replica costs one discovering call (async retry exhaustion).
  EXPECT_FALSE(fix.CallSync().ok());
  EXPECT_FALSE(fix.CallSync().ok());
  EXPECT_EQ(fix.vpool->down_marks(), 2u);

  // With the whole pool marked down the failure is synchronous and typed.
  Result<Message> r = fix.CallSync();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnreachable);
  EXPECT_EQ(fix.vpool->all_down_failures(), 1u);

  RunIn(*fix.ch->kernel, [&] {
    ControlArgs args;
    EXPECT_TRUE(fix.vpool->Control(ControlOp::kGetReplicasUp, args).ok());
    EXPECT_EQ(args.u64, 0u);
  });
}

TEST(VpoolTest, NonServiceOpensPassThroughUntouched) {
  PoolFixture fix(PoolOptions{});
  // Address a replica directly (not the virtual service): VPOOL must stay
  // transparent, so the pool counters never move.
  ASSERT_TRUE(fix.CallSyncTo(IpAddr(10, 0, 1, 2), kEcho).ok());
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(fix.vpool->replica_calls(r), 0u);
  }
}

// --- open-loop generators -----------------------------------------------------

TEST(OpenLoopGenTest, OnOffArrivalsStayOutOfTheOffPhase) {
  PoolOptions opt;
  opt.replicas = 1;
  PoolFixture fix(opt);

  ArrivalSpec spec;
  std::string error;
  ASSERT_TRUE(ArrivalSpec::Parse(
      "onoff:rate=2000,off_rate=0,on=10ms,off=10ms,horizon=40ms,seed=5", &spec, &error))
      << error;
  OpenLoopGen gen(*fix.ch->kernel, *fix.client, fix.oracle, spec, kVip, kEcho, 64,
                  uint64_t{1} << 32);
  // Phase window aligned exactly to the first off phase [10ms, 20ms).
  gen.set_phase_window(Msec(10), Msec(20));
  gen.Start();
  fix.net->RunAll();

  EXPECT_GT(gen.phase(0).issued, 0u);   // on phase [0, 10ms)
  EXPECT_EQ(gen.phase(1).issued, 0u);   // off phase is silent at off_rate=0
  EXPECT_GT(gen.phase(2).issued, 0u);   // on phase [20ms, 30ms)
  EXPECT_EQ(gen.issued(), gen.phase(0).issued + gen.phase(2).issued);
  EXPECT_EQ(gen.completed(), gen.issued());
  EXPECT_TRUE(fix.oracle.Finish().clean());
}

TEST(OpenLoopGenTest, PoissonIssueStreamIsOpenLoopAndDeterministic) {
  ArrivalSpec spec;
  std::string error;
  ASSERT_TRUE(
      ArrivalSpec::Parse("poisson:rate=400,horizon=100ms,seed=11", &spec, &error))
      << error;

  auto run = [&](SimTime service_delay) {
    PoolOptions opt;
    opt.replicas = 1;
    opt.service_delays = {service_delay};
    PoolFixture fix(opt);
    OpenLoopGen gen(*fix.ch->kernel, *fix.client, fix.oracle, spec, kVip, kEcho, 64,
                    uint64_t{1} << 32);
    gen.Start();
    fix.net->RunAll();
    EXPECT_TRUE(fix.oracle.Finish().clean());
    return std::make_tuple(gen.issued(), gen.completed(), gen.rtt().sum(),
                           gen.last_done_at());
  };

  const auto a = run(0);
  const auto b = run(0);
  EXPECT_EQ(a, b);  // bit-identical rerun, RTTs included

  // Open loop: slowing the server must not change what was offered.
  const auto slow = run(Msec(5));
  EXPECT_EQ(std::get<0>(slow), std::get<0>(a));
  EXPECT_GT(std::get<2>(slow), std::get<2>(a));  // ...but RTTs grew
  EXPECT_GT(std::get<0>(a), 20u);  // ~40 expected arrivals at rate 400
}

// --- connection churn ---------------------------------------------------------

TEST(VpoolTest, FlushSessionsDropsIdleLowersOnly) {
  PoolOptions opt;
  opt.replicas = 2;
  PoolFixture fix(opt);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fix.CallSync().ok());
  }
  // Both cached lower sessions are idle: a flush drops both, and the next
  // call transparently re-opens toward its replica.
  RunIn(*fix.ch->kernel, [&] { fix.client->Evict(kVip, kEcho); });
  EXPECT_EQ(fix.vpool->session_flushes(), 2u);
  ASSERT_TRUE(fix.CallSync().ok());
  EXPECT_EQ(fix.oracle.Finish().completed, 5u);
}

// --- the datacenter measurement -----------------------------------------------

DatacenterSpec SmallDatacenter() {
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  std::string error;
  ArrivalSpec arrivals;
  EXPECT_TRUE(
      ArrivalSpec::Parse("poisson:rate=150,horizon=80ms,seed=3", &arrivals, &error))
      << error;
  spec.arrivals = arrivals;
  return spec;
}

TEST(DatacenterTest, MeasurementIsBitIdenticalAcrossEngineWidths) {
  DatacenterSpec spec = SmallDatacenter();
  spec.engine_threads = 1;
  const DatacenterResult serial = MeasureDatacenter(spec);
  spec.engine_threads = 4;
  const DatacenterResult parallel = MeasureDatacenter(spec);

  EXPECT_EQ(parallel.issued, serial.issued);
  EXPECT_EQ(parallel.completed, serial.completed);
  EXPECT_EQ(parallel.failed, serial.failed);
  EXPECT_EQ(parallel.sum_done_at, serial.sum_done_at);
  EXPECT_EQ(parallel.events_fired, serial.events_fired);
  EXPECT_EQ(parallel.rtt.count(), serial.rtt.count());
  EXPECT_EQ(parallel.rtt.sum(), serial.rtt.sum());
  EXPECT_EQ(parallel.rtt.P50(), serial.rtt.P50());
  EXPECT_EQ(parallel.rtt.P999(), serial.rtt.P999());
  EXPECT_EQ(parallel.replica_calls, serial.replica_calls);
  ASSERT_EQ(parallel.routers.size(), 1u);
  EXPECT_EQ(parallel.routers[0].forwards, serial.routers[0].forwards);
  EXPECT_GT(serial.issued, 0u);
  EXPECT_TRUE(serial.oracle.clean());
}

TEST(DatacenterTest, SubSaturationRoundRobinBalancesAndRoutesEverything) {
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 2;
  spec.replicas = 4;
  std::string error;
  // Every client's round robin starts at replica 0, so the worst-case spread
  // is one call per client; ~90 calls per client keeps that under 10%.
  ASSERT_TRUE(ArrivalSpec::Parse("poisson:rate=150,horizon=600ms,seed=9", &spec.arrivals,
                                 &error))
      << error;
  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_EQ(r.success_ppm, 1000000u);  // sub-saturation: everything completes
  EXPECT_TRUE(r.oracle.clean());
  EXPECT_LE(r.share_spread_ppm, 100000u);  // round-robin balance within 10%
  EXPECT_EQ(r.down_marks, 0u);

  // Every call crossed the core router twice (request + reply), plus CHANNEL
  // control traffic; nothing was unroutable and nothing aged out.
  ASSERT_EQ(r.routers.size(), 1u);
  EXPECT_GE(r.routers[0].forwards, 2 * r.completed);
  EXPECT_EQ(r.routers[0].ttl_drops, 0u);
  EXPECT_EQ(r.routers[0].no_route_drops, 0u);
  EXPECT_EQ(r.segments.size(), 3u);  // server segment + 2 client segments
}

TEST(DatacenterTest, ConnectionChurnFlushesSessionsWithoutLosingCalls) {
  DatacenterSpec spec;
  spec.client_segments = 1;
  spec.clients_per_segment = 1;
  spec.replicas = 2;
  std::string error;
  // Rate chosen so inter-arrival gaps (~10ms) exceed the round trip: by the
  // time a churn point evicts the session, the previous call's lower session
  // is idle and actually flushable.
  ASSERT_TRUE(ArrivalSpec::Parse("poisson:rate=100,horizon=200ms,churn=10,seed=13",
                                 &spec.arrivals, &error))
      << error;
  const DatacenterResult r = MeasureDatacenter(spec);

  EXPECT_GT(r.issued, 0u);
  EXPECT_GE(r.session_flushes, 1u);
  EXPECT_EQ(r.success_ppm, 1000000u);
  EXPECT_TRUE(r.oracle.clean());
}

}  // namespace
}  // namespace xk
