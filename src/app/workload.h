// Workload drivers reproducing the paper's measurement methodology
// (Section 4): latency = round-trip of a null call averaged over many
// iterations; throughput = round-trip of large requests with null replies;
// incremental cost = slope of the 1k..16k sweep.

#ifndef XK_SRC_APP_WORKLOAD_H_
#define XK_SRC_APP_WORKLOAD_H_

#include <functional>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/message.h"
#include "src/proto/topology.h"
#include "src/stat/histogram.h"

namespace xk {

class AmoOracle;

// Issues one call carrying `args`; must invoke `done` exactly once.
using CallFn = std::function<void(Message args, std::function<void(Result<Message>)> done)>;

struct LatencyResult {
  SimTime per_call = 0;  // average round-trip
  int completed = 0;
  int failed = 0;
  Histogram rtt;  // per-call round-trip times
};

struct ThroughputResult {
  SimTime elapsed = 0;
  size_t bytes_per_call = 0;
  int completed = 0;
  double kbytes_per_sec = 0.0;  // payload bytes delivered / elapsed
  SimTime client_cpu = 0;       // CPU busy time per call
  SimTime server_cpu = 0;
  Histogram rtt;  // per-call round-trip times
};

// Chaos workload parameters (RunChaos).
struct ChaosSpec {
  size_t payload_bytes = 64;  // request payload after the oracle's 8-byte id
  int calls = 200;            // sequential calls issued
  SimTime gap = Msec(2);      // pause between a call settling and the next issue
  SimTime crash_at = 0;       // when the fault plan crashes the server (for
                              // recovery-latency attribution); 0 = no crash
};

struct ChaosResult {
  int issued = 0;
  int completed = 0;
  int failed = 0;            // surfaced failures (never silent -- oracle checks)
  SimTime elapsed = 0;       // first issue to last settlement
  SimTime recovery_latency = 0;  // first success at/after crash_at, minus crash_at
  SimTime last_failure_at = 0;
  Histogram rtt;             // per-call round-trips, failures included
};

struct ManyPairsResult {
  SimTime elapsed = 0;  // first issue to last completion, across all pairs
  int completed = 0;
  int failed = 0;
  double agg_kbytes_per_sec = 0.0;  // all pairs' payload bytes / elapsed
  SimTime sum_done_at = 0;          // sum of per-pair completion times (determinism probe)
  Histogram rtt;                    // per-call round-trips, merged across pairs
};

class RpcWorkload {
 public:
  // Runs `iters` sequential null calls through `call`, driving `net` to
  // quiescence, and reports the average round trip. (The paper used 10,000
  // iterations to average out noise; the simulator is deterministic, so a
  // smaller count measures the same value -- the default still exercises
  // steady-state session caching.)
  static LatencyResult MeasureLatency(Internet& net, Kernel& client_kernel, const CallFn& call,
                                      int iters = 100);

  // Runs `iters` sequential calls with `bytes`-byte requests and null
  // replies; reports payload throughput and per-side CPU time per call.
  static ThroughputResult MeasureThroughput(Internet& net, Kernel& client_kernel,
                                            Kernel& server_kernel, const CallFn& call,
                                            size_t bytes, int iters = 20);

  // Drives `calls[i]` from `clients[i]` concurrently -- every pair issues
  // `iters` sequential `bytes`-byte calls, all started at the same instant,
  // in ONE RunAll. With pairs on independent segments this is the workload
  // the parallel engine speeds up; its results (simulated metrics) are
  // engine-invariant.
  static ManyPairsResult MeasureManyPairs(Internet& net, const std::vector<Kernel*>& clients,
                                          const std::vector<CallFn>& calls, size_t bytes,
                                          int iters = 20);

  // Availability workload for fault campaigns: issues `spec.calls` sequential
  // oracle-tagged calls (spaced by `spec.gap`), pressing on through failures,
  // and reports success rate, recovery latency, and the per-call RTT
  // distribution. Every request is built by `oracle` (MakeRequest) and every
  // outcome recorded with it; pair with the oracle's WrapEcho handler on the
  // server and check oracle.Finish().clean() after the run.
  static ChaosResult RunChaos(Internet& net, Kernel& client_kernel, const CallFn& call,
                              AmoOracle& oracle, const ChaosSpec& spec);
};

}  // namespace xk

#endif  // XK_SRC_APP_WORKLOAD_H_
