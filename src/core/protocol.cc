#include "src/core/protocol.h"

#include "src/core/kernel.h"
#include "src/trace/trace.h"

namespace xk {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Protocol& owner, Protocol* hlp)
    : owner_(owner), hlp_(hlp), kernel_(owner.kernel()) {}

Session::~Session() = default;

Status Session::Push(Message& msg) {
  Kernel& k = kernel();
  ProtoCounters& c = owner_.counters();
  ++c.msgs_out;
  c.bytes_out += msg.length();
  TraceSpan span(k.trace_sink(), k, TraceOp::kPush, owner_, this, &msg);
  k.ChargeLayerCross();
  return span.Finish(DoPush(msg));
}

Status Session::Pop(Message& msg, Session* lls) {
  Kernel& k = kernel();
  TraceSpan span(k.trace_sink(), k, TraceOp::kPop, owner_, this, &msg);
  return span.Finish(DoPop(msg, lls));
}

Status Session::Control(ControlOp op, ControlArgs& args) {
  kernel().ChargeProcCall();
  Status s = DoControl(op, args);
  if (s.code() == StatusCode::kUnsupported && lower_for_control() != nullptr) {
    return lower_for_control()->Control(op, args);
  }
  return s;
}

Status Session::DoControl(ControlOp op, ControlArgs& args) {
  (void)op;
  (void)args;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Session::DeliverUp(Message& msg) {
  if (hlp_ == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  return hlp_->Demux(this, msg);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

Protocol::Protocol(Kernel& kernel, std::string name, std::vector<Protocol*> lowers)
    : kernel_(kernel), name_(std::move(name)), lowers_(std::move(lowers)) {}

Protocol::~Protocol() = default;

Result<SessionRef> Protocol::Open(Protocol& hlp, const ParticipantSet& parts) {
  ++counters_.opens;
  TraceSpan span(kernel_.trace_sink(), kernel_, TraceOp::kOpen, *this, nullptr, nullptr);
  kernel_.ChargeProcCall();
  Result<SessionRef> r = DoOpen(hlp, parts);
  (void)span.Finish(r.ok() ? OkStatus() : r.status());
  return r;
}

void Protocol::OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) {
  done(Open(hlp, parts));
}

Status Protocol::OpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  ++counters_.open_enables;
  kernel_.ChargeProcCall();
  return DoOpenEnable(hlp, parts);
}

Status Protocol::OpenDisable(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::Demux(Session* lls, Message& msg) {
  ++counters_.msgs_in;
  counters_.bytes_in += msg.length();
  TraceSpan span(kernel_.trace_sink(), kernel_, TraceOp::kDemux, *this, lls, &msg);
  kernel_.ChargeLayerCross();
  Status s = DoDemux(lls, msg);
  if (!s.ok()) {
    ++counters_.demux_drops;
  }
  return span.Finish(s);
}

Status Protocol::OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) {
  (void)llp;
  (void)lls;
  (void)parts;
  return OkStatus();
}

void Protocol::SessionError(Session& lls, Status error) {
  (void)lls;
  (void)error;
}

Status Protocol::Control(ControlOp op, ControlArgs& args) {
  kernel_.ChargeProcCall();
  Status s = DoControl(op, args);
  if (s.code() == StatusCode::kUnsupported && lower(0) != nullptr) {
    return lower(0)->Control(op, args);
  }
  return s;
}

Result<SessionRef> Protocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  (void)hlp;
  (void)parts;
  return ErrStatus(StatusCode::kUnsupported);
}

Status Protocol::DoControl(ControlOp op, ControlArgs& args) {
  (void)op;
  (void)args;
  return ErrStatus(StatusCode::kUnsupported);
}

void Protocol::ExportCounters(const CounterEmit& emit) const {
  emit("msgs_out", counters_.msgs_out);
  emit("bytes_out", counters_.bytes_out);
  emit("msgs_in", counters_.msgs_in);
  emit("bytes_in", counters_.bytes_in);
  emit("opens", counters_.opens);
  emit("open_enables", counters_.open_enables);
  emit("demux_drops", counters_.demux_drops);
  emit("map_hits", counters_.map_hits);
  emit("map_misses", counters_.map_misses);
}

// ---------------------------------------------------------------------------
// Control helpers
// ---------------------------------------------------------------------------

Result<uint64_t> CtlGetU64(Protocol& p, ControlOp op) {
  ControlArgs args;
  Status s = p.Control(op, args);
  if (!s.ok()) {
    return s;
  }
  return args.u64;
}

Result<uint64_t> CtlGetU64(Session& s, ControlOp op) {
  ControlArgs args;
  Status st = s.Control(op, args);
  if (!st.ok()) {
    return st;
  }
  return args.u64;
}

Result<IpAddr> CtlGetIp(Session& s, ControlOp op) {
  ControlArgs args;
  Status st = s.Control(op, args);
  if (!st.ok()) {
    return st;
  }
  return args.ip;
}

}  // namespace xk
