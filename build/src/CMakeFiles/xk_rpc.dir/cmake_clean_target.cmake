file(REMOVE_RECURSE
  "libxk_rpc.a"
)
