// xktrace: analyze trace JSONL files written by the --trace= bench flag.
//
// Default mode prints a per-layer breakdown -- one row per (host, protocol,
// op) with span counts and exclusive CPU cost -- plus an estimated per-call
// latency derived purely from the observed spans and wire records. This is
// the Table III methodology applied to a trace instead of a benchmark: run
// the same workload at successive protocol depths, and the per-call deltas
// are the incremental layer costs.
//
//   xktrace TRACE.jsonl [--calls=N] [--json]
//   xktrace --layer-costs TRACE0.jsonl TRACE1.jsonl ...
//
// --layer-costs treats the traces as a depth sweep (shallowest first) and
// prints each trace's per-call latency and the delta from the previous one.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/tools/trace_reader.h"

namespace {

using xk::tracetool::Analyze;
using xk::tracetool::Breakdown;
using xk::tracetool::Load;
using xk::tracetool::TraceFile;

int Usage() {
  std::fprintf(stderr,
               "usage: xktrace TRACE.jsonl [--calls=N] [--json]\n"
               "       xktrace --layer-costs TRACE0.jsonl TRACE1.jsonl ...\n");
  return 2;
}

void PrintBreakdownText(const std::string& path, const TraceFile& tf, const Breakdown& b) {
  std::printf("%s: %zu spans, %zu wire records, %zu logs", path.c_str(), tf.spans.size(),
              tf.wires.size(), tf.logs.size());
  if (tf.dropped > 0) {
    std::printf(" (%" PRIu64 " dropped at capacity)", tf.dropped);
  }
  std::printf("\n\n");
  std::printf("%-10s %-10s %-6s %10s %14s %14s\n", "host", "proto", "op", "count", "excl_us",
              "us/call");
  const double calls = static_cast<double>(b.calls);
  for (const auto& l : b.layers) {
    std::printf("%-10s %-10s %-6s %10" PRIu64 " %14.3f %14.3f\n", l.host.c_str(),
                l.proto.c_str(), l.op.c_str(), l.count,
                static_cast<double>(l.excl_total) / 1000.0,
                static_cast<double>(l.excl_total) / 1000.0 / calls);
  }
  if (!b.segments.empty()) {
    std::printf("\n%-8s %10s %12s %12s %8s %8s %10s %10s %12s %12s\n", "segment", "frames",
                "bytes", "busy_us", "util_%", "queued", "peak_qd", "mean_qd", "wait_us",
                "max_wait_us");
    const double elapsed = static_cast<double>(b.elapsed());
    for (const auto& s : b.segments) {
      const double util =
          elapsed > 0 ? 100.0 * static_cast<double>(s.busy) / elapsed : 0.0;
      const double mean_qd =
          s.frames > 0 ? static_cast<double>(s.depth_sum) / static_cast<double>(s.frames) : 0.0;
      std::printf("%-8" PRId64 " %10" PRIu64 " %12" PRIu64 " %12.3f %8.2f %8" PRIu64
                  " %10" PRIu64 " %10.3f %12.3f %12.3f\n",
                  s.seg, s.frames, s.bytes, static_cast<double>(s.busy) / 1000.0, util,
                  s.queued, s.peak_depth, mean_qd, static_cast<double>(s.wait_total) / 1000.0,
                  static_cast<double>(s.wait_max) / 1000.0);
    }
  }
  if (!b.routers.empty()) {
    std::printf("\n%-10s %10s %10s %14s\n", "router", "forwards", "ttl_drops", "no_route_drops");
    for (const auto& rt : b.routers) {
      std::printf("%-10s %10" PRIu64 " %10" PRIu64 " %14" PRIu64 "\n", rt.host.c_str(),
                  rt.forwards, rt.ttl_drops, rt.no_route_drops);
    }
  }
  std::printf("\n");
  std::printf("calls:        %" PRIu64 " (inferred as min push count per layer)\n", b.calls);
  std::printf("cpu total:    %.3f us (%.3f us per-call)\n",
              static_cast<double>(b.cpu_total) / 1000.0,
              static_cast<double>(b.cpu_total) / 1000.0 / calls);
  std::printf("wire total:   %.3f us (%.3f us per-call)\n",
              static_cast<double>(b.wire_total) / 1000.0,
              static_cast<double>(b.wire_total) / 1000.0 / calls);
  std::printf("propagation:  %.3f us (%.3f us per-call)\n",
              static_cast<double>(b.prop_total) / 1000.0,
              static_cast<double>(b.prop_total) / 1000.0 / calls);
  const int64_t overlap = b.cpu_total + b.wire_total + b.prop_total - b.elapsed();
  std::printf("elapsed:      %.3f us (cpu/wire overlap %.3f us)\n",
              static_cast<double>(b.elapsed()) / 1000.0, static_cast<double>(overlap) / 1000.0);
  std::printf("estimated per-call latency: %.3f us (%.4f ms)\n", b.PerCallUsec(),
              b.PerCallUsec() / 1000.0);
}

void PrintBreakdownJson(const TraceFile& tf, const Breakdown& b) {
  std::printf("{\"spans\":%zu,\"wires\":%zu,\"logs\":%zu,\"dropped\":%" PRIu64
              ",\"calls\":%" PRIu64 ",\"cpu_ns\":%" PRId64 ",\"wire_ns\":%" PRId64
              ",\"prop_ns\":%" PRId64 ",\"elapsed_ns\":%" PRId64
              ",\"per_call_us\":%.3f,\"layers\":[",
              tf.spans.size(), tf.wires.size(), tf.logs.size(), tf.dropped, b.calls,
              b.cpu_total, b.wire_total, b.prop_total, b.elapsed(), b.PerCallUsec());
  bool first = true;
  for (const auto& l : b.layers) {
    std::printf("%s{\"host\":\"%s\",\"proto\":\"%s\",\"op\":\"%s\",\"count\":%" PRIu64
                ",\"excl_ns\":%" PRId64 "}",
                first ? "" : ",", l.host.c_str(), l.proto.c_str(), l.op.c_str(), l.count,
                l.excl_total);
    first = false;
  }
  std::printf("],\"segments\":[");
  first = true;
  for (const auto& s : b.segments) {
    std::printf("%s{\"segment\":%" PRId64 ",\"frames\":%" PRIu64 ",\"bytes\":%" PRIu64
                ",\"busy_ns\":%" PRId64 ",\"queued\":%" PRIu64 ",\"peak_queue_depth\":%" PRIu64
                ",\"queue_depth_sum\":%" PRIu64 ",\"wait_total_ns\":%" PRId64
                ",\"wait_max_ns\":%" PRId64 "}",
                first ? "" : ",", s.seg, s.frames, s.bytes, s.busy, s.queued, s.peak_depth,
                s.depth_sum, s.wait_total, s.wait_max);
    first = false;
  }
  std::printf("],\"routers\":[");
  first = true;
  for (const auto& rt : b.routers) {
    std::printf("%s{\"host\":\"%s\",\"forwards\":%" PRIu64 ",\"ttl_drops\":%" PRIu64
                ",\"no_route_drops\":%" PRIu64 "}",
                first ? "" : ",", rt.host.c_str(), rt.forwards, rt.ttl_drops, rt.no_route_drops);
    first = false;
  }
  std::printf("]}\n");
}

int RunLayerCosts(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Usage();
  }
  std::printf("%-40s %10s %14s %14s\n", "trace", "calls", "per-call_us", "delta_us");
  double prev = 0.0;
  bool have_prev = false;
  for (const std::string& path : paths) {
    const TraceFile tf = Load(path);
    if (tf.spans.empty()) {
      std::fprintf(stderr, "xktrace: %s has no spans\n", path.c_str());
      return 1;
    }
    const Breakdown b = Analyze(tf);
    const double us = b.PerCallUsec();
    if (have_prev) {
      std::printf("%-40s %10" PRIu64 " %14.3f %14.3f\n", path.c_str(), b.calls, us, us - prev);
    } else {
      std::printf("%-40s %10" PRIu64 " %14.3f %14s\n", path.c_str(), b.calls, us, "-");
    }
    prev = us;
    have_prev = true;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool json = false;
  bool layer_costs = false;
  uint64_t forced_calls = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--layer-costs") == 0) {
      layer_costs = true;
    } else if (std::strncmp(a, "--calls=", 8) == 0) {
      forced_calls = std::strtoull(a + 8, nullptr, 10);
    } else if (a[0] == '-') {
      return Usage();
    } else {
      paths.emplace_back(a);
    }
  }
  if (layer_costs) {
    return RunLayerCosts(paths);
  }
  if (paths.size() != 1) {
    return Usage();
  }
  const TraceFile tf = Load(paths[0]);
  if (tf.spans.empty() && tf.wires.empty() && tf.logs.empty()) {
    std::fprintf(stderr, "xktrace: %s is empty or unreadable\n", paths[0].c_str());
    return 1;
  }
  const Breakdown b = Analyze(tf, forced_calls);
  if (json) {
    PrintBreakdownJson(tf, b);
  } else {
    PrintBreakdownText(paths[0], tf, b);
  }
  return 0;
}
