file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_sweep.dir/bench_throughput_sweep.cc.o"
  "CMakeFiles/bench_throughput_sweep.dir/bench_throughput_sweep.cc.o.d"
  "bench_throughput_sweep"
  "bench_throughput_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
