// Tests for the Internet checksum tool.

#include "src/tools/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace xk {
namespace {

TEST(ChecksumTest, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum 0x220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ComputeChecksum(data), 0x220d);
}

TEST(ChecksumTest, OddLength) {
  const uint8_t data[] = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(ComputeChecksum(data), 0xFBFD);
}

TEST(ChecksumTest, VerifyingIncludesChecksumYieldsZeroComplement) {
  std::vector<uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00,
                               0x00, 0x40, 0x11, 0x00, 0x00, 10,   0,
                               0,    1,    10,   0,    0,    2};
  const uint16_t cks = ComputeChecksum(data);
  data[10] = static_cast<uint8_t>(cks >> 8);
  data[11] = static_cast<uint8_t>(cks);
  // Re-summing with the checksum in place folds to 0xFFFF, so the complement
  // is 0 -- which Finalize reports as 0xFFFF under the never-zero rule.
  EXPECT_EQ(ComputeChecksum(data), 0xFFFF);
}

TEST(ChecksumTest, SplitAddsEqualSingleAdd) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 99; ++i) {
    data.push_back(static_cast<uint8_t>(i * 7));
  }
  InternetChecksum split;
  split.Add(std::span<const uint8_t>(data.data(), 33));
  split.Add(std::span<const uint8_t>(data.data() + 33, 20));
  split.Add(std::span<const uint8_t>(data.data() + 53, 46));
  EXPECT_EQ(split.Finalize(), ComputeChecksum(data));
}

TEST(ChecksumTest, OddSplitBoundariesCarryCorrectly) {
  // Splitting at odd offsets must pair bytes across Add calls.
  std::vector<uint8_t> data = {1, 2, 3, 4, 5, 6, 7};
  InternetChecksum split;
  split.Add(std::span<const uint8_t>(data.data(), 1));
  split.Add(std::span<const uint8_t>(data.data() + 1, 3));
  split.Add(std::span<const uint8_t>(data.data() + 4, 3));
  EXPECT_EQ(split.Finalize(), ComputeChecksum(data));
}

TEST(ChecksumTest, U16AndU32Helpers) {
  InternetChecksum a;
  a.AddU32(0x01020304);
  a.AddU16(0x0506);
  const uint8_t raw[] = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(a.Finalize(), ComputeChecksum(raw));
}

TEST(ChecksumTest, NeverReturnsZero) {
  // All-0xFF data sums to 0xFFFF -> complement 0 -> reported as 0xFFFF.
  std::vector<uint8_t> data(10, 0xFF);
  EXPECT_EQ(ComputeChecksum(data), 0xFFFF);
}

TEST(ChecksumTest, EmptyInput) {
  EXPECT_EQ(ComputeChecksum({}), 0xFFFF);
}

}  // namespace
}  // namespace xk
