// VPOOL: a load-spreading virtual protocol (the paper's VIP technique pointed
// at replicas instead of routes).
//
// VIP demonstrates that a header-less virtual protocol can make a ROUTING
// decision -- ethernet or IP -- for the cost of a single test at push time.
// VPOOL makes a REPLICA decision the same way: it binds one virtual service
// address to a pool of N replica server stacks, and each push picks a replica
// through a pluggable deterministic policy, then rides the cached lower
// session (SELECT or any (host, command)-addressed RPC protocol) toward it.
// Like every virtual protocol it adds no header: replies demultiplex back by
// lower-session identity alone.
//
// Health: a replica is marked down when an open toward it fails or when a
// call through it errors asynchronously (CHANNEL retransmissions exhausted --
// how a crashed host manifests to its clients). Down replicas are skipped by
// every policy and readmitted on probation after `readmit_after`; a replica
// that is still dead just fails its next probe call and is marked down again.
// Per-replica balance and failover counters export through the standard
// ExportCounters/ExportGauges observability hooks.
//
// Sessions are slab-pooled and idle-tracked (the session class precedes the
// protocol so the pool member sees a complete type). Eviction reuses the same
// flush path kFlushSessions exposes to clients: a VPOOL session with nothing
// in flight drops its cached lower sessions and its command binding; one with
// a call outstanding -- or one still referenced by a client cache -- refuses.

#ifndef XK_SRC_CLUSTER_VPOOL_H_
#define XK_SRC_CLUSTER_VPOOL_H_

#include <map>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/sim/slab_pool.h"

namespace xk {

class VpoolProtocol;

// How VPOOL spreads calls over the up replicas.
enum class VpoolPolicy : uint8_t {
  kRoundRobin,        // strict rotation; exact balance when all replicas are up
  kWeighted,          // smooth weighted round-robin over the bound weights
  kLeastOutstanding,  // fewest calls in flight, lowest index on ties
  kHashAffinity,      // consistent-hash ring keyed per session (client, command)
};

const char* VpoolPolicyName(VpoolPolicy policy);

class VpoolSession final : public Session {
 public:
  VpoolSession(VpoolProtocol& owner, Protocol* hlp, uint16_t command, uint64_t affinity_key);

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override;
  bool CanEvict() const override;  // false while any lower has a call in flight

 private:
  friend class VpoolProtocol;

  // The cached lower session toward replica `idx`, opened on first use.
  Result<SessionRef> LowerFor(int idx);

  VpoolProtocol& pool_;
  uint16_t command_;
  uint64_t affinity_key_;
  std::vector<SessionRef> lowers_;  // per replica; null until first routed call
};

class VpoolProtocol final : public Protocol {
 public:
  // `rpc` is the real procedure-addressed protocol below (normally SELECT).
  VpoolProtocol(Kernel& kernel, Protocol* rpc, std::string name = "vpool");

  // Binds the virtual service address to its replica pool. `weights` applies
  // to kWeighted (empty = all 1). One service per VPOOL instance: opens for
  // any other peer host pass through to `rpc` untouched.
  void BindService(IpAddr vip, std::vector<IpAddr> replicas, VpoolPolicy policy,
                   std::vector<uint32_t> weights = {});

  // Probation delay before a down replica is tried again (0 = never readmit).
  void set_readmit_after(SimTime t) { readmit_after_ = t; }

  // Brownout cap (also ControlOp::kSetConcurrencyCap): a replica with this
  // many calls outstanding is skipped by every policy; when every up replica
  // is at its cap the push fails fast with BUSY -- client-side load shedding
  // before any wire traffic. 0 = uncapped (the default).
  void set_concurrency_cap(uint32_t cap) { concurrency_cap_ = cap; }

  // Circuit breaker (also ControlOp::kSetBreaker): once a replica has seen
  // `min_volume` outcomes since its window last reset, a bad-outcome ratio at
  // or above `trip_ppm` trips the breaker -- the replica is marked down and
  // the existing readmit probation doubles as the probe-before-readmit path.
  // Overload signals (BUSY, DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED) feed the
  // breaker; hard failures (timeout, unreachable) still mark down at once.
  // min_volume 0 = breaker off (the default).
  void set_breaker(uint32_t min_volume, uint32_t trip_ppm) {
    breaker_min_volume_ = min_volume;
    breaker_trip_ppm_ = trip_ppm;
  }

  IpAddr service_addr() const { return vip_; }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  bool replica_up(int i) const { return replicas_[static_cast<size_t>(i)].up; }
  uint64_t replica_calls(int i) const { return replicas_[static_cast<size_t>(i)].calls; }
  uint64_t replica_errors(int i) const { return replicas_[static_cast<size_t>(i)].errors; }
  uint64_t replica_outstanding(int i) const {
    return replicas_[static_cast<size_t>(i)].outstanding;
  }
  uint64_t down_marks() const { return down_marks_; }
  uint64_t readmits() const { return readmits_; }
  uint64_t rerouted_opens() const { return rerouted_opens_; }
  uint64_t all_down_failures() const { return all_down_failures_; }
  uint64_t session_flushes() const { return session_flushes_; }
  uint64_t capped_rejects() const { return capped_rejects_; }
  uint64_t breaker_trips() const { return breaker_trips_; }

  // Live VpoolSessions (slab-pooled).
  size_t live_sessions() const { return sessions_.live(); }

  void SessionError(Session& lls, Status error) override;
  void SessionCallError(Session& lls, Status error, const Message* request) override;
  void ExportCounters(const CounterEmit& emit) const override;
  void ExportGauges(const CounterEmit& emit) const override;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  bool EvictSession(Session& s) override;

 private:
  friend class VpoolSession;

  struct Replica {
    IpAddr addr{};
    uint32_t weight = 1;
    bool up = true;
    int64_t wrr_current = 0;  // smooth-WRR running credit
    uint64_t calls = 0;       // calls routed here (client-side ground truth)
    uint64_t errors = 0;      // open failures + asynchronous call errors
    uint64_t outstanding = 0; // in flight now (least-outstanding input)
    uint64_t window_calls = 0;  // breaker window: outcomes since last reset
    uint64_t window_bad = 0;    // breaker window: overload outcomes
    EventHandle readmit_timer;
  };

  // Picks a pickable replica per the bound policy; -1 when none qualifies.
  // `avoid` (a replica index, -1 = none) is excluded -- the hedging path uses
  // it to force the second attempt onto a different backend.
  int PickUp(uint64_t affinity_key, int avoid = -1);
  // Up, not the avoided index, and under the concurrency cap.
  bool Pickable(size_t idx, int avoid) const;
  void MarkDown(int idx);
  void Readmit(int idx);
  // Feeds one call outcome into the breaker window; trips it when the bad
  // ratio crosses the threshold at sufficient volume.
  void RecordOutcome(int idx, bool bad);

  // Drops `vs`'s cached lower sessions that have nothing in flight (the
  // kFlushSessions body; idle eviction reuses it). Returns sessions dropped.
  uint64_t FlushLowers(VpoolSession& vs);

  Protocol* rpc_;
  IpAddr vip_{};
  VpoolPolicy policy_ = VpoolPolicy::kRoundRobin;
  SimTime readmit_after_ = Msec(200);
  std::vector<Replica> replicas_;
  // Consistent-hash ring: kVnodesPerReplica points per replica, sorted.
  std::vector<std::pair<uint64_t, int>> ring_;
  size_t rr_next_ = 0;
  uint32_t concurrency_cap_ = 0;     // per-replica outstanding bound (0 = off)
  uint32_t breaker_min_volume_ = 0;  // outcomes before the breaker may trip
  uint32_t breaker_trip_ppm_ = 0;    // bad-outcome ratio that trips it
  int avoid_once_ = -1;              // one-shot exclusion (kSetAvoidReplica)
  int last_pick_ = -1;               // most recent successful pick (kGetLastPick)
  uint64_t capped_rejects_ = 0;      // pushes failed BUSY with all up replicas capped
  uint64_t breaker_trips_ = 0;
  uint64_t down_marks_ = 0;
  uint64_t readmits_ = 0;
  uint64_t rerouted_opens_ = 0;     // picks abandoned because the open failed
  uint64_t all_down_failures_ = 0;  // pushes failed with every replica down
  uint64_t session_flushes_ = 0;    // lower sessions dropped by flush/eviction
  uint64_t flush_skipped_busy_ = 0;

  SlabPool<VpoolSession> sessions_;
  DemuxMap<uint16_t> active_;              // command -> VPOOL session
  DemuxMap<Session*, SessionRef> by_lls_;  // lower session -> VPOOL session
  std::map<Session*, int> lls_replica_;    // lower session -> replica index
  std::map<Session*, uint64_t> lls_inflight_;  // flush guard (host bookkeeping)
};

}  // namespace xk

#endif  // XK_SRC_CLUSTER_VPOOL_H_
