// ClusterClient: an RPC client anchor for replicated pools.
//
// RpcClient pairs completions FIFO per session, which is correct when every
// reply returns in issue order. Through VPOOL that no longer holds: calls on
// one session fan out over several replicas (and several CHANNEL channels per
// replica), so replies complete out of order. ClusterClient therefore pairs
// replies by the 8-byte big-endian call id at the head of every oracle-format
// request/reply (AmoOracle::MakeRequest layout) instead of by queue position.
//
// Errors carry no reply bytes, so an asynchronous SessionError completes the
// OLDEST (smallest-id) outstanding call -- CHANNEL surfaces errors per call in
// issue order. A reply for an id that already failed that way is counted in
// `late_replies` and dropped; at-most-once stays observable because failure
// outcomes need no echo match.

#ifndef XK_SRC_CLUSTER_CLIENT_H_
#define XK_SRC_CLUSTER_CLIENT_H_

#include <map>
#include <utility>

#include "src/app/anchor.h"
#include "src/core/kernel.h"
#include "src/core/protocol.h"

namespace xk {

class ClusterClient : public Protocol {
 public:
  // `rpc` is whatever addresses procedures with (host, command) -- normally a
  // VpoolProtocol, but any SELECT-shaped protocol works.
  ClusterClient(Kernel& kernel, Protocol* rpc, std::string name = "cluclient");

  // Invokes `command` at `service` (a VPOOL virtual address or a real host).
  // `args` must be in oracle format: its first 8 bytes are `id`, big-endian.
  // Must be called from within a task.
  void Call(IpAddr service, uint16_t command, uint64_t id, Message args, RpcDone done);

  // Connection churn: drops the cached session for (service, command) and
  // asks it to flush its idle lower sessions first.
  void Evict(IpAddr service, uint16_t command);

  void set_app_cost(SimTime t) { app_cost_ = t; }
  void set_max_send_size(uint64_t n) { max_send_size_ = n; }

  uint64_t calls_completed() const { return calls_completed_; }
  uint64_t calls_failed() const { return calls_failed_; }
  uint64_t late_replies() const { return late_replies_; }

  void ExportCounters(const CounterEmit& emit) const override;
  void ExportGauges(const CounterEmit& emit) const override;
  void SessionError(Session& lls, Status error) override;

 protected:
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  Protocol* rpc_;
  SimTime app_cost_ = Usec(45);
  uint64_t max_send_size_ = UINT64_MAX;
  std::map<std::pair<IpAddr, uint16_t>, SessionRef> session_cache_;
  // Ordered by id within each session, so "oldest outstanding" = begin().
  std::map<Session*, std::map<uint64_t, RpcDone>> outstanding_;
  uint64_t calls_completed_ = 0;
  uint64_t calls_failed_ = 0;
  uint64_t late_replies_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_CLUSTER_CLIENT_H_
