// Deterministic discrete-event core.
//
// The EventQueue is the single clock of a simulation: every kernel, link, and
// timer in one experiment shares one queue. Events scheduled for the same
// instant fire in schedule order (a monotonically increasing sequence number
// breaks ties), which makes every run bit-for-bit reproducible.

#ifndef XK_SRC_SIM_EVENT_QUEUE_H_
#define XK_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/core/types.h"

namespace xk {

// Handle used to cancel a pending event. Cancellation marks the event dead;
// the queue skips dead events when they surface.
class EventHandle {
 public:
  EventHandle() = default;

  // True if the event has neither fired nor been cancelled.
  bool pending() const { return state_ != nullptr && !*state_; }

  // Cancels the event if still pending. Returns true if it was pending.
  bool Cancel() {
    if (!pending()) {
      return false;
    }
    *state_ = true;
    return true;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // *state_ == true means dead
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Advances only inside Run()/RunUntil().
  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to now()).
  EventHandle ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  EventHandle ScheduleIn(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Runs events until the queue is empty or `max_events` have fired.
  // Returns the number of events fired.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with firing time <= deadline. The clock is left at
  // min(deadline, time of last event) -- callers that want the clock pinned
  // to the deadline should use AdvanceTo afterwards.
  size_t RunUntil(SimTime deadline);

  // Moves the clock forward without running anything (asserts no earlier
  // pending events exist; used by test harnesses between phases).
  void AdvanceTo(SimTime t);

  // Note: a cancelled event is counted until it drains through Run/RunUntil,
  // so these are upper bounds immediately after a Cancel().
  bool empty() const { return live_count_ == 0; }
  size_t pending_events() const { return live_count_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> dead;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  bool PopNext(Event& out);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace xk

#endif  // XK_SRC_SIM_EVENT_QUEUE_H_
