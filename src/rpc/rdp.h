// RDP: a reliable datagram protocol built on CHANNEL.
//
// The paper notes that once CHANNEL exists as an independent protocol "it is
// trivial to build a reliable datagram protocol on top of CHANNEL" -- this is
// that protocol. A datagram is a channel call whose reply is empty: the
// caller gets at-most-once, acknowledged delivery; the receiver's anchor sees
// a plain one-way datagram (the empty reply is generated here and never shown
// to either application).

#ifndef XK_SRC_RPC_RDP_H_
#define XK_SRC_RPC_RDP_H_

#include <map>
#include <memory>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/tools/semaphore.h"

namespace xk {

class RdpProtocol : public Protocol {
 public:
  static constexpr int kNumChannels = 4;

  // `lower` is CHANNEL.
  RdpProtocol(Kernel& kernel, Protocol* lower, std::string name = "rdp");

  void SessionError(Session& lls, Status error) override;

  struct Stats {
    uint64_t datagrams_sent = 0;
    uint64_t datagrams_delivered = 0;
    uint64_t send_failures = 0;
  };
  const Stats& stats() const { return stats_; }

  // Also surfaces the retransmission machinery of the CHANNEL below
  // (retransmits/timeouts), matching CHANNEL's stats surface.
  void ExportCounters(const CounterEmit& emit) const override;

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  friend class RdpSession;
  struct Pool {
    std::vector<SessionRef> channels;
    std::vector<bool> busy;
    std::unique_ptr<XSemaphore> available;
  };
  Result<Pool*> PoolFor(IpAddr peer);
  void ReleaseChannelFor(Session* channel);

  DemuxMap<IpAddr> active_;
  Protocol* enabled_hlp_ = nullptr;
  std::map<IpAddr, Pool> pools_;
  DemuxMap<Session*, SessionRef> sends_;  // busy channel -> rdp session
  Stats stats_;
};

class RdpSession : public Session {
 public:
  RdpSession(RdpProtocol& owner, Protocol* hlp, IpAddr peer);

  IpAddr peer() const { return peer_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  RdpProtocol& rdp_;
  IpAddr peer_;
};

}  // namespace xk

#endif  // XK_SRC_RPC_RDP_H_
