# Empty compiler generated dependencies file for bench_sec43_dynamic_removal.
# This may be replaced when dependencies are built.
