file(REMOVE_RECURSE
  "CMakeFiles/bench_udp_crosskernel.dir/bench_udp_crosskernel.cc.o"
  "CMakeFiles/bench_udp_crosskernel.dir/bench_udp_crosskernel.cc.o.d"
  "bench_udp_crosskernel"
  "bench_udp_crosskernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_udp_crosskernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
