// VIP locality (paper, Section 3.1): one distributed system, two distances.
//
// A client talks to two servers running the identical M_RPC-VIP stack: one on
// its own Ethernet, one across a router. VIP decides per destination at open
// time -- raw Ethernet for the local server, IP for the remote one -- so the
// local calls pay no internet tax, and nothing in the RPC code knows the
// difference. This is exactly the Sprite problem that motivated virtual
// protocols: "inserting IP between Sprite RPC and the ethernet automatically
// implies a 21% performance penalty" for hosts that never needed it.

#include <cstdio>

#include "src/app/anchor.h"
#include "src/app/stacks.h"
#include "src/app/workload.h"
#include "src/proto/topology.h"

using namespace xk;

namespace {
constexpr uint16_t kCmd = 1;
}  // namespace

int main() {
  // Topology: client + local server on segment A; remote server on segment B
  // behind a router.
  auto net = std::make_unique<Internet>();
  const int seg_a = net->AddSegment();
  const int seg_b = net->AddSegment();
  net->AddHost("client", seg_a, IpAddr(10, 0, 1, 1));
  net->AddHost("local", seg_a, IpAddr(10, 0, 1, 2));
  net->AddHost("remote", seg_b, IpAddr(10, 0, 2, 1));
  net->AddRouter("router", {{seg_a, IpAddr(10, 0, 1, 254)}, {seg_b, IpAddr(10, 0, 2, 254)}});
  net->WarmArp();
  net->SetDefaultGateway("client", IpAddr(10, 0, 1, 254));
  net->SetDefaultGateway("remote", IpAddr(10, 0, 2, 254));

  HostStack& ch = net->host("client");
  RpcStack cstack = BuildMRpc(ch, Delivery::kVip);
  RpcClient* client = nullptr;
  ch.kernel->RunTask(0, [&] { client = &ch.kernel->Emplace<RpcClient>(*ch.kernel, cstack.top); });

  for (const char* name : {"local", "remote"}) {
    HostStack& sh = net->host(name);
    RpcStack sstack = BuildMRpc(sh, Delivery::kVip);
    sh.kernel->RunTask(0, [&] {
      auto& server = sh.kernel->Emplace<RpcServer>(*sh.kernel, sstack.top);
      (void)server.Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
    });
  }

  for (const char* name : {"local", "remote"}) {
    HostStack& sh = net->host(name);
    CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
      client->Call(sh.kernel->ip_addr(), kCmd, std::move(args), std::move(done));
    };
    LatencyResult lat = RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 32);
    std::printf("%-8s server: %6.2f ms null-call round trip\n", name, ToMsec(lat.per_call));
  }

  // Show what VIP decided: IP datagrams only flowed for the remote server.
  std::printf("\nclient IP datagrams sent: %lu (remote traffic only)\n",
              static_cast<unsigned long>(ch.ip->stats().datagrams_sent));
  std::printf("router forwards:          %lu\n",
              static_cast<unsigned long>(net->host("router").ip->stats().forwards));
  std::printf("\nSame RPC code, same VIP; the local path never paid for IP.\n");
  return 0;
}
