// Causal call-flow stitching: per-call critical-path attribution built from
// the trace streams the simulator already emits (src/trace/trace.h).
//
// A datacenter call crosses many hosts: the client stack pushes it, the core
// router forwards it, a VPOOL replica executes it, and the reply walks the
// same path back -- possibly several times when CHANNEL retransmits. Each of
// those steps already leaves a record: spans carry message/session trace ids,
// wire records carry the frame's message id, and the cluster tier emits point
// events (issue/done/exec, retransmit, pick/reroute, replica down/readmit)
// bound to the oracle call id. Nothing here touches the simulation: the
// stitcher is a pure observer-side join over one parsed trace file.
//
// Correlation model:
//   * kIssue binds the oracle call id to the request message's trace id and
//     to the scheduled arrival time; kDone closes the call at the client.
//   * Message copies keep their trace id, so the retransmitted request, the
//     single-fragment FRAGMENT piece, the router's forwarded datagram, and
//     the echoed reply all read as ONE message id end to end; the frame
//     carries the id across the wire (EthFrame::trace_msg_id), and the
//     receive path inherits it.
//   * Every span and wire record whose message id belongs to a call becomes
//     an interval of that call's lifetime; point events mark the attempt
//     boundaries and routing decisions.
//
// Attribution: the call's wall-clock [issue, done] is swept once; each
// elementary slice is charged to the highest-priority activity covering it
// (cpu > nic queue > wire > propagation), and uncovered gaps become either
// retry backoff (the slice ends at a retransmission) or scheduling/host wait.
// The per-category sums therefore reconstruct the RTT *exactly* -- the same
// number the benchmark histogram recorded -- which is what the xkflow check
// in scripts/check.sh verifies against the bench JSON.

#ifndef XK_SRC_TRACE_CAUSAL_H_
#define XK_SRC_TRACE_CAUSAL_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/tools/trace_reader.h"

namespace xk::causal {

// Where a slice of a call's wall-clock went. Order is the sweep's priority
// (earlier categories win when activities overlap).
enum Category : int {
  kClientCpu = 0,  // spans on the issuing host
  kServerCpu,      // spans on a host that executed the call
  kRouterCpu,      // spans on any other host (forwarding path)
  kQueue,          // frame waiting for the bus behind other frames
  kWire,           // frame serializing onto the wire
  kProp,           // signal propagation
  kBackoff,        // idle, waiting for CHANNEL's retransmit timer
  kSched,          // idle, waiting for host CPU / event scheduling
  kNumCategories,
};

const char* CategoryName(Category c);

// One frame transmission carrying one of the call's messages.
struct Hop {
  int64_t seg = 0;
  int64_t t0 = 0;
  int64_t t1 = 0;
  int64_t arrive = 0;
  int64_t qwait = 0;
  uint64_t len = 0;
  uint64_t msg = 0;
};

// One transmission attempt: the initial send, or a CHANNEL retransmission
// classified by what it was recovering from.
struct Attempt {
  int64_t t = 0;      // when the attempt started (issue time or rexmit event)
  int retry = 0;      // 0 = first attempt
  std::string cause;  // "first"|"crash"|"reroute"|"corruption"|"drop"|"timeout"
};

// One attributed span of the call's wall-clock; a call's slices partition
// [issue, done] exactly.
struct Slice {
  int64_t t0 = 0;
  int64_t t1 = 0;
  Category cat = kSched;
  std::string label;  // cpu: "host;proto"; queue/wire/prop: "segN"; backoff: cause
};

struct CallFlow {
  uint64_t id = 0;  // oracle call id
  std::string client;
  std::string server;  // host of the (last) exec event; empty if never executed
  std::string status;  // kDone outcome ("ok", "timeout", ...)
  int64_t issue_t = 0;
  int64_t done_t = 0;
  bool completed = false;  // saw kDone (success or failure, either way settled)
  int64_t exec_t = -1;     // last server execution time (-1 = none)
  int replica = -1;        // last VPOOL pick (-1 = none seen)
  int reroutes = 0;
  bool hedged = false;     // a hedged second attempt was issued for this call
  // Overload verdict: the last shed / reject / budget_exhausted event bound to
  // this call. Failed calls carrying one get their otherwise-unattributed wait
  // labeled with it, so the causal graph closes on a cause instead of an
  // unbounded "sched_wait;wait".
  int64_t terminal_t = -1;
  std::string terminal;  // "shed" | "reject" | "budget_exhausted" | ""
  std::vector<uint64_t> msgs;  // message trace ids belonging to this call
  std::vector<Attempt> attempts;
  std::vector<Hop> hops;       // chronological
  std::vector<Slice> slices;   // chronological, covering [issue_t, done_t]
  std::array<int64_t, kNumCategories> ns{};  // per-category totals; sum == rtt()

  int64_t rtt() const { return done_t - issue_t; }
  Category critical() const;  // category with the largest share
};

struct FlowAnalysis {
  std::vector<CallFlow> calls;  // sorted by (issue time, id)
  uint64_t completed = 0;
  uint64_t failed = 0;
  std::array<int64_t, kNumCategories> total_ns{};
  std::array<uint64_t, kNumCategories> dominant_calls{};  // calls bounded by cat
  uint64_t retransmits = 0;
  std::map<std::string, uint64_t> retry_causes;
  std::map<int, uint64_t> replica_picks;
  uint64_t reroutes = 0;
  uint64_t replica_downs = 0;
  uint64_t replica_readmits = 0;
  uint64_t evictions = 0;
  uint64_t forwards = 0;
  uint64_t ttl_drops = 0;
  uint64_t no_route_drops = 0;
  uint64_t crashes = 0;
  uint64_t restarts = 0;
  // Overload-control events (server shed/reject, CHANNEL shed, VPOOL capped
  // reject, retry-budget giveups, hedging).
  uint64_t sheds = 0;
  uint64_t rejects = 0;
  uint64_t budget_exhausted = 0;
  uint64_t hedges = 0;
  uint64_t hedge_cancels = 0;

  double MeanRttNs() const;  // over settled calls; matches the bench histogram
};

// Builds the per-call causal graphs and attribution from one parsed trace.
FlowAnalysis Stitch(const tracetool::TraceFile& tf);

// JSONL: one meta line, one line per call, one aggregate line. Deterministic
// for a deterministic trace, so flow files join the byte-identity gates.
std::string ToFlowJsonl(const FlowAnalysis& fa);

// Flame-graph-compatible folded stacks: "call;<category>;<label> <ns>", one
// per line, sorted by stack. Feed straight into flamegraph.pl.
std::string ToFolded(const FlowAnalysis& fa);

}  // namespace xk::causal

#endif  // XK_SRC_TRACE_CAUSAL_H_
