
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/channel.cc" "src/CMakeFiles/xk_rpc.dir/rpc/channel.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/channel.cc.o.d"
  "/root/repo/src/rpc/fragment.cc" "src/CMakeFiles/xk_rpc.dir/rpc/fragment.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/fragment.cc.o.d"
  "/root/repo/src/rpc/rdp.cc" "src/CMakeFiles/xk_rpc.dir/rpc/rdp.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/rdp.cc.o.d"
  "/root/repo/src/rpc/select.cc" "src/CMakeFiles/xk_rpc.dir/rpc/select.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/select.cc.o.d"
  "/root/repo/src/rpc/select_fwd.cc" "src/CMakeFiles/xk_rpc.dir/rpc/select_fwd.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/select_fwd.cc.o.d"
  "/root/repo/src/rpc/sprite_rpc.cc" "src/CMakeFiles/xk_rpc.dir/rpc/sprite_rpc.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/sprite_rpc.cc.o.d"
  "/root/repo/src/rpc/sun/auth.cc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/auth.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/auth.cc.o.d"
  "/root/repo/src/rpc/sun/request_reply.cc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/request_reply.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/request_reply.cc.o.d"
  "/root/repo/src/rpc/sun/sun_select.cc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/sun_select.cc.o" "gcc" "src/CMakeFiles/xk_rpc.dir/rpc/sun/sun_select.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xk_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xk_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
