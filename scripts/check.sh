#!/usr/bin/env bash
# Full pre-merge check: the regular build + test suite, then an
# ASan+UBSan-instrumented build of the same tests as a memory-safety smoke.
#
#   scripts/check.sh            # tier-1 tests + sanitizer smoke
#   scripts/check.sh --fast     # tier-1 tests only
#
# Sanitizer builds live in build-asan/ so they never pollute the primary
# build/ tree. TSan (-DXK_SANITIZE=thread) is not part of the default check
# -- the only multi-threaded binary is bench_suite -- but can be run by hand:
#   cmake -B build-tsan -S . -DXK_SANITIZE=thread && cmake --build build-tsan -j
#   ./build-tsan/bench/bench_suite --threads=4 --out=/dev/null

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo
echo "== sanitizer smoke: ASan+UBSan build + ctest (build-asan/) =="
cmake -B build-asan -S . -DXK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$jobs"
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo
echo "== sanitizer smoke: bench_suite under ASan+UBSan =="
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ./build-asan/bench/bench_suite --threads=2 --out=/dev/null

echo
echo "== observability smoke: capture -> analyze =="
obs=$(mktemp -d)
trap 'rm -rf "$obs"' EXIT
./build/bench/bench_table3_layer_costs \
  --trace="$obs/t3.trace.jsonl" --pcap="$obs/t3.pcap.jsonl" >/dev/null
[[ -s "$obs/t3.trace.jsonl" && -s "$obs/t3.pcap.jsonl" ]]
./build/src/xktrace "$obs/t3.trace.jsonl" > "$obs/t3.breakdown.txt"
[[ -s "$obs/t3.breakdown.txt" ]]
grep -q "per-call" "$obs/t3.breakdown.txt"

echo
echo "== observability determinism: bench_suite bit-identical at 1/2/4 threads =="
# Normalize the host-time fields (the only run-to-run variation), then the
# simulated metrics, traces, and captures must be byte-identical across
# thread counts.
normalize() {
  sed -E 's/"(wall_ms|events_per_sec|parallel_speedup|serial_estimate_ms|threads)": [0-9.]+/"\1": X/' "$1"
}
for t in 1 2 4; do
  ./build/bench/bench_suite --threads="$t" --out="$obs/r$t.json" \
    --trace="$obs/trace$t" --pcap="$obs/pcap$t" >/dev/null
  normalize "$obs/r$t.json" > "$obs/r$t.norm.json"
done
cmp "$obs/r1.norm.json" "$obs/r2.norm.json"
cmp "$obs/r1.norm.json" "$obs/r4.norm.json"
# Zero observer effect: an untraced run reports the same simulated metrics.
./build/bench/bench_suite --threads=4 --out="$obs/plain.json" >/dev/null
normalize "$obs/plain.json" > "$obs/plain.norm.json"
cmp "$obs/r1.norm.json" "$obs/plain.norm.json"
diff -r "$obs/trace1" "$obs/trace2"
diff -r "$obs/trace1" "$obs/trace4"
diff -r "$obs/pcap1" "$obs/pcap2"
diff -r "$obs/pcap1" "$obs/pcap4"

echo
echo "All checks passed."
