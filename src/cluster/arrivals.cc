#include "src/cluster/arrivals.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/app/oracle.h"
#include "src/trace/trace.h"

namespace xk {

namespace {

std::string TimeStr(SimTime t) {
  if (t != 0 && t % Sec(1) == 0) {
    return std::to_string(t / Sec(1)) + "s";
  }
  if (t % Msec(1) == 0) {
    return std::to_string(t / Msec(1)) + "ms";
  }
  if (t % Usec(1) == 0) {
    return std::to_string(t / Usec(1)) + "us";
  }
  return std::to_string(t) + "ns";
}

std::string RateStr(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", r);
  return buf;
}

bool ParseTime(const std::string& v, SimTime* out) {
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str()) {
    return false;
  }
  const std::string suffix(end);
  double mult;
  if (suffix == "s") {
    mult = 1e9;
  } else if (suffix == "ms") {
    mult = 1e6;
  } else if (suffix == "us") {
    mult = 1e3;
  } else if (suffix == "ns" || suffix.empty()) {
    mult = 1.0;
  } else {
    return false;
  }
  *out = static_cast<SimTime>(num * mult);
  return true;
}

bool ParseDouble(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

}  // namespace

// ---------------------------------------------------------------------------
// ArrivalSpec
// ---------------------------------------------------------------------------

bool ArrivalSpec::Parse(const std::string& text, ArrivalSpec* out, std::string* error) {
  ArrivalSpec spec;
  const size_t colon = text.find(':');
  const std::string kind = text.substr(0, colon);
  if (kind == "poisson") {
    spec.kind = Kind::kPoisson;
  } else if (kind == "onoff") {
    spec.kind = Kind::kOnOff;
  } else {
    if (error != nullptr) {
      *error = "unknown arrival kind '" + kind + "'";
    }
    return false;
  }
  const std::string rest = colon == std::string::npos ? "" : text.substr(colon + 1);
  size_t start = 0;
  while (start < rest.size()) {
    size_t end = rest.find(',', start);
    if (end == std::string::npos) {
      end = rest.size();
    }
    const std::string pair = rest.substr(start, end - start);
    start = end + 1;
    if (pair.empty()) {
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) {
        *error = "expected key=value, got '" + pair + "'";
      }
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const std::string val = pair.substr(eq + 1);
    bool ok = true;
    if (key == "rate") {
      ok = ParseDouble(val, &spec.rate_cps);
    } else if (key == "off_rate") {
      ok = ParseDouble(val, &spec.off_rate_cps);
    } else if (key == "on") {
      ok = ParseTime(val, &spec.on_for);
    } else if (key == "off") {
      ok = ParseTime(val, &spec.off_for);
    } else if (key == "horizon") {
      ok = ParseTime(val, &spec.horizon);
    } else if (key == "churn") {
      char* e = nullptr;
      const long n = std::strtol(val.c_str(), &e, 10);
      ok = e != val.c_str() && *e == '\0' && n >= 0;
      spec.churn_every = static_cast<int>(n);
    } else if (key == "seed") {
      char* e = nullptr;
      spec.seed = std::strtoull(val.c_str(), &e, 10);
      ok = e != val.c_str() && *e == '\0';
    } else {
      if (error != nullptr) {
        *error = "unknown key '" + key + "' in '" + kind + "' arrivals";
      }
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad value '" + val + "' for key '" + key + "'";
      }
      return false;
    }
  }
  if (spec.rate_cps < 0 || spec.off_rate_cps < 0) {
    if (error != nullptr) {
      *error = "arrival rates must be >= 0";
    }
    return false;
  }
  if (spec.kind == Kind::kOnOff && (spec.on_for <= 0 || spec.off_for <= 0)) {
    if (error != nullptr) {
      *error = "onoff arrivals need on= and off= phase lengths > 0";
    }
    return false;
  }
  if (spec.horizon <= 0) {
    if (error != nullptr) {
      *error = "arrivals need horizon= > 0";
    }
    return false;
  }
  *out = spec;
  return true;
}

std::string ArrivalSpec::ToString() const {
  std::string out = kind == Kind::kPoisson ? "poisson:" : "onoff:";
  out += "rate=" + RateStr(rate_cps);
  if (kind == Kind::kOnOff) {
    out += ",off_rate=" + RateStr(off_rate_cps);
    out += ",on=" + TimeStr(on_for);
    out += ",off=" + TimeStr(off_for);
  }
  out += ",horizon=" + TimeStr(horizon);
  if (churn_every > 0) {
    out += ",churn=" + std::to_string(churn_every);
  }
  out += ",seed=" + std::to_string(seed);
  return out;
}

// ---------------------------------------------------------------------------
// OpenLoopGen
// ---------------------------------------------------------------------------

OpenLoopGen::OpenLoopGen(Kernel& kernel, ClusterClient& client, AmoOracle& oracle,
                         const ArrivalSpec& spec, IpAddr service, uint16_t command,
                         size_t payload_bytes, uint64_t id_base)
    : kernel_(kernel),
      client_(client),
      oracle_(oracle),
      spec_(spec),
      service_(service),
      command_(command),
      payload_bytes_(payload_bytes),
      id_base_(id_base),
      rng_(spec.seed) {}

SimTime OpenLoopGen::ExpGap(double rate_cps) {
  // Inverse-CDF exponential draw in nanoseconds. NextDouble is in [0, 1), so
  // log1p(-u) is finite; clamp to 1ns so arrivals strictly advance.
  const double u = rng_.NextDouble();
  const double gap_ns = -std::log1p(-u) * 1e9 / rate_cps;
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(gap_ns)));
}

SimTime OpenLoopGen::NextArrivalAfter(SimTime t) {
  if (spec_.kind == ArrivalSpec::Kind::kPoisson) {
    if (spec_.rate_cps <= 0) {
      return spec_.horizon;  // never: caller stops at the horizon
    }
    return t + ExpGap(spec_.rate_cps);
  }
  // On-off: two Poisson rates alternating on a fixed phase clock. A draw that
  // crosses the phase boundary is redrawn from the boundary -- exact, because
  // the exponential is memoryless.
  const SimTime cycle = spec_.on_for + spec_.off_for;
  for (int guard = 0; guard < 1000000; ++guard) {
    const SimTime pos = t % cycle;
    const bool on = pos < spec_.on_for;
    const SimTime boundary = t - pos + (on ? spec_.on_for : cycle);
    const double rate = on ? spec_.rate_cps : spec_.off_rate_cps;
    if (rate <= 0) {
      if (boundary >= spec_.horizon) {
        return spec_.horizon;
      }
      t = boundary;
      continue;
    }
    const SimTime gap = ExpGap(rate);
    if (t + gap <= boundary) {
      return t + gap;
    }
    if (boundary >= spec_.horizon) {
      return spec_.horizon;
    }
    t = boundary;
  }
  return spec_.horizon;
}

int OpenLoopGen::PhaseIndexFor(SimTime issue_at) const {
  if (phase_until_ <= phase_from_) {
    return 0;
  }
  if (issue_at < phase_from_) {
    return 0;
  }
  return issue_at < phase_until_ ? 1 : 2;
}

void OpenLoopGen::Start() {
  const SimTime first = NextArrivalAfter(0);
  if (first >= spec_.horizon) {
    return;
  }
  kernel_.ScheduleTask(first, [this, first] { IssueAt(first); });
}

void OpenLoopGen::IssueAt(SimTime at) {
  // Chain the next arrival first: issuance must not depend on this call's
  // fate (that is what makes the loop open). ScheduleTask counts from the
  // event clock, which still reads this arrival's timestamp even when the
  // simulated CPU is backlogged.
  const SimTime next = NextArrivalAfter(at);
  if (next < spec_.horizon) {
    kernel_.ScheduleTask(next - at, [this, next] { IssueAt(next); });
  }

  const uint64_t id = id_base_ | ++seq_;
  ++issued_;
  const int phase = PhaseIndexFor(at);
  ++phases_[static_cast<size_t>(phase)].issued;
  oracle_.RecordIssued(id, at);
  Message request = AmoOracle::MakeRequest(id, payload_bytes_);
  if (deadline_ > 0) {
    request.set_deadline(at + deadline_);
  }
  if (TraceSink* ts = kernel_.trace_sink()) {
    // Stamp the scheduled arrival (not "now") so a causal stitcher's
    // reconstructed RTT matches the histogram's done_at - at exactly, and
    // bind the request message's trace id to the oracle call id.
    ts->RecordEvent(kernel_, TraceOp::kIssue, "gen", at, id, &request, nullptr, 0);
  }
  client_.Call(service_, command_, id, std::move(request),
               [this, id, at, phase](Result<Message> r) {
                 const SimTime done_at = kernel_.now();
                 if (TraceSink* ts = kernel_.trace_sink()) {
                   ts->RecordEvent(kernel_, TraceOp::kDone, "gen", done_at, id,
                                   r.ok() ? &*r : nullptr, nullptr, 0,
                                   r.ok() ? StatusCode::kOk : r.status().code());
                 }
                 oracle_.RecordOutcome(id, r, done_at);
                 rtt_.Record(done_at - at);
                 last_done_at_ = std::max(last_done_at_, done_at);
                 if (r.ok()) {
                   ++completed_;
                   ++phases_[static_cast<size_t>(phase)].completed;
                 } else {
                   ++failed_;
                   ++phases_[static_cast<size_t>(phase)].failed;
                   switch (r.status().code()) {
                     case StatusCode::kDeadlineExceeded:
                       ++shed_;
                       break;
                     case StatusCode::kBusy:
                       ++rejected_;
                       break;
                     case StatusCode::kResourceExhausted:
                       ++budget_exhausted_;
                       break;
                     default:
                       break;
                   }
                 }
               });

  if (spec_.churn_every > 0 && seq_ % static_cast<uint64_t>(spec_.churn_every) == 0) {
    client_.Evict(service_, command_);
  }
}

}  // namespace xk
