#include "src/rpc/select_fwd.h"

#include "src/core/wire.h"

namespace xk {

SelectFwdProtocol::SelectFwdProtocol(Kernel& kernel, Protocol* lower, std::string name)
    : SelectProtocol(kernel, lower, std::move(name), kRelProtoSelectFwd) {}

void SelectFwdProtocol::AddForwardingRule(uint16_t command, IpAddr target) {
  forward_rules_[command] = target;
}

Status SelectFwdProtocol::SendForward(Session* lls, uint16_t command, IpAddr target) {
  uint8_t raw[kHeaderSize];
  WireWriter w(raw);
  w.PutU8(kTypeForward);
  w.PutU16(command);
  w.PutU8(kStatusOk);
  uint8_t addr[4];
  WireWriter aw(addr);
  aw.PutIpAddr(target);
  Message reply = Message::FromBytes(addr);
  kernel().ChargeHdrStore(kHeaderSize);
  reply.PushHeader(raw);
  ++forwards_sent_;
  return lls->Push(reply);  // the channel is in_progress: this is its reply
}

Status SelectFwdProtocol::FollowForward(Session* lls, uint16_t command, Message& msg) {
  // Client side: release the channel this call occupied, then re-issue the
  // saved request toward the host named in the payload.
  SessionRef caller = calls_.Resolve(lls);
  if (caller == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  calls_.Unbind(lls);
  auto* sess = static_cast<SelectSession*>(caller.get());
  auto pit = pools_.find(sess->server());
  if (pit != pools_.end()) {
    for (size_t i = 0; i < pit->second.channels.size(); ++i) {
      if (pit->second.channels[i].get() == lls) {
        ReleaseChannel(pit->second, i);
        break;
      }
    }
  }
  uint8_t addr[4];
  if (!msg.PopHeader(addr)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  WireReader r(addr);
  const IpAddr target = r.GetIpAddr();

  if (sess->forward_hops() >= kMaxHops) {
    sess->CallFinished();
    if (sess->hlp() != nullptr) {
      sess->hlp()->SessionError(*sess, ErrStatus(StatusCode::kUnreachable));
    }
    return OkStatus();
  }
  sess->set_forward_hops(sess->forward_hops() + 1);
  ++forwards_followed_;

  // Re-issue the saved request through the pool toward the forward target,
  // but keep the ORIGINAL session bound to the call so the eventual reply
  // reaches the caller who started it (the forwarding is transparent).
  Result<ChannelPool*> pool_r = PoolFor(target);
  if (!pool_r.ok()) {
    sess->CallFinished();
    if (sess->hlp() != nullptr) {
      sess->hlp()->SessionError(*sess, pool_r.status());
    }
    return pool_r.status();
  }
  ChannelPool* pool = *pool_r;
  Message request = sess->last_request();
  pool->available->P([this, pool, caller, command, request]() mutable {
    size_t index = 0;
    kernel().ChargeMapResolve();
    while (index < pool->busy.size() && pool->busy[index]) {
      ++index;
    }
    pool->busy[index] = true;
    SessionRef channel = pool->channels[index];
    calls_.Bind(channel.get(), caller);
    uint8_t raw[kHeaderSize];
    WireWriter w(raw);
    w.PutU8(kTypeCall);
    w.PutU16(command);
    w.PutU8(kStatusOk);
    kernel().ChargeHdrStore(kHeaderSize);
    request.PushHeader(raw);
    (void)channel->Push(request);
  });
  return OkStatus();
}

Status SelectFwdProtocol::DoDemux(Session* lls, Message& msg) {
  uint8_t raw[kHeaderSize];
  if (!msg.PeekHeader(raw)) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  WireReader r(raw);
  const uint8_t type = r.GetU8();
  const uint16_t command = r.GetU16();

  if (type == kTypeCall && lls != nullptr) {
    if (auto it = forward_rules_.find(command); it != forward_rules_.end()) {
      kernel().ChargeHdrLoad(kHeaderSize);
      (void)msg.Discard(kHeaderSize);
      return SendForward(lls, command, it->second);
    }
  }
  if (type == kTypeForward && lls != nullptr) {
    kernel().ChargeHdrLoad(kHeaderSize);
    (void)msg.Discard(kHeaderSize);
    return FollowForward(lls, command, msg);
  }
  return SelectProtocol::DoDemux(lls, msg);
}

}  // namespace xk
