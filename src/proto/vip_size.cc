#include "src/proto/vip_size.h"

namespace xk {

// ---------------------------------------------------------------------------
// VIP_ADDR
// ---------------------------------------------------------------------------

VipAddrProtocol::VipAddrProtocol(Kernel& kernel, Protocol* eth, Protocol* ip, ArpProtocol* arp,
                                 std::string name)
    : Protocol(kernel, std::move(name), {eth, ip}), arp_(arp) {}

Result<SessionRef> VipAddrProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpProtoNum proto = *parts.local.ip_proto;
  kernel().ChargeMapResolve();
  if (auto peer_eth = arp_->Lookup(*parts.peer.host)) {
    ParticipantSet eparts;
    eparts.local.eth_type = VipEthTypeFor(proto);
    eparts.peer.eth = *peer_eth;
    return eth()->Open(hlp, eparts);  // note: bound to hlp, not to VIP_ADDR
  }
  if (ip() == nullptr) {
    return ErrStatus(StatusCode::kUnreachable);  // ETH-only shim, host off-link
  }
  ParticipantSet iparts;
  iparts.local.ip_proto = proto;
  iparts.peer.host = *parts.peer.host;
  return ip()->Open(hlp, iparts);
}

Status VipAddrProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.ip_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  ParticipantSet eparts;
  eparts.local.eth_type = VipEthTypeFor(*parts.local.ip_proto);
  Status es = eth()->OpenEnable(hlp, eparts);
  if (ip() == nullptr) {
    return es;
  }
  ParticipantSet iparts;
  iparts.local.ip_proto = *parts.local.ip_proto;
  Status is = ip()->OpenEnable(hlp, iparts);
  return es.ok() ? is : es;
}

Status VipAddrProtocol::DoDemux(Session* lls, Message& msg) {
  // Never on the message path: opens hand out lower sessions directly.
  (void)lls;
  (void)msg;
  return ErrStatus(StatusCode::kUnsupported);
}

Status VipAddrProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      if (ip() == nullptr) {
        return eth()->Control(ControlOp::kGetMaxPacket, args);
      }
      return ip()->Control(ControlOp::kGetMaxPacket, args);
    case ControlOp::kGetOptPacket:
      return eth()->Control(ControlOp::kGetMaxPacket, args);
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

// ---------------------------------------------------------------------------
// VIP_SIZE
// ---------------------------------------------------------------------------

VipSizeProtocol::VipSizeProtocol(Kernel& kernel, Protocol* small, Protocol* big,
                                 ArpProtocol* arp, std::string name)
    : Protocol(kernel, std::move(name), {small, big}),
      arp_(arp),
      active_(*this),
      passive_by_ip_(*this),
      passive_by_rel_(*this),
      by_lls_(*this) {}

size_t VipSizeProtocol::Threshold() {
  ControlArgs args;
  return small()->Control(ControlOp::kGetOptPacket, args).ok() ? args.u64 : 1500;
}

Result<SessionRef> VipSizeProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.local.ip_proto.has_value() ||
      !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const IpAddr peer = *parts.peer.host;
  const IpProtoNum ip_proto = *parts.local.ip_proto;
  const RelProtoNum rel_proto = *parts.local.rel_proto;
  if (SessionRef cached = active_.Resolve(Key{peer, ip_proto})) {
    cached->set_hlp(&hlp);
    return cached;
  }
  // Open the direct path now; the bulk path is opened on first large message
  // (most sessions never send one).
  ParticipantSet sparts;
  sparts.local.ip_proto = ip_proto;
  sparts.peer.host = peer;
  Result<SessionRef> small_sess = small()->Open(*this, sparts);
  if (!small_sess.ok()) {
    return small_sess.status();
  }
  kernel().ChargeSessionCreate();
  auto sess = std::make_shared<VipSizeSession>(*this, &hlp, peer, ip_proto, rel_proto,
                                               *small_sess, nullptr, Threshold());
  active_.Bind(Key{peer, ip_proto}, sess);
  by_lls_.Bind((*small_sess).get(), sess);
  return SessionRef(sess);
}

Status VipSizeProtocol::DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.local.ip_proto.has_value() || !parts.local.rel_proto.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  const Enable e{&hlp, *parts.local.ip_proto, *parts.local.rel_proto};
  passive_by_ip_.Bind(e.ip_proto, e);
  passive_by_rel_.Bind(e.rel_proto, e);
  ParticipantSet sparts;
  sparts.local.ip_proto = e.ip_proto;
  Status ss = small()->OpenEnable(*this, sparts);
  ParticipantSet bparts;
  bparts.local.rel_proto = e.rel_proto;
  Status bs = big()->OpenEnable(*this, bparts);
  return ss.ok() ? bs : ss;
}

Status VipSizeProtocol::OpenDoneUp(Protocol& llp, SessionRef lls, const ParticipantSet& parts) {
  (void)llp;
  // Work out which enable this lower session belongs to and which path slot
  // it fills.
  Enable e;
  SessionRef small_sess;
  SessionRef big_sess;
  std::optional<IpAddr> peer = parts.peer.host;
  if (parts.local.eth_type.has_value()) {
    e = passive_by_ip_.Resolve(static_cast<IpProtoNum>(*parts.local.eth_type - kEthTypeVipBase));
    small_sess = lls;
    if (!peer.has_value() && parts.peer.eth.has_value() && arp_ != nullptr) {
      peer = arp_->ReverseLookup(*parts.peer.eth);
    }
  } else if (parts.local.ip_proto.has_value()) {
    e = passive_by_ip_.Resolve(*parts.local.ip_proto);
    small_sess = lls;
  } else if (parts.local.rel_proto.has_value()) {
    e = passive_by_rel_.Resolve(*parts.local.rel_proto);
    big_sess = lls;
  } else {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (e.hlp == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  // Reuse an existing session for this peer if one exists (the two paths of
  // one conversation then share a session, as they must for replies).
  SessionRef sess;
  if (peer.has_value()) {
    sess = active_.Resolve(Key{*peer, e.ip_proto});
  }
  if (sess != nullptr) {
    auto* vss = static_cast<VipSizeSession*>(sess.get());
    if (small_sess != nullptr && vss->small_sess_ == nullptr) {
      vss->small_sess_ = small_sess;
    }
    if (big_sess != nullptr && vss->big_sess_ == nullptr) {
      vss->big_sess_ = big_sess;
    }
    by_lls_.Bind(lls.get(), sess);
    return OkStatus();
  }
  kernel().ChargeSessionCreate();
  auto created = std::make_shared<VipSizeSession>(*this, e.hlp, peer, e.ip_proto, e.rel_proto,
                                                  small_sess, big_sess, Threshold());
  by_lls_.Bind(lls.get(), created);
  if (peer.has_value()) {
    active_.Bind(Key{*peer, e.ip_proto}, created);
  }
  ParticipantSet up;
  up.local.ip_proto = e.ip_proto;
  up.local.rel_proto = e.rel_proto;
  up.peer.host = peer;
  return e.hlp->OpenDoneUp(*this, created, up);
}

Status VipSizeProtocol::DoDemux(Session* lls, Message& msg) {
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  SessionRef sess = by_lls_.Resolve(lls);
  if (sess == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  return sess->Pop(msg, lls);
}

// ---------------------------------------------------------------------------
// VipSizeSession
// ---------------------------------------------------------------------------

VipSizeSession::VipSizeSession(VipSizeProtocol& owner, Protocol* hlp, std::optional<IpAddr> peer,
                               IpProtoNum ip_proto, RelProtoNum rel_proto, SessionRef small_sess,
                               SessionRef big_sess, size_t threshold)
    : Session(owner, hlp),
      vs_(owner),
      peer_(peer),
      ip_proto_(ip_proto),
      rel_proto_(rel_proto),
      small_sess_(std::move(small_sess)),
      big_sess_(std::move(big_sess)),
      threshold_(threshold) {}

Status VipSizeSession::EnsureSmall() {
  if (small_sess_ != nullptr) {
    return OkStatus();
  }
  if (!peer_.has_value()) {
    return ErrStatus(StatusCode::kUnreachable);
  }
  ParticipantSet parts;
  parts.local.ip_proto = ip_proto_;
  parts.peer.host = *peer_;
  Result<SessionRef> r = vs_.small()->Open(vs_, parts);
  if (!r.ok()) {
    return r.status();
  }
  small_sess_ = *r;
  vs_.by_lls_.Bind(small_sess_.get(), Ref());
  return OkStatus();
}

Status VipSizeSession::EnsureBig() {
  if (big_sess_ != nullptr) {
    return OkStatus();
  }
  if (!peer_.has_value()) {
    return ErrStatus(StatusCode::kUnreachable);
  }
  ParticipantSet parts;
  parts.local.rel_proto = rel_proto_;
  parts.peer.host = *peer_;
  Result<SessionRef> r = vs_.big()->Open(vs_, parts);
  if (!r.ok()) {
    return r.status();
  }
  big_sess_ = *r;
  vs_.by_lls_.Bind(big_sess_.get(), Ref());
  return OkStatus();
}

Status VipSizeSession::DoPush(Message& msg) {
  // The per-message cost of VIP_SIZE: one length test.
  kernel().Charge(Usec(2));
  if (msg.length() <= threshold_) {
    if (Status s = EnsureSmall(); !s.ok()) {
      return s;
    }
    return small_sess_->Push(msg);
  }
  if (Status s = EnsureBig(); !s.ok()) {
    return s;
  }
  return big_sess_->Push(msg);
}

Status VipSizeSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status VipSizeSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetMaxPacket:
      // The bulk path makes the session effectively unbounded up to what
      // FRAGMENT can carry.
      return vs_.big()->Control(ControlOp::kGetMaxPacket, args);
    case ControlOp::kGetOptPacket:
      args.u64 = threshold_;
      return OkStatus();
    case ControlOp::kGetPeerHost:
      if (peer_.has_value()) {
        args.ip = *peer_;
        return OkStatus();
      }
      return ErrStatus(StatusCode::kNotFound);
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    default:
      return ErrStatus(StatusCode::kUnsupported);
  }
}

}  // namespace xk
