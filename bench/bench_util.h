// Shared benchmark harness: runs a named RPC configuration on the paper's
// testbed topology (two hosts, one isolated 10 Mbps Ethernet) and measures
// the three quantities every table reports:
//
//   Latency          round trip of a null call (null request, null reply)
//   Throughput       kbytes/sec for 16 KB requests with null replies
//   Incremental cost msec per additional 1 KB (slope of the 1k..16k sweep)
//
// Following the paper: all experiments are kernel-to-kernel, messages
// fragment into wire-sized packets, and sessions are cached (steady state).

#ifndef XK_BENCH_BENCH_UTIL_H_
#define XK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/app/anchor.h"
#include "src/app/oracle.h"
#include "src/app/stacks.h"
#include "src/app/workload.h"
#include "src/proto/topology.h"
#include "src/proto/udp.h"
#include "src/sim/fault.h"
#include "src/sim/parallel.h"
#include "src/stat/histogram.h"
#include "src/stat/timeseries.h"
#include "src/trace/pcap.h"
#include "src/trace/trace.h"

namespace xk {

// Optional observability for the serial bench binaries: `--trace=FILE` and
// `--pcap=FILE` install thread-default observers that every Internet the
// benchmark builds picks up; the files are written when the benchmark exits.
// Tracing charges zero simulated cost, so a traced run reports exactly the
// numbers an untraced run does. `--engine-threads=N` sets the thread-default
// engine width the same way: every Internet runs on the parallel engine,
// whose results are bit-identical to the serial engine's.
class BenchObservers {
 public:
  BenchObservers(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--trace=", 8) == 0) {
        trace_path_ = a + 8;
      } else if (std::strncmp(a, "--pcap=", 7) == 0) {
        pcap_path_ = a + 7;
      } else if (std::strncmp(a, "--stats=", 8) == 0) {
        stats_path_ = a + 8;
      } else if (std::strncmp(a, "--engine-threads=", 17) == 0) {
        set_default_engine_threads(std::atoi(a + 17));
      }
    }
    if (!trace_path_.empty()) {
      sink_ = std::make_unique<TraceSink>();
      TraceSink::set_thread_default(sink_.get());
    }
    if (!pcap_path_.empty()) {
      capture_ = std::make_unique<PacketCapture>();
      PacketCapture::set_thread_default(capture_.get());
    }
    if (!stats_path_.empty()) {
      sampler_ = std::make_unique<StatSampler>();
      StatSampler::set_thread_default(sampler_.get());
    }
  }

  BenchObservers(const BenchObservers&) = delete;
  BenchObservers& operator=(const BenchObservers&) = delete;

  ~BenchObservers() {
    set_default_engine_threads(1);
    if (sink_ != nullptr) {
      TraceSink::set_thread_default(nullptr);
      if (!sink_->WriteFile(trace_path_)) {
        std::fprintf(stderr, "bench: failed to write trace %s\n", trace_path_.c_str());
      }
    }
    if (capture_ != nullptr) {
      PacketCapture::set_thread_default(nullptr);
      if (!capture_->WriteFile(pcap_path_)) {
        std::fprintf(stderr, "bench: failed to write pcap %s\n", pcap_path_.c_str());
      }
    }
    if (sampler_ != nullptr) {
      StatSampler::set_thread_default(nullptr);
      if (!sampler_->WriteFile(stats_path_)) {
        std::fprintf(stderr, "bench: failed to write stats %s\n", stats_path_.c_str());
      }
    }
  }

 private:
  std::string trace_path_;
  std::string pcap_path_;
  std::string stats_path_;
  std::unique_ptr<TraceSink> sink_;
  std::unique_ptr<PacketCapture> capture_;
  std::unique_ptr<StatSampler> sampler_;
};

struct ConfigResult {
  std::string name;
  double latency_ms = 0;        // null-call round trip
  double throughput_kbs = 0;    // at 16 KB requests
  double incr_ms_per_kb = 0;    // slope between 1 KB and 16 KB
  double client_cpu_ms = 0;     // CPU time per 16 KB call, client side
  double server_cpu_ms = 0;
  uint64_t events_fired = 0;    // host-side work: events across all instances
  Histogram latency_rtt;        // per-call round trips of the latency phase
  Histogram service;            // server-side service times, latency phase
};

struct RpcBench {
  using Builder = std::function<RpcStack(HostStack&)>;

  // One fully-wired experiment instance.
  struct Instance {
    std::unique_ptr<Internet> net;
    HostStack* ch = nullptr;
    HostStack* sh = nullptr;
    RpcStack cstack, sstack;
    RpcClient* client = nullptr;
    RpcServer* server = nullptr;

    CallFn MakeCall() {
      return [this](Message args, std::function<void(Result<Message>)> done) {
        client->Call(sh->kernel->ip_addr(), 1, std::move(args), std::move(done));
      };
    }
  };

  static Instance MakeInstance(const Builder& builder, HostEnv env = HostEnv::kXKernel) {
    Instance in;
    in.net = Internet::TwoHosts(env);
    in.ch = &in.net->host("client");
    in.sh = &in.net->host("server");
    in.cstack = builder(*in.ch);
    in.sstack = builder(*in.sh);
    in.ch->kernel->RunTask(in.net->events().now(), [&] {
      in.client = &in.ch->kernel->Emplace<RpcClient>(*in.ch->kernel, in.cstack.top);
    });
    in.sh->kernel->RunTask(in.net->events().now(), [&] {
      in.server = &in.sh->kernel->Emplace<RpcServer>(*in.sh->kernel, in.sstack.top);
      // Null reply regardless of request size (the paper's throughput test).
      (void)in.server->Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
    });
    return in;
  }

  // Measures the standard three columns for `builder` under `env`.
  static ConfigResult Measure(const std::string& name, const Builder& builder,
                              HostEnv env = HostEnv::kXKernel) {
    ConfigResult result;
    result.name = name;

    {
      Instance in = MakeInstance(builder, env);
      LatencyResult lat = RpcWorkload::MeasureLatency(*in.net, *in.ch->kernel, in.MakeCall(), 64);
      result.latency_ms = ToMsec(lat.per_call);
      result.latency_rtt = lat.rtt;
      result.service = in.server->service_histogram();
      result.events_fired += in.net->events_fired();
    }
    {
      Instance in = MakeInstance(builder, env);
      ThroughputResult t16 = RpcWorkload::MeasureThroughput(
          *in.net, *in.ch->kernel, *in.sh->kernel, in.MakeCall(), 16 * 1024, 16);
      result.throughput_kbs = t16.kbytes_per_sec;
      result.client_cpu_ms = ToMsec(t16.client_cpu);
      result.server_cpu_ms = ToMsec(t16.server_cpu);
      result.events_fired += in.net->events_fired();
    }
    {
      Instance in = MakeInstance(builder, env);
      ThroughputResult t1 = RpcWorkload::MeasureThroughput(*in.net, *in.ch->kernel,
                                                           *in.sh->kernel, in.MakeCall(),
                                                           1 * 1024, 16);
      Instance in2 = MakeInstance(builder, env);
      ThroughputResult t16 = RpcWorkload::MeasureThroughput(
          *in2.net, *in2.ch->kernel, *in2.sh->kernel, in2.MakeCall(), 16 * 1024, 16);
      const double ms1 = ToMsec(t1.elapsed) / t1.completed;
      const double ms16 = ToMsec(t16.elapsed) / t16.completed;
      result.incr_ms_per_kb = (ms16 - ms1) / 15.0;
      result.events_fired += in.net->events_fired() + in2.net->events_fired();
    }
    return result;
  }
};

// --- shared experiment setups --------------------------------------------------
//
// These are used both by the per-table serial binaries and by bench_suite, so
// the two report identical simulated numbers by construction.

// An echo experiment over a partial RPC stack driven by EchoAnchors
// (layers: 0 = VIP, 1 = FRAGMENT-VIP, 2 = CHANNEL-FRAGMENT-VIP).
struct EchoExperiment {
  std::unique_ptr<Internet> net;
  HostStack* ch = nullptr;
  HostStack* sh = nullptr;
  RpcStack cstack, sstack;
  EchoAnchor* client = nullptr;
  SessionRef sess;

  CallFn MakeCall() {
    return [this](Message args, std::function<void(Result<Message>)> done) {
      client->Send(sess, std::move(args), std::move(done));
    };
  }
};

inline EchoExperiment MakeEchoExperiment(int layers, bool null_replies = false) {
  EchoExperiment e;
  e.net = Internet::TwoHosts();
  e.ch = &e.net->host("client");
  e.sh = &e.net->host("server");
  e.cstack = BuildPartial(*e.ch, layers);
  e.sstack = BuildPartial(*e.sh, layers);
  e.ch->kernel->RunTask(e.net->events().now(), [&] {
    e.client = &e.ch->kernel->Emplace<EchoAnchor>(*e.ch->kernel, /*server_role=*/false);
  });
  e.sh->kernel->RunTask(e.net->events().now(), [&] {
    auto& server = e.sh->kernel->Emplace<EchoAnchor>(*e.sh->kernel, /*server_role=*/true);
    if (null_replies) {
      server.set_echo_limit(0);
    }
    (void)EnableEcho(e.sstack, server);
  });
  e.ch->kernel->RunTask(e.net->events().now(), [&] {
    Result<SessionRef> r = OpenEchoSession(e.cstack, *e.client, e.sh->kernel->ip_addr());
    if (r.ok()) {
      e.sess = *r;
    }
  });
  return e;
}

struct PartialLatency {
  double ms = 0;
  uint64_t events_fired = 0;
  Histogram rtt;
};

// Null round trip through a partial stack (Table III rows 1-3 and the
// header-alloc ablation's base/channel measurements).
inline PartialLatency MeasurePartialLatency(int layers) {
  EchoExperiment e = MakeEchoExperiment(layers);
  LatencyResult lat = RpcWorkload::MeasureLatency(*e.net, *e.ch->kernel, e.MakeCall(), 64);
  return PartialLatency{ToMsec(lat.per_call), e.net->events_fired(), lat.rtt};
}

struct FragmentThroughput {
  double kbytes_per_sec = 0;
  uint64_t events_fired = 0;
  Histogram rtt;
};

// FRAGMENT standalone throughput: 16 KB messages, null (0-byte) echoes.
inline FragmentThroughput MeasureFragmentThroughput() {
  EchoExperiment e = MakeEchoExperiment(/*layers=*/1, /*null_replies=*/true);
  ThroughputResult t = RpcWorkload::MeasureThroughput(*e.net, *e.ch->kernel, *e.sh->kernel,
                                                      e.MakeCall(), 16 * 1024, 16);
  return FragmentThroughput{t.kbytes_per_sec, e.net->events_fired(), t.rtt};
}

struct UdpEcho {
  double ms = 0;
  uint64_t events_fired = 0;
  Histogram rtt;
};

// Section 1's user-to-user UDP/IP echo: each send and receive pays a
// user/kernel boundary crossing.
inline UdpEcho MeasureUdpEcho(HostEnv env) {
  auto net = Internet::TwoHosts(env);
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  UdpProtocol* cudp = BuildUdp(ch);
  UdpProtocol* sudp = BuildUdp(sh);

  EchoAnchor* client = nullptr;
  ch.kernel->RunTask(net->events().now(), [&] {
    client = &ch.kernel->Emplace<EchoAnchor>(*ch.kernel, /*server_role=*/false);
    // User process: each send/receive crosses the user/kernel boundary.
    client->set_app_cost(ch.kernel->costs().user_kernel_cross);
  });
  sh.kernel->RunTask(net->events().now(), [&] {
    auto& server = sh.kernel->Emplace<EchoAnchor>(*sh.kernel, /*server_role=*/true);
    server.set_app_cost(2 * sh.kernel->costs().user_kernel_cross);  // in + out
    ParticipantSet enable;
    enable.local.port = 7;
    (void)sudp->OpenEnable(server, enable);
  });
  SessionRef sess;
  ch.kernel->RunTask(net->events().now(), [&] {
    ParticipantSet parts;
    parts.local.port = 1234;
    parts.peer.host = sh.kernel->ip_addr();
    parts.peer.port = 7;
    Result<SessionRef> r = cudp->Open(*client, parts);
    if (r.ok()) {
      sess = *r;
    }
  });
  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    client->Send(sess, std::move(args), std::move(done));
  };
  LatencyResult lat = RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 64);
  return UdpEcho{ToMsec(lat.per_call), net->events_fired(), lat.rtt};
}

struct ColdWarmResult {
  double first_ms = 0;
  double steady_ms = 0;
  uint64_t events_fired = 0;
  Histogram rtt;  // first + steady calls combined
};

// Session-caching ablation: the first call on a freshly configured stack
// (which establishes session state at every level; ARP is pre-warmed) versus
// the steady-state call that reuses all of it.
inline ColdWarmResult MeasureColdWarm(const RpcBench::Builder& builder) {
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  net->AddHost("client", seg, IpAddr(10, 0, 1, 1));
  net->AddHost("server", seg, IpAddr(10, 0, 1, 2));
  net->WarmArp();  // address resolution warm; session state cold
  auto& ch = net->host("client");
  auto& sh = net->host("server");
  RpcStack cstack = builder(ch);
  RpcStack sstack = builder(sh);
  RpcClient* client = nullptr;
  ch.kernel->RunTask(net->events().now(),
                     [&] { client = &ch.kernel->Emplace<RpcClient>(*ch.kernel, cstack.top); });
  sh.kernel->RunTask(net->events().now(), [&] {
    auto& server = sh.kernel->Emplace<RpcServer>(*sh.kernel, sstack.top);
    (void)server.Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
  });

  CallFn call = [&](Message args, std::function<void(Result<Message>)> done) {
    client->Call(sh.kernel->ip_addr(), 1, std::move(args), std::move(done));
  };
  // First call: all session state is established on demand.
  LatencyResult first = RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 1);
  // Steady state: everything cached.
  LatencyResult steady = RpcWorkload::MeasureLatency(*net, *ch.kernel, call, 64);
  ColdWarmResult out{ToMsec(first.per_call), ToMsec(steady.per_call), net->events_fired(),
                     first.rtt};
  out.rtt.Merge(steady.rtt);
  return out;
}

// Per-segment link statistics for one finished run (see Internet::CountersJson
// for the same quantities as JSON).
struct SegmentStat {
  int segment = 0;
  uint64_t frames = 0;
  uint64_t bytes = 0;
  int64_t busy_ns = 0;
  uint64_t utilization_ppm = 0;  // busy / elapsed, parts per million
  uint64_t queued_frames = 0;
  uint64_t peak_queue_depth = 0;
  uint64_t mean_queue_depth_x1000 = 0;
  int64_t wait_p50_ns = 0;
  int64_t wait_p99_ns = 0;
  int64_t wait_p999_ns = 0;
  int64_t wait_max_ns = 0;
  uint64_t frames_dropped = 0;
};

struct ManyPairsBench {
  double agg_kbytes_per_sec = 0;
  double elapsed_ms = 0;  // simulated time, first issue to last completion
  int completed = 0;
  int failed = 0;
  SimTime sum_done_at = 0;  // determinism probe: sum of per-pair finish times
  uint64_t events_fired = 0;
  Histogram rtt;      // per-call round trips, merged across pairs
  Histogram service;  // server-side service times, merged across pairs
  std::vector<SegmentStat> segments;
  // IP forwarding totals summed over every host. The pairs here share a
  // segment, so these stay zero -- the point is that the same accounting the
  // datacenter jobs gate on is observable (and observed zero) off the routed
  // path too.
  uint64_t ip_forwards = 0;
  uint64_t ip_ttl_drops = 0;
  uint64_t ip_no_route_drops = 0;
  // Parallel-engine diagnostics (valid only when the run used the parallel
  // engine). Everything but the *_ms fields is deterministic.
  bool engine_diag_valid = false;
  ParallelEngine::Diag engine_diag;
};

// The many-host workload: `pairs` independent client/server pairs, each on
// its own segment, all driving `iters` sequential `bytes`-byte L_RPC calls
// concurrently in ONE simulation. The segments use a long propagation delay
// (a campus internetwork rather than one machine-room Ethernet), which is
// what gives the parallel engine its lookahead; simulated results are
// engine-invariant, so this doubles as the speedup benchmark and the
// determinism stress test. `engine_threads` 0 = thread default. `drop_rate`
// applies a uniform random drop to every segment (after ARP warm-up), driving
// the retransmission paths that stretch the latency tail.
inline ManyPairsBench MeasureManyPairsBench(int pairs, size_t bytes, int iters,
                                            int engine_threads = 0, double drop_rate = 0.0) {
  auto net = std::make_unique<Internet>(HostEnv::kXKernel, 1, engine_threads);
  // A long propagation delay (campus-backbone scale rather than one Ethernet)
  // stretches the conservative lookahead so each epoch carries enough events
  // to amortize the engine's barrier; the workload is otherwise the standard
  // layered L_RPC stack.
  WireModel wire;
  wire.propagation = Usec(2000);
  struct Pair {
    HostStack* ch = nullptr;
    HostStack* sh = nullptr;
    RpcStack cstack, sstack;
    RpcClient* client = nullptr;
    RpcServer* server = nullptr;
  };
  std::vector<Pair> ps(static_cast<size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    const int seg = net->AddSegment(wire);
    const uint8_t b = static_cast<uint8_t>(p + 1);
    ps[p].ch = &net->AddHost("c" + std::to_string(p), seg, IpAddr(10, 0, b, 1));
    ps[p].sh = &net->AddHost("s" + std::to_string(p), seg, IpAddr(10, 0, b, 2));
  }
  net->WarmArp();
  if (drop_rate > 0.0) {
    for (size_t s = 0; s < net->num_segments(); ++s) {
      net->segment(static_cast<int>(s)).set_drop_rate(drop_rate);
    }
  }
  std::vector<Kernel*> clients;
  std::vector<CallFn> calls;
  for (Pair& pr : ps) {
    pr.cstack = BuildLRpc(*pr.ch, Delivery::kVip);
    pr.sstack = BuildLRpc(*pr.sh, Delivery::kVip);
    pr.ch->kernel->RunTask(net->events().now(), [&] {
      pr.client = &pr.ch->kernel->Emplace<RpcClient>(*pr.ch->kernel, pr.cstack.top);
    });
    pr.sh->kernel->RunTask(net->events().now(), [&] {
      pr.server = &pr.sh->kernel->Emplace<RpcServer>(*pr.sh->kernel, pr.sstack.top);
      (void)pr.server->Export(RpcServer::kAny, [](uint16_t, Message&) { return Message(); });
    });
    clients.push_back(pr.ch->kernel);
    const IpAddr server_ip = pr.sh->kernel->ip_addr();
    RpcClient* client = pr.client;
    calls.push_back([client, server_ip](Message args, std::function<void(Result<Message>)> done) {
      client->Call(server_ip, 1, std::move(args), std::move(done));
    });
  }
  ManyPairsResult r = RpcWorkload::MeasureManyPairs(*net, clients, calls, bytes, iters);
  ManyPairsBench out;
  out.agg_kbytes_per_sec = r.agg_kbytes_per_sec;
  out.elapsed_ms = ToMsec(r.elapsed);
  out.completed = r.completed;
  out.failed = r.failed;
  out.sum_done_at = r.sum_done_at;
  out.events_fired = net->events_fired();
  if (const ParallelEngine::Diag* d = net->engine_diag()) {
    out.engine_diag_valid = true;
    out.engine_diag = *d;
  }
  out.rtt = r.rtt;
  for (const Pair& pr : ps) {
    out.service.Merge(pr.server->service_histogram());
    for (const HostStack* h : {pr.ch, pr.sh}) {
      const IpProtocol::Stats& ip = h->ip->stats();
      out.ip_forwards += ip.forwards;
      out.ip_ttl_drops += ip.ttl_drops;
      out.ip_no_route_drops += ip.no_route_drops;
    }
  }
  const SimTime elapsed_sim = net->events().now();
  for (size_t s = 0; s < net->num_segments(); ++s) {
    const EthernetSegment& seg = net->segment(static_cast<int>(s));
    SegmentStat st;
    st.segment = static_cast<int>(s);
    st.frames = seg.frames_sent();
    st.bytes = seg.bytes_sent();
    st.busy_ns = seg.bus_busy_time();
    st.utilization_ppm = elapsed_sim > 0
                             ? static_cast<uint64_t>(seg.bus_busy_time()) * 1000000u /
                                   static_cast<uint64_t>(elapsed_sim)
                             : 0;
    st.queued_frames = seg.queued_frames();
    st.peak_queue_depth = seg.peak_queue_depth();
    st.mean_queue_depth_x1000 = seg.mean_queue_depth_x1000();
    st.wait_p50_ns = seg.queue_wait().P50();
    st.wait_p99_ns = seg.queue_wait().P99();
    st.wait_p999_ns = seg.queue_wait().P999();
    st.wait_max_ns = seg.queue_wait().max();
    st.frames_dropped = seg.frames_dropped();
    out.segments.push_back(st);
  }
  return out;
}

// --- hotloop microbench --------------------------------------------------------

// Engine hot-path microbench: pure event churn (self-rearming timer chains on
// every host, nothing but heap push/pop/dispatch) plus frame-burst delivery
// (one host broadcasting back-to-back frames; each broadcast lands on every
// other station at the same instant, the case batched delivery folds into one
// heap event, and every receiver echoes, contending on the bus). All counts
// are simulated and engine-invariant; events_per_sec is the host-side rate
// over RunAll and is what the serial hot-path work is measured by.
struct HotLoopBench {
  uint64_t events_fired = 0;      // deterministic
  uint64_t timer_pops = 0;        // deterministic: churn chain ticks executed
  uint64_t frames_delivered = 0;  // deterministic: receiver-side frames in
  uint64_t echoes = 0;            // deterministic: burst frames echoed back
  double elapsed_sim_ms = 0;      // deterministic
  double wall_ms = 0;             // host: RunAll wall clock
  double events_per_sec = 0;      // host: events_fired / wall seconds
};

namespace hotloop_internal {

// Timer chains re-arm through a plain function taking a stable pointer, so
// nothing captures itself and nothing leaks (the ASan suite pass runs this).
struct Chain {
  Kernel* kernel = nullptr;
  int remaining = 0;
  SimTime delay = 0;
  uint64_t* pops = nullptr;  // per-host counter: one writer LP, no races
};

inline void Tick(Chain* c) {
  ++*c->pops;
  if (--c->remaining > 0) {
    c->kernel->SetTimer(c->delay, [c] { Tick(c); });
  }
}

struct Burst {
  Kernel* kernel = nullptr;
  EchoAnchor* anchor = nullptr;
  SessionRef sess;
  int remaining = 0;
  int size = 0;
  size_t bytes = 0;
  SimTime gap = 0;
};

inline void Fire(Burst* b) {
  for (int i = 0; i < b->size; ++i) {
    b->anchor->Send(b->sess, Message(b->bytes), [](Result<Message>) {});
  }
  if (--b->remaining > 0) {
    b->kernel->SetTimer(b->gap, [b] { Fire(b); });
  }
}

}  // namespace hotloop_internal

inline HotLoopBench MeasureHotLoop(int hosts = 8, int chains_per_host = 4,
                                   int pops_per_chain = 6000, int bursts = 256,
                                   int burst_size = 4) {
  // A private ETH type below the VIP range: the bursts ride raw ETH sessions
  // with no upper stack, so the measurement is the engine, not the protocols.
  constexpr EthType kHotLoopType = 0x3900;
  auto net = std::make_unique<Internet>();
  const int seg = net->AddSegment();
  std::vector<HostStack*> hs;
  for (int h = 0; h < hosts; ++h) {
    hs.push_back(&net->AddHost("h" + std::to_string(h), seg,
                               IpAddr(10, 0, 9, static_cast<uint8_t>(h + 1))));
  }
  net->WarmArp();

  // Receivers: echo servers parked directly on ETH. The sender never enables
  // the type, so the echoes die quietly at its demux -- the point is the
  // delivery and bus-contention churn, not a request/reply protocol.
  std::vector<EchoAnchor*> servers;
  for (int h = 1; h < hosts; ++h) {
    HostStack* s = hs[h];
    s->kernel->RunTask(net->events().now(), [&] {
      auto& srv = s->kernel->Emplace<EchoAnchor>(*s->kernel, /*server_role=*/true);
      srv.set_app_cost(0);
      ParticipantSet enable;
      enable.local.eth_type = kHotLoopType;
      (void)s->eth->OpenEnable(srv, enable);
      servers.push_back(&srv);
    });
  }
  hotloop_internal::Burst burst;
  hs[0]->kernel->RunTask(net->events().now(), [&] {
    auto& sender = hs[0]->kernel->Emplace<EchoAnchor>(*hs[0]->kernel, /*server_role=*/false);
    sender.set_app_cost(0);
    ParticipantSet parts;
    parts.local.eth_type = kHotLoopType;
    parts.peer.eth = EthAddr::Broadcast();
    Result<SessionRef> r = hs[0]->eth->Open(sender, parts);
    burst.kernel = hs[0]->kernel;
    burst.anchor = &sender;
    burst.sess = r.ok() ? *r : nullptr;
    burst.remaining = bursts;
    burst.size = burst_size;
    burst.bytes = 128;
    burst.gap = Usec(400);
  });

  // One churn counter per host: each is written only by its own logical
  // process, so the counts are exact at any engine width.
  std::vector<uint64_t> pops(static_cast<size_t>(hosts), 0);
  std::vector<hotloop_internal::Chain> chains(
      static_cast<size_t>(hosts) * static_cast<size_t>(chains_per_host));
  for (int h = 0; h < hosts; ++h) {
    for (int c = 0; c < chains_per_host; ++c) {
      hotloop_internal::Chain& ch = chains[static_cast<size_t>(h * chains_per_host + c)];
      ch.kernel = hs[h]->kernel;
      ch.remaining = pops_per_chain;
      // Co-prime-ish stagger so the heap sees interleaved, not lock-step, work.
      ch.delay = Usec(5 + (h * chains_per_host + c) % 7);
      ch.pops = &pops[static_cast<size_t>(h)];
      hs[h]->kernel->RunTask(net->events().now(), [&ch] {
        ch.kernel->SetTimer(ch.delay, [&ch] { hotloop_internal::Tick(&ch); });
      });
    }
  }
  if (burst.sess != nullptr) {
    hs[0]->kernel->RunTask(net->events().now(),
                           [&burst] { hotloop_internal::Fire(&burst); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  net->RunAll();
  const auto t1 = std::chrono::steady_clock::now();

  HotLoopBench out;
  out.events_fired = net->events_fired();
  for (uint64_t p : pops) {
    out.timer_pops += p;
  }
  for (int h = 1; h < hosts; ++h) {
    out.frames_delivered += hs[h]->eth->frames_in();
  }
  for (const EchoAnchor* srv : servers) {
    out.echoes += srv->echoes();
  }
  out.elapsed_sim_ms = ToMsec(net->events().now());
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.events_fired) / (out.wall_ms / 1000.0) : 0;
  return out;
}

// --- chaos campaigns -----------------------------------------------------------

// Everything a fault campaign reports: availability from the workload's point
// of view, the at-most-once oracle's verdict, and the recovery machinery's
// counters. All simulated quantities -- byte-stable and engine-invariant.
struct ChaosBench {
  ChaosResult run;
  AmoOracle::Report oracle;
  uint64_t events_fired = 0;
  uint64_t boot_resets = 0;      // server reboots the client's CHANNEL observed
  uint64_t retransmissions = 0;  // client CHANNEL
  uint64_t timeouts = 0;
  uint64_t down_drops = 0;    // frames that died at a crashed host's station
  uint64_t fault_drops = 0;   // frames the plan dropped on the wire
};

// Runs the oracle-checked sequential chaos workload over L_RPC-VIP under
// `plan`. The server's echo handler records executions in the oracle, and the
// restart hook reinstalls it after a scheduled crash, so campaigns that kill
// the server mid-call still account for every execution.
inline ChaosBench MeasureChaosCampaign(const FaultPlan& plan, const ChaosSpec& spec,
                                       bool adaptive_rto = false) {
  AmoOracle oracle;
  auto builder = [](HostStack& h) { return BuildLRpc(h, Delivery::kVip); };
  RpcBench::Instance in = RpcBench::MakeInstance(builder);
  in.sh->kernel->RunTask(in.net->events().now(), [&] {
    (void)in.server->Export(RpcServer::kAny, oracle.WrapEcho(in.sh->kernel));
  });
  if (adaptive_rto) {
    in.cstack.channel->set_adaptive_timeout(true);
    in.sstack.channel->set_adaptive_timeout(true);
  }
  in.net->set_restart_hook("server", [&in, builder, &oracle, adaptive_rto](HostStack& h) {
    in.sstack = builder(h);
    in.server = &h.kernel->Emplace<RpcServer>(*h.kernel, in.sstack.top);
    (void)in.server->Export(RpcServer::kAny, oracle.WrapEcho(h.kernel));
    if (adaptive_rto) {
      in.sstack.channel->set_adaptive_timeout(true);
    }
  });

  FaultEngine faults(*in.net, plan);
  ChaosBench out;
  out.run = RpcWorkload::RunChaos(*in.net, *in.ch->kernel, in.MakeCall(), oracle, spec);
  out.oracle = oracle.Finish();
  out.events_fired = in.net->events_fired();
  const ChannelProtocol::Stats& st = in.cstack.channel->stats();
  out.boot_resets = st.boot_resets;
  out.retransmissions = st.retransmissions;
  out.timeouts = st.timeouts;
  for (size_t s = 0; s < in.net->num_segments(); ++s) {
    out.down_drops += in.net->segment(static_cast<int>(s)).down_drops();
    out.fault_drops += in.net->segment(static_cast<int>(s)).fault_drops();
  }
  return out;
}

// --- table printing ------------------------------------------------------------

inline void PrintTableHeader(const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%-30s %10s %14s %18s\n", "Configuration", "Latency", "Throughput",
              "Incremental Cost");
  std::printf("%-30s %10s %14s %18s\n", "", "(msec)", "(kbytes/sec)", "(msec/1k-bytes)");
  std::printf("%s\n", std::string(76, '-').c_str());
}

inline void PrintRow(const ConfigResult& r, double paper_lat = 0, double paper_tput = 0,
                     double paper_incr = 0) {
  std::printf("%-30s %10.2f %14.0f %18.2f", r.name.c_str(), r.latency_ms, r.throughput_kbs,
              r.incr_ms_per_kb);
  if (paper_lat > 0) {
    std::printf("   [paper: %.2f / %.0f / %.2f]", paper_lat, paper_tput, paper_incr);
  }
  std::printf("\n");
}

}  // namespace xk

#endif  // XK_BENCH_BENCH_UTIL_H_
