#include "src/cluster/vpool.h"

#include <algorithm>

#include "src/core/hash.h"
#include "src/trace/trace.h"

namespace xk {

namespace {
// Virtual nodes per replica on the consistent-hash ring. 32 points smooth the
// per-key partition enough that 4-16 replicas each own a comparable arc.
constexpr int kVnodesPerReplica = 32;
}  // namespace

const char* VpoolPolicyName(VpoolPolicy policy) {
  switch (policy) {
    case VpoolPolicy::kRoundRobin:
      return "round_robin";
    case VpoolPolicy::kWeighted:
      return "weighted";
    case VpoolPolicy::kLeastOutstanding:
      return "least_outstanding";
    case VpoolPolicy::kHashAffinity:
      return "hash_affinity";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// VpoolProtocol
// ---------------------------------------------------------------------------

VpoolProtocol::VpoolProtocol(Kernel& kernel, Protocol* rpc, std::string name)
    : Protocol(kernel, std::move(name), {rpc}),
      rpc_(rpc),
      active_(*this),
      by_lls_(*this) {
  MarkIdleCapable();
}

void VpoolProtocol::BindService(IpAddr vip, std::vector<IpAddr> replicas, VpoolPolicy policy,
                                std::vector<uint32_t> weights) {
  vip_ = vip;
  policy_ = policy;
  replicas_.clear();
  replicas_.resize(replicas.size());
  for (size_t i = 0; i < replicas.size(); ++i) {
    replicas_[i].addr = replicas[i];
    replicas_[i].weight = i < weights.size() && weights[i] > 0 ? weights[i] : 1;
  }
  ring_.clear();
  for (size_t i = 0; i < replicas.size(); ++i) {
    for (int v = 0; v < kVnodesPerReplica; ++v) {
      const uint64_t point =
          HashCombine(XkHash<IpAddr>{}(replicas[i]), static_cast<uint64_t>(v));
      ring_.emplace_back(point, static_cast<int>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

bool VpoolProtocol::Pickable(size_t idx, int avoid) const {
  const Replica& r = replicas_[idx];
  return r.up && static_cast<int>(idx) != avoid &&
         (concurrency_cap_ == 0 || r.outstanding < concurrency_cap_);
}

int VpoolProtocol::PickUp(uint64_t affinity_key, int avoid) {
  const size_t n = replicas_.size();
  if (n == 0) {
    return -1;
  }
  switch (policy_) {
    case VpoolPolicy::kRoundRobin: {
      for (size_t tried = 0; tried < n; ++tried) {
        const size_t idx = rr_next_++ % n;
        if (Pickable(idx, avoid)) {
          return static_cast<int>(idx);
        }
      }
      return -1;
    }
    case VpoolPolicy::kWeighted: {
      // Smooth weighted round-robin (nginx's algorithm): every up replica
      // gains its weight, the strict maximum wins and pays back the total.
      int64_t total = 0;
      int best = -1;
      for (size_t i = 0; i < n; ++i) {
        Replica& r = replicas_[i];
        if (!Pickable(i, avoid)) {
          continue;
        }
        r.wrr_current += r.weight;
        total += r.weight;
        if (best < 0 || r.wrr_current > replicas_[static_cast<size_t>(best)].wrr_current) {
          best = static_cast<int>(i);
        }
      }
      if (best >= 0) {
        replicas_[static_cast<size_t>(best)].wrr_current -= total;
      }
      return best;
    }
    case VpoolPolicy::kLeastOutstanding: {
      int best = -1;
      for (size_t i = 0; i < n; ++i) {
        const Replica& r = replicas_[i];
        if (!Pickable(i, avoid)) {
          continue;
        }
        if (best < 0 || r.outstanding < replicas_[static_cast<size_t>(best)].outstanding) {
          best = static_cast<int>(i);
        }
      }
      return best;
    }
    case VpoolPolicy::kHashAffinity: {
      if (ring_.empty()) {
        return -1;
      }
      const uint64_t h = MixBits(affinity_key);
      auto it = std::lower_bound(ring_.begin(), ring_.end(), std::make_pair(h, -1));
      // Walk clockwise from the first point at or after h until a pickable
      // replica owns the point; a down (or capped, or avoided) replica's arcs
      // fall to its ring successors.
      for (size_t tried = 0; tried < ring_.size(); ++tried) {
        if (it == ring_.end()) {
          it = ring_.begin();
        }
        if (Pickable(static_cast<size_t>(it->second), avoid)) {
          return it->second;
        }
        ++it;
      }
      return -1;
    }
  }
  return -1;
}

void VpoolProtocol::RecordOutcome(int idx, bool bad) {
  if (breaker_min_volume_ == 0) {
    return;  // breaker off: don't grow windows nobody reads
  }
  Replica& r = replicas_[static_cast<size_t>(idx)];
  ++r.window_calls;
  if (bad) {
    ++r.window_bad;
  }
  if (r.window_calls >= breaker_min_volume_ &&
      r.window_bad * 1000000 >= static_cast<uint64_t>(breaker_trip_ppm_) * r.window_calls) {
    ++breaker_trips_;
    r.window_calls = 0;
    r.window_bad = 0;
    // MarkDown's readmit probation doubles as the probe-before-readmit path:
    // the first call after probation either heals the window or re-trips.
    MarkDown(idx);
  }
}

void VpoolProtocol::MarkDown(int idx) {
  Replica& r = replicas_[static_cast<size_t>(idx)];
  if (!r.up) {
    return;
  }
  r.up = false;
  ++down_marks_;
  if (TraceSink* ts = kernel().trace_sink()) {
    ts->RecordEvent(kernel(), TraceOp::kReplicaDown, name(), kernel().now(), 0, nullptr,
                    nullptr, static_cast<uint64_t>(idx), StatusCode::kUnreachable);
  }
  kernel().CancelTimer(r.readmit_timer);
  if (readmit_after_ > 0) {
    r.readmit_timer = kernel().SetTimer(readmit_after_, [this, idx] { Readmit(idx); });
  }
}

void VpoolProtocol::Readmit(int idx) {
  Replica& r = replicas_[static_cast<size_t>(idx)];
  if (r.up) {
    return;
  }
  r.up = true;
  r.wrr_current = 0;
  r.window_calls = 0;
  r.window_bad = 0;
  ++readmits_;
  if (TraceSink* ts = kernel().trace_sink()) {
    ts->RecordEvent(kernel(), TraceOp::kReplicaReadmit, name(), kernel().now(), 0, nullptr,
                    nullptr, static_cast<uint64_t>(idx));
  }
}

Result<SessionRef> VpoolProtocol::DoOpen(Protocol& hlp, const ParticipantSet& parts) {
  if (!parts.peer.host.has_value() || !parts.peer.command.has_value()) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  if (replicas_.empty() || *parts.peer.host != vip_) {
    // Not our virtual service: a VPOOL configured into the stack must stay
    // transparent for ordinary (host, command) opens.
    return rpc_->Open(hlp, parts);
  }
  const uint16_t command = *parts.peer.command;
  if (SessionRef cached = active_.Resolve(command)) {
    cached->set_hlp(&hlp);
    return cached;
  }
  // Affinity identity: which client stack this is plus which procedure it
  // calls. Deterministic, and stable across crash/restart of the replicas.
  const uint64_t affinity_key =
      HashCombine(XkHash<IpAddr>{}(kernel().ip_addr()), command);
  kernel().ChargeSessionCreate();
  auto sess = sessions_.Create(*this, &hlp, command, affinity_key);
  TrackIdle(*sess);
  active_.Bind(command, sess);
  return SessionRef(sess);
}

Status VpoolProtocol::DoDemux(Session* lls, Message& msg) {
  if (lls == nullptr) {
    return ErrStatus(StatusCode::kInvalidArgument);
  }
  SessionRef sess = by_lls_.Resolve(lls);
  if (sess == nullptr) {
    return ErrStatus(StatusCode::kNotFound);
  }
  auto rit = lls_replica_.find(lls);
  if (rit != lls_replica_.end()) {
    Replica& r = replicas_[static_cast<size_t>(rit->second)];
    if (r.outstanding > 0) {
      --r.outstanding;
    }
    auto iit = lls_inflight_.find(lls);
    if (iit != lls_inflight_.end() && iit->second > 0) {
      --iit->second;
    }
    RecordOutcome(rit->second, /*bad=*/false);
  }
  return sess->Pop(msg, lls);
}

void VpoolProtocol::SessionError(Session& lls, Status error) {
  SessionCallError(lls, error, nullptr);
}

void VpoolProtocol::SessionCallError(Session& lls, Status error, const Message* request) {
  SessionRef sess = by_lls_.Peek(&lls);
  if (sess == nullptr) {
    return;
  }
  auto rit = lls_replica_.find(&lls);
  if (rit != lls_replica_.end()) {
    Replica& r = replicas_[static_cast<size_t>(rit->second)];
    if (r.outstanding > 0) {
      --r.outstanding;
    }
    ++r.errors;
    auto iit = lls_inflight_.find(&lls);
    if (iit != lls_inflight_.end() && iit->second > 0) {
      --iit->second;
    }
    const StatusCode code = error.code();
    if (code == StatusCode::kBusy || code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kResourceExhausted) {
      // Overload rejects are a load signal, not proof of death: feed the
      // breaker and keep routing until the bad ratio actually trips it.
      RecordOutcome(rit->second, /*bad=*/true);
    } else {
      // An asynchronous hard failure is how a crashed replica manifests here
      // (CHANNEL exhausted its retransmissions): stop routing to it.
      MarkDown(rit->second);
    }
  }
  if (sess->hlp() != nullptr) {
    // Headerless layer: the failing request passes up unchanged, so the
    // client above can identify WHICH call died (not just "the oldest").
    sess->hlp()->SessionCallError(*sess, error, request);
  }
}

Status VpoolProtocol::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetReplicasUp: {
      uint64_t up = 0;
      for (const Replica& r : replicas_) {
        up += r.up ? 1 : 0;
      }
      args.u64 = up;
      return OkStatus();
    }
    case ControlOp::kSetConcurrencyCap: {
      set_concurrency_cap(static_cast<uint32_t>(args.u64));
      return OkStatus();
    }
    case ControlOp::kSetBreaker: {
      set_breaker(static_cast<uint32_t>(args.u64 >> 32),
                  static_cast<uint32_t>(args.u64 & 0xFFFFFFFF));
      return OkStatus();
    }
    case ControlOp::kSetAvoidReplica: {
      avoid_once_ = static_cast<int>(static_cast<int64_t>(args.u64));
      return OkStatus();
    }
    case ControlOp::kGetLastPick: {
      args.u64 = static_cast<uint64_t>(static_cast<int64_t>(last_pick_));
      return OkStatus();
    }
    default: {
      // Idle-eviction ops are handled generically (this protocol is
      // idle-capable); anything else stays transparent to the stack below.
      Status s = Protocol::DoControl(op, args);
      if (s.ok() || s.code() != StatusCode::kUnsupported) {
        return s;
      }
      return rpc_->Control(op, args);
    }
  }
}

uint64_t VpoolProtocol::FlushLowers(VpoolSession& vs) {
  uint64_t dropped = 0;
  for (size_t i = 0; i < vs.lowers_.size(); ++i) {
    SessionRef& lower = vs.lowers_[i];
    if (lower == nullptr) {
      continue;
    }
    auto iit = lls_inflight_.find(lower.get());
    if (iit != lls_inflight_.end() && iit->second > 0) {
      ++flush_skipped_busy_;
      continue;
    }
    by_lls_.Unbind(lower.get());
    lls_replica_.erase(lower.get());
    lls_inflight_.erase(lower.get());
    lower.reset();
    ++session_flushes_;
    ++dropped;
  }
  return dropped;
}

bool VpoolProtocol::EvictSession(Session& s) {
  auto& vs = static_cast<VpoolSession&>(s);
  // References this protocol's own maps hold: the command binding plus one
  // by_lls_ entry per bound lower. Anything beyond that is a client cache
  // (e.g. ClusterClient) still holding the session -- decline.
  long expected = active_.Peek(vs.command_).get() == &vs ? 1 : 0;
  for (const SessionRef& lower : vs.lowers_) {
    if (lower != nullptr && by_lls_.Peek(lower.get()).get() == &vs) {
      ++expected;
    }
  }
  if (static_cast<long>(vs.weak_from_this().use_count()) > expected) {
    return false;
  }
  // Pin the session so dropping the map references one by one cannot destroy
  // it mid-function; the pin releases (and ~VpoolSession runs) on return.
  SessionRef pin = vs.weak_from_this().lock();
  // CanEvict already established nothing is in flight, so every cached lower
  // flushes; then drop the command binding (the last owning reference).
  FlushLowers(vs);
  if (active_.Peek(vs.command_).get() == &vs) {
    active_.Unbind(vs.command_);
  }
  return true;
}

void VpoolProtocol::ExportCounters(const CounterEmit& emit) const {
  Protocol::ExportCounters(emit);
  emit("down_marks", down_marks_);
  emit("readmits", readmits_);
  emit("rerouted_opens", rerouted_opens_);
  emit("all_down_failures", all_down_failures_);
  emit("session_flushes", session_flushes_);
  emit("flush_skipped_busy", flush_skipped_busy_);
  emit("capped_rejects", capped_rejects_);
  emit("breaker_trips", breaker_trips_);
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const std::string prefix = "r" + std::to_string(i);
    emit(prefix + "_calls", replicas_[i].calls);
    emit(prefix + "_errors", replicas_[i].errors);
  }
}

void VpoolProtocol::ExportGauges(const CounterEmit& emit) const {
  uint64_t up = 0;
  for (const Replica& r : replicas_) {
    up += r.up ? 1 : 0;
  }
  emit("replicas_up", up);
  emit("live_sessions", sessions_.live());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    emit("r" + std::to_string(i) + "_outstanding", replicas_[i].outstanding);
  }
}

// ---------------------------------------------------------------------------
// VpoolSession
// ---------------------------------------------------------------------------

VpoolSession::VpoolSession(VpoolProtocol& owner, Protocol* hlp, uint16_t command,
                           uint64_t affinity_key)
    : Session(owner, hlp),
      pool_(owner),
      command_(command),
      affinity_key_(affinity_key),
      lowers_(owner.replicas_.size()) {}

Result<SessionRef> VpoolSession::LowerFor(int idx) {
  SessionRef& cached = lowers_[static_cast<size_t>(idx)];
  if (cached != nullptr) {
    return cached;
  }
  ParticipantSet parts;
  parts.peer.host = pool_.replicas_[static_cast<size_t>(idx)].addr;
  parts.peer.command = command_;
  Result<SessionRef> r = pool_.rpc_->Open(pool_, parts);
  if (!r.ok()) {
    return r.status();
  }
  cached = *r;
  pool_.by_lls_.Bind(cached.get(), std::static_pointer_cast<Session>(Ref()));
  pool_.lls_replica_[cached.get()] = idx;
  pool_.lls_inflight_[cached.get()] = 0;
  return cached;
}

Status VpoolSession::DoPush(Message& msg) {
  // Like VIP, the replica decision is "the cost of the single test" -- no
  // header, no copy; the message rides the chosen lower session unchanged.
  kernel().Charge(Usec(2));
  const size_t n = pool_.replicas_.size();
  // One-shot exclusion (kSetAvoidReplica): consumed by this push whether or
  // not the pick succeeds -- the hedger arms it immediately before pushing.
  const int avoid = pool_.avoid_once_;
  pool_.avoid_once_ = -1;
  for (size_t attempt = 0; attempt < n; ++attempt) {
    const int idx = pool_.PickUp(affinity_key_, avoid);
    if (idx < 0) {
      break;
    }
    Result<SessionRef> lower = LowerFor(idx);
    if (!lower.ok()) {
      // The open itself failed (e.g. no free channel state toward a dead
      // host): mark the replica down and let the policy reroute.
      ++pool_.rerouted_opens_;
      if (TraceSink* ts = kernel().trace_sink()) {
        ts->RecordEvent(kernel(), TraceOp::kReroute, pool_.name(), kernel().now(), 0, &msg,
                        this, static_cast<uint64_t>(idx), lower.status().code());
      }
      pool_.MarkDown(idx);
      continue;
    }
    VpoolProtocol::Replica& r = pool_.replicas_[static_cast<size_t>(idx)];
    if (TraceSink* ts = kernel().trace_sink()) {
      // The replica decision, visible per message: which backend this push
      // rides. A stitcher reads pick/reroute chains instead of inferring the
      // spreading policy from per-host spans.
      ts->RecordEvent(kernel(), TraceOp::kPick, pool_.name(), kernel().now(), 0, &msg, this,
                      static_cast<uint64_t>(idx));
    }
    ++r.calls;
    ++r.outstanding;
    pool_.last_pick_ = idx;
    ++pool_.lls_inflight_[lower->get()];
    Status s = (*lower)->Push(msg);
    if (!s.ok()) {
      // Synchronous push failure: unwind the accounting; the caller sees the
      // error directly, nothing stays in flight.
      if (r.outstanding > 0) {
        --r.outstanding;
      }
      auto iit = pool_.lls_inflight_.find(lower->get());
      if (iit != pool_.lls_inflight_.end() && iit->second > 0) {
        --iit->second;
      }
      ++r.errors;
    }
    return s;
  }
  // Nothing pickable. Distinguish brownout from blackout: if some replica is
  // still up, the pick failed on caps (or the hedge exclusion) -- fail fast
  // with BUSY so the caller sheds instead of retrying a dead address.
  bool any_up = false;
  for (const VpoolProtocol::Replica& r : pool_.replicas_) {
    any_up = any_up || r.up;
  }
  if (any_up) {
    ++pool_.capped_rejects_;
    if (TraceSink* ts = kernel().trace_sink()) {
      ts->RecordEvent(kernel(), TraceOp::kReject, pool_.name(), kernel().now(), 0, &msg,
                      this, 0, StatusCode::kBusy);
    }
    return ErrStatus(StatusCode::kBusy);
  }
  ++pool_.all_down_failures_;
  return ErrStatus(StatusCode::kUnreachable);
}

Status VpoolSession::DoPop(Message& msg, Session* lls) {
  (void)lls;
  return DeliverUp(msg);
}

Status VpoolSession::DoControl(ControlOp op, ControlArgs& args) {
  switch (op) {
    case ControlOp::kGetPeerHost:
      args.ip = pool_.vip_;
      return OkStatus();
    case ControlOp::kGetMyHost:
      args.ip = kernel().ip_addr();
      return OkStatus();
    case ControlOp::kFlushSessions:
      // Connection churn: drop cached lower sessions that have nothing in
      // flight. Busy ones are skipped -- their replies still have to demux.
      // Same path idle eviction takes (FlushLowers).
      args.u64 = pool_.FlushLowers(*this);
      return OkStatus();
    default:
      return Session::DoControl(op, args);
  }
}

bool VpoolSession::CanEvict() const {
  for (const SessionRef& lower : lowers_) {
    if (lower == nullptr) {
      continue;
    }
    auto iit = pool_.lls_inflight_.find(lower.get());
    if (iit != pool_.lls_inflight_.end() && iit->second > 0) {
      return false;  // a reply still has to demux through this session
    }
  }
  return true;
}

Session* VpoolSession::lower_for_control() const {
  for (const SessionRef& lower : lowers_) {
    if (lower != nullptr) {
      return lower.get();
    }
  }
  return nullptr;
}

}  // namespace xk
