# Empty compiler generated dependencies file for psync_bulk.
# This may be replaced when dependencies are built.
