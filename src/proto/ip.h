// IP: internet datagram delivery with fragmentation, reassembly, and routing.
//
// "IP is able to deliver 64k-byte packets to any host in the Internet"
// (paper, Figure 2). Inserting IP under an RPC protocol costs a measurable
// fixed overhead per packet -- the 0.37 ms round-trip penalty that motivates
// VIP -- which here emerges from the 20-byte header store/load, the header
// checksum, and the routing lookup on each traversal.
//
// Sessions are keyed (destination host, protocol number). Hosts have one
// interface; routers are kernels with several interfaces and forwarding
// enabled -- forwarded datagrams have their TTL decremented and checksum
// recomputed, and fragments are forwarded without reassembly.

#ifndef XK_SRC_PROTO_IP_H_
#define XK_SRC_PROTO_IP_H_

#include <map>
#include <tuple>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"
#include "src/proto/arp.h"

namespace xk {

// One attachment of IP to an Ethernet (a host has one; routers several).
struct IpInterface {
  Protocol* eth = nullptr;  // the EthProtocol below
  ArpProtocol* arp = nullptr;
  IpAddr addr{};
  int mask_bits = 24;
};

// Parsed IP header (wire format is built/parsed explicitly in ip.cc).
struct IpHeader {
  uint8_t tos = 0;
  uint16_t total_len = 0;
  uint16_t id = 0;
  bool more_fragments = false;
  uint16_t frag_offset_bytes = 0;  // multiple of 8
  uint8_t ttl = 64;
  IpProtoNum proto = 0;
  IpAddr src{};
  IpAddr dst{};
};

class IpProtocol final : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 20;
  static constexpr size_t kMaxDatagram = 65535;
  static constexpr SimTime kReassemblyTimeout = Sec(5);

  IpProtocol(Kernel& kernel, std::vector<IpInterface> interfaces, std::string name = "ip");

  // Routers forward datagrams not addressed to them.
  void set_forwarding(bool on) { forwarding_ = on; }

  // Routes: destination subnet (masked to the interface mask) -> gateway.
  void AddRoute(IpAddr subnet, IpAddr gateway);
  void SetDefaultGateway(IpAddr gw) { default_gateway_ = gw; }

  void OpenAsync(Protocol& hlp, const ParticipantSet& parts, OpenCallback done) override;

  // --- statistics -------------------------------------------------------------
  struct Stats {
    uint64_t datagrams_sent = 0;
    uint64_t fragments_sent = 0;
    uint64_t datagrams_delivered = 0;
    uint64_t reassemblies_completed = 0;
    uint64_t reassembly_timeouts = 0;
    uint64_t checksum_failures = 0;
    uint64_t forwards = 0;
    uint64_t ttl_drops = 0;
    uint64_t no_route_drops = 0;
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("datagrams_sent", stats_.datagrams_sent);
    emit("fragments_sent", stats_.fragments_sent);
    emit("datagrams_delivered", stats_.datagrams_delivered);
    emit("reassemblies_completed", stats_.reassemblies_completed);
    emit("reassembly_timeouts", stats_.reassembly_timeouts);
    emit("checksum_failures", stats_.checksum_failures);
    emit("forwards", stats_.forwards);
    emit("ttl_drops", stats_.ttl_drops);
    emit("no_route_drops", stats_.no_route_drops);
  }

 protected:
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  friend class IpSession;
  using Key = std::tuple<IpAddr, IpProtoNum>;  // (peer host, protocol)
  struct ReasmKey {
    IpAddr src;
    IpAddr dst;
    IpProtoNum proto;
    uint16_t id;
    bool operator<(const ReasmKey& o) const {
      return std::tie(src, dst, proto, id) < std::tie(o.src, o.dst, o.proto, o.id);
    }
  };
  struct Reasm {
    std::map<uint16_t, Message> frags;  // offset-bytes -> payload
    size_t total_len = SIZE_MAX;        // known once the last fragment arrives
    EventHandle timer;
  };

  // Picks the outgoing interface and next hop for `dst`. Returns null if no
  // route exists.
  const IpInterface* Route(IpAddr dst, IpAddr* next_hop) const;

  // Opens the ETH session toward `next_hop` on `ifc` (cache-only ARP).
  Result<SessionRef> OpenLower(const IpInterface& ifc, IpAddr next_hop);

  bool IsLocalAddr(IpAddr a) const;
  Status Forward(const IpHeader& hdr, Message& msg);
  Result<Message> Reassemble(const IpHeader& hdr, Message& msg);  // empty result => incomplete
  Status DeliverToSession(const IpHeader& hdr, Session* lls, Message& msg);

  uint16_t NextId() { return next_id_++; }

  std::vector<IpInterface> interfaces_;
  bool forwarding_ = false;
  std::map<IpAddr, IpAddr> routes_;  // masked subnet -> gateway
  std::optional<IpAddr> default_gateway_;
  DemuxMap<Key> active_;
  DemuxMap<IpProtoNum, Protocol*> passive_;
  std::map<ReasmKey, Reasm> reasm_;
  uint16_t next_id_ = 1;
  Stats stats_;
};

class IpSession final : public Session {
 public:
  IpSession(IpProtocol& owner, Protocol* hlp, IpAddr peer, IpProtoNum proto, SessionRef lower,
            size_t lower_mtu);

  IpAddr peer() const { return peer_; }
  IpProtoNum proto() const { return proto_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  Status SendOne(Message piece, uint16_t id, uint16_t offset_bytes, bool more);

  IpProtocol& ip_;
  IpAddr peer_;
  IpProtoNum proto_;
  SessionRef lower_;
  size_t lower_mtu_;
};

}  // namespace xk

#endif  // XK_SRC_PROTO_IP_H_
