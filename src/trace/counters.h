// Per-protocol counters export. Every Protocol maintains generic traffic
// counters at the non-virtual entry points (ProtoCounters in protocol.h) and
// may override ExportCounters() to add its protocol-specific statistics;
// these helpers walk a kernel's protocol graph and emit everything as JSON.
// Internet::CountersJson() adds the per-link fault counters on top.

#ifndef XK_SRC_TRACE_COUNTERS_H_
#define XK_SRC_TRACE_COUNTERS_H_

#include <string>

namespace xk {

class Kernel;

// Appends `{"host":"client","protocols":[{"protocol":"eth","counters":{...}},...]}`.
void AppendHostCountersJson(std::string& out, const Kernel& kernel);

}  // namespace xk

#endif  // XK_SRC_TRACE_COUNTERS_H_
