// SUN_SELECT: the selection layer of decomposed Sun RPC (paper, Section 5).
//
// Maps (program, version, procedure) triples onto server procedures, the way
// Sun RPC addresses services. Composes with REQUEST_REPLY (zero-or-more,
// faithful Sun semantics) or with CHANNEL (upgrading Sun RPC to at-most-once)
// and with any stack of optional authentication layers in between -- the
// "mix and match" the paper demonstrates.
//
// Header: prog(4) vers(2) proc(2) status(1) -- 9 bytes, echoed in replies so
// concurrent calls to different procedures pair correctly.

#ifndef XK_SRC_RPC_SUN_SUN_SELECT_H_
#define XK_SRC_RPC_SUN_SUN_SELECT_H_

#include <deque>
#include <map>
#include <tuple>

#include "src/core/kernel.h"
#include "src/core/map.h"
#include "src/core/protocol.h"

namespace xk {

class SunSelectProtocol : public Protocol {
 public:
  static constexpr size_t kHeaderSize = 9;

  static constexpr uint8_t kStatusOk = 0;
  static constexpr uint8_t kStatusProgUnavail = 1;
  static constexpr uint8_t kStatusProcUnavail = 2;

  // `lower` is REQUEST_REPLY, CHANNEL-with-pool semantics is not required --
  // any request/reply session works. Optional auth layers go in between.
  SunSelectProtocol(Kernel& kernel, Protocol* lower, std::string name = "sunselect");

  void SessionError(Session& lls, Status error) override;

  struct Stats {
    uint64_t calls = 0;
    uint64_t returns = 0;
    uint64_t served = 0;
    uint64_t prog_unavail = 0;
  };
  const Stats& stats() const { return stats_; }

  void ExportCounters(const CounterEmit& emit) const override {
    Protocol::ExportCounters(emit);
    emit("calls", stats_.calls);
    emit("returns", stats_.returns);
    emit("served", stats_.served);
    emit("prog_unavail", stats_.prog_unavail);
  }

 protected:
  // Open: peer.host + prog/vers/proc packed into peer.command (proc) and
  // peer.rel_proto (prog<<16|vers) -- see SunProcAddress below for the
  // ergonomic wrapper.
  Result<SessionRef> DoOpen(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoOpenEnable(Protocol& hlp, const ParticipantSet& parts) override;
  Status DoDemux(Session* lls, Message& msg) override;

 private:
  friend class SunSelectSession;
  friend class SunSelectServerSession;
  using ProcKey = std::tuple<uint32_t, uint16_t, uint16_t>;  // (prog, vers, proc)
  using Key = std::tuple<IpAddr, uint32_t, uint16_t, uint16_t>;
  using ProgKey = std::tuple<uint32_t, uint16_t>;  // (prog, vers)

  Result<SessionRef> LowerFor(IpAddr server);

  DemuxMap<Key> active_;
  DemuxMap<ProgKey, Protocol*> passive_;
  // Calls awaiting replies, FIFO per (server, prog, vers, proc).
  std::map<Key, std::deque<SessionRef>> waiting_;
  DemuxMap<Session*, SessionRef> server_sessions_;
  Stats stats_;
};

// Helper for building participant sets addressing a Sun procedure.
ParticipantSet SunProcAddress(IpAddr server, uint32_t prog, uint16_t vers, uint16_t proc);
ParticipantSet SunProgService(uint32_t prog, uint16_t vers);

class SunSelectSession : public Session {
 public:
  SunSelectSession(SunSelectProtocol& owner, Protocol* hlp, IpAddr server, uint32_t prog,
                   uint16_t vers, uint16_t proc);

  IpAddr server() const { return server_; }

 protected:
  Status DoPush(Message& msg) override;
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;

 private:
  friend class SunSelectProtocol;
  SunSelectProtocol& sel_;
  IpAddr server_;
  uint32_t prog_;
  uint16_t vers_;
  uint16_t proc_;
};

class SunSelectServerSession : public Session {
 public:
  SunSelectServerSession(SunSelectProtocol& owner, Protocol* hlp, SessionRef lower);

  void SetCurrent(uint32_t prog, uint16_t vers, uint16_t proc);
  uint16_t last_proc() const { return proc_; }

 protected:
  Status DoPush(Message& msg) override;  // reply
  Status DoPop(Message& msg, Session* lls) override;
  Status DoControl(ControlOp op, ControlArgs& args) override;
  Session* lower_for_control() const override { return lower_.get(); }

 private:
  SunSelectProtocol& sel_;
  SessionRef lower_;
  uint32_t prog_ = 0;
  uint16_t vers_ = 0;
  uint16_t proc_ = 0;
};

}  // namespace xk

#endif  // XK_SRC_RPC_SUN_SUN_SELECT_H_
