// Tests for the bench_suite command-line parser (bench/bench_flags.h): every
// rejection path must name the offending flag and token -- no silent atoi
// clamping, no anonymous "usage" bail-outs.

#include "bench/bench_flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xk {
namespace {

// argv helper: builds a mutable char** from string literals.
bool Parse(std::vector<std::string> args, Options* opt, std::string* error) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("bench_suite"));
  for (std::string& a : args) {
    argv.push_back(a.data());
  }
  return ParseBenchArgs(static_cast<int>(argv.size()), argv.data(), opt, error);
}

TEST(BenchFlagsTest, ParsesEveryFlag) {
  Options opt;
  std::string error;
  ASSERT_TRUE(Parse({"--threads=3", "--out=o.json", "--trace=td", "--pcap=pd",
                     "--stats=sd", "--filter=^manyhost", "--faults=seed:7",
                     "--arrivals=poisson:rate=200,horizon=100ms",
                     "--engine-threads=2", "--engine-speedup=8", "--list",
                     "--stable"},
                    &opt, &error))
      << error;
  EXPECT_EQ(opt.threads, 3u);
  EXPECT_EQ(opt.out_path, "o.json");
  EXPECT_EQ(opt.trace_dir, "td");
  EXPECT_EQ(opt.pcap_dir, "pd");
  EXPECT_EQ(opt.stats_dir, "sd");
  EXPECT_EQ(opt.filter, "^manyhost");
  EXPECT_EQ(opt.faults, "seed:7");
  EXPECT_EQ(opt.arrivals, "poisson:rate=200,horizon=100ms");
  EXPECT_EQ(opt.engine_threads, 2);
  EXPECT_EQ(opt.speedup_threads, 8);
  EXPECT_TRUE(opt.list);
  EXPECT_TRUE(opt.stable);
}

TEST(BenchFlagsTest, BareEngineSpeedupDefaultsToFourThreads) {
  Options opt;
  std::string error;
  ASSERT_TRUE(Parse({"--engine-speedup"}, &opt, &error)) << error;
  EXPECT_EQ(opt.speedup_threads, 4);
}

TEST(BenchFlagsTest, UnknownFlagIsNamed) {
  Options opt;
  std::string error;
  EXPECT_FALSE(Parse({"--wibble=3"}, &opt, &error));
  EXPECT_NE(error.find("--wibble=3"), std::string::npos) << error;
}

TEST(BenchFlagsTest, NonIntegerThreadsNamesFlagAndToken) {
  Options opt;
  std::string error;
  EXPECT_FALSE(Parse({"--threads=abc"}, &opt, &error));
  EXPECT_NE(error.find("--threads"), std::string::npos) << error;
  EXPECT_NE(error.find("'abc'"), std::string::npos) << error;
}

TEST(BenchFlagsTest, TrailingGarbageThreadsIsRejected) {
  Options opt;
  std::string error;
  // std::atoi would silently read this as 4.
  EXPECT_FALSE(Parse({"--threads=4x"}, &opt, &error));
  EXPECT_NE(error.find("'4x'"), std::string::npos) << error;
}

TEST(BenchFlagsTest, ZeroThreadsIsRejectedWithBound) {
  Options opt;
  std::string error;
  EXPECT_FALSE(Parse({"--threads=0"}, &opt, &error));
  EXPECT_NE(error.find("--threads"), std::string::npos) << error;
  EXPECT_NE(error.find(">= 1"), std::string::npos) << error;
}

TEST(BenchFlagsTest, NonIntegerEngineThreadsNamesFlagAndToken) {
  Options opt;
  std::string error;
  EXPECT_FALSE(Parse({"--engine-threads=many"}, &opt, &error));
  EXPECT_NE(error.find("--engine-threads"), std::string::npos) << error;
  EXPECT_NE(error.find("'many'"), std::string::npos) << error;
}

TEST(BenchFlagsTest, EngineSpeedupBelowTwoIsRejected) {
  Options opt;
  std::string error;
  // A 1-thread "speedup" run is meaningless; the old parser silently bumped
  // it to 2, hiding the typo.
  EXPECT_FALSE(Parse({"--engine-speedup=1"}, &opt, &error));
  EXPECT_NE(error.find("--engine-speedup"), std::string::npos) << error;
  EXPECT_NE(error.find(">= 2"), std::string::npos) << error;
}

TEST(BenchFlagsTest, EmptyIntegerValueIsRejected) {
  Options opt;
  std::string error;
  EXPECT_FALSE(Parse({"--engine-threads="}, &opt, &error));
  EXPECT_NE(error.find("--engine-threads"), std::string::npos) << error;
}

}  // namespace
}  // namespace xk
