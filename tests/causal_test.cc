// Causal call-flow stitching (src/trace/causal.h): the observer-side join
// must reconstruct every call's RTT exactly from the trace, stay byte-stable
// across simulation-engine widths (flow artifacts join the byte-identity
// gates), and attribute retransmissions to their cause through a replica
// crash/failover campaign.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"
#include "src/sim/fault.h"
#include "src/trace/causal.h"
#include "src/trace/trace.h"

namespace xk {
namespace {

ArrivalSpec Arrivals(const std::string& text) {
  ArrivalSpec spec;
  std::string error;
  EXPECT_TRUE(ArrivalSpec::Parse(text, &spec, &error)) << error;
  return spec;
}

// The bench_suite saturation-knee shape, scaled down for test time.
DatacenterSpec KneeSpec(int engine_threads) {
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 2;
  spec.replicas = 4;
  spec.arrivals = Arrivals("poisson:rate=160,horizon=200ms,seed=7");
  spec.engine_threads = engine_threads;
  return spec;
}

// The replica-crash failover campaign from the cluster fault tests: s0
// crashes mid-run, clients fail over, s0 restarts and is readmitted.
DatacenterSpec CrashSpec(int engine_threads) {
  DatacenterSpec spec;
  spec.client_segments = 2;
  spec.clients_per_segment = 1;
  spec.replicas = 3;
  spec.readmit_after = Msec(120);
  spec.arrivals = Arrivals("poisson:rate=100,horizon=900ms,seed=17");
  spec.faults.Crash("s0", Msec(80), Msec(500));
  spec.engine_threads = engine_threads;
  return spec;
}

struct TracedRun {
  DatacenterResult result;
  std::string trace;
  std::string flow;
  std::string folded;
};

TracedRun RunTraced(const DatacenterSpec& spec) {
  TracedRun out;
  TraceSink sink;
  TraceSink::set_thread_default(&sink);
  out.result = MeasureDatacenter(spec);
  TraceSink::set_thread_default(nullptr);
  out.trace = sink.ToJsonl();
  const causal::FlowAnalysis fa = causal::Stitch(tracetool::Parse(out.trace));
  out.flow = causal::ToFlowJsonl(fa);
  out.folded = causal::ToFolded(fa);
  return out;
}

// Every settled call's category sums must partition [issue, done] exactly:
// the stitcher reconstructs the same RTT the benchmark histogram recorded,
// call by call and in aggregate.
TEST(CausalStitch, ReconstructsRttExactly) {
  TraceSink sink;
  TraceSink::set_thread_default(&sink);
  const DatacenterResult r = MeasureDatacenter(KneeSpec(1));
  TraceSink::set_thread_default(nullptr);

  const causal::FlowAnalysis fa = causal::Stitch(tracetool::Parse(sink.ToJsonl()));

  EXPECT_EQ(fa.calls.size(), r.issued);
  EXPECT_EQ(fa.completed, r.completed);
  EXPECT_EQ(fa.failed, r.failed);

  for (const causal::CallFlow& c : fa.calls) {
    if (!c.completed) {
      continue;
    }
    int64_t sum = 0;
    for (int k = 0; k < causal::kNumCategories; ++k) {
      sum += c.ns[static_cast<size_t>(k)];
    }
    ASSERT_EQ(sum, c.rtt()) << "call " << c.id << " attribution does not partition its rtt";
    ASSERT_FALSE(c.client.empty()) << "call " << c.id;
    ASSERT_GT(c.hops.size(), 0u) << "call " << c.id;
  }

  // Aggregate agreement with the benchmark's own histogram: the ISSUE.md
  // acceptance bound is 1%; by construction the match is exact.
  ASSERT_GT(r.rtt.count(), 0u);
  const double bench_mean = r.rtt.Mean();
  const double flow_mean = fa.MeanRttNs();
  EXPECT_LT(std::fabs(flow_mean - bench_mean), 0.01 * bench_mean)
      << "bench=" << bench_mean << " flow=" << flow_mean;
  EXPECT_DOUBLE_EQ(flow_mean, bench_mean);
}

// The knee job's trace and both flow artifacts must be byte-identical at
// every engine width -- the same guarantee the raw trace already carries,
// extended through the stitcher.
TEST(CausalStitch, KneeFlowByteIdenticalAcrossEngineWidths) {
  const TracedRun serial = RunTraced(KneeSpec(1));
  const TracedRun parallel = RunTraced(KneeSpec(4));

  EXPECT_GT(serial.result.issued, 0u);
  EXPECT_EQ(serial.result.sum_done_at, parallel.result.sum_done_at);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.flow, parallel.flow);
  EXPECT_EQ(serial.folded, parallel.folded);
}

// Same identity through the replica-crash campaign: crash teardown, station
// down-drops, failover reroutes, and restart/readmit all leave records, and
// every one of them lands in the same byte at width 1 and 4.
TEST(CausalStitch, ReplicaCrashFlowByteIdenticalAcrossEngineWidths) {
  const TracedRun serial = RunTraced(CrashSpec(1));
  const TracedRun parallel = RunTraced(CrashSpec(4));

  EXPECT_GE(serial.result.down_marks, 1u);
  EXPECT_EQ(serial.result.sum_done_at, parallel.result.sum_done_at);
  EXPECT_EQ(serial.trace, parallel.trace);
  EXPECT_EQ(serial.flow, parallel.flow);
  EXPECT_EQ(serial.folded, parallel.folded);
}

// The failover campaign's causal story: the crash and restart are visible,
// VPOOL's down/readmit cycle is counted, retransmissions exist and are
// attributed to causes, and calls routed after failover carry reroutes.
TEST(CausalStitch, ReplicaCrashAttributesRetryCauses) {
  const TracedRun run = RunTraced(CrashSpec(1));
  const causal::FlowAnalysis fa = causal::Stitch(tracetool::Parse(run.trace));

  EXPECT_EQ(fa.crashes, 1u);
  EXPECT_EQ(fa.restarts, 1u);
  EXPECT_GE(fa.replica_downs, 1u);
  EXPECT_GE(fa.replica_readmits, 1u);
  EXPECT_EQ(fa.replica_downs, run.result.down_marks);
  EXPECT_EQ(fa.replica_readmits, run.result.readmits);
  EXPECT_GT(fa.retransmits, 0u);
  EXPECT_FALSE(fa.retry_causes.empty());

  // Each retransmission got exactly one cause, and the window around the
  // crash pinned at least one of them on it.
  uint64_t caused = 0;
  for (const auto& [cause, n] : fa.retry_causes) {
    EXPECT_TRUE(cause == "crash" || cause == "reroute" || cause == "corruption" ||
                cause == "drop" || cause == "timeout")
        << cause;
    caused += n;
  }
  EXPECT_EQ(caused, fa.retransmits);
  // Calls that never reached a server while s0 was down retried because of
  // the crash; the outage-aware ladder must say so.
  EXPECT_GT(fa.retry_causes.count("crash"), 0u);

  // The three replicas all took traffic, and the pick counters agree with
  // the client-side VPOOL share counters.
  for (int i = 0; i < 3; ++i) {
    auto it = fa.replica_picks.find(i);
    ASSERT_NE(it, fa.replica_picks.end()) << "replica " << i << " never picked";
    EXPECT_EQ(it->second, run.result.replica_calls[static_cast<size_t>(i)]) << "replica " << i;
  }
}

// Flow JSONL shape: a meta head, one line per call, an aggregate tail.
TEST(CausalStitch, FlowJsonlShape) {
  const TracedRun run = RunTraced(KneeSpec(1));

  size_t lines = 0;
  for (char ch : run.flow) {
    lines += ch == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, run.result.issued + 2);
  EXPECT_EQ(run.flow.rfind("{\"k\":\"meta\"", 0), 0u);
  EXPECT_NE(run.flow.find("{\"k\":\"call\""), std::string::npos);
  EXPECT_NE(run.flow.find("{\"k\":\"total\""), std::string::npos);
  EXPECT_NE(run.flow.find("\"critical\":"), std::string::npos);
  EXPECT_NE(run.folded.find("call;client_cpu;"), std::string::npos);
  EXPECT_NE(run.folded.find("call;wire;seg"), std::string::npos);
}

}  // namespace
}  // namespace xk
