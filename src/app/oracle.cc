#include "src/app/oracle.h"

#include "src/core/kernel.h"
#include "src/trace/trace.h"

namespace xk {

namespace {
uint8_t PatternByte(uint64_t id, size_t i) {
  return static_cast<uint8_t>((id * 31 + i * 7 + 13) & 0xFF);
}
}  // namespace

Message AmoOracle::MakeRequest(uint64_t id, size_t payload_bytes) {
  std::vector<uint8_t> bytes(kIdBytes + payload_bytes);
  for (size_t i = 0; i < kIdBytes; ++i) {
    bytes[i] = static_cast<uint8_t>(id >> (8 * (kIdBytes - 1 - i)));
  }
  for (size_t i = 0; i < payload_bytes; ++i) {
    bytes[kIdBytes + i] = PatternByte(id, i);
  }
  return Message::FromBytes(bytes);
}

uint64_t AmoOracle::ExtractId(const Message& msg) {
  uint8_t hdr[kIdBytes];
  if (!msg.PeekHeader(hdr)) {
    return 0;
  }
  uint64_t id = 0;
  for (uint8_t b : hdr) {
    id = (id << 8) | b;
  }
  return id;
}

RpcServer::Handler AmoOracle::WrapEcho(Kernel* server_kernel) {
  return [this, server_kernel](uint16_t command, Message& request) -> Message {
    (void)command;
    const uint64_t id = ExtractId(request);
    {
      std::lock_guard<std::mutex> lock(mu_);
      calls_[id].executed.emplace_back(server_kernel, server_kernel->boot_id());
    }
    if (TraceSink* ts = server_kernel->trace_sink()) {
      // Bind the server-side execution to the oracle call id; the echoed
      // reply is a copy of the request, so it keeps the same message id and
      // the reply path reads as the same logical message.
      ts->RecordEvent(*server_kernel, TraceOp::kExec, "rpc_server", server_kernel->now(), id,
                      &request, nullptr, server_kernel->boot_id());
    }
    return request;  // echo: the client checks the bytes round-tripped
  };
}

void AmoOracle::RecordIssued(uint64_t id, SimTime at) {
  (void)at;
  std::lock_guard<std::mutex> lock(mu_);
  calls_[id].issued = true;
}

void AmoOracle::RecordHedged(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  calls_[id].hedged = true;
}

void AmoOracle::RecordOutcome(uint64_t id, const Result<Message>& r, SimTime at) {
  (void)at;
  std::lock_guard<std::mutex> lock(mu_);
  CallRecord& rec = calls_[id];
  if (!r.ok()) {
    rec.failed = true;
    rec.fail_code = r.status().code();
    return;
  }
  rec.completed = true;
  const Message& reply = *r;
  const uint64_t reply_id = ExtractId(reply);
  if (reply_id != id) {
    if (calls_.find(reply_id) == calls_.end()) {
      ++unknown_replies_;
    }
    rec.mismatched = true;
    return;
  }
  // Verify the payload pattern byte-for-byte.
  const std::vector<uint8_t> bytes = reply.Flatten();
  if (bytes.size() < kIdBytes) {
    rec.mismatched = true;
    return;
  }
  for (size_t i = kIdBytes; i < bytes.size(); ++i) {
    if (bytes[i] != PatternByte(id, i - kIdBytes)) {
      rec.mismatched = true;
      return;
    }
  }
}

AmoOracle::Report AmoOracle::Finish() const {
  std::lock_guard<std::mutex> lock(mu_);
  Report rep;
  rep.unknown_replies = unknown_replies_;
  for (const auto& [id, rec] : calls_) {
    (void)id;
    if (rec.issued) {
      ++rep.issued;
    }
    if (rec.completed) {
      ++rep.completed;
    } else if (rec.failed) {
      ++rep.failed;
      switch (rec.fail_code) {
        case StatusCode::kDeadlineExceeded:
          ++rep.shed;
          break;
        case StatusCode::kBusy:
          ++rep.rejected;
          break;
        case StatusCode::kResourceExhausted:
          ++rep.budget_exhausted;
          break;
        default:
          break;
      }
    } else if (rec.issued) {
      ++rep.silent;
    }
    if (rec.mismatched) {
      ++rep.mismatched_replies;
    }
    if (rec.hedged) {
      ++rep.hedged;
    }
    rep.executions += rec.executed.size();
    // Per host: the same boot twice = at-most-once violation; a new boot
    // re-executing is the (reported) consequence of losing the duplicate
    // filter in a crash. Across hosts: only a hedged id may legitimately run
    // on more than one replica (the intended race); unhedged cross-host
    // duplication is a violation. Counts are order-independent, so the
    // pointer-keyed grouping stays deterministic.
    std::map<const Kernel*, std::vector<uint32_t>> per_host;
    for (const auto& [host, boot] : rec.executed) {
      per_host[host].push_back(boot);
    }
    for (const auto& [host, boots] : per_host) {
      (void)host;
      for (size_t i = 1; i < boots.size(); ++i) {
        if (boots[i] == boots[i - 1]) {
          ++rep.double_executions;
        } else {
          ++rep.cross_boot_reexecutions;
        }
      }
    }
    if (per_host.size() > 1) {
      if (rec.hedged) {
        rep.hedged_duplicate_executions += per_host.size() - 1;
      } else {
        rep.double_executions += per_host.size() - 1;
      }
    }
  }
  const uint64_t not_admitted = rep.shed + rep.rejected;
  rep.admitted = rep.issued > not_admitted ? rep.issued - not_admitted : 0;
  rep.admitted_success_ppm =
      rep.admitted == 0 ? 1000000 : rep.completed * 1000000 / rep.admitted;
  return rep;
}

}  // namespace xk
